(* poc-cli: command-line front end to the POC library.

   Subcommands:
     plan      generate a substrate + traffic matrix and run the auction
     auction   auction details (per-BP payments, PoB)
     econ      NN-vs-UR regime comparison for the reference economy
     market    multi-epoch bandwidth-market simulation
     chaos     supervised market under injected faults, with a durable
               journal and crash/resume support
     scrub     check and repair a run journal (segment classification,
               tail truncation, quarantine)
     forensics merge flight box, journal, scrub verdict and intake log
               into one ordered crash timeline
     fleet     thousands of seeded scenario-months under the chaos matrix
               (per-scenario journals under one store root, kill chains,
               byte-deterministic aggregate survival/PoB report)
     serve     long-lived supervised market daemon (Unix-socket control
               protocol, admission control, kill-under-load recovery)
     ctl       client for a running serve daemon
     profile   run N supervised epochs and print per-phase latencies
     topology  describe a generated substrate
     baseline  describe the traditional-Internet comparator

   market, chaos and profile accept --trace FILE.json (Chrome
   trace-event output for chrome://tracing / Perfetto) and
   --metrics FILE.prom (Prometheus text exposition). *)

open Cmdliner
module Planner = Poc_core.Planner
module Settlement = Poc_core.Settlement
module Vcg = Poc_auction.Vcg
module Acc = Poc_auction.Acceptability
module Wan = Poc_topology.Wan
module Fault = Poc_resilience.Fault
module Disk = Poc_resilience.Disk
module Journal = Poc_resilience.Journal
module Supervisor = Poc_resilience.Supervisor
module Black_box = Poc_resilience.Black_box
module Fleet = Poc_fleet.Driver
module Chaos_matrix = Poc_fleet.Chaos_matrix
module Forensics = Poc_forensics.Forensics
module Obs_log = Poc_obs.Log
module Trace = Poc_obs.Trace
module Metrics = Poc_obs.Metrics
module Pool = Poc_util.Pool

let setup_logs verbose =
  Obs_log.set_level (if verbose then Some Obs_log.Debug else Some Obs_log.Warn)

(* --- observability plumbing --------------------------------------------- *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE.json"
        ~doc:"Write a Chrome trace-event JSON of the run to $(docv); open \
              it in chrome://tracing or https://ui.perfetto.dev.  Spans \
              cover every epoch phase; injected faults, ladder steps and \
              invariant violations appear as instant events.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE.prom"
        ~doc:"Write Prometheus text-format metrics (phase latency \
              histograms, auction/router/journal counters) to $(docv) when \
              the process exits.")

(* Both files are written from at_exit so an injected crash (exit 10)
   still leaves a usable trace: set_sink force-finishes the spans the
   crash cut open.  SIGTERM/SIGINT get the same treatment — at_exit
   never fires on a signal's default termination, so a killed run would
   otherwise leave nothing behind.  Returns a mid-run flush the daemon
   invokes continuously: it snapshots both sinks without detaching the
   trace sink (Chrome.write re-renders the whole buffer, so the file is
   complete, bracket-closed JSON after every call). *)
let setup_obs ~trace ~metrics =
  let chrome =
    Option.map
      (fun path ->
        let chrome = Trace.Chrome.create () in
        Trace.set_sink (Some (Trace.Chrome.sink chrome));
        (chrome, path))
      trace
  in
  let write_metrics () =
    Option.iter
      (fun path ->
        Out_channel.with_open_bin path (fun oc ->
            Out_channel.output_string oc
              (Metrics.to_prometheus Metrics.default)))
      metrics
  in
  let flush () =
    Option.iter (fun (chrome, path) -> Trace.Chrome.write chrome path) chrome;
    write_metrics ()
  in
  let finalized = ref false in
  let finalize () =
    if not !finalized then begin
      finalized := true;
      Option.iter
        (fun (chrome, path) ->
          Trace.set_sink None;
          Trace.Chrome.write chrome path)
        chrome;
      write_metrics ()
    end
  in
  at_exit finalize;
  let on_signal signum =
    finalize ();
    exit (if signum = Sys.sigint then 130 else 143)
  in
  List.iter
    (fun s ->
      try Sys.set_signal s (Sys.Signal_handle on_signal)
      with Invalid_argument _ | Sys_error _ -> ())
    [ Sys.sigterm; Sys.sigint ];
  flush

let phase_of_metric name =
  let prefix = "poc_phase_" and suffix = "_seconds" in
  let lp = String.length prefix and ls = String.length suffix in
  let n = String.length name in
  if
    n > lp + ls
    && String.sub name 0 lp = prefix
    && String.sub name (n - ls) ls = suffix
  then Some (String.sub name lp (n - lp - ls))
  else None

let print_phase_table () =
  let ms v = Printf.sprintf "%.2f" (v *. 1e3) in
  let rows =
    List.filter_map
      (fun (name, h) ->
        match phase_of_metric name with
        | Some phase when Metrics.Histogram.count h > 0 ->
          Some
            [
              phase;
              string_of_int (Metrics.Histogram.count h);
              Printf.sprintf "%.3f" (Metrics.Histogram.sum h);
              ms (Metrics.Histogram.p50 h);
              ms (Metrics.Histogram.p95 h);
              ms (Metrics.Histogram.p99 h);
              ms (Metrics.Histogram.max_observed h);
            ]
        | Some _ | None -> None)
      (Metrics.histograms Metrics.default)
  in
  if rows <> [] then begin
    print_endline "\nper-phase wall clock:";
    Poc_util.Table.print
      ~align:
        Poc_util.Table.[ Left; Right; Right; Right; Right; Right; Right ]
      ~header:[ "phase"; "count"; "total s"; "p50 ms"; "p95 ms"; "p99 ms"; "max ms" ]
      rows
  end

(* Shared options. *)
let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let sites_arg =
  Arg.(
    value & opt int 34
    & info [ "sites" ] ~docv:"N" ~doc:"Number of cities in the substrate.")

let bps_arg =
  Arg.(
    value & opt int 10
    & info [ "bps" ] ~docv:"N" ~doc:"Number of bandwidth providers.")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Verbose logging.")

let jobs_arg =
  Arg.(
    value
    & opt int (Pool.recommended_jobs ())
    & info [ "jobs" ] ~docv:"N"
        ~doc:"Worker domains for the auction layer (default: the runtime's \
              recommended domain count for this machine).  Auction \
              outcomes, payments and journal bytes are identical at every \
              value; $(b,--jobs 1) is the serial path.")

let rule_arg =
  let rules =
    [ ("load", Acc.Handle_load); ("single-failure", Acc.Single_link_failure);
      ("per-pair-failure", Acc.Per_pair_failure) ]
  in
  Arg.(
    value
    & opt (enum rules) Acc.Handle_load
    & info [ "rule" ] ~docv:"RULE"
        ~doc:"Acceptability rule: $(b,load), $(b,single-failure) or \
              $(b,per-pair-failure).")

let config ~sites ~bps ~seed ~rule =
  Planner.scaled_config ~sites ~bps
    { Planner.default_config with Planner.seed; rule }

let build_plan ~sites ~bps ~seed ~rule =
  match Planner.build (config ~sites ~bps ~seed ~rule) with
  | Ok plan -> plan
  | Error msg ->
    Printf.eprintf "planning failed: %s\n" msg;
    exit 1

(* --- plan ---------------------------------------------------------------- *)

let plan_cmd =
  let run verbose seed sites bps rule =
    setup_logs verbose;
    let plan = build_plan ~sites ~bps ~seed ~rule in
    Printf.printf "substrate: %s\n" (Wan.summary plan.Planner.wan);
    Printf.printf "traffic:   %s\n"
      (Format.asprintf "%a" Poc_traffic.Matrix.pp plan.Planner.matrix);
    let o = plan.Planner.outcome in
    Printf.printf "rule:      %s\n" (Acc.name rule);
    Printf.printf "selected:  %d links, C(SL) = $%.0f, POC spend = $%.0f\n"
      (List.length o.Vcg.selection.Vcg.selected)
      o.Vcg.selection.Vcg.cost o.Vcg.total_payment;
    Printf.printf "backbone:  %s\n"
      (Format.asprintf "%a" Poc_util.Stats.pp_summary
         (Planner.utilization_summary plan));
    let ledger = Settlement.of_plan plan () in
    Printf.printf "price:     $%.2f per Gbps-month (POC net $%.4f)\n"
      ledger.Settlement.usage_price (Settlement.poc_net ledger)
  in
  let term =
    Term.(const run $ verbose_arg $ seed_arg $ sites_arg $ bps_arg $ rule_arg)
  in
  Cmd.v (Cmd.info "plan" ~doc:"Plan a POC backbone end-to-end") term

(* --- auction -------------------------------------------------------------- *)

let auction_cmd =
  let run verbose seed sites bps rule =
    setup_logs verbose;
    let plan = build_plan ~sites ~bps ~seed ~rule in
    let o = plan.Planner.outcome in
    let rows =
      Array.to_list o.Vcg.bp_results
      |> List.filter (fun (r : Vcg.bp_result) -> r.Vcg.payment > 0.0)
      |> List.map (fun (r : Vcg.bp_result) ->
             [
               plan.Planner.wan.Wan.bps.(r.Vcg.bp).Wan.bp_name;
               string_of_int (List.length r.Vcg.selected_links);
               Printf.sprintf "%.0f" r.Vcg.bid_cost;
               Printf.sprintf "%.0f" r.Vcg.payment;
               Printf.sprintf "%.4f" r.Vcg.pob;
             ])
    in
    Poc_util.Table.print
      ~align:
        Poc_util.Table.[ Left; Right; Right; Right; Right ]
      ~header:[ "BP"; "links"; "bid $"; "payment $"; "PoB" ]
      rows;
    Printf.printf "virtual links: $%.0f contracted\n" o.Vcg.virtual_cost
  in
  let term =
    Term.(const run $ verbose_arg $ seed_arg $ sites_arg $ bps_arg $ rule_arg)
  in
  Cmd.v (Cmd.info "auction" ~doc:"Show the VCG auction outcome") term

(* --- econ ------------------------------------------------------------------ *)

let econ_cmd =
  let run verbose =
    setup_logs verbose;
    let module Regime = Poc_econ.Regime in
    let economy = Regime.default_economy in
    List.iter
      (fun regime ->
        let o = Regime.evaluate economy regime in
        Printf.printf "%-14s social %8.3f  consumer %8.3f  CSP %8.3f  LMP fees %8.3f\n"
          (Regime.regime_name regime) o.Regime.total_social
          o.Regime.total_consumer o.Regime.total_csp_profit
          o.Regime.total_lmp_fee_revenue)
      [ Regime.Nn; Regime.Ur_bargained; Regime.Ur_unilateral ]
  in
  let term = Term.(const run $ verbose_arg) in
  Cmd.v (Cmd.info "econ" ~doc:"NN vs UR regime comparison") term

(* --- market / chaos -------------------------------------------------------- *)

let epochs_arg =
  Arg.(value & opt int 8 & info [ "epochs" ] ~docv:"N" ~doc:"Months to simulate.")

let journal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"PATH"
        ~doc:"Write a crash-safe journal of the run to $(docv); a killed run \
              can be finished later with $(b,--resume).")

let resume_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "resume" ] ~docv:"PATH"
        ~doc:"Resume a crashed run from the journal at $(docv) and append to \
              it.  Fails with a clear error if the journal is corrupt, \
              complete, or was written under a different configuration.")

let segment_bytes_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "segment-bytes" ] ~docv:"N"
        ~doc:"Write the journal as a segmented store rotating past $(docv) \
              bytes per segment; history older than the newest durable \
              checkpoint is garbage-collected at rotation.  The default is \
              a single append-only file.  $(b,--resume) detects the store \
              kind automatically.")

let flight_arg =
  Arg.(
    value & flag
    & info [ "flight" ]
        ~doc:"Attach a black-box flight recorder: a bounded $(b,FLIGHT) \
              file next to (inside, for a segmented store) the journal, \
              flushed at every phase and fault point, readable after any \
              crash with $(b,poc-cli forensics).  Journal bytes are \
              identical with and without it.")

(* Where a run's box lives; creation makes the parent directory, so a
   fresh segmented store can receive its FLIGHT before the journal
   opens the directory. *)
let flight_box ~flight ~segmented path =
  if not flight then None
  else Some (Black_box.create (Forensics.flight_path_for_kind ~segmented path))

(* Run the supervised loop, honoring --journal/--resume.  Exit codes:
   10 for an injected crash (the journal is left ready to resume), 1
   for a journal that cannot be resumed. *)
let run_supervised ~journal ~resume ?segment_bytes ?pool ?(flight = false) plan
    ~market ~schedule =
  match resume with
  | Some path -> (
    let flight =
      flight_box ~flight path
        ~segmented:(Sys.file_exists path && Sys.is_directory path)
    in
    match
      Supervisor.resume ~journal:path ?flight ?pool plan ~market ~schedule
    with
    | Ok r ->
      Printf.eprintf "resumed from %s\n" path;
      r
    | Error msg ->
      Printf.eprintf "resume failed: %s\n" msg;
      exit 1)
  | None -> (
    let flight =
      match journal with
      | None -> None
      | Some j -> flight_box ~flight ~segmented:(segment_bytes <> None) j
    in
    try
      Supervisor.run ?journal ?flight ?segment_bytes ?pool plan ~market
        ~schedule
    with Supervisor.Injected_crash { epoch; phase } ->
      Printf.eprintf
        "injected crash at epoch %d (%s); finish the run with --resume\n" epoch
        (Fault.phase_to_string phase);
      exit 10)

let print_supervised (report : Supervisor.report) =
  print_string (Supervisor.render_epochs report);
  print_endline "\nincident log:";
  print_string (Supervisor.render_incidents report);
  List.iter
    (fun (v : Supervisor.violation) ->
      Printf.printf "INVARIANT VIOLATED at epoch %d: %s (%s)\n"
        v.Supervisor.epoch v.Supervisor.invariant v.Supervisor.detail)
    report.Supervisor.violations

let no_feas_cache_arg =
  Arg.(
    value & flag
    & info [ "no-feas-cache" ]
        ~doc:"Disable the shared feasibility/cost cache (see \
              docs/SCALING.md).  Outcomes, payments and journal bytes \
              are identical either way; only the \
              $(b,poc_feascache_*_total) metrics and wall-clock time \
              change.")

let market_cmd =
  let run verbose seed sites bps epochs jobs journal resume segment_bytes
      flight trace metrics no_feas_cache =
    setup_logs verbose;
    if no_feas_cache then Poc_auction.Feascache.set_enabled false;
    let (_ : unit -> unit) = setup_obs ~trace ~metrics in
    let plan = build_plan ~sites ~bps ~seed ~rule:Acc.Handle_load in
    let module Epochs = Poc_market.Epochs in
    let market = { Epochs.default_config with Epochs.epochs; seed } in
    Pool.with_pool ~jobs (fun pool ->
        if journal <> None || resume <> None then
          (* Durable mode: the supervised loop (fault-free schedule) so
             the run is journaled and resumable. *)
          let schedule =
            match Fault.compile plan.Planner.wan ~seed [] with
            | Ok s -> s
            | Error msg ->
              Printf.eprintf "internal: empty schedule rejected: %s\n" msg;
              exit 1
          in
          print_supervised
            (run_supervised ~journal ~resume ?segment_bytes ?pool ~flight plan
               ~market ~schedule)
        else
          let results = Epochs.run ?pool plan market in
          List.iter
            (fun (r : Epochs.epoch_result) ->
              match r.Epochs.failure with
              | Some reason ->
                Printf.printf "%2d: auction failed (%s)\n" r.Epochs.epoch
                  (Epochs.failure_name reason)
              | None ->
                Printf.printf
                  "%2d: spend $%.0f  $%.2f/Gbps  |SL|=%d  HHI=%.3f\n"
                  r.Epochs.epoch r.Epochs.spend r.Epochs.price_per_gbps
                  r.Epochs.selected_links r.Epochs.supplier_hhi)
            results);
    print_phase_table ()
  in
  let term =
    Term.(
      const run $ verbose_arg $ seed_arg $ sites_arg $ bps_arg $ epochs_arg
      $ jobs_arg $ journal_arg $ resume_arg $ segment_bytes_arg $ flight_arg
      $ trace_arg $ metrics_arg $ no_feas_cache_arg)
  in
  Cmd.v (Cmd.info "market" ~doc:"Multi-epoch bandwidth market") term

(* Fault-injection options, shared by chaos and serve. *)
let crash_conv =
    let parse s =
      match String.index_opt s ':' with
      | None -> Error (`Msg "expected EPOCH:PHASE")
      | Some i -> (
        let e = String.sub s 0 i in
        let p = String.sub s (i + 1) (String.length s - i - 1) in
        match (int_of_string_opt e, Fault.phase_of_string p) with
        | Some e, Some p -> Ok (e, p)
        | None, _ -> Error (`Msg (Printf.sprintf "bad epoch %S" e))
        | _, None ->
          Error
            (`Msg
              (Printf.sprintf
                 "bad phase %S: expected pre_auction, pre_settle or post_settle"
                 p)))
    in
    let print ppf (e, p) =
      Format.fprintf ppf "%d:%s" e (Fault.phase_to_string p)
    in
    Arg.conv (parse, print)

let crash_arg =
    Arg.(
      value & opt_all crash_conv []
      & info [ "crash" ] ~docv:"EPOCH:PHASE"
          ~doc:"Inject a process crash at the given epoch and phase \
                ($(b,pre_auction), $(b,pre_settle) or $(b,post_settle)).  \
                The process exits with code 10 and the journal is left \
                ready for $(b,--resume).  Repeatable.")

let disk_fault_conv =
    (* EPOCH:PHASE:KIND[:ARG] — the fault kind may carry its own
       colon-separated argument, so only the first two colons split. *)
    let parse s =
      match String.split_on_char ':' s with
      | e :: p :: (_ :: _ as rest) -> (
        let f = String.concat ":" rest in
        match
          (int_of_string_opt e, Fault.phase_of_string p, Disk.fault_of_string f)
        with
        | Some e, Some p, Ok f -> Ok (e, p, f)
        | None, _, _ -> Error (`Msg (Printf.sprintf "bad epoch %S" e))
        | _, None, _ ->
          Error
            (`Msg
              (Printf.sprintf
                 "bad phase %S: expected pre_auction, pre_settle or post_settle"
                 p))
        | _, _, Error msg -> Error (`Msg msg))
      | _ -> Error (`Msg "expected EPOCH:PHASE:KIND[:ARG]")
    in
    let print ppf (e, p, f) =
      Format.fprintf ppf "%d:%s:%s" e (Fault.phase_to_string p)
        (Disk.fault_to_string f)
    in
    Arg.conv (parse, print)

let disk_fault_arg =
    Arg.(
      value & opt_all disk_fault_conv []
      & info [ "disk-fault" ] ~docv:"EPOCH:PHASE:KIND[:ARG]"
          ~doc:"Inject a power-cut with storage damage at the given epoch \
                and phase.  KIND is $(b,short_write)[:DROP], \
                $(b,torn_rename), $(b,lying_fsync)[:DROP] or \
                $(b,corrupt_byte)[:SEED].  The process exits with code 10; \
                finish with $(b,--resume), running $(b,poc-cli scrub) first \
                if the resume reports unreadable segments.  Repeatable.")

let fault_seed_arg =
  Arg.(
    value & opt int 2020
    & info [ "fault-seed" ] ~docv:"SEED"
        ~doc:"Seed for compiling the fault schedule.")

(* Crash + storage specs shared by chaos and serve; the stress specs
   (bankruptcy, link failures, recalls) stay chaos-only. *)
let injected_specs ~crashes ~disk_faults =
  List.map (fun (at_epoch, phase) -> Fault.Crash { at_epoch; phase }) crashes
  @ List.map
      (fun (at_epoch, phase, fault) -> Fault.Storage { at_epoch; phase; fault })
      disk_faults

let chaos_cmd =
  let run verbose seed sites bps epochs jobs fault_seed crashes disk_faults
      journal resume segment_bytes flight trace metrics =
    setup_logs verbose;
    let (_ : unit -> unit) = setup_obs ~trace ~metrics in
    let plan = build_plan ~sites ~bps ~seed ~rule:Acc.Handle_load in
    let module Epochs = Poc_market.Epochs in
    let biggest =
      match Wan.bps_by_size plan.Planner.wan with b :: _ -> b | [] -> 0
    in
    let n_bps = Array.length plan.Planner.wan.Wan.bps in
    let specs =
      [
        Fault.Bp_bankruptcy { at_epoch = 3; bp = biggest };
        Fault.Link_failure { at_epoch = 3; count = 2; duration = 2 };
      ]
      @ List.init n_bps (fun bp ->
            Fault.Capacity_recall
              { at_epoch = 5; bp; fraction = 1.0; duration = 1 })
      @ injected_specs ~crashes ~disk_faults
    in
    let schedule =
      match Fault.compile plan.Planner.wan ~seed:fault_seed specs with
      | Ok s -> s
      | Error msg ->
        Printf.eprintf "bad fault schedule: %s\n" msg;
        exit 1
    in
    let market = { Epochs.default_config with Epochs.epochs; seed } in
    Pool.with_pool ~jobs (fun pool ->
        print_supervised
          (run_supervised ~journal ~resume ?segment_bytes ?pool ~flight plan
             ~market ~schedule));
    print_phase_table ()
  in
  let term =
    Term.(
      const run $ verbose_arg $ seed_arg $ sites_arg $ bps_arg $ epochs_arg
      $ jobs_arg $ fault_seed_arg $ crash_arg $ disk_fault_arg $ journal_arg
      $ resume_arg $ segment_bytes_arg $ flight_arg $ trace_arg $ metrics_arg)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Supervised market under injected faults (journal + crash/resume)")
    term

(* --- scrub ------------------------------------------------------------------ *)

let scrub_cmd =
  let journal_pos =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"JOURNAL"
          ~doc:"Journal to scrub: a single append-only file or a segmented \
                store directory.")
  in
  let dry_run_arg =
    Arg.(
      value & flag
      & info [ "dry-run" ]
          ~doc:"Classify every segment and print the report without \
                modifying the store.")
  in
  let run verbose path dry_run =
    setup_logs verbose;
    match Journal.scrub ~dry_run path with
    | Error msg ->
      Printf.eprintf "scrub failed: %s\n" msg;
      exit 1
    | Ok report ->
      print_string (Journal.scrub_to_json report);
      (* Exit 0: the store resumes (possibly from an older checkpoint).
         Exit 3: nothing durable survives — start the run over. *)
      if not report.Journal.recovered then exit 3
  in
  let term = Term.(const run $ verbose_arg $ journal_pos $ dry_run_arg) in
  Cmd.v
    (Cmd.info "scrub"
       ~doc:"Check and repair a run journal: classify each segment as clean, \
             torn-tail, corrupt-interior or unreadable; truncate damage at \
             the last good frame; quarantine unreadable segments; print a \
             machine-readable JSON report.")
    term

(* --- forensics -------------------------------------------------------------- *)

let forensics_cmd =
  let store_pos =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"STORE"
          ~doc:"The dead run's journal: a single file, a segmented store \
                directory, or a daemon $(b,ROOT)/store.  The flight box and \
                intake log are found next to it automatically.")
  in
  let flight_path_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "flight" ] ~docv:"PATH"
          ~doc:"Flight box to read (default: $(b,STORE)/FLIGHT for a \
                directory store, $(b,STORE).flight otherwise).")
  in
  let intake_path_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "intake" ] ~docv:"PATH"
          ~doc:"Intake log to read (default: $(b,intake.log) next to \
                $(b,STORE)).")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print the timeline as one JSON document.")
  in
  let run verbose store flight intake json =
    setup_logs verbose;
    match Forensics.analyze ?flight ?intake store with
    | Error msg ->
      Printf.eprintf "forensics: %s\n" msg;
      exit 1
    | Ok a ->
      if json then print_string (Forensics.to_json a)
      else print_string (Forensics.render a)
  in
  let term =
    Term.(
      const run $ verbose_arg $ store_pos $ flight_path_arg $ intake_path_arg
      $ json_arg)
  in
  Cmd.v
    (Cmd.info "forensics"
       ~doc:"Reconstruct a crashed run's last moments: merge the flight \
             recorder box, the journal's durable epoch records, a dry-run \
             scrub verdict and the daemon intake log into one ordered \
             incident timeline, naming the epoch and phase in flight when \
             the process died.  Reads everything, modifies nothing.")
    term

(* --- fleet ------------------------------------------------------------------ *)

let fleet_cmd =
  let months_arg =
    Arg.(
      value & opt int 1000
      & info [ "months" ] ~docv:"N"
          ~doc:"Scenario-months in the fleet.  Each is an independent \
                supervised market run with its own seeds, fault schedule \
                and segmented journal.")
  in
  let matrix_arg =
    Arg.(
      value & opt string "full"
      & info [ "matrix" ] ~docv:"SPEC"
          ~doc:"Chaos matrix: $(b,none), $(b,full), or a $(b,+)-joined \
                combination of $(b,crash) (process death at every epoch \
                phase), $(b,storage) (power-cut disk faults of all four \
                kinds) and $(b,degrade) (market-stress schedules).  Cells \
                cycle over the fleet, baseline included.")
  in
  let store_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "store" ] ~docv:"ROOT"
          ~doc:"Fleet store root: a $(b,FLEET) manifest plus one segmented \
                journal directory per scenario.  A fresh run requires a \
                root with no manifest; $(b,--resume) requires one.")
  in
  let fleet_resume_arg =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:"Finish an interrupted fleet: completed scenarios reload \
                from their $(b,RESULT) frames, the rest re-run.  The \
                aggregate report is byte-identical to an uninterrupted \
                run.")
  in
  let kill_after_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "kill-after" ] ~docv:"N"
          ~doc:"Stop the fleet (exit 10) once $(docv) scenarios completed \
                in this invocation — the smoke test's SIGKILL stand-in.")
  in
  let topologies_arg =
    Arg.(
      value & opt int 8
      & info [ "topologies" ] ~docv:"N"
          ~doc:"Distinct topology seeds cycled across the fleet (plans are \
                built once per topology).")
  in
  let fleet_sites_arg =
    Arg.(
      value & opt int 16
      & info [ "sites" ] ~docv:"N" ~doc:"Cities per scenario substrate.")
  in
  let fleet_bps_arg =
    Arg.(
      value & opt int 5
      & info [ "bps" ] ~docv:"N" ~doc:"Bandwidth providers per scenario.")
  in
  let fleet_epochs_arg =
    Arg.(
      value & opt int 6
      & info [ "epochs" ] ~docv:"N"
          ~doc:"Market horizon per scenario (>= 4: the matrix places its \
                crash mid-horizon and its storage fault on the last-but-one \
                epoch).")
  in
  let fleet_segment_arg =
    Arg.(
      value & opt int 2048
      & info [ "segment-bytes" ] ~docv:"N"
          ~doc:"Journal rotation budget per scenario store.")
  in
  let snapshot_arg =
    Arg.(
      value & opt int 2
      & info [ "snapshot-every" ] ~docv:"N"
          ~doc:"Carry-forward snapshot cadence inside each scenario \
                journal.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Print the aggregate report as JSON (exactly the bytes the \
                determinism guarantee covers) instead of the human \
                summary.")
  in
  let run verbose months matrix store resume kill_after topologies sites bps
      epochs segment_bytes snapshot_every seed jobs json flight trace metrics
      =
    setup_logs verbose;
    let (_ : unit -> unit) = setup_obs ~trace ~metrics in
    match Chaos_matrix.axes_of_spec matrix with
    | Error msg ->
      Printf.eprintf "bad --matrix: %s\n" msg;
      exit 1
    | Ok axes ->
      let cfg =
        {
          Fleet.months;
          axes;
          seed;
          topologies;
          sites;
          bps;
          epochs;
          segment_bytes;
          snapshot_every;
          store;
          flight;
        }
      in
      Pool.with_pool ~jobs (fun pool ->
          match Fleet.run ?pool ~resume ?kill_after cfg with
          | Error msg ->
            Printf.eprintf "fleet failed: %s\n" msg;
            exit 1
          | Ok (Fleet.Interrupted { completed_months }) ->
            Printf.eprintf
              "fleet stopped after %d scenario-months; finish with --resume\n"
              completed_months;
            exit 10
          | Ok (Fleet.Finished report) ->
            if json then print_string (Fleet.report_to_json report)
            else print_string (Fleet.render report);
            (* Wall-clock rollup: a separate artifact, never part of
               the byte-deterministic report above. *)
            let rollup = Filename.concat store "LATENCY.json" in
            (try
               let oc = open_out rollup in
               output_string oc (Fleet.latency_rollup_json cfg);
               close_out oc
             with Sys_error msg ->
               Printf.eprintf "fleet: latency rollup not written: %s\n" msg);
            let unrecovered =
              List.exists
                (fun ((_ : Fleet.scenario), (o : Fleet.outcome)) ->
                  not o.Fleet.completed)
                report.Fleet.outcomes
            in
            if unrecovered then exit 3)
  in
  let term =
    Term.(
      const run $ verbose_arg $ months_arg $ matrix_arg $ store_arg
      $ fleet_resume_arg $ kill_after_arg $ topologies_arg $ fleet_sites_arg
      $ fleet_bps_arg $ fleet_epochs_arg $ fleet_segment_arg $ snapshot_arg
      $ seed_arg $ jobs_arg $ json_arg $ flight_arg $ trace_arg $ metrics_arg)
  in
  let man =
    [
      `S Manpage.s_exit_status;
      `P "$(b,0) every scenario-month survived to its horizon.";
      `P
        "$(b,10) the fleet was stopped mid-run ($(b,--kill-after) or an \
         external kill landed between scenarios); the store root resumes \
         with $(b,--resume).  Mirrors $(b,chaos)'s injected-crash exit.";
      `P
        "$(b,3) at least one scenario could not be driven to its horizon \
         even through scrub, resume and restart.  Mirrors $(b,scrub)'s \
         unrecoverable-store exit.";
      `P "$(b,1) bad configuration, unplannable topology, or store/manifest \
          mismatch.";
    ]
  in
  Cmd.v
    (Cmd.info "fleet" ~man
       ~doc:"Thousands of seeded scenario-months under the chaos matrix: \
             whole supervised runs sharded across the domain pool, \
             per-scenario segmented journals under one store root, kill \
             chains (crash and power-cut faults survived via scrub + \
             resume inside the run), and a byte-deterministic aggregate \
             survival/PoB report at every $(b,--jobs) value.")
    term

(* --- serve / ctl ------------------------------------------------------------ *)

let serve_cmd =
  let root_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "root" ] ~docv:"DIR"
          ~doc:"Daemon state directory: the segmented journal lives at \
                $(docv)/store, the intake log at $(docv)/intake.log and the \
                control socket at $(docv)/ctl.sock.  Created if missing.")
  in
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Control socket path (default: $(b,ROOT)/ctl.sock).")
  in
  let serve_resume_arg =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:"Recover the journal at $(b,ROOT)/store and the intake log, \
                re-apply logged updates at their recorded epochs, and \
                continue serving.  The recovered store is byte-identical to \
                an uninterrupted run fed the same requests.")
  in
  let high_water_arg =
    Arg.(
      value & opt int 64
      & info [ "high-water" ] ~docv:"N"
          ~doc:"Admission queue bound: past $(docv) queued updates, new ones \
                answer BUSY with an escalating retry-after, unless they \
                outrank (strictly higher priority) the lowest-priority \
                queued update, which is then shed to admit them.")
  in
  let metrics_port_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "metrics-port" ] ~docv:"PORT"
          ~doc:"Serve the live Prometheus registry over HTTP on \
                127.0.0.1:$(docv) ($(b,GET /metrics)).")
  in
  let idle_timeout_arg =
    Arg.(
      value & opt float 5.0
      & info [ "idle-timeout" ] ~docv:"SECONDS"
          ~doc:"Close a connection that holds a partial request line longer \
                than $(docv) seconds.")
  in
  let snapshot_every_arg =
    Arg.(
      value & opt int 4
      & info [ "snapshot-every" ] ~docv:"N"
          ~doc:"Journal snapshot cadence in epochs.")
  in
  let serve_segment_arg =
    Arg.(
      value & opt int 65536
      & info [ "segment-bytes" ] ~docv:"N"
          ~doc:"Rotation budget of the segmented store (the daemon always \
                journals segmented).")
  in
  let runs_arg =
    Arg.(
      value & opt int 1
      & info [ "runs" ] ~docv:"N"
          ~doc:"Open $(docv) concurrent runs at startup (run 0 at \
                $(b,ROOT), further runs under $(b,ROOT)/runs/).  Clients \
                address them with the $(b,RUN <id>) prefix or the binary \
                framed protocol; more runs open live via $(b,OPEN).")
  in
  let max_runs_arg =
    Arg.(
      value & opt int 8
      & info [ "max-runs" ] ~docv:"N"
          ~doc:"Upper bound on concurrently open runs; $(b,OPEN) past it \
                answers BUSY.")
  in
  let fault_run_arg =
    Arg.(
      value & opt int 0
      & info [ "fault-run" ] ~docv:"ID"
          ~doc:"The run whose schedule carries the injected \
                $(b,--crash-at)/$(b,--disk-fault) specs (default run 0); \
                every other run gets a fault-free schedule — the \
                fault-isolation drill.")
  in
  let attempt_cap_arg =
    Arg.(
      value & opt int 3
      & info [ "attempt-cap" ] ~docv:"N"
          ~doc:"Restart-with-backoff attempts a failing run gets before it \
                is quarantined (store left intact for $(b,forensics), \
                requests answered GONE).")
  in
  let run verbose seed sites bps epochs jobs fault_seed crashes disk_faults
      root socket resume high_water metrics_port idle_timeout snapshot_every
      segment_bytes flight trace metrics runs max_runs fault_run attempt_cap =
    setup_logs verbose;
    let flush = setup_obs ~trace ~metrics in
    let plan = build_plan ~sites ~bps ~seed ~rule:Acc.Handle_load in
    let module Epochs = Poc_market.Epochs in
    let market = { Epochs.default_config with Epochs.epochs; seed } in
    let fault_specs = injected_specs ~crashes ~disk_faults in
    (try if not (Sys.file_exists root) then Sys.mkdir root 0o755
     with Sys_error msg ->
       Printf.eprintf "serve: cannot create %s: %s\n" root msg;
       exit 1);
    let socket =
      Option.value socket ~default:(Filename.concat root "ctl.sock")
    in
    let code =
      Pool.with_pool ~jobs (fun pool ->
          match
            Poc_daemon.Registry.create ~snapshot_every ~segment_bytes ?pool
              ~flight ~high_water ~attempt_cap ~resume ~runs ~max_runs
              ~fault_run ~fault_specs ~fault_seed ~root plan ~market ()
          with
          | Error msg ->
            Printf.eprintf "serve: %s\n" msg;
            1
          | Ok registry ->
            Printf.eprintf "%s\nlistening on %s\n%!"
              (Poc_daemon.Registry.banner registry)
              socket;
            Poc_daemon.Server.serve
              { Poc_daemon.Server.socket_path = socket; metrics_port;
                idle_timeout }
              registry ~flush)
    in
    exit code
  in
  let term =
    Term.(
      const run $ verbose_arg $ seed_arg $ sites_arg $ bps_arg $ epochs_arg
      $ jobs_arg $ fault_seed_arg $ crash_arg $ disk_fault_arg $ root_arg
      $ socket_arg $ serve_resume_arg $ high_water_arg $ metrics_port_arg
      $ idle_timeout_arg $ snapshot_every_arg $ serve_segment_arg $ flight_arg
      $ trace_arg $ metrics_arg $ runs_arg $ max_runs_arg $ fault_run_arg
      $ attempt_cap_arg)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the market as a long-lived multi-run daemon: a supervised \
             run registry (per-run journal, intake log and failure domain; \
             failing runs restart with backoff, then quarantine) behind the \
             line protocol (RUN-prefixed \
             BID/MATRIX/EPOCH/STATUS/METRICS/SCRUB/QUIESCE/SHUTDOWN plus \
             OPEN/CLOSE/RUNS) and a checksummed binary framed protocol on \
             the same socket, bounded admission queues with backpressure \
             and shedding, live Prometheus endpoint, and kill-under-load \
             recovery via $(b,--resume).")
    term

let ctl_cmd =
  let socket_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"The daemon's control socket.")
  in
  let commands_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"COMMAND"
          ~doc:"Requests to send, one per argument (quote each).  With no \
                arguments, requests are read from stdin, one per line.")
  in
  let run_id_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "run" ] ~docv:"ID"
          ~doc:"Address plain requests to run $(docv) by prefixing \
                $(b,RUN ID); lines already carrying a $(b,RUN) prefix or a \
                registry verb ($(b,OPEN)/$(b,CLOSE)/$(b,RUNS)) pass \
                through unchanged.")
  in
  let binary_arg =
    Arg.(
      value & flag
      & info [ "binary" ]
          ~doc:"Speak the checksummed binary framed protocol instead of the \
                line protocol (same requests, parsed locally and framed).")
  in
  let timeout_arg =
    Arg.(
      value & opt float 30.0
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Give up (exit 6) when the daemon holds a response open \
                longer than $(docv) seconds — a wedged daemon cannot hang \
                ctl.")
  in
  let busy_retries_arg =
    Arg.(
      value & opt int 5
      & info [ "busy-retries" ] ~docv:"N"
          ~doc:"Re-send a request answered BUSY up to $(docv) times, \
                sleeping the daemon's escalating retry_after plus local \
                jitter between attempts.")
  in
  let run verbose socket run_id binary timeout busy_retries commands =
    setup_logs verbose;
    let module Protocol = Poc_daemon.Protocol in
    let module Framing = Poc_daemon.Framing in
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_UNIX socket)
     with Unix.Unix_error (e, _, _) ->
       Printf.eprintf "ctl: cannot connect to %s: %s\n" socket
         (Unix.error_message e);
       exit 1);
    let write_all s =
      let b = Bytes.of_string s in
      let n = Bytes.length b in
      let rec go off =
        if off < n then go (off + Unix.write fd b off (n - off))
      in
      try go 0
      with Unix.Unix_error _ ->
        prerr_endline "ctl: connection closed by daemon";
        exit 4
    in
    let buf = Buffer.create 256 in
    let pending : Poc_daemon.Framing.item Queue.t = Queue.create () in
    (* Deadline-bounded reads: ctl never blocks past --timeout on a
       wedged socket. *)
    let fill deadline =
      let remaining = deadline -. Unix.gettimeofday () in
      if remaining <= 0.0 then `Timeout
      else
        match Unix.select [ fd ] [] [] remaining with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> `Again
        | [], _, _ -> `Timeout
        | _ -> (
          let b = Bytes.create 4096 in
          match Unix.read fd b 0 4096 with
          | 0 -> `Eof
          | n ->
            Buffer.add_subbytes buf b 0 n;
            `Again
          | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _)
            ->
            `Eof)
    in
    let die_timeout () =
      Printf.eprintf "ctl: timed out after %.1fs\n" timeout;
      exit 6
    and die_eof () =
      (* The daemon died mid-request — the kill-under-load drill.
         Distinct exit code so scripts can tell "refused" from
         "gone". *)
      prerr_endline "ctl: connection closed by daemon";
      exit 4
    in
    (* One response element: a line (line protocol) or a reply frame. *)
    let rec next_line deadline =
      let s = Buffer.contents buf in
      match String.index_opt s '\n' with
      | Some i ->
        Buffer.clear buf;
        Buffer.add_substring buf s (i + 1) (String.length s - i - 1);
        String.sub s 0 i
      | None -> (
        match fill deadline with
        | `Again -> next_line deadline
        | `Timeout -> die_timeout ()
        | `Eof -> die_eof ())
    in
    let rec next_reply deadline =
      match Queue.take_opt pending with
      | Some (Framing.Reply r) -> r
      | Some (Framing.Msg _) -> next_reply deadline (* daemons don't ask *)
      | None -> (
        let s = Buffer.contents buf in
        let { Framing.items; consumed; dropped = _ } =
          Framing.decode_stream s ~pos:0
        in
        if consumed > 0 then begin
          Buffer.clear buf;
          Buffer.add_substring buf s consumed (String.length s - consumed)
        end;
        List.iter (fun i -> Queue.add i pending) items;
        if not (Queue.is_empty pending) then next_reply deadline
        else
          match fill deadline with
          | `Again -> next_reply deadline
          | `Timeout -> die_timeout ()
          | `Eof -> die_eof ())
    in
    (* Deterministic-enough client jitter: decorrelates a herd of
       retrying ctls without threading a seed through the CLI. *)
    let jstate = ref ((Unix.getpid () * 2654435761) land 0x3FFFFFFF) in
    let jitter () =
      jstate := ((!jstate * 1103515245) + 12345) land 0x3FFFFFFF;
      float_of_int (!jstate land 0xFFFF) /. 65536.0
    in
    let retry_after line =
      String.split_on_char ' ' line
      |> List.find_map (fun tok ->
             if String.length tok > 12 && String.sub tok 0 12 = "retry_after="
             then
               float_of_string_opt
                 (String.sub tok 12 (String.length tok - 12))
             else None)
    in
    let failures = ref 0 and gone = ref false in
    let scope line =
      match run_id with
      | None -> line
      | Some id -> (
        match String.split_on_char ' ' (String.trim line) with
        | ("RUN" | "OPEN" | "CLOSE" | "RUNS") :: _ -> line
        | _ -> Printf.sprintf "RUN %d %s" id line)
    in
    let has_prefix p s =
      String.length s >= String.length p && String.sub s 0 (String.length p) = p
    in
    let rec send attempt line =
      (if binary then
         (* Parse errors were rejected before the first attempt, so this
            cannot fail here. *)
         match Protocol.parse_command line with
         | Error msg -> failwith ("ctl: parse: " ^ msg)
         | Ok cmd -> write_all (Framing.encode_msg (Framing.of_command cmd))
       else write_all (line ^ "\n"));
      let deadline = Unix.gettimeofday () +. timeout in
      let rec read_response () =
        let text, final =
          if binary then
            let r = next_reply deadline in
            (r.Framing.line, r.Framing.final)
          else
            let l = next_line deadline in
            (Protocol.payload l, Protocol.is_terminal l)
        in
        print_endline text;
        if not final then read_response ()
        else if has_prefix "BUSY" text && attempt < busy_retries then begin
          let delay = Option.value (retry_after text) ~default:0.05 in
          Unix.sleepf (delay *. (1.0 +. (0.25 *. jitter ())));
          send (attempt + 1) line
        end
        else begin
          if has_prefix "ERR" text then incr failures;
          if has_prefix "GONE" text then gone := true
        end
      in
      read_response ()
    in
    let send line =
      if binary then (
        (* An unparseable line never reached the wire: nothing to read. *)
        match Protocol.parse_command line with
        | Error msg ->
          Printf.eprintf "ctl: parse: %s\n" msg;
          incr failures
        | Ok _ -> send 0 line)
      else send 0 line
    in
    (match commands with
    | [] -> (
      try
        while true do
          let line = input_line stdin in
          if String.trim line <> "" then send (scope line)
        done
      with End_of_file -> ())
    | cmds ->
      List.iter (fun c -> if String.trim c <> "" then send (scope c)) cmds);
    if !gone then exit 5 else if !failures > 0 then exit 2
  in
  let term =
    Term.(
      const run $ verbose_arg $ socket_arg $ run_id_arg $ binary_arg
      $ timeout_arg $ busy_retries_arg $ commands_arg)
  in
  let man =
    [
      `S Manpage.s_exit_status;
      `P "$(b,0) every request answered OK (BUSY responses that cleared \
          within $(b,--busy-retries) count as OK).";
      `P "$(b,2) at least one request answered ERR.";
      `P "$(b,4) the daemon vanished mid-request (connection closed).";
      `P "$(b,5) at least one request answered GONE: the addressed run is \
          quarantined or closed.  Its store is intact — inspect it with \
          $(b,poc-cli forensics).";
      `P "$(b,6) the daemon held a response open past $(b,--timeout).";
      `P "$(b,1) could not connect to the socket.";
    ]
  in
  Cmd.v
    (Cmd.info "ctl" ~man
       ~doc:"Send control requests to a running $(b,poc-cli serve) daemon \
             and print the responses.  Requests may address any run \
             ($(b,--run), a $(b,RUN <id>) prefix, or $(b,--binary) frames); \
             BUSY answers retry with the daemon's escalating retry-after \
             plus client-side jitter.")
    term

(* --- profile ---------------------------------------------------------------- *)

let profile_cmd =
  let run verbose seed sites bps epochs jobs rule trace metrics =
    setup_logs verbose;
    let (_ : unit -> unit) = setup_obs ~trace ~metrics in
    let plan = build_plan ~sites ~bps ~seed ~rule in
    let module Epochs = Poc_market.Epochs in
    let market = { Epochs.default_config with Epochs.epochs; seed } in
    let schedule =
      match Fault.compile plan.Planner.wan ~seed [] with
      | Ok s -> s
      | Error msg ->
        Printf.eprintf "internal: empty schedule rejected: %s\n" msg;
        exit 1
    in
    let report =
      Pool.with_pool ~jobs (fun pool ->
          Supervisor.run ?pool plan ~market ~schedule)
    in
    let healthy =
      List.length
        (List.filter
           (fun (er : Supervisor.epoch_report) ->
             er.Supervisor.status = Supervisor.Healthy)
           report.Supervisor.epochs)
    in
    let total_s =
      match
        List.assoc_opt "poc_epoch_seconds"
          (Metrics.histograms Metrics.default)
      with
      | Some h -> Metrics.Histogram.sum h
      | None -> 0.0
    in
    Printf.printf "profiled %d epochs (%d healthy) under rule %s in %.2fs\n"
      (List.length report.Supervisor.epochs)
      healthy (Acc.name rule) total_s;
    print_phase_table ();
    let counter_rows =
      List.filter_map
        (fun (name, c) ->
          let v = Metrics.Counter.value c in
          if v > 0.0 then Some [ name; Printf.sprintf "%.0f" v ] else None)
        (Metrics.counters Metrics.default)
    in
    if counter_rows <> [] then begin
      print_endline "\nwork counters:";
      Poc_util.Table.print
        ~align:Poc_util.Table.[ Left; Right ]
        ~header:[ "counter"; "value" ] counter_rows
    end
  in
  let term =
    Term.(
      const run $ verbose_arg $ seed_arg $ sites_arg $ bps_arg $ epochs_arg
      $ jobs_arg $ rule_arg $ trace_arg $ metrics_arg)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Run N supervised epochs and print the per-phase latency table")
    term

(* --- topology ------------------------------------------------------------------ *)

let topology_cmd =
  let run verbose seed sites bps scale =
    setup_logs verbose;
    let params =
      if scale then Wan.scale_params
      else (config ~sites ~bps ~seed ~rule:Acc.Handle_load).Planner.params
    in
    let t0 = Unix.gettimeofday () in
    let wan = Wan.generate ~params ~seed () in
    let dt = Unix.gettimeofday () -. t0 in
    Printf.printf "%s\n" (Wan.summary wan);
    Printf.printf "generated in %.1fs\n\n" dt;
    Array.iter
      (fun (bp : Wan.bp) ->
        Printf.printf "%-8s %3d sites, %4d links, share %5.1f%%\n" bp.Wan.bp_name
          (Array.length bp.Wan.footprint)
          (Array.length bp.Wan.link_ids)
          (100.0 *. bp.Wan.share))
      wan.Wan.bps
  in
  let scale_arg =
    Arg.(
      value & flag
      & info [ "scale" ]
          ~doc:
            "Generate the continent-scale preset (~10^5 offered links, \
             ~100 BPs); $(b,--sites)/$(b,--bps) are ignored.")
  in
  let term =
    Term.(const run $ verbose_arg $ seed_arg $ sites_arg $ bps_arg $ scale_arg)
  in
  Cmd.v (Cmd.info "topology" ~doc:"Describe a generated substrate") term

(* --- export ----------------------------------------------------------------------- *)

let export_cmd =
  let out_arg =
    Arg.(value & opt string "poc" & info [ "out" ] ~docv:"PREFIX"
           ~doc:"Output file prefix (writes PREFIX.graphml, PREFIX-links.csv, PREFIX-sites.csv).")
  in
  let run verbose seed sites bps rule out =
    setup_logs verbose;
    let plan = build_plan ~sites ~bps ~seed ~rule in
    let wan = plan.Planner.wan in
    let selected = Planner.backbone_enabled plan in
    let module Export = Poc_topology.Export in
    Export.write_file (out ^ ".graphml") (Export.graphml wan ~selected ());
    Export.write_file (out ^ "-links.csv") (Export.links_csv wan);
    Export.write_file (out ^ "-sites.csv") (Export.sites_csv wan);
    Printf.printf "wrote %s.graphml, %s-links.csv, %s-sites.csv\n" out out out
  in
  let term =
    Term.(const run $ verbose_arg $ seed_arg $ sites_arg $ bps_arg $ rule_arg
          $ out_arg)
  in
  Cmd.v (Cmd.info "export" ~doc:"Export the substrate and selection (GraphML/CSV)") term

(* --- federation ------------------------------------------------------------------ *)

let federation_cmd =
  let regions_arg =
    Arg.(value & opt int 2 & info [ "regions" ] ~docv:"N" ~doc:"Regional POCs.")
  in
  let run verbose seed sites bps regions =
    setup_logs verbose;
    let plan = build_plan ~sites ~bps ~seed ~rule:Acc.Handle_load in
    match Poc_federation.Federation.build plan ~regions with
    | Error msg ->
      Printf.eprintf "federation failed: %s\n" msg;
      exit 1
    | Ok f ->
      print_string (Poc_federation.Federation.render plan f);
      Printf.printf "federation spend $%.0f (%+.1f%% vs single POC)\n"
        f.Poc_federation.Federation.federation_spend
        (100.0 *. Poc_federation.Federation.fragmentation_overhead f)
  in
  let term =
    Term.(const run $ verbose_arg $ seed_arg $ sites_arg $ bps_arg $ regions_arg)
  in
  Cmd.v (Cmd.info "federation" ~doc:"Split the POC into regional POCs") term

(* --- availability ----------------------------------------------------------------- *)

let availability_cmd =
  let mtbf_arg =
    Arg.(value & opt float 2000.0 & info [ "mtbf" ] ~docv:"HOURS" ~doc:"Per-link MTBF.")
  in
  let run verbose seed sites bps rule mtbf =
    setup_logs verbose;
    let plan = build_plan ~sites ~bps ~seed ~rule in
    let module A = Poc_sim.Availability in
    let r =
      A.simulate plan
        { A.default_config with A.mtbf_hours = mtbf; seed = seed + 1 }
    in
    Printf.printf
      "plan %s: availability %.6f over a month (%d failures, worst %.4f, max %d concurrent)\n"
      (Acc.name rule) r.A.availability r.A.failure_events r.A.worst_fraction
      r.A.max_concurrent_failures
  in
  let term =
    Term.(
      const run $ verbose_arg $ seed_arg $ sites_arg $ bps_arg $ rule_arg
      $ mtbf_arg)
  in
  Cmd.v (Cmd.info "availability" ~doc:"Simulate link failures on the plan") term

(* --- baseline -------------------------------------------------------------------- *)

let baseline_cmd =
  let run verbose seed =
    setup_logs verbose;
    let module As_graph = Poc_baseline.As_graph in
    let module Bgp = Poc_baseline.Bgp in
    let g = As_graph.generate ~seed () in
    let n = As_graph.size g in
    Printf.printf "AS hierarchy: %d ASes, %d links, %d stub networks\n" n
      (Array.length g.As_graph.links)
      (List.length (As_graph.stubs g));
    Printf.printf "policy-reachable ordered pairs: %d / %d\n"
      (Bgp.reachable_pairs g) (n * (n - 1))
  in
  let term = Term.(const run $ verbose_arg $ seed_arg) in
  Cmd.v (Cmd.info "baseline" ~doc:"Describe the traditional-Internet comparator") term

let () =
  let doc = "A Public Option for the Core — planning, auction and policy toolkit" in
  let info = Cmd.info "poc-cli" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info
    [ plan_cmd; auction_cmd; econ_cmd; market_cmd; chaos_cmd; scrub_cmd;
      forensics_cmd; fleet_cmd; serve_cmd; ctl_cmd; profile_cmd; topology_cmd;
      federation_cmd; availability_cmd; export_cmd; baseline_cmd ]))
