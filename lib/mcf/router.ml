module Graph = Poc_graph.Graph
module Sparse = Poc_graph.Sparse
module Heap = Poc_graph.Heap
module Metrics = Poc_obs.Metrics

(* Router work counters: every full solve, every shortest-path search
   and every committed path chunk, plus the incremental re-routes the
   auction's pruning and failure checks lean on.  Always on — an
   increment is one float store — so any run can report how much
   routing a selection cost. *)
let m_routes =
  Metrics.counter ~help:"Full routing solves" Metrics.default
    "poc_router_routes_total"

let m_dijkstra =
  Metrics.counter ~help:"Residual-graph shortest-path searches"
    Metrics.default "poc_router_dijkstra_total"

let m_paths =
  Metrics.counter ~help:"Path chunks committed by the router"
    Metrics.default "poc_router_paths_total"

let m_reroutes =
  Metrics.counter ~help:"Incremental single-edge re-route computations"
    Metrics.default "poc_router_reroutes_total"

let m_toggle_repairs =
  Metrics.counter
    ~help:"Single-link toggles answered by repairing the base flow"
    Metrics.default "poc_router_toggle_repairs_total"

let m_toggle_scratch =
  Metrics.counter
    ~help:"Single-link toggles that fell back to a from-scratch solve"
    Metrics.default "poc_router_toggle_scratch_total"

type demand = int * int * float

type chunk = { src : int; dst : int; gbps : float; edge_ids : int list }

type routing = {
  feasible : bool;
  chunks : chunk array;
  unrouted : demand list;
  usage : float array;
  enabled_capacity : float;
}

type toggle = Remove of int | Add of int

let eps = 1e-6

let max_paths_per_demand = 64

let validate_demand n (a, b, d) =
  if a < 0 || a >= n || b < 0 || b >= n then invalid_arg "Router: unknown node";
  if a = b then invalid_arg "Router: self demand";
  if d < 0.0 || not (Float.is_finite d) then invalid_arg "Router: bad demand"

(* Congestion-aware Dijkstra on the residual graph: returns the edge-id
   path or None.  Weight of an edge is latency * (1 + alpha * u) where
   u is current utilization, which spreads load before links saturate.
   Runs over the compiled CSR; disabled edges carry zero residual, so
   the residual gate excludes them without a per-visit predicate call,
   and CSR neighbor order matches the list order the previous
   implementation used, keeping path choices bit-identical. *)
let residual_dijkstra ~(csr : Sparse.t) ~(buf : Sparse.Buf.buf) ~alpha n src
    dst =
  Metrics.Counter.inc m_dijkstra;
  let row = csr.Sparse.row_start in
  let col = csr.Sparse.col in
  let eids = csr.Sparse.eid in
  let lat = csr.Sparse.weight in
  let cap = csr.Sparse.capacity in
  let residual = buf.Sparse.Buf.residual in
  let usage = buf.Sparse.Buf.usage in
  let dist = Array.make n infinity in
  let pred = Array.make n (-1) in
  let settled = Array.make n false in
  let heap = Heap.create () in
  dist.(src) <- 0.0;
  Heap.push heap 0.0 src;
  let rec loop () =
    match Heap.pop heap with
    | None -> ()
    | Some (_, u) when settled.(dst) -> ignore u
    | Some (d, u) ->
      if not settled.(u) then begin
        settled.(u) <- true;
        let stop = row.{u + 1} in
        for k = row.{u} to stop - 1 do
          let v = col.{k} in
          let eid = eids.{k} in
          if (not settled.(v)) && residual.{eid} > eps then begin
            let c = cap.{eid} in
            let util = if c > 0.0 then usage.{eid} /. c else 0.0 in
            let w = lat.{k} *. (1.0 +. (alpha *. util)) in
            let nd = d +. w in
            if nd < dist.(v) then begin
              dist.(v) <- nd;
              pred.(v) <- eid;
              Heap.push heap nd v
            end
          end
        done
      end;
      loop ()
  in
  loop ();
  if dist.(dst) = infinity then None else Some pred

let path_from_pred g pred src dst =
  let rec walk node acc =
    if node = src then acc
    else begin
      let eid = pred.(node) in
      let e = Graph.edge g eid in
      walk (Graph.other_endpoint e node) (eid :: acc)
    end
  in
  walk dst []

(* Route one demand (possibly splitting) on the residual state.
   Returns the list of chunks created and the unrouted remainder. *)
let route_one g ~csr ~(buf : Sparse.Buf.buf) ~alpha (src, dst, gbps) =
  let n = Graph.node_count g in
  let residual = buf.Sparse.Buf.residual in
  let usage = buf.Sparse.Buf.usage in
  let chunks = ref [] in
  let rec go remaining attempts =
    if remaining <= eps then 0.0
    else if attempts >= max_paths_per_demand then remaining
    else begin
      match residual_dijkstra ~csr ~buf ~alpha n src dst with
      | None -> remaining
      | Some pred ->
        let path = path_from_pred g pred src dst in
        let bottleneck =
          List.fold_left
            (fun acc eid -> Float.min acc residual.{eid})
            infinity path
        in
        if bottleneck <= eps then remaining
        else begin
          let send = Float.min remaining bottleneck in
          List.iter
            (fun eid ->
              residual.{eid} <- residual.{eid} -. send;
              usage.{eid} <- usage.{eid} +. send)
            path;
          Metrics.Counter.inc m_paths;
          chunks := { src; dst; gbps = send; edge_ids = path } :: !chunks;
          go (remaining -. send) (attempts + 1)
        end
    end
  in
  let leftover = go gbps 0 in
  (List.rev !chunks, leftover)

let route ?(enabled = fun _ -> true) ?(congestion_alpha = 1.0) g ~demands =
  Metrics.Counter.inc m_routes;
  let n = Graph.node_count g in
  List.iter (validate_demand n) demands;
  let m = Graph.edge_count g in
  let csr = Sparse.of_graph g in
  let buf = Sparse.Buf.create m in
  let enabled_capacity = ref 0.0 in
  for id = 0 to m - 1 do
    if enabled id then begin
      let c = csr.Sparse.capacity.{id} in
      buf.Sparse.Buf.residual.{id} <- c;
      enabled_capacity := !enabled_capacity +. c
    end
  done;
  let sorted =
    List.sort (fun (_, _, a) (_, _, b) -> compare b a) demands
  in
  let all_chunks = ref [] in
  let unrouted = ref [] in
  List.iter
    (fun ((src, dst, _) as demand) ->
      let chunks, leftover =
        route_one g ~csr ~buf ~alpha:congestion_alpha demand
      in
      all_chunks := List.rev_append chunks !all_chunks;
      if leftover > eps then unrouted := (src, dst, leftover) :: !unrouted)
    sorted;
  {
    feasible = !unrouted = [];
    chunks = Array.of_list (List.rev !all_chunks);
    unrouted = List.rev !unrouted;
    usage = Sparse.Buf.usage_to_array buf;
    enabled_capacity = !enabled_capacity;
  }

let max_utilization g r =
  Graph.fold_edges
    (fun e acc ->
      if e.capacity > 0.0 then Float.max acc (r.usage.(e.id) /. e.capacity)
      else acc)
    g 0.0

let total_routed r =
  Array.fold_left (fun acc c -> acc +. c.gbps) 0.0 r.chunks

let used_edges r =
  let tbl = Hashtbl.create 64 in
  Array.iteri (fun eid u -> if u > eps then Hashtbl.replace tbl eid ()) r.usage;
  Hashtbl.fold (fun eid () acc -> eid :: acc) tbl [] |> List.sort compare

(* Shared core: the compiled CSR covers the whole graph; the failed
   edge and disabled edges are excluded by leaving their residual at
   zero, which the path search respects. *)
let reroute_core ~csr ?(enabled = fun _ -> true) g ~base ~failed_edge =
  Metrics.Counter.inc m_reroutes;
  let failed_capacity = (Graph.edge g failed_edge).capacity in
  if base.usage.(failed_edge) <= eps then
    (* Nothing crossed the edge: the routing is already valid without
       it; only the available capacity shrinks. *)
    Some
      { base with enabled_capacity = base.enabled_capacity -. failed_capacity }
  else begin
    let m = Graph.edge_count g in
    let buf = Sparse.Buf.create m in
    let residual = buf.Sparse.Buf.residual in
    let usage = buf.Sparse.Buf.usage in
    for id = 0 to m - 1 do
      if enabled id && id <> failed_edge then begin
        residual.{id} <- (csr : Sparse.t).Sparse.capacity.{id} -. base.usage.(id);
        usage.{id} <- base.usage.(id)
      end
    done;
    (* Give back the capacity held by chunks that crossed the failed
       edge, and collect their demand for re-routing. *)
    let affected = Hashtbl.create 16 in
    let kept = ref [] in
    Array.iter
      (fun c ->
        if List.mem failed_edge c.edge_ids then begin
          List.iter
            (fun eid ->
              if eid <> failed_edge then begin
                residual.{eid} <- residual.{eid} +. c.gbps;
                usage.{eid} <- usage.{eid} -. c.gbps
              end)
            c.edge_ids;
          let key = (c.src, c.dst) in
          let prev = Option.value ~default:0.0 (Hashtbl.find_opt affected key) in
          Hashtbl.replace affected key (prev +. c.gbps)
        end
        else kept := c :: !kept)
      base.chunks;
    let new_chunks = ref [] in
    let ok = ref true in
    Hashtbl.iter
      (fun (src, dst) gbps ->
        if !ok then begin
          let chunks, leftover =
            route_one g ~csr ~buf ~alpha:1.0 (src, dst, gbps)
          in
          new_chunks := List.rev_append chunks !new_chunks;
          if leftover > eps then ok := false
        end)
      affected;
    if not !ok then None
    else
      Some
        {
          feasible = true;
          chunks = Array.of_list (List.rev_append !kept !new_chunks);
          unrouted = [];
          usage = Sparse.Buf.usage_to_array buf;
          enabled_capacity = base.enabled_capacity -. failed_capacity;
        }
  end

let reroute_without_edge ?(enabled = fun _ -> true) g ~base ~failed_edge =
  let csr = Sparse.of_graph g in
  reroute_core ~csr ~enabled g ~base ~failed_edge

let route_toggle ?(enabled = fun _ -> true) ?(congestion_alpha = 1.0) g
    ~demands ~base toggle =
  let m = Graph.edge_count g in
  let check_edge eid =
    if eid < 0 || eid >= m then invalid_arg "Router.route_toggle: unknown edge"
  in
  match toggle with
  | Remove eid ->
    check_edge eid;
    if not (enabled eid) then
      invalid_arg "Router.route_toggle: Remove of a disabled edge";
    let enabled' id = enabled id && id <> eid in
    let repaired =
      if base.feasible then begin
        let csr = Sparse.of_graph g in
        reroute_core ~csr ~enabled g ~base ~failed_edge:eid
      end
      else None
    in
    (match repaired with
    | Some r ->
      Metrics.Counter.inc m_toggle_repairs;
      r
    | None ->
      Metrics.Counter.inc m_toggle_scratch;
      route ~enabled:enabled' ~congestion_alpha g ~demands)
  | Add eid ->
    check_edge eid;
    if enabled eid then
      invalid_arg "Router.route_toggle: Add of an enabled edge";
    let enabled' id = enabled id || id = eid in
    if base.feasible then begin
      (* The base flow never touches the new edge, so it stays valid
         verbatim; only the available capacity grows. *)
      Metrics.Counter.inc m_toggle_repairs;
      {
        base with
        enabled_capacity =
          base.enabled_capacity +. (Graph.edge g eid).capacity;
      }
    end
    else begin
      Metrics.Counter.inc m_toggle_scratch;
      route ~enabled:enabled' ~congestion_alpha g ~demands
    end

let survives_failure ?(enabled = fun _ -> true) g ~demands ~base ~failed_edge =
  ignore demands;
  match reroute_without_edge ~enabled g ~base ~failed_edge with
  | Some _ -> true
  | None -> false

let survives_all_single_failures ?(enabled = fun _ -> true) ?pool g ~demands
    base =
  ignore demands;
  let csr = Sparse.of_graph g in
  (* Most-loaded edges are the likeliest to be irreplaceable: check
     them first so infeasible sets fail fast. *)
  let by_load_desc =
    used_edges base
    |> List.sort (fun a b -> compare base.usage.(b) base.usage.(a))
  in
  let check eid =
    match reroute_core ~csr ~enabled g ~base ~failed_edge:eid with
    | Some _ -> true
    | None -> false
  in
  match pool with
  | None ->
    (* The serial path short-circuits at the first irreplaceable edge. *)
    List.for_all check by_load_desc
  | Some p ->
    (* Each per-edge check is pure over the shared base routing and the
       immutable CSR, so the fan-out is safe; the verdict (a
       conjunction) is independent of evaluation order, keeping
       outcomes identical at every pool size.  The pooled path
       evaluates every edge — no short-circuit — trading wasted work on
       infeasible sets for wall-clock on the (common) feasible ones. *)
    Poc_util.Pool.map_list p check by_load_desc |> List.for_all Fun.id
