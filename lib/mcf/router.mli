(** Multi-commodity routing / feasibility oracle.

    The auction's acceptability predicate A(OL) asks: does a candidate
    link subset provide "enough bandwidth to handle the traffic
    matrix"?  Exact multi-commodity flow is an LP; we use the standard
    path-based heuristic — demands in decreasing order, each split
    across successive congestion-aware shortest paths — which is
    deterministic, fast, and conservative (it may call a feasible set
    infeasible, never the reverse).  The same oracle, restricted to
    surviving links, expresses the failure constraints of Figure 2.

    Demands are given per unordered node pair (links are undirected);
    use {!Poc_traffic.Matrix.undirected_pair_demands} upstream. *)

type demand = int * int * float
(** [(node_a, node_b, gbps)] with [node_a <> node_b] and [gbps >= 0]. *)

type chunk = {
  src : int;
  dst : int;
  gbps : float;
  edge_ids : int list; (** path taken, in order *)
}
(** One routed piece of a demand (demands may split across paths). *)

type routing = {
  feasible : bool;
  chunks : chunk array;
  unrouted : demand list;        (** residual demand that found no path *)
  usage : float array;           (** per edge id, Gbps carried *)
  enabled_capacity : float;      (** total capacity of enabled edges *)
}

type toggle =
  | Remove of int  (** disable this currently-enabled edge id *)
  | Add of int     (** enable this currently-disabled edge id *)
(** A single-link change to the enabled set, for {!route_toggle}. *)

val route :
  ?enabled:(int -> bool) ->
  ?congestion_alpha:float ->
  Poc_graph.Graph.t ->
  demands:demand list ->
  routing
(** [route g ~demands] routes every demand over the enabled subgraph.
    [congestion_alpha] (default 1.0) scales the utilization penalty in
    the path metric; 0 gives pure-latency shortest paths. *)

val route_toggle :
  ?enabled:(int -> bool) ->
  ?congestion_alpha:float ->
  Poc_graph.Graph.t ->
  demands:demand list ->
  base:routing ->
  toggle ->
  routing
(** [route_toggle g ~demands ~base t] answers the routing question for
    the enabled set with the single-link change [t] applied, reusing
    [base] = [route ~enabled g ~demands] instead of re-solving:

    - [Remove eid] drains the chunks crossing [eid] and re-routes only
      the displaced commodities on the residual capacity
      ({!reroute_without_edge}); if the repair does not fit it falls
      back to a from-scratch {!route} on the reduced set.
    - [Add eid] keeps a feasible [base] verbatim (the new link carries
      nothing) and only grows [enabled_capacity]; an infeasible [base]
      is re-solved from scratch with the extra link.

    Because the fallback is exactly the from-scratch solve, the
    feasibility verdict is a superset of {!route}'s: whenever the
    from-scratch oracle says feasible, so does [route_toggle] (the
    repair path can only add feasible answers the conservative
    heuristic would have missed).  The returned routing is always valid
    for the toggled enabled set — chunks use only enabled links,
    capacities are respected, and a removed link carries nothing.
    [enabled] must describe the set [base] was computed against:
    [Remove] requires [enabled eid], [Add] requires [not (enabled eid)]
    ([Invalid_argument] otherwise).  Repair-vs-fallback counts are
    exported as [poc_router_toggle_repairs_total] /
    [poc_router_toggle_scratch_total]. *)

val max_utilization : Poc_graph.Graph.t -> routing -> float
(** Highest usage/capacity ratio over enabled edges with capacity. *)

val total_routed : routing -> float

val used_edges : routing -> int list
(** Edge ids carrying positive flow, sorted. *)

val reroute_without_edge :
  ?enabled:(int -> bool) ->
  Poc_graph.Graph.t ->
  base:routing ->
  failed_edge:int ->
  routing option
(** [reroute_without_edge g ~base ~failed_edge] produces a complete
    routing over the enabled set minus [failed_edge], reusing [base]:
    chunks not crossing the failed edge keep their paths, the rest are
    re-routed on the residual capacity.  [None] when the re-route does
    not fit.  This is the incremental primitive behind both failure
    checks and the auction's prune loop. *)

val survives_failure :
  ?enabled:(int -> bool) ->
  Poc_graph.Graph.t ->
  demands:demand list ->
  base:routing ->
  failed_edge:int ->
  bool
(** [survives_failure g ~demands ~base ~failed_edge] checks feasibility
    with one edge removed, reusing [base]: demands not touching the
    failed edge keep their paths; affected demand is re-routed on the
    residual capacity.  Conservative in the same sense as {!route}. *)

val survives_all_single_failures :
  ?enabled:(int -> bool) ->
  ?pool:Poc_util.Pool.t ->
  Poc_graph.Graph.t ->
  demands:demand list ->
  routing ->
  bool
(** True when the routing survives the failure of each used edge in
    turn (unused edges cannot hurt and are skipped).  Each per-edge
    check reroutes against the same immutable base, so with [pool] they
    fan out across worker domains; the verdict is identical at every
    pool size (the serial path short-circuits, the pooled path checks
    every edge). *)
