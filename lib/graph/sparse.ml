type int_slab = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type float_slab =
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  nodes : int;
  edges : int;
  row_start : int_slab;
  col : int_slab;
  eid : int_slab;
  weight : float_slab;
  capacity : float_slab;
}

let int_slab n : int_slab =
  Bigarray.Array1.create Bigarray.int Bigarray.c_layout n

let float_slab n : float_slab =
  Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n

let int_slab_create = int_slab
let float_slab_create = float_slab

(* Counting sort into CSR.  Scanning edges in id order and appending to
   both endpoints reproduces Graph.neighbors' per-node order (ascending
   insertion), which is what keeps algorithms moved onto the CSR
   bit-identical with their list-based predecessors. *)
let build g =
  let n = Graph.node_count g in
  let m = Graph.edge_count g in
  let row_start = int_slab (n + 1) in
  Bigarray.Array1.fill row_start 0;
  let deg = Array.make n 0 in
  for id = 0 to m - 1 do
    let e = Graph.edge g id in
    deg.(e.Graph.u) <- deg.(e.Graph.u) + 1;
    deg.(e.Graph.v) <- deg.(e.Graph.v) + 1
  done;
  let acc = ref 0 in
  for u = 0 to n - 1 do
    row_start.{u} <- !acc;
    acc := !acc + deg.(u)
  done;
  row_start.{n} <- !acc;
  let col = int_slab (2 * m) in
  let eid = int_slab (2 * m) in
  let weight = float_slab (2 * m) in
  let capacity = float_slab m in
  let cursor = Array.make n 0 in
  for u = 0 to n - 1 do
    cursor.(u) <- row_start.{u}
  done;
  for id = 0 to m - 1 do
    let e = Graph.edge g id in
    capacity.{id} <- e.Graph.capacity;
    let put u v =
      let k = cursor.(u) in
      cursor.(u) <- k + 1;
      col.{k} <- v;
      eid.{k} <- id;
      weight.{k} <- e.Graph.weight
    in
    put e.Graph.u e.Graph.v;
    put e.Graph.v e.Graph.u
  done;
  { nodes = n; edges = m; row_start; col; eid; weight; capacity }

(* One compiled CSR per domain, keyed on (physical graph, version).
   Topologies are mutated only while they are generated and then probed
   thousands of times, so a single slot per domain captures virtually
   every hit; a miss is just a rebuild. *)
let slot_key : (Graph.t * int * t) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let of_graph g =
  let slot = Domain.DLS.get slot_key in
  match !slot with
  | Some (g', version, csr) when g' == g && version = Graph.version g -> csr
  | Some _ | None ->
    let csr = build g in
    slot := Some (g, Graph.version g, csr);
    csr

module Buf = struct
  type buf = { residual : float_slab; usage : float_slab }

  let create edges =
    let buf =
      { residual = float_slab edges; usage = float_slab edges }
    in
    Bigarray.Array1.fill buf.residual 0.0;
    Bigarray.Array1.fill buf.usage 0.0;
    buf

  let clear buf =
    Bigarray.Array1.fill buf.residual 0.0;
    Bigarray.Array1.fill buf.usage 0.0

  let usage_to_array buf =
    Array.init (Bigarray.Array1.dim buf.usage) (fun i -> buf.usage.{i})
end
