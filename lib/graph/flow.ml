type result = {
  value : float;
  cut_edges : int list;
  source_side : bool array;
  edge_flow : float array;
}

let always_enabled _ = true

(* Flat Edmonds-Karp over Bigarray slabs.  Each enabled edge becomes an
   arc pair: arc [2j] carries u->v, arc [2j+1] carries v->u, so the
   partner of arc [ai] is [ai lxor 1].  Per-node arcs are visited in
   reverse insertion order — the order the previous cons-list
   implementation produced — keeping augmenting-path choices, and
   therefore the reported cut, bit-identical. *)
let max_flow ?(enabled = always_enabled) g s t =
  if s = t then invalid_arg "Flow.max_flow: source equals sink";
  let n = Graph.node_count g in
  let m = Graph.edge_count g in
  let sel = Array.make (max 1 m) (-1) in
  let pairs = ref 0 in
  for id = 0 to m - 1 do
    if enabled id then begin
      sel.(id) <- !pairs;
      incr pairs
    end
  done;
  let pairs = !pairs in
  let arc_total = 2 * pairs in
  let arc_dst = Sparse.int_slab_create arc_total in
  let arc_res = Sparse.float_slab_create arc_total in
  let pair_edge = Array.make (max 1 pairs) 0 in
  let deg = Array.make n 0 in
  for id = 0 to m - 1 do
    if sel.(id) >= 0 then begin
      let e = Graph.edge g id in
      deg.(e.Graph.u) <- deg.(e.Graph.u) + 1;
      deg.(e.Graph.v) <- deg.(e.Graph.v) + 1
    end
  done;
  let row = Array.make (n + 1) 0 in
  let acc = ref 0 in
  for u = 0 to n - 1 do
    row.(u) <- !acc;
    acc := !acc + deg.(u)
  done;
  row.(n) <- !acc;
  let order = Sparse.int_slab_create arc_total in
  let cursor = Array.make n 0 in
  for u = 0 to n - 1 do
    cursor.(u) <- row.(u + 1)
  done;
  for id = 0 to m - 1 do
    let j = sel.(id) in
    if j >= 0 then begin
      let e = Graph.edge g id in
      pair_edge.(j) <- id;
      arc_dst.{2 * j} <- e.Graph.v;
      arc_dst.{(2 * j) + 1} <- e.Graph.u;
      arc_res.{2 * j} <- e.Graph.capacity;
      arc_res.{(2 * j) + 1} <- e.Graph.capacity;
      (* Rows fill back-to-front while edges scan forward, so a
         front-to-back row walk sees the newest arc first. *)
      cursor.(e.Graph.u) <- cursor.(e.Graph.u) - 1;
      order.{cursor.(e.Graph.u)} <- 2 * j;
      cursor.(e.Graph.v) <- cursor.(e.Graph.v) - 1;
      order.{cursor.(e.Graph.v)} <- (2 * j) + 1
    end
  done;
  let total = ref 0.0 in
  let parent_arc = Array.make n (-1) in
  let queue = Queue.create () in
  let rec bfs_augment () =
    Array.fill parent_arc 0 n (-1);
    Queue.clear queue;
    Queue.push s queue;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      let stop = row.(u + 1) in
      let k = ref row.(u) in
      while (not !found) && !k < stop do
        let ai = order.{!k} in
        let dst = arc_dst.{ai} in
        if arc_res.{ai} > 1e-12 && dst <> s && parent_arc.(dst) < 0 then begin
          parent_arc.(dst) <- ai;
          if dst = t then found := true else Queue.push dst queue
        end;
        incr k
      done
    done;
    if !found then begin
      let rec bottleneck node acc =
        if node = s then acc
        else begin
          let ai = parent_arc.(node) in
          bottleneck arc_dst.{ai lxor 1} (Float.min acc arc_res.{ai})
        end
      in
      let delta = bottleneck t infinity in
      let rec apply node =
        if node <> s then begin
          let ai = parent_arc.(node) in
          arc_res.{ai} <- arc_res.{ai} -. delta;
          arc_res.{ai lxor 1} <- arc_res.{ai lxor 1} +. delta;
          apply arc_dst.{ai lxor 1}
        end
      in
      apply t;
      total := !total +. delta;
      bfs_augment ()
    end
  in
  bfs_augment ();
  (* Residual reachability from s gives the min cut. *)
  let source_side = Array.make n false in
  Queue.clear queue;
  source_side.(s) <- true;
  Queue.push s queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    for k = row.(u) to row.(u + 1) - 1 do
      let ai = order.{k} in
      let dst = arc_dst.{ai} in
      if arc_res.{ai} > 1e-12 && not source_side.(dst) then begin
        source_side.(dst) <- true;
        Queue.push dst queue
      end
    done
  done;
  let cut_edges =
    Graph.fold_edges
      (fun e acc ->
        if enabled e.id && source_side.(e.u) <> source_side.(e.v) then
          e.id :: acc
        else acc)
      g []
    |> List.sort compare
  in
  (* Residuals always satisfy fwd + back = 2·capacity, so the signed
     u->v flow on edge j is (back - fwd) / 2. *)
  let edge_flow = Array.make m 0.0 in
  for j = 0 to pairs - 1 do
    edge_flow.(pair_edge.(j)) <-
      (arc_res.{(2 * j) + 1} -. arc_res.{2 * j}) /. 2.0
  done;
  { value = !total; cut_edges; source_side; edge_flow }

let idle_eps = 1e-9

let max_flow_without_edge ?(enabled = always_enabled) g s t ~prev ~edge =
  if edge < 0 || edge >= Graph.edge_count g then
    invalid_arg "Flow.max_flow_without_edge: unknown edge";
  if Float.abs prev.edge_flow.(edge) <= idle_eps then begin
    (* Exact fast path.  [prev]'s flow is feasible without [edge]
       (the edge carries nothing), and every min-cut edge is saturated
       at optimum, so a zero-flow cut edge has zero capacity and can be
       dropped from the cut without changing its capacity.  Value and
       cut therefore both survive the removal unchanged. *)
    let edge_flow = Array.copy prev.edge_flow in
    edge_flow.(edge) <- 0.0;
    {
      prev with
      cut_edges = List.filter (fun id -> id <> edge) prev.cut_edges;
      edge_flow;
    }
  end
  else max_flow ~enabled:(fun id -> id <> edge && enabled id) g s t

let cut_capacity g ids =
  List.fold_left (fun acc id -> acc +. (Graph.edge g id).capacity) 0.0 ids
