(** Flat, Bigarray-backed views of a {!Graph.t} for continent-scale
    instances.

    The list-of-lists adjacency inside {!Graph.t} is convenient while a
    topology is being built, but at the 10^5-link scale the ROADMAP
    targets it costs a pointer chase and a tuple allocation per edge
    visit.  This module compiles a graph into two flat forms:

    - {!t}, a compressed-sparse-row (CSR) adjacency over Bigarray
      storage: one [int] slab for row offsets, one for neighbor nodes,
      one for incident edge ids, and [float64] slabs for the per-visit
      edge weight and per-edge capacity.  Per-node neighbor order is
      ascending edge-insertion order — exactly the order
      {!Graph.neighbors} yields — so algorithms moved onto the CSR
      produce bit-identical results.
    - {!Buf}, reusable [float64] flow buffers (residual / usage /
      capacity) sized by edge count.

    Memory, for a graph with [V] nodes and [E] undirected edges
    (8-byte elements): CSR ≈ 8·(V+1) + 3·16·E + 8·E bytes ≈ 56·E for
    E ≫ V, i.e. ~5.6 MB at E = 10^5 — small enough to keep one per
    worker domain.  (An int32 variant would halve the index slabs; the
    [int] kind is used so element reads stay unboxed immediates.)

    {!of_graph} memoizes per domain: the compiled CSR is cached in
    domain-local storage keyed on (physical graph, {!Graph.version}),
    so the auction's thousands of feasibility probes against one fixed
    topology compile it once per domain, not once per probe.  The cache
    holds a strong reference to the last graph it compiled. *)

type int_slab = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type float_slab =
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = private {
  nodes : int;          (** node count of the source graph *)
  edges : int;          (** edge count of the source graph *)
  row_start : int_slab; (** length [nodes + 1]; node [u]'s incident
                            half-edges live at indices
                            [row_start.{u} .. row_start.{u+1} - 1] *)
  col : int_slab;       (** length [2·edges]; neighbor node per half-edge *)
  eid : int_slab;       (** length [2·edges]; edge id per half-edge *)
  weight : float_slab;  (** length [2·edges]; edge weight per half-edge *)
  capacity : float_slab;(** length [edges]; capacity per edge id *)
}

val int_slab_create : int -> int_slab
(** Allocate an uninitialized [int] slab of the given length (0 is
    legal and yields an empty slab). *)

val float_slab_create : int -> float_slab
(** Allocate an uninitialized [float64] slab of the given length. *)

val build : Graph.t -> t
(** Compile the graph to CSR, bypassing the domain-local cache.  O(V+E). *)

val of_graph : Graph.t -> t
(** Like {!build} but memoized per domain on (graph identity,
    {!Graph.version}): repeated calls against an unmodified graph are
    O(1).  Safe to call concurrently from pool workers — each domain
    keeps its own compiled copy, so there is no shared mutable state. *)

(** Reusable per-edge flow state for routing algorithms: three [float64]
    slabs indexed by edge id. *)
module Buf : sig
  type buf = { residual : float_slab; usage : float_slab }

  val create : int -> buf
  (** [create edges] allocates zeroed residual/usage slabs. *)

  val clear : buf -> unit
  (** Zero both slabs (for reuse across solves). *)

  val usage_to_array : buf -> float array
  (** Copy the usage slab out to a heap [float array] — the shape the
      rest of the tree consumes ({!Poc_mcf.Router.routing.usage}). *)
end
