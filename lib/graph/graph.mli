(** Undirected multigraph with weighted, capacitated edges.

    This is the shared substrate under the topology generator, the
    multi-commodity router, and the bandwidth auction.  Edges carry a
    latency-like [weight] and a bandwidth [capacity].  Algorithms take
    an optional [enabled] predicate over edge ids so callers (notably
    the auction, which evaluates many candidate link subsets) can work
    on subgraphs without copying. *)

type t

type node = int

type edge = {
  id : int;
  u : node;
  v : node;
  weight : float;   (** routing metric, e.g. propagation latency in ms *)
  capacity : float; (** bandwidth in Gbps *)
}

val create : unit -> t

val add_node : t -> node
(** Appends a node and returns its index (indices are dense from 0). *)

val add_nodes : t -> int -> unit
(** [add_nodes g n] appends [n] nodes. *)

val add_edge : t -> node -> node -> weight:float -> capacity:float -> int
(** Adds an undirected edge, returning its id (ids are dense from 0).
    Requires both endpoints to exist, be distinct, [weight >= 0] and
    [capacity >= 0]. *)

val node_count : t -> int
val edge_count : t -> int

val version : t -> int
(** Mutation counter: bumped by every {!add_node} / {!add_edge}.  Flat
    compiled views of the graph ({!Sparse.of_graph}) key their caches
    on (graph identity, version), so a stale view is never served after
    the graph grows. *)

val edge : t -> int -> edge
(** Edge by id.  Raises [Invalid_argument] on an unknown id. *)

val edges : t -> edge array
(** All edges, by id. *)

val other_endpoint : edge -> node -> node
(** [other_endpoint e n] is the endpoint of [e] that is not [n].
    Raises [Invalid_argument] if [n] is not an endpoint. *)

val incident : t -> node -> edge list
(** Edges touching a node. *)

val neighbors : t -> node -> (node * edge) list
(** [(other_endpoint, edge)] pairs for each incident edge. *)

val degree : t -> node -> int

val fold_edges : (edge -> 'a -> 'a) -> t -> 'a -> 'a

val copy : t -> t

val pp : Format.formatter -> t -> unit
(** Short "nodes/edges" description. *)
