type path = Graph.edge list

let always_enabled _ = true

let path_weight p = List.fold_left (fun acc (e : Graph.edge) -> acc +. e.weight) 0.0 p

let path_nodes ~src p =
  let rec walk node = function
    | [] -> [ node ]
    | e :: rest -> node :: walk (Graph.other_endpoint e node) rest
  in
  walk src p

let dijkstra ?(enabled = always_enabled) g src =
  let n = Graph.node_count g in
  if src < 0 || src >= n then invalid_arg "Paths.dijkstra: unknown source";
  let csr = Sparse.of_graph g in
  let row = csr.Sparse.row_start in
  let col = csr.Sparse.col in
  let eid = csr.Sparse.eid in
  let wt = csr.Sparse.weight in
  let dist = Array.make n infinity in
  let pred = Array.make n None in
  let settled = Array.make n false in
  let heap = Heap.create () in
  dist.(src) <- 0.0;
  Heap.push heap 0.0 src;
  (* CSR half-edges per node are in ascending insertion order — the
     same order Graph.neighbors yields — so results are bit-identical
     with the list-based relaxation this replaces. *)
  let rec loop () =
    match Heap.pop heap with
    | None -> ()
    | Some (d, u) ->
      if not settled.(u) then begin
        settled.(u) <- true;
        let stop = row.{u + 1} in
        for k = row.{u} to stop - 1 do
          let id = eid.{k} in
          let v = col.{k} in
          if enabled id && not settled.(v) then begin
            let nd = d +. wt.{k} in
            if nd < dist.(v) then begin
              dist.(v) <- nd;
              pred.(v) <- Some id;
              Heap.push heap nd v
            end
          end
        done
      end;
      loop ()
  in
  loop ();
  (dist, pred)

let reconstruct g pred src dst =
  let rec walk node acc =
    if node = src then Some acc
    else begin
      match pred.(node) with
      | None -> None
      | Some eid ->
        let e = Graph.edge g eid in
        walk (Graph.other_endpoint e node) (e :: acc)
    end
  in
  walk dst []

let shortest_path ?(enabled = always_enabled) g src dst =
  if src = dst then Some []
  else begin
    let _, pred = dijkstra ~enabled g src in
    reconstruct g pred src dst
  end

let hop_distance ?(enabled = always_enabled) g src dst =
  let n = Graph.node_count g in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Paths.hop_distance: unknown node";
  if src = dst then Some 0
  else begin
    let dist = Array.make n (-1) in
    let queue = Queue.create () in
    dist.(src) <- 0;
    Queue.push src queue;
    let result = ref None in
    while !result = None && not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      let visit (v, (e : Graph.edge)) =
        if enabled e.id && dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          if v = dst then result := Some dist.(v) else Queue.push v queue
        end
      in
      List.iter visit (Graph.neighbors g u)
    done;
    !result
  end

let connected ?(enabled = always_enabled) g src dst =
  match hop_distance ~enabled g src dst with Some _ -> true | None -> false

let components ?(enabled = always_enabled) g =
  let n = Graph.node_count g in
  let label = Array.make n (-1) in
  let next = ref 0 in
  for start = 0 to n - 1 do
    if label.(start) < 0 then begin
      let c = !next in
      incr next;
      let queue = Queue.create () in
      label.(start) <- c;
      Queue.push start queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        let visit (v, (e : Graph.edge)) =
          if enabled e.id && label.(v) < 0 then begin
            label.(v) <- c;
            Queue.push v queue
          end
        in
        List.iter visit (Graph.neighbors g u)
      done
    end
  done;
  label

let component_count ?enabled g =
  let label = components ?enabled g in
  Array.fold_left (fun acc c -> max acc (c + 1)) 0 label

let is_connected ?enabled g =
  Graph.node_count g < 2 || component_count ?enabled g = 1

(* Yen's k-shortest loopless paths.  Candidate paths are deduplicated
   by their edge-id sequence. *)
let k_shortest_paths ?(enabled = always_enabled) g src dst k =
  if k <= 0 then []
  else begin
    match shortest_path ~enabled g src dst with
    | None -> []
    | Some first ->
      let accepted = ref [ first ] in
      let candidates : (float * path) list ref = ref [] in
      let path_ids p = List.map (fun (e : Graph.edge) -> e.id) p in
      let seen = Hashtbl.create 16 in
      Hashtbl.replace seen (path_ids first) ();
      let rec iterate count =
        if count >= k then ()
        else begin
          let prev = List.hd !accepted in
          let prev_nodes = Array.of_list (path_nodes ~src prev) in
          let prev_edges = Array.of_list prev in
          (* For each spur node along the previous path... *)
          for i = 0 to Array.length prev_edges - 1 do
            let spur_node = prev_nodes.(i) in
            let root = Array.to_list (Array.sub prev_edges 0 i) in
            let root_ids = path_ids root in
            (* Edges to hide: the next edge of any accepted path sharing
               this root, plus edges incident to root-interior nodes. *)
            let hidden_edges = Hashtbl.create 16 in
            let hide_next p =
              let ids = path_ids p in
              let rec shares a b =
                match (a, b) with
                | [], next :: _ -> Some next
                | x :: a', y :: b' when x = y -> shares a' b'
                | _, _ -> None
              in
              match shares root_ids ids with
              | Some next -> Hashtbl.replace hidden_edges next ()
              | None -> ()
            in
            List.iter hide_next !accepted;
            let hidden_nodes = Hashtbl.create 16 in
            for j = 0 to i - 1 do
              Hashtbl.replace hidden_nodes prev_nodes.(j) ()
            done;
            let enabled' eid =
              enabled eid
              && (not (Hashtbl.mem hidden_edges eid))
              &&
              let e = Graph.edge g eid in
              (not (Hashtbl.mem hidden_nodes e.u)) && not (Hashtbl.mem hidden_nodes e.v)
            in
            match shortest_path ~enabled:enabled' g spur_node dst with
            | None -> ()
            | Some spur ->
              let total = root @ spur in
              let ids = path_ids total in
              if not (Hashtbl.mem seen ids) then begin
                Hashtbl.replace seen ids ();
                candidates := (path_weight total, total) :: !candidates
              end
          done;
          match List.sort (fun (a, _) (b, _) -> compare a b) !candidates with
          | [] -> ()
          | (_, best) :: rest ->
            candidates := rest;
            accepted := best :: !accepted;
            iterate (count + 1)
        end
      in
      iterate 1;
      List.rev !accepted
  end

let bridges ?(enabled = always_enabled) g =
  (* Tarjan low-link over the enabled subgraph; parallel edges between
     the same endpoints are never bridges, handled by skipping only the
     specific tree edge id. *)
  let n = Graph.node_count g in
  let visited = Array.make n false in
  let disc = Array.make n 0 in
  let low = Array.make n 0 in
  let timer = ref 0 in
  let result = ref [] in
  let rec dfs u parent_edge =
    visited.(u) <- true;
    incr timer;
    disc.(u) <- !timer;
    low.(u) <- !timer;
    let visit (v, (e : Graph.edge)) =
      if enabled e.id then begin
        if not visited.(v) then begin
          dfs v (Some e.id);
          low.(u) <- min low.(u) low.(v);
          if low.(v) > disc.(u) then result := e.id :: !result
        end
        else if Some e.id <> parent_edge then low.(u) <- min low.(u) disc.(v)
      end
    in
    List.iter visit (Graph.neighbors g u)
  in
  for u = 0 to n - 1 do
    if not visited.(u) then dfs u None
  done;
  List.sort compare !result
