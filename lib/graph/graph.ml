type node = int

type edge = { id : int; u : node; v : node; weight : float; capacity : float }

type t = {
  mutable nodes : int;
  mutable edges : edge array;
  mutable edge_len : int;
  mutable adjacency : int list array; (* node -> incident edge ids *)
  mutable version : int; (* bumped on every mutation; keys CSR caches *)
}

let create () =
  { nodes = 0; edges = [||]; edge_len = 0; adjacency = [||]; version = 0 }

let version g = g.version

let grow_adjacency g n =
  let cap = Array.length g.adjacency in
  if n > cap then begin
    let ncap = max 16 (max n (2 * cap)) in
    let narr = Array.make ncap [] in
    Array.blit g.adjacency 0 narr 0 cap;
    g.adjacency <- narr
  end

let add_node g =
  let id = g.nodes in
  g.nodes <- id + 1;
  g.version <- g.version + 1;
  grow_adjacency g g.nodes;
  id

let add_nodes g n =
  for _ = 1 to n do
    ignore (add_node g)
  done

let node_count g = g.nodes

let edge_count g = g.edge_len

let grow_edges g e =
  let cap = Array.length g.edges in
  if g.edge_len = cap then begin
    let ncap = max 16 (2 * cap) in
    let narr = Array.make ncap e in
    Array.blit g.edges 0 narr 0 g.edge_len;
    g.edges <- narr
  end

let add_edge g u v ~weight ~capacity =
  if u < 0 || u >= g.nodes || v < 0 || v >= g.nodes then
    invalid_arg "Graph.add_edge: unknown endpoint";
  if u = v then invalid_arg "Graph.add_edge: self loop";
  if weight < 0.0 || capacity < 0.0 then
    invalid_arg "Graph.add_edge: negative weight or capacity";
  let id = g.edge_len in
  let e = { id; u; v; weight; capacity } in
  grow_edges g e;
  g.edges.(id) <- e;
  g.edge_len <- id + 1;
  g.version <- g.version + 1;
  g.adjacency.(u) <- id :: g.adjacency.(u);
  g.adjacency.(v) <- id :: g.adjacency.(v);
  id

let edge g id =
  if id < 0 || id >= g.edge_len then invalid_arg "Graph.edge: unknown id";
  g.edges.(id)

let edges g = Array.sub g.edges 0 g.edge_len

let other_endpoint e n =
  if e.u = n then e.v
  else if e.v = n then e.u
  else invalid_arg "Graph.other_endpoint: node not on edge"

let incident g n =
  if n < 0 || n >= g.nodes then invalid_arg "Graph.incident: unknown node";
  List.rev_map (fun id -> g.edges.(id)) g.adjacency.(n)

let neighbors g n = List.map (fun e -> (other_endpoint e n, e)) (incident g n)

let degree g n =
  if n < 0 || n >= g.nodes then invalid_arg "Graph.degree: unknown node";
  List.length g.adjacency.(n)

let fold_edges f g init =
  let acc = ref init in
  for i = 0 to g.edge_len - 1 do
    acc := f g.edges.(i) !acc
  done;
  !acc

let copy g =
  {
    nodes = g.nodes;
    edges = Array.copy g.edges;
    edge_len = g.edge_len;
    adjacency = Array.map (fun l -> l) (Array.copy g.adjacency);
    version = g.version;
  }

let pp ppf g =
  Format.fprintf ppf "graph(%d nodes, %d edges)" g.nodes g.edge_len
