(** Maximum flow on the capacitated (sub)graph.

    Used for capacity sanity checks in planning (is there enough raw
    capacity between two attachment points?) and in tests (max-flow =
    min-cut as a property check).  Undirected edges may carry up to
    their capacity in either direction. *)

type result = {
  value : float;            (** max s-t flow value *)
  cut_edges : int list;     (** edge ids forming a minimum s-t cut *)
  source_side : bool array; (** node partition: true = source side *)
  edge_flow : float array;  (** signed net flow per edge id, positive in
                                the edge's [u]->[v] direction; [0.0] for
                                disabled edges *)
}

val max_flow :
  ?enabled:(int -> bool) -> Graph.t -> Graph.node -> Graph.node -> result
(** [max_flow g s t] by Edmonds-Karp over flat Bigarray arc slabs.
    Requires [s <> t]. *)

val max_flow_without_edge :
  ?enabled:(int -> bool) ->
  Graph.t ->
  Graph.node ->
  Graph.node ->
  prev:result ->
  edge:int ->
  result
(** [max_flow_without_edge g s t ~prev ~edge] is
    [max_flow g s t] with [edge] additionally disabled, given [prev] =
    [max_flow ~enabled g s t] on the same graph and enabled set.  When
    [prev] routed (numerically) nothing over [edge] the answer is
    returned in O(cut + edges) without re-solving: the previous flow
    remains feasible, and a min-cut edge is always saturated at
    optimum, so a zero-flow cut edge has zero capacity and can be
    dropped from the cut with its capacity — and hence the flow value —
    unchanged.  Otherwise it falls back to a from-scratch solve.  The
    result is exactly what [max_flow] would return, on either path. *)

val cut_capacity : Graph.t -> int list -> float
(** Total capacity of a set of edge ids. *)
