(** Availability under stochastic link failures.

    Figure 2's constraints buy resilience at a price; this simulator
    measures what that buys at runtime.  Each leased link fails as a
    Poisson process (exponential time-to-failure) and is repaired
    after an exponential delay; between events, the traffic matrix is
    re-routed over the surviving links and the delivered fraction is
    recorded.  Traffic-weighted availability is the time integral of
    that fraction.

    Plans selected under Constraint #1 should dip on single failures;
    Constraint #2 plans should ride through any single failure and dip
    only when failures overlap. *)

type config = {
  horizon_hours : float; (** simulated wall-clock, e.g. 720 for a month *)
  mtbf_hours : float;    (** per-link mean time between failures *)
  mttr_hours : float;    (** mean time to repair *)
  seed : int;
}

val default_config : config
(** A month at MTBF 2000h / MTTR 12h per link. *)

val validate_config : config -> (unit, string) result
(** Checks every field and reports all offending ones in one message,
    e.g. ["Availability: horizon_hours must be positive; mttr_hours
    must be positive"]. *)

type event = Fail of int | Repair of int

type sample = {
  time_h : float;
  event : event;
  delivered_fraction : float; (** fraction of the traffic matrix
                                  carried after this event *)
  concurrent_failures : int;
}

type report = {
  samples : sample list;        (** chronological *)
  availability : float;         (** time-weighted delivered fraction *)
  worst_fraction : float;
  failure_events : int;
  max_concurrent_failures : int;
}

val simulate : Poc_core.Planner.plan -> config -> report
(** Requires a feasible plan; raises [Invalid_argument] with the
    {!validate_config} message when the config is invalid. *)
