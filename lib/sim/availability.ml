module Prng = Poc_util.Prng
module Heap = Poc_graph.Heap
module Router = Poc_mcf.Router
module Planner = Poc_core.Planner
module Matrix = Poc_traffic.Matrix

type config = {
  horizon_hours : float;
  mtbf_hours : float;
  mttr_hours : float;
  seed : int;
}

let default_config =
  { horizon_hours = 720.0; mtbf_hours = 2000.0; mttr_hours = 12.0; seed = 1 }

type event = Fail of int | Repair of int

type sample = {
  time_h : float;
  event : event;
  delivered_fraction : float;
  concurrent_failures : int;
}

type report = {
  samples : sample list;
  availability : float;
  worst_fraction : float;
  failure_events : int;
  max_concurrent_failures : int;
}

(* Every bad field is reported at once, not just the first. *)
let config_problems config =
  let bad = ref [] in
  let check ok msg = if not ok then bad := msg :: !bad in
  let positive v = Float.is_finite v && v > 0.0 in
  check (positive config.horizon_hours) "horizon_hours must be positive";
  check (positive config.mtbf_hours) "mtbf_hours must be positive";
  check (positive config.mttr_hours) "mttr_hours must be positive";
  List.rev !bad

let validate_config config =
  match config_problems config with
  | [] -> Ok ()
  | problems -> Error ("Availability: " ^ String.concat "; " problems)

let simulate (plan : Planner.plan) config =
  (match validate_config config with
  | Ok () -> ()
  | Error msg -> invalid_arg msg);
  let rng = Prng.create config.seed in
  let g = plan.Planner.wan.Poc_topology.Wan.graph in
  let selected = plan.Planner.outcome.Poc_auction.Vcg.selection.Poc_auction.Vcg.selected in
  let in_backbone = Hashtbl.create 256 in
  List.iter (fun id -> Hashtbl.replace in_backbone id ()) selected;
  let failed = Hashtbl.create 16 in
  let demands = Matrix.undirected_pair_demands plan.Planner.matrix in
  let total_demand =
    List.fold_left (fun acc (_, _, d) -> acc +. d) 0.0 demands
  in
  let delivered_fraction () =
    if total_demand <= 0.0 then 1.0
    else begin
      let enabled id =
        Hashtbl.mem in_backbone id && not (Hashtbl.mem failed id)
      in
      let r = Router.route ~enabled g ~demands in
      Router.total_routed r /. total_demand
    end
  in
  (* Event queue keyed by time. *)
  let queue = Heap.create () in
  List.iter
    (fun id ->
      Heap.push queue (Prng.exponential rng (1.0 /. config.mtbf_hours)) (Fail id))
    selected;
  let samples = ref [] in
  let weighted = ref 0.0 in
  let worst = ref 1.0 in
  let failures = ref 0 in
  let max_concurrent = ref 0 in
  let rec loop prev_time prev_fraction =
    match Heap.pop queue with
    | None -> (prev_time, prev_fraction)
    | Some (t, _) when t >= config.horizon_hours -> (prev_time, prev_fraction)
    | Some (t, ev) ->
      weighted := !weighted +. (prev_fraction *. (t -. prev_time));
      (match ev with
      | Fail id ->
        Hashtbl.replace failed id ();
        incr failures;
        max_concurrent := max !max_concurrent (Hashtbl.length failed);
        Heap.push queue (t +. Prng.exponential rng (1.0 /. config.mttr_hours))
          (Repair id)
      | Repair id ->
        Hashtbl.remove failed id;
        Heap.push queue (t +. Prng.exponential rng (1.0 /. config.mtbf_hours))
          (Fail id));
      let fraction = delivered_fraction () in
      worst := Float.min !worst fraction;
      samples :=
        { time_h = t; event = ev; delivered_fraction = fraction;
          concurrent_failures = Hashtbl.length failed }
        :: !samples;
      loop t fraction
  in
  let last_time, last_fraction = loop 0.0 1.0 in
  weighted := !weighted +. (last_fraction *. (config.horizon_hours -. last_time));
  {
    samples = List.rev !samples;
    availability = !weighted /. config.horizon_hours;
    worst_fraction = !worst;
    failure_events = !failures;
    max_concurrent_failures = !max_concurrent;
  }
