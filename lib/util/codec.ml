type writer = Buffer.t

let writer () = Buffer.create 256
let contents = Buffer.contents
let put_u8 b v = Buffer.add_uint8 b (v land 0xFF)
let put_u32 b v = Buffer.add_int32_le b (Int32.of_int v)
let put_i64 b v = Buffer.add_int64_le b v
let put_int b v = put_i64 b (Int64.of_int v)
let put_f64 b v = put_i64 b (Int64.bits_of_float v)
let put_bool b v = put_u8 b (if v then 1 else 0)

let put_string b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let put_list b put l =
  put_u32 b (List.length l);
  List.iter (put b) l

let put_option b put = function
  | None -> put_u8 b 0
  | Some v ->
    put_u8 b 1;
    put b v

let put_f64_array b a =
  put_u32 b (Array.length a);
  Array.iter (put_f64 b) a

exception Corrupt of string

type reader = { data : string; mutable pos : int }

let reader data = { data; pos = 0 }
let pos r = r.pos
let at_end r = r.pos >= String.length r.data

let need r n =
  if r.pos + n > String.length r.data then
    raise (Corrupt (Printf.sprintf "short read: need %d bytes at %d" n r.pos))

let get_u8 r =
  need r 1;
  let v = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  v

let get_u32 r =
  need r 4;
  let v = Int32.to_int (String.get_int32_le r.data r.pos) land 0xFFFFFFFF in
  r.pos <- r.pos + 4;
  v

let get_i64 r =
  need r 8;
  let v = String.get_int64_le r.data r.pos in
  r.pos <- r.pos + 8;
  v

let get_int r = Int64.to_int (get_i64 r)
let get_f64 r = Int64.float_of_bits (get_i64 r)

let get_bool r =
  match get_u8 r with
  | 0 -> false
  | 1 -> true
  | n -> raise (Corrupt (Printf.sprintf "bad bool byte %d" n))

let get_string r =
  let n = get_u32 r in
  need r n;
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let get_list r get = List.init (get_u32 r) (fun _ -> get r)
let get_f64_array r = Array.init (get_u32 r) (fun _ -> get_f64 r)

let get_option r get =
  match get_u8 r with
  | 0 -> None
  | 1 -> Some (get r)
  | n -> raise (Corrupt (Printf.sprintf "bad option byte %d" n))

(* CRC-32, IEEE 802.3 reflected polynomial, table-driven. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let idx =
        Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl)
      in
      c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8))
    s;
  Int32.to_int (Int32.logxor !c 0xFFFFFFFFl) land 0xFFFFFFFF

let frame payload =
  let b = writer () in
  put_u32 b (String.length payload);
  put_u32 b (crc32 payload);
  Buffer.add_string b payload;
  contents b

type frame_result =
  | Frame of { payload : string; next : int }
  | End
  | Torn

let next_frame ?max_payload data ~pos =
  let total = String.length data in
  if pos >= total then End
  else if pos + 8 > total then Torn
  else
    let r = { data; pos } in
    let len = get_u32 r in
    let crc = get_u32 r in
    if (match max_payload with Some m -> len > m | None -> false) then Torn
    else if r.pos + len > total then Torn
    else
      let payload = String.sub data r.pos len in
      if crc32 payload <> crc then Torn
      else Frame { payload; next = r.pos + len }

let resync data ~pos =
  (* Empty frames are skipped: 8 zero bytes checksum as a valid
     zero-length frame (CRC-32 of "" is 0), so a run of zeroed garbage
     would otherwise "resync" to a phantom record. Every real record
     carries at least a tag byte. *)
  let total = String.length data in
  let rec scan p =
    if p + 8 > total then None
    else
      match next_frame data ~pos:p with
      | Frame { payload; _ } when String.length payload > 0 -> Some p
      | Frame _ | Torn -> scan (p + 1)
      | End -> None
  in
  scan (max 0 pos)
