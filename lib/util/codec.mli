(** Binary encoding for durable on-disk records.

    A tiny, dependency-free codec used by the journal layer: a
    buffer-backed {!writer} / cursor-backed {!reader} pair over
    fixed-width little-endian primitives (floats are stored as their
    IEEE-754 bit patterns, so round-trips are bit-exact, NaNs
    included), plus CRC-32 and a length-prefixed checksummed frame
    format with torn-tail detection.

    Frames on disk are [u32 payload length | u32 CRC-32 of payload |
    payload].  {!next_frame} never raises on damaged input: a frame cut
    short by a crash, or one whose checksum no longer matches, reads as
    {!Torn} and the caller recovers everything before it. *)

type writer

val writer : unit -> writer
val contents : writer -> string

val put_u8 : writer -> int -> unit
(** Lowest 8 bits. *)

val put_u32 : writer -> int -> unit
(** Lowest 32 bits, little-endian. *)

val put_i64 : writer -> int64 -> unit
val put_int : writer -> int -> unit
(** Full OCaml int, as an i64. *)

val put_f64 : writer -> float -> unit
(** IEEE-754 bits; bit-exact round trip, NaN payloads preserved. *)

val put_bool : writer -> bool -> unit
val put_string : writer -> string -> unit
(** u32 length followed by the bytes. *)

val put_list : writer -> (writer -> 'a -> unit) -> 'a list -> unit
val put_option : writer -> (writer -> 'a -> unit) -> 'a option -> unit
val put_f64_array : writer -> float array -> unit

exception Corrupt of string
(** Raised by every [get_*] on a short or malformed read. *)

type reader

val reader : string -> reader
val pos : reader -> int
val at_end : reader -> bool

val get_u8 : reader -> int
val get_u32 : reader -> int
val get_i64 : reader -> int64
val get_int : reader -> int
val get_f64 : reader -> float
val get_bool : reader -> bool
val get_string : reader -> string
val get_list : reader -> (reader -> 'a) -> 'a list
val get_option : reader -> (reader -> 'a) -> 'a option
val get_f64_array : reader -> float array

val crc32 : string -> int
(** CRC-32 (IEEE 802.3 polynomial) as a non-negative int in
    [\[0, 2^32)]; [crc32 "123456789" = 0xCBF43926]. *)

val frame : string -> string
(** [frame payload] is the on-disk framing of one record:
    length, checksum, payload. *)

type frame_result =
  | Frame of { payload : string; next : int }
  | End   (** clean end of input *)
  | Torn  (** bytes remain but no whole, checksummed frame does *)

val next_frame : ?max_payload:int -> string -> pos:int -> frame_result
(** Scan one frame at [pos].  Returns {!Torn} (never raises) on a
    truncated header, a declared length running past the input, or a
    checksum mismatch.  [max_payload] additionally bounds the declared
    length: a longer frame reads as {!Torn} without waiting for (or
    allocating) its payload — the guard network readers need against a
    garbage length field announcing a multi-gigabyte frame. *)

val resync : string -> pos:int -> int option
(** [resync data ~pos] is the smallest offset at or after [pos] where a
    whole, checksummed, non-empty frame begins, or [None] if no such
    frame exists before the end of input.  Used by the journal scrubber
    to distinguish a torn tail (nothing decodable follows the damage)
    from interior corruption (valid records resume further on).
    Zero-length frames are not resync points: 8 zero bytes checksum as
    a valid empty frame, so zeroed garbage would otherwise read as a
    phantom record. *)
