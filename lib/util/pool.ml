(* Fixed pool of worker domains with deterministic ordered map.

   One job at a time: the submitter installs a job (an indexed closure
   plus an atomic claim cursor), bumps a generation counter and wakes
   the workers; each worker claims indices until the cursor runs past
   the end, then reports back.  The submitter sleeps until every worker
   has reported, so when [map] returns all slots are filled and the
   mutex hand-off has published the workers' writes. *)

(* Set on every worker domain so a nested submission from inside a job
   runs inline instead of deadlocking on the (already busy) pool. *)
let inside_worker = Domain.DLS.new_key (fun () -> false)

type job = {
  run : int -> unit; (* never raises: exceptions are captured per index *)
  total : int;
  next : int Atomic.t;
}

type t = {
  workers : int;
  mutex : Mutex.t;
  work : Condition.t;  (* workers wait here for a new generation *)
  idle : Condition.t;  (* the submitter waits here for the job to drain *)
  submit : Mutex.t;    (* serializes concurrent submitters *)
  mutable generation : int;
  mutable job : job option;
  mutable active : int; (* workers still claiming for the current job *)
  mutable stopped : bool;
  mutable handles : unit Domain.t list;
}

let drain job =
  let rec claim () =
    let i = Atomic.fetch_and_add job.next 1 in
    if i < job.total then begin
      job.run i;
      claim ()
    end
  in
  claim ()

let worker t () =
  Domain.DLS.set inside_worker true;
  let seen = ref 0 in
  Mutex.lock t.mutex;
  let rec loop () =
    if t.stopped then Mutex.unlock t.mutex
    else if t.generation = !seen then begin
      Condition.wait t.work t.mutex;
      loop ()
    end
    else begin
      seen := t.generation;
      let job = Option.get t.job in
      Mutex.unlock t.mutex;
      drain job;
      Mutex.lock t.mutex;
      t.active <- t.active - 1;
      if t.active = 0 then Condition.signal t.idle;
      loop ()
    end
  in
  loop ()

let create n =
  if n < 0 then invalid_arg "Pool.create: negative size";
  let t =
    {
      workers = n;
      mutex = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      submit = Mutex.create ();
      generation = 0;
      job = None;
      active = 0;
      stopped = false;
      handles = [];
    }
  in
  t.handles <- List.init n (fun _ -> Domain.spawn (worker t));
  t

let size t = t.workers

let recommended_jobs () = Domain.recommended_domain_count ()

let run_inline ~total run =
  for i = 0 to total - 1 do
    run i
  done

let run_tasks t ~total run =
  if total = 0 then ()
  else if t.workers = 0 || total = 1 || Domain.DLS.get inside_worker then
    run_inline ~total run
  else begin
    Mutex.lock t.submit;
    Mutex.lock t.mutex;
    if t.stopped then begin
      Mutex.unlock t.mutex;
      Mutex.unlock t.submit;
      invalid_arg "Pool: used after shutdown"
    end;
    t.job <- Some { run; total; next = Atomic.make 0 };
    t.active <- t.workers;
    t.generation <- t.generation + 1;
    Condition.broadcast t.work;
    while t.active > 0 do
      Condition.wait t.idle t.mutex
    done;
    t.job <- None;
    Mutex.unlock t.mutex;
    Mutex.unlock t.submit
  end

let map t f xs =
  let total = Array.length xs in
  if total = 0 then [||]
  else begin
    let out = Array.make total None in
    let errs = Array.make total None in
    run_tasks t ~total (fun i ->
        match f xs.(i) with
        | y -> out.(i) <- Some y
        | exception e -> errs.(i) <- Some e);
    Array.iter (function Some e -> raise e | None -> ()) errs;
    Array.map (function Some y -> y | None -> assert false) out
  end

let map_list t f xs = Array.to_list (map t f (Array.of_list xs))

let shutdown t =
  Mutex.lock t.mutex;
  let handles = t.handles in
  t.stopped <- true;
  t.handles <- [];
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  List.iter Domain.join handles

let with_pool ~jobs f =
  if jobs <= 1 then f None
  else begin
    let t = create jobs in
    match f (Some t) with
    | y ->
      shutdown t;
      y
    | exception e ->
      shutdown t;
      raise e
  end
