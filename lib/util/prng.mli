(** Deterministic pseudo-random number generation.

    All randomness in this repository flows through this module so that
    every experiment is reproducible from a single integer seed.  The
    generator is splitmix64 (Steele, Lea & Flood, OOPSLA 2014): tiny,
    fast, and splittable, which lets independent subsystems derive
    decorrelated streams from one master seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val state : t -> int64
(** The generator's current cursor.  Persisting it and later feeding it
    to {!of_state} resumes the exact stream — the journal layer uses
    this to checkpoint runs. *)

val of_state : int64 -> t
(** Rebuild a generator from a saved {!state} cursor.  Unlike
    {!create}, the argument is the raw cursor, not a seed. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    decorrelated from [t]'s subsequent output.  Use one split per
    subsystem to keep experiments insensitive to call-ordering. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform float in [\[0, 1)]. *)

val float_range : t -> float -> float -> float
(** [float_range t lo hi] is uniform in [\[lo, hi)].  Requires [lo <= hi]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  Requires [bound > 0]. *)

val int_range : t -> int -> int -> int
(** [int_range t lo hi] is uniform in [\[lo, hi\]] inclusive.
    Requires [lo <= hi]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val exponential : t -> float -> float
(** [exponential t rate] samples Exp(rate).  Requires [rate > 0]. *)

val pareto : t -> alpha:float -> xmin:float -> float
(** [pareto t ~alpha ~xmin] samples a Pareto(alpha, xmin) heavy tail. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Box-Muller normal sample. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array.  Raises [Invalid_argument]
    on an empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val sample_without_replacement : t -> int -> 'a array -> 'a array
(** [sample_without_replacement t k arr] is [k] distinct elements of
    [arr] in random order.  Requires [k <= Array.length arr]. *)
