type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let state t = t.state

let of_state s = { state = s }

(* splitmix64 finalizer: mixes the incremented counter into a
   high-quality 64-bit output. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = int64 t in
  { state = mix s }

let float t =
  (* Use the top 53 bits for a uniform double in [0,1). *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let float_range t lo hi =
  assert (lo <= hi);
  lo +. ((hi -. lo) *. float t)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let b = Int64.of_int bound in
  let rec loop () =
    let r = Int64.shift_right_logical (int64 t) 1 in
    let v = Int64.rem r b in
    if Int64.sub r v > Int64.sub (Int64.add Int64.max_int 1L) b then loop ()
    else Int64.to_int v
  in
  loop ()

let int_range t lo hi =
  if lo > hi then invalid_arg "Prng.int_range: lo > hi";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (int64 t) 1L = 1L

let bernoulli t p = float t < p

let exponential t rate =
  if rate <= 0.0 then invalid_arg "Prng.exponential: rate must be positive";
  let u = 1.0 -. float t in
  -.log u /. rate

let pareto t ~alpha ~xmin =
  if alpha <= 0.0 || xmin <= 0.0 then invalid_arg "Prng.pareto";
  let u = 1.0 -. float t in
  xmin /. (u ** (1.0 /. alpha))

let gaussian t ~mu ~sigma =
  let u1 = 1.0 -. float t and u2 = float t in
  let r = sqrt (-2.0 *. log u1) in
  mu +. (sigma *. r *. cos (2.0 *. Float.pi *. u2))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Prng.pick: empty array";
  arr.(int t (Array.length arr))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Prng.pick_list: empty list"
  | _ :: _ -> List.nth l (int t (List.length l))

let sample_without_replacement t k arr =
  let n = Array.length arr in
  if k > n then invalid_arg "Prng.sample_without_replacement: k > length";
  let copy = Array.copy arr in
  (* Partial Fisher-Yates: the first k slots become the sample. *)
  for i = 0 to k - 1 do
    let j = int_range t i (n - 1) in
    let tmp = copy.(i) in
    copy.(i) <- copy.(j);
    copy.(j) <- tmp
  done;
  Array.sub copy 0 k
