(** A fixed-size pool of OCaml 5 worker domains.

    Spawning a domain costs a system thread plus a minor heap, so the
    pool spawns its workers once and reuses them for every subsequent
    job: {!map} hands the workers one array, blocks the submitting
    domain until every element is processed, and returns the results
    {e in input order}.  Work is claimed element-by-element through an
    atomic cursor, so scheduling is dynamic, but because each result is
    written to its own slot the output is deterministic whatever the
    interleaving — [map pool f xs] equals [Array.map f xs] for any pure
    [f] at any pool size, which is what lets the auction layer promise
    byte-identical outcomes at every [--jobs] value.

    Rules the caller must respect:

    - [f] must be safe to run concurrently with itself: no mutation of
      shared state other than [Atomic]-backed instruments
      ([Poc_obs.Metrics] qualifies; [Poc_obs.Trace] spans do not —
      keep tracing on the submitting domain).
    - Jobs are submitted from any domain, one at a time (concurrent
      submitters are serialized internally).  A submission made {e
      from inside a worker} — e.g. a parallelized selector that calls
      a parallelized sub-step — does not deadlock: it is detected and
      run inline, sequentially, on that worker.
    - Exceptions raised by [f] are caught per element and re-raised in
      the submitting domain once the job finishes; when several
      elements fail, the exception of the {e lowest} index wins, so
      failure behaviour is deterministic too.

    A pool of size 0 spawns no domains and runs everything inline,
    giving callers a uniform code path for [--jobs 1]. *)

type t

val create : int -> t
(** [create n] spawns [n] worker domains ([n >= 0]; raises
    [Invalid_argument] otherwise).  [create 0] is an inline pool: no
    domains, {!map} degenerates to [Array.map].  The submitting domain
    never executes job elements when [n > 0]; it blocks until the
    workers drain the job, so [n] is the parallelism degree. *)

val size : t -> int
(** Number of worker domains ([0] for an inline pool). *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the runtime's estimate of
    how many domains this machine runs well, used as the CLI's
    [--jobs] default. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map t f xs] applies [f] to every element of [xs] on the worker
    domains and returns the results in input order.  Equals
    [Array.map f xs] for pure [f].  Raises [Invalid_argument] if the
    pool has been {!shutdown}. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** {!map} over a list, preserving order. *)

val shutdown : t -> unit
(** Stop and join every worker.  Idempotent; the pool is unusable
    afterwards.  Never call from inside a running job. *)

val with_pool : jobs:int -> (t option -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f (Some pool)] with a pool of
    [jobs] workers when [jobs > 1], or [f None] when [jobs <= 1]
    (serial semantics, zero domains), and guarantees {!shutdown} on
    exit — including on exceptions. *)
