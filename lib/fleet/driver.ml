module Planner = Poc_core.Planner
module Vcg = Poc_auction.Vcg
module Acc = Poc_auction.Acceptability
module Epochs = Poc_market.Epochs
module Fault = Poc_resilience.Fault
module Disk = Poc_resilience.Disk
module Journal = Poc_resilience.Journal
module Supervisor = Poc_resilience.Supervisor
module Codec = Poc_util.Codec
module Pool = Poc_util.Pool
module Table = Poc_util.Table
module Metrics = Poc_obs.Metrics
module Trace = Poc_obs.Trace
module Clock = Poc_obs.Clock
module Black_box = Poc_resilience.Black_box

(* --- instrumentation ----------------------------------------------------- *)

let m_months =
  Metrics.counter ~help:"Fleet scenario-months driven to completion"
    Metrics.default "poc_fleet_months_total"

let m_kills =
  Metrics.counter ~help:"Injected process deaths fired across the fleet"
    Metrics.default "poc_fleet_kills_total"

let m_scrub_actions =
  Metrics.counter ~help:"Segments truncated or quarantined by fleet scrubs"
    Metrics.default "poc_fleet_scrub_actions_total"

let m_restarts =
  Metrics.counter ~help:"Scenarios restarted after an unrecoverable store"
    Metrics.default "poc_fleet_restarts_total"

let m_loaded =
  Metrics.counter ~help:"Scenario RESULT frames loaded by a fleet resume"
    Metrics.default "poc_fleet_loaded_results_total"

(* One labeled series per chaos-matrix cell: the fleet's latency story,
   sliced the same way its survival story is.  Registration is
   idempotent and the instruments are domain-safe, so pool workers
   observe into them directly. *)
let h_cell cell_name =
  Metrics.histogram
    ~help:"Scenario-month wall time by chaos-matrix cell (seconds)"
    ~labels:[ ("cell", cell_name) ]
    Metrics.default "poc_fleet_cell_seconds"

(* --- config -------------------------------------------------------------- *)

type config = {
  months : int;
  axes : Chaos_matrix.axes;
  seed : int;
  topologies : int;
  sites : int;
  bps : int;
  epochs : int;
  segment_bytes : int;
  snapshot_every : int;
  store : string;
  flight : bool;
}

let default_config ~store =
  {
    months = 1000;
    axes =
      { Chaos_matrix.with_crash = true; with_storage = true; with_degrade = true };
    seed = 2020;
    topologies = 8;
    sites = 16;
    bps = 5;
    epochs = 6;
    segment_bytes = 2048;
    snapshot_every = 2;
    store;
    flight = false;
  }

let validate cfg =
  let problems =
    List.filter_map
      (fun (ok, msg) -> if ok then None else Some msg)
      [
        (cfg.months >= 1, "months must be >= 1");
        (cfg.topologies >= 1, "topologies must be >= 1");
        (cfg.sites >= 4, "sites must be >= 4");
        (cfg.bps >= 2, "bps must be >= 2");
        (cfg.epochs >= 4, "epochs must be >= 4 (the chaos matrix needs \
                           distinct kill epochs inside the horizon)");
        (cfg.segment_bytes >= 256, "segment-bytes must be >= 256");
        (cfg.snapshot_every >= 1, "snapshot-every must be >= 1");
        (String.trim cfg.store <> "", "store root must be non-empty");
      ]
  in
  match problems with
  | [] -> Ok ()
  | ps -> Error (String.concat "; " ps)

(* --- scenario derivation ------------------------------------------------- *)

type scenario = {
  index : int;
  id : string;
  cell : Chaos_matrix.cell;
  topo_seed : int;
  market_seed : int;
  fault_seed : int;
}

let scenario cfg i =
  let cells = Chaos_matrix.cells cfg.axes in
  let cell = List.nth cells (i mod List.length cells) in
  {
    index = i;
    id = Printf.sprintf "m%05d-%s" i (Chaos_matrix.cell_name cell);
    cell;
    topo_seed = cfg.seed + (i mod cfg.topologies);
    market_seed = cfg.seed + 10_000 + i;
    fault_seed = cfg.seed + 20_000 + i;
  }

let market_config cfg (scen : scenario) =
  { Epochs.default_config with
    Epochs.epochs = cfg.epochs;
    seed = scen.market_seed;
  }

let planner_config cfg ~topo_seed =
  Planner.scaled_config ~sites:cfg.sites ~bps:cfg.bps
    { Planner.default_config with Planner.seed = topo_seed; rule = Acc.Handle_load }

(* --- outcomes ------------------------------------------------------------ *)

type recoveries = {
  r_crash : int;
  r_short_write : int;
  r_torn_rename : int;
  r_lying_fsync : int;
  r_corrupt_byte : int;
}

let no_recoveries =
  { r_crash = 0; r_short_write = 0; r_torn_rename = 0; r_lying_fsync = 0;
    r_corrupt_byte = 0 }

type outcome = {
  completed : bool;
  kills : int;
  recovered : recoveries;
  scrub_truncated : int;
  scrub_quarantined : int;
  restarts : int;
  healthy : int;
  degraded : int;
  carried : int;
  blackout : int;
  incidents : int;
  violations : int;
  ladder_activations : int;
  total_spend : float;
  mean_price : float;
  mean_delivered : float;
  pob : float;
}

let aggregate_pob (o : Vcg.outcome) =
  let paid =
    Array.to_list o.Vcg.bp_results
    |> List.filter (fun (r : Vcg.bp_result) -> r.Vcg.payment > 0.0)
  in
  let cost = List.fold_left (fun a r -> a +. r.Vcg.bid_cost) 0.0 paid in
  let pay = List.fold_left (fun a r -> a +. r.Vcg.payment) 0.0 paid in
  if cost > 0.0 then (pay -. cost) /. cost else 0.0

let outcome_of_report ~kills ~recovered ~scrub_truncated ~scrub_quarantined
    ~restarts (r : Supervisor.report) =
  let count pred = List.length (List.filter pred r.Supervisor.epochs) in
  let n = List.length r.Supervisor.epochs in
  let mean f =
    if n = 0 then 0.0
    else
      List.fold_left (fun a e -> a +. f e) 0.0 r.Supervisor.epochs
      /. float_of_int n
  in
  {
    completed = true;
    kills;
    recovered;
    scrub_truncated;
    scrub_quarantined;
    restarts;
    healthy =
      count (fun e -> e.Supervisor.status = Supervisor.Healthy);
    degraded =
      count (fun e ->
          match e.Supervisor.status with
          | Supervisor.Degraded _ -> true
          | _ -> false);
    carried = count (fun e -> e.Supervisor.status = Supervisor.Carried);
    blackout = count (fun e -> e.Supervisor.status = Supervisor.Blackout);
    incidents = List.length r.Supervisor.incidents;
    violations = List.length r.Supervisor.violations;
    ladder_activations = r.Supervisor.ladder_activations;
    total_spend =
      List.fold_left (fun a e -> a +. e.Supervisor.spend) 0.0
        r.Supervisor.epochs;
    mean_price = mean (fun e -> e.Supervisor.price_per_gbps);
    mean_delivered = mean (fun e -> e.Supervisor.delivered_fraction);
    pob =
      (match r.Supervisor.final_plan with
      | Some p -> aggregate_pob p.Planner.outcome
      | None -> 0.0);
  }

let failed_outcome ~kills ~recovered ~scrub_truncated ~scrub_quarantined
    ~restarts =
  {
    completed = false;
    kills;
    recovered;
    scrub_truncated;
    scrub_quarantined;
    restarts;
    healthy = 0;
    degraded = 0;
    carried = 0;
    blackout = 0;
    incidents = 0;
    violations = 0;
    ladder_activations = 0;
    total_spend = 0.0;
    mean_price = 0.0;
    mean_delivered = 0.0;
    pob = 0.0;
  }

(* --- RESULT frames -------------------------------------------------------- *)

let result_name = "RESULT"
let result_version = 1

let encode_outcome scen (o : outcome) =
  let w = Codec.writer () in
  Codec.put_u8 w result_version;
  Codec.put_string w scen.id;
  Codec.put_bool w o.completed;
  Codec.put_int w o.kills;
  Codec.put_int w o.recovered.r_crash;
  Codec.put_int w o.recovered.r_short_write;
  Codec.put_int w o.recovered.r_torn_rename;
  Codec.put_int w o.recovered.r_lying_fsync;
  Codec.put_int w o.recovered.r_corrupt_byte;
  Codec.put_int w o.scrub_truncated;
  Codec.put_int w o.scrub_quarantined;
  Codec.put_int w o.restarts;
  Codec.put_int w o.healthy;
  Codec.put_int w o.degraded;
  Codec.put_int w o.carried;
  Codec.put_int w o.blackout;
  Codec.put_int w o.incidents;
  Codec.put_int w o.violations;
  Codec.put_int w o.ladder_activations;
  Codec.put_f64 w o.total_spend;
  Codec.put_f64 w o.mean_price;
  Codec.put_f64 w o.mean_delivered;
  Codec.put_f64 w o.pob;
  Codec.frame (Codec.contents w)

let decode_outcome scen data =
  match Codec.next_frame data ~pos:0 with
  | Codec.End | Codec.Torn -> None
  | Codec.Frame { payload; next } ->
    if next <> String.length data then None
    else begin
      try
        let r = Codec.reader payload in
        if Codec.get_u8 r <> result_version then None
        else if Codec.get_string r <> scen.id then None
        else begin
          let completed = Codec.get_bool r in
          let kills = Codec.get_int r in
          let r_crash = Codec.get_int r in
          let r_short_write = Codec.get_int r in
          let r_torn_rename = Codec.get_int r in
          let r_lying_fsync = Codec.get_int r in
          let r_corrupt_byte = Codec.get_int r in
          let scrub_truncated = Codec.get_int r in
          let scrub_quarantined = Codec.get_int r in
          let restarts = Codec.get_int r in
          let healthy = Codec.get_int r in
          let degraded = Codec.get_int r in
          let carried = Codec.get_int r in
          let blackout = Codec.get_int r in
          let incidents = Codec.get_int r in
          let violations = Codec.get_int r in
          let ladder_activations = Codec.get_int r in
          let total_spend = Codec.get_f64 r in
          let mean_price = Codec.get_f64 r in
          let mean_delivered = Codec.get_f64 r in
          let pob = Codec.get_f64 r in
          if not (Codec.at_end r) then None
          else
            Some
              {
                completed;
                kills;
                recovered =
                  { r_crash; r_short_write; r_torn_rename; r_lying_fsync;
                    r_corrupt_byte };
                scrub_truncated;
                scrub_quarantined;
                restarts;
                healthy;
                degraded;
                carried;
                blackout;
                incidents;
                violations;
                ladder_activations;
                total_spend;
                mean_price;
                mean_delivered;
                pob;
              }
        end
      with Codec.Corrupt _ -> None
    end

(* --- FLEET manifest ------------------------------------------------------- *)

let manifest_name = "FLEET"
let manifest_version = 1

let encode_manifest cfg =
  let w = Codec.writer () in
  Codec.put_u8 w manifest_version;
  Codec.put_int w cfg.months;
  Codec.put_bool w cfg.axes.Chaos_matrix.with_crash;
  Codec.put_bool w cfg.axes.Chaos_matrix.with_storage;
  Codec.put_bool w cfg.axes.Chaos_matrix.with_degrade;
  Codec.put_int w cfg.seed;
  Codec.put_int w cfg.topologies;
  Codec.put_int w cfg.sites;
  Codec.put_int w cfg.bps;
  Codec.put_int w cfg.epochs;
  Codec.put_int w cfg.segment_bytes;
  Codec.put_int w cfg.snapshot_every;
  Codec.frame (Codec.contents w)

(* [store] is the caller's: the manifest pins the fleet's shape, not
   where the root happens to be mounted. *)
let decode_manifest ~store data =
  match Codec.next_frame data ~pos:0 with
  | Codec.End | Codec.Torn -> None
  | Codec.Frame { payload; next } ->
    if next <> String.length data then None
    else begin
      try
        let r = Codec.reader payload in
        if Codec.get_u8 r <> manifest_version then None
        else begin
          let months = Codec.get_int r in
          let with_crash = Codec.get_bool r in
          let with_storage = Codec.get_bool r in
          let with_degrade = Codec.get_bool r in
          let seed = Codec.get_int r in
          let topologies = Codec.get_int r in
          let sites = Codec.get_int r in
          let bps = Codec.get_int r in
          let epochs = Codec.get_int r in
          let segment_bytes = Codec.get_int r in
          let snapshot_every = Codec.get_int r in
          if not (Codec.at_end r) then None
          else
            Some
              {
                months;
                axes = { Chaos_matrix.with_crash; with_storage; with_degrade };
                seed;
                topologies;
                sites;
                bps;
                epochs;
                segment_bytes;
                snapshot_every;
                store;
                (* Observability, not fleet shape: the manifest neither
                   records nor checks it. *)
                flight = false;
              }
        end
      with Codec.Corrupt _ -> None
    end

let manifest_mismatches a b =
  List.filter_map
    (fun (name, same) -> if same then None else Some name)
    [
      ("months", a.months = b.months);
      ("matrix", a.axes = b.axes);
      ("seed", a.seed = b.seed);
      ("topologies", a.topologies = b.topologies);
      ("sites", a.sites = b.sites);
      ("bps", a.bps = b.bps);
      ("epochs", a.epochs = b.epochs);
      ("segment-bytes", a.segment_bytes = b.segment_bytes);
      ("snapshot-every", a.snapshot_every = b.snapshot_every);
    ]

(* --- one scenario: the kill chain ----------------------------------------- *)

(* The supervisor fires the earliest live kill point; [fired] picks the
   spec behind an [Injected_crash] so the chain can consume it. *)
let spec_fired ~epoch ~phase = function
  | Fault.Crash { at_epoch; phase = p } -> at_epoch = epoch && p = phase
  | Fault.Storage { at_epoch; phase = p; _ } -> at_epoch = epoch && p = phase
  | _ -> false

let add_recovery rc = function
  | Fault.Crash _ -> { rc with r_crash = rc.r_crash + 1 }
  | Fault.Storage { fault = Disk.Short_write _; _ } ->
    { rc with r_short_write = rc.r_short_write + 1 }
  | Fault.Storage { fault = Disk.Torn_rename; _ } ->
    { rc with r_torn_rename = rc.r_torn_rename + 1 }
  | Fault.Storage { fault = Disk.Lying_fsync _; _ } ->
    { rc with r_lying_fsync = rc.r_lying_fsync + 1 }
  | Fault.Storage { fault = Disk.Corrupt_byte _; _ } ->
    { rc with r_corrupt_byte = rc.r_corrupt_byte + 1 }
  | _ -> rc

(* A cell carries at most two kill points, so the chain is short; the
   cap only guards against a spec that somehow re-fires. *)
let max_attempts = 8

let run_one cfg ?flight (scen : scenario) (plan : Planner.plan) =
  let dir = Filename.concat cfg.store scen.id in
  let market = market_config cfg scen in
  let all_specs =
    Chaos_matrix.specs scen.cell ~wan:plan.Planner.wan ~epochs:cfg.epochs
      ~salt:scen.index
  in
  let compile specs =
    match Fault.compile plan.Planner.wan ~seed:scen.fault_seed specs with
    | Ok s -> s
    | Error msg -> failwith (Printf.sprintf "fleet %s: %s" scen.id msg)
  in
  let kills = ref 0 in
  let recovered = ref no_recoveries in
  let truncated = ref 0 in
  let quarantined = ref 0 in
  let restarts = ref 0 in
  let rec go ~fresh specs attempt =
    if attempt >= max_attempts then None
    else begin
      let schedule = compile specs in
      (* Fresh fault metadata per attempt: a storage fault damages the
         disk it was armed on, never the next attempt's. *)
      let disk = Disk.real () in
      match
        if fresh then
          `Report
            (Supervisor.run ~journal:dir ?flight
               ~snapshot_every:cfg.snapshot_every
               ~segment_bytes:cfg.segment_bytes ~disk plan ~market ~schedule)
        else begin
          match
            Supervisor.resume ~honor_crashes:true ~journal:dir ?flight ~disk
              plan ~market ~schedule
          with
          | Ok r -> `Report r
          | Error _ -> `Resume_failed
        end
      with
      | `Report r -> Some r
      | `Resume_failed ->
        (* e.g. a fleet SIGKILL landed before the first record made it
           to disk; a fresh run reclaims the directory. *)
        incr restarts;
        Metrics.Counter.inc m_restarts;
        go ~fresh:true specs (attempt + 1)
      | exception Supervisor.Injected_crash { epoch; phase } ->
        incr kills;
        Metrics.Counter.inc m_kills;
        List.iter
          (fun sp ->
            if spec_fired ~epoch ~phase sp then
              recovered := add_recovery !recovered sp)
          specs;
        let remaining =
          List.filter (fun sp -> not (spec_fired ~epoch ~phase sp)) specs
        in
        let resumable =
          match Journal.scrub ~disk:(Disk.real ()) dir with
          | Error _ -> false
          | Ok rep ->
            List.iter
              (fun (e : Journal.segment_scrub) ->
                match e.Journal.action with
                | Journal.Scrub_truncated ->
                  incr truncated;
                  Metrics.Counter.inc m_scrub_actions
                | Journal.Scrub_quarantined ->
                  incr quarantined;
                  Metrics.Counter.inc m_scrub_actions
                | Journal.Scrub_none -> ())
              rep.Journal.segments;
            rep.Journal.recovered
        in
        if resumable then go ~fresh:false remaining (attempt + 1)
        else begin
          (* Nothing durable survived the power cut; replay the month
             from epoch 1 under the not-yet-fired schedule. *)
          incr restarts;
          Metrics.Counter.inc m_restarts;
          go ~fresh:true remaining (attempt + 1)
        end
    end
  in
  let finishing = go ~fresh:true all_specs 0 in
  let kills = !kills
  and recovered = !recovered
  and scrub_truncated = !truncated
  and scrub_quarantined = !quarantined
  and restarts = !restarts in
  match finishing with
  | Some report ->
    Metrics.Counter.inc m_months;
    outcome_of_report ~kills ~recovered ~scrub_truncated ~scrub_quarantined
      ~restarts report
  | None ->
    failed_outcome ~kills ~recovered ~scrub_truncated ~scrub_quarantined
      ~restarts

(* A scenario with no kill points that the {e fleet} died under: its
   store is a plain crashed journal, so plain resume recovers it; any
   failure (no store yet, nothing durable) falls back to a fresh run.
   Either path yields the uninterrupted report byte-for-byte. *)
let run_one_resumed cfg ?flight (scen : scenario) (plan : Planner.plan) =
  if Chaos_matrix.has_kills scen.cell then run_one cfg ?flight scen plan
  else begin
    let dir = Filename.concat cfg.store scen.id in
    let market = market_config cfg scen in
    let schedule =
      match
        Fault.compile plan.Planner.wan ~seed:scen.fault_seed
          (Chaos_matrix.specs scen.cell ~wan:plan.Planner.wan ~epochs:cfg.epochs
             ~salt:scen.index)
      with
      | Ok s -> Some s
      | Error _ -> None
    in
    match schedule with
    | None -> run_one cfg ?flight scen plan
    | Some schedule -> (
      match
        Supervisor.resume ~journal:dir ?flight ~disk:(Disk.real ()) plan
          ~market ~schedule
      with
      | Ok report ->
        Metrics.Counter.inc m_months;
        outcome_of_report ~kills:0 ~recovered:no_recoveries ~scrub_truncated:0
          ~scrub_quarantined:0 ~restarts:0 report
      | Error _ -> run_one cfg ?flight scen plan)
  end

(* --- the fleet ------------------------------------------------------------ *)

type report = {
  r_config : config;
  outcomes : (scenario * outcome) list;
}

type run_result =
  | Finished of report
  | Interrupted of { completed_months : int }

let result_path cfg (scen : scenario) =
  Filename.concat (Filename.concat cfg.store scen.id) result_name

let load_result disk cfg scen =
  let path = result_path cfg scen in
  if not (Disk.exists disk path) then None
  else
    match Disk.read_file disk path with
    | data -> decode_outcome scen data
    | exception Sys_error _ -> None

let store_result disk cfg scen outcome =
  Disk.write_file_atomic disk (result_path cfg scen)
    (encode_outcome scen outcome)

let build_plans ?pool cfg =
  let rec build k acc =
    if k >= cfg.topologies then Ok (Array.of_list (List.rev acc))
    else
      match
        Planner.build ?pool (planner_config cfg ~topo_seed:(cfg.seed + k))
      with
      | Ok plan -> build (k + 1) (plan :: acc)
      | Error msg ->
        Error (Printf.sprintf "topology seed %d: %s" (cfg.seed + k) msg)
  in
  build 0 []

let prepare_root ~resume disk cfg =
  let manifest = Filename.concat cfg.store manifest_name in
  if resume then begin
    if not (Disk.exists disk manifest) then
      Error
        (Printf.sprintf
           "no fleet manifest under %s: nothing to resume (run without \
            --resume to start one)"
           cfg.store)
    else
      match decode_manifest ~store:cfg.store (Disk.read_file disk manifest) with
      | None -> Error "fleet manifest is unreadable; start a fresh store root"
      | Some recorded -> (
        match manifest_mismatches recorded cfg with
        | [] -> Ok ()
        | ms ->
          Error
            ("fleet store was created with a different config ("
            ^ String.concat ", " ms
            ^ "); resume with the original flags or use a fresh root"))
  end
  else if Disk.exists disk manifest then
    Error
      (Printf.sprintf
         "%s already holds a fleet; pass --resume to finish it or pick a \
          fresh store root"
         cfg.store)
  else begin
    Disk.mkdir_p disk cfg.store;
    Disk.write_file_atomic disk manifest (encode_manifest cfg);
    Ok ()
  end

let run ?pool ?(resume = false) ?kill_after cfg =
  match validate cfg with
  | Error e -> Error e
  | Ok () -> (
    let disk = Disk.real () in
    match prepare_root ~resume disk cfg with
    | Error e -> Error e
    | Ok () -> (
      match build_plans ?pool cfg with
      | Error e -> Error e
      | Ok plans ->
        let span = Trace.span "fleet.run" in
        Trace.add_attr span "months" (Trace.Int cfg.months);
        Trace.add_attr span "matrix"
          (Trace.Str (Chaos_matrix.spec_of_axes cfg.axes));
        let scenarios = Array.init cfg.months (scenario cfg) in
        let outcomes = Array.make cfg.months None in
        if resume then
          Array.iteri
            (fun i scen ->
              match load_result disk cfg scen with
              | Some o ->
                Metrics.Counter.inc m_loaded;
                outcomes.(i) <- Some o
              | None -> ())
            scenarios;
        let pending =
          Array.of_list
            (List.filter
               (fun i -> outcomes.(i) = None)
               (List.init cfg.months Fun.id))
        in
        let task i =
          let scen = scenarios.(i) in
          let plan = plans.(i mod cfg.topologies) in
          let flight =
            if not cfg.flight then None
            else
              Some
                (Black_box.create
                   (Filename.concat
                      (Filename.concat cfg.store scen.id)
                      "FLIGHT"))
          in
          let t0 = Clock.now_us () in
          let o =
            if resume then run_one_resumed cfg ?flight scen plan
            else run_one cfg ?flight scen plan
          in
          Metrics.Histogram.observe
            (h_cell (Chaos_matrix.cell_name scen.cell))
            ((Clock.now_us () -. t0) *. 1e-6);
          Option.iter Black_box.close flight;
          store_result (Disk.real ()) cfg scen o;
          o
        in
        let chunk_size =
          match pool with
          | Some p when Pool.size p > 0 -> Pool.size p
          | _ -> 1
        in
        let completed_now = ref 0 in
        let interrupted = ref false in
        let cursor = ref 0 in
        while (not !interrupted) && !cursor < Array.length pending do
          let n = min chunk_size (Array.length pending - !cursor) in
          let chunk = Array.sub pending !cursor n in
          let results =
            match pool with
            | Some p -> Pool.map p task chunk
            | None -> Array.map task chunk
          in
          Array.iteri
            (fun k o -> outcomes.(chunk.(k)) <- Some o)
            results;
          cursor := !cursor + n;
          completed_now := !completed_now + n;
          Trace.event
            ~attrs:[ ("completed", Trace.Int !completed_now) ]
            "fleet.chunk";
          match kill_after with
          | Some k when !completed_now >= k && !cursor < Array.length pending
            ->
            interrupted := true
          | _ -> ()
        done;
        Trace.finish span;
        if !interrupted then Ok (Interrupted { completed_months = !completed_now })
        else begin
          let merged =
            Array.to_list
              (Array.mapi
                 (fun i o ->
                   match o with
                   | Some o -> (scenarios.(i), o)
                   | None ->
                     (* unreachable: every index was loaded or run *)
                     assert false)
                 outcomes)
          in
          Ok (Finished { r_config = cfg; outcomes = merged })
        end))

(* --- aggregate report ----------------------------------------------------- *)

type totals = {
  mutable t_months : int;
  mutable t_completed : int;
  mutable t_kills : int;
  mutable t_rec : recoveries;
  mutable t_truncated : int;
  mutable t_quarantined : int;
  mutable t_restarts : int;
  mutable t_healthy : int;
  mutable t_degraded : int;
  mutable t_carried : int;
  mutable t_blackout : int;
  mutable t_incidents : int;
  mutable t_violations : int;
  mutable t_ladder : int;
  mutable t_spend : float;
  mutable t_price : float;
  mutable t_delivered : float;
  mutable t_pob : float;
}

let fresh_totals () =
  {
    t_months = 0;
    t_completed = 0;
    t_kills = 0;
    t_rec = no_recoveries;
    t_truncated = 0;
    t_quarantined = 0;
    t_restarts = 0;
    t_healthy = 0;
    t_degraded = 0;
    t_carried = 0;
    t_blackout = 0;
    t_incidents = 0;
    t_violations = 0;
    t_ladder = 0;
    t_spend = 0.0;
    t_price = 0.0;
    t_delivered = 0.0;
    t_pob = 0.0;
  }

let add_outcome t (o : outcome) =
  t.t_months <- t.t_months + 1;
  if o.completed then t.t_completed <- t.t_completed + 1;
  t.t_kills <- t.t_kills + o.kills;
  t.t_rec <-
    {
      r_crash = t.t_rec.r_crash + o.recovered.r_crash;
      r_short_write = t.t_rec.r_short_write + o.recovered.r_short_write;
      r_torn_rename = t.t_rec.r_torn_rename + o.recovered.r_torn_rename;
      r_lying_fsync = t.t_rec.r_lying_fsync + o.recovered.r_lying_fsync;
      r_corrupt_byte = t.t_rec.r_corrupt_byte + o.recovered.r_corrupt_byte;
    };
  t.t_truncated <- t.t_truncated + o.scrub_truncated;
  t.t_quarantined <- t.t_quarantined + o.scrub_quarantined;
  t.t_restarts <- t.t_restarts + o.restarts;
  t.t_healthy <- t.t_healthy + o.healthy;
  t.t_degraded <- t.t_degraded + o.degraded;
  t.t_carried <- t.t_carried + o.carried;
  t.t_blackout <- t.t_blackout + o.blackout;
  t.t_incidents <- t.t_incidents + o.incidents;
  t.t_violations <- t.t_violations + o.violations;
  t.t_ladder <- t.t_ladder + o.ladder_activations;
  t.t_spend <- t.t_spend +. o.total_spend;
  t.t_price <- t.t_price +. o.mean_price;
  t.t_delivered <- t.t_delivered +. o.mean_delivered;
  t.t_pob <- t.t_pob +. o.pob

let mean_of t v = if t.t_months = 0 then 0.0 else v /. float_of_int t.t_months

(* %.9g: enough digits to pin every f64 we aggregate, few enough that
   the JSON is stable across platforms. *)
let fnum f = Printf.sprintf "%.9g" f

let cell_totals r =
  let cells = Chaos_matrix.cells r.r_config.axes in
  let table =
    List.map (fun cell -> (Chaos_matrix.cell_name cell, fresh_totals ())) cells
  in
  List.iter
    (fun ((scen : scenario), o) ->
      let name = Chaos_matrix.cell_name scen.cell in
      match List.assoc_opt name table with
      | Some t -> add_outcome t o
      | None -> ())
    r.outcomes;
  table

let report_to_json r =
  let cfg = r.r_config in
  let t = fresh_totals () in
  List.iter (fun (_, o) -> add_outcome t o) r.outcomes;
  let b = Buffer.create 4096 in
  Printf.bprintf b
    "{\"fleet\":{\"months\":%d,\"matrix\":\"%s\",\"cells\":%d,\"topologies\":%d,\"sites\":%d,\"bps\":%d,\"epochs\":%d,\"seed\":%d}"
    cfg.months
    (Metrics.json_escape (Chaos_matrix.spec_of_axes cfg.axes))
    (List.length (Chaos_matrix.cells cfg.axes))
    cfg.topologies cfg.sites cfg.bps cfg.epochs cfg.seed;
  Printf.bprintf b
    ",\"survival\":{\"completed\":%d,\"unrecovered\":%d,\"kills\":%d,\"recovered\":{\"crash\":%d,\"short_write\":%d,\"torn_rename\":%d,\"lying_fsync\":%d,\"corrupt_byte\":%d},\"scrub_truncated\":%d,\"scrub_quarantined\":%d,\"restarts\":%d}"
    t.t_completed (t.t_months - t.t_completed) t.t_kills t.t_rec.r_crash
    t.t_rec.r_short_write t.t_rec.r_torn_rename t.t_rec.r_lying_fsync
    t.t_rec.r_corrupt_byte t.t_truncated t.t_quarantined t.t_restarts;
  Printf.bprintf b
    ",\"service\":{\"epochs\":%d,\"healthy\":%d,\"degraded\":%d,\"carried\":%d,\"blackout\":%d,\"incidents\":%d,\"violations\":%d,\"ladder_activations\":%d}"
    (t.t_healthy + t.t_degraded + t.t_carried + t.t_blackout)
    t.t_healthy t.t_degraded t.t_carried t.t_blackout t.t_incidents
    t.t_violations t.t_ladder;
  Printf.bprintf b
    ",\"welfare\":{\"total_spend\":%s,\"mean_price\":%s,\"mean_delivered\":%s,\"mean_pob\":%s}"
    (fnum t.t_spend)
    (fnum (mean_of t t.t_price))
    (fnum (mean_of t t.t_delivered))
    (fnum (mean_of t t.t_pob));
  Buffer.add_string b ",\"cells\":[";
  List.iteri
    (fun i (name, ct) ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b
        "{\"cell\":\"%s\",\"months\":%d,\"completed\":%d,\"kills\":%d,\"restarts\":%d,\"mean_delivered\":%s,\"mean_pob\":%s}"
        (Metrics.json_escape name) ct.t_months ct.t_completed ct.t_kills
        ct.t_restarts
        (fnum (mean_of ct ct.t_delivered))
        (fnum (mean_of ct ct.t_pob)))
    (cell_totals r);
  Buffer.add_string b "]}\n";
  Buffer.contents b

(* Wall-clock rollup — deliberately {e not} part of [report_to_json],
   whose bytes are pinned deterministic across [--jobs] and
   kill + resume.  One entry per matrix cell in matrix order, read back
   from the labeled [poc_fleet_cell_seconds] series (which
   [Metrics.to_prometheus] exports as the same rollup in exposition
   form). *)
let latency_rollup_json cfg =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"cells\":[";
  List.iteri
    (fun i cell ->
      if i > 0 then Buffer.add_char b ',';
      let name = Chaos_matrix.cell_name cell in
      let h = h_cell name in
      let n = Metrics.Histogram.count h in
      let q v = if n = 0 then "0" else fnum v in
      Printf.bprintf b
        "{\"cell\":\"%s\",\"months\":%d,\"sum_s\":%s,\"p50_s\":%s,\"p95_s\":%s,\"p99_s\":%s,\"max_s\":%s}"
        (Metrics.json_escape name) n
        (q (Metrics.Histogram.sum h))
        (q (Metrics.Histogram.p50 h))
        (q (Metrics.Histogram.p95 h))
        (q (Metrics.Histogram.p99 h))
        (q (Metrics.Histogram.max_observed h)))
    (Chaos_matrix.cells cfg.axes);
  Buffer.add_string b "]}\n";
  Buffer.contents b

let render r =
  let cfg = r.r_config in
  let t = fresh_totals () in
  List.iter (fun (_, o) -> add_outcome t o) r.outcomes;
  let b = Buffer.create 2048 in
  Printf.bprintf b
    "fleet:    %d scenario-months, matrix %s (%d cells), %d topologies, %d \
     sites / %d BPs / %d epochs, seed %d\n"
    cfg.months
    (Chaos_matrix.spec_of_axes cfg.axes)
    (List.length (Chaos_matrix.cells cfg.axes))
    cfg.topologies cfg.sites cfg.bps cfg.epochs cfg.seed;
  Printf.bprintf b
    "survival: %d/%d completed, %d kills survived (crash %d, short_write %d, \
     torn_rename %d, lying_fsync %d, corrupt_byte %d), %d truncated / %d \
     quarantined segments, %d restarts\n"
    t.t_completed t.t_months t.t_kills t.t_rec.r_crash t.t_rec.r_short_write
    t.t_rec.r_torn_rename t.t_rec.r_lying_fsync t.t_rec.r_corrupt_byte
    t.t_truncated t.t_quarantined t.t_restarts;
  Printf.bprintf b
    "service:  %d epochs — %d healthy, %d degraded, %d carried, %d blackout; \
     %d incidents, %d violations\n"
    (t.t_healthy + t.t_degraded + t.t_carried + t.t_blackout)
    t.t_healthy t.t_degraded t.t_carried t.t_blackout t.t_incidents
    t.t_violations;
  Printf.bprintf b
    "welfare:  $%.0f total spend, mean price $%.2f per Gbps, mean delivered \
     %.4f, mean PoB %.4f\n"
    t.t_spend (mean_of t t.t_price)
    (mean_of t t.t_delivered)
    (mean_of t t.t_pob);
  let rows =
    List.map
      (fun (name, ct) ->
        [
          name;
          string_of_int ct.t_months;
          string_of_int ct.t_completed;
          string_of_int ct.t_kills;
          string_of_int ct.t_restarts;
          Table.fmt_float (mean_of ct ct.t_delivered);
          Table.fmt_float (mean_of ct ct.t_pob);
        ])
      (cell_totals r)
  in
  Buffer.add_string b
    (Table.render
       ~align:
         [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
           Table.Right; Table.Right ]
       ~header:[ "cell"; "months"; "done"; "kills"; "restarts"; "delivered";
                 "PoB" ]
       rows);
  Buffer.contents b
