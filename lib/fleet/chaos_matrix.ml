module Fault = Poc_resilience.Fault
module Disk = Poc_resilience.Disk
module Wan = Poc_topology.Wan

type axes = {
  with_crash : bool;
  with_storage : bool;
  with_degrade : bool;
}

let axes_of_spec spec =
  match String.lowercase_ascii (String.trim spec) with
  | "none" -> Ok { with_crash = false; with_storage = false; with_degrade = false }
  | "full" -> Ok { with_crash = true; with_storage = true; with_degrade = true }
  | s ->
    let parts = String.split_on_char '+' s |> List.map String.trim in
    List.fold_left
      (fun acc part ->
        match (acc, part) with
        | (Error _ as e), _ -> e
        | Ok a, "crash" -> Ok { a with with_crash = true }
        | Ok a, "storage" -> Ok { a with with_storage = true }
        | Ok a, "degrade" -> Ok { a with with_degrade = true }
        | Ok _, other ->
          Error
            (Printf.sprintf
               "bad matrix axis %S: expected none, full, or a +-joined \
                combination of crash, storage, degrade"
               other))
      (Ok { with_crash = false; with_storage = false; with_degrade = false })
      parts

let spec_of_axes a =
  let parts =
    (if a.with_crash then [ "crash" ] else [])
    @ (if a.with_storage then [ "storage" ] else [])
    @ if a.with_degrade then [ "degrade" ] else []
  in
  match parts with [] -> "none" | _ :: _ -> String.concat "+" parts

type crash_variant = C_none | C_at of Fault.phase

type storage_variant =
  | S_none
  | S_short_write
  | S_torn_rename
  | S_lying_fsync
  | S_corrupt_byte

type degrade_variant = D_none | D_light | D_heavy | D_surge

type cell = {
  crash : crash_variant;
  storage : storage_variant;
  degrade : degrade_variant;
}

let crash_variants = function
  | false -> [ C_none ]
  | true ->
    [
      C_none;
      C_at Fault.Pre_auction;
      C_at Fault.Pre_settle;
      C_at Fault.Post_settle;
    ]

let storage_variants = function
  | false -> [ S_none ]
  | true -> [ S_none; S_short_write; S_torn_rename; S_lying_fsync; S_corrupt_byte ]

let degrade_variants = function
  | false -> [ D_none ]
  | true -> [ D_none; D_light; D_heavy; D_surge ]

(* Degrade outermost, storage middle, crash innermost: a short fleet
   still sweeps every crash phase before repeating a storage kind. *)
let cells axes =
  List.concat_map
    (fun degrade ->
      List.concat_map
        (fun storage ->
          List.map
            (fun crash -> { crash; storage; degrade })
            (crash_variants axes.with_crash))
        (storage_variants axes.with_storage))
    (degrade_variants axes.with_degrade)

let cell_name cell =
  let parts =
    (match cell.crash with
    | C_none -> []
    | C_at p -> [ "crash_" ^ Fault.phase_to_string p ])
    @ (match cell.storage with
      | S_none -> []
      | S_short_write -> [ "short_write" ]
      | S_torn_rename -> [ "torn_rename" ]
      | S_lying_fsync -> [ "lying_fsync" ]
      | S_corrupt_byte -> [ "corrupt_byte" ])
    @
    match cell.degrade with
    | D_none -> []
    | D_light -> [ "light" ]
    | D_heavy -> [ "heavy" ]
    | D_surge -> [ "surge" ]
  in
  match parts with [] -> "plain" | _ :: _ -> String.concat "+" parts

let has_kills cell = cell.crash <> C_none || cell.storage <> S_none

let specs cell ~wan ~epochs ~salt =
  if epochs < 4 then
    invalid_arg "Chaos_matrix.specs: epochs must be >= 4 for the fault matrix";
  let crash_epoch = max 2 (epochs / 2) in
  let storage_epoch = epochs - 1 in
  let stress =
    match cell.degrade with
    | D_none -> []
    | D_light -> [ Fault.Link_failure { at_epoch = 2; count = 2; duration = 2 } ]
    | D_heavy ->
      let biggest =
        match Wan.bps_by_size wan with b :: _ -> b | [] -> 0
      in
      let n_bps = Array.length wan.Wan.bps in
      Fault.Bp_bankruptcy { at_epoch = 3; bp = biggest }
      :: List.init n_bps (fun bp ->
             Fault.Capacity_recall
               { at_epoch = 4; bp; fraction = 1.0; duration = 1 })
    | D_surge ->
      [
        Fault.Traffic_surge { at_epoch = 2; factor = 2.5; duration = 2 };
        Fault.Offer_shrinkage { at_epoch = 3; fraction = 0.25 };
      ]
  in
  let crash =
    match cell.crash with
    | C_none -> []
    | C_at phase -> [ Fault.Crash { at_epoch = crash_epoch; phase } ]
  in
  let storage =
    match cell.storage with
    | S_none -> []
    | S_short_write ->
      [
        Fault.Storage
          {
            at_epoch = storage_epoch;
            phase = Fault.Post_settle;
            fault = Disk.Short_write { drop = 9 };
          };
      ]
    | S_torn_rename ->
      [
        Fault.Storage
          {
            at_epoch = storage_epoch;
            phase = Fault.Post_settle;
            fault = Disk.Torn_rename;
          };
      ]
    | S_lying_fsync ->
      [
        Fault.Storage
          {
            at_epoch = storage_epoch;
            phase = Fault.Pre_settle;
            fault = Disk.Lying_fsync { drop = 48 };
          };
      ]
    | S_corrupt_byte ->
      [
        Fault.Storage
          {
            at_epoch = storage_epoch;
            phase = Fault.Post_settle;
            fault = Disk.Corrupt_byte { seed = 1 + salt };
          };
      ]
  in
  stress @ crash @ storage
