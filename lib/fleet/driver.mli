(** The fleet driver: thousands of seeded scenario-months sharded
    across the domain pool under the chaos matrix.

    One {e scenario-month} is a full supervised market run
    ([Poc_resilience.Supervisor]): its own topology seed, market seed,
    fault schedule (one {!Chaos_matrix.cell}, cycling over the enabled
    matrix) and its own segmented journal under the shared store root
    at [<store>/<scenario-id>/].  Scenarios are independent, so the
    fleet shards whole runs across [Poc_util.Pool] — one scenario per
    task — and merges outcomes in scenario order, which makes the
    aggregate report byte-deterministic at every [--jobs] value.

    {2 Kill chains}

    A cell can carry up to two process-killing specs (a [Fault.Crash]
    and a [Fault.Storage] at distinct epochs).  The driver survives
    them inside the same fleet run with a {e kill chain}: when
    [Supervisor.Injected_crash] fires, the scenario's store is scrubbed
    ([Journal.scrub], applied), the fired kill spec is dropped from the
    schedule (the journal digest ignores kill specs, so the recompiled
    schedule still matches) and the run is resumed with
    [~honor_crashes:true] so the {e next} kill point can fire.  When
    scrub cannot recover the store, the scenario restarts from epoch 1
    under the remaining schedule — either way the chain consumes one
    kill per attempt and terminates, and because the market is a pure
    function of its seeds the final per-scenario report is identical to
    an uninterrupted run of the same schedule minus its kill points.

    {2 Fleet-level crash safety}

    Each completed scenario writes a checksummed [RESULT] frame into
    its store (atomic rename), and the root carries a [FLEET] manifest
    pinning the fleet config.  If the fleet process itself dies — a
    [kill_after] drill or a real SIGKILL — rerunning with [resume]
    loads every valid [RESULT], re-runs only the missing scenarios, and
    produces a byte-identical aggregate report. *)

type config = {
  months : int;            (** scenario-months in the fleet, >= 1 *)
  axes : Chaos_matrix.axes;
  seed : int;              (** master seed; every per-scenario seed derives
                               from it *)
  topologies : int;        (** distinct topology seeds cycled over, >= 1 *)
  sites : int;
  bps : int;
  epochs : int;            (** market horizon per scenario, >= 4 *)
  segment_bytes : int;     (** journal rotation budget per scenario *)
  snapshot_every : int;
  store : string;          (** fleet store root *)
  flight : bool;           (** attach one flight recorder per scenario,
                               persisted at [<store>/<id>/FLIGHT].  Not
                               fleet shape: the manifest neither records
                               nor checks it, and journal bytes and the
                               aggregate report are identical either
                               way. *)
}

val default_config : store:string -> config
(** months 1000, full axes, seed 2020, 8 topologies, 16 sites, 5 BPs,
    6 epochs, 2 KiB segments, snapshot every 2 epochs, no flight
    recorders. *)

val validate : config -> (unit, string) result
(** Every offending field in one message, [Fault]-style. *)

type scenario = {
  index : int;             (** 0-based position in the fleet *)
  id : string;             (** ["m00042-crash_pre_settle+torn_rename"] —
                               the store subdirectory name *)
  cell : Chaos_matrix.cell;
  topo_seed : int;         (** [seed + index mod topologies] *)
  market_seed : int;
  fault_seed : int;        (** schedule-compilation seed *)
}

val scenario : config -> int -> scenario
(** The [i]-th scenario's derived identity; pure, so resume re-derives
    the same fleet layout from the manifest alone. *)

type recoveries = {
  r_crash : int;
  r_short_write : int;
  r_torn_rename : int;
  r_lying_fsync : int;
  r_corrupt_byte : int;
}
(** Kills survived, by fault kind. *)

type outcome = {
  completed : bool;        (** the scenario reached its horizon *)
  kills : int;             (** injected process deaths fired *)
  recovered : recoveries;
  scrub_truncated : int;   (** segments truncated across the kill chain *)
  scrub_quarantined : int; (** segments quarantined across the kill chain *)
  restarts : int;          (** unrecoverable stores restarted from epoch 1 *)
  healthy : int;           (** epochs at each service level... *)
  degraded : int;
  carried : int;
  blackout : int;
  incidents : int;
  violations : int;        (** invariant breaches; expected 0 *)
  ladder_activations : int;
  total_spend : float;
  mean_price : float;      (** mean price per Gbps over the horizon *)
  mean_delivered : float;  (** mean delivered fraction over the horizon *)
  pob : float;             (** aggregate price of bandwidth of the last
                               settled epoch's auction *)
}

val encode_outcome : scenario -> outcome -> string
(** The scenario's [RESULT] file: a single checksummed [Codec] frame
    (scenario id pinned inside, so a mislaid file never loads). *)

val decode_outcome : scenario -> string -> outcome option
(** [None] on a torn, corrupt, version-skewed or wrong-scenario frame —
    resume then simply re-runs the scenario. *)

type report = {
  r_config : config;
  outcomes : (scenario * outcome) list;  (** scenario order *)
}

type run_result =
  | Finished of report
  | Interrupted of { completed_months : int }
      (** a [kill_after] drill stopped the fleet mid-run; the store
          resumes *)

val run :
  ?pool:Poc_util.Pool.t ->
  ?resume:bool ->
  ?kill_after:int ->
  config ->
  (run_result, string) result
(** Drive the whole fleet.  Fresh runs require a store root with no
    [FLEET] manifest and write one; [~resume:true] requires the
    manifest, checks it against [config], loads completed scenarios
    from their [RESULT] frames and re-runs the rest.  [kill_after n]
    stops the fleet once at least [n] scenarios have completed in this
    invocation (the smoke test's SIGKILL stand-in).  [pool] shards
    scenarios across domains; the report is byte-identical at every
    pool size and across kill + resume.  [Error] on an invalid config,
    an unplannable topology, or a store/manifest mismatch. *)

val report_to_json : report -> string
(** Aggregate survival/service/welfare report as one JSON document:
    fleet identity, survival counters (kills, per-fault-kind
    recoveries, scrub actions, restarts), service-level epoch counts,
    welfare means, and a per-cell breakdown in matrix order.  Contains
    no absolute paths and no runtime-only state (timings, resume-load
    counts), so it is byte-identical across [--jobs] values and across
    kill + resume.  Floats are printed with [%.9g]. *)

val render : report -> string
(** Human summary: fleet header, survival and welfare lines, and a
    per-cell table. *)

val latency_rollup_json : config -> string
(** Per-cell wall-clock latency rollup, in matrix order:
    [{"cells":[{"cell","months","sum_s","p50_s","p95_s","p99_s",
    "max_s"}]}], read from the labeled [poc_fleet_cell_seconds]
    histograms the fleet observes one scenario-month wall time each
    into.  Wall-clock dependent by nature, so it is kept out of
    {!report_to_json} (whose bytes stay deterministic); the same
    series reach Prometheus via [Poc_obs.Metrics.to_prometheus]. *)
