(** Chaos-matrix generator: the cross of process-crash points, storage
    faults and degradation schedules that the fleet driver assigns to
    its scenario-months.

    The paper's claims are about {e distributions} of market months, so
    the fleet validates resilience the same way: a matrix of fault
    templates ({!cell}s) is crossed over thousands of seeded scenarios,
    one cell per scenario, cycling so every cell receives an even share
    of the fleet.  Three axes, each independently enabled by {!axes}:

    - {b crash} — a {!Poc_resilience.Fault.Crash} at every phase of a
      mid-horizon epoch (the kill-and-resume drill);
    - {b storage} — a {!Poc_resilience.Fault.Storage} power cut for each
      of the four {!Poc_resilience.Disk.fault} kinds (short write, torn
      rename, lying fsync, silent byte corruption) near the end of the
      horizon, so the damaged store has history worth recovering;
    - {b degrade} — market-stress schedules that drive the degradation
      ladder: link failures, a bankruptcy plus a mass recall, and a
      traffic surge with offer shrinkage.

    Every axis includes its "none" variant, so an enabled matrix always
    contains the undisturbed baseline cell and the cross is a true
    product.  Cell lists and spec lists are pure data: the same axes
    and horizon always produce the same cells in the same order. *)

type axes = {
  with_crash : bool;
  with_storage : bool;
  with_degrade : bool;
}

val axes_of_spec : string -> (axes, string) result
(** Parse a [--matrix] spec: ["none"], ["full"] (all three axes), or
    any ["+"]-joined combination of ["crash"], ["storage"] and
    ["degrade"] (e.g. ["crash+degrade"]).  [Error] names the offending
    token. *)

val spec_of_axes : axes -> string
(** Canonical rendering, the inverse of {!axes_of_spec} on canonical
    input: ["none"], or the enabled axes joined with ["+"] in
    crash/storage/degrade order. *)

type crash_variant = C_none | C_at of Poc_resilience.Fault.phase

type storage_variant =
  | S_none
  | S_short_write
  | S_torn_rename
  | S_lying_fsync
  | S_corrupt_byte

type degrade_variant = D_none | D_light | D_heavy | D_surge

type cell = {
  crash : crash_variant;
  storage : storage_variant;
  degrade : degrade_variant;
}

val cells : axes -> cell list
(** The full cross product, "none" variants included, in a fixed order
    (degrade outermost, storage middle, crash innermost — so short
    fleets still sweep the crash axis first).  Never empty: disabled
    axes contribute exactly their "none" variant, so [cells none_axes]
    is the single undisturbed cell. *)

val cell_name : cell -> string
(** Stable, filesystem-safe name: the non-none variants joined with
    ["+"] (e.g. ["crash_pre_settle+corrupt_byte+heavy"]), or ["plain"]
    when every axis is at "none".  Unique across {!cells}. *)

val has_kills : cell -> bool
(** True when the cell contains a process-killing spec (crash or
    storage), i.e. running it raises
    [Poc_resilience.Supervisor.Injected_crash] at least once. *)

val specs :
  cell ->
  wan:Poc_topology.Wan.t ->
  epochs:int ->
  salt:int ->
  Poc_resilience.Fault.spec list
(** Concrete fault specs for one scenario: the degradation schedule
    (stress specs first), then the crash point at epoch
    [max 2 (epochs / 2)], then the storage power cut at epoch
    [epochs - 1] — distinct epochs, so a cell combining both axes fires
    both kills in order across the fleet driver's resume chain.
    [salt] (the scenario index) diversifies the [Corrupt_byte] seed so
    corruption lands at different offsets across the fleet.  Requires
    [epochs >= 4] (raises [Invalid_argument] otherwise) so the kill
    epochs stay distinct and inside the horizon. *)
