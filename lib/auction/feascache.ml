module Metrics = Poc_obs.Metrics

let m_hits =
  Metrics.counter ~help:"Shared feasibility/cost cache hits"
    Metrics.default "poc_feascache_hits_total"

let m_misses =
  Metrics.counter ~help:"Shared feasibility/cost cache misses"
    Metrics.default "poc_feascache_misses_total"

type shard = {
  feas : (string, bool) Hashtbl.t;
  cost : (string, float) Hashtbl.t;
}

type t = {
  digest : string;
  merged : shard; (* written only by [join]; read-only between joins *)
  mu : Mutex.t; (* guards [shards] registration and [join] *)
  shards : (int, shard) Hashtbl.t; (* domain id -> private shard *)
  hits : int Atomic.t;
  misses : int Atomic.t;
}

let enabled_flag = Atomic.make true

let enabled () = Atomic.get enabled_flag

let set_enabled v = Atomic.set enabled_flag v

let mk_shard () = { feas = Hashtbl.create 512; cost = Hashtbl.create 64 }

let create ~digest =
  {
    digest;
    merged = mk_shard ();
    mu = Mutex.create ();
    shards = Hashtbl.create 8;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
  }

let digest t = t.digest

(* The lock is held only for the shard lookup/registration — never
   while probing or writing entries, which touch purely domain-private
   state (plus lock-free reads of the quiescent merged table). *)
let my_shard t =
  let did = (Domain.self () :> int) in
  Mutex.protect t.mu (fun () ->
      match Hashtbl.find_opt t.shards did with
      | Some s -> s
      | None ->
        let s = mk_shard () in
        Hashtbl.add t.shards did s;
        s)

let count_result t = function
  | Some _ as r ->
    Atomic.incr t.hits;
    Metrics.Counter.inc m_hits;
    r
  | None ->
    Atomic.incr t.misses;
    Metrics.Counter.inc m_misses;
    None

let find_feas t key =
  let r =
    match Hashtbl.find_opt t.merged.feas key with
    | Some _ as r -> r
    | None -> Hashtbl.find_opt (my_shard t).feas key
  in
  count_result t r

let add_feas t key v = Hashtbl.replace (my_shard t).feas key v

let find_cost t key =
  let r =
    match Hashtbl.find_opt t.merged.cost key with
    | Some _ as r -> r
    | None -> Hashtbl.find_opt (my_shard t).cost key
  in
  count_result t r

let add_cost t key v = Hashtbl.replace (my_shard t).cost key v

let join t =
  Mutex.protect t.mu (fun () ->
      Hashtbl.iter
        (fun _ s ->
          Hashtbl.iter (fun k v -> Hashtbl.replace t.merged.feas k v) s.feas;
          Hashtbl.iter (fun k v -> Hashtbl.replace t.merged.cost k v) s.cost;
          Hashtbl.reset s.feas;
          Hashtbl.reset s.cost)
        t.shards)

let stats t = (Atomic.get t.hits, Atomic.get t.misses)
