type shape =
  | Additive
  | Volume of (int * float) list (* (min_links, factor), sorted desc by min *)
  | Bundles of (int list * float) list

type t = { prices : (int, float) Hashtbl.t; shape : shape }

let check_prices prices =
  let tbl = Hashtbl.create (List.length prices) in
  List.iter
    (fun (id, p) ->
      if p < 0.0 || not (Float.is_finite p) then invalid_arg "Bid: bad price";
      if Hashtbl.mem tbl id then invalid_arg "Bid: duplicate link id";
      Hashtbl.replace tbl id p)
    prices;
  tbl

let additive prices = { prices = check_prices prices; shape = Additive }

let volume_discount prices ~tiers =
  List.iter
    (fun (k, f) ->
      if k < 2 then invalid_arg "Bid.volume_discount: tier threshold < 2";
      if f <= 0.0 || f > 1.0 then invalid_arg "Bid.volume_discount: factor out of (0,1]")
    tiers;
  let sorted = List.sort (fun (a, _) (b, _) -> compare b a) tiers in
  { prices = check_prices prices; shape = Volume sorted }

let bundled prices ~bundles =
  let tbl = check_prices prices in
  List.iter
    (fun (ids, rebate) ->
      if rebate < 0.0 then invalid_arg "Bid.bundled: negative rebate";
      let sum =
        List.fold_left
          (fun acc id ->
            match Hashtbl.find_opt tbl id with
            | None -> invalid_arg "Bid.bundled: bundle link not offered"
            | Some p -> acc +. p)
          0.0 ids
      in
      if rebate > sum then invalid_arg "Bid.bundled: rebate exceeds bundle price")
    bundles;
  { prices = tbl; shape = Bundles bundles }

let links t = Hashtbl.fold (fun id _ acc -> id :: acc) t.prices [] |> List.sort compare

let additive_sum t subset =
  List.fold_left
    (fun acc id ->
      match acc with
      | None -> None
      | Some s -> (
        match Hashtbl.find_opt t.prices id with
        | None -> None
        | Some p -> Some (s +. p)))
    (Some 0.0) subset

let cost t subset =
  match additive_sum t subset with
  | None -> infinity
  | Some sum -> (
    match t.shape with
    | Additive -> sum
    | Volume tiers ->
      let k = List.length subset in
      let factor =
        match List.find_opt (fun (min_links, _) -> k >= min_links) tiers with
        | Some (_, f) -> f
        | None -> 1.0
      in
      sum *. factor
    | Bundles bundles ->
      let in_subset id = List.mem id subset in
      let rebate =
        List.fold_left
          (fun acc (ids, r) -> if List.for_all in_subset ids then acc +. r else acc)
          0.0 bundles
      in
      Float.max 0.0 (sum -. rebate))

let fingerprint t =
  let b = Buffer.create 256 in
  List.iter
    (fun id ->
      Buffer.add_string b
        (Printf.sprintf "%d=%h;" id (Hashtbl.find t.prices id)))
    (links t);
  (match t.shape with
  | Additive -> Buffer.add_string b "additive"
  | Volume tiers ->
    Buffer.add_string b "volume:";
    List.iter
      (fun (k, f) -> Buffer.add_string b (Printf.sprintf "%d*%h;" k f))
      tiers
  | Bundles bundles ->
    Buffer.add_string b "bundles:";
    List.iter
      (fun (ids, r) ->
        List.iter (fun id -> Buffer.add_string b (Printf.sprintf "%d," id)) ids;
        Buffer.add_string b (Printf.sprintf "=%h;" r))
      bundles);
  Buffer.contents b

let single_price t id =
  match Hashtbl.find_opt t.prices id with
  | Some p -> p
  | None -> raise Not_found

let scale t f =
  if f < 0.0 then invalid_arg "Bid.scale: negative factor";
  let prices = Hashtbl.create (Hashtbl.length t.prices) in
  Hashtbl.iter (fun id p -> Hashtbl.replace prices id (p *. f)) t.prices;
  let shape =
    match t.shape with
    | Additive -> Additive
    | Volume tiers -> Volume tiers
    | Bundles bundles -> Bundles (List.map (fun (ids, r) -> (ids, r *. f)) bundles)
  in
  { prices; shape }
