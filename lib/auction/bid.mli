(** Bandwidth-provider bids.

    Section 3.3: each BP α offers a set of links Lα and a mapping Cα
    from the powerset of Lα to a minimal acceptable (monthly) price,
    allowing multi-link discounts and other non-additive pricing.  A
    full powerset table is exponential, so we support the compact
    families that cover the paper's examples:

    - {e additive}: each link has its own price; a subset costs the sum.
    - {e volume discount}: additive, multiplied by a non-increasing
      factor that depends on how many links are leased (bulk discount).
    - {e bundled}: additive plus named all-or-nothing bundle rebates
      (lease this whole bundle, get a fixed discount).

    Subsets containing links the BP did not offer have infinite price. *)

type t

val additive : (int * float) list -> t
(** [additive prices] with [(link_id, price)] pairs; prices must be
    non-negative and link ids distinct. *)

val volume_discount : (int * float) list -> tiers:(int * float) list -> t
(** [volume_discount prices ~tiers] applies factor [f] from the
    largest tier [(min_links, f)] with [min_links <= |subset|].
    Tiers must have factors in (0, 1] and thresholds >= 2; subsets
    below every tier pay the plain sum. *)

val bundled : (int * float) list -> bundles:(int list * float) list -> t
(** [bundled prices ~bundles] subtracts [rebate] for every bundle whose
    links are all present in the subset.  Rebates must be non-negative
    and no larger than the bundle's additive price. *)

val links : t -> int list
(** The offered link ids, sorted. *)

val cost : t -> int list -> float
(** [cost t subset] is Cα(subset).  [infinity] if [subset] contains a
    link not offered by this BP; 0 for the empty subset. *)

val single_price : t -> int -> float
(** Standalone price of one offered link (used for greedy ordering).
    Raises [Not_found] for links not offered. *)

val scale : t -> float -> t
(** [scale t f] multiplies every price by [f] (misreporting helper for
    strategyproofness experiments). *)

val fingerprint : t -> string
(** Canonical serialization of the bid — sorted per-link prices plus
    the pricing shape, floats rendered exactly ([%h]) — such that equal
    fingerprints imply identical cost functions.  Feeds
    {!Vcg.problem_digest}'s cache key. *)
