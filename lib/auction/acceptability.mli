(** The auction's acceptability predicate A(OL).

    Figure 2 runs the auction under three constraints, "always looking
    for the cheapest solution that satisfies each constraint":

    - Constraint #1: the selected links can carry the traffic matrix.
    - Constraint #2: ... even after the failure of any single logical
      link ("any single path between a pair of routers has failed").
    - Constraint #3: ... even after one logical link between {e each}
      pair of routers has failed simultaneously.  The paper does not
      say which parallel link per pair fails; we remove the
      highest-capacity selected link of every pair, the worst single
      deterministic choice.

    Feasibility is delegated to {!Poc_mcf.Router}, which is
    conservative: a set judged acceptable really can carry the load
    (up to routing heuristics); a rejected set might be carriable by an
    optimal router. *)

type t =
  | Handle_load
  | Single_link_failure
  | Per_pair_failure

val name : t -> string
(** "#1 load" / "#2 single-failure" / "#3 per-pair-failure". *)

val all : t list

val satisfied :
  ?pool:Poc_util.Pool.t ->
  Poc_graph.Graph.t ->
  demands:Poc_mcf.Router.demand list ->
  enabled:(int -> bool) ->
  t ->
  bool
(** [satisfied g ~demands ~enabled rule] decides whether the enabled
    link set is acceptable under [rule].  [pool] fans the
    Constraint #2 per-failure checks out across worker domains
    ({!Poc_mcf.Router.survives_all_single_failures}); the verdict is
    identical at every pool size. *)

val per_pair_failure_scenario :
  Poc_graph.Graph.t -> enabled:(int -> bool) -> int list
(** The edge ids removed by the Constraint #3 scenario: for every node
    pair with at least one enabled link, the highest-capacity enabled
    link (ties broken by lower edge id). *)
