module Graph = Poc_graph.Graph
module Router = Poc_mcf.Router
module Log = Poc_obs.Log
module Trace = Poc_obs.Trace
module Metrics = Poc_obs.Metrics
module Pool = Poc_util.Pool

(* Auction work counters: every candidate selection evaluated against
   the acceptability rule, and every marginal-economy (SL without α)
   recomputation behind a Clarke pivot. *)
let m_candidate_evals =
  Metrics.counter ~help:"Candidate selections checked against the rule"
    Metrics.default "poc_vcg_candidate_evals_total"

let m_pivots =
  Metrics.counter ~help:"Marginal-economy recomputations for Clarke pivots"
    Metrics.default "poc_vcg_pivot_recomputations_total"

let m_auctions =
  Metrics.counter ~help:"Full VCG mechanism runs" Metrics.default
    "poc_vcg_auctions_total"

let m_feas_hits =
  Metrics.counter ~help:"Feasibility probes answered from the memo table"
    Metrics.default "poc_vcg_feasibility_cache_hits_total"

let m_feas_misses =
  Metrics.counter ~help:"Feasibility probes that required a full rule check"
    Metrics.default "poc_vcg_feasibility_cache_misses_total"

(* Ordered map over an optional pool: [None] is the serial path.  Both
   paths visit elements in list order and return results in list order,
   so for the pure functions the auction hands over the result is
   independent of the pool — that is the whole determinism story. *)
let pool_map_list pool f xs =
  match pool with None -> List.map f xs | Some p -> Pool.map_list p f xs

type problem = {
  graph : Graph.t;
  demands : Router.demand list;
  bids : Bid.t array;
  virtual_prices : (int * float) list;
  rule : Acceptability.t;
}

type selection = { selected : int list; cost : float }

type bp_result = {
  bp : int;
  selected_links : int list;
  bid_cost : float;
  payment : float;
  pob : float;
}

type outcome = {
  selection : selection;
  virtual_cost : float;
  bp_results : bp_result array;
  total_payment : float;
}

type link_owner = Owned_by of int | Virtual of float

(* Dense link-id -> owner table; link ids are graph edge ids. *)
let ownership problem =
  let m = Graph.edge_count problem.graph in
  let table = Array.make m None in
  Array.iteri
    (fun bp bid ->
      List.iter
        (fun id ->
          if id < 0 || id >= m then invalid_arg "Vcg: bid link id not in graph";
          match table.(id) with
          | Some _ -> invalid_arg "Vcg: link offered twice"
          | None -> table.(id) <- Some (Owned_by bp))
        (Bid.links bid))
    problem.bids;
  List.iter
    (fun (id, price) ->
      if id < 0 || id >= m then invalid_arg "Vcg: virtual link id not in graph";
      match table.(id) with
      | Some _ -> invalid_arg "Vcg: virtual link also offered by a BP"
      | None -> table.(id) <- Some (Virtual price))
    problem.virtual_prices;
  table

let validate problem =
  match ownership problem with
  | exception Invalid_argument msg -> Error msg
  | _ -> Ok ()

let owner_of_link problem id =
  let table = ownership problem in
  if id < 0 || id >= Array.length table then None
  else begin
    match table.(id) with
    | Some (Owned_by bp) -> Some bp
    | Some (Virtual _) | None -> None
  end

let link_price problem id =
  let table = ownership problem in
  if id < 0 || id >= Array.length table then raise Not_found;
  match table.(id) with
  | Some (Owned_by bp) -> Bid.single_price problem.bids.(bp) id
  | Some (Virtual price) -> price
  | None -> raise Not_found

let partition_by_owner table links =
  let by_bp = Hashtbl.create 16 in
  let virtual_cost = ref 0.0 in
  List.iter
    (fun id ->
      match table.(id) with
      | Some (Owned_by bp) ->
        let prev = Option.value ~default:[] (Hashtbl.find_opt by_bp bp) in
        Hashtbl.replace by_bp bp (id :: prev)
      | Some (Virtual price) -> virtual_cost := !virtual_cost +. price
      | None -> invalid_arg "Vcg: selection contains unoffered link")
    links;
  (by_bp, !virtual_cost)

let selection_cost_with_table problem table links =
  let by_bp, virtual_cost = partition_by_owner table links in
  let bp_cost =
    Hashtbl.fold
      (fun bp ids acc -> acc +. Bid.cost problem.bids.(bp) ids)
      by_bp 0.0
  in
  bp_cost +. virtual_cost

let selection_cost problem links =
  selection_cost_with_table problem (ownership problem) links

(* Canonical serialization of everything the cached functions can
   depend on: graph shape and edge attributes (feasibility), bids and
   virtual prices (cost), demands and rule (both).  Floats render
   exactly via %h, so two problems share a digest only when the cached
   functions agree on every enabled set. *)
let problem_digest problem =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "poc-vcg-problem-v1\n";
  Buffer.add_string buf
    (Printf.sprintf "g:%d/%d\n"
       (Graph.node_count problem.graph)
       (Graph.edge_count problem.graph));
  Array.iter
    (fun (e : Graph.edge) ->
      Buffer.add_string buf
        (Printf.sprintf "e%d:%d-%d:%h:%h\n" e.id e.u e.v e.weight e.capacity))
    (Graph.edges problem.graph);
  List.iter
    (fun (a, z, d) ->
      Buffer.add_string buf (Printf.sprintf "d%d-%d:%h\n" a z d))
    problem.demands;
  Buffer.add_string buf
    (match problem.rule with
    | Acceptability.Handle_load -> "rule:load\n"
    | Acceptability.Single_link_failure -> "rule:single\n"
    | Acceptability.Per_pair_failure -> "rule:pair\n");
  Array.iteri
    (fun bp bid ->
      Buffer.add_string buf
        (Printf.sprintf "b%d:%s\n" bp (Bid.fingerprint bid)))
    problem.bids;
  List.iter
    (fun (id, p) -> Buffer.add_string buf (Printf.sprintf "v%d:%h\n" id p))
    problem.virtual_prices;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* --- Greedy selection -------------------------------------------------

   The open algorithm, in stages:

   1. Rank all offered links by price per Gbps and binary-search the
      smallest prefix acceptable under the rule.
   2. Drop links left idle by the routing (verified).
   3. Prune most-expensive-first: incremental re-routing checks under
      rule #1, a bounded number of full rule checks under the failure
      rules.

   Deterministic and bid-independent in structure, as the paper's
   "open algorithm" argument requires. *)

let prune_limit_load = 500

let prune_limit_single_failure = 400

let prune_limit_per_pair = 400

let satisfied ?pool problem ~enabled =
  Metrics.Counter.inc m_candidate_evals;
  Acceptability.satisfied ?pool problem.graph ~demands:problem.demands ~enabled
    problem.rule

let optimize_from ~score ?(banned = fun _ -> false) ?init ?(light = false)
    ?cache ?pool problem =
  let table = ownership problem in
  let m = Array.length table in
  let offered =
    List.filter
      (fun id -> table.(id) <> None && not (banned id))
      (List.init m Fun.id)
  in
  let price id =
    match table.(id) with
    | Some (Owned_by bp) -> Bid.single_price problem.bids.(bp) id
    | Some (Virtual p) -> p
    | None -> assert false
  in
  let ranked =
    List.sort (fun a b -> compare (score problem price a) (score problem price b))
      offered
    |> Array.of_list
  in
  let n = Array.length ranked in
  let in_set = Array.make m false in
  let set_prefix k =
    Array.fill in_set 0 m false;
    for i = 0 to k - 1 do
      in_set.(ranked.(i)) <- true
    done
  in
  let enabled id = in_set.(id) in
  let current_links () =
    List.filter (fun id -> in_set.(id)) (List.init m Fun.id)
  in
  (* Memo tables for the two pure functions of the enabled set that the
     pruning stages re-evaluate constantly: the acceptability probe and
     the selection cost.  Keyed on the canonical bit-string of [in_set].
     The call-local tables are checked first (no lock, no shard walk);
     behind them sits the optional shared {!Feascache.t}, which carries
     verdicts across calls — in particular across the Clarke pivots of
     one settle loop.  Both layers memoize the same pure functions, so
     results are identical with either, both, or neither. *)
  let key_of_set () =
    String.init m (fun i -> if in_set.(i) then '1' else '0')
  in
  let feas_cache : (string, bool) Hashtbl.t = Hashtbl.create 512 in
  let cost_cache : (string, float) Hashtbl.t = Hashtbl.create 64 in
  let rule_ok () =
    let key = key_of_set () in
    match Hashtbl.find_opt feas_cache key with
    | Some ok ->
      Metrics.Counter.inc m_feas_hits;
      ok
    | None -> (
      match Option.bind cache (fun c -> Feascache.find_feas c key) with
      | Some ok ->
        Metrics.Counter.inc m_feas_hits;
        Hashtbl.add feas_cache key ok;
        ok
      | None ->
        Metrics.Counter.inc m_feas_misses;
        (* Nested submissions from a pool worker run inline, so passing
           the pool down is safe wherever this evaluation happens. *)
        let ok = satisfied ?pool problem ~enabled in
        Hashtbl.add feas_cache key ok;
        Option.iter (fun c -> Feascache.add_feas c key ok) cache;
        ok)
  in
  let check_prefix k =
    set_prefix k;
    rule_ok ()
  in
  (* Grow the current set with the cheapest absent candidates (doubling
     batches) until the rule holds, then bisect the additions back to
     the smallest sufficient prefix.  False when even everything fails. *)
  let repair_current () =
    if rule_ok () then true
    else begin
      let cursor = ref 0 in
      let exhausted () = !cursor >= n in
      let added = ref [] in
      let add_batch size =
        let got = ref 0 in
        while !got < size && not (exhausted ()) do
          let id = ranked.(!cursor) in
          incr cursor;
          if not in_set.(id) then begin
            in_set.(id) <- true;
            added := id :: !added;
            incr got
          end
        done
      in
      let rec grow batch =
        if rule_ok () then true
        else if exhausted () then false
        else begin
          add_batch batch;
          grow (min 1024 (batch * 2))
        end
      in
      let ok = grow 16 in
      (if ok then begin
         match List.rev !added with
         | [] -> ()
         | additions_list ->
           let additions = Array.of_list additions_list in
           let total = Array.length additions in
           let apply keep =
             Array.iteri (fun i id -> in_set.(id) <- i < keep) additions
           in
           let check keep =
             apply keep;
             rule_ok ()
           in
           let rec bisect lo hi =
             (* invariant: hi works *)
             if lo >= hi then hi
             else begin
               let mid = (lo + hi) / 2 in
               if check mid then bisect lo mid else bisect (mid + 1) hi
             end
           in
           let keep = bisect 0 total in
           apply keep
       end);
      ok
    end
  in
  let initialized =
    match init with
    | Some links ->
      (* Warm start: begin from a known-good selection (minus whatever
         is now banned) and repair. *)
      Array.fill in_set 0 m false;
      List.iter
        (fun id ->
          if id >= 0 && id < m && table.(id) <> None && not (banned id) then
            in_set.(id) <- true)
        links;
      repair_current ()
    | None ->
      if n = 0 || not (check_prefix n) then false
      else begin
        (* Smallest acceptable prefix (acceptability is monotone in the
           link set up to routing-heuristic noise). *)
        let rec bsearch lo hi =
          if lo >= hi then hi
          else begin
            let mid = (lo + hi) / 2 in
            if check_prefix mid then bsearch lo mid else bsearch (mid + 1) hi
          end
        in
        let k = bsearch 1 n in
        (* Start the pruning stages from a wider prefix: the minimal
           acceptable prefix is tight, and giving the pruner twice as
           much cheap material to keep lets it discard expensive links
           that the tight prefix was forced to retain. *)
        set_prefix (min n (2 * k));
        true
      end
  in
  if not initialized then None
  else begin
    (* Drop links idle under load routing (verified under the rule). *)
    let try_free_drop check =
      let base = Router.route ~enabled problem.graph ~demands:problem.demands in
      let used = Hashtbl.create 64 in
      List.iter (fun id -> Hashtbl.replace used id ()) (Router.used_edges base);
      (match problem.rule with
      | Acceptability.Per_pair_failure ->
        (* Scenario victims must stay: they are what fails. *)
        List.iter
          (fun id -> Hashtbl.replace used id ())
          (Acceptability.per_pair_failure_scenario problem.graph ~enabled)
      | Acceptability.Handle_load | Acceptability.Single_link_failure -> ());
      let idle =
        List.filter (fun id -> not (Hashtbl.mem used id)) (current_links ())
      in
      match idle with
      | [] -> ()
      | _ :: _ ->
        List.iter (fun id -> in_set.(id) <- false) idle;
        if not (check ()) then
          (* Rare: the idle links were implicit backups; restore. *)
          List.iter (fun id -> in_set.(id) <- true) idle
    in
    try_free_drop rule_ok;
    (* Prune, most expensive first.  Rule #1 removals are validated by
       incremental re-routing against a maintained base; the failure
       rules pay a bounded number of full rule checks. *)
    (* Removals validated incrementally are certified by a chain of
       re-routes, but a fresh routing of the final set can still fail
       (the path heuristic is order-sensitive); verify and roll back to
       the longest safe prefix of removals when it does. *)
    let rollback_if_needed removals_rev =
      if not (rule_ok ()) then begin
        let removals = Array.of_list (List.rev removals_rev) in
        let total = Array.length removals in
        let apply keep =
          Array.iteri (fun i id -> in_set.(id) <- i >= keep) removals
        in
        let check keep =
          apply keep;
          rule_ok ()
        in
        let rec bisect lo hi =
          (* invariant: lo is safe, hi+1 unsafe *)
          if lo >= hi then lo
          else begin
            let mid = (lo + hi + 1) / 2 in
            if check mid then bisect mid hi else bisect lo (mid - 1)
          end
        in
        let keep = bisect 0 (total - 1) in
        apply keep
      end
    in
    let incremental_prune limit =
      let by_price_desc =
        List.sort (fun a b -> compare (price b) (price a)) (current_links ())
      in
      let budgeted = List.filteri (fun i _ -> i < limit) by_price_desc in
      let base =
        ref (Router.route ~enabled problem.graph ~demands:problem.demands)
      in
      let removed = ref [] in
      List.iter
        (fun id ->
          match
            Router.reroute_without_edge ~enabled problem.graph ~base:!base
              ~failed_edge:id
          with
          | None -> ()
          | Some r ->
            in_set.(id) <- false;
            removed := id :: !removed;
            base := r)
        budgeted;
      rollback_if_needed !removed
    in
    let polish limit =
      let by_price_desc =
        List.sort (fun a b -> compare (price b) (price a)) (current_links ())
      in
      let budgeted = List.filteri (fun i _ -> i < limit) by_price_desc in
      List.iter
        (fun id ->
          in_set.(id) <- false;
          if not (rule_ok ()) then in_set.(id) <- true)
        budgeted
    in
    (* Rule #2 deep prune: each removal is validated by an incremental
       re-route plus a spot check that the most-loaded links still
       survive; a final full verification rolls removals back (by
       bisection over the removal sequence) if the cheap checks let a
       violation slip through. *)
    let spot_check_width = 25 in
    let prune_single_failure limit =
      let by_price_desc =
        List.sort (fun a b -> compare (price b) (price a)) (current_links ())
      in
      let budgeted = List.filteri (fun i _ -> i < limit) by_price_desc in
      let base =
        ref (Router.route ~enabled problem.graph ~demands:problem.demands)
      in
      let removed = ref [] in
      let spot_survives (r : Router.routing) =
        let top =
          Router.used_edges r
          |> List.sort (fun a b ->
                 compare r.Router.usage.(b) r.Router.usage.(a))
          |> List.filteri (fun i _ -> i < spot_check_width)
        in
        let survives f =
          Router.survives_failure ~enabled problem.graph
            ~demands:problem.demands ~base:r ~failed_edge:f
        in
        (* The failure checks are independent reads of the frozen
           routing [r]; fan them out when a pool is available.  The
           parallel arm evaluates all of them (no short-circuit), so
           Router work counters read as honest totals, but the boolean
           — and therefore the selection — is the same either way. *)
        match pool with
        | None -> List.for_all survives top
        | Some p -> List.for_all Fun.id (Pool.map_list p survives top)
      in
      List.iter
        (fun id ->
          match
            Router.reroute_without_edge ~enabled problem.graph ~base:!base
              ~failed_edge:id
          with
          | None -> ()
          | Some r ->
            in_set.(id) <- false;
            if spot_survives r then begin
              base := r;
              removed := id :: !removed
            end
            else in_set.(id) <- true)
        budgeted;
      rollback_if_needed !removed
    in
    let prune_pass () =
      match problem.rule with
      | Acceptability.Handle_load ->
        incremental_prune (if light then 128 else prune_limit_load)
      | Acceptability.Single_link_failure ->
        prune_single_failure (if light then 96 else prune_limit_single_failure)
      | Acceptability.Per_pair_failure ->
        polish (if light then 96 else prune_limit_per_pair)
    in
    prune_pass ();
    (* Improvement rounds: widen the candidate pool with the next
       cheapest absent links and prune again; keep rounds that lower
       the cost.  This closes most of the greedy's optimality gap,
       which matters because the Clarke pivots are differences of two
       such costs. *)
    let current_cost () =
      let key = key_of_set () in
      match Hashtbl.find_opt cost_cache key with
      | Some c -> c
      | None -> (
        match Option.bind cache (fun c -> Feascache.find_cost c key) with
        | Some c ->
          Hashtbl.add cost_cache key c;
          c
        | None ->
          let c = selection_cost_with_table problem table (current_links ()) in
          Hashtbl.add cost_cache key c;
          Option.iter (fun sc -> Feascache.add_cost sc key c) cache;
          c)
    in
    let snapshot () = Array.copy in_set in
    let restore saved = Array.blit saved 0 in_set 0 m in
    let widen () =
      let want = max 64 (List.length (current_links ()) / 2) in
      let added = ref 0 in
      Array.iter
        (fun id ->
          if !added < want && not in_set.(id) then begin
            in_set.(id) <- true;
            incr added
          end)
        ranked
    in
    let max_rounds =
      if light then 1
      else begin
        match problem.rule with
        | Acceptability.Handle_load -> 3
        | Acceptability.Single_link_failure | Acceptability.Per_pair_failure -> 1
      end
    in
    let rec improve round best_cost =
      if round >= max_rounds then ()
      else begin
        let saved = snapshot () in
        widen ();
        try_free_drop rule_ok;
        prune_pass ();
        let cost = current_cost () in
        if cost < best_cost -. (0.001 *. Float.abs best_cost) then
          improve (round + 1) cost
        else restore saved
      end
    in
    improve 0 (current_cost ());
    let selected = current_links () in
    Some { selected; cost = selection_cost_with_table problem table selected }
  end

(* Two deterministic rankings, the cheaper result wins.  Price per Gbps
   favors big trunks; absolute price favors links sized to the actual
   demands — each dominates on some instances, and taking the minimum
   substantially closes the gap to the optimum (and keeps the Clarke
   pivots C(SL−α) − C(SL) from going negative as often). *)
let unit_price_score problem price id =
  let cap = (Graph.edge problem.graph id).capacity in
  if cap <= 0.0 then infinity else price id /. cap

let absolute_price_score _problem price id = price id

let select_greedy_single ~ranking ?banned ?cache ?pool problem =
  let score =
    match ranking with
    | `Unit_price -> unit_price_score
    | `Absolute_price -> absolute_price_score
  in
  optimize_from ~score ?banned ?cache ?pool problem

let select_greedy ?banned ?cache ?pool problem =
  (* The two arms are fully independent optimizations over immutable
     inputs, so they run concurrently when a pool is available; the
     fold keeps the serial tie-break (first arm wins ties). *)
  let candidates =
    pool_map_list pool
      (fun ranking ->
        select_greedy_single ~ranking ?banned ?cache ?pool problem)
      [ `Unit_price; `Absolute_price ]
    |> List.filter_map Fun.id
  in
  match candidates with
  | [] -> None
  | _ :: _ ->
    Some
      (List.fold_left
         (fun best s -> if s.cost < best.cost then s else best)
         (List.hd candidates) (List.tl candidates))

let select_warm ?banned ~base ?cache ?pool problem =
  (* Light pruning: the base is already pruned, so only the repair
     additions and the links freed by the ban need attention. *)
  optimize_from ~score:unit_price_score ?banned ~init:base.selected ~light:true
    ?cache ?pool problem

(* --- Exact selection (small instances) -------------------------------- *)

let select_exact_limit = 22

(* Masks per work item when the enumeration is sharded across a pool.
   Fixed (not a function of the pool size) so the per-chunk evaluation
   pattern — and with it every cached verdict — is the same at every
   [--jobs] value. *)
let select_exact_chunk = 1 lsl 16

let select_exact ?(banned = fun _ -> false) ?cache ?pool problem =
  let table = ownership problem in
  let m = Array.length table in
  let offered =
    List.filter
      (fun id -> table.(id) <> None && not (banned id))
      (List.init m Fun.id)
    |> Array.of_list
  in
  let n = Array.length offered in
  if n > select_exact_limit then
    invalid_arg
      (Printf.sprintf "Vcg.select_exact: more than %d offered links"
         select_exact_limit);
  (* Evaluate masks [lo, hi), keeping the cheapest acceptable subset;
     ties go to the smallest mask.  That total order makes the scan an
     associative minimum, so sharding the range across domains and
     folding the per-shard winners in range order is bit-identical to
     the serial scan. *)
  let eval_range (lo, hi) =
    let in_set = Array.make m false in
    let enabled id = in_set.(id) in
    let best = ref None in
    for mask = lo to hi - 1 do
      Array.fill in_set 0 m false;
      let links = ref [] in
      for i = 0 to n - 1 do
        if mask land (1 lsl i) <> 0 then begin
          in_set.(offered.(i)) <- true;
          links := offered.(i) :: !links
        end
      done;
      let links = List.sort compare !links in
      let cost = selection_cost_with_table problem table links in
      let better =
        match !best with None -> true | Some (c, _, _) -> cost < c
      in
      if better then begin
        let ok =
          match cache with
          | None -> satisfied problem ~enabled
          | Some c -> (
            let key =
              String.init m (fun i -> if in_set.(i) then '1' else '0')
            in
            match Feascache.find_feas c key with
            | Some ok -> ok
            | None ->
              let ok = satisfied problem ~enabled in
              Feascache.add_feas c key ok;
              ok)
        in
        if ok then best := Some (cost, mask, links)
      end
    done;
    !best
  in
  let total = 1 lsl n in
  let results =
    match pool with
    | Some p when total > select_exact_chunk ->
      let nchunks = (total + select_exact_chunk - 1) / select_exact_chunk in
      let ranges =
        List.init nchunks (fun i ->
            ( i * select_exact_chunk,
              min total ((i + 1) * select_exact_chunk) ))
      in
      Pool.map_list p eval_range ranges
    | Some _ | None -> [ eval_range (0, total) ]
  in
  let best =
    List.fold_left
      (fun acc r ->
        match (acc, r) with
        | None, r -> r
        | acc, None -> acc
        | Some (c, mk, _), Some (c', mk', _) ->
          if c' < c || (c' = c && mk' < mk) then r else acc)
      None results
  in
  match best with
  | None -> None
  | Some (cost, _, links) -> Some { selected = links; cost }

(* --- Full mechanism ---------------------------------------------------- *)

let run ?select ?pool problem =
  Metrics.Counter.inc m_auctions;
  let sp = Trace.span "vcg.run" in
  (* One shared cache per settle loop: the cold selection and every
     Clarke pivot probe the same problem (only the banned set varies),
     so verdicts and costs keyed on the enabled bit-string carry over.
     Purely an evaluation-count optimization — outcomes are identical
     with the cache disabled. *)
  let cache =
    if Feascache.enabled () then
      Some (Feascache.create ~digest:(problem_digest problem))
    else None
  in
  (* Fold worker-shard discoveries into the merged table whenever the
     workers are known quiescent, so the next round reads them
     lock-free. *)
  let join_cache () = Option.iter Feascache.join cache in
  let cold =
    match select with
    | Some s -> fun () -> s ?banned:None ?cache problem
    | None -> fun () -> select_greedy ?cache ?pool problem
  in
  let cold () =
    let sel_sp = Trace.span "vcg.select" in
    let r = cold () in
    (if Trace.enabled () then
       match r with
       | Some s ->
         Trace.add_attr sel_sp "selected" (Trace.Int (List.length s.selected));
         Trace.add_attr sel_sp "cost" (Trace.Float s.cost)
       | None -> Trace.add_attr sel_sp "infeasible" (Trace.Bool true));
    Trace.finish sel_sp;
    r
  in
  (* Pivot selections: warm-started from the current SL by default —
     both faster and far less noisy than re-deriving from scratch, since
     C(SL−α) then differs from C(SL) only by α's actual replacement
     cost.  A caller-provided selector (e.g. the exact optimizer in
     tests) is honored verbatim. *)
  let without_selection base bp =
    Metrics.Counter.inc m_pivots;
    let mine = Hashtbl.create 16 in
    List.iter (fun id -> Hashtbl.replace mine id ()) (Bid.links problem.bids.(bp));
    let banned id = Hashtbl.mem mine id in
    match select with
    | Some s -> s ?banned:(Some banned) ?cache problem
    | None ->
      (* Two views of the world without α: repair the current SL
         (cheap, finds local substitutes) and re-derive from scratch
         (restructures routes when α carried trunk capacity); the
         mechanism uses the better one.  When pivots themselves run on
         pool workers, these nested submissions are detected and run
         inline — same results, no deadlock. *)
      let candidates =
        pool_map_list pool
          (fun pick -> pick ())
          [
            (fun () -> select_warm ~banned ~base ?cache ?pool problem);
            (fun () ->
              select_greedy_single ~ranking:`Unit_price ~banned ?cache ?pool
                problem);
          ]
        |> List.filter_map Fun.id
      in
      (match candidates with
      | [] -> None
      | first :: rest ->
        Some
          (List.fold_left
             (fun best s -> if s.cost < best.cost then s else best)
             first rest))
  in
  let finish_with result =
    (if Trace.enabled () then
       match result with
       | Some o ->
         Trace.add_attr sp "total_payment" (Trace.Float o.total_payment);
         Trace.add_attr sp "selected"
           (Trace.Int (List.length o.selection.selected))
       | None -> Trace.add_attr sp "infeasible" (Trace.Bool true));
    Trace.finish sp;
    result
  in
  let cold_result = cold () in
  join_cache ();
  match cold_result with
  | None -> finish_with None
  | Some sl0 ->
    let table = ownership problem in
    let winners selection =
      let by_bp, _ = partition_by_owner table selection.selected in
      Hashtbl.fold (fun bp _ acc -> bp :: acc) by_bp []
    in
    (* Every SL−α is also acceptable for the unrestricted problem, so
       pivot exploration can stumble on a cheaper solution; adopt it and
       recompute (bounded — each adoption strictly lowers the cost). *)
    let rec settle current round =
      (* One marginal economy per winning BP — the embarrassingly
         parallel heart of the mechanism.  Winner order is fixed before
         the fan-out and results come back in that order, so the
         best-improvement fold below ties off exactly as it does
         serially. *)
      let results =
        pool_map_list pool
          (fun bp -> (bp, without_selection current bp))
          (winners current)
      in
      join_cache ();
      let best_improvement =
        List.fold_left
          (fun acc (_, s) ->
            match (acc, s) with
            | None, Some s when s.cost < current.cost -. 1e-9 -> Some s
            | Some a, Some s when s.cost < a.cost -. 1e-9 -> Some s
            | _, _ -> acc)
          None results
      in
      match best_improvement with
      | Some better when round < 4 -> settle better (round + 1)
      | Some _ | None -> (current, results)
    in
    let piv_sp = Trace.span "vcg.pivots" in
    let sl, without_results = settle sl0 0 in
    Trace.finish piv_sp;
    let without bp = List.assoc_opt bp without_results in
    let by_bp, virtual_cost = partition_by_owner table sl.selected in
    let bp_results =
      Array.mapi
        (fun bp bid ->
          let selected_links =
            Option.value ~default:[] (Hashtbl.find_opt by_bp bp)
            |> List.sort compare
          in
          match selected_links with
          | [] -> { bp; selected_links = []; bid_cost = 0.0; payment = 0.0; pob = 0.0 }
          | _ :: _ ->
            let bid_cost = Bid.cost bid selected_links in
            let pivot =
              match without bp with
              | Some (Some w) -> Float.max 0.0 (w.cost -. sl.cost)
              | Some None | None ->
                Log.warn (fun () ->
                    Printf.sprintf
                      "SL without BP %d is unacceptable; clamping pivot to 0"
                      bp);
                0.0
            in
            let payment = bid_cost +. pivot in
            let pob = if bid_cost > 0.0 then pivot /. bid_cost else 0.0 in
            { bp; selected_links; bid_cost; payment; pob })
        problem.bids
    in
    let total_payment =
      Array.fold_left (fun acc r -> acc +. r.payment) virtual_cost bp_results
    in
    finish_with (Some { selection = sl; virtual_cost; bp_results; total_payment })

let run_pay_as_bid ?select ?pool problem =
  let cache =
    if Feascache.enabled () then
      Some (Feascache.create ~digest:(problem_digest problem))
    else None
  in
  let select =
    match select with
    | Some s -> fun p -> s ?banned:None ?cache p
    | None -> fun p -> select_greedy ?cache ?pool p
  in
  match select problem with
  | None -> None
  | Some sl ->
    let table = ownership problem in
    let by_bp, virtual_cost = partition_by_owner table sl.selected in
    let bp_results =
      Array.mapi
        (fun bp bid ->
          let selected_links =
            Option.value ~default:[] (Hashtbl.find_opt by_bp bp)
            |> List.sort compare
          in
          let bid_cost =
            match selected_links with [] -> 0.0 | _ :: _ -> Bid.cost bid selected_links
          in
          { bp; selected_links; bid_cost; payment = bid_cost; pob = 0.0 })
        problem.bids
    in
    let total_payment =
      Array.fold_left (fun acc r -> acc +. r.payment) virtual_cost bp_results
    in
    Some { selection = sl; virtual_cost; bp_results; total_payment }
