module Graph = Poc_graph.Graph
module Router = Poc_mcf.Router

type t = Handle_load | Single_link_failure | Per_pair_failure

let name = function
  | Handle_load -> "#1 load"
  | Single_link_failure -> "#2 single-failure"
  | Per_pair_failure -> "#3 per-pair-failure"

let all = [ Handle_load; Single_link_failure; Per_pair_failure ]

let per_pair_failure_scenario g ~enabled =
  let best = Hashtbl.create 64 in
  Array.iter
    (fun (e : Graph.edge) ->
      if enabled e.id then begin
        let key = (min e.u e.v, max e.u e.v) in
        match Hashtbl.find_opt best key with
        | None -> Hashtbl.replace best key e
        | Some (cur : Graph.edge) ->
          if
            e.capacity > cur.capacity
            || (e.capacity = cur.capacity && e.id < cur.id)
          then Hashtbl.replace best key e
      end)
    (Graph.edges g);
  Hashtbl.fold (fun _ (e : Graph.edge) acc -> e.id :: acc) best []
  |> List.sort compare

let satisfied ?pool g ~demands ~enabled rule =
  match rule with
  | Handle_load ->
    let r = Router.route ~enabled g ~demands in
    r.Router.feasible
  | Single_link_failure ->
    let base = Router.route ~enabled g ~demands in
    base.Router.feasible
    && Router.survives_all_single_failures ~enabled ?pool g ~demands base
  | Per_pair_failure ->
    let failed = per_pair_failure_scenario g ~enabled in
    let failed_tbl = Hashtbl.create (List.length failed) in
    List.iter (fun id -> Hashtbl.replace failed_tbl id ()) failed;
    let enabled' id = enabled id && not (Hashtbl.mem failed_tbl id) in
    let r = Router.route ~enabled:enabled' g ~demands in
    r.Router.feasible
