(** The strategy-proof bandwidth auction (Section 3.3).

    Given offered links OL (BP links plus the external ISPs' virtual
    links VL), bids Cα, a traffic matrix, and an acceptability rule,
    the POC selects SL = argmin C(L) over acceptable L and pays each
    BP the Clarke pivot amount

      Pα = Cα(SLα) + (C(SL−α) − C(SL))

    where SL−α is the best acceptable selection when α's links are
    withdrawn.  Virtual links are paid their contracted price and are
    not part of the mechanism.

    Exact subset minimization is NP-hard; {!select_greedy} is the
    POC's published open algorithm (cheapest-bandwidth prefix by
    binary search, then a most-expensive-first prune).  Because the
    optimizer is heuristic, the classical VCG guarantees hold exactly
    under {!select_exact} (used in tests on small instances) and to
    heuristic accuracy under {!select_greedy}; payments are clamped so
    individual rationality Pα ≥ Cα(SLα) always holds.

    {2 Parallelism}

    Every entry point takes an optional [?pool] ([Poc_util.Pool.t]).
    With a pool, the Clarke-pivot marginal economies (one per winning
    BP), the two ranking arms of the greedy ensemble, the warm/cold
    pivot candidate pair, and the single-failure spot checks fan out
    across worker domains.  All parallelized units are pure functions
    of immutable inputs combined in a fixed order, so selections,
    payments, and PoB are {e bit-identical} with or without a pool, at
    any pool size — pinned by property tests over seeded random
    problems.  Work counters measure honest totals and may differ
    (e.g. the parallel spot check does not short-circuit). *)

type problem = {
  graph : Poc_graph.Graph.t;
  demands : Poc_mcf.Router.demand list;
  bids : Bid.t array;                  (** one per BP, indexed by BP id *)
  virtual_prices : (int * float) list; (** (link id, contracted monthly price) *)
  rule : Acceptability.t;
}

type selection = {
  selected : int list; (** sorted link ids, BP and virtual *)
  cost : float;        (** C(SL) *)
}

type bp_result = {
  bp : int;
  selected_links : int list; (** SLα *)
  bid_cost : float;          (** Cα(SLα) *)
  payment : float;           (** Pα *)
  pob : float;               (** (Pα − Cα(SLα)) / Cα(SLα); 0 when Cα = 0 *)
}

type outcome = {
  selection : selection;
  virtual_cost : float;      (** contracted spend on virtual links *)
  bp_results : bp_result array;
  total_payment : float;     (** Σ Pα + virtual cost: the POC's spend *)
}

val validate : problem -> (unit, string) result
(** Checks bids cover disjoint link-id sets, virtual ids are distinct
    from bid ids, and every id names a graph edge. *)

val link_price : problem -> int -> float
(** Standalone price of a link (bid price, or contracted price for a
    virtual link).  Raises [Not_found] for unoffered links. *)

val selection_cost : problem -> int list -> float
(** C(L): bid cost per BP of its share plus contracted virtual cost. *)

val problem_digest : problem -> string
(** Hex digest of a canonical serialization of the whole problem —
    graph, demands, rule, bids, virtual prices, floats rendered exactly
    — identifying it for {!Feascache}.  Two problems with equal digests
    agree on the acceptability verdict and selection cost of every
    enabled set, so cache entries keyed on (digest, enabled bit-string)
    can never leak a stale value across problems. *)

val owner_of_link : problem -> int -> int option
(** BP owning the link; [None] for virtual links. *)

val select_greedy :
  ?banned:(int -> bool) ->
  ?cache:Feascache.t ->
  ?pool:Poc_util.Pool.t ->
  problem ->
  selection option
(** Cheapest acceptable set found by the open greedy algorithm;
    [None] when even the full unbanned offer set is unacceptable.
    With [?pool] the two ranking arms run concurrently.  [?cache]
    (a {!Feascache.t} created for this problem's {!problem_digest})
    shares feasibility verdicts and selection costs with other
    selections over the same problem; it never changes the result. *)

val select_greedy_single :
  ranking:[ `Unit_price | `Absolute_price ] ->
  ?banned:(int -> bool) ->
  ?cache:Feascache.t ->
  ?pool:Poc_util.Pool.t ->
  problem ->
  selection option
(** One arm of {!select_greedy}'s two-ranking ensemble, exposed for
    ablation studies: rank candidate links by price-per-Gbps or by
    absolute price. *)

val select_warm :
  ?banned:(int -> bool) ->
  base:selection ->
  ?cache:Feascache.t ->
  ?pool:Poc_util.Pool.t ->
  problem ->
  selection option
(** Warm-started optimization: begin from [base] (minus banned links),
    repair to acceptability, then prune.  Used by {!run} for the pivot
    selections SL−α so that C(SL−α) − C(SL) measures α's replacement
    cost rather than optimizer noise. *)

val select_exact :
  ?banned:(int -> bool) ->
  ?cache:Feascache.t ->
  ?pool:Poc_util.Pool.t ->
  problem ->
  selection option
(** Brute-force minimum over all subsets: cheapest acceptable subset,
    ties broken by the smallest enumeration mask (a total order, so the
    winner is independent of evaluation grouping).  With [?pool] the
    mask range is sharded into fixed-size chunks across worker domains
    and the per-chunk winners folded in range order — bit-identical to
    the serial scan at every pool size.  Raises [Invalid_argument]
    when more than 22 links are offered. *)

val run :
  ?select:
    (?banned:(int -> bool) ->
    ?cache:Feascache.t ->
    problem ->
    selection option) ->
  ?pool:Poc_util.Pool.t ->
  problem ->
  outcome option
(** Full mechanism: selection plus a Clarke-pivot payment per BP.
    With [?pool] the per-winner pivot recomputations fan out across
    the pool's domains; the outcome is identical to the serial run.
    A caller-supplied [?select] is honored verbatim (wire the pool
    into the closure yourself if you want both).

    Because the optimizer is heuristic, an SL−α computed for a pivot
    can come out cheaper than SL itself (it is also acceptable for the
    unrestricted problem); [run] therefore adopts the cheapest
    selection encountered before settling payments, which restores
    C(SL−α) ≥ C(SL) and non-negative pivots by construction.

    BPs with an empty SLα receive 0.  If some SL−α is unacceptable
    (the paper assumes this away), that BP's payment is its bid cost
    (pivot clamped at 0) and the condition is reported via logs.
    [None] when no acceptable selection exists at all.

    When {!Feascache.enabled}, [run] creates one {!Feascache.t} for the
    problem and hands it to every selection — the cold one, each pivot,
    and any caller-supplied [?select] (forward it to the [Vcg.select_*]
    entry points to benefit) — merging worker shards at each pool-join
    point.  The cache memoizes pure functions, so outcomes, payments,
    and journal bytes are identical with it on or off. *)

val run_pay_as_bid :
  ?select:
    (?banned:(int -> bool) ->
    ?cache:Feascache.t ->
    problem ->
    selection option) ->
  ?pool:Poc_util.Pool.t ->
  problem ->
  outcome option
(** The naive alternative the paper's strategy-proofness argument is
    set against: winners are simply paid their bids (PoB = 0 by
    definition).  Cheaper for the POC at truthful bids, but it pays
    BPs to inflate — the ablation benchmark quantifies this. *)
