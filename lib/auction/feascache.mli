(** Shared deterministic feasibility/cost cache for the auction.

    The optimizer's two expensive pure functions of a candidate link
    set — the acceptability verdict and the selection cost — are keyed
    on (problem digest, enabled-set bit-string) and memoized here so
    the memo survives across the Clarke pivots of one settle loop:
    pivot selections revisit many of the same candidate sets the cold
    selection already probed (the problem itself is identical, only the
    banned set changes), and under {!Vcg.run} each hit saves a full
    multi-commodity routing solve.

    {2 Determinism}

    Both cached functions are pure: the verdict and the cost are fully
    determined by the key, and every writer computed its value with the
    same deterministic oracle.  A hit therefore returns exactly the
    value a fresh evaluation would produce, so selections, payments,
    and journal bytes are identical with the cache on or off, at every
    [--jobs] value — only the work counters (hits, misses, routing
    solves) change.  Which probe populates an entry first can vary with
    scheduling; the value cannot.

    {2 Concurrency}

    Reads go to a merged table plus a per-domain private shard; writes
    go only to the writer's own shard, so pool workers never contend on
    a lock in the probe hot path.  {!join} folds all shards into the
    merged table — {!Vcg.run} calls it at its pool-join points, where
    workers are quiescent, making each settle round's discoveries
    visible to the next round.  Hit/miss totals are exported through
    {!Poc_obs.Metrics} as [poc_feascache_hits_total] /
    [poc_feascache_misses_total] and per-cache via {!stats}. *)

type t

val enabled : unit -> bool
(** Global switch consulted by {!Vcg.run} when deciding whether to
    create a cache.  Defaults to [true]. *)

val set_enabled : bool -> unit
(** Flip the global switch ([poc-cli market --no-feas-cache] and the
    cache-equivalence tests use this).  Affects only subsequently
    created caches. *)

val create : digest:string -> t
(** Fresh empty cache for the problem identified by [digest]
    (see {!Vcg.problem_digest}).  One cache serves one problem: callers
    must not mix digests within a cache. *)

val digest : t -> string
(** The problem digest this cache was created for. *)

val find_feas : t -> string -> bool option
(** [find_feas t key] looks the enabled-set bit-string up in the merged
    table, then in the calling domain's shard.  Counts a hit or a miss. *)

val add_feas : t -> string -> bool -> unit
(** Record a verdict in the calling domain's shard (visible to other
    domains after the next {!join}). *)

val find_cost : t -> string -> float option
(** Like {!find_feas} for the selection-cost table. *)

val add_cost : t -> string -> float -> unit
(** Like {!add_feas} for the selection-cost table. *)

val join : t -> unit
(** Fold every domain shard into the merged table and empty the shards.
    Must only be called while no other domain is probing this cache —
    i.e. at pool-join points. *)

val stats : t -> int * int
(** [(hits, misses)] accumulated by this cache across all domains. *)
