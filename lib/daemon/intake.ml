module Codec = Poc_util.Codec
module Disk = Poc_resilience.Disk
module Supervisor = Poc_resilience.Supervisor

type record = {
  entry : Supervisor.update Admission.entry;
  displaces : int option;
}

type t = {
  disk : Disk.t;
  log_path : string;
  retry : Disk.retry_policy;
  sleep : float -> unit;
  on_retry : attempt:int -> delay:float -> string -> unit;
  mutable file : Disk.file;
  mutable good : int;  (* bytes known durable *)
}

let encode ({ entry; displaces } : record) =
  let w = Codec.writer () in
  (match entry.Admission.payload with
  | Supervisor.Scale_bid { bp; factor } ->
    Codec.put_u8 w 0;
    Codec.put_int w bp;
    Codec.put_f64 w factor
  | Supervisor.Scale_demand { factor } ->
    Codec.put_u8 w 1;
    Codec.put_f64 w factor);
  Codec.put_int w entry.Admission.seq;
  Codec.put_int w entry.Admission.apply_epoch;
  Codec.put_int w entry.Admission.priority;
  Codec.put_option w Codec.put_int displaces;
  Codec.frame (Codec.contents w)

let decode payload =
  let r = Codec.reader payload in
  let payload_of_tag tag =
    match tag with
    | 0 ->
      let bp = Codec.get_int r in
      let factor = Codec.get_f64 r in
      Supervisor.Scale_bid { bp; factor }
    | 1 ->
      let factor = Codec.get_f64 r in
      Supervisor.Scale_demand { factor }
    | n -> raise (Codec.Corrupt (Printf.sprintf "intake record tag %d" n))
  in
  let payload = payload_of_tag (Codec.get_u8 r) in
  let seq = Codec.get_int r in
  let apply_epoch = Codec.get_int r in
  let priority = Codec.get_int r in
  let displaces = Codec.get_option r Codec.get_int in
  { entry = { Admission.seq; apply_epoch; priority; payload }; displaces }

let make ~disk ~retry ~sleep ~on_retry ~log_path ~file ~good =
  (* Validate the policy eagerly so a malformed one fails at open, not
     at the first transient fault. *)
  ignore (Disk.retry_delays retry : float list);
  { disk; log_path; retry; sleep; on_retry; file; good }

let create ?(disk = Disk.real ()) ?(retry = Disk.default_retry_policy)
    ?(sleep = Unix.sleepf) ?(on_retry = fun ~attempt:_ ~delay:_ _ -> ())
    log_path =
  make ~disk ~retry ~sleep ~on_retry ~log_path
    ~file:(Disk.open_trunc disk log_path) ~good:0

let reopen ?(disk = Disk.real ()) ?(retry = Disk.default_retry_policy)
    ?(sleep = Unix.sleepf) ?(on_retry = fun ~attempt:_ ~delay:_ _ -> ())
    log_path =
  let make file good =
    make ~disk ~retry ~sleep ~on_retry ~log_path ~file ~good
  in
  if not (Disk.exists disk log_path) then
    Ok (make (Disk.open_append disk log_path) 0, [])
  else
    let data = Disk.read_file disk log_path in
    let rec walk pos acc =
      match Codec.next_frame data ~pos with
      | Codec.End -> Ok (pos, List.rev acc)
      | Codec.Torn -> Ok (pos, List.rev acc)
      | Codec.Frame { payload; next } -> (
        match decode payload with
        | r -> walk next (r :: acc)
        | exception Codec.Corrupt msg ->
          Error (Printf.sprintf "intake %s: undecodable record: %s" log_path msg))
    in
    match walk 0 [] with
    | Error _ as e -> e
    | Ok (valid, records) ->
      if valid < String.length data then
        Disk.truncate_file disk log_path valid;
      Ok (make (Disk.open_append disk log_path) valid, records)

let read ?(disk = Disk.real ()) log_path =
  match Disk.read_file disk log_path with
  | exception Sys_error e -> Error e
  | data ->
    let rec walk pos acc =
      match Codec.next_frame data ~pos with
      | Codec.End -> Ok (List.rev acc, false)
      | Codec.Torn -> Ok (List.rev acc, true)
      | Codec.Frame { payload; next } -> (
        match decode payload with
        | r -> walk next (r :: acc)
        | exception Codec.Corrupt _ -> Ok (List.rev acc, true))
    in
    walk 0 []

(* Self-heal after a failed append: never leave a torn frame mid-log
   while the process lives.  Truncate back to the last durable record
   and reopen, so the next attempt lands on a clean tail. *)
let heal t =
  (try Disk.close_file t.disk t.file with Sys_error _ -> ());
  (try Disk.truncate_file t.disk t.log_path t.good with Sys_error _ -> ());
  t.file <- Disk.open_append t.disk t.log_path

let append t r =
  let bytes = encode r in
  let try_once () =
    Disk.append t.disk t.file bytes;
    Disk.sync t.disk t.file;
    t.good <- t.good + String.length bytes
  in
  (* The fsync-before-OK path rides the same jittered-backoff
     discipline as [Disk.retrying]: a transiently failing device (a
     lying fsync caught by the flush, a short write surfacing as
     [Sys_error]) heals and retries instead of failing the admission;
     a persistently failing one exhausts the schedule and re-raises
     with the log restored to its last durable length. *)
  let rec go attempt = function
    | delays -> (
      match try_once () with
      | () -> ()
      | exception Sys_error msg -> (
        heal t;
        match delays with
        | [] -> raise (Sys_error msg)
        | delay :: rest ->
          t.on_retry ~attempt ~delay msg;
          if delay > 0.0 then t.sleep delay;
          go (attempt + 1) rest))
  in
  go 1 (Disk.retry_delays t.retry)

let close t = try Disk.close_file t.disk t.file with Sys_error _ -> ()
let path t = t.log_path
