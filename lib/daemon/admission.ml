type 'a entry = { seq : int; apply_epoch : int; priority : int; payload : 'a }

type 'a decision =
  | Admitted of { shed : 'a entry option }
  | Rejected of { retry_after : float }
  | Duplicate

type 'a t = {
  hw : int;
  retry_base : float;
  retry_cap : float;
  mutable queue : 'a entry list;  (* ascending seq *)
  mutable last_seq : int;
  mutable streak : int;  (* consecutive rejections *)
}

let create ?(high_water = 64) ?(retry_base = 0.05) ?(retry_cap = 1.0) () =
  if high_water < 1 then invalid_arg "Admission: high_water must be >= 1";
  if (not (Float.is_finite retry_base)) || retry_base <= 0.0 then
    invalid_arg "Admission: retry_base must be positive";
  if (not (Float.is_finite retry_cap)) || retry_cap < retry_base then
    invalid_arg "Admission: retry_cap must be >= retry_base";
  { hw = high_water; retry_base; retry_cap; queue = []; last_seq = 0; streak = 0 }

let high_water t = t.hw
let depth t = List.length t.queue
let last_seq t = t.last_seq
let set_last_seq t seq = t.last_seq <- max t.last_seq seq

let insert t e =
  (* Seqs are admitted in increasing order, so appending keeps the
     queue sorted; [force] may interleave a resume backlog, hence the
     general insertion. *)
  let rec go = function
    | [] -> [ e ]
    | x :: rest when x.seq < e.seq -> x :: go rest
    | rest -> e :: rest
  in
  t.queue <- go t.queue

let force t e =
  set_last_seq t e.seq;
  insert t e

let drop t ~seq = t.queue <- List.filter (fun e -> e.seq <> seq) t.queue

(* Strictly lowest priority, oldest among ties.  The queue is in seq
   order, so the first minimal-priority entry is the oldest. *)
let victim t =
  match t.queue with
  | [] -> None
  | first :: rest ->
    Some
      (List.fold_left
         (fun best e -> if e.priority < best.priority then e else best)
         first rest)

let offer t e =
  if e.seq <= t.last_seq then Duplicate
  else if List.length t.queue < t.hw then begin
    t.last_seq <- e.seq;
    t.streak <- 0;
    insert t e;
    Admitted { shed = None }
  end
  else
    match victim t with
    | Some v when v.priority < e.priority ->
      t.last_seq <- e.seq;
      t.streak <- 0;
      drop t ~seq:v.seq;
      insert t e;
      Admitted { shed = Some v }
    | Some _ | None ->
      t.streak <- t.streak + 1;
      let backoff =
        t.retry_base *. (2.0 ** float_of_int (min 30 (t.streak - 1)))
      in
      Rejected { retry_after = Float.min t.retry_cap backoff }

let drain t ~epoch =
  let ready, rest =
    List.partition (fun e -> e.apply_epoch <= epoch) t.queue
  in
  t.queue <- rest;
  ready
