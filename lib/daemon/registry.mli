(** The multi-run daemon core: a supervised run registry multiplexing N
    concurrent market runs over one single-writer loop and one shared
    domain pool.

    Each run owns a full failure domain — its own segmented journal,
    intake log, flight recorder and [Supervisor] loop over its own
    [Disk.t] — so one run's injected crash or storage fault never
    touches another's bytes.  Run 0 lives at the root itself
    ([root/store], [root/intake.log]), keeping every single-run
    artifact (smoke scripts, [forensics] defaults, old [--resume]
    roots) valid; runs above 0 live under [root/runs/<id>/].

    {2 Run lifecycle}

    [Starting -> Serving -> Failing -> Serving | Quarantined], plus
    [Closed] from any live state:

    - {e Serving}: an open {!Engine} answers scoped requests.
    - {e Failing}: the run crashed mid-epoch or tripped a storage
      fault.  The registry abandons the engine and arms a deterministic
      jittered-exponential-backoff retry (the {!Poc_resilience.Disk}
      retry-policy schedule); until it is due, scoped requests answer
      [BUSY run=<id> retry_after=<s>].  A due retry ({!tick}) scrubs
      the store and resumes with the not-yet-fired kill specs re-armed.
    - {e Quarantined}: failures exceeded the attempt cap.  The store is
      left intact for [poc-cli forensics], the manifest records the
      quarantine durably (it survives daemon restarts), and scoped
      requests answer the terminal [GONE].
    - {e Closed}: [CLOSE]d by a client, or its horizon completed at
      shutdown.

    Every transition is exported on the labeled gauge
    [poc_daemon_run_state{run="<id>",state="<state>"}] (1 marks the
    current state).

    {2 Durability}

    The root manifest [root/RUNS] (an append-only checksummed frame
    log) records opens, closes and quarantines.  [create ~resume:true]
    replays it and resumes every non-quarantined open run from its own
    journal + intake log — byte-identically, at any [--jobs] — while
    quarantined runs come back quarantined. *)

module Disk = Poc_resilience.Disk
module Fault = Poc_resilience.Fault

type run_state =
  | Starting  (** engine open/resume in progress *)
  | Serving
  | Failing of { attempts : int; retry_at_us : float; cause : string }
  | Quarantined of { cause : string }
  | Closed

val state_name : run_state -> string
(** ["starting"], ["serving"], ["failing"], ["quarantined"],
    ["closed"] — the gauge's [state] label values. *)

type run_info = {
  id : int;
  state : run_state;
  next_epoch : int option;  (** [None] when not serving or horizon done *)
  horizon : int;
  queue : int;
}

type t

val create :
  ?snapshot_every:int ->
  ?segment_bytes:int ->
  ?pool:Poc_util.Pool.t ->
  ?flight:bool ->
  ?high_water:int ->
  ?attempt_cap:int ->
  ?retry_policy:Disk.retry_policy ->
  ?disk_for:(run:int -> Disk.t) ->
  ?resume:bool ->
  ?runs:int ->
  ?max_runs:int ->
  ?fault_run:int ->
  ?fault_specs:Fault.spec list ->
  ?fault_seed:int ->
  root:string ->
  Poc_core.Planner.plan ->
  market:Poc_market.Epochs.config ->
  unit ->
  (t, string) result
(** Open a registry at [root] with [runs] (default 1) initial runs, all
    under [market]'s epochs/seed, bounded by [max_runs] (default 8).

    [fault_specs] compiles injected crash/storage specs into run
    [fault_run]'s (default 0) schedule only — the fault-isolation
    drill's hook.  [attempt_cap] (default 3) bounds restart attempts
    before quarantine; [retry_policy] shapes the restart backoff
    exactly as {!Disk.retry_delays}.  [disk_for] substitutes the
    per-run, per-attempt disk (default: a fresh
    {!Engine.retrying_disk} each attempt, so storage-fault damage
    stays with the attempt it hit).

    [resume:true] replays [root/RUNS] and brings back every recorded
    run in its recorded state; an old manifest-less root resumes as
    run 0.  [Error] on an invalid configuration, a fresh run that
    cannot open, or a resume root with nothing to resume — but a run
    that {e individually} fails startup-resume is marked [Failing]
    (retried under backoff) rather than failing the daemon. *)

val dispatch : t -> Protocol.command -> string list * Engine.action
(** Process one command against the registry: run-scoped requests route
    to their engine ([BUSY]/[GONE] while failing/quarantined),
    [OPEN]/[CLOSE]/[RUNS] mutate the registry, and
    [METRICS]/[QUIESCE]/[SHUTDOWN] act daemon-wide wherever addressed.
    An [Injected_crash] out of a scoped [EPOCH] is absorbed here — the
    run transitions to [Failing] (or [Quarantined] past the cap) and
    the caller sees a terminal [BUSY]/[GONE] line; the daemon never
    stops for a single run's death.  [Stop] only escapes on
    [SHUTDOWN]. *)

val tick : t -> now_us:float -> unit
(** Drive due retries: every [Failing] run whose backoff expired is
    scrubbed and resumed (kill specs re-armed), escalating to
    [Quarantined] past the attempt cap.  The server calls this each
    select round; tests inject [now_us] to step the backoff clock
    deterministically. *)

val set_flush : t -> (unit -> unit) -> unit
(** Install the observability flush hook on the registry and every open
    engine. *)

val suspend_all : t -> unit
(** Suspend every open run resumably (completed horizons are recorded
    closed) — the signal-shutdown path. *)

val banner : t -> string
val runs : t -> run_info list
val state_of : t -> int -> run_state option
val store_path : t -> int -> string option
