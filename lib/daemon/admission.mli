(** Bounded ingress queue with admission control, deterministic
    shedding and escalating backpressure.

    Live updates admitted between epochs wait here until the next
    [EPOCH] request drains them.  The queue never grows past its
    high-water mark: once full, a new entry is {e rejected} with a
    retry-after hint that escalates exponentially while the pressure
    lasts — unless it outranks the lowest-priority queued entry, in
    which case that victim is {e shed} (bids are superseding updates, so
    dropping the least important one under pressure degrades service
    quality, never correctness) and the newcomer admitted in its place.

    Everything is deterministic: the victim is the strictly
    lowest-priority entry, oldest (smallest [seq]) among ties, and the
    retry-after schedule depends only on the consecutive-rejection
    count.  Duplicate suppression is by [seq]: entries at or below the
    highest admitted [seq] answer {!Duplicate}, which is what makes a
    client's retry-until-acked loop exactly-once. *)

type 'a entry = {
  seq : int;          (** client-chosen, strictly increasing *)
  apply_epoch : int;  (** the epoch this update lands on *)
  priority : int;     (** higher outranks lower when shedding *)
  payload : 'a;
}

type 'a decision =
  | Admitted of { shed : 'a entry option }
      (** queued; [shed] is the displaced victim, if admission
          happened over a full queue *)
  | Rejected of { retry_after : float }  (** full, and nothing outranked *)
  | Duplicate                            (** [seq] already admitted *)

type 'a t

val create : ?high_water:int -> ?retry_base:float -> ?retry_cap:float ->
  unit -> 'a t
(** Defaults: [high_water = 64] (must be >= 1), [retry_base = 0.05]s
    doubling per consecutive rejection up to [retry_cap = 1.0]s. *)

val high_water : 'a t -> int
val depth : 'a t -> int

val last_seq : 'a t -> int
(** Highest admitted [seq]; [0] initially. *)

val set_last_seq : 'a t -> int -> unit
(** Restore the dedup floor after a resume (max over the intake log). *)

val offer : 'a t -> 'a entry -> 'a decision
(** Admission control as described above.  A successful admission
    resets the rejection streak. *)

val force : 'a t -> 'a entry -> unit
(** Enqueue without admission control, preserving seq order — the
    resume path re-queuing entries that were already admitted (and
    durably logged) before the crash. *)

val drop : 'a t -> seq:int -> unit
(** Remove a queued entry by [seq] (no-op when absent) — the rollback
    path when the intake log refuses the matching append. *)

val drain : 'a t -> epoch:int -> 'a entry list
(** Remove and return, in seq order, every queued entry with
    [apply_epoch <= epoch]. *)
