(** The daemon's transport: a single-threaded [select] loop serving the
    {!Protocol} over a Unix-domain socket, with an optional
    Prometheus-text HTTP endpoint on loopback.

    One event loop is the single writer into the {!Engine} — requests
    from any number of connected clients are serialized in arrival
    order, so the deterministic-epoch guarantees need no locking.
    Responses follow the continuation/terminal framing of {!Protocol}.

    Lifecycle: the loop runs until a client [SHUTDOWN] (exit 0 —
    journal completed or suspended resumably by the engine), a SIGTERM
    or SIGINT (graceful: same suspend path, observability sinks
    flushed, exit 0), an injected crash fault (sinks flushed, exit 10,
    store resumable — the kill-under-load drill), or an unrecoverable
    store error (exit 1).  SIGKILL, by design, gets no handler: the
    smoke test proves the store recovers anyway.

    Slow-loris hygiene: a connection holding a partial request line
    longer than [idle_timeout] is answered [ERR timeout] and closed.
    Idle connections with no buffered bytes are left alone (monitoring
    clients poll [STATUS] at leisure). *)

type config = {
  socket_path : string;
  metrics_port : int option;  (** loopback HTTP [GET /metrics] *)
  idle_timeout : float;       (** partial-request timeout, seconds *)
}

val serve : config -> Engine.t -> flush:(unit -> unit) -> int
(** Run until shutdown; returns the process exit code.  [flush] is
    installed as the engine's observability hook and additionally run
    on every exit path, so killed runs still leave complete Prometheus
    snapshots and well-formed trace JSON behind. *)
