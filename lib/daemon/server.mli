(** The daemon's transport: a single-threaded [select] loop serving the
    {!Registry} over a Unix-domain socket, with an optional
    Prometheus-text HTTP endpoint on loopback.

    One event loop is the single writer into every run's engine —
    requests from any number of connected clients are serialized in
    arrival order, so the deterministic-epoch guarantees need no
    locking.  Each select round also {!Registry.tick}s the registry,
    driving failing runs' restart-with-backoff retries.

    Connections speak either protocol, discriminated by their first
    byte: {!Framing.magic} opens the binary framed protocol (one
    checksummed frame per message, replies mirrored as framed
    continuation/terminal lines, corrupt frames dropped with resync —
    never a dropped connection), anything else the {!Protocol} line
    protocol with its continuation/terminal framing.

    Lifecycle: the loop runs until a client [SHUTDOWN] (exit 0 — every
    run's journal completed or suspended resumably), a SIGTERM or
    SIGINT (graceful: same suspend path, observability sinks flushed,
    exit 0), or an injected crash escaping the registry's per-run
    isolation (exit 10 — a last resort; run-scoped crashes are absorbed
    as [Failing]/[Quarantined] transitions).  SIGKILL, by design, gets
    no handler: the multi-run smoke proves every non-quarantined run
    recovers anyway.

    Slow-loris hygiene: a connection holding a partial request (line or
    frame) longer than [idle_timeout] is answered [ERR timeout] and
    closed.  Idle connections with no buffered bytes are left alone
    (monitoring clients poll [STATUS] at leisure). *)

type config = {
  socket_path : string;
  metrics_port : int option;  (** loopback HTTP [GET /metrics] *)
  idle_timeout : float;       (** partial-request timeout, seconds *)
}

val serve : config -> Registry.t -> flush:(unit -> unit) -> int
(** Run until shutdown; returns the process exit code.  [flush] is
    installed as the registry's observability hook and additionally run
    on every exit path, so killed runs still leave complete Prometheus
    snapshots and well-formed trace JSON behind. *)
