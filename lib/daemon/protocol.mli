(** The daemon's line-oriented control protocol.

    One request per line, ASCII, space-separated; one response per
    request.  A response is zero or more {e continuation} lines, each
    prefixed with ["| "], followed by exactly one {e terminal} line —
    any line {e not} starting with ["| "].  Clients read until the
    terminal line; no length prefixes, so a shell script with a [while
    read] loop is a complete client.

    Requests:

    - [BID <seq> <bp> <factor> [<priority>]] — live re-bid: multiply BP
      [bp]'s cost level by [factor] from the next epoch on.
    - [MATRIX <seq> <factor> [<priority>]] — live traffic update:
      multiply demand by [factor] from the next epoch on.
    - [EPOCH [<n>]] — run up to [n] (default 1) supervised epochs.
    - [STATUS] — one-line service summary.
    - [METRICS] — Prometheus text exposition as continuation lines.
    - [SCRUB] — dry-run journal scrub report (JSON).
    - [QUIESCE] — stop admitting updates, flush observability sinks.
    - [SHUTDOWN] — graceful stop: journal completed if the horizon is
      done, suspended (resumable) otherwise.

    [seq] is a client-chosen strictly-increasing sequence number — the
    daemon's exactly-once dedup key.  Terminal lines begin with [OK],
    [DUP], [BUSY], [ERR], [STATUS] or [BYE]. *)

type request =
  | Bid of { seq : int; bp : int; factor : float; priority : int }
  | Matrix of { seq : int; factor : float; priority : int }
  | Epoch of int
  | Status
  | Metrics_dump
  | Scrub
  | Quiesce
  | Shutdown

val parse : string -> (request, string) result
(** Parse one request line (leading/trailing blanks and a trailing CR
    tolerated).  [priority] defaults to 0; [EPOCH]'s count to 1.
    [Error] names the offending token, never raises. *)

val render : request -> string
(** Canonical request line; [parse (render r) = Ok r]. *)

val is_terminal : string -> bool
(** Response framing predicate: a line not starting with ["| "]. *)

val continuation : string -> string
(** Prefix a payload line with ["| "].  The payload must not contain a
    newline (raises [Invalid_argument]). *)

val payload : string -> string
(** Strip a continuation line's ["| "] prefix (identity on terminal
    lines). *)
