(** The daemon's line-oriented control protocol.

    One request per line, ASCII, space-separated; one response per
    request.  A response is zero or more {e continuation} lines, each
    prefixed with ["| "], followed by exactly one {e terminal} line —
    any line {e not} starting with ["| "].  Clients read until the
    terminal line; no length prefixes, so a shell script with a [while
    read] loop is a complete client.

    Requests:

    - [BID <seq> <bp> <factor> [<priority>]] — live re-bid: multiply BP
      [bp]'s cost level by [factor] from the next epoch on.
    - [MATRIX <seq> <factor> [<priority>]] — live traffic update:
      multiply demand by [factor] from the next epoch on.
    - [EPOCH [<n>]] — run up to [n] (default 1) supervised epochs.
    - [STATUS] — one-line service summary.
    - [METRICS] — Prometheus text exposition as continuation lines.
    - [SCRUB] — dry-run journal scrub report (JSON).
    - [QUIESCE] — stop admitting updates, flush observability sinks.
    - [SHUTDOWN] — graceful stop: journal completed if the horizon is
      done, suspended (resumable) otherwise.

    [seq] is a client-chosen strictly-increasing sequence number — the
    daemon's exactly-once dedup key.  Terminal lines begin with [OK],
    [DUP], [BUSY], [ERR], [STATUS] or [BYE]. *)

type request =
  | Bid of { seq : int; bp : int; factor : float; priority : int }
  | Matrix of { seq : int; factor : float; priority : int }
  | Epoch of int
  | Status
  | Metrics_dump
  | Scrub
  | Quiesce
  | Shutdown

type command =
  | Scoped of { run : int; req : request }
      (** [request] addressed to one run; a bare request line is run 0,
          the daemon's root run. *)
  | Open_run of { run : int option; epochs : int option; seed : int option }
      (** [OPEN [<epochs> [<seed>]]] — open a fresh run; [RUN <id> OPEN
          …] opens it at a specific id, otherwise the registry picks
          the next free one.  [epochs]/[seed] default to the daemon's
          base market config. *)
  | Close_run of { run : int }  (** [CLOSE <id>] — finish and detach *)
  | List_runs  (** [RUNS] — one continuation line per run *)
      (** The multi-run command layer over {!request}: every request
          line may carry a [RUN <id>] prefix addressing one run of the
          registry.  [Scoped] requests with [Quiesce]/[Shutdown]/
          [Metrics_dump] remain daemon-wide regardless of the prefix. *)

val parse : string -> (request, string) result
(** Parse one request line (leading/trailing blanks and a trailing CR
    tolerated).  [priority] defaults to 0; [EPOCH]'s count to 1.
    [Error] names the offending token, never raises. *)

val parse_command : string -> (command, string) result
(** Parse one command line: a {!request} with an optional [RUN <id>]
    prefix, or one of the registry verbs [OPEN]/[CLOSE]/[RUNS].  A bare
    request parses as [Scoped { run = 0; _ }], keeping every pre-multi-
    run client valid. *)

val render_command : command -> string
(** Canonical command line; [parse_command (render_command c) = Ok c],
    with the run-0 scope rendered bare (so old daemons still parse
    it). *)

val render : request -> string
(** Canonical request line; [parse (render r) = Ok r]. *)

val is_terminal : string -> bool
(** Response framing predicate: a line not starting with ["| "]. *)

val continuation : string -> string
(** Prefix a payload line with ["| "].  The payload must not contain a
    newline (raises [Invalid_argument]). *)

val payload : string -> string
(** Strip a continuation line's ["| "] prefix (identity on terminal
    lines). *)
