module Supervisor = Poc_resilience.Supervisor
module Metrics = Poc_obs.Metrics
module Clock = Poc_obs.Clock

type config = {
  socket_path : string;
  metrics_port : int option;
  idle_timeout : float;
}

type conn = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  http : bool;
  mutable since : float;  (* when the current partial line started *)
}

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      let k = Unix.write fd b off (n - off) in
      go (off + k)
  in
  go 0

let http_response body =
  Printf.sprintf
    "HTTP/1.0 200 OK\r\n\
     Content-Type: text/plain; version=0.0.4\r\n\
     Content-Length: %d\r\n\
     Connection: close\r\n\r\n%s"
    (String.length body) body

(* Split off complete lines; the remainder stays buffered. *)
let take_lines buf =
  let s = Buffer.contents buf in
  match String.rindex_opt s '\n' with
  | None -> []
  | Some last ->
    Buffer.clear buf;
    Buffer.add_string buf
      (String.sub s (last + 1) (String.length s - last - 1));
    String.split_on_char '\n' (String.sub s 0 last)

let serve cfg engine ~flush =
  Engine.set_flush engine flush;
  if Sys.file_exists cfg.socket_path then Sys.remove cfg.socket_path;
  let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind srv (Unix.ADDR_UNIX cfg.socket_path);
  Unix.listen srv 16;
  let http_srv =
    Option.map
      (fun port ->
        let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt s Unix.SO_REUSEADDR true;
        Unix.bind s (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        Unix.listen s 16;
        s)
      cfg.metrics_port
  in
  let conns = ref [] in
  let stop = ref false in
  let old_term = ref Sys.Signal_default and old_int = ref Sys.Signal_default in
  old_term := Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> stop := true));
  old_int := Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> stop := true));
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let close_conn c =
    conns := List.filter (fun c' -> c'.fd != c.fd) !conns;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  in
  let cleanup () =
    List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
      !conns;
    (try Unix.close srv with Unix.Unix_error _ -> ());
    Option.iter
      (fun s -> try Unix.close s with Unix.Unix_error _ -> ())
      http_srv;
    (try Sys.remove cfg.socket_path with Sys_error _ -> ());
    Sys.set_signal Sys.sigterm !old_term;
    Sys.set_signal Sys.sigint !old_int;
    flush ()
  in
  let exit_code = ref None in
  let handle_line c line =
    if String.trim line <> "" then begin
      let lines, action =
        match Protocol.parse line with
        | Error msg -> ([ "ERR parse: " ^ msg ], Engine.Continue)
        | Ok req -> Engine.handle engine req
      in
      (try write_all c.fd (String.concat "\n" lines ^ "\n")
       with Unix.Unix_error _ -> close_conn c);
      match action with
      | Engine.Continue -> ()
      | Engine.Stop code -> exit_code := Some code
    end
  in
  let serve_http fd =
    (* Read whatever request head arrived; any GET gets the registry. *)
    let b = Bytes.create 1024 in
    (try ignore (Unix.read fd b 0 1024) with Unix.Unix_error _ -> ());
    let body = Metrics.to_prometheus Metrics.default in
    (try write_all fd (http_response body) with Unix.Unix_error _ -> ());
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  (try
     while !exit_code = None && not !stop do
       let fds =
         (srv :: Option.to_list http_srv)
         @ List.map (fun c -> c.fd) !conns
       in
       match Unix.select fds [] [] 0.25 with
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
       | readable, _, _ ->
         List.iter
           (fun fd ->
             if fd = srv then begin
               let cfd, _ = Unix.accept srv in
               conns :=
                 { fd = cfd; buf = Buffer.create 256; http = false;
                   since = Clock.now_us () }
                 :: !conns
             end
             else if Some fd = http_srv then begin
               let cfd, _ = Unix.accept (Option.get http_srv) in
               conns :=
                 { fd = cfd; buf = Buffer.create 256; http = true;
                   since = Clock.now_us () }
                 :: !conns
             end
             else
               match List.find_opt (fun c -> c.fd = fd) !conns with
               | None -> ()
               | Some c when c.http ->
                 conns := List.filter (fun c' -> c'.fd != c.fd) !conns;
                 serve_http c.fd
               | Some c -> (
                 let b = Bytes.create 4096 in
                 match Unix.read c.fd b 0 4096 with
                 | 0 -> close_conn c
                 | n ->
                   Buffer.add_subbytes c.buf b 0 n;
                   let lines = take_lines c.buf in
                   if lines <> [] then c.since <- Clock.now_us ();
                   List.iter
                     (fun line ->
                       if !exit_code = None then handle_line c line)
                     lines;
                   if Buffer.length c.buf > 0 then ()
                   else c.since <- Clock.now_us ()
                 | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _)
                   ->
                   close_conn c))
           readable;
         (* Partial-line timeout: a stalled half request is refused so
            one bad client cannot wedge the single-writer loop. *)
         let now = Clock.now_us () in
         List.iter
           (fun c ->
             if
               (not c.http)
               && Buffer.length c.buf > 0
               && (now -. c.since) *. 1e-6 > cfg.idle_timeout
             then begin
               (try write_all c.fd "ERR timeout: partial request dropped\n"
                with Unix.Unix_error _ -> ());
               close_conn c
             end)
           !conns
     done
   with Supervisor.Injected_crash _ ->
     (* The scheduled kill-under-load fault: the supervisor already
        closed the journal resumably; leave with the supervise exit
        code so the smoke's restart leg takes over. *)
     exit_code := Some 10);
  (match !exit_code with
  | None ->
    (* Signal-driven graceful shutdown: suspend resumably, like a
       client SHUTDOWN. *)
    (try Engine.suspend engine
     with e ->
       prerr_endline ("poc daemon: suspend failed: " ^ Printexc.to_string e));
    exit_code := Some 0
  | Some _ -> ());
  cleanup ();
  Option.get !exit_code
