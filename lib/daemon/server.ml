module Supervisor = Poc_resilience.Supervisor
module Metrics = Poc_obs.Metrics
module Clock = Poc_obs.Clock

type config = {
  socket_path : string;
  metrics_port : int option;
  idle_timeout : float;
}

(* A connection speaks exactly one protocol, discriminated by its first
   byte: {!Framing.magic} (0xB1, outside ASCII) opens the binary framed
   protocol, anything else the line protocol.  The choice is sticky for
   the connection's lifetime. *)
type mode = Undecided | Line | Frames

type conn = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  http : bool;
  mutable mode : mode;
  mutable since : float;  (* when the current partial request started *)
}

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      let k = Unix.write fd b off (n - off) in
      go (off + k)
  in
  go 0

let http_response body =
  Printf.sprintf
    "HTTP/1.0 200 OK\r\n\
     Content-Type: text/plain; version=0.0.4\r\n\
     Content-Length: %d\r\n\
     Connection: close\r\n\r\n%s"
    (String.length body) body

(* Split off complete lines; the remainder stays buffered. *)
let take_lines buf =
  let s = Buffer.contents buf in
  match String.rindex_opt s '\n' with
  | None -> []
  | Some last ->
    Buffer.clear buf;
    Buffer.add_string buf
      (String.sub s (last + 1) (String.length s - last - 1));
    String.split_on_char '\n' (String.sub s 0 last)

(* Which run a framed reply concerns: the command's target, or -1 for
   daemon-scope replies (RUNS, an OPEN with no explicit id). *)
let reply_run = function
  | Protocol.Scoped { run; req = _ } -> run
  | Protocol.Open_run { run; _ } -> Option.value run ~default:(-1)
  | Protocol.Close_run { run } -> run
  | Protocol.List_runs -> -1

let serve cfg registry ~flush =
  Registry.set_flush registry flush;
  if Sys.file_exists cfg.socket_path then Sys.remove cfg.socket_path;
  let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind srv (Unix.ADDR_UNIX cfg.socket_path);
  Unix.listen srv 16;
  let http_srv =
    Option.map
      (fun port ->
        let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt s Unix.SO_REUSEADDR true;
        Unix.bind s (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        Unix.listen s 16;
        s)
      cfg.metrics_port
  in
  let conns = ref [] in
  let stop = ref false in
  let old_term = ref Sys.Signal_default and old_int = ref Sys.Signal_default in
  old_term := Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> stop := true));
  old_int := Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> stop := true));
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let close_conn c =
    conns := List.filter (fun c' -> c'.fd != c.fd) !conns;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  in
  let cleanup () =
    List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
      !conns;
    (try Unix.close srv with Unix.Unix_error _ -> ());
    Option.iter
      (fun s -> try Unix.close s with Unix.Unix_error _ -> ())
      http_srv;
    (try Sys.remove cfg.socket_path with Sys_error _ -> ());
    Sys.set_signal Sys.sigterm !old_term;
    Sys.set_signal Sys.sigint !old_int;
    flush ()
  in
  let exit_code = ref None in
  let respond c ~run lines =
    try
      match c.mode with
      | Frames ->
        let rec emit = function
          | [] -> ()
          | [ last ] ->
            write_all c.fd
              (Framing.encode_reply { Framing.run; final = true; line = last })
          | l :: rest ->
            write_all c.fd
              (Framing.encode_reply { Framing.run; final = false; line = l });
            emit rest
        in
        emit (if lines = [] then [ "ERR empty response" ] else lines)
      | Line | Undecided -> write_all c.fd (String.concat "\n" lines ^ "\n")
    with Unix.Unix_error _ -> close_conn c
  in
  let run_command c cmd =
    let lines, action = Registry.dispatch registry cmd in
    respond c ~run:(reply_run cmd) lines;
    match action with
    | Engine.Continue -> ()
    | Engine.Stop code -> exit_code := Some code
  in
  let handle_line c line =
    if String.trim line <> "" then
      match Protocol.parse_command line with
      | Error msg -> respond c ~run:(-1) [ "ERR parse: " ^ msg ]
      | Ok cmd -> run_command c cmd
  in
  let drain_frames c =
    let data = Buffer.contents c.buf in
    let { Framing.items; consumed; dropped = _ } =
      Framing.decode_stream data ~pos:0
    in
    if consumed > 0 then begin
      Buffer.clear c.buf;
      Buffer.add_substring c.buf data consumed (String.length data - consumed)
    end;
    List.iter
      (fun item ->
        if !exit_code = None then
          match item with
          | Framing.Msg m -> run_command c (Framing.to_command m)
          | Framing.Reply _ ->
            (* Clients do not send replies; drop, keep the connection. *)
            ())
      items
  in
  let serve_http fd =
    (* Read whatever request head arrived; any GET gets the registry. *)
    let b = Bytes.create 1024 in
    (try ignore (Unix.read fd b 0 1024) with Unix.Unix_error _ -> ());
    let body = Metrics.to_prometheus Metrics.default in
    (try write_all fd (http_response body) with Unix.Unix_error _ -> ());
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  (try
     while !exit_code = None && not !stop do
       let fds =
         (srv :: Option.to_list http_srv)
         @ List.map (fun c -> c.fd) !conns
       in
       (match Unix.select fds [] [] 0.25 with
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
       | readable, _, _ ->
         List.iter
           (fun fd ->
             if fd = srv then begin
               let cfd, _ = Unix.accept srv in
               conns :=
                 { fd = cfd; buf = Buffer.create 256; http = false;
                   mode = Undecided; since = Clock.now_us () }
                 :: !conns
             end
             else if Some fd = http_srv then begin
               let cfd, _ = Unix.accept (Option.get http_srv) in
               conns :=
                 { fd = cfd; buf = Buffer.create 256; http = true;
                   mode = Line; since = Clock.now_us () }
                 :: !conns
             end
             else
               match List.find_opt (fun c -> c.fd = fd) !conns with
               | None -> ()
               | Some c when c.http ->
                 conns := List.filter (fun c' -> c'.fd != c.fd) !conns;
                 serve_http c.fd
               | Some c -> (
                 let b = Bytes.create 4096 in
                 match Unix.read c.fd b 0 4096 with
                 | 0 -> close_conn c
                 | n ->
                   Buffer.add_subbytes c.buf b 0 n;
                   if c.mode = Undecided && Buffer.length c.buf > 0 then
                     c.mode <-
                       (if Buffer.nth c.buf 0 = Framing.magic then Frames
                        else Line);
                   (match c.mode with
                   | Frames ->
                     let before = Buffer.length c.buf in
                     drain_frames c;
                     if Buffer.length c.buf < before then
                       c.since <- Clock.now_us ()
                   | Line | Undecided ->
                     let lines = take_lines c.buf in
                     if lines <> [] then c.since <- Clock.now_us ();
                     List.iter
                       (fun line ->
                         if !exit_code = None then handle_line c line)
                       lines);
                   if Buffer.length c.buf = 0 then c.since <- Clock.now_us ()
                 | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _)
                   ->
                   close_conn c))
           readable);
       (* Drive due restart-with-backoff retries for failing runs. *)
       if !exit_code = None then
         Registry.tick registry ~now_us:(Clock.now_us ());
       (* Partial-request timeout: a stalled half request (line or
          frame) is refused so one bad client cannot wedge the
          single-writer loop. *)
       let now = Clock.now_us () in
       List.iter
         (fun c ->
           if
             (not c.http)
             && Buffer.length c.buf > 0
             && (now -. c.since) *. 1e-6 > cfg.idle_timeout
           then begin
             (try
                match c.mode with
                | Frames ->
                  write_all c.fd
                    (Framing.encode_reply
                       { Framing.run = -1; final = true;
                         line = "ERR timeout: partial request dropped" })
                | Line | Undecided ->
                  write_all c.fd "ERR timeout: partial request dropped\n"
              with Unix.Unix_error _ -> ());
             close_conn c
           end)
         !conns
     done
   with Supervisor.Injected_crash _ ->
     (* Last resort only: the registry absorbs injected crashes inside
        run dispatch.  One escaping anyway (a fault firing outside any
        run scope) exits like [poc-cli supervise] so a restart leg can
        take over. *)
     exit_code := Some 10);
  (match !exit_code with
  | None ->
    (* Signal-driven graceful shutdown: suspend every run resumably,
       like a client SHUTDOWN. *)
    Registry.suspend_all registry;
    exit_code := Some 0
  | Some _ -> ());
  cleanup ();
  Option.get !exit_code
