module Supervisor = Poc_resilience.Supervisor
module Journal = Poc_resilience.Journal
module Disk = Poc_resilience.Disk
module Fault = Poc_resilience.Fault
module Ladder = Poc_resilience.Ladder
module Planner = Poc_core.Planner
module Vcg = Poc_auction.Vcg
module Epochs = Poc_market.Epochs
module Metrics = Poc_obs.Metrics
module Clock = Poc_obs.Clock
module Flight = Poc_obs.Flight
module Black_box = Poc_resilience.Black_box

(* Service instruments.  Queue/backpressure gauges and counters carry
   the daemon's whole observable story: STATUS reads them, the
   Prometheus endpoint exports them, and the kill smoke asserts on
   them. *)
let g_queue =
  Metrics.gauge ~help:"Live updates waiting for the next epoch"
    Metrics.default "poc_daemon_queue_depth"

let g_high_water =
  Metrics.gauge ~help:"Admission queue bound" Metrics.default
    "poc_daemon_queue_high_water"

let g_next_epoch =
  Metrics.gauge ~help:"Next epoch the daemon will run (0 = horizon done)"
    Metrics.default "poc_daemon_next_epoch"

let c_requests =
  Metrics.counter ~help:"Control requests processed" Metrics.default
    "poc_daemon_requests_total"

let c_accepted =
  Metrics.counter ~help:"Updates admitted and durably logged"
    Metrics.default "poc_daemon_accepted_total"

let c_applied =
  Metrics.counter ~help:"Updates folded into an epoch" Metrics.default
    "poc_daemon_applied_total"

let c_shed =
  Metrics.counter ~help:"Queued updates shed to admit higher priority"
    Metrics.default "poc_daemon_shed_total"

let c_rejected =
  Metrics.counter ~help:"Updates rejected with BUSY backpressure"
    Metrics.default "poc_daemon_rejected_total"

let c_dup =
  Metrics.counter ~help:"Duplicate seqs suppressed" Metrics.default
    "poc_daemon_duplicates_total"

let c_retries =
  Metrics.counter ~help:"Transient disk errors retried with backoff"
    Metrics.default "poc_daemon_disk_retries_total"

let c_recoveries =
  Metrics.counter ~help:"Journal resumes (startup --resume and in-place)"
    Metrics.default "poc_daemon_recoveries_total"

let h_request =
  Metrics.histogram ~help:"Control request latency (seconds)"
    Metrics.default "poc_daemon_request_seconds"

let h_recovery =
  Metrics.histogram ~help:"Time to recover from the journal (seconds)"
    Metrics.default "poc_daemon_recovery_seconds"

let h_settle =
  Metrics.histogram
    ~help:"Admission to settlement latency per applied update (seconds)"
    Metrics.default "poc_daemon_settle_seconds"

let g_flight_records =
  Metrics.gauge ~help:"Flight recorder records retained (0 when off)"
    Metrics.default "poc_daemon_flight_records"

let retrying_disk ?policy ?(ops = Disk.real_ops) () =
  Disk.with_ops
    (Disk.retrying ?policy
       ~on_retry:(fun ~op:_ ~attempt:_ ~delay:_ _ ->
         Metrics.Counter.inc c_retries)
       ops)

type action = Continue | Stop of int

type t = {
  n_bps : int;
  store : string;
  market : Epochs.config;
  admission : Supervisor.update Admission.t;
  disk : Disk.t;
  reresume : unit -> (Supervisor.loop, string) result;
  mutable loop : Supervisor.loop;
  mutable ilog : Intake.t;
  (* Mirror of the intake log, newest first: the single source of truth
     for which updates an epoch applies.  The admission queue only
     bounds what is waiting; application always reads the mirror, so a
     live run and a crash-resumed replay fold exactly the same updates
     at exactly the same epochs. *)
  mutable accepted_rev : Supervisor.update Admission.entry list;
  shed_seqs : (int, unit) Hashtbl.t;
  fb : Black_box.t option;
  (* Live admissions' Clock.now_us, keyed by seq: the settle histogram
     attributes admission→settlement latency only to updates admitted
     by this process (replayed intake entries have no admit instant). *)
  admit_us : (int, float) Hashtbl.t;
  mutable quiesced : bool;
  mutable flush : unit -> unit;
}

let set_queue_gauges t =
  Metrics.Gauge.set g_queue (float_of_int (Admission.depth t.admission));
  Metrics.Gauge.set g_next_epoch
    (match Supervisor.next_epoch t.loop with
    | Some e -> float_of_int e
    | None -> 0.0);
  match t.fb with
  | None -> ()
  | Some b ->
    Metrics.Gauge.set g_flight_records
      (float_of_int (Flight.stored (Black_box.ring b)))

let create ?ladder ?(snapshot_every = 4) ?segment_bytes ?disk ?pool ?flight
    ?(high_water = 64) ?(resume = false) ?(honor_crashes = false) ~store
    ~intake plan ~market ~schedule =
  let disk = match disk with Some d -> d | None -> Disk.real () in
  let n_bps = Array.length plan.Planner.problem.Vcg.bids in
  let admission = Admission.create ~high_water () in
  Metrics.Gauge.set g_high_water (float_of_int high_water);
  let intake_retry ~attempt:_ ~delay:_ _ = Metrics.Counter.inc c_retries in
  let reresume () =
    Supervisor.open_resume ?ladder ~honor_crashes ~journal:store ?flight ~disk
      ?pool plan ~market ~schedule
  in
  let finish loop ilog accepted_rev shed_seqs =
    let t =
      {
        n_bps;
        store;
        market;
        admission;
        disk;
        reresume;
        loop;
        ilog;
        accepted_rev;
        shed_seqs;
        fb = flight;
        admit_us = Hashtbl.create 64;
        quiesced = false;
        flush = (fun () -> ());
      }
    in
    set_queue_gauges t;
    Ok t
  in
  if resume then
    let t0 = Clock.now_us () in
    match reresume () with
    | Error _ as e -> e
    | Ok loop -> (
      match Intake.reopen ~disk ~on_retry:intake_retry intake with
      | Error _ as e -> e
      | Ok (ilog, records) ->
        let shed_seqs = Hashtbl.create 64 in
        List.iter
          (fun (r : Intake.record) ->
            match r.displaces with
            | Some s -> Hashtbl.replace shed_seqs s ()
            | None -> ())
          records;
        let accepted = List.map (fun (r : Intake.record) -> r.entry) records in
        List.iter
          (fun (e : _ Admission.entry) ->
            Admission.set_last_seq admission e.seq)
          accepted;
        (* Entries not yet folded into the restored state go back on
           the queue so depth accounting (and backpressure) survive the
           restart; their application still comes from the mirror. *)
        let resume_next =
          match Supervisor.next_epoch loop with
          | Some e -> e
          | None -> Supervisor.horizon loop + 1
        in
        List.iter
          (fun (e : _ Admission.entry) ->
            if e.apply_epoch >= resume_next && not (Hashtbl.mem shed_seqs e.seq)
            then Admission.force admission e)
          accepted;
        (* Counters are process-local; restore the run-cumulative
           accepted/shed/applied counts from the durable intake log so
           STATUS and the Prometheus endpoint survive the restart. *)
        Metrics.Counter.add c_accepted (float_of_int (List.length accepted));
        Metrics.Counter.add c_shed
          (float_of_int (Hashtbl.length shed_seqs));
        Metrics.Counter.add c_applied
          (float_of_int
             (List.length
                (List.filter
                   (fun (e : _ Admission.entry) ->
                     e.apply_epoch < resume_next
                     && not (Hashtbl.mem shed_seqs e.seq))
                   accepted)));
        Metrics.Counter.inc c_recoveries;
        Metrics.Histogram.observe h_recovery
          ((Clock.now_us () -. t0) *. 1e-6);
        finish loop ilog (List.rev accepted) shed_seqs)
  else
    let loop =
      Supervisor.open_run ?ladder ~journal:store ?flight ~snapshot_every
        ?segment_bytes ~disk ?pool plan ~market ~schedule
    in
    finish loop
      (Intake.create ~disk ~on_retry:intake_retry intake)
      [] (Hashtbl.create 64)

let set_flush t f = t.flush <- f
let next_epoch t = Supervisor.next_epoch t.loop
let queue_depth t = Admission.depth t.admission

let banner t =
  Printf.sprintf
    "poc daemon: store=%s next=%s horizon=%d queue=%d/%d market[%s]" t.store
    (match next_epoch t with Some e -> string_of_int e | None -> "done")
    (Supervisor.horizon t.loop)
    (Admission.depth t.admission)
    (Admission.high_water t.admission)
    (Epochs.describe_config t.market)

let suspend t =
  (match Supervisor.next_epoch t.loop with
  | Some _ -> Supervisor.suspend t.loop
  | None -> ignore (Supervisor.finish t.loop));
  Intake.close t.ilog;
  t.flush ()

(* Best-effort teardown of a run whose loop may already be dead (an
   [Injected_crash] closes the journal and kills the loop before the
   registry sees the exception): release what is still open and never
   raise. *)
let abandon t =
  (try
     match Supervisor.next_epoch t.loop with
     | Some _ -> Supervisor.suspend t.loop
     | None -> ignore (Supervisor.finish t.loop)
   with _ -> ());
  try Intake.close t.ilog with _ -> ()

(* --- request handlers ----------------------------------------------------- *)

let admit t ~seq ~priority payload =
  if t.quiesced then
    ([ Printf.sprintf "ERR %d quiesced" seq ], Continue)
  else
    match Supervisor.next_epoch t.loop with
    | None -> ([ Printf.sprintf "ERR %d horizon complete" seq ], Continue)
    | Some next -> (
      match Supervisor.validate_update ~n_bps:t.n_bps payload with
      | Error msg -> ([ Printf.sprintf "ERR %d %s" seq msg ], Continue)
      | Ok () -> (
        let entry =
          { Admission.seq; apply_epoch = next; priority; payload }
        in
        match Admission.offer t.admission entry with
        | Admission.Duplicate ->
          Metrics.Counter.inc c_dup;
          ([ Printf.sprintf "DUP %d" seq ], Continue)
        | Admission.Rejected { retry_after } ->
          Metrics.Counter.inc c_rejected;
          ([ Printf.sprintf "BUSY %d retry_after=%.3f" seq retry_after ],
           Continue)
        | Admission.Admitted { shed } -> (
          let displaces =
            Option.map (fun (v : _ Admission.entry) -> v.seq) shed
          in
          match Intake.append t.ilog { entry; displaces } with
          | () ->
            t.accepted_rev <- entry :: t.accepted_rev;
            (match shed with
            | Some v ->
              Hashtbl.replace t.shed_seqs v.seq ();
              Metrics.Counter.inc c_shed
            | None -> ());
            Metrics.Counter.inc c_accepted;
            Hashtbl.replace t.admit_us seq (Clock.now_us ());
            (match t.fb with
            | None -> ()
            | Some b ->
              Flight.emit (Black_box.ring b) ~epoch:next ~phase:"admission"
                (Flight.Event
                   {
                     name = "admit";
                     detail =
                       Printf.sprintf "seq=%d apply_epoch=%d" seq next;
                   });
              Black_box.flush b);
            set_queue_gauges t;
            let shed_part =
              match shed with
              | Some v -> Printf.sprintf " shed=%d" v.Admission.seq
              | None -> ""
            in
            ([ Printf.sprintf "OK %d apply_epoch=%d queue=%d%s" seq next
                 (Admission.depth t.admission)
                 shed_part ],
             Continue)
          | exception Sys_error msg ->
            (* The admission is not durable: undo it entirely so the
               client can safely retry.  The victim (if any) was never
               durably shed either — put it back. *)
            Admission.drop t.admission ~seq;
            (match shed with
            | Some v -> Admission.force t.admission v
            | None -> ());
            set_queue_gauges t;
            ([ Printf.sprintf
                 "ERR %d not recorded (%s); retry with a fresh seq" seq msg ],
             Continue))))

let entries_for t e =
  List.rev t.accepted_rev
  |> List.filter (fun (en : _ Admission.entry) ->
         en.apply_epoch = e && not (Hashtbl.mem t.shed_seqs en.seq))

(* Attribute admission→settlement latency to every update the epoch
   just folded in: the settle histogram feeds the Prometheus endpoint,
   and with a recorder attached each update leaves a metric record in
   the flight box. *)
let settle_applied t e entries =
  let settled = Clock.now_us () in
  List.iter
    (fun (en : _ Admission.entry) ->
      match Hashtbl.find_opt t.admit_us en.seq with
      | None -> () (* admitted before a restart: no live admit instant *)
      | Some admitted ->
        Hashtbl.remove t.admit_us en.seq;
        let dt = (settled -. admitted) *. 1e-6 in
        Metrics.Histogram.observe h_settle dt;
        (match t.fb with
        | None -> ()
        | Some b ->
          Flight.emit (Black_box.ring b) ~epoch:e ~phase:"settlement"
            (Flight.Metric { name = "admit_to_settle_s"; delta = dt })))
    entries;
  match t.fb with
  | None -> ()
  | Some b -> if entries <> [] then Black_box.flush b

let recover t cause =
  let t0 = Clock.now_us () in
  (try Supervisor.suspend t.loop with _ -> ());
  match t.reresume () with
  | Ok loop ->
    t.loop <- loop;
    Metrics.Counter.inc c_recoveries;
    Metrics.Histogram.observe h_recovery ((Clock.now_us () -. t0) *. 1e-6);
    set_queue_gauges t;
    Ok (Supervisor.next_epoch loop)
  | Error msg -> Error (Printf.sprintf "%s; resume failed: %s" cause msg)

let run_epochs t n =
  let lines = ref [] in
  let ran = ref 0 in
  let outcome = ref `Done in
  (try
     let k = ref n in
     while !k > 0 && !outcome = `Done && next_epoch t <> None do
       match next_epoch t with
       | None -> k := 0
       | Some e -> (
         ignore (Admission.drain t.admission ~epoch:e);
         let entries = entries_for t e in
         let updates =
           List.map (fun (en : _ Admission.entry) -> en.payload) entries
         in
         match Supervisor.step ~updates t.loop with
         | er ->
           incr ran;
           decr k;
           Metrics.Counter.add c_applied (float_of_int (List.length updates));
           settle_applied t e entries;
           set_queue_gauges t;
           lines :=
             Protocol.continuation
               (Printf.sprintf
                  "epoch %d status=%s spend=%.2f delivered=%.3f applied=%d"
                  er.Supervisor.epoch
                  (Supervisor.status_to_string er.Supervisor.status)
                  er.Supervisor.spend er.Supervisor.delivered_fraction
                  (List.length updates))
             :: !lines
         | exception (Supervisor.Injected_crash _ as exn) -> raise exn
         | exception exn ->
           outcome := `Recovering (Printexc.to_string exn))
     done
   with Supervisor.Injected_crash _ as exn -> raise exn);
  let lines = List.rev !lines in
  match !outcome with
  | `Done ->
    let next =
      match next_epoch t with Some e -> string_of_int e | None -> "done"
    in
    (lines @ [ Printf.sprintf "OK epochs=%d next=%s" !ran next ], Continue)
  | `Recovering cause -> (
    match recover t cause with
    | Ok next ->
      let next =
        match next with Some e -> string_of_int e | None -> "done"
      in
      ( lines
        @ [ Printf.sprintf
              "BUSY epoch retry_after=0.100 recovered next=%s cause=%s" next
              (String.map (fun c -> if c = ' ' then '_' else c) cause) ],
        Continue )
    | Error msg -> (lines @ [ "ERR unrecoverable: " ^ msg ], Stop 1))

let status_line t =
  let next =
    match next_epoch t with Some e -> string_of_int e | None -> "done"
  in
  Printf.sprintf
    "STATUS ok next=%s horizon=%d queue=%d/%d last_seq=%d accepted=%.0f \
     applied=%.0f shed=%.0f rejected=%.0f dup=%.0f recoveries=%.0f \
     disk_retries=%.0f flight=%s quiesced=%b market[%s]"
    next
    (Supervisor.horizon t.loop)
    (Admission.depth t.admission)
    (Admission.high_water t.admission)
    (Admission.last_seq t.admission)
    (Metrics.Counter.value c_accepted)
    (Metrics.Counter.value c_applied)
    (Metrics.Counter.value c_shed)
    (Metrics.Counter.value c_rejected)
    (Metrics.Counter.value c_dup)
    (Metrics.Counter.value c_recoveries)
    (Metrics.Counter.value c_retries)
    (match t.fb with
    | Some b ->
      Printf.sprintf "on:%d" (Flight.stored (Black_box.ring b))
    | None -> "off")
    t.quiesced
    (Epochs.describe_config t.market)

let dispatch t = function
  | Protocol.Bid { seq; bp; factor; priority } ->
    admit t ~seq ~priority (Supervisor.Scale_bid { bp; factor })
  | Protocol.Matrix { seq; factor; priority } ->
    admit t ~seq ~priority (Supervisor.Scale_demand { factor })
  | Protocol.Epoch n -> run_epochs t n
  | Protocol.Status -> ([ status_line t ], Continue)
  | Protocol.Metrics_dump ->
    let body = Metrics.to_prometheus Metrics.default in
    let lines =
      String.split_on_char '\n' body
      |> List.filter (fun l -> l <> "")
      |> List.map Protocol.continuation
    in
    (lines @ [ Printf.sprintf "OK metrics bytes=%d" (String.length body) ],
     Continue)
  | Protocol.Scrub -> (
    match Journal.scrub ~disk:t.disk ~dry_run:true t.store with
    | Ok report ->
      let json_lines =
        String.split_on_char '\n' (Journal.scrub_to_json report)
        |> List.filter (fun l -> l <> "")
        |> List.map Protocol.continuation
      in
      ( json_lines
        @ [ Printf.sprintf "OK scrub recovered=%b" report.Journal.recovered ],
        Continue )
    | Error msg -> ([ "ERR scrub " ^ msg ], Continue))
  | Protocol.Quiesce ->
    t.quiesced <- true;
    t.flush ();
    ( [ Printf.sprintf "OK quiesced queue=%d" (Admission.depth t.admission) ],
      Continue )
  | Protocol.Shutdown -> (
    match next_epoch t with
    | None ->
      ignore (Supervisor.finish t.loop);
      Intake.close t.ilog;
      t.flush ();
      ([ "BYE complete" ], Stop 0)
    | Some e ->
      Supervisor.suspend t.loop;
      Intake.close t.ilog;
      t.flush ();
      ([ Printf.sprintf "BYE resumable next=%d" e ], Stop 0))

let handle t req =
  let t0 = Clock.now_us () in
  Metrics.Counter.inc c_requests;
  Fun.protect
    ~finally:(fun () ->
      Metrics.Histogram.observe h_request ((Clock.now_us () -. t0) *. 1e-6))
    (fun () -> dispatch t req)
