module Supervisor = Poc_resilience.Supervisor
module Journal = Poc_resilience.Journal
module Disk = Poc_resilience.Disk
module Fault = Poc_resilience.Fault
module Black_box = Poc_resilience.Black_box
module Planner = Poc_core.Planner
module Epochs = Poc_market.Epochs
module Metrics = Poc_obs.Metrics
module Clock = Poc_obs.Clock
module Codec = Poc_util.Codec

type run_state =
  | Starting
  | Serving
  | Failing of { attempts : int; retry_at_us : float; cause : string }
  | Quarantined of { cause : string }
  | Closed

let state_name = function
  | Starting -> "starting"
  | Serving -> "serving"
  | Failing _ -> "failing"
  | Quarantined _ -> "quarantined"
  | Closed -> "closed"

let state_names = [ "starting"; "serving"; "failing"; "quarantined"; "closed" ]

type run_info = {
  id : int;
  state : run_state;
  next_epoch : int option;
  horizon : int;
  queue : int;
}

type slot = {
  sid : int;
  dir : string;
  store : string;
  intake : string;
  m : Epochs.config;
  mutable specs : Fault.spec list;  (* not-yet-fired kill specs *)
  mutable engine : Engine.t option;
  mutable state : run_state;
  mutable failures : int;  (* cumulative; drives the quarantine cap *)
}

type t = {
  root : string;
  plan : Planner.plan;
  base_market : Epochs.config;
  snapshot_every : int;
  segment_bytes : int;
  pool : Poc_util.Pool.t option;
  flight : bool;
  high_water : int;
  attempt_cap : int;
  delays : float array;  (* restart backoff schedule, from retry_policy *)
  fault_seed : int;
  fault_run : int;
  fault_specs : Fault.spec list;
  disk_for : run:int -> Disk.t;
  max_runs : int;
  slots : (int, slot) Hashtbl.t;
  mutable flush : unit -> unit;
}

(* --- layout ---------------------------------------------------------------- *)

(* Run 0 lives at the root itself ([root/store], [root/intake.log]) so
   every pre-multi-run artifact — the kill smoke's byte compares,
   [poc-cli forensics] defaults, --resume of an old root — keeps
   working unchanged.  Runs above 0 get their own directory. *)
let run_dir root id =
  if id = 0 then root
  else Filename.concat root (Printf.sprintf "runs/%05d" id)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir -> ()
  end

(* --- instruments ----------------------------------------------------------- *)

let run_state_gauge id name =
  Metrics.gauge ~help:"Run lifecycle state (1 = the run's current state)"
    ~labels:[ ("run", string_of_int id); ("state", name) ]
    Metrics.default "poc_daemon_run_state"

let c_run_failures =
  Metrics.counter ~help:"Per-run failures absorbed by the registry"
    Metrics.default "poc_daemon_run_failures_total"

let c_run_restarts =
  Metrics.counter ~help:"Failing runs successfully scrubbed and resumed"
    Metrics.default "poc_daemon_run_restarts_total"

let c_quarantines =
  Metrics.counter ~help:"Runs escalated to quarantine at the attempt cap"
    Metrics.default "poc_daemon_run_quarantines_total"

let set_state_gauges slot =
  let current = state_name slot.state in
  List.iter
    (fun name ->
      Metrics.Gauge.set (run_state_gauge slot.sid name)
        (if name = current then 1.0 else 0.0))
    state_names

(* --- the root manifest ----------------------------------------------------- *)

(* [root/RUNS]: an append-only frame log of run lifecycle facts — which
   ids are open (and with what horizon/seed), which closed, which were
   quarantined.  It is the daemon's resume root: a restart replays it
   to learn what to bring back.  Torn tails are tolerated exactly like
   every other frame log in the tree. *)

type manifest_event =
  | M_opened of { run : int; epochs : int; seed : int }
  | M_closed of { run : int }
  | M_quarantined of { run : int; reason : string }

let manifest_path root = Filename.concat root "RUNS"

let encode_event ev =
  let w = Codec.writer () in
  (match ev with
  | M_opened { run; epochs; seed } ->
    Codec.put_u8 w 1;
    Codec.put_int w run;
    Codec.put_int w epochs;
    Codec.put_int w seed
  | M_closed { run } ->
    Codec.put_u8 w 2;
    Codec.put_int w run
  | M_quarantined { run; reason } ->
    Codec.put_u8 w 3;
    Codec.put_int w run;
    Codec.put_string w reason);
  Codec.frame (Codec.contents w)

let decode_event payload =
  let r = Codec.reader payload in
  match Codec.get_u8 r with
  | 1 ->
    let run = Codec.get_int r in
    let epochs = Codec.get_int r in
    let seed = Codec.get_int r in
    M_opened { run; epochs; seed }
  | 2 -> M_closed { run = Codec.get_int r }
  | 3 ->
    let run = Codec.get_int r in
    let reason = Codec.get_string r in
    M_quarantined { run; reason }
  | n -> raise (Codec.Corrupt (Printf.sprintf "manifest tag %d" n))

let manifest_append t ev =
  let oc =
    open_out_gen
      [ Open_append; Open_creat; Open_binary ]
      0o644 (manifest_path t.root)
  in
  output_string oc (encode_event ev);
  Stdlib.flush oc;
  close_out oc

let manifest_read root =
  let path = manifest_path root in
  if not (Sys.file_exists path) then []
  else
    let data = In_channel.with_open_bin path In_channel.input_all in
    let rec walk pos acc =
      match Codec.next_frame data ~pos with
      | Codec.End | Codec.Torn -> List.rev acc
      | Codec.Frame { payload; next } -> (
        match decode_event payload with
        | ev -> walk next (ev :: acc)
        | exception Codec.Corrupt _ -> List.rev acc)
    in
    walk 0 []

(* --- engine lifecycle ------------------------------------------------------ *)

let spec_fired ~epoch ~phase = function
  | Fault.Crash { at_epoch; phase = p } -> at_epoch = epoch && p = phase
  | Fault.Storage { at_epoch; phase = p; _ } -> at_epoch = epoch && p = phase
  | _ -> false

let compile_schedule t specs =
  match Fault.compile t.plan.Planner.wan ~seed:t.fault_seed specs with
  | Ok s -> Ok s
  | Error msg -> Error ("fault schedule: " ^ msg)

(* Open (or resume) a slot's engine.  A fresh [Disk.t] per attempt: a
   storage fault damages the disk it was armed on, never the next
   attempt's (the fleet driver's discipline). *)
let start_slot t slot ~resume ~honor_crashes =
  match compile_schedule t slot.specs with
  | Error _ as e -> e
  | Ok schedule -> (
    let resume =
      resume && (Sys.file_exists slot.store || Sys.file_exists slot.intake)
    in
    let disk = t.disk_for ~run:slot.sid in
    let flight =
      if t.flight then
        Some (Black_box.create (Filename.concat slot.store "FLIGHT"))
      else None
    in
    match
      Engine.create ~snapshot_every:t.snapshot_every
        ~segment_bytes:t.segment_bytes ~disk ?pool:t.pool ?flight
        ~high_water:t.high_water ~resume ~honor_crashes ~store:slot.store
        ~intake:slot.intake t.plan ~market:slot.m ~schedule
    with
    | Error _ as e -> e
    | Ok engine ->
      Engine.set_flush engine t.flush;
      slot.engine <- Some engine;
      slot.state <- Serving;
      set_state_gauges slot;
      Ok engine)

let delay_for t failures =
  if Array.length t.delays = 0 then 0.0
  else t.delays.(min (failures - 1) (Array.length t.delays - 1))

(* Record one failure of a run: release the engine, then either arm a
   backoff retry or — past the attempt cap — quarantine, leaving the
   store intact for offline forensics.  Returns the terminal line for
   whichever client was unlucky enough to be attached. *)
let fail_slot t slot ~now_us ~cause =
  (match slot.engine with Some e -> Engine.abandon e | None -> ());
  slot.engine <- None;
  slot.failures <- slot.failures + 1;
  Metrics.Counter.inc c_run_failures;
  if slot.failures > t.attempt_cap then begin
    slot.state <- Quarantined { cause };
    Metrics.Counter.inc c_quarantines;
    manifest_append t (M_quarantined { run = slot.sid; reason = cause });
    set_state_gauges slot;
    Printf.sprintf "GONE run=%d quarantined after %d failures: %s" slot.sid
      slot.failures cause
  end
  else begin
    let d = delay_for t slot.failures in
    slot.state <-
      Failing { attempts = slot.failures; retry_at_us = now_us +. (d *. 1e6);
                cause };
    set_state_gauges slot;
    Printf.sprintf "BUSY run=%d retry_after=%.3f failing attempts=%d cause=%s"
      slot.sid d slot.failures
      (String.map (fun c -> if c = ' ' then '_' else c) cause)
  end

(* A due retry: scrub the store (a storage fault's damage must be
   truncated or quarantined before resume will touch it), then resume
   with the not-yet-fired kill specs re-armed. *)
let retry_slot t slot ~now_us =
  let resumable =
    match Journal.scrub ~disk:(Disk.real ()) slot.store with
    | Ok rep -> rep.Journal.recovered
    | Error _ -> false
    | exception Sys_error _ -> false
  in
  if not resumable then
    ignore
      (fail_slot t slot ~now_us ~cause:"scrub found no resumable store"
        : string)
  else
    match
      start_slot t slot ~resume:true ~honor_crashes:(slot.specs <> [])
    with
    | Ok _ -> Metrics.Counter.inc c_run_restarts
    | Error msg ->
      ignore (fail_slot t slot ~now_us ~cause:("resume failed: " ^ msg)
              : string)

let tick t ~now_us =
  Hashtbl.iter
    (fun _ slot ->
      match slot.state with
      | Failing { retry_at_us; _ } when now_us >= retry_at_us ->
        retry_slot t slot ~now_us
      | _ -> ())
    t.slots

(* --- construction ---------------------------------------------------------- *)

let slots_sorted t =
  Hashtbl.fold (fun _ s acc -> s :: acc) t.slots []
  |> List.sort (fun a b -> compare a.sid b.sid)

let make_slot t id ~epochs ~seed =
  let dir = run_dir t.root id in
  mkdir_p dir;
  {
    sid = id;
    dir;
    store = Filename.concat dir "store";
    intake = Filename.concat dir "intake.log";
    m = { t.base_market with Epochs.epochs; seed };
    specs = (if id = t.fault_run then t.fault_specs else []);
    engine = None;
    state = Starting;
    failures = 0;
  }

let open_count t =
  Hashtbl.fold
    (fun _ s n ->
      match s.state with
      | Serving | Failing _ | Starting -> n + 1
      | Quarantined _ | Closed -> n)
    t.slots 0

let create ?(snapshot_every = 4) ?(segment_bytes = 65536) ?pool
    ?(flight = false) ?(high_water = 64) ?(attempt_cap = 3)
    ?(retry_policy = Disk.default_retry_policy)
    ?disk_for ?(resume = false) ?(runs = 1) ?(max_runs = 8) ?(fault_run = 0)
    ?(fault_specs = []) ?(fault_seed = 2020) ~root plan ~market () =
  let problems =
    List.filter_map
      (fun (msg, ok) -> if ok then None else Some msg)
      [
        ("runs must be >= 1", runs >= 1);
        ("max-runs must be >= 1", max_runs >= 1);
        ("runs must be <= max-runs", runs <= max_runs);
        ("attempt-cap must be >= 0", attempt_cap >= 0);
      ]
  in
  if problems <> [] then Error (String.concat "; " problems)
  else
    let delays =
      match Disk.retry_delays retry_policy with
      | ds -> Array.of_list ds
      | exception Invalid_argument msg -> invalid_arg msg
    in
    let t =
      {
        root;
        plan;
        base_market = market;
        snapshot_every;
        segment_bytes;
        pool;
        flight;
        high_water;
        attempt_cap;
        delays;
        fault_seed;
        fault_run;
        fault_specs;
        disk_for =
          (match disk_for with
          | Some f -> f
          | None -> fun ~run:_ -> Engine.retrying_disk ());
        max_runs;
        slots = Hashtbl.create 8;
        flush = (fun () -> ());
      }
    in
    mkdir_p root;
    if resume then begin
      (* Fold the manifest into the final per-run fact.  An old root
         written before the manifest existed resumes as run 0 under the
         base market config. *)
      let events = manifest_read root in
      let opened = Hashtbl.create 8 in
      List.iter
        (fun ev ->
          match ev with
          | M_opened { run; epochs; seed } ->
            Hashtbl.replace opened run (`Open (epochs, seed))
          | M_closed { run } -> Hashtbl.replace opened run `Closed
          | M_quarantined { run; reason } ->
            Hashtbl.replace opened run (`Quarantined reason))
        events;
      if Hashtbl.length opened = 0 then
        if Sys.file_exists (Filename.concat root "store") then
          Hashtbl.replace opened 0
            (`Open (market.Epochs.epochs, market.Epochs.seed));
      if Hashtbl.length opened = 0 then
        Error (Printf.sprintf "%s: nothing to resume" root)
      else begin
        let now_us = Clock.now_us () in
        Hashtbl.iter
          (fun id fact ->
            match fact with
            | `Closed -> ()
            | `Quarantined reason ->
              let slot =
                make_slot t id ~epochs:market.Epochs.epochs
                  ~seed:market.Epochs.seed
              in
              slot.state <- Quarantined { cause = reason };
              slot.failures <- t.attempt_cap + 1;
              Hashtbl.replace t.slots id slot;
              set_state_gauges slot
            | `Open (epochs, seed) -> (
              let slot = make_slot t id ~epochs ~seed in
              Hashtbl.replace t.slots id slot;
              match
                start_slot t slot ~resume:true
                  ~honor_crashes:(slot.specs <> [])
              with
              | Ok _ -> ()
              | Error msg ->
                (* A run whose horizon already completed has nothing to
                   resume; close it rather than spinning the retry
                   ladder against an immutable store. *)
                let completed =
                  let lower = String.lowercase_ascii msg in
                  let has needle =
                    let nl = String.length needle and ll = String.length lower in
                    let rec at i =
                      i + nl <= ll
                      && (String.sub lower i nl = needle || at (i + 1))
                    in
                    at 0
                  in
                  has "complete"
                in
                if completed then begin
                  slot.state <- Closed;
                  manifest_append t (M_closed { run = id });
                  set_state_gauges slot
                end
                else
                  ignore
                    (fail_slot t slot ~now_us
                       ~cause:("startup resume failed: " ^ msg)
                      : string)))
          opened;
        if Hashtbl.length t.slots = 0 then
          Error (Printf.sprintf "%s: every recorded run is closed" root)
        else Ok t
      end
    end
    else begin
      (* A fresh daemon is a fresh world: truncate the manifest and
         open [runs] runs under the base config. *)
      (try Sys.remove (manifest_path root) with Sys_error _ -> ());
      let rec open_ids id err =
        match err with
        | Some _ -> err
        | None ->
          if id >= runs then None
          else
            let slot =
              make_slot t id ~epochs:market.Epochs.epochs
                ~seed:market.Epochs.seed
            in
            Hashtbl.replace t.slots id slot;
            (match start_slot t slot ~resume:false ~honor_crashes:false with
            | Ok _ ->
              manifest_append t
                (M_opened
                   { run = id; epochs = market.Epochs.epochs;
                     seed = market.Epochs.seed });
              open_ids (id + 1) None
            | Error msg ->
              Some (Printf.sprintf "run %d: %s" id msg))
      in
      match open_ids 0 None with Some msg -> Error msg | None -> Ok t
    end

let set_flush t f =
  t.flush <- f;
  Hashtbl.iter
    (fun _ s -> match s.engine with Some e -> Engine.set_flush e f | None -> ())
    t.slots

let banner t =
  let per_run =
    slots_sorted t
    |> List.map (fun s ->
           Printf.sprintf "run %d: %s" s.sid
             (match s.engine with
             | Some e -> Engine.banner e
             | None -> state_name s.state))
    |> String.concat "\n"
  in
  Printf.sprintf "poc daemon: root=%s runs=%d/%d market[%s]\n%s" t.root
    (open_count t) t.max_runs
    (Epochs.describe_config t.base_market)
    per_run

let run_info s =
  {
    id = s.sid;
    state = s.state;
    next_epoch =
      (match s.engine with Some e -> Engine.next_epoch e | None -> None);
    horizon = s.m.Epochs.epochs;
    queue = (match s.engine with Some e -> Engine.queue_depth e | None -> 0);
  }

let runs t = List.map run_info (slots_sorted t)
let state_of t id = Option.map (fun s -> s.state) (Hashtbl.find_opt t.slots id)
let store_path t id = Option.map (fun s -> s.store) (Hashtbl.find_opt t.slots id)

(* --- dispatch -------------------------------------------------------------- *)

let describe_info i =
  Printf.sprintf "run=%d state=%s next=%s horizon=%d queue=%d" i.id
    (state_name i.state)
    (match (i.state, i.next_epoch) with
    | (Serving | Starting), Some e -> string_of_int e
    | (Serving | Starting), None -> "done"
    | _ -> "-")
    i.horizon i.queue

let list_runs t =
  let lines = List.map (fun s -> describe_info (run_info s)) (slots_sorted t) in
  ( List.map Protocol.continuation lines
    @ [ Printf.sprintf "OK runs=%d max=%d" (List.length lines) t.max_runs ],
    Engine.Continue )

let open_run t ~run ~epochs ~seed =
  let id =
    match run with
    | Some id -> id
    | None ->
      1 + Hashtbl.fold (fun id _ acc -> max id acc) t.slots (-1)
  in
  if Hashtbl.mem t.slots id then
    ([ Printf.sprintf "ERR run %d already exists" id ], Engine.Continue)
  else if open_count t >= t.max_runs then
    ( [ Printf.sprintf "BUSY open retry_after=1.000 at max-runs=%d" t.max_runs ],
      Engine.Continue )
  else begin
    let epochs = Option.value epochs ~default:t.base_market.Epochs.epochs in
    let seed = Option.value seed ~default:t.base_market.Epochs.seed in
    let slot = make_slot t id ~epochs ~seed in
    Hashtbl.replace t.slots id slot;
    match start_slot t slot ~resume:false ~honor_crashes:false with
    | Ok engine ->
      manifest_append t (M_opened { run = id; epochs; seed });
      ( [ Printf.sprintf "OK run=%d opened next=%s horizon=%d" id
            (match Engine.next_epoch engine with
            | Some e -> string_of_int e
            | None -> "done")
            epochs ],
        Engine.Continue )
    | Error msg ->
      Hashtbl.remove t.slots id;
      ([ Printf.sprintf "ERR open run %d: %s" id msg ], Engine.Continue)
  end

let close_run t ~run =
  match Hashtbl.find_opt t.slots run with
  | None -> ([ Printf.sprintf "ERR run %d unknown" run ], Engine.Continue)
  | Some slot -> (
    match slot.state with
    | Closed -> ([ Printf.sprintf "GONE run=%d closed" run ], Engine.Continue)
    | Quarantined { cause } ->
      ( [ Printf.sprintf "GONE run=%d quarantined: %s" run cause ],
        Engine.Continue )
    | Starting | Serving | Failing _ ->
      (match slot.engine with Some e -> Engine.suspend e | None -> ());
      slot.engine <- None;
      slot.state <- Closed;
      manifest_append t (M_closed { run });
      set_state_gauges slot;
      ([ Printf.sprintf "OK run=%d closed" run ], Engine.Continue))

let metrics_dump () =
  let body = Metrics.to_prometheus Metrics.default in
  let lines =
    String.split_on_char '\n' body
    |> List.filter (fun l -> l <> "")
    |> List.map Protocol.continuation
  in
  ( lines @ [ Printf.sprintf "OK metrics bytes=%d" (String.length body) ],
    Engine.Continue )

let quiesce_all t =
  let queue = ref 0 in
  let n = ref 0 in
  List.iter
    (fun slot ->
      match slot.engine with
      | Some e ->
        ignore (Engine.handle e Protocol.Quiesce : string list * Engine.action);
        incr n;
        queue := !queue + Engine.queue_depth e
      | None -> ())
    (slots_sorted t);
  t.flush ();
  ( [ Printf.sprintf "OK quiesced runs=%d queue=%d" !n !queue ],
    Engine.Continue )

let shutdown_all t =
  let serving = List.filter (fun s -> s.engine <> None) (slots_sorted t) in
  let all_done =
    List.for_all
      (fun s ->
        match s.engine with
        | Some e -> Engine.next_epoch e = None
        | None -> true)
      serving
  in
  let earliest =
    List.filter_map
      (fun s -> Option.bind s.engine Engine.next_epoch)
      serving
    |> List.fold_left (fun acc e -> match acc with
         | None -> Some e
         | Some a -> Some (min a e)) None
  in
  List.iter
    (fun s ->
      match s.engine with
      | Some e ->
        (* A completed horizon closes for good — record it so a restart
           does not try to resume an immutable store. *)
        if Engine.next_epoch e = None then begin
          manifest_append t (M_closed { run = s.sid });
          s.state <- Closed
        end;
        Engine.suspend e;
        s.engine <- None;
        set_state_gauges s
      | None -> ())
    serving;
  t.flush ();
  let line =
    if all_done then Printf.sprintf "BYE complete runs=%d" (List.length serving)
    else
      Printf.sprintf "BYE resumable next=%s runs=%d"
        (match earliest with Some e -> string_of_int e | None -> "done")
        (List.length serving)
  in
  ([ line ], Engine.Stop 0)

let route t ~now_us run req =
  match Hashtbl.find_opt t.slots run with
  | None -> ([ Printf.sprintf "ERR run %d unknown" run ], Engine.Continue)
  | Some slot -> (
    match slot.state with
    | Closed -> ([ Printf.sprintf "GONE run=%d closed" run ], Engine.Continue)
    | Quarantined { cause } ->
      ( [ Printf.sprintf "GONE run=%d quarantined: %s" run cause ],
        Engine.Continue )
    | Failing { retry_at_us; attempts; _ } ->
      let remaining = Float.max 0.001 ((retry_at_us -. now_us) *. 1e-6) in
      ( [ Printf.sprintf "BUSY run=%d retry_after=%.3f failing attempts=%d" run
            remaining attempts ],
        Engine.Continue )
    | Starting ->
      ([ Printf.sprintf "BUSY run=%d retry_after=0.050 starting" run ],
       Engine.Continue)
    | Serving -> (
      let engine = Option.get slot.engine in
      match Engine.handle engine req with
      | lines, Engine.Continue -> (lines, Engine.Continue)
      | lines, Engine.Stop _ ->
        (* The engine's unrecoverable-error path (SHUTDOWN never reaches
           a single run): that run fails; the daemon does not. *)
        ignore
          (fail_slot t slot ~now_us ~cause:"engine declared unrecoverable"
            : string);
        (lines, Engine.Continue)
      | exception Supervisor.Injected_crash { epoch; phase } ->
        (* The per-run failure domain: the crash consumed its spec, the
           loop is dead, the journal is closed (and, for a storage spec,
           damaged).  Absorb it here — other runs keep settling. *)
        slot.specs <-
          List.filter (fun sp -> not (spec_fired ~epoch ~phase sp)) slot.specs;
        let line =
          fail_slot t slot ~now_us
            ~cause:
              (Printf.sprintf "injected crash epoch=%d phase=%s" epoch
                 (Fault.phase_to_string phase))
        in
        ([ line ], Engine.Continue)))

let dispatch t cmd =
  let now_us = Clock.now_us () in
  match cmd with
  | Protocol.List_runs -> list_runs t
  | Protocol.Open_run { run; epochs; seed } -> open_run t ~run ~epochs ~seed
  | Protocol.Close_run { run } -> close_run t ~run
  | Protocol.Scoped { req = Protocol.Shutdown; _ } -> shutdown_all t
  | Protocol.Scoped { req = Protocol.Quiesce; _ } -> quiesce_all t
  | Protocol.Scoped { req = Protocol.Metrics_dump; _ } -> metrics_dump ()
  | Protocol.Scoped { run; req } -> route t ~now_us run req

let suspend_all t =
  List.iter
    (fun s ->
      match s.engine with
      | Some e ->
        if Engine.next_epoch e = None then begin
          manifest_append t (M_closed { run = s.sid });
          s.state <- Closed
        end;
        (try Engine.suspend e
         with e ->
           prerr_endline
             (Printf.sprintf "poc daemon: run %d suspend failed: %s" s.sid
                (Printexc.to_string e)));
        s.engine <- None
      | None -> ())
    (slots_sorted t);
  t.flush ()
