(** The daemon's single-writer core: a {!Poc_resilience.Supervisor}
    loop held open across requests, fronted by admission control and
    the durable intake log — everything [poc-cli serve] does except the
    socket.

    The engine is deliberately transport-free so tests and benches can
    drive the exact production request path ({!handle}) in-process.
    One engine owns one supervised run: requests arrive strictly
    sequentially (the server's event loop is the single writer), live
    updates wait in the {!Admission} queue until the next [EPOCH]
    request folds them into the market, and every admission is durable
    in the {!Intake} log before the client sees [OK].

    Recovery is layered:

    - {e transient disk errors} retry with jittered exponential backoff
      ({!retrying_disk}), counted in [poc_daemon_disk_retries_total];
    - {e unexpected epoch failures} recover in place: the journal is
      suspended, resumed from its last durable checkpoint, and the
      client told [BUSY] — counted in [poc_daemon_recoveries_total];
    - {e process death} (including SIGKILL) recovers on restart with
      [resume:true]: the journal checkpoint plus the intake log's
      re-applied updates reproduce the uninterrupted run byte for
      byte;
    - {e injected crashes} ([Supervisor.Injected_crash]) propagate to
      the server, which exits 10 exactly like [poc-cli supervise]. *)

module Supervisor = Poc_resilience.Supervisor
module Disk = Poc_resilience.Disk
module Fault = Poc_resilience.Fault
module Ladder = Poc_resilience.Ladder
module Black_box = Poc_resilience.Black_box

type t

type action =
  | Continue
  | Stop of int  (** close the service and exit with this code *)

val create :
  ?ladder:Ladder.config ->
  ?snapshot_every:int ->
  ?segment_bytes:int ->
  ?disk:Disk.t ->
  ?pool:Poc_util.Pool.t ->
  ?flight:Black_box.t ->
  ?high_water:int ->
  ?resume:bool ->
  ?honor_crashes:bool ->
  store:string ->
  intake:string ->
  Poc_core.Planner.plan ->
  market:Poc_market.Epochs.config ->
  schedule:Fault.schedule ->
  (t, string) result
(** Open the supervised loop ([resume:false], the default, starts a
    fresh journal at [store]; [resume:true] replays it and the intake
    log, re-queues still-pending updates and restores the dedup floor).
    Same validation failures as [Supervisor.open_run] surface as
    [Invalid_argument]; resume problems as [Error].

    [honor_crashes] (default false) re-arms the schedule's not-yet-fired
    crash/storage specs on every resume path — startup [resume:true] and
    the in-place recovery after an epoch failure — exactly as
    [Supervisor.resume ~honor_crashes:true].  The registry's
    restart-with-backoff sets it so a retried run walks the remainder of
    its kill chain instead of silently disarming it.

    [flight] attaches a black-box recorder, threaded into the
    supervised loop exactly as [Supervisor.open_run ?flight] and
    additionally fed by the request path: every durable admission
    leaves an [admit] event, every applied update a
    [admit_to_settle_s] metric record (also observed into
    [poc_daemon_settle_seconds]), each flushed so a SIGKILL mid-epoch
    leaves the in-flight request story on disk.  [STATUS] reports
    [flight=on:<records>] / [flight=off] and the gauge
    [poc_daemon_flight_records] mirrors it. *)

val handle : t -> Protocol.request -> string list * action
(** Process one request; returns the response lines (continuations
    first, terminal last — see {!Protocol}) and what the server should
    do next.  Counts the request and observes its latency.  Raises
    [Supervisor.Injected_crash] when a scheduled crash fault fires
    mid-[EPOCH]. *)

val set_flush : t -> (unit -> unit) -> unit
(** Install the observability flush hook ([QUIESCE] and [SHUTDOWN]
    invoke it); defaults to a no-op. *)

val next_epoch : t -> int option
val queue_depth : t -> int

val banner : t -> string
(** One-line startup description (store, horizon, queue bound, market
    config). *)

val suspend : t -> unit
(** Close the journal resumably and the intake log — the
    signal-shutdown path when the server must exit without a client
    [SHUTDOWN]. *)

val abandon : t -> unit
(** Best-effort {!suspend} for a run whose loop may already be dead
    (after [Supervisor.Injected_crash] the journal is closed and the
    loop unusable): closes whatever is still open, swallows every
    error, never raises.  The registry calls this before marking a run
    [Failing]. *)

val retrying_disk : ?policy:Disk.retry_policy -> ?ops:Disk.ops -> unit -> Disk.t
(** A disk whose transient [Sys_error]s retry under [policy] (default
    {!Disk.default_retry_policy}), each retry counted in
    [poc_daemon_disk_retries_total]. *)
