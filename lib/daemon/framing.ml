module Codec = Poc_util.Codec

let magic = '\xB1'
let max_payload = 1 lsl 20

type msg =
  | Open of { run : int option; epochs : int option; seed : int option }
  | Bid of { run : int; seq : int; bp : int; factor : float; priority : int }
  | Matrix of { run : int; seq : int; factor : float; priority : int }
  | Epoch of { run : int; count : int }
  | Status of { run : int }
  | Scrub of { run : int }
  | Close of { run : int }
  | Runs
  | Metrics
  | Quiesce
  | Shutdown

type reply = { run : int; final : bool; line : string }
type item = Msg of msg | Reply of reply

let to_command : msg -> Protocol.command = function
  | Open { run; epochs; seed } -> Protocol.Open_run { run; epochs; seed }
  | Bid { run; seq; bp; factor; priority } ->
    Protocol.Scoped { run; req = Protocol.Bid { seq; bp; factor; priority } }
  | Matrix { run; seq; factor; priority } ->
    Protocol.Scoped { run; req = Protocol.Matrix { seq; factor; priority } }
  | Epoch { run; count } -> Protocol.Scoped { run; req = Protocol.Epoch count }
  | Status { run } -> Protocol.Scoped { run; req = Protocol.Status }
  | Scrub { run } -> Protocol.Scoped { run; req = Protocol.Scrub }
  | Close { run } -> Protocol.Close_run { run }
  | Runs -> Protocol.List_runs
  | Metrics -> Protocol.Scoped { run = 0; req = Protocol.Metrics_dump }
  | Quiesce -> Protocol.Scoped { run = 0; req = Protocol.Quiesce }
  | Shutdown -> Protocol.Scoped { run = 0; req = Protocol.Shutdown }

let of_command : Protocol.command -> msg = function
  | Protocol.Scoped { run; req } -> (
    match req with
    | Protocol.Bid { seq; bp; factor; priority } ->
      Bid { run; seq; bp; factor; priority }
    | Protocol.Matrix { seq; factor; priority } ->
      Matrix { run; seq; factor; priority }
    | Protocol.Epoch count -> Epoch { run; count }
    | Protocol.Status -> Status { run }
    | Protocol.Scrub -> Scrub { run }
    | Protocol.Metrics_dump -> Metrics
    | Protocol.Quiesce -> Quiesce
    | Protocol.Shutdown -> Shutdown)
  | Protocol.Open_run { run; epochs; seed } -> Open { run; epochs; seed }
  | Protocol.Close_run { run } -> Close { run }
  | Protocol.List_runs -> Runs

(* Wire tags.  1..11 are requests, 64/65 replies; gaps left for
   future verbs so old decoders drop (rather than misread) new ones. *)
let tag_open = 1
let tag_bid = 2
let tag_matrix = 3
let tag_epoch = 4
let tag_status = 5
let tag_scrub = 6
let tag_close = 7
let tag_runs = 8
let tag_metrics = 9
let tag_quiesce = 10
let tag_shutdown = 11
let tag_reply_more = 64
let tag_reply_final = 65

let encode_payload item =
  let w = Codec.writer () in
  (match item with
  | Msg (Open { run; epochs; seed }) ->
    Codec.put_u8 w tag_open;
    Codec.put_option w Codec.put_int run;
    Codec.put_option w Codec.put_int epochs;
    Codec.put_option w Codec.put_int seed
  | Msg (Bid { run; seq; bp; factor; priority }) ->
    Codec.put_u8 w tag_bid;
    Codec.put_int w run;
    Codec.put_int w seq;
    Codec.put_int w bp;
    Codec.put_f64 w factor;
    Codec.put_int w priority
  | Msg (Matrix { run; seq; factor; priority }) ->
    Codec.put_u8 w tag_matrix;
    Codec.put_int w run;
    Codec.put_int w seq;
    Codec.put_f64 w factor;
    Codec.put_int w priority
  | Msg (Epoch { run; count }) ->
    Codec.put_u8 w tag_epoch;
    Codec.put_int w run;
    Codec.put_int w count
  | Msg (Status { run }) ->
    Codec.put_u8 w tag_status;
    Codec.put_int w run
  | Msg (Scrub { run }) ->
    Codec.put_u8 w tag_scrub;
    Codec.put_int w run
  | Msg (Close { run }) ->
    Codec.put_u8 w tag_close;
    Codec.put_int w run
  | Msg Runs -> Codec.put_u8 w tag_runs
  | Msg Metrics -> Codec.put_u8 w tag_metrics
  | Msg Quiesce -> Codec.put_u8 w tag_quiesce
  | Msg Shutdown -> Codec.put_u8 w tag_shutdown
  | Reply { run; final; line } ->
    Codec.put_u8 w (if final then tag_reply_final else tag_reply_more);
    Codec.put_int w run;
    Codec.put_string w line);
  Codec.contents w

let encode item =
  let framed = Codec.frame (encode_payload item) in
  let b = Buffer.create (String.length framed + 1) in
  Buffer.add_char b magic;
  Buffer.add_string b framed;
  Buffer.contents b

let encode_msg m = encode (Msg m)
let encode_reply r = encode (Reply r)

let decode_payload payload =
  let r = Codec.reader payload in
  let tag = Codec.get_u8 r in
  let item =
    if tag = tag_open then
      let run = Codec.get_option r Codec.get_int in
      let epochs = Codec.get_option r Codec.get_int in
      let seed = Codec.get_option r Codec.get_int in
      Msg (Open { run; epochs; seed })
    else if tag = tag_bid then
      let run = Codec.get_int r in
      let seq = Codec.get_int r in
      let bp = Codec.get_int r in
      let factor = Codec.get_f64 r in
      let priority = Codec.get_int r in
      Msg (Bid { run; seq; bp; factor; priority })
    else if tag = tag_matrix then
      let run = Codec.get_int r in
      let seq = Codec.get_int r in
      let factor = Codec.get_f64 r in
      let priority = Codec.get_int r in
      Msg (Matrix { run; seq; factor; priority })
    else if tag = tag_epoch then
      let run = Codec.get_int r in
      let count = Codec.get_int r in
      Msg (Epoch { run; count })
    else if tag = tag_status then Msg (Status { run = Codec.get_int r })
    else if tag = tag_scrub then Msg (Scrub { run = Codec.get_int r })
    else if tag = tag_close then Msg (Close { run = Codec.get_int r })
    else if tag = tag_runs then Msg Runs
    else if tag = tag_metrics then Msg Metrics
    else if tag = tag_quiesce then Msg Quiesce
    else if tag = tag_shutdown then Msg Shutdown
    else if tag = tag_reply_more || tag = tag_reply_final then
      let run = Codec.get_int r in
      let line = Codec.get_string r in
      Reply { run; final = tag = tag_reply_final; line }
    else raise (Codec.Corrupt (Printf.sprintf "framing tag %d" tag))
  in
  if not (Codec.at_end r) then
    raise (Codec.Corrupt "framing: trailing bytes in payload");
  item

type progress = { items : item list; consumed : int; dropped : int }

(* A complete-but-corrupt frame at [pos] (checksum mismatch, or a
   length field past [max_payload]) is distinguished from one still in
   flight: only the former abandons the frame and rescans for the next
   magic byte.  [Codec.next_frame] answers [Torn] for both, so peek at
   the header ourselves. *)
let frame_is_corrupt data ~pos =
  let total = String.length data in
  if pos + 8 > total then false (* header still in flight *)
  else
    let b i = Char.code data.[pos + i] in
    let len = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
    if len > max_payload then true
    else pos + 8 + len <= total (* whole frame present yet still Torn: CRC *)

let decode_stream data ~pos =
  let total = String.length data in
  let resync_from p =
    match String.index_from_opt data p magic with
    | Some j -> j
    | None -> total
  in
  let rec go pos items dropped =
    if pos >= total then { items = List.rev items; consumed = pos; dropped }
    else if data.[pos] <> magic then
      (* Garbage between frames: skip to the next candidate magic. *)
      go (resync_from (pos + 1)) items (dropped + 1)
    else
      match Codec.next_frame ~max_payload data ~pos:(pos + 1) with
      | Codec.Frame { payload; next } -> (
        match decode_payload payload with
        | item -> go next (item :: items) dropped
        | exception Codec.Corrupt _ ->
          (* Checksum-valid but undecodable (version skew or a garbled
             tag): drop the one frame, keep the connection. *)
          go next items (dropped + 1))
      | Codec.End | Codec.Torn ->
        if frame_is_corrupt data ~pos:(pos + 1) then
          (* Garbled in transit: abandon this frame and hunt for the
             next magic byte — one bad frame, not a dead connection. *)
          go (resync_from (pos + 1)) items (dropped + 1)
        else
          (* Incomplete: wait for more bytes from this offset. *)
          { items = List.rev items; consumed = pos; dropped }
  in
  go pos [] 0
