(** The daemon's binary framed protocol: run-id-addressed,
    length-prefixed, checksummed.

    Each message on the wire is one byte of {!magic} ([0xB1] — outside
    ASCII, so the first byte of a connection cleanly discriminates
    framed clients from line-protocol ones) followed by a
    {!Poc_util.Codec} frame ([u32 length | u32 CRC-32 | payload]).  The
    payload is a tag byte plus the message fields; floats travel as
    IEEE-754 bits, so a bid factor round-trips bit-exactly — no
    [%.17g] printing on the hot path.

    Damage tolerance is per-frame, not per-connection: a frame whose
    checksum fails, whose length field exceeds {!max_payload}, or whose
    payload is undecodable is {e dropped} and {!decode_stream} resyncs
    at the next magic byte.  One garbled frame costs that frame (the
    client notices the missing reply and retries by seq); it never
    kills the connection.  A frame merely still in flight — header or
    payload not yet fully read — is left unconsumed for the next read.

    Replies mirror the line protocol's framing: zero or more
    [final = false] frames (continuation lines) then exactly one
    [final = true] frame, each carrying the run id it answers for and
    the same text a line-protocol client would see. *)

module Codec = Poc_util.Codec

val magic : char
(** First byte of every frame, [0xB1]. *)

val max_payload : int
(** Upper bound (1 MiB) a decoder accepts for a declared payload
    length; anything larger reads as corruption, not an allocation. *)

type msg =
  | Open of { run : int option; epochs : int option; seed : int option }
  | Bid of { run : int; seq : int; bp : int; factor : float; priority : int }
  | Matrix of { run : int; seq : int; factor : float; priority : int }
  | Epoch of { run : int; count : int }
  | Status of { run : int }
  | Scrub of { run : int }
  | Close of { run : int }
  | Runs
  | Metrics
  | Quiesce
  | Shutdown
      (** Client-to-daemon messages; the run-scoped ones carry their
          target run id inline (the line protocol's [RUN <id>]
          prefix). *)

type reply = { run : int; final : bool; line : string }
(** Daemon-to-client: the response text a line client would see, tagged
    with the run it concerns.  [final = false] frames are continuation
    lines. *)

type item = Msg of msg | Reply of reply

val to_command : msg -> Protocol.command
(** The registry-facing command a message denotes.  [Metrics], [Quiesce]
    and [Shutdown] map to run-0 scoped requests (the registry treats
    them daemon-wide wherever addressed). *)

val of_command : Protocol.command -> msg
(** Inverse of {!to_command} on run-scoped commands;
    [to_command (of_command c) = c]. *)

val encode_msg : msg -> string
val encode_reply : reply -> string

type progress = {
  items : item list;  (** decoded messages/replies, in wire order *)
  consumed : int;
      (** offset of the first unconsumed byte — resume the next decode
          here once more bytes arrive *)
  dropped : int;  (** corrupt frames / garbage runs skipped past *)
}

val decode_stream : string -> pos:int -> progress
(** Decode every complete frame starting at [pos].  Corrupt frames and
    inter-frame garbage are skipped (counted in [dropped]) with resync
    at the next {!magic} byte; an incomplete trailing frame is left
    unconsumed.  Never raises. *)
