type request =
  | Bid of { seq : int; bp : int; factor : float; priority : int }
  | Matrix of { seq : int; factor : float; priority : int }
  | Epoch of int
  | Status
  | Metrics_dump
  | Scrub
  | Quiesce
  | Shutdown

let trim line =
  let line = String.trim line in
  (* String.trim already eats a trailing CR (it is whitespace), but be
     explicit about the telnet-style client case. *)
  if String.length line > 0 && line.[String.length line - 1] = '\r' then
    String.sub line 0 (String.length line - 1)
  else line

let tokens line =
  String.split_on_char ' ' (trim line) |> List.filter (fun s -> s <> "")

let int_tok name s =
  match int_of_string_opt s with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "%s: expected an integer, got %S" name s)

let float_tok name s =
  match float_of_string_opt s with
  | Some f when Float.is_finite f -> Ok f
  | Some _ -> Error (Printf.sprintf "%s: must be finite" name)
  | None -> Error (Printf.sprintf "%s: expected a number, got %S" name s)

let ( let* ) = Result.bind

let parse line =
  match tokens line with
  | [] -> Error "empty request"
  | verb :: args -> (
    match (verb, args) with
    | "BID", [ seq; bp; factor ] | "BID", [ seq; bp; factor; _ ] ->
      let* seq = int_tok "seq" seq in
      let* bp = int_tok "bp" bp in
      let* factor = float_tok "factor" factor in
      let* priority =
        match args with
        | [ _; _; _; p ] -> int_tok "priority" p
        | _ -> Ok 0
      in
      Ok (Bid { seq; bp; factor; priority })
    | "BID", _ -> Error "BID: expected <seq> <bp> <factor> [<priority>]"
    | "MATRIX", [ seq; factor ] | "MATRIX", [ seq; factor; _ ] ->
      let* seq = int_tok "seq" seq in
      let* factor = float_tok "factor" factor in
      let* priority =
        match args with [ _; _; p ] -> int_tok "priority" p | _ -> Ok 0
      in
      Ok (Matrix { seq; factor; priority })
    | "MATRIX", _ -> Error "MATRIX: expected <seq> <factor> [<priority>]"
    | "EPOCH", [] -> Ok (Epoch 1)
    | "EPOCH", [ n ] ->
      let* n = int_tok "count" n in
      if n >= 1 then Ok (Epoch n) else Error "EPOCH: count must be >= 1"
    | "EPOCH", _ -> Error "EPOCH: expected at most one count"
    | "STATUS", [] -> Ok Status
    | "METRICS", [] -> Ok Metrics_dump
    | "SCRUB", [] -> Ok Scrub
    | "QUIESCE", [] -> Ok Quiesce
    | "SHUTDOWN", [] -> Ok Shutdown
    | ("STATUS" | "METRICS" | "SCRUB" | "QUIESCE" | "SHUTDOWN"), _ :: _ ->
      Error (verb ^ ": takes no arguments")
    | _ ->
      Error
        (Printf.sprintf
           "unknown request %S: expected BID, MATRIX, EPOCH, STATUS, METRICS, \
            SCRUB, QUIESCE or SHUTDOWN"
           verb))

let render = function
  | Bid { seq; bp; factor; priority } ->
    Printf.sprintf "BID %d %d %.17g %d" seq bp factor priority
  | Matrix { seq; factor; priority } ->
    Printf.sprintf "MATRIX %d %.17g %d" seq factor priority
  | Epoch n -> Printf.sprintf "EPOCH %d" n
  | Status -> "STATUS"
  | Metrics_dump -> "METRICS"
  | Scrub -> "SCRUB"
  | Quiesce -> "QUIESCE"
  | Shutdown -> "SHUTDOWN"

let is_terminal line =
  not (String.length line >= 2 && line.[0] = '|' && line.[1] = ' ')

let continuation payload =
  if String.contains payload '\n' then
    invalid_arg "Protocol.continuation: payload contains a newline";
  "| " ^ payload

let payload line =
  if is_terminal line then line
  else String.sub line 2 (String.length line - 2)
