type request =
  | Bid of { seq : int; bp : int; factor : float; priority : int }
  | Matrix of { seq : int; factor : float; priority : int }
  | Epoch of int
  | Status
  | Metrics_dump
  | Scrub
  | Quiesce
  | Shutdown

let trim line =
  let line = String.trim line in
  (* String.trim already eats a trailing CR (it is whitespace), but be
     explicit about the telnet-style client case. *)
  if String.length line > 0 && line.[String.length line - 1] = '\r' then
    String.sub line 0 (String.length line - 1)
  else line

let tokens line =
  String.split_on_char ' ' (trim line) |> List.filter (fun s -> s <> "")

let int_tok name s =
  match int_of_string_opt s with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "%s: expected an integer, got %S" name s)

let float_tok name s =
  match float_of_string_opt s with
  | Some f when Float.is_finite f -> Ok f
  | Some _ -> Error (Printf.sprintf "%s: must be finite" name)
  | None -> Error (Printf.sprintf "%s: expected a number, got %S" name s)

let ( let* ) = Result.bind

let parse line =
  match tokens line with
  | [] -> Error "empty request"
  | verb :: args -> (
    match (verb, args) with
    | "BID", [ seq; bp; factor ] | "BID", [ seq; bp; factor; _ ] ->
      let* seq = int_tok "seq" seq in
      let* bp = int_tok "bp" bp in
      let* factor = float_tok "factor" factor in
      let* priority =
        match args with
        | [ _; _; _; p ] -> int_tok "priority" p
        | _ -> Ok 0
      in
      Ok (Bid { seq; bp; factor; priority })
    | "BID", _ -> Error "BID: expected <seq> <bp> <factor> [<priority>]"
    | "MATRIX", [ seq; factor ] | "MATRIX", [ seq; factor; _ ] ->
      let* seq = int_tok "seq" seq in
      let* factor = float_tok "factor" factor in
      let* priority =
        match args with [ _; _; p ] -> int_tok "priority" p | _ -> Ok 0
      in
      Ok (Matrix { seq; factor; priority })
    | "MATRIX", _ -> Error "MATRIX: expected <seq> <factor> [<priority>]"
    | "EPOCH", [] -> Ok (Epoch 1)
    | "EPOCH", [ n ] ->
      let* n = int_tok "count" n in
      if n >= 1 then Ok (Epoch n) else Error "EPOCH: count must be >= 1"
    | "EPOCH", _ -> Error "EPOCH: expected at most one count"
    | "STATUS", [] -> Ok Status
    | "METRICS", [] -> Ok Metrics_dump
    | "SCRUB", [] -> Ok Scrub
    | "QUIESCE", [] -> Ok Quiesce
    | "SHUTDOWN", [] -> Ok Shutdown
    | ("STATUS" | "METRICS" | "SCRUB" | "QUIESCE" | "SHUTDOWN"), _ :: _ ->
      Error (verb ^ ": takes no arguments")
    | _ ->
      Error
        (Printf.sprintf
           "unknown request %S: expected BID, MATRIX, EPOCH, STATUS, METRICS, \
            SCRUB, QUIESCE or SHUTDOWN"
           verb))

(* --- run-addressed command layer ------------------------------------------ *)

type command =
  | Scoped of { run : int; req : request }
  | Open_run of { run : int option; epochs : int option; seed : int option }
  | Close_run of { run : int }
  | List_runs

let parse_open args =
  let* epochs =
    match args with
    | [] -> Ok None
    | e :: _ -> Result.map Option.some (int_tok "epochs" e)
  in
  let* seed =
    match args with
    | [ _; s ] | [ _; s; _ ] -> Result.map Option.some (int_tok "seed" s)
    | _ :: _ :: _ :: _ -> Error "OPEN: expected [<epochs> [<seed>]]"
    | _ -> Ok None
  in
  match args with
  | _ :: _ :: _ :: _ -> Error "OPEN: expected [<epochs> [<seed>]]"
  | _ -> Ok (Open_run { run = None; epochs; seed })

let parse_command line =
  match tokens line with
  | [] -> Error "empty request"
  | "RUN" :: id :: rest -> (
    let* run = int_tok "run" id in
    if run < 0 then Error "RUN: id must be >= 0"
    else
      match rest with
      | [] -> Error "RUN: expected a request after the id"
      | "OPEN" :: args -> (
        match parse_open args with
        | Ok (Open_run o) -> Ok (Open_run { o with run = Some run })
        | other -> other)
      | _ ->
        let* req = parse (String.concat " " rest) in
        Ok (Scoped { run; req }))
  | [ "RUN" ] -> Error "RUN: expected <id> <request>"
  | "OPEN" :: args -> parse_open args
  | [ "CLOSE"; id ] ->
    let* run = int_tok "run" id in
    Ok (Close_run { run })
  | "CLOSE" :: _ -> Error "CLOSE: expected exactly one run id"
  | [ "RUNS" ] -> Ok List_runs
  | "RUNS" :: _ -> Error "RUNS: takes no arguments"
  | _ ->
    let* req = parse line in
    Ok (Scoped { run = 0; req })

let render = function
  | Bid { seq; bp; factor; priority } ->
    Printf.sprintf "BID %d %d %.17g %d" seq bp factor priority
  | Matrix { seq; factor; priority } ->
    Printf.sprintf "MATRIX %d %.17g %d" seq factor priority
  | Epoch n -> Printf.sprintf "EPOCH %d" n
  | Status -> "STATUS"
  | Metrics_dump -> "METRICS"
  | Scrub -> "SCRUB"
  | Quiesce -> "QUIESCE"
  | Shutdown -> "SHUTDOWN"

let render_command = function
  | Scoped { run = 0; req } -> render req
  | Scoped { run; req } -> Printf.sprintf "RUN %d %s" run (render req)
  | Open_run { run; epochs; seed } ->
    let prefix =
      match run with None -> "" | Some id -> Printf.sprintf "RUN %d " id
    in
    let args =
      match (epochs, seed) with
      | None, None -> ""
      | Some e, None -> Printf.sprintf " %d" e
      | Some e, Some s -> Printf.sprintf " %d %d" e s
      | None, Some _ ->
        invalid_arg "Protocol.render_command: OPEN seed without epochs"
    in
    prefix ^ "OPEN" ^ args
  | Close_run { run } -> Printf.sprintf "CLOSE %d" run
  | List_runs -> "RUNS"

let is_terminal line =
  not (String.length line >= 2 && line.[0] = '|' && line.[1] = ' ')

let continuation payload =
  if String.contains payload '\n' then
    invalid_arg "Protocol.continuation: payload contains a newline";
  "| " ^ payload

let payload line =
  if is_terminal line then line
  else String.sub line 2 (String.length line - 2)
