(** The daemon's durable intake log: the exactly-once half of live
    updates.

    The supervisor deliberately does not journal live updates
    ({!Poc_resilience.Supervisor.update}) — a resumed run must re-apply
    the same updates at the same epochs to reproduce the same bytes.
    The intake log records exactly that: one checksummed
    {!Poc_util.Codec} frame per admitted update, flushed {e before} the
    client sees [OK], carrying the entry, its apply-epoch and the seq of
    any entry it displaced (shed) on the way in.  Displacement rides in
    the same frame as the admission that caused it, so the two are
    atomic on disk — a torn tail can never shed a victim while losing
    its displacer.

    On restart, {!reopen} replays the log (truncating a torn tail, the
    bytes of an [OK] that never reached the client) and the engine
    re-applies every surviving, unshed entry at its recorded epoch —
    which, against the journal's restored checkpoint, reproduces the
    uninterrupted run byte for byte.

    A failed append self-heals and retries: the channel is reopened and
    the file truncated back to the last durable record, then the append
    is retried under the same deterministic jittered-backoff schedule
    {!Poc_resilience.Disk.retrying} uses ([retry], default
    {!Poc_resilience.Disk.default_retry_policy}) — so a transient fault
    on the fsync-before-OK path costs latency, not the admission.  Only
    a persistently failing disk exhausts the schedule and raises, and
    even then no torn frame is left mid-log. *)

module Disk = Poc_resilience.Disk
module Supervisor = Poc_resilience.Supervisor

type record = {
  entry : Supervisor.update Admission.entry;
  displaces : int option;  (** seq shed to make room for this entry *)
}

type t

val create :
  ?disk:Disk.t ->
  ?retry:Disk.retry_policy ->
  ?sleep:(float -> unit) ->
  ?on_retry:(attempt:int -> delay:float -> string -> unit) ->
  string ->
  t
(** Fresh log at the path, truncating any previous contents.
    [on_retry] fires before each append-retry sleep (the daemon counts
    these in [poc_daemon_disk_retries_total]); [sleep] defaults to
    [Unix.sleepf] and is substitutable for tests.  Raises
    [Invalid_argument] on a malformed [retry] policy. *)

val reopen :
  ?disk:Disk.t ->
  ?retry:Disk.retry_policy ->
  ?sleep:(float -> unit) ->
  ?on_retry:(attempt:int -> delay:float -> string -> unit) ->
  string ->
  (t * record list, string) result
(** Replay the surviving records (chronological), truncate any torn
    tail, and open for append.  A missing file reopens as an empty log.
    [Error] on an undecodable (checksum-valid but malformed) record —
    version skew, not damage. *)

val read : ?disk:Disk.t -> string -> (record list * bool, string) result
(** Read-only replay for forensics: the surviving records
    (chronological) and whether a torn/undecodable tail was skipped.
    Unlike {!reopen} the file is not modified and nothing is opened for
    append.  [Error] only when the file cannot be read at all. *)

val append : t -> record -> unit
(** Append one frame and flush, retrying transient failures under the
    log's retry policy.  Raises [Sys_error] only when the disk refuses
    persistently (the whole backoff schedule exhausted), after
    restoring the file to its last durable length. *)

val close : t -> unit
val path : t -> string
