module Wan = Poc_topology.Wan
module Matrix = Poc_traffic.Matrix
module Router = Poc_mcf.Router
module Vcg = Poc_auction.Vcg
module Prng = Poc_util.Prng

type config = {
  seed : int;
  params : Wan.params;
  demand_fraction : float;
  rule : Poc_auction.Acceptability.t;
  csp_share : float;
  bid_margin : float;
}

let default_config =
  {
    seed = 42;
    params = Wan.default_params;
    demand_fraction = 1.0 /. 40.0;
    rule = Poc_auction.Acceptability.Handle_load;
    csp_share = 0.5;
    bid_margin = 0.0;
  }

let scaled_config ?(sites = 30) ?(bps = 8) config =
  let params =
    {
      config.params with
      Wan.n_sites = sites;
      n_bps = bps;
      n_operators = max bps (sites * config.params.Wan.n_operators
                             / config.params.Wan.n_sites);
      operator_min_sites = max 4 (sites / 4);
      operator_max_sites = max 6 (sites * 9 / 20);
      colocation_threshold = max 2 (bps / 4);
      external_attachments = max 3 (sites / 9);
    }
  in
  { config with params }

type plan = {
  config : config;
  wan : Wan.t;
  matrix : Matrix.t;
  problem : Vcg.problem;
  outcome : Vcg.outcome;
  routing : Router.routing;
  members : Member.t list;
}

let build ?pool config =
  if config.demand_fraction <= 0.0 then Error "demand_fraction must be positive"
  else begin
    let wan = Wan.generate ~params:config.params ~seed:config.seed () in
    let total_capacity =
      Array.fold_left
        (fun acc (l : Wan.logical_link) -> acc +. l.capacity)
        0.0 wan.links
    in
    let rng = Prng.create (config.seed * 7919) in
    let matrix =
      Matrix.gravity rng wan
        ~total_gbps:(total_capacity *. config.demand_fraction)
        ()
    in
    let problem =
      Poc_auction.Setup.problem ~margin:config.bid_margin wan matrix
        ~rule:config.rule
    in
    match Vcg.run ?pool problem with
    | None -> Error "no acceptable link selection for this traffic matrix"
    | Some outcome ->
      let in_sl = Hashtbl.create 256 in
      List.iter
        (fun id -> Hashtbl.replace in_sl id ())
        outcome.Vcg.selection.selected;
      let routing =
        Router.route
          ~enabled:(fun id -> Hashtbl.mem in_sl id)
          wan.graph
          ~demands:(Matrix.undirected_pair_demands matrix)
      in
      let members = Member.of_wan wan matrix ~csp_share:config.csp_share () in
      Ok { config; wan; matrix; problem; outcome; routing; members }
  end

let backbone_enabled plan =
  let in_sl = Hashtbl.create 256 in
  List.iter (fun id -> Hashtbl.replace in_sl id ()) plan.outcome.Vcg.selection.selected;
  fun id -> Hashtbl.mem in_sl id

let utilization_summary plan =
  let enabled = backbone_enabled plan in
  let utils =
    Poc_graph.Graph.fold_edges
      (fun e acc ->
        if enabled e.Poc_graph.Graph.id && e.capacity > 0.0 then begin
          let u = plan.routing.Router.usage.(e.id) /. e.capacity in
          if u > 0.0 then u :: acc else acc
        end
        else acc)
      plan.wan.graph []
  in
  Poc_util.Stats.summarize (Array.of_list utils)

let monthly_cost plan = plan.outcome.Vcg.total_payment
