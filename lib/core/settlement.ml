module Vcg = Poc_auction.Vcg
module Wan = Poc_topology.Wan

type party =
  | Poc
  | Bp_party of int
  | External_isp_party of int
  | Member_party of int
  | Users_of of int

type entry = { src : party; dst : party; amount : float; what : string }

type ledger = {
  entries : entry list;
  usage_price : float;
  retail_multiplier : float;
}

let of_plan (plan : Planner.plan) ?(margin = 0.0) ?(retail_multiplier = 2.5) () =
  if margin < 0.0 then invalid_arg "Settlement.of_plan: negative margin";
  if retail_multiplier < 1.0 then
    invalid_arg "Settlement.of_plan: retail multiplier below 1";
  let entries = ref [] in
  let add src dst amount what =
    if amount > 0.0 then entries := { src; dst; amount; what } :: !entries
  in
  (* POC -> BPs: the auction payments. *)
  Array.iter
    (fun (r : Vcg.bp_result) ->
      add Poc (Bp_party r.bp) r.payment "bandwidth lease (VCG payment)")
    plan.outcome.Vcg.bp_results;
  (* POC -> external ISPs: contracted virtual links in the selection. *)
  let selected = Hashtbl.create 64 in
  List.iter
    (fun id -> Hashtbl.replace selected id ())
    plan.outcome.Vcg.selection.selected;
  Array.iter
    (fun (isp : Wan.external_isp) ->
      let amount =
        Array.to_list isp.virtual_link_ids
        |> List.filter (Hashtbl.mem selected)
        |> List.fold_left
             (fun acc id -> acc +. plan.wan.links.(id).Wan.true_cost)
             0.0
      in
      add Poc (External_isp_party isp.isp_id) amount "virtual links (contract)")
    plan.wan.external_isps;
  let poc_spend =
    List.fold_left
      (fun acc e -> match e.src with Poc -> acc +. e.amount | _ -> acc)
      0.0 !entries
  in
  (* Members -> POC at the break-even posted price. *)
  let total_usage =
    List.fold_left
      (fun acc (m : Member.t) -> acc +. m.Member.monthly_gbps)
      0.0 plan.members
  in
  let usage_price =
    if total_usage <= 0.0 then 0.0
    else poc_spend *. (1.0 +. margin) /. total_usage
  in
  List.iter
    (fun (m : Member.t) ->
      let bill = m.Member.monthly_gbps *. usage_price in
      add (Member_party m.Member.id) Poc bill "POC usage";
      (* Retail: users pay their LMP; CSP members bill their own
         subscribers out of band (application revenue, not modeled
         here). *)
      if m.Member.kind = Member.Lmp then
        add (Users_of m.Member.id) (Member_party m.Member.id)
          (bill *. retail_multiplier) "retail access")
    plan.members;
  { entries = List.rev !entries; usage_price; retail_multiplier }

let net ledger party =
  List.fold_left
    (fun acc e ->
      let acc = if e.dst = party then acc +. e.amount else acc in
      if e.src = party then acc -. e.amount else acc)
    0.0 ledger.entries

let poc_net ledger = net ledger Poc

let parties ledger =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun e ->
      Hashtbl.replace tbl e.src ();
      Hashtbl.replace tbl e.dst ())
    ledger.entries;
  Hashtbl.fold (fun p () acc -> p :: acc) tbl []

let conservation ledger =
  List.fold_left (fun acc p -> acc +. net ledger p) 0.0 (parties ledger)

let check ?(tolerance = 1e-6) ledger =
  let problems = ref [] in
  let bad msg = problems := msg :: !problems in
  let c = conservation ledger in
  (* [not (<=)] rather than [>] so a NaN conservation sum also fails. *)
  if not (Float.abs c <= tolerance) then
    bad (Printf.sprintf "ledger nets to %.9f, expected 0 within %g" c tolerance);
  if not (Float.is_finite ledger.usage_price) then
    bad (Printf.sprintf "posted usage price %f is not finite" ledger.usage_price);
  match List.rev !problems with
  | [] -> Ok ()
  | ps -> Error ("Settlement: " ^ String.concat "; " ps)

let party_name (plan : Planner.plan) = function
  | Poc -> "POC"
  | Bp_party b -> plan.wan.bps.(b).Wan.bp_name
  | External_isp_party e -> plan.wan.external_isps.(e).Wan.isp_name
  | Member_party id -> (
    match List.find_opt (fun (m : Member.t) -> m.Member.id = id) plan.members with
    | Some m -> m.Member.name
    | None -> Printf.sprintf "member-%d" id)
  | Users_of id -> (
    match List.find_opt (fun (m : Member.t) -> m.Member.id = id) plan.members with
    | Some m -> Printf.sprintf "users(%s)" m.Member.name
    | None -> Printf.sprintf "users(member-%d)" id)

let render plan ledger =
  let rows =
    parties ledger
    |> List.map (fun p -> (party_name plan p, net ledger p))
    |> List.filter (fun (_, v) -> Float.abs v > 1e-6)
    |> List.sort (fun (_, a) (_, b) -> compare b a)
    |> List.map (fun (name, v) -> [ name; Printf.sprintf "%+.2f" v ])
  in
  Poc_util.Table.render
    ~align:[ Poc_util.Table.Left; Poc_util.Table.Right ]
    ~header:[ "party"; "net $/month" ] rows
