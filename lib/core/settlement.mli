(** The Section 3.2 payment structure as a double-entry ledger.

    Every entity pays directly for what it receives:

    - the POC pays BPs their auction payments and external ISPs their
      contracted virtual-link prices;
    - each LMP and directly-attached CSP pays the POC for usage at a
      single posted price per Gbps, set so the POC breaks even
      (it is a nonprofit, not a charity);
    - retail customers pay their LMP for access.

    There is deliberately no entry from CSPs to remote LMPs: that would
    be a termination fee, which the terms-of-service forbid. *)

type party =
  | Poc
  | Bp_party of int
  | External_isp_party of int
  | Member_party of int (** member id from {!Member} *)
  | Users_of of int     (** aggregated retail customers of an LMP member *)

type entry = { src : party; dst : party; amount : float; what : string }

type ledger = {
  entries : entry list;
  usage_price : float; (** posted $/Gbps/month charged by the POC *)
  retail_multiplier : float;
}

val of_plan : Planner.plan -> ?margin:float -> ?retail_multiplier:float ->
  unit -> ledger
(** Build the month's ledger from a plan.  [margin] (default 0) is a
    reserve the POC may keep on top of cost recovery; the usage price
    is (total POC spend × (1+margin)) / total member usage.
    [retail_multiplier] (default 2.5) scales what users pay their LMP
    relative to the LMP's POC bill. *)

val net : ledger -> party -> float
(** Income minus outlay for one party. *)

val poc_net : ledger -> float

val conservation : ledger -> float
(** Sum of nets over every party appearing in the ledger — always 0 up
    to float noise. *)

val check : ?tolerance:float -> ledger -> (unit, string) result
(** The ledger invariants the supervised epoch loop asserts after every
    settled epoch: zero-sum within [tolerance] (default [1e-6]) and a
    finite posted price.  All offending checks are reported in one
    message. *)

val party_name : Planner.plan -> party -> string

val render : Planner.plan -> ledger -> string
(** Table of aggregate flows (one row per party with nonzero activity). *)
