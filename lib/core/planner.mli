(** End-to-end POC planning: topology → traffic → auction → backbone.

    This is the orchestration a POC operator runs each leasing epoch:
    take the offered-link pool and an upper-bound traffic matrix,
    select the cheapest acceptable link set under the chosen
    resilience constraint via the VCG auction, and produce the
    operating backbone with its routing and membership. *)

type config = {
  seed : int;
  params : Poc_topology.Wan.params;
  demand_fraction : float;
      (** traffic-matrix volume as a fraction of total offered link
          capacity (Figure 2 uses a matrix the offer pool can carry
          with reasonable slack; default 1/40) *)
  rule : Poc_auction.Acceptability.t;
  csp_share : float;  (** direct-CSP share of content-node volume *)
  bid_margin : float; (** BP bid mark-up over true cost *)
}

val default_config : config

val scaled_config : ?sites:int -> ?bps:int -> config -> config
(** Shrink the instance (for tests and quick benches) while keeping
    proportions: fewer sites, operators and BPs. *)

type plan = {
  config : config;
  wan : Poc_topology.Wan.t;
  matrix : Poc_traffic.Matrix.t;
  problem : Poc_auction.Vcg.problem;
  outcome : Poc_auction.Vcg.outcome;
  routing : Poc_mcf.Router.routing; (** base routing over the selection *)
  members : Member.t list;
}

val build : ?pool:Poc_util.Pool.t -> config -> (plan, string) result
(** Generates the WAN and matrix from the seed and runs the full
    mechanism.  [Error] when no acceptable selection exists (raise the
    demand fraction or relax the rule).  [?pool] parallelizes the
    auction (see {!Poc_auction.Vcg}); the plan is identical with or
    without it. *)

val backbone_enabled : plan -> int -> bool
(** Predicate over link ids: is this link part of the leased backbone? *)

val utilization_summary : plan -> Poc_util.Stats.summary
(** Distribution of per-link utilization over selected, loaded links. *)

val monthly_cost : plan -> float
(** What the POC pays per month: VCG payments plus virtual-link
    contracts. *)
