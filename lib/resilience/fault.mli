(** Deterministic fault-schedule DSL for chaos runs.

    A chaos run is described by a list of {!spec}s — "two links fail at
    epoch 3 for 2 epochs", "BP 4 goes bankrupt at epoch 5" — which
    {!compile} turns into a concrete, fully-resolved {!schedule}: every
    random choice (which links fail, which links a recall takes back)
    is drawn from a [Poc_util.Prng] seeded by the caller, so the same
    seed and specs always produce byte-identical fault timelines and,
    downstream, byte-identical incident logs. *)

type phase =
  | Pre_auction  (** after the epoch's faults land, before its auction *)
  | Pre_settle   (** after the auction/ladder decision, before settlement
                     — the epoch's journal record is left torn mid-write *)
  | Post_settle  (** after the epoch settled and its record was flushed *)

val phase_to_string : phase -> string
(** ["pre_auction"], ["pre_settle"], ["post_settle"]. *)

val phase_of_string : string -> phase option
(** Inverse of {!phase_to_string}; [None] on anything else. *)

type spec =
  | Link_failure of { at_epoch : int; count : int; duration : int }
      (** [count] distinct BP links picked at compile time go down at
          [at_epoch] and come back [duration] epochs later *)
  | Bp_bankruptcy of { at_epoch : int; bp : int }
      (** every link the BP offers is withdrawn permanently *)
  | Capacity_recall of { at_epoch : int; bp : int; fraction : float; duration : int }
      (** the BP takes back [fraction] of its links for [duration]
          epochs (the CSP-backed-BP recall of Section 3.3) *)
  | Offer_shrinkage of { at_epoch : int; fraction : float }
      (** [fraction] of all BP links leave the pool permanently *)
  | Traffic_surge of { at_epoch : int; factor : float; duration : int }
      (** the traffic matrix is multiplied by [factor] for [duration]
          epochs *)
  | Crash of { at_epoch : int; phase : phase }
      (** kill the supervised process at the given point of the epoch.
          Compiling a [Crash] draws no randomness, so adding one to a
          spec list never changes which links the other specs pick; a
          resumed run ignores crash points, so kill + resume is
          comparable to the same schedule without the crash. *)
  | Storage of { at_epoch : int; phase : phase; fault : Disk.fault }
      (** a {!Crash} that additionally damages the journal's disk state
          the way real hardware does: the process dies at the given
          point {e and} {!Disk.power_cut} applies the fault (short
          write, torn rename, lying fsync, silent byte corruption).
          Like [Crash], compiling one draws no randomness and a
          resumed run ignores it. *)

type event =
  | Link_down of int
  | Link_up of int
  | Bp_exit of int
  | Withdraw of int list (** sorted link ids, permanent *)
  | Surge of float
  | Surge_over of float
  | Crash_point of phase (** process dies here (supervisor raises) *)
  | Disk_point of phase * Disk.fault
      (** process dies here after the disk fault's damage lands *)

type schedule
(** Concrete events keyed by epoch; immutable once compiled. *)

val validate : Poc_topology.Wan.t -> spec list -> (unit, string) result
(** Checks every spec and reports all offending fields in one message
    (epochs >= 1, durations >= 1, fractions in [0,1], factors positive,
    BP ids within the WAN). *)

val compile :
  Poc_topology.Wan.t -> seed:int -> spec list -> (schedule, string) result
(** Resolves random choices deterministically from [seed].  Fails with
    the {!validate} message on a bad spec list. *)

val at : schedule -> int -> event list
(** Events taking effect at a given epoch, in compile order. *)

val events : schedule -> (int * event) list
(** The full timeline, sorted by epoch (stable in compile order). *)

val event_to_string : event -> string
(** Stable rendering used by the incident log, e.g.
    ["link_down(17)"] or ["bp_exit(4)"]. *)

val describe : schedule -> int -> string
(** All events at an epoch joined with ["; "]; ["-"] when none.  Runs
    of more than four events of the same kind are compressed to a
    count, e.g. ["link_down x139"], so mass recalls stay readable.
    Crash and disk-fault points are omitted: they kill the process
    rather than the market, and hiding them keeps a resumed run's
    incident log byte-identical to an uninterrupted one. *)
