module Prng = Poc_util.Prng

type fault =
  | Short_write of { drop : int }
  | Torn_rename
  | Lying_fsync of { drop : int }
  | Corrupt_byte of { seed : int }

let fault_to_string = function
  | Short_write { drop } -> Printf.sprintf "short_write:%d" drop
  | Torn_rename -> "torn_rename"
  | Lying_fsync { drop } -> Printf.sprintf "lying_fsync:%d" drop
  | Corrupt_byte { seed } -> Printf.sprintf "corrupt_byte:%d" seed

let fault_of_string s =
  let kind, arg =
    match String.index_opt s ':' with
    | None -> (s, None)
    | Some i ->
      ( String.sub s 0 i,
        int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) )
  in
  let num default =
    match arg with
    | Some n when n >= 1 -> Ok n
    | Some _ -> Error (Printf.sprintf "disk fault %S: argument must be >= 1" s)
    | None -> Ok default
  in
  match kind with
  | "short_write" -> Result.map (fun drop -> Short_write { drop }) (num 6)
  | "torn_rename" -> Ok Torn_rename
  | "lying_fsync" -> Result.map (fun drop -> Lying_fsync { drop }) (num 64)
  | "corrupt_byte" -> Result.map (fun seed -> Corrupt_byte { seed }) (num 1)
  | _ ->
    Error
      (Printf.sprintf
         "unknown disk fault %S: expected short_write[:DROP], torn_rename, \
          lying_fsync[:DROP] or corrupt_byte[:SEED]"
         s)

type ops = {
  open_append : string -> out_channel;
  open_trunc : string -> out_channel;
  read_file : string -> string;
  rename : string -> string -> unit;
  remove : string -> unit;
  mkdir : string -> unit;
  readdir : string -> string array;
  exists : string -> bool;
  is_directory : string -> bool;
}

let real_ops =
  {
    open_append =
      (fun path ->
        open_out_gen [ Open_wronly; Open_creat; Open_append; Open_binary ] 0o644
          path);
    open_trunc = (fun path -> open_out_bin path);
    read_file = (fun path -> In_channel.with_open_bin path In_channel.input_all);
    rename = Sys.rename;
    remove = Sys.remove;
    mkdir = (fun path -> Sys.mkdir path 0o755);
    readdir = Sys.readdir;
    exists = Sys.file_exists;
    is_directory = (fun path -> try Sys.is_directory path with Sys_error _ -> false);
  }

(* --- transient-error retries --------------------------------------------- *)

type retry_policy = {
  retry_attempts : int;
  retry_base_delay : float;
  retry_multiplier : float;
  retry_max_delay : float;
  retry_jitter : float;
  retry_seed : int;
}

let default_retry_policy =
  {
    retry_attempts = 4;
    retry_base_delay = 0.005;
    retry_multiplier = 2.0;
    retry_max_delay = 0.25;
    retry_jitter = 0.25;
    retry_seed = 1;
  }

let retry_delays policy =
  if policy.retry_attempts < 0 then
    invalid_arg "Disk: retry_attempts must be >= 0";
  if
    (not (Float.is_finite policy.retry_base_delay))
    || policy.retry_base_delay < 0.0
  then invalid_arg "Disk: retry_base_delay must be finite and >= 0";
  if policy.retry_multiplier < 1.0 then
    invalid_arg "Disk: retry_multiplier must be >= 1";
  if policy.retry_jitter < 0.0 || policy.retry_jitter > 1.0 then
    invalid_arg "Disk: retry_jitter must be in [0,1]";
  let rng = Prng.create policy.retry_seed in
  List.init policy.retry_attempts (fun i ->
      let backoff =
        Float.min policy.retry_max_delay
          (policy.retry_base_delay
          *. (policy.retry_multiplier ** float_of_int i))
      in
      backoff *. (1.0 +. (policy.retry_jitter *. Prng.float rng)))

let retrying ?(policy = default_retry_policy) ?(sleep = Unix.sleepf)
    ?(on_retry = fun ~op:_ ~attempt:_ ~delay:_ _ -> ()) ops =
  let delays = retry_delays policy in
  (* One shared jittered-delay schedule, consumed op by op: each
     transient failure anywhere on the disk advances the same
     deterministic backoff sequence, which resets after any success —
     the behaviour of a device that is either struggling or not. *)
  let pending = ref delays in
  let guard op f =
    let rec attempt n =
      match f () with
      | v ->
        pending := delays;
        v
      | exception Sys_error msg -> (
        match !pending with
        | [] -> raise (Sys_error msg)
        | delay :: rest ->
          pending := rest;
          on_retry ~op ~attempt:n ~delay msg;
          if delay > 0.0 then sleep delay;
          attempt (n + 1))
    in
    attempt 1
  in
  {
    open_append = (fun p -> guard "open_append" (fun () -> ops.open_append p));
    open_trunc = (fun p -> guard "open_trunc" (fun () -> ops.open_trunc p));
    read_file = (fun p -> guard "read_file" (fun () -> ops.read_file p));
    rename = (fun a b -> guard "rename" (fun () -> ops.rename a b));
    remove = (fun p -> guard "remove" (fun () -> ops.remove p));
    mkdir = (fun p -> guard "mkdir" (fun () -> ops.mkdir p));
    readdir = (fun p -> guard "readdir" (fun () -> ops.readdir p));
    exists = ops.exists;
    is_directory = ops.is_directory;
  }

type file = { path : string; oc : out_channel }

(* Power-cut metadata: enough to model each fault as damage to the
   state the journal believes is durable. *)
type t = {
  ops : ops;
  mutable last_append : (string * int) option;  (* path, size of last append *)
  mutable last_rename : (string * string option) option;
      (* destination, its pre-rename contents (None = did not exist) *)
  mutable active : string option;  (* most recently appended-to path *)
}

let with_ops ops = { ops; last_append = None; last_rename = None; active = None }
let real () = with_ops real_ops
let open_append t path = { path; oc = t.ops.open_append path }
let open_trunc t path = { path; oc = t.ops.open_trunc path }

let append t f s =
  output_string f.oc s;
  t.last_append <- Some (f.path, String.length s);
  t.active <- Some f.path;
  (* A subsequent append (each one is synced by the journal) makes the
     last directory operation durable on any real filesystem's
     journal; only the most recent rename can still be torn. *)
  t.last_rename <- None

let sync _t f = flush f.oc
let close_file _t f = close_out f.oc
let file_path f = f.path
let read_file t path = t.ops.read_file path

let write_file_atomic t path content =
  let prior = if t.ops.exists path then Some (t.ops.read_file path) else None in
  let tmp = path ^ ".tmp" in
  let oc = t.ops.open_trunc tmp in
  output_string oc content;
  flush oc;
  close_out oc;
  t.ops.rename tmp path;
  t.last_rename <- Some (path, prior)

let truncate_file t path n =
  let contents = t.ops.read_file path in
  let n = max 0 (min n (String.length contents)) in
  let oc = t.ops.open_trunc path in
  output_string oc (String.sub contents 0 n);
  flush oc;
  close_out oc

let remove t path = if t.ops.exists path then t.ops.remove path
let mkdir_p t path = if not (t.ops.is_directory path) then t.ops.mkdir path
let readdir t path = t.ops.readdir path
let exists t path = t.ops.exists path
let is_directory t path = t.ops.is_directory path
let rename t src dst = t.ops.rename src dst

let drop_tail t path k =
  if k > 0 && t.ops.exists path then begin
    let len = String.length (t.ops.read_file path) in
    truncate_file t path (max 0 (len - k))
  end

let power_cut t fault =
  match fault with
  | Short_write { drop } -> (
    match t.last_append with
    | Some (path, size) -> drop_tail t path (min drop size)
    | None -> ())
  | Lying_fsync { drop } -> (
    match t.active with
    | Some path -> drop_tail t path drop
    | None -> ())
  | Torn_rename -> (
    match t.last_rename with
    | Some (dst, Some prior) ->
      let oc = t.ops.open_trunc dst in
      output_string oc prior;
      flush oc;
      close_out oc
    | Some (dst, None) -> remove t dst
    | None -> ())
  | Corrupt_byte { seed } -> (
    match t.active with
    | Some path when t.ops.exists path ->
      let contents = t.ops.read_file path in
      let len = String.length contents in
      if len > 0 then begin
        let rng = Prng.create seed in
        let off = Prng.int rng len in
        let mask = 1 + Prng.int rng 255 in
        let b = Bytes.of_string contents in
        Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor mask));
        let oc = t.ops.open_trunc path in
        output_string oc (Bytes.to_string b);
        flush oc;
        close_out oc
      end
    | Some _ | None -> ())
