(** Supervised control loop: the epoch market under injected faults.

    A supervised re-run of the repeated-auction loop
    ([Poc_market.Epochs.run] semantics: cost drift, strategy recalls,
    demand growth) that additionally applies a compiled {!Fault}
    schedule, engages the degradation {!Ladder} whenever an epoch's
    auction is infeasible, carries the last fully-healthy selection
    forward (minus dead links) when even the ladder is exhausted, and
    only reports a blackout when nothing at all can be leased.

    After every epoch it asserts the cross-layer invariants the paper's
    operational story depends on — the settlement ledger passes
    [Settlement.check] (zero-sum, finite posted price), the epoch price
    is finite, delivered traffic never exceeds surviving capacity — and
    collects any breach in {!field:report.violations} (expected empty).

    Everything is deterministic from the market seed and the compiled
    schedule: identical inputs produce byte-identical incident logs
    ({!render_incidents}).

    {2 Durability}

    [run ~journal:path] additionally writes a crash-safe {!Journal}:
    one flushed record per epoch plus a carry-forward snapshot every
    [snapshot_every] epochs.  With [~segment_bytes] the journal is a
    segmented store that rotates past the byte budget and
    garbage-collects history older than the newest durable checkpoint
    (see {!Journal}).  If the process dies mid-run — including at an
    injected {!Fault.Crash} or {!Fault.Storage} point — {!resume}
    replays the journal's valid prefix, restores the snapshot state,
    and continues the run to completion.  The resumed report (epochs,
    incidents, rendered strings) is byte-identical to an uninterrupted
    run with the same seed and schedule. *)

type status = Journal.status =
  | Healthy                    (** auction cleared under the plan's rule *)
  | Degraded of Ladder.step    (** ladder rung that kept service up *)
  | Carried                    (** last healthy selection carried forward *)
  | Blackout                   (** nothing leasable this epoch *)

type epoch_report = Journal.epoch_report = {
  epoch : int;
  status : status;
  spend : float;               (** POC spend; 0 in a blackout *)
  price_per_gbps : float;      (** spend / offered volume; 0 in a blackout *)
  delivered_fraction : float;  (** routed / offered at full (unrelaxed) demand *)
  selected_links : int;
  recalled_links : int;        (** strategy-driven recalls this epoch *)
  active_faults : int;         (** injected links currently down or withdrawn *)
  ladder_attempts : int;       (** rungs tried this epoch (0 when healthy) *)
  ledger_conservation : float option; (** Σ net over parties; None in blackout *)
  posted_price : float option; (** break-even usage price; None in blackout *)
}

type incident = {
  start_epoch : int;
  trigger : string;            (** fault events at the start epoch, or
                                   ["market stress"] for drift-induced failures *)
  response : status;           (** service level at the start epoch *)
  attempts : int;              (** ladder rungs tried at the start epoch *)
  recovery_epoch : int option; (** first healthy epoch at or after the start;
                                   [None] when the run ends degraded *)
  spend_penalty : float;       (** Σ (spend − last healthy spend) over the
                                   degraded span *)
}

type violation = Journal.violation = {
  epoch : int;
  invariant : string;
  detail : string;
}

type report = {
  epochs : epoch_report list;     (** chronological *)
  incidents : incident list;      (** chronological *)
  violations : violation list;    (** invariant breaches; expected [] *)
  ladder_activations : int;       (** epochs on which the ladder engaged *)
  final_plan : Poc_core.Planner.plan option;
      (** pseudo-plan of the last epoch that produced an outcome;
          feed it to [Settlement.of_plan] for the closing ledger *)
}

exception Injected_crash of { epoch : int; phase : Fault.phase }
(** Raised by {!run} when the schedule contains a {!Fault.Crash} or
    {!Fault.Storage} spec and the loop reaches that epoch and phase.
    The journal (if any) is closed first, leaving on disk exactly what
    a real crash at that point would: a clean prefix for [Pre_auction]
    and [Post_settle], a torn final record for [Pre_settle].  For a
    [Storage] spec, {!Disk.power_cut} damages the on-disk journal state
    after the close and before the raise. *)

val run :
  ?ladder:Ladder.config ->
  ?journal:string ->
  ?flight:Black_box.t ->
  ?snapshot_every:int ->
  ?segment_bytes:int ->
  ?disk:Disk.t ->
  ?pool:Poc_util.Pool.t ->
  Poc_core.Planner.plan ->
  market:Poc_market.Epochs.config ->
  schedule:Fault.schedule ->
  report
(** Raises [Invalid_argument] with the aggregate validation message on
    a bad market or ladder config; never raises on injected faults
    other than {!Injected_crash}.  [journal] durably records the run
    (see {!Journal}); [snapshot_every] (default 4, must be >= 1) sets
    the snapshot cadence.  [segment_bytes] switches the journal to a
    segmented store with that rotation budget — the supervisor rotates
    after any epoch whose records pushed the active segment past the
    budget, writing a carry checkpoint of the live state.  [disk]
    substitutes a disk layer (the fault harness's hook); [Storage]
    specs in the schedule damage it at crash time.  [pool] parallelizes
    every epoch's auction and ladder rungs; the supervisor does not own
    the pool's lifecycle (create it with [Poc_util.Pool.with_pool]
    around the whole run, so an {!Injected_crash} unwinds through the
    pool teardown).  Reports and journal bytes are identical at every
    pool size.

    [flight] attaches a black-box flight recorder ({!Black_box}): the
    loop emits phase span opens/closes, fault events, ladder/violation/
    crash incidents into its ring and flushes it at every phase open,
    at each epoch boundary, and on every crash path — so a SIGKILL at
    any instant leaves a readable box naming the in-flight epoch and
    phase.  The recorder never touches the journal or its disk:
    journal bytes are identical with and without it, and with it
    absent ([None]) every emission site is a single untaken branch
    (zero allocation). *)

val resume :
  ?ladder:Ladder.config ->
  ?honor_crashes:bool ->
  journal:string ->
  ?flight:Black_box.t ->
  ?disk:Disk.t ->
  ?pool:Poc_util.Pool.t ->
  Poc_core.Planner.plan ->
  market:Poc_market.Epochs.config ->
  schedule:Fault.schedule ->
  (report, string) result
(** Recover a crashed run from its journal — single-file or segmented,
    detected automatically — and drive it to completion, appending to
    the same store.  Resumption restores the last durable checkpoint
    (snapshot record or segment carry), truncates everything after it,
    and deletes any orphan segment a crash mid-rotation left behind.
    [Error] on an unreadable or corrupt journal header, a
    config/seed/schedule mismatch with the journal's digest, a journal
    that already records a completed run, or an active segment whose
    header is damaged (run {!Journal.scrub} first to quarantine it and
    fall back).  Crash and storage-fault points in [schedule] are
    {e not} re-fired on resume by default, so a resumed run always
    finishes; [~honor_crashes:true] re-arms them, which is how the
    fleet driver chains through a schedule carrying {e several} kill
    points — it resumes with the already-fired specs dropped (the
    journal digest ignores kill specs, so the recompiled schedule
    still matches) and lets the next one fire.  The
    returned report is byte-identical (via {!render_epochs} /
    {!render_incidents}) to an uninterrupted [run] with the same
    inputs. *)

(** {2 Steppable loops}

    The daemon ([Poc_daemon]) keeps a supervised run open across client
    requests instead of driving it end to end: {!open_run} /
    {!open_resume} build the same loop {!run} / {!resume} drive
    internally, {!step} executes exactly one epoch, and {!finish} /
    {!suspend} close it.  [run plan ~market ~schedule] is precisely
    [open_run ... |> step-until-done |> finish], so every byte-identity
    guarantee above transfers to stepped execution. *)

type loop
(** An open supervised run.  Holds the live market state, the open
    journal (if any), and the reports accumulated so far. *)

type update =
  | Scale_bid of { bp : int; factor : float }
      (** multiply BP [bp]'s cost level (hence its next bids) by
          [factor] — a live re-bid arriving between epochs *)
  | Scale_demand of { factor : float }
      (** multiply the demand level by [factor] — a live traffic-matrix
          update.  Folds into the surge multiplier, so it lands in the
          same snapshot state injected surges do. *)
(** A live market mutation.  Updates are {e not} journaled by the
    supervisor: a resumed run must re-apply the same updates at the
    same epochs (the daemon's intake log records exactly that), and the
    snapshot state (cost levels, surge) then matches bit-for-bit. *)

val validate_update : n_bps:int -> update -> (unit, string) result
(** [Error] on an out-of-range BP or a non-finite/non-positive factor;
    {!step} raises [Invalid_argument] on the same condition. *)

val open_run :
  ?ladder:Ladder.config ->
  ?journal:string ->
  ?flight:Black_box.t ->
  ?snapshot_every:int ->
  ?segment_bytes:int ->
  ?disk:Disk.t ->
  ?pool:Poc_util.Pool.t ->
  Poc_core.Planner.plan ->
  market:Poc_market.Epochs.config ->
  schedule:Fault.schedule ->
  loop
(** Validate configs, create the journal (when requested) and return a
    loop positioned at epoch 1.  Same arguments and failure modes as
    {!run}. *)

val open_resume :
  ?ladder:Ladder.config ->
  ?honor_crashes:bool ->
  journal:string ->
  ?flight:Black_box.t ->
  ?disk:Disk.t ->
  ?pool:Poc_util.Pool.t ->
  Poc_core.Planner.plan ->
  market:Poc_market.Epochs.config ->
  schedule:Fault.schedule ->
  (loop, string) result
(** Replay and reopen a crashed run's journal (same checks and
    truncation semantics as {!resume}, including [honor_crashes])
    and return a loop positioned at the first epoch after the restored
    checkpoint, with the recovered reports already accumulated. *)

val next_epoch : loop -> int option
(** The epoch the next {!step} will run; [None] when the horizon is
    complete or the loop was closed. *)

val horizon : loop -> int
(** The run's total epoch count ([market.epochs]). *)

val progress : loop -> epoch_report list
(** Chronological reports accumulated so far (including any recovered
    prefix). *)

val step : ?updates:update list -> loop -> epoch_report
(** Run one epoch: apply [updates] (in list order, before the epoch's
    scheduled fault events and cost drift), then the full supervised
    epoch — auction or ladder, routing, settlement, invariants, journal
    append/snapshot/rotation.  Raises [Invalid_argument] on a closed or
    complete loop or an invalid update, and {!Injected_crash} exactly
    as {!run} does (the journal is closed first; the loop is dead
    afterwards). *)

val finish : loop -> report
(** Assemble the final report; when the horizon is complete this also
    writes the journal's completion record and closes it.  The loop is
    closed afterwards. *)

val suspend : loop -> unit
(** Close the journal {e without} a completion record, leaving the
    store resumable — the daemon's graceful shutdown mid-horizon. *)

val epochs_to_recovery : incident -> int option
(** [recovery_epoch - start_epoch]; 0 means absorbed with no outage. *)

val status_to_string : status -> string

val render_incidents : report -> string
(** Deterministic one-line-per-incident log; identical seed + schedule
    produce a byte-identical string. *)

val render_epochs : report -> string
(** Deterministic per-epoch service table. *)
