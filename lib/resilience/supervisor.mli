(** Supervised control loop: the epoch market under injected faults.

    A supervised re-run of the repeated-auction loop
    ([Poc_market.Epochs.run] semantics: cost drift, strategy recalls,
    demand growth) that additionally applies a compiled {!Fault}
    schedule, engages the degradation {!Ladder} whenever an epoch's
    auction is infeasible, carries the last fully-healthy selection
    forward (minus dead links) when even the ladder is exhausted, and
    only reports a blackout when nothing at all can be leased.

    After every epoch it asserts the cross-layer invariants the paper's
    operational story depends on — the settlement ledger nets to zero,
    the posted price is finite, delivered traffic never exceeds
    surviving capacity — and collects any breach in
    {!field:report.violations} (expected empty).

    Everything is deterministic from the market seed and the compiled
    schedule: identical inputs produce byte-identical incident logs
    ({!render_incidents}). *)

type status =
  | Healthy                    (** auction cleared under the plan's rule *)
  | Degraded of Ladder.step    (** ladder rung that kept service up *)
  | Carried                    (** last healthy selection carried forward *)
  | Blackout                   (** nothing leasable this epoch *)

type epoch_report = {
  epoch : int;
  status : status;
  spend : float;               (** POC spend; 0 in a blackout *)
  price_per_gbps : float;      (** spend / offered volume; 0 in a blackout *)
  delivered_fraction : float;  (** routed / offered at full (unrelaxed) demand *)
  selected_links : int;
  recalled_links : int;        (** strategy-driven recalls this epoch *)
  active_faults : int;         (** injected links currently down or withdrawn *)
  ladder_attempts : int;       (** rungs tried this epoch (0 when healthy) *)
  ledger_conservation : float option; (** Σ net over parties; None in blackout *)
  posted_price : float option; (** break-even usage price; None in blackout *)
}

type incident = {
  start_epoch : int;
  trigger : string;            (** fault events at the start epoch, or
                                   ["market stress"] for drift-induced failures *)
  response : status;           (** service level at the start epoch *)
  attempts : int;              (** ladder rungs tried at the start epoch *)
  recovery_epoch : int option; (** first healthy epoch at or after the start;
                                   [None] when the run ends degraded *)
  spend_penalty : float;       (** Σ (spend − last healthy spend) over the
                                   degraded span *)
}

type violation = { epoch : int; invariant : string; detail : string }

type report = {
  epochs : epoch_report list;     (** chronological *)
  incidents : incident list;      (** chronological *)
  violations : violation list;    (** invariant breaches; expected [] *)
  ladder_activations : int;       (** epochs on which the ladder engaged *)
  final_plan : Poc_core.Planner.plan option;
      (** pseudo-plan of the last epoch that produced an outcome;
          feed it to [Settlement.of_plan] for the closing ledger *)
}

val run :
  ?ladder:Ladder.config ->
  Poc_core.Planner.plan ->
  market:Poc_market.Epochs.config ->
  schedule:Fault.schedule ->
  report
(** Raises [Invalid_argument] with the aggregate validation message on
    a bad market or ladder config; never raises on injected faults. *)

val epochs_to_recovery : incident -> int option
(** [recovery_epoch - start_epoch]; 0 means absorbed with no outage. *)

val status_to_string : status -> string

val render_incidents : report -> string
(** Deterministic one-line-per-incident log; identical seed + schedule
    produce a byte-identical string. *)

val render_epochs : report -> string
(** Deterministic per-epoch service table. *)
