(** Pluggable disk layer between {!Journal} and the operating system.

    Every byte the journal persists — segment appends, manifest
    rewrites, truncations — flows through a {!t}, so tests can
    substitute a different backend ({!with_ops}) and the fault harness
    can model what a real disk does when power is lost at the worst
    moment.

    The fault model is {e power-cut-time damage}: during normal
    operation the disk behaves exactly like the real one while
    recording a little metadata (the size of the last segment append,
    the previous contents of the last atomically-renamed file, which
    file is actively being appended to).  {!power_cut} then applies one
    deterministic {!fault} to the on-disk state — the damage a short
    write, a torn rename, a lying fsync or silent media corruption
    would leave behind — and the supervisor raises its injected-crash
    exception immediately after, so the next observer of the files is
    the resume/scrub path, just as after a real power loss.

    Determinism: no fault draws from ambient randomness.
    [Corrupt_byte] derives its offset and XOR mask from its own seed
    via [Poc_util.Prng], so a given (journal bytes, fault) pair always
    produces the same damaged bytes. *)

type fault =
  | Short_write of { drop : int }
      (** the final segment append only partially reached the platter:
          the last [min drop size-of-last-append] bytes are lost *)
  | Torn_rename
      (** the most recent atomic rename (the manifest update of a
          segment rotation) was not yet durable: the destination
          reverts to its previous contents.  A no-op when a later
          append already made the rename durable. *)
  | Lying_fsync of { drop : int }
      (** fsync acknowledged bytes that were never persisted: the last
          [drop] bytes of the actively-appended file vanish, record
          boundaries notwithstanding *)
  | Corrupt_byte of { seed : int }
      (** silent media corruption: one byte of the actively-appended
          file, at a [seed]-derived offset, is XORed with a non-zero
          [seed]-derived mask *)

val fault_to_string : fault -> string
(** ["short_write:12"], ["torn_rename"], ["lying_fsync:64"],
    ["corrupt_byte:7"]. *)

val fault_of_string : string -> (fault, string) result
(** Inverse of {!fault_to_string}; the integer argument is optional
    ([short_write] defaults to 6 bytes, [lying_fsync] to 64,
    [corrupt_byte] to seed 1). *)

type ops = {
  open_append : string -> out_channel;  (** create/append, binary *)
  open_trunc : string -> out_channel;   (** create/truncate, binary *)
  read_file : string -> string;         (** whole file; raises [Sys_error] *)
  rename : string -> string -> unit;
  remove : string -> unit;
  mkdir : string -> unit;               (** raises if the directory exists *)
  readdir : string -> string array;
  exists : string -> bool;
  is_directory : string -> bool;  (** false for a missing path *)
}
(** The primitive operations the journal needs from a filesystem. *)

val real_ops : ops
(** [Sys] / [In_channel] / [Out_channel] passthrough. *)

type retry_policy = {
  retry_attempts : int;      (** extra tries after the first failure (>= 0) *)
  retry_base_delay : float;  (** seconds before the first retry (>= 0) *)
  retry_multiplier : float;  (** exponential growth per retry (>= 1) *)
  retry_max_delay : float;   (** backoff cap, pre-jitter *)
  retry_jitter : float;      (** uniform multiplicative jitter in [0,1]:
                                 each delay is scaled by 1 + jitter·u *)
  retry_seed : int;          (** PRNG seed for the jitter draws *)
}
(** Jittered exponential backoff for transient I/O errors. *)

val default_retry_policy : retry_policy
(** 4 retries, 5 ms base doubling to a 250 ms cap, 25% jitter. *)

val retry_delays : retry_policy -> float list
(** The policy's concrete jittered-backoff schedule: one delay per
    retry attempt, drawn deterministically from [retry_seed].  This is
    exactly the sequence {!retrying} sleeps through; it is exported so
    other layers needing the same discipline — the intake log's append
    retry, the run registry's restart backoff — share one schedule
    shape instead of reinventing it.  Raises [Invalid_argument] on a
    malformed policy. *)

val retrying :
  ?policy:retry_policy ->
  ?sleep:(float -> unit) ->
  ?on_retry:(op:string -> attempt:int -> delay:float -> string -> unit) ->
  ops ->
  ops
(** Wrap a backend so every operation that raises [Sys_error] is
    retried under [policy] with jittered exponential backoff before the
    error propagates.  The delay schedule is drawn once from
    [retry_seed] — deterministic — shared across operations and reset
    on any success, so a persistently failing disk exhausts the budget
    and re-raises while a transiently failing one recovers.  [on_retry]
    fires before each sleep (the daemon counts these in
    [poc_daemon_disk_retries_total]); [sleep] defaults to
    [Unix.sleepf] and is substitutable for tests.  [exists] and
    [is_directory] are passed through unretried (they return rather
    than raise on missing paths).  Raises [Invalid_argument] on a
    malformed policy. *)

type t
(** A disk: an {!ops} backend plus the fault-tracking metadata
    {!power_cut} consumes. *)

val real : unit -> t
(** A fresh disk over {!real_ops}. *)

val with_ops : ops -> t
(** A fresh disk over a custom backend. *)

type file
(** An open append handle. *)

val open_append : t -> string -> file
val open_trunc : t -> string -> file

val append : t -> file -> string -> unit
(** Buffered append; records this as the disk's last append and marks
    any pending rename durable (a later write implies the journal has
    moved past the rename). *)

val sync : t -> file -> unit
(** Flush the handle's buffer. *)

val close_file : t -> file -> unit
val file_path : file -> string

val read_file : t -> string -> string
(** Raises [Sys_error] on a missing/unreadable path. *)

val write_file_atomic : t -> string -> string -> unit
(** Write [path ^ ".tmp"], then rename it over [path].  Records the
    rename (and the destination's previous contents) so {!power_cut}
    can tear it. *)

val truncate_file : t -> string -> int -> unit
(** Truncate a {e closed} file to its first [n] bytes. *)

val remove : t -> string -> unit
(** Ignores a missing path. *)

val mkdir_p : t -> string -> unit
(** Create one directory level; ignores an existing directory. *)

val readdir : t -> string -> string array
val exists : t -> string -> bool
val is_directory : t -> string -> bool
val rename : t -> string -> string -> unit

val power_cut : t -> fault -> unit
(** Apply one fault's damage to the on-disk state.  Call with every
    journal handle closed; the caller is expected to abandon the run
    immediately after (the supervisor raises [Injected_crash]). *)
