(** The degradation ladder: what the POC does when an auction comes up
    infeasible instead of aborting the epoch.

    Rungs are tried in order, each costing one attempt against a
    bounded retry budget:

    + retry under the {e same} acceptability rule with the demand
      matrix relaxed by each configured factor (shed load, keep the
      resilience guarantee);
    + step the rule down — Constraint #3 -> #2 -> #1 — at full demand
      (keep the load, shed the failure guarantee);
    + connectivity only: lease the cheapest spanning forest of the
      surviving offer pool, pay-as-bid, and deliver what routes;
    + contracted external transit: fall back to the external ISPs'
      virtual links alone.

    The first rung that produces a priced outcome wins; [None] means
    even external transit is gone (blackout). *)

type step =
  | Relax_demand of float        (** same rule, demand scaled by the factor *)
  | Step_down of Poc_auction.Acceptability.t
  | Connectivity_only
  | External_transit

type config = {
  relax_factors : float list;  (** tried in order, e.g. [0.9; 0.75; 0.5] *)
  step_rules : bool;           (** enable the rule step-down rungs *)
  max_attempts : int;          (** total rung budget per engagement *)
}

val default_config : config
(** [relax_factors = [0.9; 0.75; 0.5]], rule step-down enabled,
    [max_attempts = 8]. *)

val validate_config : config -> (unit, string) result
(** All offending fields in one message. *)

type engaged = {
  step : step;                      (** the rung that succeeded *)
  attempts : int;                   (** rungs tried, including this one *)
  outcome : Poc_auction.Vcg.outcome;
  demand_scale : float;             (** 1.0 except under [Relax_demand] *)
}

val rungs : rule:Poc_auction.Acceptability.t -> config -> step list
(** The ladder for a plan using [rule], truncated to [max_attempts]. *)

val engage :
  banned:(int -> bool) ->
  ?pool:Poc_util.Pool.t ->
  config ->
  Poc_auction.Vcg.problem ->
  engaged option
(** Runs the ladder over the problem restricted to unbanned links.
    With [?pool] the rungs — independent pure attempts — are evaluated
    {e speculatively in parallel}, one rung per worker, and the first
    success in rung order wins; without it they are tried serially.
    The engaged rung, its outcome and the reported [attempts] (the
    winner's 1-based rung index) are identical with or without the
    pool, at every pool size.  While a trace sink is installed the
    serial walk is used regardless of [?pool] (span stacks are
    submitting-domain state); this changes latency only, never the
    result. *)

val pay_as_bid :
  Poc_auction.Vcg.problem -> int list -> Poc_auction.Vcg.outcome option
(** Price an explicit link selection at its bids (plus contracted
    virtual prices); [None] on an empty selection.  The supervisor
    uses this to carry a previous epoch's selection forward. *)

val step_to_string : step -> string
(** Stable rendering for the incident log, e.g. ["relax(0.75)"]. *)
