(** Durable run journal for the supervised epoch loop.

    The settlement ledger and incident history are the non-regulatory
    accountability a public option offers; a process crash mid-month
    must not erase them.  The journal is an append-only binary file of
    length-prefixed, CRC-32-checksummed records (framing in
    [Poc_util.Codec]), flushed after every epoch:

    - one {!header} record identifying the run (format version, market
      seed and horizon, a digest of market + ladder config and the
      compiled fault schedule, snapshot cadence);
    - one {!epoch_record} per completed epoch — the epoch report with
      every float stored bit-exact, the fault events applied, the
      selected link ids, and any invariant violations;
    - a full {!snapshot} of the carry-forward state every
      [snapshot_every] epochs — PRNG cursor, per-BP cost levels, injected
      link state, surge and demand scale, last healthy selection — from
      which the loop can resume without replaying the whole run;
    - a completion record once the run finishes, carrying the rendered
      incident log.

    {!replay} validates checksums record by record and stops at the
    first torn or corrupted frame: everything before it is recovered,
    everything after it is discarded (and truncated away when the
    journal is {!reopen}ed for resumption).  A torn tail is exactly
    what a crash mid-write leaves behind, so recovery never trusts the
    final record more than its checksum. *)

type status =
  | Healthy
  | Degraded of Ladder.step
  | Carried
  | Blackout

type epoch_report = {
  epoch : int;
  status : status;
  spend : float;
  price_per_gbps : float;
  delivered_fraction : float;
  selected_links : int;
  recalled_links : int;
  active_faults : int;
  ladder_attempts : int;
  ledger_conservation : float option;
  posted_price : float option;
}

type violation = { epoch : int; invariant : string; detail : string }

type epoch_record = {
  report : epoch_report;
  events : Fault.event list;  (** fault events applied this epoch *)
  selected : int list;        (** link ids of the epoch's selection *)
  violations : violation list;
}

type snapshot = {
  at_epoch : int;          (** state as of the {e end} of this epoch *)
  prng_state : int64;      (** market PRNG cursor *)
  cost_level : float array;
  down : int list;         (** injected link-down state (heals on repair) *)
  gone : int list;         (** permanently withdrawn links *)
  surge : float;
  demand_scale : float;
      (** cumulative demand growth since epoch 0 (recorded for
          inspection; resume re-derives the matrix by repeating the
          per-epoch scalings so the floats match bit-for-bit) *)
  last_good : (int list * float) option;
      (** last fully-healthy selection (ids, cost) for carry-forward *)
}

type header = {
  version : int;
  market_seed : int;
  market_epochs : int;
  n_bps : int;
  snapshot_every : int;
  digest : int64;  (** {!digest} of market config + ladder + schedule *)
}

val version : int
(** Current journal format version. *)

val digest :
  market:Poc_market.Epochs.config ->
  ladder:Ladder.config ->
  Fault.schedule ->
  int64
(** Checksum binding a journal to the run that wrote it; resuming under
    a different market config, ladder config or fault schedule is
    refused with a clear error instead of silently diverging.  Crash
    points are excluded from the digest, so the schedule that crashed a
    run and the same schedule without its [Crash] specs digest
    identically. *)

type t
(** An open journal being written.  Every append flushes. *)

val create : string -> header -> t
(** Truncate/create the file and write the header record. *)

val reopen : string -> at:int -> t
(** Reopen an existing journal for appending, first truncating it to
    its initial [at] bytes (a {!replayed.resume_offset}).  Raises
    [Sys_error] on an unreadable path. *)

val append_epoch : t -> epoch_record -> unit
val append_snapshot : t -> snapshot -> unit
val append_complete : t -> incidents:string -> unit
val append_torn : t -> epoch:int -> unit
(** Write a deliberately incomplete frame — what a crash between the
    auction and settlement leaves on disk.  Used by crash injection;
    {!replay} discards it. *)

val close : t -> unit

type replayed = {
  header : header;
  records : epoch_record list;  (** valid epoch records, chronological *)
  snapshot : snapshot option;   (** last valid snapshot *)
  complete : string option;     (** rendered incident log, if finished *)
  torn_tail : bool;             (** a torn/corrupt suffix was discarded *)
  valid_bytes : int;            (** length of the valid prefix *)
  resume_offset : int;          (** truncation point for {!reopen}: end of
                                    the last snapshot, or of the header *)
}

val replay : string -> (replayed, string) result
(** Read and validate a journal.  [Error] only on a missing/unreadable
    file, a file that is not a POC journal, or a version mismatch;
    torn or corrupted tails are truncated, never fatal. *)
