(** Durable run journal for the supervised epoch loop: a single
    append-only file, or a segmented self-healing store.

    The settlement ledger and incident history are the non-regulatory
    accountability a public option offers; a process crash mid-month
    must not erase them.  Records are length-prefixed and
    CRC-32-checksummed (framing in [Poc_util.Codec]) and flushed after
    every epoch:

    - one {!header} record identifying the run (format version, market
      seed and horizon, a digest of market + ladder config and the
      compiled fault schedule, snapshot cadence);
    - one {!epoch_record} per completed epoch — the epoch report with
      every float stored bit-exact, the fault events applied, the
      selected link ids, and any invariant violations;
    - a full {!snapshot} of the carry-forward state every
      [snapshot_every] epochs — PRNG cursor, per-BP cost levels, injected
      link state, surge and demand scale, last healthy selection — from
      which the loop can resume without replaying the whole run;
    - a completion record once the run finishes, carrying the rendered
      incident log.

    {2 Segmented stores}

    [create ~segment_bytes] writes the journal as a {e directory} of
    [NNNNN.seg] files plus a checksummed [MANIFEST] (the live segment
    ids, rewritten atomically via rename).  When the active segment
    exceeds the byte budget the supervisor {!rotate}s: the next segment
    opens with a {!carry} — a full snapshot plus the epoch reports and
    violations accumulated so far — so {e every segment is
    self-describing}: replay needs only the newest intact segment.
    Rotation garbage-collects segments strictly older than the newest
    durable checkpoint outside the active segment (the predecessor's
    opening carry): the store holds at most the active segment and its
    predecessor, the predecessor being the fall-back when scrub must
    quarantine the active one.  Disk usage is bounded by roughly twice
    the budget plus one carry, however long the run.

    {2 Damage and repair}

    {!replay} validates checksums record by record and stops at the
    first torn or corrupted frame: everything before it is recovered,
    everything after it is discarded (and truncated away when the
    journal is {!reopen}ed for resumption) — truncation is anchored at
    the last durable checkpoint (the last snapshot record, or the
    segment's opening carry).  A torn tail is exactly what a crash
    mid-write leaves behind, so recovery never trusts the final record
    more than its checksum.

    Real disks also flip bits in the {e middle} of committed records.
    {!scrub} walks every segment and classifies each one: [Clean], a
    [Torn_tail] (nothing decodable after the damage — truncated), a
    [Corrupt_interior] (valid frames resume after the damage, i.e.
    silent corruption of committed history — truncated at the first bad
    byte, so resume falls back to the last checkpoint before it), or
    [Unreadable] (the segment's own header/carry is gone — the segment
    is quarantined into [quarantine/] and the store falls back to the
    predecessor's checkpoint).  All file I/O flows through {!Disk}, so
    the fault harness can inject the damage scrub repairs. *)

type status =
  | Healthy
  | Degraded of Ladder.step
  | Carried
  | Blackout

type epoch_report = {
  epoch : int;
  status : status;
  spend : float;
  price_per_gbps : float;
  delivered_fraction : float;
  selected_links : int;
  recalled_links : int;
  active_faults : int;
  ladder_attempts : int;
  ledger_conservation : float option;
  posted_price : float option;
}

type violation = { epoch : int; invariant : string; detail : string }

type epoch_record = {
  report : epoch_report;
  events : Fault.event list;  (** fault events applied this epoch *)
  selected : int list;        (** link ids of the epoch's selection *)
  violations : violation list;
}

type snapshot = {
  at_epoch : int;          (** state as of the {e end} of this epoch *)
  prng_state : int64;      (** market PRNG cursor *)
  cost_level : float array;
  down : int list;         (** injected link-down state (heals on repair) *)
  gone : int list;         (** permanently withdrawn links *)
  surge : float;
  demand_scale : float;
      (** cumulative demand growth since epoch 0 (recorded for
          inspection; resume re-derives the matrix by repeating the
          per-epoch scalings so the floats match bit-for-bit) *)
  last_good : (int list * float) option;
      (** last fully-healthy selection (ids, cost) for carry-forward *)
}

type header = {
  version : int;
  market_seed : int;
  market_epochs : int;
  n_bps : int;
  snapshot_every : int;
  digest : int64;  (** {!digest} of market config + ladder + schedule *)
}

type carry = {
  at : snapshot;  (** checkpoint the new segment opens from *)
  carry_reports : epoch_report list;
      (** every epoch report up to and including [at.at_epoch],
          chronological — what a replay of the GC'd history would have
          returned *)
  carry_violations : violation list;
}
(** The carry-forward a rotation writes into the new segment's header,
    making the segment self-describing: resume needs nothing older. *)

val version : int
(** Current journal format version. *)

val digest :
  market:Poc_market.Epochs.config ->
  ladder:Ladder.config ->
  Fault.schedule ->
  int64
(** Checksum binding a journal to the run that wrote it; resuming under
    a different market config, ladder config or fault schedule is
    refused with a clear error instead of silently diverging.  Crash
    and storage-fault points are excluded from the digest, so the
    schedule that crashed a run and the same schedule without its
    [Crash]/[Storage] specs digest identically. *)

type t
(** An open journal being written.  Every append flushes. *)

val create : ?disk:Disk.t -> ?segment_bytes:int -> string -> header -> t
(** Truncate/create the store and write the header.  Without
    [segment_bytes], [path] is a single file opened exactly as before.
    With [segment_bytes] (the rotation budget, >= 1), [path] is a
    directory: any previous segments in it are cleared, segment 00001
    is opened with the run header and no carry, and the [MANIFEST] is
    written. *)

val append_epoch : t -> epoch_record -> unit
val append_snapshot : t -> snapshot -> unit
val append_complete : t -> incidents:string -> unit
val append_torn : t -> epoch:int -> unit
(** Write a deliberately incomplete frame — what a crash between the
    auction and settlement leaves on disk.  Used by crash injection;
    {!replay} discards it. *)

val wants_rotation : t -> bool
(** True when the store is segmented and the active segment has grown
    past its byte budget.  Always false for a single-file journal. *)

val rotate : t -> carry -> unit
(** Open segment [N+1] with [carry] in its header, sync it, switch the
    manifest to [{N; N+1}] (atomic rename), then delete segments older
    than [N].  A no-op on a single-file journal.  The caller (the
    supervisor) supplies the carry because only it can snapshot the
    live market state. *)

val close : t -> unit

type replayed = {
  header : header;
  records : epoch_record list;  (** valid epoch records, chronological;
                                    for a segmented store, the active
                                    segment's records (older history
                                    lives in [prefix_reports]) *)
  snapshot : snapshot option;   (** last durable checkpoint: the last
                                    snapshot record, else the segment's
                                    opening carry *)
  complete : string option;     (** rendered incident log, if finished *)
  torn_tail : bool;             (** a torn/corrupt suffix was discarded *)
  valid_bytes : int;            (** length of the valid prefix *)
  resume_offset : int;          (** truncation point for {!reopen}: end of
                                    the last checkpoint *)
  prefix_reports : epoch_report list;
      (** epoch reports recovered from the carry ([[]] for single-file) *)
  prefix_violations : violation list;
  segmented : bool;
  segment_bytes : int;          (** rotation budget; 0 for single-file *)
  active_segment : int;         (** id of the segment replayed; 0 for
                                    single-file *)
  live_segments : int list;     (** manifest contents, ascending *)
}

val reopen : ?disk:Disk.t -> string -> replayed -> t
(** Reopen a replayed store for appending, first truncating the active
    segment (or single file) to [resume_offset] — the end of the last
    durable checkpoint.  For a segmented store this also deletes orphan
    segments newer than the manifest's active one (a crash mid-rotation
    leaves exactly that: the new segment created, the manifest rename
    lost) and rewrites the manifest, so the on-disk state a resumed run
    grows from is byte-identical to the uninterrupted run's at the same
    epoch.  Raises [Sys_error] on an unreadable path. *)

val replay : ?disk:Disk.t -> string -> (replayed, string) result
(** Read and validate a journal — a single file, or a segmented store
    directory (detected automatically).  For a segmented store only the
    newest intact segment is read (its carry stands in for the GC'd
    history); if the manifest itself is unreadable the directory is
    scanned for segments instead.  [Error] on a missing/unreadable
    store, a store that is not a POC journal, a version mismatch, or an
    active segment whose header/carry is damaged (run {!scrub} to
    quarantine it and fall back); torn or corrupted tails are
    truncated, never fatal. *)

(** {2 Scrub} *)

type scrub_verdict =
  | Scrub_clean
  | Scrub_torn_tail         (** damage at the tail, nothing decodable after *)
  | Scrub_corrupt_interior  (** valid frames resume after the damage *)
  | Scrub_unreadable        (** header/carry damaged; segment unusable *)

type scrub_action = Scrub_none | Scrub_truncated | Scrub_quarantined

type segment_scrub = {
  seg_id : int;       (** 0 for a single-file journal *)
  seg_path : string;
  records_ok : int;   (** checksum-valid, parseable records *)
  verdict : scrub_verdict;
  action : scrub_action;
  bytes_kept : int;
  bytes_dropped : int;
}

type scrub_report = {
  store : string;
  store_segmented : bool;
  applied : bool;     (** false when [dry_run] *)
  recovered : bool;   (** a resumable store remains after the scrub *)
  segments : segment_scrub list;  (** ascending id; one entry for a file *)
}

val scrub : ?disk:Disk.t -> ?dry_run:bool -> string -> (scrub_report, string) result
(** Walk every live segment (or the single file), classify each record,
    and repair what can be repaired: torn tails and interior corruption
    are truncated at the first bad byte (resume then falls back to the
    last checkpoint at or before it), segments whose header/carry is
    unreadable are moved to [quarantine/] and dropped from the
    manifest, falling back to the predecessor's checkpoint.  With
    [dry_run] nothing is modified; the report carries the actions that
    {e would} be taken.  Progress is counted in [Poc_obs.Metrics]
    ([poc_scrub_*]).  [Error] only when [path] is no journal at all. *)

val scrub_to_json : scrub_report -> string
(** Machine-readable report (one JSON object, trailing newline):
    [{"store":..,"mode":"segmented"|"file","applied":..,"recovered":..,
    "segments":[{"segment":..,"path":..,"records_ok":..,"verdict":..,
    "action":..,"bytes_kept":..,"bytes_dropped":..}],"quarantined":[..],
    "quarantined_count":..}].  ["store"] is the store root as given and
    ["quarantined_count"] the number of quarantined segments, so
    fleet-level tooling can aggregate scrub outcomes without re-parsing
    paths or the segment array. *)

val verdict_to_string : scrub_verdict -> string
(** ["clean"], ["torn_tail"], ["corrupt_interior"], ["unreadable"]. *)

val action_to_string : scrub_action -> string
(** ["none"], ["truncated"], ["quarantined"]. *)
