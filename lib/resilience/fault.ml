module Prng = Poc_util.Prng
module Wan = Poc_topology.Wan

type phase = Pre_auction | Pre_settle | Post_settle

let phase_to_string = function
  | Pre_auction -> "pre_auction"
  | Pre_settle -> "pre_settle"
  | Post_settle -> "post_settle"

let phase_of_string = function
  | "pre_auction" -> Some Pre_auction
  | "pre_settle" -> Some Pre_settle
  | "post_settle" -> Some Post_settle
  | _ -> None

type spec =
  | Link_failure of { at_epoch : int; count : int; duration : int }
  | Bp_bankruptcy of { at_epoch : int; bp : int }
  | Capacity_recall of { at_epoch : int; bp : int; fraction : float; duration : int }
  | Offer_shrinkage of { at_epoch : int; fraction : float }
  | Traffic_surge of { at_epoch : int; factor : float; duration : int }
  | Crash of { at_epoch : int; phase : phase }
  | Storage of { at_epoch : int; phase : phase; fault : Disk.fault }

type event =
  | Link_down of int
  | Link_up of int
  | Bp_exit of int
  | Withdraw of int list
  | Surge of float
  | Surge_over of float
  | Crash_point of phase
  | Disk_point of phase * Disk.fault

type schedule = { timeline : (int * event) list }

let spec_problems (wan : Wan.t) specs =
  let n_bps = Array.length wan.Wan.bps in
  let bad = ref [] in
  let check ok msg = if not ok then bad := msg :: !bad in
  List.iteri
    (fun i spec ->
      let where field = Printf.sprintf "spec %d: %s" i field in
      let epoch e = check (e >= 1) (where "at_epoch must be >= 1") in
      let duration d = check (d >= 1) (where "duration must be >= 1") in
      let bp_id bp =
        check (bp >= 0 && bp < n_bps)
          (where (Printf.sprintf "unknown BP %d (WAN has %d)" bp n_bps))
      in
      let fraction f =
        check
          (Float.is_finite f && f >= 0.0 && f <= 1.0)
          (where "fraction must be in [0,1]")
      in
      match spec with
      | Link_failure { at_epoch; count; duration = d } ->
        epoch at_epoch;
        duration d;
        check (count >= 1) (where "count must be >= 1")
      | Bp_bankruptcy { at_epoch; bp } ->
        epoch at_epoch;
        bp_id bp
      | Capacity_recall { at_epoch; bp; fraction = f; duration = d } ->
        epoch at_epoch;
        bp_id bp;
        fraction f;
        duration d
      | Offer_shrinkage { at_epoch; fraction = f } ->
        epoch at_epoch;
        fraction f
      | Traffic_surge { at_epoch; factor; duration = d } ->
        epoch at_epoch;
        duration d;
        check
          (Float.is_finite factor && factor > 0.0)
          (where "factor must be positive")
      | Crash { at_epoch; phase = _ } -> epoch at_epoch
      | Storage { at_epoch; phase = _; fault } -> (
        epoch at_epoch;
        match fault with
        | Disk.Short_write { drop } | Disk.Lying_fsync { drop } ->
          check (drop >= 1) (where "drop must be >= 1")
        | Disk.Torn_rename | Disk.Corrupt_byte _ -> ()))
    specs;
  List.rev !bad

let validate wan specs =
  match spec_problems wan specs with
  | [] -> Ok ()
  | problems -> Error ("Fault: " ^ String.concat "; " problems)

let all_bp_link_ids (wan : Wan.t) =
  Array.to_list wan.Wan.bps
  |> List.concat_map (fun (bp : Wan.bp) -> Array.to_list bp.Wan.link_ids)
  |> List.sort_uniq compare

let pick_links rng pool count =
  let arr = Array.of_list pool in
  let k = min count (Array.length arr) in
  Prng.sample_without_replacement rng k arr
  |> Array.to_list |> List.sort compare

let compile wan ~seed specs =
  match validate wan specs with
  | Error msg -> Error msg
  | Ok () ->
    let rng = Prng.create seed in
    let timeline = ref [] in
    let emit epoch ev = timeline := (epoch, ev) :: !timeline in
    List.iter
      (fun spec ->
        match spec with
        | Link_failure { at_epoch; count; duration } ->
          let picked = pick_links rng (all_bp_link_ids wan) count in
          List.iter
            (fun id ->
              emit at_epoch (Link_down id);
              emit (at_epoch + duration) (Link_up id))
            picked
        | Bp_bankruptcy { at_epoch; bp } -> emit at_epoch (Bp_exit bp)
        | Capacity_recall { at_epoch; bp; fraction; duration } ->
          let pool = Wan.bp_link_ids wan bp in
          let count =
            int_of_float (ceil (fraction *. float_of_int (List.length pool)))
          in
          let picked = pick_links rng pool count in
          List.iter
            (fun id ->
              emit at_epoch (Link_down id);
              emit (at_epoch + duration) (Link_up id))
            picked
        | Offer_shrinkage { at_epoch; fraction } ->
          let pool = all_bp_link_ids wan in
          let count =
            int_of_float (ceil (fraction *. float_of_int (List.length pool)))
          in
          emit at_epoch (Withdraw (pick_links rng pool count))
        | Traffic_surge { at_epoch; factor; duration } ->
          emit at_epoch (Surge factor);
          emit (at_epoch + duration) (Surge_over factor)
        (* No random draw: adding a Crash or Storage spec never
           perturbs the links the other specs pick, so a
           crashed-and-resumed run is comparable to the same schedule
           without the crash.  (Corrupt_byte carries its own seed.) *)
        | Crash { at_epoch; phase } -> emit at_epoch (Crash_point phase)
        | Storage { at_epoch; phase; fault } ->
          emit at_epoch (Disk_point (phase, fault)))
      specs;
    (* Stable sort keeps compile order within an epoch. *)
    Ok { timeline = List.stable_sort (fun (a, _) (b, _) -> compare a b) (List.rev !timeline) }

let at schedule epoch =
  List.filter_map
    (fun (e, ev) -> if e = epoch then Some ev else None)
    schedule.timeline

let events schedule = schedule.timeline

let event_to_string = function
  | Link_down id -> Printf.sprintf "link_down(%d)" id
  | Link_up id -> Printf.sprintf "link_up(%d)" id
  | Bp_exit bp -> Printf.sprintf "bp_exit(%d)" bp
  | Withdraw ids ->
    Printf.sprintf "withdraw(%s)"
      (String.concat "," (List.map string_of_int ids))
  | Surge f -> Printf.sprintf "surge(x%.2f)" f
  | Surge_over f -> Printf.sprintf "surge_over(x%.2f)" f
  | Crash_point phase -> Printf.sprintf "crash(%s)" (phase_to_string phase)
  | Disk_point (phase, fault) ->
    Printf.sprintf "disk(%s,%s)" (phase_to_string phase)
      (Disk.fault_to_string fault)

let describe schedule epoch =
  (* Mass events (a full-portfolio recall downs a hundred links at
     once) are compressed to a count so the incident log stays
     readable: "link_down x139" instead of 139 entries. *)
  let kind = function
    | Link_down _ -> "link_down"
    | Link_up _ -> "link_up"
    | Bp_exit _ -> "bp_exit"
    | Withdraw _ -> "withdraw"
    | Surge _ -> "surge"
    | Surge_over _ -> "surge_over"
    | Crash_point _ -> "crash"
    | Disk_point _ -> "disk"
  in
  (* Crash and disk-fault points kill the process, they are not market
     faults: hiding them here keeps the incident log of a
     crashed-and-resumed run byte-identical to the same schedule run
     uninterrupted. *)
  match
    at schedule epoch
    |> List.filter (function
         | Crash_point _ | Disk_point _ -> false
         | _ -> true)
  with
  | [] -> "-"
  | evs ->
    let groups = ref [] in
    List.iter
      (fun ev ->
        let k = kind ev in
        match List.assoc_opt k !groups with
        | Some cell -> cell := ev :: !cell
        | None -> groups := !groups @ [ (k, ref [ ev ]) ])
      evs;
    !groups
    |> List.map (fun (k, cell) ->
           match List.rev !cell with
           | [ single ] -> event_to_string single
           | many when List.length many <= 4 ->
             String.concat "; " (List.map event_to_string many)
           | many -> Printf.sprintf "%s x%d" k (List.length many))
    |> String.concat "; "
