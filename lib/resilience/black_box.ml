module Flight = Poc_obs.Flight

type t = {
  disk : Disk.t;
  bb_path : string;
  bb_ring : Flight.t;
  rewrite_bytes : int;
  mutable bytes : int;  (* on-disk size as of the last flush *)
}

let ring t = t.bb_ring

let path t = t.bb_path

let file_bytes t = t.bytes

let rewrite t =
  let img = Flight.image t.bb_ring in
  Disk.write_file_atomic t.disk t.bb_path img;
  t.bytes <- String.length img

let create ?capacity ?(rewrite_bytes = 262144) ?disk path =
  if rewrite_bytes < 1 then
    invalid_arg "Black_box.create: rewrite_bytes must be >= 1";
  let disk = match disk with Some d -> d | None -> Disk.real () in
  (* The box may be created before the journal makes its store
     directory (the fleet hands one box per scenario to a run that has
     not opened its journal yet). *)
  let dir = Filename.dirname path in
  if not (Disk.exists disk dir) then Disk.mkdir_p disk dir;
  let t =
    {
      disk;
      bb_path = path;
      bb_ring = Flight.create ?capacity ();
      rewrite_bytes;
      bytes = 0;
    }
  in
  rewrite t;
  t

let append t bytes =
  let f = Disk.open_append t.disk t.bb_path in
  Disk.append t.disk f bytes;
  Disk.sync t.disk f;
  Disk.close_file t.disk f;
  t.bytes <- t.bytes + String.length bytes

let flush t =
  match Flight.drain t.bb_ring with
  | `Empty -> ()
  | `Wrapped -> rewrite t
  | `Append bytes ->
    if t.bytes + String.length bytes > t.rewrite_bytes then rewrite t
    else append t bytes

let close t = flush t

let load ?disk path =
  let disk = match disk with Some d -> d | None -> Disk.real () in
  match Disk.read_file disk path with
  | exception Sys_error e -> Error e
  | data -> Flight.decode_image data

type scrub_result = {
  fb_bytes_kept : int;
  fb_bytes_dropped : int;
  fb_records : int;
}

let scrub ?disk path =
  let disk = match disk with Some d -> d | None -> Disk.real () in
  match Disk.read_file disk path with
  | exception Sys_error e -> Error e
  | data -> (
    let keep = Flight.valid_prefix data in
    if keep = 0 then Error (path ^ ": not a flight image")
    else begin
      let dropped = String.length data - keep in
      if dropped > 0 then Disk.truncate_file disk path keep;
      match Flight.decode_image (String.sub data 0 keep) with
      | Error e -> Error e (* unreachable: the prefix decoded above *)
      | Ok img ->
        Ok
          {
            fb_bytes_kept = keep;
            fb_bytes_dropped = dropped;
            fb_records = img.Flight.img_frames;
          }
    end)
