module Vcg = Poc_auction.Vcg
module Bid = Poc_auction.Bid
module Acceptability = Poc_auction.Acceptability
module Graph = Poc_graph.Graph

type step =
  | Relax_demand of float
  | Step_down of Acceptability.t
  | Connectivity_only
  | External_transit

type config = {
  relax_factors : float list;
  step_rules : bool;
  max_attempts : int;
}

let default_config =
  { relax_factors = [ 0.9; 0.75; 0.5 ]; step_rules = true; max_attempts = 8 }

let config_problems config =
  let bad = ref [] in
  let check ok msg = if not ok then bad := msg :: !bad in
  List.iter
    (fun f ->
      check
        (Float.is_finite f && f > 0.0 && f <= 1.0)
        (Printf.sprintf "relax factor %g must be in (0,1]" f))
    config.relax_factors;
  check (config.max_attempts >= 1) "max_attempts must be >= 1";
  List.rev !bad

let validate_config config =
  match config_problems config with
  | [] -> Ok ()
  | problems -> Error ("Ladder: " ^ String.concat "; " problems)

type engaged = {
  step : step;
  attempts : int;
  outcome : Vcg.outcome;
  demand_scale : float;
}

let weaker_rules = function
  | Acceptability.Per_pair_failure ->
    [ Acceptability.Single_link_failure; Acceptability.Handle_load ]
  | Acceptability.Single_link_failure -> [ Acceptability.Handle_load ]
  | Acceptability.Handle_load -> []

let rungs ~rule config =
  let relax = List.map (fun f -> Relax_demand f) config.relax_factors in
  let stepped =
    if config.step_rules then List.map (fun r -> Step_down r) (weaker_rules rule)
    else []
  in
  let all = relax @ stepped @ [ Connectivity_only; External_transit ] in
  List.filteri (fun i _ -> i < config.max_attempts) all

(* Offered (id, standalone price) pairs of the problem, unbanned only. *)
let offered_prices ~banned (problem : Vcg.problem) =
  let bp_links =
    Array.to_list problem.Vcg.bids
    |> List.concat_map (fun bid ->
           List.map (fun id -> (id, Bid.single_price bid id)) (Bid.links bid))
  in
  (bp_links @ problem.Vcg.virtual_prices)
  |> List.filter (fun (id, _) -> not (banned id))
  |> List.sort (fun (a, pa) (b, pb) -> compare (pa, a) (pb, b))

(* Cheapest spanning forest of the unbanned offer pool (Kruskal). *)
let spanning_forest ~banned (problem : Vcg.problem) =
  let n = Graph.node_count problem.Vcg.graph in
  let parent = Array.init n Fun.id in
  let rec find x = if parent.(x) = x then x else find parent.(x) in
  let union a b =
    let ra = find a and rb = find b in
    if ra = rb then false
    else begin
      parent.(ra) <- rb;
      true
    end
  in
  let chosen =
    List.filter
      (fun (id, _) ->
        let e = Graph.edge problem.Vcg.graph id in
        union e.Graph.u e.Graph.v)
      (offered_prices ~banned problem)
    |> List.map fst |> List.sort compare
  in
  chosen

let selection_of problem links =
  { Vcg.selected = links; cost = Vcg.selection_cost problem links }

let pay_as_bid problem links =
  match links with
  | [] -> None
  | _ :: _ ->
    let sel = selection_of problem links in
    Vcg.run_pay_as_bid ~select:(fun ?banned:_ ?cache:_ _ -> Some sel) problem

let scale_demands factor demands =
  List.map (fun (a, b, d) -> (a, b, d *. factor)) demands

let try_step ~banned ?pool (problem : Vcg.problem) = function
  | Relax_demand f ->
    let select ?banned:(extra = fun _ -> false) ?cache p =
      Vcg.select_greedy ~banned:(fun id -> banned id || extra id) ?cache ?pool p
    in
    let relaxed =
      { problem with Vcg.demands = scale_demands f problem.Vcg.demands }
    in
    Option.map (fun o -> (o, f)) (Vcg.run ~select ?pool relaxed)
  | Step_down rule ->
    let select ?banned:(extra = fun _ -> false) ?cache p =
      Vcg.select_greedy ~banned:(fun id -> banned id || extra id) ?cache ?pool p
    in
    Option.map (fun o -> (o, 1.0))
      (Vcg.run ~select ?pool { problem with Vcg.rule = rule })
  | Connectivity_only ->
    Option.map
      (fun o -> (o, 1.0))
      (pay_as_bid problem (spanning_forest ~banned problem))
  | External_transit ->
    let links =
      List.filter_map
        (fun (id, _) -> if banned id then None else Some id)
        problem.Vcg.virtual_prices
      |> List.sort compare
    in
    Option.map (fun o -> (o, 1.0)) (pay_as_bid problem links)

let engage ~banned ?pool config (problem : Vcg.problem) =
  (match validate_config config with
  | Ok () -> ()
  | Error msg -> invalid_arg msg);
  let steps = rungs ~rule:problem.Vcg.rule config in
  let winner_at i step (outcome, demand_scale) =
    { step; attempts = i + 1; outcome; demand_scale }
  in
  match pool with
  | Some p
    when Poc_util.Pool.size p > 0
         && List.length steps > 1
         && not (Poc_obs.Trace.enabled ()) ->
    (* Rungs are independent pure attempts, so evaluate them all
       speculatively across the pool and keep the first success in rung
       order: worst-case degraded-epoch latency is the slowest single
       rung, not the sum of every failed rung.  [attempts] stays the
       winner's 1-based rung index, exactly what the serial walk
       reports, so incident logs are identical at every pool size.
       Tracing pins the serial walk: span stacks are submitting-domain
       state, and the auction inside each rung opens spans. *)
    let results =
      Poc_util.Pool.map_list p
        (fun step -> try_step ~banned ~pool:p problem step)
        steps
    in
    let rec pick i steps results =
      match (steps, results) with
      | step :: _, Some r :: _ -> Some (winner_at i step r)
      | _ :: steps, None :: results -> pick (i + 1) steps results
      | _, _ -> None
    in
    pick 0 steps results
  | Some _ | None ->
    let rec go i = function
      | [] -> None
      | step :: rest -> (
        match try_step ~banned ?pool problem step with
        | Some r -> Some (winner_at i step r)
        | None -> go (i + 1) rest)
    in
    go 0 steps

let step_to_string = function
  | Relax_demand f -> Printf.sprintf "relax(%.2f)" f
  | Step_down rule -> Printf.sprintf "step_down(%s)" (Acceptability.name rule)
  | Connectivity_only -> "connectivity_only"
  | External_transit -> "external_transit"
