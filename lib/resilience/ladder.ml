module Vcg = Poc_auction.Vcg
module Bid = Poc_auction.Bid
module Acceptability = Poc_auction.Acceptability
module Graph = Poc_graph.Graph

type step =
  | Relax_demand of float
  | Step_down of Acceptability.t
  | Connectivity_only
  | External_transit

type config = {
  relax_factors : float list;
  step_rules : bool;
  max_attempts : int;
}

let default_config =
  { relax_factors = [ 0.9; 0.75; 0.5 ]; step_rules = true; max_attempts = 8 }

let config_problems config =
  let bad = ref [] in
  let check ok msg = if not ok then bad := msg :: !bad in
  List.iter
    (fun f ->
      check
        (Float.is_finite f && f > 0.0 && f <= 1.0)
        (Printf.sprintf "relax factor %g must be in (0,1]" f))
    config.relax_factors;
  check (config.max_attempts >= 1) "max_attempts must be >= 1";
  List.rev !bad

let validate_config config =
  match config_problems config with
  | [] -> Ok ()
  | problems -> Error ("Ladder: " ^ String.concat "; " problems)

type engaged = {
  step : step;
  attempts : int;
  outcome : Vcg.outcome;
  demand_scale : float;
}

let weaker_rules = function
  | Acceptability.Per_pair_failure ->
    [ Acceptability.Single_link_failure; Acceptability.Handle_load ]
  | Acceptability.Single_link_failure -> [ Acceptability.Handle_load ]
  | Acceptability.Handle_load -> []

let rungs ~rule config =
  let relax = List.map (fun f -> Relax_demand f) config.relax_factors in
  let stepped =
    if config.step_rules then List.map (fun r -> Step_down r) (weaker_rules rule)
    else []
  in
  let all = relax @ stepped @ [ Connectivity_only; External_transit ] in
  List.filteri (fun i _ -> i < config.max_attempts) all

(* Offered (id, standalone price) pairs of the problem, unbanned only. *)
let offered_prices ~banned (problem : Vcg.problem) =
  let bp_links =
    Array.to_list problem.Vcg.bids
    |> List.concat_map (fun bid ->
           List.map (fun id -> (id, Bid.single_price bid id)) (Bid.links bid))
  in
  (bp_links @ problem.Vcg.virtual_prices)
  |> List.filter (fun (id, _) -> not (banned id))
  |> List.sort (fun (a, pa) (b, pb) -> compare (pa, a) (pb, b))

(* Cheapest spanning forest of the unbanned offer pool (Kruskal). *)
let spanning_forest ~banned (problem : Vcg.problem) =
  let n = Graph.node_count problem.Vcg.graph in
  let parent = Array.init n Fun.id in
  let rec find x = if parent.(x) = x then x else find parent.(x) in
  let union a b =
    let ra = find a and rb = find b in
    if ra = rb then false
    else begin
      parent.(ra) <- rb;
      true
    end
  in
  let chosen =
    List.filter
      (fun (id, _) ->
        let e = Graph.edge problem.Vcg.graph id in
        union e.Graph.u e.Graph.v)
      (offered_prices ~banned problem)
    |> List.map fst |> List.sort compare
  in
  chosen

let selection_of problem links =
  { Vcg.selected = links; cost = Vcg.selection_cost problem links }

let pay_as_bid problem links =
  match links with
  | [] -> None
  | _ :: _ ->
    let sel = selection_of problem links in
    Vcg.run_pay_as_bid ~select:(fun ?banned:_ _ -> Some sel) problem

let scale_demands factor demands =
  List.map (fun (a, b, d) -> (a, b, d *. factor)) demands

let try_step ~banned ?pool (problem : Vcg.problem) = function
  | Relax_demand f ->
    let select ?banned:(extra = fun _ -> false) p =
      Vcg.select_greedy ~banned:(fun id -> banned id || extra id) ?pool p
    in
    let relaxed =
      { problem with Vcg.demands = scale_demands f problem.Vcg.demands }
    in
    Option.map (fun o -> (o, f)) (Vcg.run ~select ?pool relaxed)
  | Step_down rule ->
    let select ?banned:(extra = fun _ -> false) p =
      Vcg.select_greedy ~banned:(fun id -> banned id || extra id) ?pool p
    in
    Option.map (fun o -> (o, 1.0))
      (Vcg.run ~select ?pool { problem with Vcg.rule = rule })
  | Connectivity_only ->
    Option.map
      (fun o -> (o, 1.0))
      (pay_as_bid problem (spanning_forest ~banned problem))
  | External_transit ->
    let links =
      List.filter_map
        (fun (id, _) -> if banned id then None else Some id)
        problem.Vcg.virtual_prices
      |> List.sort compare
    in
    Option.map (fun o -> (o, 1.0)) (pay_as_bid problem links)

let engage ~banned ?pool config (problem : Vcg.problem) =
  (match validate_config config with
  | Ok () -> ()
  | Error msg -> invalid_arg msg);
  let rec go attempts = function
    | [] -> None
    | step :: rest -> (
      let attempts = attempts + 1 in
      match try_step ~banned ?pool problem step with
      | Some (outcome, demand_scale) ->
        Some { step; attempts; outcome; demand_scale }
      | None -> go attempts rest)
  in
  go 0 (rungs ~rule:problem.Vcg.rule config)

let step_to_string = function
  | Relax_demand f -> Printf.sprintf "relax(%.2f)" f
  | Step_down rule -> Printf.sprintf "step_down(%s)" (Acceptability.name rule)
  | Connectivity_only -> "connectivity_only"
  | External_transit -> "external_transit"
