(** Disk-backed persistence for the {!Poc_obs.Flight} recorder.

    [Flight] rings and encodes; this module owns the file.  A box is a
    single [FLIGHT] file (living next to — for a segmented store,
    inside — the journal it narrates) that starts as a header-only
    image and grows by incremental appends: every {!flush} drains the
    ring's pending frames, appends them, and syncs, so the file is
    durable at every epoch boundary and fault point without rewriting.
    When the file outgrows its byte budget (or the ring wrapped past an
    undrained backlog) the box compacts: the current ring image is
    rewritten atomically via [Disk.write_file_atomic], bounding the
    file at roughly the budget however long the run.

    The box deliberately takes its {e own} {!Disk.t} (defaulting to a
    fresh one over the real filesystem): sharing the journal's disk
    would let flight appends perturb the power-cut fault-tracking
    metadata (which file was last appended, which rename is pending)
    and move where injected damage lands — violating the invariant that
    journal bytes are identical with the recorder on and off.

    A SIGKILL can cut an append short; {!load} tolerates the torn tail
    (everything before it survives) and {!scrub} truncates the file to
    its valid prefix, after which it re-reads byte-identically. *)

type t

val create :
  ?capacity:int -> ?rewrite_bytes:int -> ?disk:Disk.t -> string -> t
(** Start a fresh box at [path]: atomically write a header-only image,
    then append on every flush.  [capacity] is the ring's record count
    (default 1024); [rewrite_bytes] the compaction budget in bytes
    (default 262144).  [disk] defaults to a fresh [Disk.real ()]. *)

val ring : t -> Poc_obs.Flight.t
(** The ring to emit into. *)

val path : t -> string

val flush : t -> unit
(** Drain the ring and persist: append + sync the new frames, or
    compact to a fresh image when over budget or wrapped.  A no-op when
    nothing was emitted since the last flush. *)

val file_bytes : t -> int
(** Current on-disk size the box believes it has (post-flush). *)

val close : t -> unit
(** Final {!flush}.  The box holds no open handles between flushes, so
    there is nothing else to release. *)

val load :
  ?disk:Disk.t -> string -> (Poc_obs.Flight.image_data, string) result
(** Read and decode a box file, tolerating a torn tail.  [Error] on a
    missing file or a damaged header. *)

type scrub_result = {
  fb_bytes_kept : int;
  fb_bytes_dropped : int;  (** 0 when the file was already clean *)
  fb_records : int;  (** record frames in the kept prefix *)
}

val scrub : ?disk:Disk.t -> string -> (scrub_result, string) result
(** Truncate [path] to its longest valid image prefix (header plus
    whole record frames).  Idempotent: a second scrub keeps every byte.
    [Error] on a missing file or a header too damaged to identify the
    file as a flight image (nothing is modified then). *)
