module Codec = Poc_util.Codec
module Epochs = Poc_market.Epochs
module Acceptability = Poc_auction.Acceptability

type status =
  | Healthy
  | Degraded of Ladder.step
  | Carried
  | Blackout

type epoch_report = {
  epoch : int;
  status : status;
  spend : float;
  price_per_gbps : float;
  delivered_fraction : float;
  selected_links : int;
  recalled_links : int;
  active_faults : int;
  ladder_attempts : int;
  ledger_conservation : float option;
  posted_price : float option;
}

type violation = { epoch : int; invariant : string; detail : string }

type epoch_record = {
  report : epoch_report;
  events : Fault.event list;
  selected : int list;
  violations : violation list;
}

type snapshot = {
  at_epoch : int;
  prng_state : int64;
  cost_level : float array;
  down : int list;
  gone : int list;
  surge : float;
  demand_scale : float;
  last_good : (int list * float) option;
}

type header = {
  version : int;
  market_seed : int;
  market_epochs : int;
  n_bps : int;
  snapshot_every : int;
  digest : int64;
}

let version = 1
let magic = 0x504F434A (* "POCJ" *)

(* --- field codecs ------------------------------------------------------- *)

let put_rule w rule =
  Codec.put_u8 w
    (match rule with
    | Acceptability.Handle_load -> 0
    | Acceptability.Single_link_failure -> 1
    | Acceptability.Per_pair_failure -> 2)

let get_rule r =
  match Codec.get_u8 r with
  | 0 -> Acceptability.Handle_load
  | 1 -> Acceptability.Single_link_failure
  | 2 -> Acceptability.Per_pair_failure
  | n -> raise (Codec.Corrupt (Printf.sprintf "bad acceptability tag %d" n))

let put_phase w phase =
  Codec.put_u8 w
    (match phase with
    | Fault.Pre_auction -> 0
    | Fault.Pre_settle -> 1
    | Fault.Post_settle -> 2)

let get_phase r =
  match Codec.get_u8 r with
  | 0 -> Fault.Pre_auction
  | 1 -> Fault.Pre_settle
  | 2 -> Fault.Post_settle
  | n -> raise (Codec.Corrupt (Printf.sprintf "bad phase tag %d" n))

let put_event w = function
  | Fault.Link_down id ->
    Codec.put_u8 w 0;
    Codec.put_int w id
  | Fault.Link_up id ->
    Codec.put_u8 w 1;
    Codec.put_int w id
  | Fault.Bp_exit bp ->
    Codec.put_u8 w 2;
    Codec.put_int w bp
  | Fault.Withdraw ids ->
    Codec.put_u8 w 3;
    Codec.put_list w Codec.put_int ids
  | Fault.Surge f ->
    Codec.put_u8 w 4;
    Codec.put_f64 w f
  | Fault.Surge_over f ->
    Codec.put_u8 w 5;
    Codec.put_f64 w f
  | Fault.Crash_point phase ->
    Codec.put_u8 w 6;
    put_phase w phase

let get_event r =
  match Codec.get_u8 r with
  | 0 -> Fault.Link_down (Codec.get_int r)
  | 1 -> Fault.Link_up (Codec.get_int r)
  | 2 -> Fault.Bp_exit (Codec.get_int r)
  | 3 -> Fault.Withdraw (Codec.get_list r Codec.get_int)
  | 4 -> Fault.Surge (Codec.get_f64 r)
  | 5 -> Fault.Surge_over (Codec.get_f64 r)
  | 6 -> Fault.Crash_point (get_phase r)
  | n -> raise (Codec.Corrupt (Printf.sprintf "bad event tag %d" n))

let put_status w = function
  | Healthy -> Codec.put_u8 w 0
  | Degraded step -> (
    Codec.put_u8 w 1;
    match step with
    | Ladder.Relax_demand f ->
      Codec.put_u8 w 0;
      Codec.put_f64 w f
    | Ladder.Step_down rule ->
      Codec.put_u8 w 1;
      put_rule w rule
    | Ladder.Connectivity_only -> Codec.put_u8 w 2
    | Ladder.External_transit -> Codec.put_u8 w 3)
  | Carried -> Codec.put_u8 w 2
  | Blackout -> Codec.put_u8 w 3

let get_status r =
  match Codec.get_u8 r with
  | 0 -> Healthy
  | 1 ->
    Degraded
      (match Codec.get_u8 r with
      | 0 -> Ladder.Relax_demand (Codec.get_f64 r)
      | 1 -> Ladder.Step_down (get_rule r)
      | 2 -> Ladder.Connectivity_only
      | 3 -> Ladder.External_transit
      | n -> raise (Codec.Corrupt (Printf.sprintf "bad ladder-step tag %d" n)))
  | 2 -> Carried
  | 3 -> Blackout
  | n -> raise (Codec.Corrupt (Printf.sprintf "bad status tag %d" n))

let put_report w (er : epoch_report) =
  Codec.put_int w er.epoch;
  put_status w er.status;
  Codec.put_f64 w er.spend;
  Codec.put_f64 w er.price_per_gbps;
  Codec.put_f64 w er.delivered_fraction;
  Codec.put_int w er.selected_links;
  Codec.put_int w er.recalled_links;
  Codec.put_int w er.active_faults;
  Codec.put_int w er.ladder_attempts;
  Codec.put_option w Codec.put_f64 er.ledger_conservation;
  Codec.put_option w Codec.put_f64 er.posted_price

let get_report r =
  let epoch = Codec.get_int r in
  let status = get_status r in
  let spend = Codec.get_f64 r in
  let price_per_gbps = Codec.get_f64 r in
  let delivered_fraction = Codec.get_f64 r in
  let selected_links = Codec.get_int r in
  let recalled_links = Codec.get_int r in
  let active_faults = Codec.get_int r in
  let ladder_attempts = Codec.get_int r in
  let ledger_conservation = Codec.get_option r Codec.get_f64 in
  let posted_price = Codec.get_option r Codec.get_f64 in
  {
    epoch;
    status;
    spend;
    price_per_gbps;
    delivered_fraction;
    selected_links;
    recalled_links;
    active_faults;
    ladder_attempts;
    ledger_conservation;
    posted_price;
  }

let put_violation w (v : violation) =
  Codec.put_int w v.epoch;
  Codec.put_string w v.invariant;
  Codec.put_string w v.detail

let get_violation r =
  let epoch = Codec.get_int r in
  let invariant = Codec.get_string r in
  let detail = Codec.get_string r in
  { epoch; invariant; detail }

(* --- digest ------------------------------------------------------------- *)

let digest ~(market : Epochs.config) ~(ladder : Ladder.config) schedule =
  let w = Codec.writer () in
  Codec.put_int w market.Epochs.epochs;
  Codec.put_f64 w market.Epochs.cost_trend;
  Codec.put_f64 w market.Epochs.cost_volatility;
  Codec.put_f64 w market.Epochs.demand_growth;
  Codec.put_int w market.Epochs.seed;
  Codec.put_list w
    (fun w (bp, strategy) ->
      Codec.put_int w bp;
      match strategy with
      | Epochs.Truthful -> Codec.put_u8 w 0
      | Epochs.Markup m ->
        Codec.put_u8 w 1;
        Codec.put_f64 w m
      | Epochs.Recallable f ->
        Codec.put_u8 w 2;
        Codec.put_f64 w f)
    market.Epochs.strategies;
  Codec.put_list w Codec.put_f64 ladder.Ladder.relax_factors;
  Codec.put_bool w ladder.Ladder.step_rules;
  Codec.put_int w ladder.Ladder.max_attempts;
  (* Crash points are excluded: they kill the process, not the market,
     and a resumed run ignores them — so a journal written under a
     crash-injecting schedule can be resumed under the same schedule
     with or without its [Crash] specs. *)
  Codec.put_list w
    (fun w (epoch, ev) ->
      Codec.put_int w epoch;
      put_event w ev)
    (List.filter
       (fun (_, ev) -> match ev with Fault.Crash_point _ -> false | _ -> true)
       (Fault.events schedule));
  Int64.of_int (Codec.crc32 (Codec.contents w))

(* --- record payloads ---------------------------------------------------- *)

let header_payload (h : header) =
  let w = Codec.writer () in
  Codec.put_u8 w 0;
  Codec.put_u32 w magic;
  Codec.put_int w h.version;
  Codec.put_int w h.market_seed;
  Codec.put_int w h.market_epochs;
  Codec.put_int w h.n_bps;
  Codec.put_int w h.snapshot_every;
  Codec.put_i64 w h.digest;
  Codec.contents w

let epoch_payload (rec_ : epoch_record) =
  let w = Codec.writer () in
  Codec.put_u8 w 1;
  put_report w rec_.report;
  Codec.put_list w put_event rec_.events;
  Codec.put_list w Codec.put_int rec_.selected;
  Codec.put_list w put_violation rec_.violations;
  Codec.contents w

let snapshot_payload (s : snapshot) =
  let w = Codec.writer () in
  Codec.put_u8 w 2;
  Codec.put_int w s.at_epoch;
  Codec.put_i64 w s.prng_state;
  Codec.put_f64_array w s.cost_level;
  Codec.put_list w Codec.put_int s.down;
  Codec.put_list w Codec.put_int s.gone;
  Codec.put_f64 w s.surge;
  Codec.put_f64 w s.demand_scale;
  Codec.put_option w
    (fun w (ids, cost) ->
      Codec.put_list w Codec.put_int ids;
      Codec.put_f64 w cost)
    s.last_good;
  Codec.contents w

let complete_payload incidents =
  let w = Codec.writer () in
  Codec.put_u8 w 3;
  Codec.put_string w incidents;
  Codec.contents w

(* --- writer ------------------------------------------------------------- *)

module Metrics = Poc_obs.Metrics

let m_bytes =
  Metrics.counter ~help:"Bytes appended to run journals" Metrics.default
    "poc_journal_bytes_total"

let m_flushes =
  Metrics.counter ~help:"Journal record flushes" Metrics.default
    "poc_journal_flushes_total"

type t = { oc : out_channel }

let write_frame t payload =
  let framed = Codec.frame payload in
  Metrics.Counter.add m_bytes (float_of_int (String.length framed));
  Metrics.Counter.inc m_flushes;
  output_string t.oc framed;
  flush t.oc

let create path header =
  let oc = open_out_bin path in
  let t = { oc } in
  write_frame t (header_payload header);
  t

let reopen path ~at =
  let contents = In_channel.with_open_bin path In_channel.input_all in
  if at < 0 || at > String.length contents then
    invalid_arg
      (Printf.sprintf "Journal.reopen: offset %d outside file of %d bytes" at
         (String.length contents));
  let oc = open_out_bin path in
  output_string oc (String.sub contents 0 at);
  flush oc;
  { oc }

let append_epoch t rec_ = write_frame t (epoch_payload rec_)
let append_snapshot t s = write_frame t (snapshot_payload s)
let append_complete t ~incidents = write_frame t (complete_payload incidents)

let append_torn t ~epoch =
  (* Exactly what a crash between auction and settlement leaves on
     disk: a frame header promising more payload than ever arrived. *)
  let w = Codec.writer () in
  Codec.put_u8 w 1;
  Codec.put_int w epoch;
  let partial = Codec.contents w in
  Codec.put_string w "unsettled epoch lost to the crash";
  let framed = Codec.frame (Codec.contents w) in
  Metrics.Counter.add m_bytes (float_of_int (8 + String.length partial));
  Metrics.Counter.inc m_flushes;
  output_string t.oc (String.sub framed 0 (8 + String.length partial));
  flush t.oc

let close t = close_out t.oc

(* --- replay ------------------------------------------------------------- *)

type replayed = {
  header : header;
  records : epoch_record list;
  snapshot : snapshot option;
  complete : string option;
  torn_tail : bool;
  valid_bytes : int;
  resume_offset : int;
}

let parse_header payload =
  let r = Codec.reader payload in
  if Codec.get_u8 r <> 0 then Error "first record is not a journal header"
  else if Codec.get_u32 r <> magic then Error "bad magic: not a POC journal"
  else
    let v = Codec.get_int r in
    if v <> version then
      Error
        (Printf.sprintf
           "journal format version %d, but this build reads version %d" v
           version)
    else
      let market_seed = Codec.get_int r in
      let market_epochs = Codec.get_int r in
      let n_bps = Codec.get_int r in
      let snapshot_every = Codec.get_int r in
      let digest = Codec.get_i64 r in
      Ok { version = v; market_seed; market_epochs; n_bps; snapshot_every; digest }

let parse_record payload =
  let r = Codec.reader payload in
  match Codec.get_u8 r with
  | 1 ->
    let report = get_report r in
    let events = Codec.get_list r get_event in
    let selected = Codec.get_list r Codec.get_int in
    let violations = Codec.get_list r get_violation in
    `Epoch { report; events; selected; violations }
  | 2 ->
    let at_epoch = Codec.get_int r in
    let prng_state = Codec.get_i64 r in
    let cost_level = Codec.get_f64_array r in
    let down = Codec.get_list r Codec.get_int in
    let gone = Codec.get_list r Codec.get_int in
    let surge = Codec.get_f64 r in
    let demand_scale = Codec.get_f64 r in
    let last_good =
      Codec.get_option r (fun r ->
          let ids = Codec.get_list r Codec.get_int in
          let cost = Codec.get_f64 r in
          (ids, cost))
    in
    `Snapshot
      { at_epoch; prng_state; cost_level; down; gone; surge; demand_scale; last_good }
  | 3 -> `Complete (Codec.get_string r)
  | n -> raise (Codec.Corrupt (Printf.sprintf "unknown record kind %d" n))

let replay path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error ("cannot read journal: " ^ msg)
  | data -> (
    match Codec.next_frame data ~pos:0 with
    | End -> Error "empty file: not a POC journal"
    | Torn -> Error "unreadable header: not a POC journal"
    | Frame { payload; next } -> (
      match parse_header payload with
      | exception Codec.Corrupt _ -> Error "corrupt header: not a POC journal"
      | Error msg -> Error msg
      | Ok header ->
        let records = ref [] in
        let snapshot = ref None in
        let complete = ref None in
        let torn = ref false in
        let valid = ref next in
        let resume = ref next in
        let rec loop pos =
          match Codec.next_frame data ~pos with
          | End -> ()
          | Torn -> torn := true
          | Frame { payload; next } -> (
            match parse_record payload with
            | exception Codec.Corrupt _ -> torn := true
            | `Epoch rec_ ->
              records := rec_ :: !records;
              valid := next;
              loop next
            | `Snapshot s ->
              snapshot := Some s;
              valid := next;
              resume := next;
              loop next
            | `Complete incidents ->
              complete := Some incidents;
              valid := next;
              loop next)
        in
        loop next;
        Ok
          {
            header;
            records = List.rev !records;
            snapshot = !snapshot;
            complete = !complete;
            torn_tail = !torn;
            valid_bytes = !valid;
            resume_offset = !resume;
          }))
