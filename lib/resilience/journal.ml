module Codec = Poc_util.Codec
module Epochs = Poc_market.Epochs
module Acceptability = Poc_auction.Acceptability

type status =
  | Healthy
  | Degraded of Ladder.step
  | Carried
  | Blackout

type epoch_report = {
  epoch : int;
  status : status;
  spend : float;
  price_per_gbps : float;
  delivered_fraction : float;
  selected_links : int;
  recalled_links : int;
  active_faults : int;
  ladder_attempts : int;
  ledger_conservation : float option;
  posted_price : float option;
}

type violation = { epoch : int; invariant : string; detail : string }

type epoch_record = {
  report : epoch_report;
  events : Fault.event list;
  selected : int list;
  violations : violation list;
}

type snapshot = {
  at_epoch : int;
  prng_state : int64;
  cost_level : float array;
  down : int list;
  gone : int list;
  surge : float;
  demand_scale : float;
  last_good : (int list * float) option;
}

type header = {
  version : int;
  market_seed : int;
  market_epochs : int;
  n_bps : int;
  snapshot_every : int;
  digest : int64;
}

type carry = {
  at : snapshot;
  carry_reports : epoch_report list;
  carry_violations : violation list;
}

let version = 1
let magic = 0x504F434A (* "POCJ" *)
let manifest_name = "MANIFEST"
let quarantine_name = "quarantine"
let manifest_path dir = Filename.concat dir manifest_name
let seg_name id = Printf.sprintf "%05d.seg" id
let seg_path dir id = Filename.concat dir (seg_name id)

let seg_id_of_name name =
  if Filename.check_suffix name ".seg" then begin
    let stem = Filename.chop_suffix name ".seg" in
    if
      String.length stem >= 5
      && String.for_all (fun c -> c >= '0' && c <= '9') stem
    then int_of_string_opt stem
    else None
  end
  else None

(* --- field codecs ------------------------------------------------------- *)

let put_rule w rule =
  Codec.put_u8 w
    (match rule with
    | Acceptability.Handle_load -> 0
    | Acceptability.Single_link_failure -> 1
    | Acceptability.Per_pair_failure -> 2)

let get_rule r =
  match Codec.get_u8 r with
  | 0 -> Acceptability.Handle_load
  | 1 -> Acceptability.Single_link_failure
  | 2 -> Acceptability.Per_pair_failure
  | n -> raise (Codec.Corrupt (Printf.sprintf "bad acceptability tag %d" n))

let put_phase w phase =
  Codec.put_u8 w
    (match phase with
    | Fault.Pre_auction -> 0
    | Fault.Pre_settle -> 1
    | Fault.Post_settle -> 2)

let get_phase r =
  match Codec.get_u8 r with
  | 0 -> Fault.Pre_auction
  | 1 -> Fault.Pre_settle
  | 2 -> Fault.Post_settle
  | n -> raise (Codec.Corrupt (Printf.sprintf "bad phase tag %d" n))

let put_disk_fault w = function
  | Disk.Short_write { drop } ->
    Codec.put_u8 w 0;
    Codec.put_int w drop
  | Disk.Torn_rename -> Codec.put_u8 w 1
  | Disk.Lying_fsync { drop } ->
    Codec.put_u8 w 2;
    Codec.put_int w drop
  | Disk.Corrupt_byte { seed } ->
    Codec.put_u8 w 3;
    Codec.put_int w seed

let get_disk_fault r =
  match Codec.get_u8 r with
  | 0 -> Disk.Short_write { drop = Codec.get_int r }
  | 1 -> Disk.Torn_rename
  | 2 -> Disk.Lying_fsync { drop = Codec.get_int r }
  | 3 -> Disk.Corrupt_byte { seed = Codec.get_int r }
  | n -> raise (Codec.Corrupt (Printf.sprintf "bad disk-fault tag %d" n))

let put_event w = function
  | Fault.Link_down id ->
    Codec.put_u8 w 0;
    Codec.put_int w id
  | Fault.Link_up id ->
    Codec.put_u8 w 1;
    Codec.put_int w id
  | Fault.Bp_exit bp ->
    Codec.put_u8 w 2;
    Codec.put_int w bp
  | Fault.Withdraw ids ->
    Codec.put_u8 w 3;
    Codec.put_list w Codec.put_int ids
  | Fault.Surge f ->
    Codec.put_u8 w 4;
    Codec.put_f64 w f
  | Fault.Surge_over f ->
    Codec.put_u8 w 5;
    Codec.put_f64 w f
  | Fault.Crash_point phase ->
    Codec.put_u8 w 6;
    put_phase w phase
  | Fault.Disk_point (phase, fault) ->
    Codec.put_u8 w 7;
    put_phase w phase;
    put_disk_fault w fault

let get_event r =
  match Codec.get_u8 r with
  | 0 -> Fault.Link_down (Codec.get_int r)
  | 1 -> Fault.Link_up (Codec.get_int r)
  | 2 -> Fault.Bp_exit (Codec.get_int r)
  | 3 -> Fault.Withdraw (Codec.get_list r Codec.get_int)
  | 4 -> Fault.Surge (Codec.get_f64 r)
  | 5 -> Fault.Surge_over (Codec.get_f64 r)
  | 6 -> Fault.Crash_point (get_phase r)
  | 7 ->
    let phase = get_phase r in
    let fault = get_disk_fault r in
    Fault.Disk_point (phase, fault)
  | n -> raise (Codec.Corrupt (Printf.sprintf "bad event tag %d" n))

let put_status w = function
  | Healthy -> Codec.put_u8 w 0
  | Degraded step -> (
    Codec.put_u8 w 1;
    match step with
    | Ladder.Relax_demand f ->
      Codec.put_u8 w 0;
      Codec.put_f64 w f
    | Ladder.Step_down rule ->
      Codec.put_u8 w 1;
      put_rule w rule
    | Ladder.Connectivity_only -> Codec.put_u8 w 2
    | Ladder.External_transit -> Codec.put_u8 w 3)
  | Carried -> Codec.put_u8 w 2
  | Blackout -> Codec.put_u8 w 3

let get_status r =
  match Codec.get_u8 r with
  | 0 -> Healthy
  | 1 ->
    Degraded
      (match Codec.get_u8 r with
      | 0 -> Ladder.Relax_demand (Codec.get_f64 r)
      | 1 -> Ladder.Step_down (get_rule r)
      | 2 -> Ladder.Connectivity_only
      | 3 -> Ladder.External_transit
      | n -> raise (Codec.Corrupt (Printf.sprintf "bad ladder-step tag %d" n)))
  | 2 -> Carried
  | 3 -> Blackout
  | n -> raise (Codec.Corrupt (Printf.sprintf "bad status tag %d" n))

let put_report w (er : epoch_report) =
  Codec.put_int w er.epoch;
  put_status w er.status;
  Codec.put_f64 w er.spend;
  Codec.put_f64 w er.price_per_gbps;
  Codec.put_f64 w er.delivered_fraction;
  Codec.put_int w er.selected_links;
  Codec.put_int w er.recalled_links;
  Codec.put_int w er.active_faults;
  Codec.put_int w er.ladder_attempts;
  Codec.put_option w Codec.put_f64 er.ledger_conservation;
  Codec.put_option w Codec.put_f64 er.posted_price

let get_report r =
  let epoch = Codec.get_int r in
  let status = get_status r in
  let spend = Codec.get_f64 r in
  let price_per_gbps = Codec.get_f64 r in
  let delivered_fraction = Codec.get_f64 r in
  let selected_links = Codec.get_int r in
  let recalled_links = Codec.get_int r in
  let active_faults = Codec.get_int r in
  let ladder_attempts = Codec.get_int r in
  let ledger_conservation = Codec.get_option r Codec.get_f64 in
  let posted_price = Codec.get_option r Codec.get_f64 in
  {
    epoch;
    status;
    spend;
    price_per_gbps;
    delivered_fraction;
    selected_links;
    recalled_links;
    active_faults;
    ladder_attempts;
    ledger_conservation;
    posted_price;
  }

let put_violation w (v : violation) =
  Codec.put_int w v.epoch;
  Codec.put_string w v.invariant;
  Codec.put_string w v.detail

let get_violation r =
  let epoch = Codec.get_int r in
  let invariant = Codec.get_string r in
  let detail = Codec.get_string r in
  { epoch; invariant; detail }

let put_snapshot_body w (s : snapshot) =
  Codec.put_int w s.at_epoch;
  Codec.put_i64 w s.prng_state;
  Codec.put_f64_array w s.cost_level;
  Codec.put_list w Codec.put_int s.down;
  Codec.put_list w Codec.put_int s.gone;
  Codec.put_f64 w s.surge;
  Codec.put_f64 w s.demand_scale;
  Codec.put_option w
    (fun w (ids, cost) ->
      Codec.put_list w Codec.put_int ids;
      Codec.put_f64 w cost)
    s.last_good

let get_snapshot_body r =
  let at_epoch = Codec.get_int r in
  let prng_state = Codec.get_i64 r in
  let cost_level = Codec.get_f64_array r in
  let down = Codec.get_list r Codec.get_int in
  let gone = Codec.get_list r Codec.get_int in
  let surge = Codec.get_f64 r in
  let demand_scale = Codec.get_f64 r in
  let last_good =
    Codec.get_option r (fun r ->
        let ids = Codec.get_list r Codec.get_int in
        let cost = Codec.get_f64 r in
        (ids, cost))
  in
  { at_epoch; prng_state; cost_level; down; gone; surge; demand_scale; last_good }

(* --- digest ------------------------------------------------------------- *)

let digest ~(market : Epochs.config) ~(ladder : Ladder.config) schedule =
  let w = Codec.writer () in
  Codec.put_int w market.Epochs.epochs;
  Codec.put_f64 w market.Epochs.cost_trend;
  Codec.put_f64 w market.Epochs.cost_volatility;
  Codec.put_f64 w market.Epochs.demand_growth;
  Codec.put_int w market.Epochs.seed;
  Codec.put_list w
    (fun w (bp, strategy) ->
      Codec.put_int w bp;
      match strategy with
      | Epochs.Truthful -> Codec.put_u8 w 0
      | Epochs.Markup m ->
        Codec.put_u8 w 1;
        Codec.put_f64 w m
      | Epochs.Recallable f ->
        Codec.put_u8 w 2;
        Codec.put_f64 w f)
    market.Epochs.strategies;
  Codec.put_list w Codec.put_f64 ladder.Ladder.relax_factors;
  Codec.put_bool w ladder.Ladder.step_rules;
  Codec.put_int w ladder.Ladder.max_attempts;
  (* Crash and disk-fault points are excluded: they kill the process,
     not the market, and a resumed run ignores them — so a journal
     written under a crash-injecting schedule can be resumed under the
     same schedule with or without its [Crash]/[Storage] specs. *)
  Codec.put_list w
    (fun w (epoch, ev) ->
      Codec.put_int w epoch;
      put_event w ev)
    (List.filter
       (fun (_, ev) ->
         match ev with
         | Fault.Crash_point _ | Fault.Disk_point _ -> false
         | _ -> true)
       (Fault.events schedule));
  Int64.of_int (Codec.crc32 (Codec.contents w))

(* --- record payloads ---------------------------------------------------- *)

let header_payload (h : header) =
  let w = Codec.writer () in
  Codec.put_u8 w 0;
  Codec.put_u32 w magic;
  Codec.put_int w h.version;
  Codec.put_int w h.market_seed;
  Codec.put_int w h.market_epochs;
  Codec.put_int w h.n_bps;
  Codec.put_int w h.snapshot_every;
  Codec.put_i64 w h.digest;
  Codec.contents w

let epoch_payload (rec_ : epoch_record) =
  let w = Codec.writer () in
  Codec.put_u8 w 1;
  put_report w rec_.report;
  Codec.put_list w put_event rec_.events;
  Codec.put_list w Codec.put_int rec_.selected;
  Codec.put_list w put_violation rec_.violations;
  Codec.contents w

let snapshot_payload (s : snapshot) =
  let w = Codec.writer () in
  Codec.put_u8 w 2;
  put_snapshot_body w s;
  Codec.contents w

let complete_payload incidents =
  let w = Codec.writer () in
  Codec.put_u8 w 3;
  Codec.put_string w incidents;
  Codec.contents w

let seg_header_payload (h : header) ~seg_id ~budget ~carry =
  let w = Codec.writer () in
  Codec.put_u8 w 4;
  Codec.put_u32 w magic;
  Codec.put_int w h.version;
  Codec.put_int w seg_id;
  Codec.put_int w budget;
  Codec.put_int w h.market_seed;
  Codec.put_int w h.market_epochs;
  Codec.put_int w h.n_bps;
  Codec.put_int w h.snapshot_every;
  Codec.put_i64 w h.digest;
  Codec.put_option w
    (fun w c ->
      put_snapshot_body w c.at;
      Codec.put_list w put_report c.carry_reports;
      Codec.put_list w put_violation c.carry_violations)
    carry;
  Codec.contents w

let manifest_payload ids =
  let w = Codec.writer () in
  Codec.put_u8 w 5;
  Codec.put_u32 w magic;
  Codec.put_int w version;
  Codec.put_list w Codec.put_int ids;
  Codec.contents w

(* --- metrics ------------------------------------------------------------ *)

module Metrics = Poc_obs.Metrics

let m_bytes =
  Metrics.counter ~help:"Bytes appended to run journals" Metrics.default
    "poc_journal_bytes_total"

let m_flushes =
  Metrics.counter ~help:"Journal record flushes" Metrics.default
    "poc_journal_flushes_total"

let m_rotations =
  Metrics.counter ~help:"Journal segment rotations" Metrics.default
    "poc_journal_rotations_total"

let m_gc_segments =
  Metrics.counter ~help:"Journal segments garbage-collected at rotation"
    Metrics.default "poc_journal_gc_segments_total"

let m_scrub_segments =
  Metrics.counter ~help:"Journal segments examined by scrub" Metrics.default
    "poc_scrub_segments_total"

let m_scrub_records =
  Metrics.counter ~help:"Checksum-valid records seen by scrub" Metrics.default
    "poc_scrub_records_ok_total"

let m_scrub_truncated =
  Metrics.counter ~help:"Segments truncated by scrub" Metrics.default
    "poc_scrub_truncated_total"

let m_scrub_quarantined =
  Metrics.counter ~help:"Segments quarantined by scrub" Metrics.default
    "poc_scrub_quarantined_total"

let m_scrub_bytes_dropped =
  Metrics.counter ~help:"Damaged bytes removed by scrub" Metrics.default
    "poc_scrub_bytes_dropped_total"

(* --- writer ------------------------------------------------------------- *)

type sink =
  | File_sink of { file : Disk.file }
  | Seg_sink of {
      dir : string;
      budget : int;
      mutable seg_id : int;
      mutable file : Disk.file;
      mutable seg_bytes : int;
      mutable live : int list;
    }

type t = { disk : Disk.t; header : header; sink : sink }

let current_file t =
  match t.sink with File_sink f -> f.file | Seg_sink s -> s.file

let raw_append t s =
  Metrics.Counter.add m_bytes (float_of_int (String.length s));
  Metrics.Counter.inc m_flushes;
  let f = current_file t in
  Disk.append t.disk f s;
  Disk.sync t.disk f;
  match t.sink with
  | Seg_sink sg -> sg.seg_bytes <- sg.seg_bytes + String.length s
  | File_sink _ -> ()

let write_frame t payload = raw_append t (Codec.frame payload)

let write_manifest disk dir ids =
  Disk.write_file_atomic disk (manifest_path dir)
    (Codec.frame (manifest_payload ids))

let create ?disk ?segment_bytes path header =
  let disk = match disk with Some d -> d | None -> Disk.real () in
  match segment_bytes with
  | None ->
    let file = Disk.open_trunc disk path in
    let t = { disk; header; sink = File_sink { file } } in
    write_frame t (header_payload header);
    t
  | Some budget ->
    if budget < 1 then
      invalid_arg "Journal.create: segment_bytes must be >= 1";
    Disk.mkdir_p disk path;
    (* A fresh run claims the whole directory: stale segments, manifest
       and quarantined files from a previous run are cleared. *)
    Array.iter
      (fun name ->
        if
          seg_id_of_name name <> None
          || name = manifest_name
          || name = manifest_name ^ ".tmp"
        then Disk.remove disk (Filename.concat path name))
      (Disk.readdir disk path);
    let qdir = Filename.concat path quarantine_name in
    if Disk.is_directory disk qdir then
      Array.iter
        (fun name ->
          if seg_id_of_name name <> None then
            Disk.remove disk (Filename.concat qdir name))
        (Disk.readdir disk qdir);
    let file = Disk.open_trunc disk (seg_path path 1) in
    let t =
      {
        disk;
        header;
        sink =
          Seg_sink
            { dir = path; budget; seg_id = 1; file; seg_bytes = 0; live = [ 1 ] };
      }
    in
    write_frame t (seg_header_payload header ~seg_id:1 ~budget ~carry:None);
    write_manifest disk path [ 1 ];
    t

let wants_rotation t =
  match t.sink with
  | File_sink _ -> false
  | Seg_sink s -> s.seg_bytes > s.budget

let rotate t (c : carry) =
  match t.sink with
  | File_sink _ -> ()
  | Seg_sink s ->
    let next_id = s.seg_id + 1 in
    let file = Disk.open_trunc t.disk (seg_path s.dir next_id) in
    let framed =
      Codec.frame
        (seg_header_payload t.header ~seg_id:next_id ~budget:s.budget
           ~carry:(Some c))
    in
    Metrics.Counter.add m_bytes (float_of_int (String.length framed));
    Metrics.Counter.inc m_flushes;
    Disk.append t.disk file framed;
    Disk.sync t.disk file;
    Disk.close_file t.disk s.file;
    (* New segment durable before the manifest flips; old segments are
       deleted only after the flip, so every crash point leaves either
       the old manifest with its files intact (plus a harmless orphan)
       or the new manifest with its files intact. *)
    let dropped = List.filter (fun id -> id <> s.seg_id) s.live in
    let live = [ s.seg_id; next_id ] in
    write_manifest t.disk s.dir live;
    List.iter (fun id -> Disk.remove t.disk (seg_path s.dir id)) dropped;
    Metrics.Counter.inc m_rotations;
    Metrics.Counter.add m_gc_segments (float_of_int (List.length dropped));
    s.seg_id <- next_id;
    s.file <- file;
    s.seg_bytes <- String.length framed;
    s.live <- live

let append_epoch t rec_ = write_frame t (epoch_payload rec_)
let append_snapshot t s = write_frame t (snapshot_payload s)
let append_complete t ~incidents = write_frame t (complete_payload incidents)

let append_torn t ~epoch =
  (* Exactly what a crash between auction and settlement leaves on
     disk: a frame header promising more payload than ever arrived. *)
  let w = Codec.writer () in
  Codec.put_u8 w 1;
  Codec.put_int w epoch;
  let partial = Codec.contents w in
  Codec.put_string w "unsettled epoch lost to the crash";
  let framed = Codec.frame (Codec.contents w) in
  raw_append t (String.sub framed 0 (8 + String.length partial))

let close t = Disk.close_file t.disk (current_file t)

(* --- replay ------------------------------------------------------------- *)

type replayed = {
  header : header;
  records : epoch_record list;
  snapshot : snapshot option;
  complete : string option;
  torn_tail : bool;
  valid_bytes : int;
  resume_offset : int;
  prefix_reports : epoch_report list;
  prefix_violations : violation list;
  segmented : bool;
  segment_bytes : int;
  active_segment : int;
  live_segments : int list;
}

let parse_header payload =
  let r = Codec.reader payload in
  if Codec.get_u8 r <> 0 then Error "first record is not a journal header"
  else if Codec.get_u32 r <> magic then Error "bad magic: not a POC journal"
  else
    let v = Codec.get_int r in
    if v <> version then
      Error
        (Printf.sprintf
           "journal format version %d, but this build reads version %d" v
           version)
    else
      let market_seed = Codec.get_int r in
      let market_epochs = Codec.get_int r in
      let n_bps = Codec.get_int r in
      let snapshot_every = Codec.get_int r in
      let digest = Codec.get_i64 r in
      Ok { version = v; market_seed; market_epochs; n_bps; snapshot_every; digest }

let parse_seg_header payload =
  let r = Codec.reader payload in
  if Codec.get_u8 r <> 4 then Error "first record is not a segment header"
  else if Codec.get_u32 r <> magic then
    Error "bad magic: not a POC journal segment"
  else
    let v = Codec.get_int r in
    if v <> version then
      Error
        (Printf.sprintf
           "journal format version %d, but this build reads version %d" v
           version)
    else
      let seg_id = Codec.get_int r in
      let budget = Codec.get_int r in
      let market_seed = Codec.get_int r in
      let market_epochs = Codec.get_int r in
      let n_bps = Codec.get_int r in
      let snapshot_every = Codec.get_int r in
      let digest = Codec.get_i64 r in
      let carry =
        Codec.get_option r (fun r ->
            let at = get_snapshot_body r in
            let carry_reports = Codec.get_list r get_report in
            let carry_violations = Codec.get_list r get_violation in
            { at; carry_reports; carry_violations })
      in
      Ok
        ( { version = v; market_seed; market_epochs; n_bps; snapshot_every; digest },
          seg_id,
          budget,
          carry )

let parse_record payload =
  let r = Codec.reader payload in
  match Codec.get_u8 r with
  | 1 ->
    let report = get_report r in
    let events = Codec.get_list r get_event in
    let selected = Codec.get_list r Codec.get_int in
    let violations = Codec.get_list r get_violation in
    `Epoch { report; events; selected; violations }
  | 2 -> `Snapshot (get_snapshot_body r)
  | 3 -> `Complete (Codec.get_string r)
  | n -> raise (Codec.Corrupt (Printf.sprintf "unknown record kind %d" n))

(* Walk the record frames after a header ending at [start]; stops at
   the first torn or unparseable frame. *)
let scan_records data ~start =
  let records = ref [] in
  let snapshot = ref None in
  let complete = ref None in
  let torn = ref false in
  let valid = ref start in
  let resume = ref start in
  let rec loop pos =
    match Codec.next_frame data ~pos with
    | End -> ()
    | Torn -> torn := true
    | Frame { payload; next } -> (
      match parse_record payload with
      | exception Codec.Corrupt _ -> torn := true
      | `Epoch rec_ ->
        records := rec_ :: !records;
        valid := next;
        loop next
      | `Snapshot s ->
        snapshot := Some s;
        valid := next;
        resume := next;
        loop next
      | `Complete incidents ->
        complete := Some incidents;
        valid := next;
        loop next)
  in
  loop start;
  (List.rev !records, !snapshot, !complete, !torn, !valid, !resume)

let read_manifest disk dir =
  match Disk.read_file disk (manifest_path dir) with
  | exception Sys_error _ -> None
  | data -> (
    match Codec.next_frame data ~pos:0 with
    | End | Torn -> None
    | Frame { payload; next = _ } -> (
      let parse r =
        if Codec.get_u8 r <> 5 then None
        else if Codec.get_u32 r <> magic then None
        else if Codec.get_int r <> version then None
        else Some (Codec.get_list r Codec.get_int)
      in
      match parse (Codec.reader payload) with
      | exception Codec.Corrupt _ -> None
      | ids -> ids))

let seg_ids_on_disk disk dir =
  Disk.readdir disk dir
  |> Array.to_list
  |> List.filter_map seg_id_of_name
  |> List.sort_uniq compare

let live_segment_ids disk dir =
  match read_manifest disk dir with
  | Some (_ :: _ as ids) -> List.sort_uniq compare ids
  | Some [] | None ->
    (* The manifest itself can be the casualty (a torn rename during
       the very first rotation); fall back to what is on disk. *)
    seg_ids_on_disk disk dir

let replay_single disk path =
  match Disk.read_file disk path with
  | exception Sys_error msg -> Error ("cannot read journal: " ^ msg)
  | data -> (
    match Codec.next_frame data ~pos:0 with
    | End -> Error "empty file: not a POC journal"
    | Torn -> Error "unreadable header: not a POC journal"
    | Frame { payload; next } -> (
      match parse_header payload with
      | exception Codec.Corrupt _ -> Error "corrupt header: not a POC journal"
      | Error msg -> Error msg
      | Ok header ->
        let records, snapshot, complete, torn, valid, resume =
          scan_records data ~start:next
        in
        Ok
          {
            header;
            records;
            snapshot;
            complete;
            torn_tail = torn;
            valid_bytes = valid;
            resume_offset = resume;
            prefix_reports = [];
            prefix_violations = [];
            segmented = false;
            segment_bytes = 0;
            active_segment = 0;
            live_segments = [];
          }))

let replay_segmented disk dir =
  match live_segment_ids disk dir with
  | [] -> Error "empty directory: not a segmented POC journal"
  | live -> (
    let active = List.fold_left max 0 live in
    let path = seg_path dir active in
    let unusable what =
      Error
        (Printf.sprintf
           "segment %s has %s; run `poc-cli scrub` to quarantine it and fall \
            back to the previous checkpoint"
           (seg_name active) what)
    in
    match Disk.read_file disk path with
    | exception Sys_error _ -> unusable "gone missing"
    | data -> (
      match Codec.next_frame data ~pos:0 with
      | End | Torn -> unusable "an unreadable header"
      | Frame { payload; next } -> (
        match parse_seg_header payload with
        | exception Codec.Corrupt _ -> unusable "a corrupt header"
        | Error msg -> Error msg
        | Ok (header, seg_id, budget, carry) ->
          if seg_id <> active then
            Error
              (Printf.sprintf "segment %s claims to be segment %d"
                 (seg_name active) seg_id)
          else
            let records, snap_rec, complete, torn, valid, resume =
              scan_records data ~start:next
            in
            let snapshot =
              match snap_rec with
              | Some s -> Some s
              | None -> Option.map (fun c -> c.at) carry
            in
            Ok
              {
                header;
                records;
                snapshot;
                complete;
                torn_tail = torn;
                valid_bytes = valid;
                resume_offset = resume;
                prefix_reports =
                  (match carry with Some c -> c.carry_reports | None -> []);
                prefix_violations =
                  (match carry with Some c -> c.carry_violations | None -> []);
                segmented = true;
                segment_bytes = budget;
                active_segment = active;
                live_segments = live;
              })))

let replay ?disk path =
  let disk = match disk with Some d -> d | None -> Disk.real () in
  if Disk.is_directory disk path then replay_segmented disk path
  else replay_single disk path

let reopen ?disk path (r : replayed) =
  let disk = match disk with Some d -> d | None -> Disk.real () in
  if not r.segmented then begin
    let len = String.length (Disk.read_file disk path) in
    if r.resume_offset < 0 || r.resume_offset > len then
      invalid_arg
        (Printf.sprintf "Journal.reopen: offset %d outside file of %d bytes"
           r.resume_offset len);
    Disk.truncate_file disk path r.resume_offset;
    {
      disk;
      header = r.header;
      sink = File_sink { file = Disk.open_append disk path };
    }
  end
  else begin
    let dir = path in
    (* A crash mid-rotation leaves a fully-written segment N+1 whose
       manifest flip never landed: an orphan.  Resume grows the store
       from the manifest's view, so orphans (and any stale manifest
       temp file) are deleted — the rotation will be replayed and
       rewrite the same segment with the same bytes. *)
    Disk.remove disk (manifest_path dir ^ ".tmp");
    Array.iter
      (fun name ->
        match seg_id_of_name name with
        | Some id when not (List.mem id r.live_segments) ->
          Disk.remove disk (Filename.concat dir name)
        | Some _ | None -> ())
      (Disk.readdir disk dir);
    Disk.truncate_file disk (seg_path dir r.active_segment) r.resume_offset;
    write_manifest disk dir r.live_segments;
    let file = Disk.open_append disk (seg_path dir r.active_segment) in
    {
      disk;
      header = r.header;
      sink =
        Seg_sink
          {
            dir;
            budget = r.segment_bytes;
            seg_id = r.active_segment;
            file;
            seg_bytes = r.resume_offset;
            live = r.live_segments;
          };
    }
  end

(* --- scrub -------------------------------------------------------------- *)

type scrub_verdict =
  | Scrub_clean
  | Scrub_torn_tail
  | Scrub_corrupt_interior
  | Scrub_unreadable

type scrub_action = Scrub_none | Scrub_truncated | Scrub_quarantined

type segment_scrub = {
  seg_id : int;
  seg_path : string;
  records_ok : int;
  verdict : scrub_verdict;
  action : scrub_action;
  bytes_kept : int;
  bytes_dropped : int;
}

type scrub_report = {
  store : string;
  store_segmented : bool;
  applied : bool;
  recovered : bool;
  segments : segment_scrub list;
}

let verdict_to_string = function
  | Scrub_clean -> "clean"
  | Scrub_torn_tail -> "torn_tail"
  | Scrub_corrupt_interior -> "corrupt_interior"
  | Scrub_unreadable -> "unreadable"

let action_to_string = function
  | Scrub_none -> "none"
  | Scrub_truncated -> "truncated"
  | Scrub_quarantined -> "quarantined"

(* Classify one segment (or single file): walk every frame after the
   header; on the first bad one, the distinction that matters is
   whether anything decodable follows.  Nothing after = the torn tail a
   crash leaves (expected, truncate); valid frames after = a damaged
   interior, i.e. silent corruption of committed history (truncate at
   the damage and let resume fall back to the checkpoint before it). *)
let classify data ~parse_first =
  match Codec.next_frame data ~pos:0 with
  | End | Torn -> (Scrub_unreadable, 0, 0)
  | Frame { payload; next } ->
    if not (parse_first payload) then (Scrub_unreadable, 0, 0)
    else begin
      let count = ref 0 in
      let rec loop pos =
        match Codec.next_frame data ~pos with
        | End -> (Scrub_clean, !count, pos)
        | Torn -> damaged pos
        | Frame { payload; next } -> (
          match parse_record payload with
          | exception Codec.Corrupt _ -> damaged pos
          | `Epoch _ | `Snapshot _ | `Complete _ ->
            incr count;
            loop next)
      and damaged pos =
        match Codec.resync data ~pos:(pos + 1) with
        | Some _ -> (Scrub_corrupt_interior, !count, pos)
        | None -> (Scrub_torn_tail, !count, pos)
      in
      loop next
    end

let header_parses payload =
  match parse_header payload with
  | Ok _ -> true
  | Error _ -> false
  | exception Codec.Corrupt _ -> false

let seg_header_parses payload =
  match parse_seg_header payload with
  | Ok _ -> true
  | Error _ -> false
  | exception Codec.Corrupt _ -> false

let count_scrub ~applied entries =
  List.iter
    (fun e ->
      Metrics.Counter.inc m_scrub_segments;
      Metrics.Counter.add m_scrub_records (float_of_int e.records_ok);
      if applied then begin
        (match e.action with
        | Scrub_truncated -> Metrics.Counter.inc m_scrub_truncated
        | Scrub_quarantined -> Metrics.Counter.inc m_scrub_quarantined
        | Scrub_none -> ());
        Metrics.Counter.add m_scrub_bytes_dropped
          (float_of_int e.bytes_dropped)
      end)
    entries

let scrub_file disk ~dry_run path =
  match Disk.read_file disk path with
  | exception Sys_error msg -> Error ("cannot read journal: " ^ msg)
  | data ->
    let total = String.length data in
    let verdict, records_ok, keep = classify data ~parse_first:header_parses in
    let entry =
      match verdict with
      | Scrub_clean ->
        {
          seg_id = 0;
          seg_path = path;
          records_ok;
          verdict;
          action = Scrub_none;
          bytes_kept = total;
          bytes_dropped = 0;
        }
      | Scrub_torn_tail | Scrub_corrupt_interior ->
        {
          seg_id = 0;
          seg_path = path;
          records_ok;
          verdict;
          action = Scrub_truncated;
          bytes_kept = keep;
          bytes_dropped = total - keep;
        }
      | Scrub_unreadable ->
        (* A single file with a destroyed header has no predecessor to
           fall back to; nothing to repair. *)
        {
          seg_id = 0;
          seg_path = path;
          records_ok;
          verdict;
          action = Scrub_none;
          bytes_kept = total;
          bytes_dropped = 0;
        }
    in
    if (not dry_run) && entry.action = Scrub_truncated then
      Disk.truncate_file disk path entry.bytes_kept;
    count_scrub ~applied:(not dry_run) [ entry ];
    Ok
      {
        store = path;
        store_segmented = false;
        applied = not dry_run;
        recovered = verdict <> Scrub_unreadable;
        segments = [ entry ];
      }

let scrub_dir disk ~dry_run dir =
  match live_segment_ids disk dir with
  | [] ->
    (* A previous scrub can quarantine every segment, leaving a store
       with a quarantine/ subdirectory and nothing live.  Scrub must
       stay idempotent across that dead end: recognise the store as an
       already-scrubbed journal with nothing durable left rather than
       refusing it. *)
    if Disk.exists disk (Filename.concat dir quarantine_name) then
      Ok
        {
          store = dir;
          store_segmented = true;
          applied = not dry_run;
          recovered = false;
          segments = [];
        }
    else Error "empty directory: not a segmented POC journal"
  | live ->
    let entries =
      List.map
        (fun id ->
          let path = seg_path dir id in
          match Disk.read_file disk path with
          | exception Sys_error _ ->
            {
              seg_id = id;
              seg_path = path;
              records_ok = 0;
              verdict = Scrub_unreadable;
              action = Scrub_quarantined;
              bytes_kept = 0;
              bytes_dropped = 0;
            }
          | data -> (
            let total = String.length data in
            let verdict, records_ok, keep =
              classify data ~parse_first:seg_header_parses
            in
            match verdict with
            | Scrub_clean ->
              {
                seg_id = id;
                seg_path = path;
                records_ok;
                verdict;
                action = Scrub_none;
                bytes_kept = total;
                bytes_dropped = 0;
              }
            | Scrub_torn_tail | Scrub_corrupt_interior ->
              {
                seg_id = id;
                seg_path = path;
                records_ok;
                verdict;
                action = Scrub_truncated;
                bytes_kept = keep;
                bytes_dropped = total - keep;
              }
            | Scrub_unreadable ->
              {
                seg_id = id;
                seg_path = path;
                records_ok;
                verdict;
                action = Scrub_quarantined;
                bytes_kept = 0;
                bytes_dropped = total;
              }))
        live
    in
    let keep_ids =
      List.filter_map
        (fun e -> if e.verdict = Scrub_unreadable then None else Some e.seg_id)
        entries
    in
    if not dry_run then begin
      List.iter
        (fun e ->
          match e.action with
          | Scrub_truncated -> Disk.truncate_file disk e.seg_path e.bytes_kept
          | Scrub_quarantined ->
            if Disk.exists disk e.seg_path then begin
              let qdir = Filename.concat dir quarantine_name in
              Disk.mkdir_p disk qdir;
              Disk.rename disk e.seg_path
                (Filename.concat qdir (seg_name e.seg_id))
            end
          | Scrub_none -> ())
        entries;
      if keep_ids <> live then write_manifest disk dir keep_ids
    end;
    count_scrub ~applied:(not dry_run) entries;
    Ok
      {
        store = dir;
        store_segmented = true;
        applied = not dry_run;
        recovered = keep_ids <> [];
        segments = entries;
      }

let scrub ?disk ?(dry_run = false) path =
  let disk = match disk with Some d -> d | None -> Disk.real () in
  if Disk.is_directory disk path then scrub_dir disk ~dry_run path
  else scrub_file disk ~dry_run path

let scrub_to_json (r : scrub_report) =
  let esc = Poc_obs.Metrics.json_escape in
  let b = Buffer.create 512 in
  Printf.bprintf b "{\"store\":\"%s\",\"mode\":\"%s\",\"applied\":%b,\"recovered\":%b"
    (esc r.store)
    (if r.store_segmented then "segmented" else "file")
    r.applied r.recovered;
  Buffer.add_string b ",\"segments\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b
        "{\"segment\":%d,\"path\":\"%s\",\"records_ok\":%d,\"verdict\":\"%s\",\"action\":\"%s\",\"bytes_kept\":%d,\"bytes_dropped\":%d}"
        e.seg_id (esc e.seg_path) e.records_ok
        (verdict_to_string e.verdict)
        (action_to_string e.action)
        e.bytes_kept e.bytes_dropped)
    r.segments;
  Buffer.add_string b "],\"quarantined\":[";
  let quarantined =
    List.filter_map
      (fun e -> if e.action = Scrub_quarantined then Some e.seg_id else None)
      r.segments
  in
  List.iteri
    (fun i id ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (string_of_int id))
    quarantined;
  Printf.bprintf b "],\"quarantined_count\":%d}\n" (List.length quarantined);
  Buffer.contents b
