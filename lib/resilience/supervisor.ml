module Prng = Poc_util.Prng
module Vcg = Poc_auction.Vcg
module Bid = Poc_auction.Bid
module Matrix = Poc_traffic.Matrix
module Router = Poc_mcf.Router
module Planner = Poc_core.Planner
module Settlement = Poc_core.Settlement
module Epochs = Poc_market.Epochs
module Wan = Poc_topology.Wan

type status = Healthy | Degraded of Ladder.step | Carried | Blackout

type epoch_report = {
  epoch : int;
  status : status;
  spend : float;
  price_per_gbps : float;
  delivered_fraction : float;
  selected_links : int;
  recalled_links : int;
  active_faults : int;
  ladder_attempts : int;
  ledger_conservation : float option;
  posted_price : float option;
}

type incident = {
  start_epoch : int;
  trigger : string;
  response : status;
  attempts : int;
  recovery_epoch : int option;
  spend_penalty : float;
}

type violation = { epoch : int; invariant : string; detail : string }

type report = {
  epochs : epoch_report list;
  incidents : incident list;
  violations : violation list;
  ladder_activations : int;
  final_plan : Planner.plan option;
}

let status_to_string = function
  | Healthy -> "healthy"
  | Degraded step -> Printf.sprintf "degraded[%s]" (Ladder.step_to_string step)
  | Carried -> "carried_forward"
  | Blackout -> "blackout"

let strategy_of (market : Epochs.config) bp =
  match List.assoc_opt bp market.Epochs.strategies with
  | Some s -> s
  | None -> Epochs.Truthful

let run ?(ladder = Ladder.default_config) (plan : Planner.plan) ~market
    ~schedule =
  (match Epochs.validate_config market with
  | Ok () -> ()
  | Error msg -> invalid_arg msg);
  (match Ladder.validate_config ladder with
  | Ok () -> ()
  | Error msg -> invalid_arg msg);
  let rng = Prng.create market.Epochs.seed in
  let base_problem = plan.Planner.problem in
  let n_bps = Array.length base_problem.Vcg.bids in
  let cost_level = Array.make n_bps 1.0 in
  (* Injected state: [down] heals on Link_up, [gone] never does. *)
  let down = Hashtbl.create 64 in
  let gone = Hashtbl.create 64 in
  let surge = ref 1.0 in
  let matrix = ref plan.Planner.matrix in
  let last_good = ref (Some plan.Planner.outcome.Vcg.selection) in
  let reports = ref [] in
  let violations = ref [] in
  let activations = ref 0 in
  let final_plan = ref None in
  for epoch = 1 to market.Epochs.epochs do
    (* Scheduled faults take effect before the epoch's auction. *)
    List.iter
      (function
        | Fault.Link_down id -> Hashtbl.replace down id ()
        | Fault.Link_up id -> Hashtbl.remove down id
        | Fault.Bp_exit bp ->
          List.iter
            (fun id -> Hashtbl.replace gone id ())
            (Wan.bp_link_ids plan.Planner.wan bp)
        | Fault.Withdraw ids ->
          List.iter (fun id -> Hashtbl.replace gone id ()) ids
        | Fault.Surge f -> surge := !surge *. f
        | Fault.Surge_over f -> surge := !surge /. f)
      (Fault.at schedule epoch);
    (* Market drift: the same draws, in the same order, as Epochs.run,
       so a fault-free supervised run replays the plain market. *)
    for bp = 0 to n_bps - 1 do
      let noise =
        1.0
        +. (market.Epochs.cost_volatility *. ((2.0 *. Prng.float rng) -. 1.0))
      in
      cost_level.(bp) <-
        Float.max 0.05
          (cost_level.(bp) *. (1.0 +. market.Epochs.cost_trend) *. noise)
    done;
    let recalled = Hashtbl.create 64 in
    Array.iteri
      (fun bp bid ->
        match strategy_of market bp with
        | Epochs.Recallable fraction ->
          List.iter
            (fun id ->
              if Prng.bernoulli rng fraction then Hashtbl.replace recalled id ())
            (Bid.links bid)
        | Epochs.Truthful | Epochs.Markup _ -> ())
      base_problem.Vcg.bids;
    let bids =
      Array.mapi
        (fun bp bid ->
          let markup =
            match strategy_of market bp with
            | Epochs.Markup m -> 1.0 +. m
            | Epochs.Truthful | Epochs.Recallable _ -> 1.0
          in
          Bid.scale bid (cost_level.(bp) *. markup))
        base_problem.Vcg.bids
    in
    matrix := Matrix.scale !matrix market.Epochs.demand_growth;
    let epoch_matrix =
      if !surge = 1.0 then !matrix else Matrix.scale !matrix !surge
    in
    let demands = Matrix.undirected_pair_demands epoch_matrix in
    let volume = Matrix.total epoch_matrix in
    let problem = { base_problem with Vcg.bids; demands } in
    let banned id =
      Hashtbl.mem recalled id || Hashtbl.mem down id || Hashtbl.mem gone id
    in
    let select ?banned:(extra = fun _ -> false) p =
      Vcg.select_greedy ~banned:(fun id -> banned id || extra id) p
    in
    (* Auction; on failure, the ladder; then carry-forward; then blackout. *)
    let status, outcome_opt, ladder_attempts, ladder_engaged =
      match Vcg.run ~select problem with
      | Some outcome -> (Healthy, Some outcome, 0, false)
      | None -> (
        let rung_budget =
          List.length (Ladder.rungs ~rule:problem.Vcg.rule ladder)
        in
        match Ladder.engage ~banned ladder problem with
        | Some e -> (Degraded e.Ladder.step, Some e.Ladder.outcome,
                     e.Ladder.attempts, true)
        | None -> (
          match !last_good with
          | None -> (Blackout, None, rung_budget, true)
          | Some sel -> (
            let surviving =
              List.filter (fun id -> not (banned id)) sel.Vcg.selected
            in
            match Ladder.pay_as_bid problem surviving with
            | Some outcome -> (Carried, Some outcome, rung_budget, true)
            | None -> (Blackout, None, rung_budget, true))))
    in
    if ladder_engaged then incr activations;
    (match status with
    | Healthy -> (
      match outcome_opt with
      | Some o -> last_good := Some o.Vcg.selection
      | None -> ())
    | Degraded _ | Carried | Blackout -> ());
    (* Delivered fraction: route the full (unrelaxed) demand over the
       surviving selected links. *)
    let routing_opt, delivered =
      match outcome_opt with
      | None -> (None, 0.0)
      | Some o ->
        let in_sel = Hashtbl.create 64 in
        List.iter
          (fun id -> Hashtbl.replace in_sel id ())
          o.Vcg.selection.Vcg.selected;
        let enabled id = Hashtbl.mem in_sel id && not (banned id) in
        let r = Router.route ~enabled problem.Vcg.graph ~demands in
        let total =
          List.fold_left (fun acc (_, _, d) -> acc +. d) 0.0 demands
        in
        (Some r, if total <= 0.0 then 1.0 else Router.total_routed r /. total)
    in
    let spend =
      match outcome_opt with Some o -> o.Vcg.total_payment | None -> 0.0
    in
    let price =
      match outcome_opt with
      | Some _ when volume > 0.0 -> spend /. volume
      | Some _ | None -> 0.0
    in
    (* Cross-layer invariants, checked every epoch. *)
    let violate invariant detail =
      violations := { epoch; invariant; detail } :: !violations
    in
    let conservation, posted =
      match (outcome_opt, routing_opt) with
      | Some outcome, Some routing ->
        let pseudo =
          { plan with Planner.matrix = epoch_matrix; problem; outcome; routing }
        in
        let ledger = Settlement.of_plan pseudo () in
        final_plan := Some pseudo;
        ( Some (Settlement.conservation ledger),
          Some ledger.Settlement.usage_price )
      | _, _ -> (None, None)
    in
    (match conservation with
    | Some c when Float.abs c > 1e-6 ->
      violate "ledger-conservation"
        (Printf.sprintf "nets to %.9f, expected 0" c)
    | Some _ | None -> ());
    (match posted with
    | Some p when not (Float.is_finite p) ->
      violate "posted-price-finite" (Printf.sprintf "usage price %f" p)
    | Some _ | None -> ());
    if not (Float.is_finite price) then
      violate "epoch-price-finite" (Printf.sprintf "price %f" price);
    (match routing_opt with
    | Some r when Router.total_routed r > r.Router.enabled_capacity +. 1e-6 ->
      violate "delivered-within-capacity"
        (Printf.sprintf "routed %.3f over capacity %.3f"
           (Router.total_routed r) r.Router.enabled_capacity)
    | Some _ | None -> ());
    reports :=
      {
        epoch;
        status;
        spend;
        price_per_gbps = price;
        delivered_fraction = delivered;
        selected_links =
          (match outcome_opt with
          | Some o -> List.length o.Vcg.selection.Vcg.selected
          | None -> 0);
        recalled_links = Hashtbl.length recalled;
        active_faults = Hashtbl.length down + Hashtbl.length gone;
        ladder_attempts;
        ledger_conservation = conservation;
        posted_price = posted;
      }
      :: !reports
  done;
  let epochs = List.rev !reports in
  (* Incidents: one per fault epoch absorbed while healthy, one per
     maximal degraded span. *)
  let incidents =
    let out = ref [] in
    let open_inc = ref None in
    let baseline = ref None in
    let delta spend =
      match !baseline with Some b -> spend -. b | None -> 0.0
    in
    List.iter
      (fun (er : epoch_report) ->
        let faults = Fault.describe schedule er.epoch in
        let has_faults = faults <> "-" in
        match (!open_inc, er.status) with
        | None, Healthy ->
          if has_faults then
            out :=
              {
                start_epoch = er.epoch;
                trigger = faults;
                response = Healthy;
                attempts = er.ladder_attempts;
                recovery_epoch = Some er.epoch;
                spend_penalty = delta er.spend;
              }
              :: !out;
          baseline := Some er.spend
        | None, status ->
          open_inc :=
            Some
              {
                start_epoch = er.epoch;
                trigger = (if has_faults then faults else "market stress");
                response = status;
                attempts = er.ladder_attempts;
                recovery_epoch = None;
                spend_penalty = delta er.spend;
              }
        | Some inc, Healthy ->
          out := { inc with recovery_epoch = Some er.epoch } :: !out;
          open_inc := None;
          baseline := Some er.spend
        | Some inc, _ ->
          open_inc :=
            Some { inc with spend_penalty = inc.spend_penalty +. delta er.spend })
      epochs;
    (match !open_inc with Some inc -> out := inc :: !out | None -> ());
    List.rev !out
  in
  {
    epochs;
    incidents;
    violations = List.rev !violations;
    ladder_activations = !activations;
    final_plan = !final_plan;
  }

let epochs_to_recovery incident =
  Option.map (fun r -> r - incident.start_epoch) incident.recovery_epoch

let render_incidents report =
  let line i =
    Printf.sprintf
      "incident start=%d trigger=%s response=%s attempts=%d recovery=%s \
       epochs_to_recovery=%s spend_penalty=%+.2f"
      i.start_epoch i.trigger
      (status_to_string i.response)
      i.attempts
      (match i.recovery_epoch with Some e -> string_of_int e | None -> "never")
      (match epochs_to_recovery i with
      | Some n -> string_of_int n
      | None -> "never")
      i.spend_penalty
  in
  match report.incidents with
  | [] -> "no incidents\n"
  | incidents -> String.concat "\n" (List.map line incidents) ^ "\n"

let render_epochs report =
  let header =
    Printf.sprintf "%-6s %-28s %12s %8s %10s %5s %7s %8s" "epoch" "status"
      "spend $" "$/Gbps" "delivered" "|SL|" "faults" "attempts"
  in
  let line (er : epoch_report) =
    Printf.sprintf "%-6d %-28s %12.0f %8.2f %9.1f%% %5d %7d %8d" er.epoch
      (status_to_string er.status)
      er.spend er.price_per_gbps
      (100.0 *. er.delivered_fraction)
      er.selected_links er.active_faults er.ladder_attempts
  in
  String.concat "\n" (header :: List.map line report.epochs) ^ "\n"
