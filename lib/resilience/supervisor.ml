module Prng = Poc_util.Prng
module Pool = Poc_util.Pool
module Vcg = Poc_auction.Vcg
module Bid = Poc_auction.Bid
module Matrix = Poc_traffic.Matrix
module Router = Poc_mcf.Router
module Planner = Poc_core.Planner
module Settlement = Poc_core.Settlement
module Epochs = Poc_market.Epochs
module Wan = Poc_topology.Wan
module Trace = Poc_obs.Trace
module Metrics = Poc_obs.Metrics
module Clock = Poc_obs.Clock
module Flight = Poc_obs.Flight

(* Phase histograms share names with the plain market loop where the
   phases coincide (drift, auction, whole epoch); routing, settlement
   and journal appends exist only here. *)
let h_epoch =
  Metrics.histogram ~help:"Whole-epoch wall clock (seconds)" Metrics.default
    "poc_epoch_seconds"

let h_drift =
  Metrics.histogram ~help:"Market drift + bid construction phase (seconds)"
    Metrics.default "poc_phase_drift_seconds"

let h_auction =
  Metrics.histogram ~help:"Auction phase wall clock (seconds)" Metrics.default
    "poc_phase_auction_seconds"

let h_routing =
  Metrics.histogram ~help:"Delivered-fraction routing phase (seconds)"
    Metrics.default "poc_phase_routing_seconds"

let h_settlement =
  Metrics.histogram ~help:"Settlement + invariant checks phase (seconds)"
    Metrics.default "poc_phase_settlement_seconds"

let h_journal =
  Metrics.histogram ~help:"Journal append + flush phase (seconds)"
    Metrics.default "poc_phase_journal_seconds"

let m_epochs =
  Metrics.counter ~help:"Supervised epochs completed" Metrics.default
    "poc_supervisor_epochs_total"

let m_ladder =
  Metrics.counter ~help:"Epochs that left Healthy (ladder, carry, blackout)"
    Metrics.default "poc_ladder_engagements_total"

let m_violations =
  Metrics.counter ~help:"Cross-layer invariant violations" Metrics.default
    "poc_invariant_violations_total"

let m_crashes =
  Metrics.counter ~help:"Injected process crashes honored" Metrics.default
    "poc_injected_crashes_total"

type status = Journal.status =
  | Healthy
  | Degraded of Ladder.step
  | Carried
  | Blackout

type epoch_report = Journal.epoch_report = {
  epoch : int;
  status : status;
  spend : float;
  price_per_gbps : float;
  delivered_fraction : float;
  selected_links : int;
  recalled_links : int;
  active_faults : int;
  ladder_attempts : int;
  ledger_conservation : float option;
  posted_price : float option;
}

type incident = {
  start_epoch : int;
  trigger : string;
  response : status;
  attempts : int;
  recovery_epoch : int option;
  spend_penalty : float;
}

type violation = Journal.violation = {
  epoch : int;
  invariant : string;
  detail : string;
}

type report = {
  epochs : epoch_report list;
  incidents : incident list;
  violations : violation list;
  ladder_activations : int;
  final_plan : Planner.plan option;
}

exception Injected_crash of { epoch : int; phase : Fault.phase }

let status_to_string = function
  | Healthy -> "healthy"
  | Degraded step -> Printf.sprintf "degraded[%s]" (Ladder.step_to_string step)
  | Carried -> "carried_forward"
  | Blackout -> "blackout"

let strategy_of (market : Epochs.config) bp =
  match List.assoc_opt bp market.Epochs.strategies with
  | Some s -> s
  | None -> Epochs.Truthful

(* Carry-forward state between epochs: exactly what a snapshot record
   persists, so checkpoint/resume is a matter of copying this out and
   back in. *)
type state = {
  rng : Prng.t;
  cost_level : float array;
  down : (int, unit) Hashtbl.t; (* heals on Link_up *)
  gone : (int, unit) Hashtbl.t; (* never heals *)
  mutable surge : float;
  mutable matrix : Matrix.t;
  mutable demand_scale : float; (* cumulative growth, journaled *)
  mutable last_good : Vcg.selection option;
}

let initial_state (plan : Planner.plan) (market : Epochs.config) =
  let n_bps = Array.length plan.Planner.problem.Vcg.bids in
  {
    rng = Prng.create market.Epochs.seed;
    cost_level = Array.make n_bps 1.0;
    down = Hashtbl.create 64;
    gone = Hashtbl.create 64;
    surge = 1.0;
    matrix = plan.Planner.matrix;
    demand_scale = 1.0;
    last_good = Some plan.Planner.outcome.Vcg.selection;
  }

let state_of_snapshot (plan : Planner.plan) (market : Epochs.config)
    (s : Journal.snapshot) =
  let down = Hashtbl.create 64 and gone = Hashtbl.create 64 in
  List.iter (fun id -> Hashtbl.replace down id ()) s.Journal.down;
  List.iter (fun id -> Hashtbl.replace gone id ()) s.Journal.gone;
  (* The live loop grows demand by scaling the matrix once per epoch.
     Replaying the same number of scalings from the base matrix repeats
     the same float operations in the same order, so the resumed matrix
     is bit-identical to the one a crash interrupted — a stored
     cumulative scalar would not be (float multiplication does not
     reassociate). *)
  let matrix = ref plan.Planner.matrix in
  for _ = 1 to s.Journal.at_epoch do
    matrix := Matrix.scale !matrix market.Epochs.demand_growth
  done;
  {
    rng = Prng.of_state s.Journal.prng_state;
    cost_level = Array.copy s.Journal.cost_level;
    down;
    gone;
    surge = s.Journal.surge;
    matrix = !matrix;
    demand_scale = s.Journal.demand_scale;
    last_good =
      Option.map
        (fun (ids, cost) -> { Vcg.selected = ids; cost })
        s.Journal.last_good;
  }

let snapshot_of_state ~epoch st : Journal.snapshot =
  let ids tbl =
    Hashtbl.fold (fun k () acc -> k :: acc) tbl [] |> List.sort compare
  in
  {
    Journal.at_epoch = epoch;
    prng_state = Prng.state st.rng;
    cost_level = Array.copy st.cost_level;
    down = ids st.down;
    gone = ids st.gone;
    surge = st.surge;
    demand_scale = st.demand_scale;
    last_good =
      Option.map
        (fun (sel : Vcg.selection) -> (sel.Vcg.selected, sel.Vcg.cost))
        st.last_good;
  }

let phase_rank = function
  | Fault.Pre_auction -> 0
  | Fault.Pre_settle -> 1
  | Fault.Post_settle -> 2

(* Earliest process-killing point of the epoch, with the disk damage
   (if any) it applies on the way down. *)
let first_crash events =
  List.filter_map
    (function
      | Fault.Crash_point p -> Some (p, None)
      | Fault.Disk_point (p, f) -> Some (p, Some f)
      | _ -> None)
    events
  |> List.stable_sort (fun (a, _) (b, _) -> compare (phase_rank a) (phase_rank b))
  |> function
  | [] -> None
  | x :: _ -> Some x

let incidents_of ~schedule epochs =
  (* One incident per fault epoch absorbed while healthy, one per
     maximal degraded span. *)
  let out = ref [] in
  let open_inc = ref None in
  let baseline = ref None in
  let delta spend = match !baseline with Some b -> spend -. b | None -> 0.0 in
  List.iter
    (fun (er : epoch_report) ->
      let faults = Fault.describe schedule er.epoch in
      let has_faults = faults <> "-" in
      match (!open_inc, er.status) with
      | None, Healthy ->
        if has_faults then
          out :=
            {
              start_epoch = er.epoch;
              trigger = faults;
              response = Healthy;
              attempts = er.ladder_attempts;
              recovery_epoch = Some er.epoch;
              spend_penalty = delta er.spend;
            }
            :: !out;
        baseline := Some er.spend
      | None, status ->
        open_inc :=
          Some
            {
              start_epoch = er.epoch;
              trigger = (if has_faults then faults else "market stress");
              response = status;
              attempts = er.ladder_attempts;
              recovery_epoch = None;
              spend_penalty = delta er.spend;
            }
      | Some inc, Healthy ->
        out := { inc with recovery_epoch = Some er.epoch } :: !out;
        open_inc := None;
        baseline := Some er.spend
      | Some inc, _ ->
        open_inc :=
          Some { inc with spend_penalty = inc.spend_penalty +. delta er.spend })
    epochs;
  (match !open_inc with Some inc -> out := inc :: !out | None -> ());
  List.rev !out

let epochs_to_recovery incident =
  Option.map (fun r -> r - incident.start_epoch) incident.recovery_epoch

let render_incidents report =
  let line i =
    Printf.sprintf
      "incident start=%d trigger=%s response=%s attempts=%d recovery=%s \
       epochs_to_recovery=%s spend_penalty=%+.2f"
      i.start_epoch i.trigger
      (status_to_string i.response)
      i.attempts
      (match i.recovery_epoch with Some e -> string_of_int e | None -> "never")
      (match epochs_to_recovery i with
      | Some n -> string_of_int n
      | None -> "never")
      i.spend_penalty
  in
  match report.incidents with
  | [] -> "no incidents\n"
  | incidents -> String.concat "\n" (List.map line incidents) ^ "\n"

let render_epochs report =
  let header =
    Printf.sprintf "%-6s %-28s %12s %8s %10s %5s %7s %8s" "epoch" "status"
      "spend $" "$/Gbps" "delivered" "|SL|" "faults" "attempts"
  in
  let line (er : epoch_report) =
    Printf.sprintf "%-6d %-28s %12.0f %8.2f %9.1f%% %5d %7d %8d" er.epoch
      (status_to_string er.status)
      er.spend er.price_per_gbps
      (100.0 *. er.delivered_fraction)
      er.selected_links er.active_faults er.ladder_attempts
  in
  String.concat "\n" (header :: List.map line report.epochs) ^ "\n"

(* A live-arriving market mutation, applied deterministically at the
   top of the epoch it lands on (before scheduled faults and drift).
   The daemon's admission queue feeds these in; durability is the
   caller's problem — the supervisor journal never records them, so a
   resumed run must re-apply the same updates at the same epochs (the
   daemon's intake log exists for exactly that). *)
type update =
  | Scale_bid of { bp : int; factor : float }
  | Scale_demand of { factor : float }

let validate_update ~n_bps = function
  | Scale_bid { bp; factor } ->
    if bp < 0 || bp >= n_bps then
      Error (Printf.sprintf "bid update: bp %d out of range [0,%d)" bp n_bps)
    else if not (Float.is_finite factor) || factor <= 0.0 then
      Error (Printf.sprintf "bid update: factor %g must be finite positive"
               factor)
    else Ok ()
  | Scale_demand { factor } ->
    if not (Float.is_finite factor) || factor <= 0.0 then
      Error (Printf.sprintf "demand update: factor %g must be finite positive"
               factor)
    else Ok ()

let apply_update st ~n_bps u =
  (match validate_update ~n_bps u with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Supervisor: " ^ msg));
  match u with
  | Scale_bid { bp; factor } ->
    st.cost_level.(bp) <- st.cost_level.(bp) *. factor
  | Scale_demand { factor } -> st.surge <- st.surge *. factor

(* An open supervised run, steppable one epoch at a time.  [run] and
   [resume] below drive one of these end to end; the daemon keeps one
   open across client requests instead.  [l_reports]/[l_violations]
   accumulate in reverse chronological order and include any prefix
   recovered from a journal on resume. *)
type loop = {
  l_ladder : Ladder.config;
  l_journal : Journal.t option;
  l_flight : Black_box.t option;
  l_snapshot_every : int;
  l_disk : Disk.t;
  l_honor_crashes : bool;
  l_state : state;
  l_pool : Pool.t option;
  l_plan : Planner.plan;
  l_market : Epochs.config;
  l_schedule : Fault.schedule;
  mutable l_next : int;
  mutable l_reports : epoch_report list;
  mutable l_violations : violation list;
  mutable l_final_plan : Planner.plan option;
  mutable l_closed : bool;
}

let next_epoch loop =
  if loop.l_closed || loop.l_next > loop.l_market.Epochs.epochs then None
  else Some loop.l_next

let horizon loop = loop.l_market.Epochs.epochs

let progress loop = List.rev loop.l_reports

(* Run one epoch of the supervised loop: apply live updates, then the
   schedule's fault events, then the full market epoch (drift, auction
   or ladder, routing, settlement, invariants), journaling and rotating
   exactly as the monolithic loop did. *)
let step ?(updates = []) loop =
  let st = loop.l_state in
  let plan = loop.l_plan in
  let market = loop.l_market in
  let schedule = loop.l_schedule in
  let journal = loop.l_journal in
  let pool = loop.l_pool in
  let ladder = loop.l_ladder in
  let base_problem = plan.Planner.problem in
  let n_bps = Array.length base_problem.Vcg.bids in
  if loop.l_closed then invalid_arg "Supervisor.step: loop is closed";
  if loop.l_next > market.Epochs.epochs then
    invalid_arg "Supervisor.step: horizon complete";
  (* Flight recording.  [fon] guards every emission so the disabled
     path is one branch and allocates nothing; [femit ~flush:true] is
     used at phase opens and epoch boundaries so a SIGKILL at any
     instant leaves a black box naming the in-flight epoch and phase. *)
  let fb = loop.l_flight in
  let fon = fb <> None in
  let femit ?(flush = false) ~epoch phase kind =
    match fb with
    | None -> ()
    | Some b ->
      Flight.emit (Black_box.ring b) ~epoch ~phase kind;
      if flush then Black_box.flush b
  in
  let crash epoch phase fault =
    Metrics.Counter.inc m_crashes;
    if Trace.enabled () then
      Trace.event "crash_injected"
        ~attrs:
          (("phase", Trace.Str (Fault.phase_to_string phase))
          ::
          (match fault with
          | Some f -> [ ("disk_fault", Trace.Str (Disk.fault_to_string f)) ]
          | None -> []));
    if fon then
      femit ~flush:true ~epoch
        (Fault.phase_to_string phase)
        (Flight.Incident
           {
             incident = "crash";
             detail =
               (match fault with
               | Some f -> "disk_fault:" ^ Disk.fault_to_string f
               | None -> "injected");
           });
    (* The trace sink flushes in place on the way down: a crash run
       keeps its complete trace instead of whatever at_exit salvages. *)
    Trace.flush_sink ();
    (match journal with Some t -> Journal.close t | None -> ());
    loop.l_closed <- true;
    (* The disk damage lands after the handles close and before the
       raise, so the next observer of the files is the resume/scrub
       path — just as after a real power loss.  The flight box rides
       its own Disk.t, so the damage never lands on it. *)
    (match fault with Some f -> Disk.power_cut loop.l_disk f | None -> ());
    raise (Injected_crash { epoch; phase })
  in
  let epoch = loop.l_next in
  let femit ?flush phase kind = femit ?flush ~epoch phase kind in
  begin
    List.iter (fun u -> apply_update st ~n_bps u) updates;
    if fon then femit ~flush:true "epoch" (Flight.Span_open { name = "epoch" });
    let ep_sp = Trace.span "epoch" in
    if Trace.enabled () then Trace.add_attr ep_sp "epoch" (Trace.Int epoch);
    let ep_t0 = Clock.now_us () in
    (* Scheduled faults take effect before the epoch's auction. *)
    let events = Fault.at schedule epoch in
    List.iter
      (fun ev ->
        if Trace.enabled () then
          Trace.event "fault"
            ~attrs:[ ("event", Trace.Str (Fault.event_to_string ev)) ];
        if fon then
          femit "faults"
            (Flight.Event
               { name = "fault"; detail = Fault.event_to_string ev });
        match ev with
        | Fault.Link_down id -> Hashtbl.replace st.down id ()
        | Fault.Link_up id -> Hashtbl.remove st.down id
        | Fault.Bp_exit bp ->
          List.iter
            (fun id -> Hashtbl.replace st.gone id ())
            (Wan.bp_link_ids plan.Planner.wan bp)
        | Fault.Withdraw ids ->
          List.iter (fun id -> Hashtbl.replace st.gone id ()) ids
        | Fault.Surge f -> st.surge <- st.surge *. f
        | Fault.Surge_over f -> st.surge <- st.surge /. f
        | Fault.Crash_point _ | Fault.Disk_point _ -> ())
      events;
    let crash_info =
      if loop.l_honor_crashes then first_crash events else None
    in
    (match crash_info with
    | Some (Fault.Pre_auction, fault) -> crash epoch Fault.Pre_auction fault
    | _ -> ());
    if fon then femit ~flush:true "drift" (Flight.Span_open { name = "drift" });
    let drift_sp = Trace.span "drift" in
    let drift_t0 = Clock.now_us () in
    (* Market drift: the same draws, in the same order, as Epochs.run,
       so a fault-free supervised run replays the plain market. *)
    for bp = 0 to n_bps - 1 do
      let noise =
        1.0
        +. (market.Epochs.cost_volatility *. ((2.0 *. Prng.float st.rng) -. 1.0))
      in
      st.cost_level.(bp) <-
        Float.max 0.05
          (st.cost_level.(bp) *. (1.0 +. market.Epochs.cost_trend) *. noise)
    done;
    let recalled = Hashtbl.create 64 in
    Array.iteri
      (fun bp bid ->
        match strategy_of market bp with
        | Epochs.Recallable fraction ->
          List.iter
            (fun id ->
              if Prng.bernoulli st.rng fraction then
                Hashtbl.replace recalled id ())
            (Bid.links bid)
        | Epochs.Truthful | Epochs.Markup _ -> ())
      base_problem.Vcg.bids;
    let bids =
      Array.mapi
        (fun bp bid ->
          let markup =
            match strategy_of market bp with
            | Epochs.Markup m -> 1.0 +. m
            | Epochs.Truthful | Epochs.Recallable _ -> 1.0
          in
          Bid.scale bid (st.cost_level.(bp) *. markup))
        base_problem.Vcg.bids
    in
    st.matrix <- Matrix.scale st.matrix market.Epochs.demand_growth;
    st.demand_scale <- st.demand_scale *. market.Epochs.demand_growth;
    let epoch_matrix =
      if st.surge = 1.0 then st.matrix else Matrix.scale st.matrix st.surge
    in
    let demands = Matrix.undirected_pair_demands epoch_matrix in
    let volume = Matrix.total epoch_matrix in
    let problem = { base_problem with Vcg.bids; demands } in
    let banned id =
      Hashtbl.mem recalled id || Hashtbl.mem st.down id
      || Hashtbl.mem st.gone id
    in
    let select ?banned:(extra = fun _ -> false) ?cache p =
      Vcg.select_greedy ~banned:(fun id -> banned id || extra id) ?cache ?pool p
    in
    Metrics.Histogram.observe h_drift
      ((Clock.now_us () -. drift_t0) *. 1e-6);
    Trace.finish drift_sp;
    if fon then
      femit "drift"
        (Flight.Span_close
           { name = "drift"; dur_us = Clock.now_us () -. drift_t0 });
    if fon then
      femit ~flush:true "auction" (Flight.Span_open { name = "auction" });
    let auction_sp = Trace.span "auction" in
    let auction_t0 = Clock.now_us () in
    (* Auction; on failure, the ladder; then carry-forward; then blackout. *)
    let status, outcome_opt, ladder_attempts =
      match Vcg.run ~select ?pool problem with
      | Some outcome -> (Healthy, Some outcome, 0)
      | None -> (
        let rung_budget =
          List.length (Ladder.rungs ~rule:problem.Vcg.rule ladder)
        in
        match Ladder.engage ~banned ?pool ladder problem with
        | Some e -> (Degraded e.Ladder.step, Some e.Ladder.outcome, e.Ladder.attempts)
        | None -> (
          match st.last_good with
          | None -> (Blackout, None, rung_budget)
          | Some sel -> (
            let surviving =
              List.filter (fun id -> not (banned id)) sel.Vcg.selected
            in
            match Ladder.pay_as_bid problem surviving with
            | Some outcome -> (Carried, Some outcome, rung_budget)
            | None -> (Blackout, None, rung_budget))))
    in
    (match status with
    | Healthy -> ()
    | Degraded step ->
      Metrics.Counter.inc m_ladder;
      if Trace.enabled () then
        Trace.event "ladder_engaged"
          ~attrs:
            [
              ("step", Trace.Str (Ladder.step_to_string step));
              ("attempts", Trace.Int ladder_attempts);
            ];
      if fon then
        femit ~flush:true "auction"
          (Flight.Incident
             {
               incident = "ladder";
               detail =
                 Printf.sprintf "%s attempts=%d"
                   (Ladder.step_to_string step)
                   ladder_attempts;
             })
    | Carried ->
      Metrics.Counter.inc m_ladder;
      if Trace.enabled () then
        Trace.event "carry_forward"
          ~attrs:[ ("attempts", Trace.Int ladder_attempts) ];
      if fon then
        femit ~flush:true "auction"
          (Flight.Incident
             {
               incident = "carry_forward";
               detail = Printf.sprintf "attempts=%d" ladder_attempts;
             })
    | Blackout ->
      Metrics.Counter.inc m_ladder;
      if Trace.enabled () then
        Trace.event "blackout"
          ~attrs:[ ("attempts", Trace.Int ladder_attempts) ];
      if fon then
        femit ~flush:true "auction"
          (Flight.Incident
             {
               incident = "blackout";
               detail = Printf.sprintf "attempts=%d" ladder_attempts;
             }));
    Metrics.Histogram.observe h_auction
      ((Clock.now_us () -. auction_t0) *. 1e-6);
    Trace.finish auction_sp;
    if fon then
      femit "auction"
        (Flight.Span_close
           { name = "auction"; dur_us = Clock.now_us () -. auction_t0 });
    (match crash_info with
    | Some (Fault.Pre_settle, fault) ->
      (* The auction decided but nothing settled: what hits the disk
         is a record cut off mid-write. *)
      (match journal with Some t -> Journal.append_torn t ~epoch | None -> ());
      crash epoch Fault.Pre_settle fault
    | _ -> ());
    (match status with
    | Healthy -> (
      match outcome_opt with
      | Some o -> st.last_good <- Some o.Vcg.selection
      | None -> ())
    | Degraded _ | Carried | Blackout -> ());
    (* Delivered fraction: route the full (unrelaxed) demand over the
       surviving selected links. *)
    if fon then
      femit ~flush:true "routing" (Flight.Span_open { name = "routing" });
    let routing_sp = Trace.span "routing" in
    let routing_t0 = Clock.now_us () in
    let routing_opt, delivered =
      match outcome_opt with
      | None -> (None, 0.0)
      | Some o ->
        let in_sel = Hashtbl.create 64 in
        List.iter
          (fun id -> Hashtbl.replace in_sel id ())
          o.Vcg.selection.Vcg.selected;
        let enabled id = Hashtbl.mem in_sel id && not (banned id) in
        let r = Router.route ~enabled problem.Vcg.graph ~demands in
        let total =
          List.fold_left (fun acc (_, _, d) -> acc +. d) 0.0 demands
        in
        (Some r, if total <= 0.0 then 1.0 else Router.total_routed r /. total)
    in
    Metrics.Histogram.observe h_routing
      ((Clock.now_us () -. routing_t0) *. 1e-6);
    if Trace.enabled () then
      Trace.add_attr routing_sp "delivered_fraction" (Trace.Float delivered);
    Trace.finish routing_sp;
    if fon then
      femit "routing"
        (Flight.Span_close
           { name = "routing"; dur_us = Clock.now_us () -. routing_t0 });
    let spend =
      match outcome_opt with Some o -> o.Vcg.total_payment | None -> 0.0
    in
    let price =
      match outcome_opt with
      | Some _ when volume > 0.0 -> spend /. volume
      | Some _ | None -> 0.0
    in
    (* Cross-layer invariants, checked every epoch. *)
    if fon then
      femit ~flush:true "settlement" (Flight.Span_open { name = "settlement" });
    let settle_sp = Trace.span "settlement" in
    let settle_t0 = Clock.now_us () in
    let epoch_violations = ref [] in
    let violate invariant detail =
      Metrics.Counter.inc m_violations;
      if Trace.enabled () then
        Trace.event "violation"
          ~attrs:
            [ ("invariant", Trace.Str invariant); ("detail", Trace.Str detail) ];
      if fon then
        femit ~flush:true "settlement"
          (Flight.Incident
             { incident = "violation"; detail = invariant ^ ": " ^ detail });
      epoch_violations := { epoch; invariant; detail } :: !epoch_violations
    in
    let conservation, posted =
      match (outcome_opt, routing_opt) with
      | Some outcome, Some routing ->
        let pseudo =
          { plan with Planner.matrix = epoch_matrix; problem; outcome; routing }
        in
        let ledger = Settlement.of_plan pseudo () in
        loop.l_final_plan <- Some pseudo;
        (match Settlement.check ledger with
        | Ok () -> ()
        | Error msg -> violate "settlement-ledger" msg);
        ( Some (Settlement.conservation ledger),
          Some ledger.Settlement.usage_price )
      | _, _ -> (None, None)
    in
    if not (Float.is_finite price) then
      violate "epoch-price-finite" (Printf.sprintf "price %f" price);
    (match routing_opt with
    | Some r when Router.total_routed r > r.Router.enabled_capacity +. 1e-6 ->
      violate "delivered-within-capacity"
        (Printf.sprintf "routed %.3f over capacity %.3f"
           (Router.total_routed r) r.Router.enabled_capacity)
    | Some _ | None -> ());
    let epoch_violations = List.rev !epoch_violations in
    List.iter
      (fun v -> loop.l_violations <- v :: loop.l_violations)
      epoch_violations;
    Metrics.Histogram.observe h_settlement
      ((Clock.now_us () -. settle_t0) *. 1e-6);
    Trace.finish settle_sp;
    if fon then
      femit "settlement"
        (Flight.Span_close
           { name = "settlement"; dur_us = Clock.now_us () -. settle_t0 });
    let er =
      {
        epoch;
        status;
        spend;
        price_per_gbps = price;
        delivered_fraction = delivered;
        selected_links =
          (match outcome_opt with
          | Some o -> List.length o.Vcg.selection.Vcg.selected
          | None -> 0);
        recalled_links = Hashtbl.length recalled;
        active_faults = Hashtbl.length st.down + Hashtbl.length st.gone;
        ladder_attempts;
        ledger_conservation = conservation;
        posted_price = posted;
      }
    in
    loop.l_reports <- er :: loop.l_reports;
    (match journal with
    | Some t ->
      if fon then
        femit ~flush:true "journal" (Flight.Span_open { name = "journal" });
      let journal_sp = Trace.span "journal" in
      let journal_t0 = Clock.now_us () in
      Journal.append_epoch t
        {
          Journal.report = er;
          events;
          selected =
            (match outcome_opt with
            | Some o -> o.Vcg.selection.Vcg.selected
            | None -> []);
          violations = epoch_violations;
        };
      if
        epoch mod loop.l_snapshot_every = 0 && epoch < market.Epochs.epochs
      then Journal.append_snapshot t (snapshot_of_state ~epoch st);
      (* Rotation is driven here, not inside the journal, because only
         the supervisor can checkpoint the live market state for the
         new segment's carry.  The trigger depends only on bytes
         appended so far, so an uninterrupted run and a resumed one
         rotate at the same epochs with the same carries. *)
      if Journal.wants_rotation t && epoch < market.Epochs.epochs then
        Journal.rotate t
          {
            Journal.at = snapshot_of_state ~epoch st;
            carry_reports = List.rev loop.l_reports;
            carry_violations = List.rev loop.l_violations;
          };
      Metrics.Histogram.observe h_journal
        ((Clock.now_us () -. journal_t0) *. 1e-6);
      Trace.finish journal_sp;
      if fon then
        femit "journal"
          (Flight.Span_close
             { name = "journal"; dur_us = Clock.now_us () -. journal_t0 })
    | None -> ());
    if Trace.enabled () then begin
      Trace.add_attr ep_sp "status" (Trace.Str (status_to_string status));
      Trace.add_attr ep_sp "spend" (Trace.Float spend)
    end;
    Metrics.Counter.inc m_epochs;
    Metrics.Histogram.observe h_epoch ((Clock.now_us () -. ep_t0) *. 1e-6);
    (* Epoch-boundary flush: the completed epoch's records are durable
       before any post-settle crash fires or the next epoch opens. *)
    if fon then
      femit ~flush:true "epoch"
        (Flight.Span_close
           { name = "epoch"; dur_us = Clock.now_us () -. ep_t0 });
    (match crash_info with
    | Some (Fault.Post_settle, fault) -> crash epoch Fault.Post_settle fault
    | _ -> ());
    Trace.finish ep_sp;
    loop.l_next <- epoch + 1;
    er
  end

let assemble_report loop =
  let epochs = List.rev loop.l_reports in
  let incidents = incidents_of ~schedule:loop.l_schedule epochs in
  {
    epochs;
    incidents;
    violations = List.rev loop.l_violations;
    ladder_activations =
      List.length
        (List.filter (fun (er : epoch_report) -> er.status <> Healthy) epochs);
    final_plan = loop.l_final_plan;
  }

let finish loop =
  let report = assemble_report loop in
  (match loop.l_journal with
  | Some t when not loop.l_closed ->
    Journal.append_complete t ~incidents:(render_incidents report);
    Journal.close t
  | Some _ | None -> ());
  (match loop.l_flight with Some b -> Black_box.close b | None -> ());
  loop.l_closed <- true;
  report

(* Close the journal with {e no} completion record: the store stays
   resumable.  The daemon's graceful shutdown mid-horizon uses this so
   a later [serve --resume] picks the run back up. *)
let suspend loop =
  (match loop.l_journal with
  | Some t when not loop.l_closed -> Journal.close t
  | Some _ | None -> ());
  (match loop.l_flight with Some b -> Black_box.close b | None -> ());
  loop.l_closed <- true

let drive loop =
  let rec go () =
    match next_epoch loop with
    | None -> finish loop
    | Some _ ->
      ignore (step loop);
      go ()
  in
  go ()

let validate_or_raise ~ladder ~market =
  (match Epochs.validate_config market with
  | Ok () -> ()
  | Error msg -> invalid_arg msg);
  match Ladder.validate_config ladder with
  | Ok () -> ()
  | Error msg -> invalid_arg msg

let open_run ?(ladder = Ladder.default_config) ?journal ?flight
    ?(snapshot_every = 4) ?segment_bytes ?disk ?pool (plan : Planner.plan)
    ~market ~schedule =
  validate_or_raise ~ladder ~market;
  if snapshot_every < 1 then
    invalid_arg "Supervisor: snapshot_every must be >= 1";
  let disk = match disk with Some d -> d | None -> Disk.real () in
  let j =
    Option.map
      (fun path ->
        Journal.create ~disk ?segment_bytes path
          {
            Journal.version = Journal.version;
            market_seed = market.Epochs.seed;
            market_epochs = market.Epochs.epochs;
            n_bps = Array.length plan.Planner.problem.Vcg.bids;
            snapshot_every;
            digest = Journal.digest ~market ~ladder schedule;
          })
      journal
  in
  {
    l_ladder = ladder;
    l_journal = j;
    l_flight = flight;
    l_snapshot_every = snapshot_every;
    l_disk = disk;
    l_honor_crashes = true;
    l_state = initial_state plan market;
    l_pool = pool;
    l_plan = plan;
    l_market = market;
    l_schedule = schedule;
    l_next = 1;
    l_reports = [];
    l_violations = [];
    l_final_plan = None;
    l_closed = false;
  }

let run ?ladder ?journal ?flight ?snapshot_every ?segment_bytes ?disk ?pool
    (plan : Planner.plan) ~market ~schedule =
  drive
    (open_run ?ladder ?journal ?flight ?snapshot_every ?segment_bytes ?disk
       ?pool plan ~market ~schedule)

let open_resume ?(ladder = Ladder.default_config) ?(honor_crashes = false)
    ~journal:path ?flight ?disk ?pool (plan : Planner.plan) ~market ~schedule =
  validate_or_raise ~ladder ~market;
  let disk = match disk with Some d -> d | None -> Disk.real () in
  match Journal.replay ~disk path with
  | Error msg -> Error msg
  | Ok r ->
    let h = r.Journal.header in
    let n_bps = Array.length plan.Planner.problem.Vcg.bids in
    let mismatches =
      List.filter_map
        (fun (name, journal_has, run_has) ->
          if journal_has <> run_has then
            Some
              (Printf.sprintf "%s: journal has %d, this run has %d" name
                 journal_has run_has)
          else None)
        [
          ("market seed", h.Journal.market_seed, market.Epochs.seed);
          ("market epochs", h.Journal.market_epochs, market.Epochs.epochs);
          ("bandwidth providers", h.Journal.n_bps, n_bps);
        ]
      @
      if Int64.equal h.Journal.digest (Journal.digest ~market ~ladder schedule)
      then []
      else
        [ "config digest differs (market, ladder or fault schedule changed)" ]
    in
    if mismatches <> [] then
      Error ("journal does not match this run: " ^ String.concat "; " mismatches)
    else if r.Journal.complete <> None then
      Error "journal records a completed run; nothing to resume"
    else
      let state, first_epoch, prefix_records =
        match r.Journal.snapshot with
        | Some s ->
          ( state_of_snapshot plan market s,
            s.Journal.at_epoch + 1,
            List.filter
              (fun (rec_ : Journal.epoch_record) ->
                rec_.Journal.report.epoch <= s.Journal.at_epoch)
              r.Journal.records )
        | None -> (initial_state plan market, 1, [])
      in
      let t = Journal.reopen ~disk path r in
      let prefix =
        r.Journal.prefix_reports
        @ List.map
            (fun (rec_ : Journal.epoch_record) -> rec_.Journal.report)
            prefix_records
      in
      let prefix_violations =
        r.Journal.prefix_violations
        @ List.concat_map
            (fun (rec_ : Journal.epoch_record) -> rec_.Journal.violations)
            prefix_records
      in
      (* A rotation torn by the power cut: the snapshot that triggered
         it is the segment's last record and the segment is back over
         budget (the new segment's manifest rename never landed, and
         reopen deleted the orphan).  Redo the rotation here with the
         same carry the interrupted run used, so the rebuilt store is
         byte-identical to an uninterrupted one.  The last-record guard
         keeps this from firing when the over-budget bytes are epoch
         records after the snapshot — those re-rotate naturally when
         their epochs re-run. *)
      let ends_with_snapshot_record (s : Journal.snapshot) =
        (* True only when the segment's own records run right up to the
           snapshot that closes it — the torn-rotation shape.  A fresh
           post-rotation segment also ends at its (carry) snapshot but
           holds no records, and must not rotate again. *)
        (not r.Journal.torn_tail)
        && r.Journal.resume_offset = r.Journal.valid_bytes
        && (match List.rev r.Journal.records with
           | last :: _ -> last.Journal.report.epoch = s.Journal.at_epoch
           | [] -> false)
      in
      (match r.Journal.snapshot with
      | Some s
        when Journal.wants_rotation t
             && ends_with_snapshot_record s
             && s.Journal.at_epoch < market.Epochs.epochs ->
        Journal.rotate t
          {
            Journal.at = s;
            carry_reports = prefix;
            carry_violations = prefix_violations;
          }
      | _ -> ());
      Ok
        {
          l_ladder = ladder;
          l_journal = Some t;
          l_flight = flight;
          l_snapshot_every = h.Journal.snapshot_every;
          l_disk = disk;
          l_honor_crashes = honor_crashes;
          l_state = state;
          l_pool = pool;
          l_plan = plan;
          l_market = market;
          l_schedule = schedule;
          l_next = first_epoch;
          l_reports = List.rev prefix;
          l_violations = List.rev prefix_violations;
          l_final_plan = None;
          l_closed = false;
        }

let resume ?ladder ?honor_crashes ~journal ?flight ?disk ?pool
    (plan : Planner.plan) ~market ~schedule =
  Result.map drive
    (open_resume ?ladder ?honor_crashes ~journal ?flight ?disk ?pool plan
       ~market ~schedule)
