module Flight = Poc_obs.Flight
module Metrics = Poc_obs.Metrics
module Black_box = Poc_resilience.Black_box
module Disk = Poc_resilience.Disk
module Journal = Poc_resilience.Journal
module Supervisor = Poc_resilience.Supervisor
module Fault = Poc_resilience.Fault
module Intake = Poc_daemon.Intake
module Admission = Poc_daemon.Admission
module Table = Poc_util.Table

type source = Src_flight | Src_journal | Src_intake

let source_to_string = function
  | Src_flight -> "flight"
  | Src_journal -> "journal"
  | Src_intake -> "intake"

type entry = {
  e_epoch : int;
  e_source : source;
  e_phase : string;
  e_label : string;
  e_detail : string;
  e_ts_us : float;
}

type analysis = {
  a_store : string;
  a_flight_path : string option;
  a_flight : (Flight.image_data, string) result option;
  a_journal : (Journal.replayed, string) result;
  a_scrub : (Journal.scrub_report, string) result;
  a_intake_path : string option;
  a_intake : (Intake.record list * bool, string) result option;
  a_durable_epoch : int;
  a_in_flight : (int * string) option;
  a_entries : entry list;
}

let flight_path_for_kind ~segmented store =
  if segmented then Filename.concat store "FLIGHT" else store ^ ".flight"

let flight_path_for ?disk store =
  let disk = match disk with Some d -> d | None -> Disk.real () in
  flight_path_for_kind ~segmented:(Disk.is_directory disk store) store

(* --- per-source entry builders -------------------------------------------- *)

let flight_entries (img : Flight.image_data) =
  List.map
    (fun (r : Flight.record) ->
      let label, detail =
        match r.Flight.kind with
        | Flight.Span_open { name } -> ("span_open", name)
        | Flight.Span_close { name; dur_us } ->
          ("span_close", Printf.sprintf "%s dur_us=%.0f" name dur_us)
        | Flight.Event { name; detail } -> ("event", name ^ ": " ^ detail)
        | Flight.Incident { incident; detail } ->
          ("incident", incident ^ ": " ^ detail)
        | Flight.Metric { name; delta } ->
          ("metric", Printf.sprintf "%s=%.6g" name delta)
      in
      {
        e_epoch = r.Flight.epoch;
        e_source = Src_flight;
        e_phase = r.Flight.phase;
        e_label = label;
        e_detail = detail;
        e_ts_us = r.Flight.ts_us;
      })
    img.Flight.img_records

let journal_entries (rep : Journal.replayed) =
  let of_report (er : Journal.epoch_report) =
    {
      e_epoch = er.Journal.epoch;
      e_source = Src_journal;
      e_phase = "";
      e_label = "epoch";
      e_detail =
        Printf.sprintf "status=%s spend=%.2f delivered=%.3f"
          (Supervisor.status_to_string er.Journal.status)
          er.Journal.spend er.Journal.delivered_fraction;
      e_ts_us = nan;
    }
  in
  let of_violation (v : Journal.violation) =
    {
      e_epoch = v.Journal.epoch;
      e_source = Src_journal;
      e_phase = "";
      e_label = "violation";
      e_detail = v.Journal.invariant ^ ": " ^ v.Journal.detail;
      e_ts_us = nan;
    }
  in
  let prefix = List.map of_report rep.Journal.prefix_reports in
  let live =
    List.concat_map
      (fun (r : Journal.epoch_record) ->
        let ev =
          List.map
            (fun e ->
              {
                e_epoch = r.Journal.report.Journal.epoch;
                e_source = Src_journal;
                e_phase = "";
                e_label = "fault";
                e_detail = Fault.event_to_string e;
                e_ts_us = nan;
              })
            r.Journal.events
        in
        ev
        @ List.map of_violation r.Journal.violations
        @ [ of_report r.Journal.report ])
      rep.Journal.records
  in
  let complete =
    match rep.Journal.complete with
    | None -> []
    | Some _ ->
      [
        {
          e_epoch =
            (match List.rev rep.Journal.records with
            | r :: _ -> r.Journal.report.Journal.epoch
            | [] -> -1);
          e_source = Src_journal;
          e_phase = "";
          e_label = "complete";
          e_detail = "run finished; completion record present";
          e_ts_us = nan;
        };
      ]
  in
  prefix
  @ List.map of_violation rep.Journal.prefix_violations
  @ live @ complete

let intake_entries records =
  List.map
    (fun (r : Intake.record) ->
      let e = r.Intake.entry in
      let payload =
        match e.Admission.payload with
        | Supervisor.Scale_bid { bp; factor } ->
          Printf.sprintf "scale_bid bp=%d factor=%g" bp factor
        | Supervisor.Scale_demand { factor } ->
          Printf.sprintf "scale_demand factor=%g" factor
      in
      let shed =
        match r.Intake.displaces with
        | Some s -> Printf.sprintf " shed=%d" s
        | None -> ""
      in
      {
        e_epoch = e.Admission.apply_epoch;
        e_source = Src_intake;
        e_phase = "admission";
        e_label = "admit";
        e_detail =
          Printf.sprintf "seq=%d priority=%d %s%s" e.Admission.seq
            e.Admission.priority payload shed;
        e_ts_us = nan;
      })
    records

(* --- the merge ------------------------------------------------------------- *)

let source_rank = function Src_intake -> 0 | Src_flight -> 1 | Src_journal -> 2

(* Epoch first; within an epoch intake (arrived before it ran), then
   flight (narrates it running), then the journal's durable record as
   the last word.  The sort is stable, so each source keeps its own
   chronological order. *)
let order entries =
  List.stable_sort
    (fun a b ->
      match compare a.e_epoch b.e_epoch with
      | 0 -> compare (source_rank a.e_source) (source_rank b.e_source)
      | c -> c)
    entries

let durable_epoch (journal : (Journal.replayed, string) result) =
  match journal with
  | Error _ -> 0
  | Ok rep ->
    List.fold_left
      (fun acc (er : Journal.epoch_report) -> max acc er.Journal.epoch)
      0
      (rep.Journal.prefix_reports
      @ List.map (fun (r : Journal.epoch_record) -> r.Journal.report)
          rep.Journal.records)

(* The in-flight verdict: a crash incident names the exact point; else
   the newest flight record past the durable horizon places the death
   inside that epoch and phase. *)
let in_flight ~durable flight =
  match flight with
  | None | Some (Error _) -> None
  | Some (Ok (img : Flight.image_data)) -> (
    let newest_first = List.rev img.Flight.img_records in
    let crash =
      List.find_opt
        (fun (r : Flight.record) ->
          match r.Flight.kind with
          | Flight.Incident { incident = "crash"; _ } -> true
          | _ -> false)
        newest_first
    in
    match crash with
    | Some r -> Some (r.Flight.epoch, r.Flight.phase)
    | None -> (
      match
        List.find_opt
          (fun (r : Flight.record) -> r.Flight.epoch > durable)
          newest_first
      with
      | Some r -> Some (r.Flight.epoch, r.Flight.phase)
      | None -> None))

let analyze ?disk ?flight ?intake store =
  let disk = match disk with Some d -> d | None -> Disk.real () in
  let flight_path =
    match flight with Some p -> p | None -> flight_path_for ~disk store
  in
  let flight_present = Disk.exists disk flight_path in
  let a_flight =
    if not flight_present then None
    else
      Some
        (Black_box.load ~disk flight_path)
  in
  let a_journal = Journal.replay ~disk store in
  let a_scrub = Journal.scrub ~disk ~dry_run:true store in
  let intake_path =
    match intake with
    | Some p -> p
    | None -> Filename.concat (Filename.dirname store) "intake.log"
  in
  let intake_present = Disk.exists disk intake_path in
  let a_intake =
    if not intake_present then None else Some (Intake.read ~disk intake_path)
  in
  if (not flight_present) && Result.is_error a_journal && not intake_present
  then
    Error
      (Printf.sprintf
         "%s: no flight box, no readable journal, no intake log — nothing to \
          analyze%s"
         store
         (match a_journal with Error e -> " (journal: " ^ e ^ ")" | Ok _ -> ""))
  else begin
    let durable = durable_epoch a_journal in
    let entries =
      (match a_flight with Some (Ok img) -> flight_entries img | _ -> [])
      @ (match a_journal with Ok rep -> journal_entries rep | Error _ -> [])
      @ (match a_intake with
        | Some (Ok (records, _)) -> intake_entries records
        | _ -> [])
    in
    Ok
      {
        a_store = store;
        a_flight_path = (if flight_present then Some flight_path else None);
        a_flight;
        a_journal;
        a_scrub;
        a_intake_path = (if intake_present then Some intake_path else None);
        a_intake;
        a_durable_epoch = durable;
        a_in_flight = in_flight ~durable a_flight;
        a_entries = order entries;
      }
  end

(* --- rendering ------------------------------------------------------------- *)

let render a =
  let b = Buffer.create 4096 in
  Printf.bprintf b "forensics: %s\n" a.a_store;
  (match (a.a_flight_path, a.a_flight) with
  | Some p, Some (Ok img) ->
    Printf.bprintf b
      "flight:    %s — %d records (%d frames%s, capacity %d)\n" p
      (List.length img.Flight.img_records)
      img.Flight.img_frames
      (if img.Flight.img_torn then ", torn tail" else "")
      img.Flight.img_capacity
  | Some p, Some (Error e) -> Printf.bprintf b "flight:    %s — ERROR %s\n" p e
  | _ -> Buffer.add_string b "flight:    none\n");
  (match a.a_journal with
  | Ok rep ->
    Printf.bprintf b
      "journal:   %s — durable through epoch %d%s%s\n"
      (if rep.Journal.segmented then "segmented" else "single-file")
      a.a_durable_epoch
      (if rep.Journal.torn_tail then ", torn tail" else "")
      (if rep.Journal.complete <> None then ", complete" else "")
  | Error e -> Printf.bprintf b "journal:   ERROR %s\n" e);
  (match a.a_scrub with
  | Ok rep ->
    let worst =
      List.fold_left
        (fun acc (s : Journal.segment_scrub) ->
          match s.Journal.verdict with
          | Journal.Scrub_clean -> acc
          | v -> Journal.verdict_to_string v :: acc)
        [] rep.Journal.segments
    in
    Printf.bprintf b "scrub:     %s (dry run; recovered=%b)\n"
      (if worst = [] then "clean" else String.concat ", " (List.rev worst))
      rep.Journal.recovered
  | Error e -> Printf.bprintf b "scrub:     ERROR %s\n" e);
  (match (a.a_intake_path, a.a_intake) with
  | Some p, Some (Ok (records, torn)) ->
    Printf.bprintf b "intake:    %s — %d admissions%s\n" p
      (List.length records)
      (if torn then ", torn tail" else "")
  | Some p, Some (Error e) -> Printf.bprintf b "intake:    %s — ERROR %s\n" p e
  | _ -> Buffer.add_string b "intake:    none\n");
  (match a.a_in_flight with
  | Some (e, phase) ->
    Printf.bprintf b "in-flight: epoch %d phase %s\n" e
      (if phase = "" then "(none)" else phase)
  | None ->
    Printf.bprintf b
      "in-flight: none — journal durable through everything recorded\n");
  let rows =
    List.map
      (fun e ->
        [
          (if e.e_epoch < 0 then "-" else string_of_int e.e_epoch);
          source_to_string e.e_source;
          (if e.e_phase = "" then "-" else e.e_phase);
          e.e_label;
          e.e_detail;
        ])
      a.a_entries
  in
  if rows <> [] then
    Buffer.add_string b
      (Table.render
         ~align:[ Table.Right; Table.Left; Table.Left; Table.Left; Table.Left ]
         ~header:[ "epoch"; "source"; "phase"; "what"; "detail" ]
         rows);
  Buffer.contents b

let jstr s = "\"" ^ Metrics.json_escape s ^ "\""

let to_json a =
  let b = Buffer.create 4096 in
  Printf.bprintf b "{\"store\":%s,\"sources\":{" (jstr a.a_store);
  (match (a.a_flight_path, a.a_flight) with
  | Some p, Some (Ok img) ->
    Printf.bprintf b
      "\"flight\":{\"path\":%s,\"records\":%d,\"frames\":%d,\"torn\":%b,\"capacity\":%d}"
      (jstr p)
      (List.length img.Flight.img_records)
      img.Flight.img_frames img.Flight.img_torn img.Flight.img_capacity
  | Some p, Some (Error e) ->
    Printf.bprintf b "\"flight\":{\"path\":%s,\"error\":%s}" (jstr p) (jstr e)
  | _ -> Buffer.add_string b "\"flight\":null");
  (match a.a_journal with
  | Ok rep ->
    Printf.bprintf b
      ",\"journal\":{\"segmented\":%b,\"durable_epoch\":%d,\"torn_tail\":%b,\"complete\":%b}"
      rep.Journal.segmented a.a_durable_epoch rep.Journal.torn_tail
      (rep.Journal.complete <> None)
  | Error e -> Printf.bprintf b ",\"journal\":{\"error\":%s}" (jstr e));
  (match (a.a_intake_path, a.a_intake) with
  | Some p, Some (Ok (records, torn)) ->
    Printf.bprintf b
      ",\"intake\":{\"path\":%s,\"admissions\":%d,\"torn\":%b}" (jstr p)
      (List.length records) torn
  | Some p, Some (Error e) ->
    Printf.bprintf b ",\"intake\":{\"path\":%s,\"error\":%s}" (jstr p) (jstr e)
  | _ -> Buffer.add_string b ",\"intake\":null");
  Buffer.add_string b "},";
  Printf.bprintf b "\"durable_epoch\":%d," a.a_durable_epoch;
  (match a.a_in_flight with
  | Some (e, phase) ->
    Printf.bprintf b "\"in_flight\":{\"epoch\":%d,\"phase\":%s}," e
      (jstr phase)
  | None -> Buffer.add_string b "\"in_flight\":null,");
  (match a.a_scrub with
  | Ok rep ->
    Printf.bprintf b "\"scrub\":{\"recovered\":%b,\"segments\":[%s]},"
      rep.Journal.recovered
      (String.concat ","
         (List.map
            (fun (s : Journal.segment_scrub) ->
              Printf.sprintf
                "{\"segment\":%d,\"verdict\":%s,\"action\":%s,\"records_ok\":%d}"
                s.Journal.seg_id
                (jstr (Journal.verdict_to_string s.Journal.verdict))
                (jstr (Journal.action_to_string s.Journal.action))
                s.Journal.records_ok)
            rep.Journal.segments))
  | Error e -> Printf.bprintf b "\"scrub\":{\"error\":%s}," (jstr e));
  Buffer.add_string b "\"timeline\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b
        "{\"epoch\":%d,\"source\":%s,\"phase\":%s,\"what\":%s,\"detail\":%s}"
        e.e_epoch
        (jstr (source_to_string e.e_source))
        (jstr e.e_phase) (jstr e.e_label) (jstr e.e_detail))
    a.a_entries;
  Buffer.add_string b "]}\n";
  Buffer.contents b
