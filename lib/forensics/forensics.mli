(** Crash forensics: one ordered incident timeline per store.

    After a crash — injected, SIGKILL, or power cut — the evidence is
    scattered over four artifacts: the flight recorder's [FLIGHT] box
    (the last moments, including the in-flight epoch and phase), the
    journal's durable epoch records, the scrubber's verdict on the
    damage, and the daemon's intake log (which admissions were durable
    when the process died).  This module reads all four {e without
    modifying anything} (the journal scrub runs dry; the flight image
    and intake log are parsed read-only, torn tails tolerated) and
    merges them into a single timeline ordered by epoch — within an
    epoch: intake admissions, then flight records in emission order,
    then the journal's durable record as the last word.

    The headline answer is {!field:analysis.a_in_flight}: the epoch and
    phase the process was inside when it died, derived from the newest
    flight record past the newest durable journal epoch (a crash
    incident record wins when present).  [poc-cli forensics] renders
    {!render} (human table) or {!to_json} (one JSON document). *)

module Flight = Poc_obs.Flight
module Disk = Poc_resilience.Disk
module Journal = Poc_resilience.Journal
module Intake = Poc_daemon.Intake

type source = Src_flight | Src_journal | Src_intake

val source_to_string : source -> string
(** ["flight"], ["journal"], ["intake"]. *)

type entry = {
  e_epoch : int;      (** market epoch; [-1] outside any epoch *)
  e_source : source;
  e_phase : string;   (** supervisor phase / daemon verb; [""] when none *)
  e_label : string;   (** ["span_open"], ["incident"], ["epoch"], ["admit"], … *)
  e_detail : string;
  e_ts_us : float;    (** flight emission clock; [nan] for other sources *)
}

type analysis = {
  a_store : string;
  a_flight_path : string option;  (** resolved box path, when one exists *)
  a_flight : (Flight.image_data, string) result option;
  a_journal : (Journal.replayed, string) result;
  a_scrub : (Journal.scrub_report, string) result;  (** always dry-run *)
  a_intake_path : string option;
  a_intake : (Intake.record list * bool, string) result option;
      (** records + torn-tail flag, when an intake log exists *)
  a_durable_epoch : int;  (** newest epoch with a durable journal record *)
  a_in_flight : (int * string) option;
      (** epoch and phase in flight at death; [None] when the journal
          is durable through everything the recorder saw *)
  a_entries : entry list;  (** the merged, ordered timeline *)
}

val flight_path_for_kind : segmented:bool -> string -> string
(** [<store>/FLIGHT] when [segmented], else [<store>.flight] — pure,
    for choosing where a {e new} run's box goes before the store
    exists. *)

val flight_path_for : ?disk:Disk.t -> string -> string
(** Where an {e existing} store's box lives, probing the store kind:
    {!flight_path_for_kind} with [segmented] = "is a directory". *)

val analyze :
  ?disk:Disk.t ->
  ?flight:string ->
  ?intake:string ->
  string ->
  (analysis, string) result
(** Read every artifact the store offers.  [flight] and [intake]
    override auto-detection ({!flight_path_for}, and
    [dirname(store)/intake.log] — the daemon's layout).  Missing
    artifacts are recorded as absent, and a broken one as its error;
    [Error] only when {e none} of the four sources exists at all. *)

val render : analysis -> string
(** Human forensics report: source inventory, the in-flight verdict,
    the scrub verdict, and the timeline table. *)

val to_json : analysis -> string
(** The same analysis as one JSON document (trailing newline):
    [{"store","sources":{..},"durable_epoch","in_flight","scrub",
    "timeline":[{"epoch","source","phase","what","detail"}]}]. *)
