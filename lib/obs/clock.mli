(** Monotonic wall-clock used by every observability reading.

    The OS clock can step backwards (NTP); trace viewers and latency
    histograms cannot.  [now_us] clamps so consecutive readings never
    decrease, which is all the span model needs.

    Domain-safe: the origin and the monotonic watermark are atomics
    ([now_us] advances the watermark with a CAS loop), so pool workers
    can timestamp concurrently with a [reset_origin] on the main
    domain without tearing or going backwards. *)

val now_us : unit -> float
(** Microseconds since an arbitrary process-local origin; never
    decreases between calls. *)

val origin : unit -> float
(** The current origin in raw [Unix.gettimeofday] microseconds.
    Subtracted from readings so trace timestamps start near zero. *)

val reset_origin : unit -> unit
(** Re-anchor the origin at the current instant.  Installing a trace
    sink does this so every trace file starts at t=0. *)
