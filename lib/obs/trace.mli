(** Hierarchical tracing with pluggable sinks.

    A span is an interval of work ("epoch 4's auction") with a name,
    monotonic start/end timestamps, key/value attributes, and point
    events ("link 17 went down at t").  Spans nest: a span opened while
    another is open becomes its child, and the exporter preserves that
    hierarchy.  Span ids are deterministic — a counter reset when a
    sink is installed — so two traces of the same run are comparable.

    Tracing is disabled unless a sink is installed.  The disabled path
    is guaranteed allocation-free: {!span} returns the immediate
    {!null_span}, and {!finish}/{!add_attr}/{!event} return after one
    branch.  Instrumentation can therefore live permanently in hot
    loops; guard only the construction of attribute lists with
    {!enabled}.

    Three sinks ship with the module: disabled-by-default null
    behaviour (no sink), an in-memory {!Ring} buffer for tests and
    always-on flight recording, and a {!Chrome} trace-event JSON
    exporter whose files load in [chrome://tracing] and Perfetto. *)

type value = Str of string | Int of int | Float of float | Bool of bool

type event = {
  ev_name : string;
  ev_ts_us : float;
  ev_attrs : (string * value) list;
}

type record = {
  id : int;  (** deterministic: nth span opened since sink install *)
  parent : int;  (** 0 for roots *)
  depth : int;  (** 0 for roots *)
  name : string;
  start_us : float;
  end_us : float;
  attrs : (string * value) list;  (** in [add_attr] order *)
  events : event list;  (** in time order *)
}

type sink = {
  emit : record -> unit;  (** called once per span, as it finishes *)
  flush : unit -> unit;  (** called when the sink is uninstalled *)
}

val set_sink : sink option -> unit
(** Install or remove the sink.  Installing resets span ids and the
    clock origin; removing (or replacing) force-finishes any spans
    still open — a crash-interrupted trace keeps its partial epoch —
    and then calls the outgoing sink's [flush]. *)

val enabled : unit -> bool

val flush_sink : unit -> unit
(** Flush the installed sink {e in place} — without uninstalling it or
    closing open spans.  The supervisor calls this on fault and
    injected-crash paths so a SIGKILL'd or crashed run still leaves its
    trace on disk rather than relying on [at_exit] (which a SIGKILL
    never reaches).  A no-op when no sink is installed or the sink's
    [flush] does nothing (give {!Chrome.sink} a [?path] to make flushes
    persistent). *)

type span

val null_span : span
(** What {!span} returns while disabled; all operations on it are
    no-ops. *)

val span : string -> span
(** Open a span as a child of the innermost open span. *)

val finish : span -> unit
(** Close the span (and, defensively, any child left open inside it).
    Closing {!null_span} or an already-closed span is a no-op. *)

val add_attr : span -> string -> value -> unit
(** Attach an attribute to a still-open span. *)

val event : ?attrs:(string * value) list -> string -> unit
(** Record a point event on the innermost open span.  Dropped when no
    span is open. *)

val with_span : string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span, finishing it even if
    [f] raises.  Convenience for non-hot call sites; hot paths use
    {!span}/{!finish} directly to avoid the closure. *)

val open_spans : unit -> int
(** Number of currently open spans (0 when disabled); for tests. *)

(** Bounded in-memory sink: keeps the most recent [capacity] finished
    spans, oldest first. *)
module Ring : sig
  type t

  val create : ?capacity:int -> unit -> t
  (** Default capacity 4096. *)

  val sink : t -> sink

  val records : t -> record list
  (** Retained spans, oldest first. *)

  val dropped : t -> int
  (** Spans evicted since creation. *)
end

(** Chrome trace-event JSON exporter ([chrome://tracing], Perfetto).
    Spans become complete ("X") events, span events become instant
    ("i") events, ordered by timestamp with parents before children. *)
module Chrome : sig
  type t

  val create : unit -> t

  val sink : ?path:string -> t -> sink
  (** With [path], the sink's [flush] rewrites the Chrome JSON at
      [path] — so {!flush_sink} on a crash path persists the trace
      collected so far, and the final [set_sink None] rewrites it one
      last time with the complete run. *)

  val to_json : t -> string

  val write : t -> string -> unit
  (** [write t path] writes {!to_json} to [path]. *)
end
