(* All instrument state is Atomic-backed so that increments issued
   from pool worker domains (parallel Clarke pivots, chunked candidate
   evaluation) are never lost.  Floats go through a CAS retry loop —
   [Atomic.compare_and_set] compares the box we just read, so the loop
   only retries when another domain actually raced us. *)

let rec atomic_add_float a v =
  let old = Atomic.get a in
  if not (Atomic.compare_and_set a old (old +. v)) then atomic_add_float a v

let rec atomic_max_float a v =
  let old = Atomic.get a in
  if v > old && not (Atomic.compare_and_set a old v) then atomic_max_float a v

module Counter = struct
  type t = { c : float Atomic.t }

  let inc t = atomic_add_float t.c 1.0

  let add t v =
    if v < 0.0 || Float.is_nan v then
      invalid_arg "Metrics.Counter.add: negative or NaN increment"
    else atomic_add_float t.c v

  let value t = Atomic.get t.c
end

module Gauge = struct
  type t = { g : float Atomic.t }

  let set t v = Atomic.set t.g v

  let add t v = atomic_add_float t.g v

  let value t = Atomic.get t.g
end

module Histogram = struct
  type t = {
    bnds : float array;          (* ascending upper bounds *)
    counts : int Atomic.t array; (* one per bound, plus overflow *)
    n : int Atomic.t;
    s : float Atomic.t;
    mx : float Atomic.t;
  }

  let make ~lo ~growth ~buckets =
    if not (Float.is_finite lo && lo > 0.0) then
      invalid_arg "Metrics.histogram: lo must be positive";
    if not (Float.is_finite growth && growth > 1.0) then
      invalid_arg "Metrics.histogram: growth must be > 1";
    if buckets < 1 then invalid_arg "Metrics.histogram: buckets must be >= 1";
    {
      bnds = Array.init buckets (fun i -> lo *. (growth ** float_of_int i));
      counts = Array.init (buckets + 1) (fun _ -> Atomic.make 0);
      n = Atomic.make 0;
      s = Atomic.make 0.0;
      mx = Atomic.make neg_infinity;
    }

  (* Index of the bucket covering [v]: the first bound strictly above
     it; the trailing slot catches overflow and NaN. *)
  let bucket_index t v =
    let nb = Array.length t.bnds in
    if v < t.bnds.(0) then 0
    else if not (v < t.bnds.(nb - 1)) then nb
    else begin
      let lo = ref 0 and hi = ref (nb - 1) in
      (* invariant: v >= bnds.(lo), v < bnds.(hi) *)
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if v < t.bnds.(mid) then hi := mid else lo := mid
      done;
      !hi
    end

  let observe t v =
    Atomic.incr t.n;
    if Float.is_finite v then atomic_add_float t.s v;
    atomic_max_float t.mx v;
    Atomic.incr t.counts.(bucket_index t v)

  let count t = Atomic.get t.n

  let sum t = Atomic.get t.s

  let max_observed t = Atomic.get t.mx

  let bounds t = Array.copy t.bnds

  let bucket_counts t = Array.map Atomic.get t.counts

  let percentile t q =
    if not (Float.is_finite q && q >= 0.0 && q <= 1.0) then
      invalid_arg "Metrics.Histogram.percentile: q must be in [0,1]";
    let n = count t in
    if n = 0 then nan
    else begin
      let rank =
        let r = int_of_float (Float.ceil (q *. float_of_int n)) in
        if r < 1 then 1 else if r > n then n else r
      in
      let nb = Array.length t.bnds in
      let rec walk i cum =
        let cum = cum + Atomic.get t.counts.(i) in
        if cum >= rank || i = nb then i else walk (i + 1) cum
      in
      let b = walk 0 0 in
      let mx = max_observed t in
      let upper = if b < nb then t.bnds.(b) else mx in
      Float.min upper mx
    end

  let p50 t = percentile t 0.5

  let p95 t = percentile t 0.95

  let p99 t = percentile t 0.99

  let reset t =
    Array.iter (fun c -> Atomic.set c 0) t.counts;
    Atomic.set t.n 0;
    Atomic.set t.s 0.0;
    Atomic.set t.mx neg_infinity
end

type instrument =
  | C of Counter.t
  | G of Gauge.t
  | H of Histogram.t

(* One registered time series: a family (base) name, an optional sorted
   label set distinguishing it from its siblings, and the instrument. *)
type series = {
  sr_base : string;
  sr_labels : (string * string) list;  (* sorted by label name *)
  sr_help : string option;
  sr_inst : instrument;
}

(* The registry table is guarded by a mutex: registration happens at
   module-init time in practice, but nothing stops a worker domain from
   registering, and reads (export, reset) must not observe a resize. *)
type registry = {
  tbl : (string, series) Hashtbl.t;  (* keyed by the rendered series *)
  lock : Mutex.t;
}

let create_registry () = { tbl = Hashtbl.create 64; lock = Mutex.create () }

let default = create_registry ()

let locked reg f =
  Mutex.lock reg.lock;
  match f () with
  | y ->
    Mutex.unlock reg.lock;
    y
  | exception e ->
    Mutex.unlock reg.lock;
    raise e

let valid_name name =
  name <> ""
  && (match name.[0] with
     | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
     | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
         | _ -> false)
       name

let valid_label_name name =
  name <> ""
  && (match name.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       name

(* Prometheus label-value escaping: backslash, double quote, newline. *)
let escape_label_value s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_labels = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
           labels)
    ^ "}"

let series_name base labels = base ^ render_labels labels

let check_labels name labels =
  let rec dup = function
    | (a, _) :: ((b, _) :: _ as rest) -> if a = b then Some a else dup rest
    | _ -> None
  in
  List.iter
    (fun (k, _) ->
      if not (valid_label_name k) then
        invalid_arg (Printf.sprintf "Metrics: invalid label name %S" k);
      if k = "le" then
        invalid_arg
          (Printf.sprintf "Metrics: label \"le\" on %S is reserved for \
                           histogram buckets" name))
    labels;
  match dup labels with
  | Some k ->
    invalid_arg (Printf.sprintf "Metrics: duplicate label %S on %S" k name)
  | None -> ()

let register reg ?help ?(labels = []) name make_new match_kind =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Metrics: invalid metric name %S" name);
  let labels = List.sort (fun (a, _) (b, _) -> compare a b) labels in
  check_labels name labels;
  let key = series_name name labels in
  locked reg (fun () ->
      match Hashtbl.find_opt reg.tbl key with
      | Some s -> (
        match match_kind s.sr_inst with
        | Some x -> x
        | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %S already registered as a different kind"
               key))
      | None ->
        (* All series of one family must share a kind: one # TYPE line
           describes them all. *)
        Hashtbl.iter
          (fun _ s ->
            if s.sr_base = name && match_kind s.sr_inst = None then
              invalid_arg
                (Printf.sprintf
                   "Metrics: %S already registered as a different kind" name))
          reg.tbl;
        let x, inst = make_new () in
        Hashtbl.replace reg.tbl key
          { sr_base = name; sr_labels = labels; sr_help = help; sr_inst = inst };
        x)

let counter ?help ?labels reg name =
  register reg ?help ?labels name
    (fun () ->
      let c = { Counter.c = Atomic.make 0.0 } in
      (c, C c))
    (function C c -> Some c | G _ | H _ -> None)

let gauge ?help ?labels reg name =
  register reg ?help ?labels name
    (fun () ->
      let g = { Gauge.g = Atomic.make 0.0 } in
      (g, G g))
    (function G g -> Some g | C _ | H _ -> None)

let histogram ?help ?labels ?(lo = 1e-6) ?(growth = 1.189207115002721)
    ?(buckets = 160) reg name =
  register reg ?help ?labels name
    (fun () ->
      let h = Histogram.make ~lo ~growth ~buckets in
      (h, H h))
    (function H h -> Some h | C _ | G _ -> None)

let reset reg =
  locked reg (fun () ->
      Hashtbl.iter
        (fun _ s ->
          match s.sr_inst with
          | C c -> Atomic.set c.Counter.c 0.0
          | G g -> Atomic.set g.Gauge.g 0.0
          | H h -> Histogram.reset h)
        reg.tbl)

(* Sorted by (family, series) so every family's series are contiguous
   — one # HELP/# TYPE header, then its samples in label order.  Keyed
   sorting alone would interleave families ("foo" < "foobar" < "foo{"). *)
let sorted_series reg =
  locked reg (fun () -> Hashtbl.fold (fun key s acc -> (key, s) :: acc) reg.tbl [])
  |> List.sort (fun (ka, a) (kb, b) ->
         match compare a.sr_base b.sr_base with
         | 0 -> compare ka kb
         | c -> c)

let sorted reg =
  List.map (fun (key, s) -> (key, s.sr_help, s.sr_inst)) (sorted_series reg)

let histograms reg =
  List.filter_map
    (fun (name, _, inst) ->
      match inst with H h -> Some (name, h) | C _ | G _ -> None)
    (sorted reg)

let counters reg =
  List.filter_map
    (fun (name, _, inst) ->
      match inst with C c -> Some (name, c) | G _ | H _ -> None)
    (sorted reg)

(* --- Prometheus text exposition ----------------------------------------- *)

let fmt_num v =
  if Float.is_nan v then "NaN"
  else if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let to_prometheus reg =
  let buf = Buffer.create 1024 in
  (* One # HELP/# TYPE header per family, before its first series; the
     series of one family are contiguous in [sorted_series] order. *)
  let last_family = ref None in
  let meta base help kind =
    if !last_family <> Some base then begin
      last_family := Some base;
      (match help with
      | Some h ->
        Buffer.add_string buf
          (Printf.sprintf "# HELP %s %s\n" base
             (String.map (function '\n' -> ' ' | c -> c) h))
      | None -> ());
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" base kind)
    end
  in
  List.iter
    (fun (_, s) ->
      let base = s.sr_base in
      let labels = s.sr_labels in
      let lbl = render_labels labels in
      match s.sr_inst with
      | C c ->
        meta base s.sr_help "counter";
        Buffer.add_string buf
          (Printf.sprintf "%s%s %s\n" base lbl (fmt_num (Counter.value c)))
      | G g ->
        meta base s.sr_help "gauge";
        Buffer.add_string buf
          (Printf.sprintf "%s%s %s\n" base lbl (fmt_num (Gauge.value g)))
      | H h ->
        meta base s.sr_help "histogram";
        (* The le label merges after any series labels. *)
        let bucket_lbl le =
          render_labels (labels @ [ ("le", le) ])
        in
        let bnds = Histogram.bounds h and counts = Histogram.bucket_counts h in
        let cum = ref 0 in
        Array.iteri
          (fun i b ->
            if counts.(i) > 0 then begin
              cum := !cum + counts.(i);
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" base (bucket_lbl (fmt_num b))
                   !cum)
            end)
          bnds;
        Buffer.add_string buf
          (Printf.sprintf "%s_bucket%s %d\n" base (bucket_lbl "+Inf")
             (Histogram.count h));
        Buffer.add_string buf
          (Printf.sprintf "%s_sum%s %s\n" base lbl (fmt_num (Histogram.sum h)));
        Buffer.add_string buf
          (Printf.sprintf "%s_count%s %d\n" base lbl (Histogram.count h)))
    (sorted_series reg);
  Buffer.contents buf

(* --- JSON snapshot ------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_num v =
  if Float.is_finite v then Printf.sprintf "%.12g" v else "null"

let to_json reg =
  let items = sorted reg in
  let buf = Buffer.create 1024 in
  let section label filter =
    Buffer.add_string buf (Printf.sprintf "\"%s\":{" label);
    let first = ref true in
    List.iter
      (fun (name, _, inst) ->
        match filter inst with
        | None -> ()
        | Some body ->
          if not !first then Buffer.add_char buf ',';
          first := false;
          Buffer.add_string buf
            (Printf.sprintf "\"%s\":%s" (json_escape name) body))
      items;
    Buffer.add_char buf '}'
  in
  Buffer.add_char buf '{';
  section "counters" (function
    | C c -> Some (json_num (Counter.value c))
    | G _ | H _ -> None);
  Buffer.add_char buf ',';
  section "gauges" (function
    | G g -> Some (json_num (Gauge.value g))
    | C _ | H _ -> None);
  Buffer.add_char buf ',';
  section "histograms" (function
    | H h ->
      Some
        (Printf.sprintf
           "{\"count\":%d,\"sum\":%s,\"p50\":%s,\"p95\":%s,\"p99\":%s,\"max\":%s}"
           (Histogram.count h)
           (json_num (Histogram.sum h))
           (json_num (Histogram.p50 h))
           (json_num (Histogram.p95 h))
           (json_num (Histogram.p99 h))
           (json_num (Histogram.max_observed h)))
    | C _ | G _ -> None);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
