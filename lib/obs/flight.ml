module Codec = Poc_util.Codec

type kind =
  | Span_open of { name : string }
  | Span_close of { name : string; dur_us : float }
  | Event of { name : string; detail : string }
  | Incident of { incident : string; detail : string }
  | Metric of { name : string; delta : float }

type record = {
  seq : int;
  ts_us : float;
  epoch : int;
  phase : string;
  kind : kind;
}

let version = 1

let magic = "POCFLT"

type t = {
  cap : int;
  slots : string array;  (* framed record bytes; "" = never written *)
  mutable next : int;  (* next slot to overwrite *)
  mutable total : int;  (* records ever emitted *)
  mutable drained : int;  (* [seq] up to which the owner has drained *)
  pending : Buffer.t;  (* frames since the last drain, unless wrapped *)
  mu : Mutex.t;
}

let create ?(capacity = 1024) () =
  if capacity < 1 then invalid_arg "Flight.create: capacity must be >= 1";
  {
    cap = capacity;
    slots = Array.make capacity "";
    next = 0;
    total = 0;
    drained = 0;
    pending = Buffer.create 256;
    mu = Mutex.create ();
  }

let capacity t = t.cap

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* --- record encoding ----------------------------------------------------- *)

let tag_of_kind = function
  | Span_open _ -> 0
  | Span_close _ -> 1
  | Event _ -> 2
  | Incident _ -> 3
  | Metric _ -> 4

let encode_record r =
  let w = Codec.writer () in
  Codec.put_u8 w (tag_of_kind r.kind);
  Codec.put_int w r.seq;
  Codec.put_f64 w r.ts_us;
  Codec.put_int w r.epoch;
  Codec.put_string w r.phase;
  (match r.kind with
  | Span_open { name } -> Codec.put_string w name
  | Span_close { name; dur_us } ->
    Codec.put_string w name;
    Codec.put_f64 w dur_us
  | Event { name; detail } ->
    Codec.put_string w name;
    Codec.put_string w detail
  | Incident { incident; detail } ->
    Codec.put_string w incident;
    Codec.put_string w detail
  | Metric { name; delta } ->
    Codec.put_string w name;
    Codec.put_f64 w delta);
  Codec.frame (Codec.contents w)

let decode_record payload =
  let r = Codec.reader payload in
  let tag = Codec.get_u8 r in
  let seq = Codec.get_int r in
  let ts_us = Codec.get_f64 r in
  let epoch = Codec.get_int r in
  let phase = Codec.get_string r in
  let kind =
    match tag with
    | 0 -> Span_open { name = Codec.get_string r }
    | 1 ->
      let name = Codec.get_string r in
      Span_close { name; dur_us = Codec.get_f64 r }
    | 2 ->
      let name = Codec.get_string r in
      Event { name; detail = Codec.get_string r }
    | 3 ->
      let incident = Codec.get_string r in
      Incident { incident; detail = Codec.get_string r }
    | 4 ->
      let name = Codec.get_string r in
      Metric { name; delta = Codec.get_f64 r }
    | n -> raise (Codec.Corrupt (Printf.sprintf "flight: unknown tag %d" n))
  in
  if not (Codec.at_end r) then
    raise (Codec.Corrupt "flight: trailing bytes in record");
  { seq; ts_us; epoch; phase; kind }

(* --- ring ---------------------------------------------------------------- *)

let emit t ?ts_us ~epoch ~phase kind =
  let ts_us = match ts_us with Some t -> t | None -> Clock.now_us () in
  locked t (fun () ->
      let r = { seq = t.total; ts_us; epoch; phase; kind } in
      let framed = encode_record r in
      t.slots.(t.next) <- framed;
      t.next <- (t.next + 1) mod t.cap;
      t.total <- t.total + 1;
      (* Once the undrained backlog exceeds the capacity an incremental
         append can no longer be assembled from live slots; stop
         buffering and let [drain] report the wrap. *)
      if t.total - t.drained <= t.cap then Buffer.add_string t.pending framed
      else Buffer.clear t.pending)

let seq t = locked t (fun () -> t.total)

let stored t = locked t (fun () -> min t.total t.cap)

let dropped t = locked t (fun () -> max 0 (t.total - t.cap))

let frame_payload framed =
  match Codec.next_frame framed ~pos:0 with
  | Codec.Frame { payload; _ } -> payload
  | Codec.End | Codec.Torn -> raise (Codec.Corrupt "flight: bad slot frame")

let records t =
  locked t (fun () ->
      let n = min t.total t.cap in
      let out = ref [] in
      for i = 1 to n do
        let slot = (t.next + t.cap - i) mod t.cap in
        out := decode_record (frame_payload t.slots.(slot)) :: !out
      done;
      !out)

let pending_bytes t =
  locked t (fun () ->
      if t.total - t.drained > t.cap then 0 else Buffer.length t.pending)

let drain t =
  locked t (fun () ->
      let backlog = t.total - t.drained in
      t.drained <- t.total;
      let bytes = Buffer.contents t.pending in
      Buffer.clear t.pending;
      if backlog = 0 then `Empty
      else if backlog > t.cap then `Wrapped
      else `Append bytes)

(* --- on-disk image ------------------------------------------------------- *)

let header_frame cap =
  let w = Codec.writer () in
  Codec.put_string w magic;
  Codec.put_u32 w version;
  Codec.put_int w cap;
  Codec.frame (Codec.contents w)

let image t =
  locked t (fun () ->
      let buf = Buffer.create 1024 in
      Buffer.add_string buf (header_frame t.cap);
      let n = min t.total t.cap in
      (* oldest -> newest *)
      for i = n downto 1 do
        let slot = (t.next + t.cap - i) mod t.cap in
        Buffer.add_string buf t.slots.(slot)
      done;
      Buffer.contents buf)

type image_data = {
  img_capacity : int;
  img_records : record list;
  img_frames : int;
  img_torn : bool;
}

let decode_header payload =
  let r = Codec.reader payload in
  let m = Codec.get_string r in
  if m <> magic then Error "not a flight image"
  else
    let v = Codec.get_u32 r in
    if v <> version then Error (Printf.sprintf "flight image version %d" v)
    else
      let cap = Codec.get_int r in
      if cap < 1 || not (Codec.at_end r) then Error "bad flight header"
      else Ok cap

let decode_image data =
  match Codec.next_frame data ~pos:0 with
  | Codec.End -> Error "empty flight image"
  | Codec.Torn -> Error "flight image header damaged"
  | Codec.Frame { payload; next } -> (
    match (try decode_header payload with Codec.Corrupt _ -> Error "bad flight header") with
    | Error e -> Error e
    | Ok cap ->
      let recs = ref [] in
      let frames = ref 0 in
      let torn = ref false in
      let pos = ref next in
      let continue = ref true in
      while !continue do
        match Codec.next_frame data ~pos:!pos with
        | Codec.End -> continue := false
        | Codec.Torn ->
          torn := true;
          continue := false
        | Codec.Frame { payload; next } -> (
          match decode_record payload with
          | r ->
            incr frames;
            recs := r :: !recs;
            pos := next
          | exception Codec.Corrupt _ ->
            torn := true;
            continue := false)
      done;
      (* Only the newest [cap] frames are the ring's contents; an
         append-grown image legitimately holds more. *)
      let keep = List.filteri (fun i _ -> i < cap) !recs in
      Ok
        {
          img_capacity = cap;
          img_records = List.rev keep;
          img_frames = !frames;
          img_torn = !torn;
        })

let valid_prefix data =
  match Codec.next_frame data ~pos:0 with
  | Codec.End | Codec.Torn -> 0
  | Codec.Frame { payload; next } -> (
    match (try decode_header payload with Codec.Corrupt _ -> Error "bad") with
    | Error _ -> 0
    | Ok _ ->
      let pos = ref next in
      let continue = ref true in
      while !continue do
        match Codec.next_frame data ~pos:!pos with
        | Codec.End | Codec.Torn -> continue := false
        | Codec.Frame { payload; next } -> (
          match decode_record payload with
          | _ -> pos := next
          | exception Codec.Corrupt _ -> continue := false)
      done;
      !pos)
