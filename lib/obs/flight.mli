(** Black-box flight recorder: a bounded, pre-allocated binary ring of
    the most recent telemetry records.

    Aircraft keep the last minutes of instrument readings in a crash
    box; this module keeps the last [capacity] observability records —
    phase span opens/closes, point events, fault/ladder/violation/crash
    incidents, metric deltas — each encoded up front as one
    [Poc_util.Codec] CRC-framed binary record.  Because every record is
    framed the instant it is emitted, the ring's contents can be
    appended to disk incrementally (at epoch boundaries and on every
    fault path) and the on-disk image stays readable after any crash:
    a torn tail loses at most the frames after the damage, never the
    history before it.

    The recorder is instance-based, not global: the fleet runs many
    scenarios concurrently on pool workers, each with its own box, so
    there is deliberately no process-wide install.  A disabled recorder
    is simply [None] at the owner — the caller's [match] is one branch
    and allocates nothing, preserving the project's zero-allocation
    disabled-path invariant.

    Persistence itself lives one layer up ([Poc_resilience.Black_box]):
    this module only encodes, rings, drains, and decodes — it depends
    on nothing but the codec and the clock, so [lib/obs] stays at the
    bottom of the dependency DAG. *)

type kind =
  | Span_open of { name : string }
      (** a phase/request began; [name] is the span name *)
  | Span_close of { name : string; dur_us : float }
  | Event of { name : string; detail : string }
  | Incident of { incident : string; detail : string }
      (** fault / ladder / violation / crash — the records forensics
          leads with *)
  | Metric of { name : string; delta : float }

type record = {
  seq : int;  (** 0-based emission index, monotonic across wraps *)
  ts_us : float;  (** {!Clock.now_us} at emission *)
  epoch : int;  (** market epoch in flight, [-1] outside any epoch *)
  phase : string;  (** supervisor phase / daemon verb, [""] when none *)
  kind : kind;
}

type t
(** A recorder: pre-allocated slot array of framed records plus the
    pending bytes not yet drained to disk.  All operations are
    mutex-guarded and domain-safe. *)

val create : ?capacity:int -> unit -> t
(** Default capacity 1024 records.  Raises [Invalid_argument] when
    [capacity < 1]. *)

val capacity : t -> int

val emit : t -> ?ts_us:float -> epoch:int -> phase:string -> kind -> unit
(** Append one record, evicting the oldest once full.  [ts_us]
    defaults to {!Clock.now_us}[ ()]; tests pass it explicitly for
    reproducible images. *)

val seq : t -> int
(** Total records ever emitted (the next record's [seq]). *)

val stored : t -> int
(** Records currently retained ([min seq capacity]). *)

val dropped : t -> int
(** Records evicted since creation ([max 0 (seq - capacity)]). *)

val records : t -> record list
(** Retained records, oldest first — exactly the most recent
    {!stored} emissions in emission order. *)

val drain : t -> [ `Empty | `Append of string | `Wrapped ]
(** Hand the owner what changed since the last drain.  [`Empty]:
    nothing new.  [`Append bytes]: the framed records emitted since the
    last drain, ready to append to an existing image file.  [`Wrapped]:
    more than [capacity] records were emitted since the last drain, so
    an incremental append would write frames the ring has already
    evicted — the owner should rewrite {!image} instead.  Either way
    the pending buffer is reset. *)

val pending_bytes : t -> int
(** Bytes an [`Append] drain would currently return (0 after a wrap). *)

val image : t -> string
(** Full on-disk image: one header frame (magic, format version,
    capacity) followed by the retained record frames oldest → newest.
    Appending a subsequent [`Append] drain to this image yields another
    valid image. *)

type image_data = {
  img_capacity : int;  (** capacity stamped in the header *)
  img_records : record list;
      (** the last [img_capacity] decodable records, oldest first *)
  img_frames : int;  (** record frames decoded (≥ [length img_records]) *)
  img_torn : bool;  (** a torn/corrupt suffix was discarded *)
}

val decode_image : string -> (image_data, string) result
(** Decode an image, tolerating a torn tail: a frame cut short by a
    crash, a checksum mismatch, or an undecodable payload ends the scan
    with [img_torn = true] and everything before it is kept.  [Error]
    only when the header frame itself is missing or damaged. *)

val valid_prefix : string -> int
(** Length of the longest prefix of [data] that is a whole, valid
    image prefix (header frame plus zero or more whole record frames);
    [0] when the header is damaged.  The scrubber truncates a damaged
    image here, after which it re-reads byte-identically. *)

val version : int
(** Current image format version. *)
