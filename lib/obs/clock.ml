(* Both cells are read and advanced from pool workers as well as the
   main domain, so they are atomics: [now_us] publishes its clamped
   reading with a CAS loop that only ever moves the watermark forward,
   and [reset_origin] writes the origin before zeroing the watermark so
   a racing reader can observe a stale (small) watermark but never a
   timestamp from the old origin epoch. *)

let origin_us = Atomic.make 0.0

let last_us = Atomic.make 0.0

let raw_us () = Unix.gettimeofday () *. 1e6

let () = Atomic.set origin_us (raw_us ())

let rec advance t =
  let seen = Atomic.get last_us in
  if t <= seen then seen
  else if Atomic.compare_and_set last_us seen t then t
  else advance t

let now_us () = advance (raw_us () -. Atomic.get origin_us)

let origin () = Atomic.get origin_us

let reset_origin () =
  Atomic.set origin_us (raw_us ());
  Atomic.set last_us 0.0
