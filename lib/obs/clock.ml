let origin_us = ref 0.0

let last_us = ref 0.0

let raw_us () = Unix.gettimeofday () *. 1e6

let () =
  origin_us := raw_us ();
  last_us := 0.0

let now_us () =
  let t = raw_us () -. !origin_us in
  if t > !last_us then last_us := t;
  !last_us

let origin () = !origin_us

let reset_origin () =
  origin_us := raw_us ();
  last_us := 0.0
