(** Counters, gauges, and log-bucketed latency histograms.

    Instruments register in a {!registry} by name; registering the same
    name twice returns the existing instrument (so module-level
    instruments in different libraries can share a series).  All
    instruments are always on — an increment is one atomic update — and
    none of them feeds back into simulation state, so metrics can stay
    enabled even in runs whose output is diffed byte-for-byte.

    Every instrument is domain-safe: counters, gauges, and histogram
    observation paths are [Atomic.t]-backed (float updates go through a
    compare-and-set retry loop), and the registry table is
    mutex-guarded, so increments issued concurrently from
    [Poc_util.Pool] worker domains are never lost.  This is exactly
    what lets the parallel auction path keep its work counters — the
    two-domain hammer test in [test/test_obs.ml] pins it.

    Histograms use logarithmic buckets: boundaries [lo * growth^i],
    which give a constant {e relative} error across nine-plus decades
    of latency.  Percentile readout returns the upper bound of the
    bucket holding the requested rank, clamped to the observed range —
    an estimate never below the true value by more than one bucket
    width.

    Export: Prometheus text exposition ({!to_prometheus}) and a JSON
    snapshot ({!to_json}) for bench artifacts. *)

module Counter : sig
  type t

  val inc : t -> unit

  val add : t -> float -> unit
  (** Negative increments are rejected with [Invalid_argument]. *)

  val value : t -> float
end

module Gauge : sig
  type t

  val set : t -> float -> unit

  val add : t -> float -> unit

  val value : t -> float
end

module Histogram : sig
  type t

  val observe : t -> float -> unit
  (** Non-finite observations are counted but land in the overflow
      bucket (negative: underflow). *)

  val count : t -> int

  val sum : t -> float

  val max_observed : t -> float
  (** [neg_infinity] before the first observation. *)

  val bounds : t -> float array
  (** The bucket upper bounds, ascending; bucket [i] covers
      [\[bounds.(i-1), bounds.(i))] with bucket 0 covering everything
      below [bounds.(0)]. *)

  val bucket_counts : t -> int array
  (** Per-bucket (non-cumulative) counts, one per bound, plus a final
      overflow bucket: length is [Array.length (bounds t) + 1]. *)

  val percentile : t -> float -> float
  (** [percentile h q] with [q] in [\[0,1\]]; [nan] when empty. *)

  val p50 : t -> float

  val p95 : t -> float

  val p99 : t -> float
end

type registry

val create_registry : unit -> registry

val default : registry
(** The process-wide registry every built-in instrument lives in. *)

val reset : registry -> unit
(** Zero every instrument (registrations survive); for tests and for
    isolating one run's readings from the previous run's.  Not atomic
    with respect to concurrent observers: quiesce worker domains before
    resetting if exact zeros matter. *)

val counter :
  ?help:string -> ?labels:(string * string) list -> registry -> string ->
  Counter.t

val gauge :
  ?help:string -> ?labels:(string * string) list -> registry -> string ->
  Gauge.t

val histogram :
  ?help:string ->
  ?labels:(string * string) list ->
  ?lo:float ->
  ?growth:float ->
  ?buckets:int ->
  registry ->
  string ->
  Histogram.t
(** Defaults: [lo = 1e-6] (1µs expressed in seconds), [growth =
    2^(1/4)] (≤ 19% relative error), [buckets = 160] (covers to ~10^6
    s).  Requires [lo > 0], [growth > 1], [buckets >= 1].  Re-registering
    an existing histogram ignores the bucket parameters.

    {2 Labels}

    [?labels] registers a {e labeled series} of the family [name]: the
    fleet rollup registers one histogram per matrix cell as
    [poc_fleet_cell_epochs_s{cell="crash..."}].  Labels are sorted by
    name at registration (so the same set in any order names the same
    series), label names must match [[a-zA-Z_][a-zA-Z0-9_]*], and
    ["le"] is reserved for histogram buckets.  All series of one family
    must be the same instrument kind — the exposition emits one
    [# HELP]/[# TYPE] header per family, then every series, label
    values escaped per the Prometheus text format (backslash, double
    quote, newline).  An unlabeled registry's exposition is
    byte-identical to what it was before labels existed. *)

val histograms : registry -> (string * Histogram.t) list
(** All registered histograms, sorted by (family, series); labeled
    series render as [name{label="value"}]. *)

val counters : registry -> (string * Counter.t) list
(** All registered counters, sorted like {!histograms}. *)

val to_prometheus : registry -> string
(** Prometheus text exposition.  Histogram bucket lines are emitted
    only where the cumulative count changes (plus ["+Inf"]), keeping
    160-bucket series readable. *)

val to_json : registry -> string
(** [{"counters":{..},"gauges":{..},"histograms":{name:
    {"count","sum","p50","p95","p99","max"}}}] — the perf-baseline
    artifact shape the bench harness records. *)

val json_escape : string -> string
(** Escape a string for inclusion in a JSON string literal (quotes,
    backslashes, control characters).  Shared by every machine-readable
    report in the tree ({!to_json}, the journal scrub report) so they
    agree on escaping. *)
