(** Leveled library logging, quiet by default.

    Library code must never write to stdout uninvited: experiment
    output is parsed by scripts and diffed byte-for-byte in tests.
    Diagnostics go through this module instead — to stderr, only when
    an application has opted in with {!set_level}.

    Messages are built lazily: [Log.warn (fun () -> ...)] costs one
    branch when the level is off, so call sites can stay in hot
    paths. *)

type level = Error | Warn | Info | Debug

val level_to_string : level -> string

val level_of_string : string -> level option

val set_level : level option -> unit
(** [set_level (Some l)] enables messages at severity [l] and above;
    [set_level None] (the default) silences everything. *)

val level : unit -> level option

val enabled : level -> bool

val error : (unit -> string) -> unit

val warn : (unit -> string) -> unit

val info : (unit -> string) -> unit

val debug : (unit -> string) -> unit
