type level = Error | Warn | Info | Debug

let level_to_string = function
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"
  | Debug -> "debug"

let level_of_string = function
  | "error" -> Some Error
  | "warn" | "warning" -> Some Warn
  | "info" -> Some Info
  | "debug" -> Some Debug
  | _ -> None

let severity = function Error -> 3 | Warn -> 2 | Info -> 1 | Debug -> 0

let current = ref None

let set_level l = current := l

let level () = !current

let enabled l =
  match !current with
  | None -> false
  | Some threshold -> severity l >= severity threshold

let emit l msg =
  if enabled l then
    Printf.eprintf "poc: [%s] %s\n%!" (level_to_string l) (msg ())

let error msg = emit Error msg

let warn msg = emit Warn msg

let info msg = emit Info msg

let debug msg = emit Debug msg
