type value = Str of string | Int of int | Float of float | Bool of bool

type event = {
  ev_name : string;
  ev_ts_us : float;
  ev_attrs : (string * value) list;
}

type record = {
  id : int;
  parent : int;
  depth : int;
  name : string;
  start_us : float;
  end_us : float;
  attrs : (string * value) list;
  events : event list;
}

type sink = { emit : record -> unit; flush : unit -> unit }

type span = int

let null_span = 0

(* A span still being recorded; attrs/events accumulate in reverse. *)
type open_span = {
  o_id : int;
  o_parent : int;
  o_depth : int;
  o_name : string;
  o_start : float;
  mutable o_attrs : (string * value) list;
  mutable o_events : event list;
}

let current_sink = ref None

let stack : open_span list ref = ref []

let next_id = ref 1

let enabled () = match !current_sink with None -> false | Some _ -> true

let emit_record k o ~end_us =
  k.emit
    {
      id = o.o_id;
      parent = o.o_parent;
      depth = o.o_depth;
      name = o.o_name;
      start_us = o.o_start;
      end_us;
      attrs = List.rev o.o_attrs;
      events = List.rev o.o_events;
    }

let finish_all_open () =
  match !current_sink with
  | None -> stack := []
  | Some k ->
    let now = Clock.now_us () in
    List.iter (fun o -> emit_record k o ~end_us:now) !stack;
    stack := []

let flush_sink () =
  match !current_sink with None -> () | Some k -> k.flush ()

let set_sink s =
  finish_all_open ();
  (match !current_sink with Some k -> k.flush () | None -> ());
  current_sink := s;
  next_id := 1;
  stack := [];
  match s with Some _ -> Clock.reset_origin () | None -> ()

let span name =
  match !current_sink with
  | None -> null_span
  | Some _ ->
    let o_parent, o_depth =
      match !stack with [] -> (0, 0) | p :: _ -> (p.o_id, p.o_depth + 1)
    in
    let o_id = !next_id in
    incr next_id;
    stack :=
      {
        o_id;
        o_parent;
        o_depth;
        o_name = name;
        o_start = Clock.now_us ();
        o_attrs = [];
        o_events = [];
      }
      :: !stack;
    o_id

let finish s =
  if s <> null_span then begin
    match !current_sink with
    | None -> ()
    | Some k ->
      if List.exists (fun o -> o.o_id = s) !stack then begin
        let now = Clock.now_us () in
        let rec pop () =
          match !stack with
          | [] -> ()
          | o :: rest ->
            stack := rest;
            emit_record k o ~end_us:now;
            if o.o_id <> s then pop ()
        in
        pop ()
      end
  end

let add_attr s key v =
  if s <> null_span then begin
    match List.find_opt (fun o -> o.o_id = s) !stack with
    | Some o -> o.o_attrs <- (key, v) :: o.o_attrs
    | None -> ()
  end

let event ?attrs name =
  match !stack with
  | [] -> ()
  | o :: _ ->
    o.o_events <-
      {
        ev_name = name;
        ev_ts_us = Clock.now_us ();
        ev_attrs = (match attrs with None -> [] | Some a -> a);
      }
      :: o.o_events

let with_span name f =
  let s = span name in
  Fun.protect ~finally:(fun () -> finish s) f

let open_spans () = List.length !stack

(* --- ring buffer sink --------------------------------------------------- *)

module Ring = struct
  type t = {
    slots : record option array;
    mutable next : int;  (* next write position *)
    mutable stored : int;  (* total spans ever emitted *)
  }

  let create ?(capacity = 4096) () =
    if capacity < 1 then invalid_arg "Trace.Ring.create: capacity must be >= 1";
    { slots = Array.make capacity None; next = 0; stored = 0 }

  let sink t =
    {
      emit =
        (fun r ->
          t.slots.(t.next) <- Some r;
          t.next <- (t.next + 1) mod Array.length t.slots;
          t.stored <- t.stored + 1);
      flush = (fun () -> ());
    }

  let records t =
    let n = Array.length t.slots in
    let out = ref [] in
    for i = 0 to n - 1 do
      match t.slots.((t.next + n - 1 - i) mod n) with
      | Some r -> out := r :: !out
      | None -> ()
    done;
    !out

  let dropped t = max 0 (t.stored - Array.length t.slots)
end

(* --- Chrome trace-event JSON sink --------------------------------------- *)

module Chrome = struct
  type t = { mutable recs : record list }

  let create () = { recs = [] }

  let escape buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\t' -> Buffer.add_string buf "\\t"
        | '\r' -> Buffer.add_string buf "\\r"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  let add_value buf = function
    | Str s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.12g" f)
      else begin
        Buffer.add_char buf '"';
        escape buf (Printf.sprintf "%h" f);
        Buffer.add_char buf '"'
      end
    | Bool b -> Buffer.add_string buf (string_of_bool b)

  let add_args buf extra attrs =
    Buffer.add_string buf "\"args\":{";
    let first = ref true in
    let pair k add_v =
      if not !first then Buffer.add_char buf ',';
      first := false;
      Buffer.add_char buf '"';
      escape buf k;
      Buffer.add_string buf "\":";
      add_v ()
    in
    List.iter (fun (k, v) -> pair k (fun () -> add_value buf v)) extra;
    List.iter (fun (k, v) -> pair k (fun () -> add_value buf v)) attrs;
    Buffer.add_char buf '}'

  (* Parents sort before children: earlier start, and on a tied start
     the smaller depth.  Instant events interleave by timestamp. *)
  let to_json t =
    let spans =
      List.sort
        (fun a b ->
          match compare a.start_us b.start_us with
          | 0 -> compare a.depth b.depth
          | c -> c)
        t.recs
    in
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "{\"traceEvents\":[";
    let first = ref true in
    let sep () =
      if not !first then Buffer.add_string buf ",\n";
      first := false
    in
    List.iter
      (fun r ->
        sep ();
        Buffer.add_string buf "{\"name\":\"";
        escape buf r.name;
        Buffer.add_string buf "\",\"cat\":\"poc\",\"ph\":\"X\",";
        Buffer.add_string buf
          (Printf.sprintf "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":1,"
             r.start_us
             (Float.max 0.0 (r.end_us -. r.start_us)));
        add_args buf
          [ ("span_id", Int r.id); ("parent_id", Int r.parent) ]
          r.attrs;
        Buffer.add_char buf '}';
        List.iter
          (fun ev ->
            sep ();
            Buffer.add_string buf "{\"name\":\"";
            escape buf ev.ev_name;
            Buffer.add_string buf "\",\"cat\":\"poc\",\"ph\":\"i\",";
            Buffer.add_string buf
              (Printf.sprintf "\"ts\":%.3f,\"pid\":1,\"tid\":1,\"s\":\"t\","
                 ev.ev_ts_us);
            add_args buf [ ("span_id", Int r.id) ] ev.ev_attrs;
            Buffer.add_char buf '}')
          r.events)
      spans;
    Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}\n";
    Buffer.contents buf

  let write t path =
    Out_channel.with_open_bin path (fun oc ->
        Out_channel.output_string oc (to_json t))

  let sink ?path t =
    {
      emit = (fun r -> t.recs <- r :: t.recs);
      flush =
        (match path with
        | None -> fun () -> ()
        | Some p -> fun () -> write t p);
    }
end
