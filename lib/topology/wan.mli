(** The POC-facing wide-area substrate: Bandwidth Providers, POC router
    sites, and the pool of offered logical links.

    This reproduces the Figure 2 setup of the paper offline: the paper
    took TopologyZoo, merged networks into 20 BPs, placed POC routers
    where four or more BPs colocate, and obtained 4674 logical links
    between POC routers with BP shares ranging from ~2% to ~12%.  We
    generate a synthetic map with the same structural properties (see
    DESIGN.md for the substitution argument). *)

type owner =
  | Bp of int            (** indexed into {!field:t.bps} *)
  | External_isp of int  (** indexed into {!field:t.external_isps} *)

type logical_link = {
  id : int;            (** dense id; equals the edge id in {!field:t.graph} *)
  owner : owner;
  node_a : int;        (** POC router index (graph node) *)
  node_b : int;
  site_a : int;        (** underlying site ids *)
  site_b : int;
  capacity : float;    (** leasable bandwidth, Gbps *)
  latency_ms : float;
  distance_km : float; (** physical path length *)
  true_cost : float;   (** owner's private monthly cost (USD); for
                           virtual links, the contracted price *)
}

type bp = {
  bp_id : int;
  bp_name : string;
  footprint : int array;      (** site ids where the BP has presence *)
  link_ids : int array;       (** offered logical links *)
  share : float;              (** fraction of all BP logical links *)
  unit_cost_factor : float;   (** BP-specific cost efficiency *)
}

type external_isp = {
  isp_id : int;
  isp_name : string;
  attachments : int array;    (** POC router indices *)
  virtual_link_ids : int array;
}

type t = {
  sites : Site.t array;
  poc_sites : int array;          (** POC router index -> site id *)
  node_of_site : int option array;(** site id -> POC router index *)
  graph : Poc_graph.Graph.t;      (** nodes = POC routers, edges = all
                                      offered links (BP + virtual);
                                      weight = latency, capacity = Gbps *)
  links : logical_link array;     (** indexed by link id *)
  bps : bp array;
  external_isps : external_isp array;
}

type params = {
  n_sites : int;
  extent_km : float;
  n_operators : int;         (** raw operator networks merged into BPs *)
  n_bps : int;
  operator_min_sites : int;
  operator_max_sites : int;
  colocation_threshold : int;(** #BPs present for a site to host a POC router *)
  capacity_tiers : (float * float) array; (** (weight, gbps) physical tiers *)
  lease_fraction : float;    (** leasable share of physical bottleneck *)
  stretch_limit : float;     (** max physical/euclidean distance ratio offered *)
  cost_fixed : float;        (** $/month per link *)
  cost_per_gbps_km : float;  (** $/month per Gbps*km *)
  cost_noise : float;        (** lognormal-ish multiplicative noise amplitude *)
  n_external_isps : int;
  external_attachments : int;(** POC sites per external ISP *)
  external_premium : float;  (** contracted virtual-link price multiplier *)
}

val default_params : params
(** Tuned so that the generated instance matches the paper's scale:
    20 BPs, BP link shares spanning roughly 2%-12%, and on the order
    of 4-5k offered logical links. *)

val scale_params : params
(** The ROADMAP's continent-scale preset: ~100 BPs over ~480 sites
    producing on the order of 10^5 offered logical links — the regime
    docs/SCALING.md and bench E19 exercise ([poc-cli topology
    --scale]).  Generation stays deterministic per seed; expect a few
    seconds and a few hundred MB at this size. *)

val generate : ?params:params -> seed:int -> unit -> t
(** Deterministic generation from a seed.  Guarantees: the offered-link
    graph over POC routers is connected, every BP owns at least one
    link, and every virtual link connects distinct POC routers. *)

val bp_link_ids : t -> int -> int list
(** Link ids owned by a BP. *)

val virtual_link_ids : t -> int list
(** All virtual (external-ISP) link ids. *)

val bps_by_size : t -> int list
(** BP ids sorted by decreasing number of offered links (the paper's
    "five largest BPs" ordering). *)

val total_offered_links : t -> int

val link_owner_name : t -> logical_link -> string

val summary : t -> string
(** Human-readable one-paragraph description (sites, POC routers,
    links, share range). *)
