module Prng = Poc_util.Prng
module Graph = Poc_graph.Graph

type owner = Bp of int | External_isp of int

type logical_link = {
  id : int;
  owner : owner;
  node_a : int;
  node_b : int;
  site_a : int;
  site_b : int;
  capacity : float;
  latency_ms : float;
  distance_km : float;
  true_cost : float;
}

type bp = {
  bp_id : int;
  bp_name : string;
  footprint : int array;
  link_ids : int array;
  share : float;
  unit_cost_factor : float;
}

type external_isp = {
  isp_id : int;
  isp_name : string;
  attachments : int array;
  virtual_link_ids : int array;
}

type t = {
  sites : Site.t array;
  poc_sites : int array;
  node_of_site : int option array;
  graph : Graph.t;
  links : logical_link array;
  bps : bp array;
  external_isps : external_isp array;
}

type params = {
  n_sites : int;
  extent_km : float;
  n_operators : int;
  n_bps : int;
  operator_min_sites : int;
  operator_max_sites : int;
  colocation_threshold : int;
  capacity_tiers : (float * float) array;
  lease_fraction : float;
  stretch_limit : float;
  cost_fixed : float;
  cost_per_gbps_km : float;
  cost_noise : float;
  n_external_isps : int;
  external_attachments : int;
  external_premium : float;
}

let default_params =
  {
    n_sites = 70;
    extent_km = 5000.0;
    n_operators = 32;
    n_bps = 20;
    operator_min_sites = 12;
    operator_max_sites = 30;
    colocation_threshold = 5;
    capacity_tiers = [| (0.35, 100.0); (0.35, 200.0); (0.2, 400.0); (0.1, 800.0) |];
    lease_fraction = 0.5;
    stretch_limit = 1.5;
    cost_fixed = 2_000.0;
    cost_per_gbps_km = 0.45;
    cost_noise = 0.08;
    n_external_isps = 2;
    external_attachments = 8;
    external_premium = 3.0;
  }

let scale_params =
  {
    n_sites = 480;
    extent_km = 9000.0;
    n_operators = 120;
    n_bps = 100;
    operator_min_sites = 40;
    operator_max_sites = 90;
    colocation_threshold = 11;
    capacity_tiers =
      [| (0.35, 100.0); (0.35, 200.0); (0.2, 400.0); (0.1, 800.0) |];
    lease_fraction = 0.5;
    stretch_limit = 1.5;
    cost_fixed = 2_000.0;
    cost_per_gbps_km = 0.45;
    cost_noise = 0.08;
    n_external_isps = 4;
    external_attachments = 24;
    external_premium = 3.0;
  }

(* Speed of light in fiber: roughly 200 km per millisecond. *)
let latency_of_km km = Float.max 0.1 (km /. 200.0)

let fiber_stretch = 1.2 (* fiber routes are longer than great-circle *)

(* Sample an operator footprint: an anchor city (population-weighted)
   plus a size-biased neighborhood around it, with a little long-range
   scatter so large operators become continental. *)
let sample_footprint rng (sites : Site.t array) ~size =
  let n = Array.length sites in
  let size = min size n in
  let anchor =
    (* population-weighted anchor *)
    let target = Prng.float rng in
    let rec walk i acc =
      if i >= n - 1 then i
      else begin
        let acc = acc +. sites.(i).Site.population in
        if acc >= target then i else walk (i + 1) acc
      end
    in
    walk 0 0.0
  in
  let by_proximity =
    Array.init n (fun i -> i)
    |> Array.to_list
    |> List.filter (fun i -> i <> anchor)
    |> List.map (fun i -> (Site.distance sites.(anchor) sites.(i), i))
    |> List.sort compare
    |> List.map snd
    |> Array.of_list
  in
  let chosen = Hashtbl.create size in
  Hashtbl.replace chosen anchor ();
  (* Mostly nearby sites, occasionally a far one. *)
  let cursor = ref 0 in
  while Hashtbl.length chosen < size do
    let candidate =
      if Prng.bernoulli rng 0.85 && !cursor < Array.length by_proximity then begin
        let c = by_proximity.(!cursor) in
        incr cursor;
        c
      end
      else Prng.int rng n
    in
    if not (Hashtbl.mem chosen candidate) then Hashtbl.replace chosen candidate ()
  done;
  Hashtbl.fold (fun site () acc -> site :: acc) chosen []
  |> List.sort compare |> Array.of_list

let generate ?(params = default_params) ~seed () =
  let p = params in
  if p.n_bps <= 0 || p.n_operators < p.n_bps then
    invalid_arg "Wan.generate: need n_operators >= n_bps > 0";
  let rng = Prng.create seed in
  let site_rng = Prng.split rng in
  let op_rng = Prng.split rng in
  let phys_rng = Prng.split rng in
  let cost_rng = Prng.split rng in
  let ext_rng = Prng.split rng in
  let sites = Site.generate site_rng ~count:p.n_sites ~extent_km:p.extent_km in
  (* Operators with heterogeneous sizes; operator o belongs to BP
     (o mod n_bps), so BP 0 tends to aggregate more operators when
     n_operators is not a multiple: combined with size skew this yields
     the paper's 2%-12% share spread. *)
  let op_size _ =
    (* Mild power-law skew toward small operators with a heavy head. *)
    let u = Prng.float op_rng in
    let span = float_of_int (p.operator_max_sites - p.operator_min_sites) in
    p.operator_min_sites + int_of_float ((u ** 1.6) *. span)
  in
  let operator_footprints =
    Array.init p.n_operators (fun o ->
        sample_footprint op_rng sites ~size:(op_size o))
  in
  let bp_sites = Array.make p.n_bps [] in
  Array.iteri
    (fun o fp ->
      let b = o mod p.n_bps in
      bp_sites.(b) <- Array.to_list fp @ bp_sites.(b))
    operator_footprints;
  let bp_footprints =
    Array.map (fun l -> List.sort_uniq compare l |> Array.of_list) bp_sites
  in
  (* POC routers where enough BPs colocate. *)
  let presence = Array.make p.n_sites 0 in
  Array.iter
    (fun fp -> Array.iter (fun s -> presence.(s) <- presence.(s) + 1) fp)
    bp_footprints;
  let poc_sites =
    Array.to_list (Array.init p.n_sites (fun s -> s))
    |> List.filter (fun s -> presence.(s) >= p.colocation_threshold)
    |> Array.of_list
  in
  if Array.length poc_sites < 2 then
    invalid_arg "Wan.generate: fewer than two POC sites; lower the threshold";
  let node_of_site = Array.make p.n_sites None in
  Array.iteri (fun node s -> node_of_site.(s) <- Some node) poc_sites;
  let graph = Graph.create () in
  Graph.add_nodes graph (Array.length poc_sites);
  (* Physical networks and logical-link extraction per BP. *)
  let links = ref [] in
  let link_count = ref 0 in
  let bp_records = ref [] in
  for b = 0 to p.n_bps - 1 do
    (* A BP whose footprint covers fewer than two POC sites leases
       colocation at the nearest ones so it can offer at least one
       logical link. *)
    let footprint =
      let fp = bp_footprints.(b) in
      let poc_count =
        Array.fold_left
          (fun acc s -> if node_of_site.(s) <> None then acc + 1 else acc)
          0 fp
      in
      if poc_count >= 2 then fp
      else begin
        let anchor = sites.(fp.(0)) in
        let extra =
          Array.to_list poc_sites
          |> List.filter (fun s -> not (Array.exists (fun x -> x = s) fp))
          |> List.map (fun s -> (Site.distance anchor sites.(s), s))
          |> List.sort compare
          |> List.filteri (fun i _ -> i < 2 - poc_count)
          |> List.map snd
        in
        Array.of_list (List.sort_uniq compare (Array.to_list fp @ extra))
      end
    in
    let unit_cost_factor = Prng.float_range cost_rng 0.95 1.08 in
    let phys =
      Physical.build phys_rng sites ~footprint ~capacity_tiers:p.capacity_tiers
        ~shortcut_fraction:0.35
    in
    let poc_in_fp =
      Array.to_list footprint
      |> List.filter (fun s -> node_of_site.(s) <> None)
      |> Array.of_list
    in
    let my_links = ref [] in
    let m = Array.length poc_in_fp in
    (* Candidate pairs with physical metrics, then the stretch filter;
       when the filter would leave a BP with nothing, offer its single
       straightest pair anyway. *)
    let candidates = ref [] in
    for i = 0 to m - 1 do
      for j = i + 1 to m - 1 do
        let sa = poc_in_fp.(i) and sb = poc_in_fp.(j) in
        match Physical.path_metrics phys sa sb with
        | None -> ()
        | Some (dist_km, bottleneck) ->
          let euclid = Site.distance sites.(sa) sites.(sb) in
          let stretch = if euclid < 1.0 then 1.0 else dist_km /. euclid in
          candidates := (stretch, sa, sb, dist_km, bottleneck) :: !candidates
      done
    done;
    let candidates = List.rev !candidates in
    let offered =
      match
        List.filter (fun (stretch, _, _, _, _) -> stretch <= p.stretch_limit)
          candidates
      with
      | _ :: _ as kept -> kept
      | [] ->
        (match List.sort compare candidates with
        | best :: _ -> [ best ]
        | [] -> [])
    in
    List.iter
      (fun (_, sa, sb, dist_km, bottleneck) ->
        let capacity =
          Float.max 10.0 (Float.min 400.0 (bottleneck *. p.lease_fraction))
        in
        let distance_km = Float.max 1.0 (dist_km *. fiber_stretch) in
        let noise =
          1.0 +. (p.cost_noise *. ((2.0 *. Prng.float cost_rng) -. 1.0))
        in
        let true_cost =
          (p.cost_fixed +. (p.cost_per_gbps_km *. capacity *. distance_km))
          *. unit_cost_factor *. noise
        in
        let node_a = Option.get node_of_site.(sa) in
        let node_b = Option.get node_of_site.(sb) in
        let latency_ms = latency_of_km distance_km in
        let id = !link_count in
        let edge_id =
          Graph.add_edge graph node_a node_b ~weight:latency_ms ~capacity
        in
        assert (edge_id = id);
        let link =
          { id; owner = Bp b; node_a; node_b; site_a = sa; site_b = sb;
            capacity; latency_ms; distance_km; true_cost }
        in
        links := link :: !links;
        my_links := id :: !my_links;
        incr link_count)
      offered;
    bp_records :=
      (b, footprint, Array.of_list (List.rev !my_links), unit_cost_factor)
      :: !bp_records
  done;
  (* External ISPs: attach at the highest-population POC sites and
     provide contracted virtual links between their attachment points. *)
  let poc_by_population =
    Array.to_list poc_sites
    |> List.mapi (fun node s -> (sites.(s).Site.population, node))
    |> List.sort (fun (a, _) (b, _) -> compare b a)
    |> List.map snd |> Array.of_list
  in
  let external_isps = ref [] in
  for e = 0 to p.n_external_isps - 1 do
    let k = min p.external_attachments (Array.length poc_by_population) in
    (* Overlapping but distinct attachment sets: slide a window and add
       one random site for variety. *)
    let base =
      Array.init k (fun i ->
          poc_by_population.((i + (e * 2)) mod Array.length poc_by_population))
    in
    let attachments = Array.of_list (List.sort_uniq compare (Array.to_list base)) in
    let vlinks = ref [] in
    let m = Array.length attachments in
    for i = 0 to m - 1 do
      for j = i + 1 to m - 1 do
        let na = attachments.(i) and nb = attachments.(j) in
        let sa = poc_sites.(na) and sb = poc_sites.(nb) in
        let euclid = Site.distance sites.(sa) sites.(sb) in
        let distance_km = Float.max 1.0 (euclid *. fiber_stretch *. 1.15) in
        let capacity = 400.0 in
        let true_cost =
          p.external_premium
          *. (p.cost_fixed +. (p.cost_per_gbps_km *. capacity *. distance_km))
        in
        let latency_ms = latency_of_km distance_km *. 1.25 in
        let id = !link_count in
        let edge_id = Graph.add_edge graph na nb ~weight:latency_ms ~capacity in
        assert (edge_id = id);
        let link =
          { id; owner = External_isp e; node_a = na; node_b = nb;
            site_a = sa; site_b = sb; capacity; latency_ms; distance_km;
            true_cost }
        in
        links := link :: !links;
        vlinks := id :: !vlinks;
        incr link_count
      done
    done;
    ignore (Prng.float ext_rng);
    external_isps :=
      { isp_id = e; isp_name = Printf.sprintf "ExtISP-%d" e;
        attachments; virtual_link_ids = Array.of_list (List.rev !vlinks) }
      :: !external_isps
  done;
  (* Thinly-served POC routers (fewer than two offered links) reach the
     fabric through external transit: add virtual links from external
     ISP 0 to their two nearest peers, so the offer pool is 2-connected
     at every router and the per-pair failure constraint is meaningful. *)
  if p.n_external_isps > 0 then begin
    let n_nodes = Array.length poc_sites in
    let extra_vlinks = ref [] in
    for node = 0 to n_nodes - 1 do
      let deficit = 2 - Graph.degree graph node in
      if deficit > 0 then begin
        let here = sites.(poc_sites.(node)) in
        let neighbors_now =
          Graph.neighbors graph node |> List.map fst
          |> List.sort_uniq compare
        in
        let nearest =
          List.init n_nodes Fun.id
          |> List.filter (fun other ->
                 other <> node && not (List.mem other neighbors_now))
          |> List.map (fun other ->
                 (Site.distance here sites.(poc_sites.(other)), other))
          |> List.sort compare
          |> List.filteri (fun i _ -> i < deficit)
          |> List.map snd
        in
        List.iter
          (fun other ->
            let sa = poc_sites.(node) and sb = poc_sites.(other) in
            let euclid = Site.distance sites.(sa) sites.(sb) in
            let distance_km = Float.max 1.0 (euclid *. fiber_stretch *. 1.15) in
            let capacity = 400.0 in
            let true_cost =
              p.external_premium
              *. (p.cost_fixed +. (p.cost_per_gbps_km *. capacity *. distance_km))
            in
            let latency_ms = latency_of_km distance_km *. 1.25 in
            let id = !link_count in
            let edge_id =
              Graph.add_edge graph node other ~weight:latency_ms ~capacity
            in
            assert (edge_id = id);
            let link =
              { id; owner = External_isp 0; node_a = node; node_b = other;
                site_a = sa; site_b = sb; capacity; latency_ms; distance_km;
                true_cost }
            in
            links := link :: !links;
            extra_vlinks := id :: !extra_vlinks;
            incr link_count)
          nearest
      end
    done;
    match !extra_vlinks with
    | [] -> ()
    | extra ->
      external_isps :=
        List.map
          (fun isp ->
            if isp.isp_id = 0 then
              {
                isp with
                virtual_link_ids =
                  Array.append isp.virtual_link_ids
                    (Array.of_list (List.rev extra));
              }
            else isp)
          !external_isps
  end;
  let links = Array.of_list (List.rev !links) in
  let bp_total =
    Array.fold_left
      (fun acc l -> match l.owner with Bp _ -> acc + 1 | External_isp _ -> acc)
      0 links
  in
  let bps =
    List.rev !bp_records
    |> List.map (fun (b, footprint, link_ids, unit_cost_factor) ->
           {
             bp_id = b;
             bp_name = Printf.sprintf "BP-%02d" b;
             footprint;
             link_ids;
             share =
               (if bp_total = 0 then 0.0
                else float_of_int (Array.length link_ids) /. float_of_int bp_total);
             unit_cost_factor;
           })
    |> Array.of_list
  in
  {
    sites;
    poc_sites;
    node_of_site;
    graph;
    links;
    bps = Array.of_list (Array.to_list bps); (* dense copy *)
    external_isps = Array.of_list (List.rev !external_isps);
  }

let bp_link_ids t b =
  if b < 0 || b >= Array.length t.bps then invalid_arg "Wan.bp_link_ids";
  Array.to_list t.bps.(b).link_ids

let virtual_link_ids t =
  Array.to_list t.external_isps
  |> List.concat_map (fun isp -> Array.to_list isp.virtual_link_ids)

let bps_by_size t =
  Array.to_list t.bps
  |> List.sort (fun a b -> compare (Array.length b.link_ids) (Array.length a.link_ids))
  |> List.map (fun bp -> bp.bp_id)

let total_offered_links t = Array.length t.links

let link_owner_name t link =
  match link.owner with
  | Bp b -> t.bps.(b).bp_name
  | External_isp e -> t.external_isps.(e).isp_name

let summary t =
  let bp_links = Array.length t.links - List.length (virtual_link_ids t) in
  let shares = Array.map (fun bp -> bp.share) t.bps in
  let smin = Array.fold_left Float.min infinity shares in
  let smax = Array.fold_left Float.max 0.0 shares in
  Printf.sprintf
    "%d sites, %d POC routers, %d BPs offering %d logical links (shares %.1f%%-%.1f%%), %d external ISPs with %d virtual links"
    (Array.length t.sites) (Array.length t.poc_sites) (Array.length t.bps)
    bp_links (100.0 *. smin) (100.0 *. smax)
    (Array.length t.external_isps)
    (List.length (virtual_link_ids t))
