(** The open bandwidth market over time (Section 3.3's motivation).

    The POC re-runs its auction every leasing epoch.  Between epochs:

    - long-haul costs drift down (the paper cites 24-27% annual lease
      price declines) with per-BP volatility;
    - CSP-backed BPs that overbought capacity may {e recall} leased
      links when they need them internally, and return them later;
    - the traffic matrix grows.

    The simulation reports, per epoch, what the POC spends, the posted
    break-even price, the selection, and supplier concentration — the
    evidence that a leased-line POC tracks falling market prices
    instead of locking in incumbent rates. *)

type bp_strategy =
  | Truthful
  | Markup of float     (** bid = cost × (1 + m) *)
  | Recallable of float (** truthful, but each epoch this fraction of
                            its links is recalled (unavailable) *)

type config = {
  epochs : int;
  cost_trend : float;      (** per-epoch multiplicative drift, e.g. -0.02 *)
  cost_volatility : float; (** per-BP per-epoch lognormal-ish noise *)
  demand_growth : float;   (** per-epoch traffic multiplier, e.g. 1.03 *)
  strategies : (int * bp_strategy) list; (** default Truthful *)
  seed : int;
}

val default_config : config

val validate_config : config -> (unit, string) result
(** Checks every field and reports all offending ones in a single
    message, e.g. ["Epochs: epochs must be positive; demand_growth
    must be positive"]. *)

val describe_config : config -> string
(** One-line, stable rendering of the config, e.g.
    ["epochs=12 seed=1 cost_trend=-0.02 ..."] — the daemon's startup
    banner and [STATUS] output use it. *)

type failure =
  | No_acceptable_selection
      (** the offer pool is non-empty but no acceptable subset exists
          under the plan's rule *)
  | Empty_offer_pool
      (** every offered link was recalled or withdrawn this epoch *)

val failure_name : failure -> string

type epoch_result = {
  epoch : int;
  spend : float;            (** POC monthly spend (payments + contracts) *)
  price_per_gbps : float;   (** spend / traffic volume *)
  selected_links : int;
  recalled_links : int;
  supplier_hhi : float;     (** Herfindahl index over BP payments, in [0,1] *)
  failure : failure option; (** [None] when the auction cleared *)
}

val encode_result : epoch_result -> string
(** One framed, checksummed binary record ([Poc_util.Codec] framing).
    Floats round-trip bit-exactly, including the NaN sentinels of
    failed epochs. *)

val decode_result : string -> (epoch_result, string) result
(** Inverse of {!encode_result}.  [Error] (never an exception) on a
    torn, truncated or checksum-corrupted record, and on trailing
    bytes after the record — one record is exactly one frame. *)

val run :
  ?pool:Poc_util.Pool.t -> Poc_core.Planner.plan -> config -> epoch_result list
(** Replays [config.epochs] auctions over the plan's offer pool with
    evolving costs, recalls and demand.  Uses the plan's acceptability
    rule.  The epoch loop owns no domains itself: the caller creates
    the pool once (e.g. [Poc_util.Pool.with_pool]) and passes it down,
    and every epoch's auction fans out over it.  Results are identical
    with or without a pool. *)

val supplier_hhi : Poc_auction.Vcg.outcome -> float
(** Concentration of the POC's BP payments. *)
