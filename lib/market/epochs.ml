module Prng = Poc_util.Prng
module Vcg = Poc_auction.Vcg
module Bid = Poc_auction.Bid
module Matrix = Poc_traffic.Matrix
module Planner = Poc_core.Planner
module Trace = Poc_obs.Trace
module Metrics = Poc_obs.Metrics
module Clock = Poc_obs.Clock

(* Per-phase wall-clock histograms and epoch counters.  The phase
   series are shared by name with the supervised loop, so "how long
   does an auction take" reads the same whichever loop ran it. *)
let h_epoch =
  Metrics.histogram ~help:"Whole-epoch wall clock (seconds)" Metrics.default
    "poc_epoch_seconds"

let h_drift =
  Metrics.histogram ~help:"Market drift + bid construction phase (seconds)"
    Metrics.default "poc_phase_drift_seconds"

let h_auction =
  Metrics.histogram ~help:"Auction phase wall clock (seconds)" Metrics.default
    "poc_phase_auction_seconds"

let m_epochs =
  Metrics.counter ~help:"Market epochs simulated" Metrics.default
    "poc_market_epochs_total"

let m_auction_failures =
  Metrics.counter ~help:"Epochs whose auction produced no outcome"
    Metrics.default "poc_market_auction_failures_total"

type bp_strategy = Truthful | Markup of float | Recallable of float

type config = {
  epochs : int;
  cost_trend : float;
  cost_volatility : float;
  demand_growth : float;
  strategies : (int * bp_strategy) list;
  seed : int;
}

let default_config =
  {
    epochs = 12;
    cost_trend = -0.02;
    cost_volatility = 0.05;
    demand_growth = 1.02;
    strategies = [];
    seed = 1;
  }

(* Every bad field is reported at once so a caller fixing a config
   does not play whack-a-mole with successive Invalid_argument. *)
let config_problems config =
  let bad = ref [] in
  let check ok msg = if not ok then bad := msg :: !bad in
  check (config.epochs > 0) "epochs must be positive";
  check
    (Float.is_finite config.cost_trend && config.cost_trend > -1.0)
    "cost_trend must be finite and > -1";
  check
    (Float.is_finite config.cost_volatility && config.cost_volatility >= 0.0)
    "cost_volatility must be finite and non-negative";
  check
    (Float.is_finite config.demand_growth && config.demand_growth > 0.0)
    "demand_growth must be positive";
  List.iter
    (fun (bp, strategy) ->
      check (bp >= 0) (Printf.sprintf "strategy for negative BP id %d" bp);
      match strategy with
      | Truthful -> ()
      | Markup m ->
        check
          (Float.is_finite m && m >= 0.0)
          (Printf.sprintf "markup for BP %d must be finite and non-negative" bp)
      | Recallable f ->
        check
          (Float.is_finite f && f >= 0.0 && f <= 1.0)
          (Printf.sprintf "recall fraction for BP %d must be in [0,1]" bp))
    config.strategies;
  List.rev !bad

let validate_config config =
  match config_problems config with
  | [] -> Ok ()
  | problems -> Error ("Epochs: " ^ String.concat "; " problems)

let describe_config config =
  Printf.sprintf
    "epochs=%d seed=%d cost_trend=%g cost_volatility=%g demand_growth=%g \
     strategies=%d"
    config.epochs config.seed config.cost_trend config.cost_volatility
    config.demand_growth
    (List.length config.strategies)

type failure = No_acceptable_selection | Empty_offer_pool

let failure_name = function
  | No_acceptable_selection -> "no acceptable selection"
  | Empty_offer_pool -> "empty offer pool"

type epoch_result = {
  epoch : int;
  spend : float;
  price_per_gbps : float;
  selected_links : int;
  recalled_links : int;
  supplier_hhi : float;
  failure : failure option;
}

module Codec = Poc_util.Codec

let encode_result r =
  let w = Codec.writer () in
  Codec.put_int w r.epoch;
  Codec.put_f64 w r.spend;
  Codec.put_f64 w r.price_per_gbps;
  Codec.put_int w r.selected_links;
  Codec.put_int w r.recalled_links;
  Codec.put_f64 w r.supplier_hhi;
  Codec.put_option w
    (fun w f ->
      Codec.put_u8 w
        (match f with No_acceptable_selection -> 0 | Empty_offer_pool -> 1))
    r.failure;
  Codec.frame (Codec.contents w)

let decode_result s =
  match Codec.next_frame s ~pos:0 with
  | Codec.End | Codec.Torn -> Error "Epochs: torn or truncated result record"
  | Codec.Frame { next; _ } when next <> String.length s ->
    (* One record means one frame: bytes after it are either a framing
       bug or a concatenated stream handed to the wrong decoder. *)
    Error
      (Printf.sprintf "Epochs: %d trailing bytes after the result record"
         (String.length s - next))
  | Codec.Frame { payload; next = _ } -> (
    match
      let r = Codec.reader payload in
      let epoch = Codec.get_int r in
      let spend = Codec.get_f64 r in
      let price_per_gbps = Codec.get_f64 r in
      let selected_links = Codec.get_int r in
      let recalled_links = Codec.get_int r in
      let supplier_hhi = Codec.get_f64 r in
      let failure =
        Codec.get_option r (fun r ->
            match Codec.get_u8 r with
            | 0 -> No_acceptable_selection
            | 1 -> Empty_offer_pool
            | n -> raise (Codec.Corrupt (Printf.sprintf "failure tag %d" n)))
      in
      {
        epoch;
        spend;
        price_per_gbps;
        selected_links;
        recalled_links;
        supplier_hhi;
        failure;
      }
    with
    | r -> Ok r
    | exception Codec.Corrupt msg -> Error ("Epochs: corrupt result: " ^ msg))

let supplier_hhi (outcome : Vcg.outcome) =
  let payments =
    Array.to_list outcome.bp_results
    |> List.map (fun (r : Vcg.bp_result) -> r.payment)
    |> List.filter (fun p -> p > 0.0)
  in
  let total = List.fold_left ( +. ) 0.0 payments in
  if total <= 0.0 then 0.0
  else
    List.fold_left
      (fun acc p ->
        let share = p /. total in
        acc +. (share *. share))
      0.0 payments

let strategy_of config bp =
  match List.assoc_opt bp config.strategies with
  | Some s -> s
  | None -> Truthful

let run ?pool (plan : Planner.plan) config =
  (match validate_config config with
  | Ok () -> ()
  | Error msg -> invalid_arg msg);
  let rng = Prng.create config.seed in
  let base_problem = plan.Planner.problem in
  let n_bps = Array.length base_problem.Vcg.bids in
  (* Per-BP cost level, drifting each epoch. *)
  let cost_level = Array.make n_bps 1.0 in
  let results = ref [] in
  let matrix = ref plan.Planner.matrix in
  for epoch = 1 to config.epochs do
    let ep_sp = Trace.span "epoch" in
    if Trace.enabled () then Trace.add_attr ep_sp "epoch" (Trace.Int epoch);
    let ep_t0 = Clock.now_us () in
    let drift_sp = Trace.span "drift" in
    let drift_t0 = Clock.now_us () in
    (* Drift costs. *)
    for bp = 0 to n_bps - 1 do
      let noise =
        1.0 +. (config.cost_volatility *. ((2.0 *. Prng.float rng) -. 1.0))
      in
      cost_level.(bp) <-
        Float.max 0.05 (cost_level.(bp) *. (1.0 +. config.cost_trend) *. noise)
    done;
    (* Recalls: strategy-driven withdrawal of offered links. *)
    let recalled = Hashtbl.create 64 in
    Array.iteri
      (fun bp bid ->
        match strategy_of config bp with
        | Recallable fraction ->
          List.iter
            (fun id ->
              if Prng.bernoulli rng fraction then Hashtbl.replace recalled id ())
            (Bid.links bid)
        | Truthful | Markup _ -> ())
      base_problem.Vcg.bids;
    (* Epoch bids: cost level times strategy markup. *)
    let bids =
      Array.mapi
        (fun bp bid ->
          let markup =
            match strategy_of config bp with
            | Markup m -> 1.0 +. m
            | Truthful | Recallable _ -> 1.0
          in
          Bid.scale bid (cost_level.(bp) *. markup))
        base_problem.Vcg.bids
    in
    matrix := Matrix.scale !matrix config.demand_growth;
    let problem =
      {
        base_problem with
        Vcg.bids;
        demands = Matrix.undirected_pair_demands !matrix;
      }
    in
    Metrics.Histogram.observe h_drift
      ((Clock.now_us () -. drift_t0) *. 1e-6);
    Trace.finish drift_sp;
    let select ?(banned = fun _ -> false) ?cache p =
      Vcg.select_greedy
        ~banned:(fun id -> banned id || Hashtbl.mem recalled id)
        ?cache ?pool p
    in
    let volume = Matrix.total !matrix in
    let pool_nonempty =
      problem.Vcg.virtual_prices <> []
      || Array.exists
           (fun bid ->
             List.exists (fun id -> not (Hashtbl.mem recalled id)) (Bid.links bid))
           bids
    in
    let fail reason =
      Metrics.Counter.inc m_auction_failures;
      if Trace.enabled () then
        Trace.event "auction_failed"
          ~attrs:[ ("reason", Trace.Str (failure_name reason)) ];
      results :=
        {
          epoch;
          spend = nan;
          price_per_gbps = nan;
          selected_links = 0;
          recalled_links = Hashtbl.length recalled;
          supplier_hhi = nan;
          failure = Some reason;
        }
        :: !results
    in
    let auction_sp = Trace.span "auction" in
    let auction_t0 = Clock.now_us () in
    (if not pool_nonempty then fail Empty_offer_pool
     else begin
       match Vcg.run ~select ?pool problem with
       | None -> fail No_acceptable_selection
       | Some outcome ->
         results :=
           {
             epoch;
             spend = outcome.Vcg.total_payment;
             price_per_gbps =
               (if volume > 0.0 then outcome.Vcg.total_payment /. volume
                else 0.0);
             selected_links = List.length outcome.Vcg.selection.selected;
             recalled_links = Hashtbl.length recalled;
             supplier_hhi = supplier_hhi outcome;
             failure = None;
           }
           :: !results
     end);
    Metrics.Histogram.observe h_auction
      ((Clock.now_us () -. auction_t0) *. 1e-6);
    Trace.finish auction_sp;
    Metrics.Counter.inc m_epochs;
    Metrics.Histogram.observe h_epoch ((Clock.now_us () -. ep_t0) *. 1e-6);
    Trace.finish ep_sp
  done;
  List.rev !results
