(* A chaos month for the POC (fault injection + graceful degradation).

   The paper's operational claim is that a leased-line POC stays
   viable under churn: links fail, CSP-backed BPs recall capacity or
   exit the market, and an epoch's auction can come up infeasible.
   This walkthrough injects exactly that — a BP bankruptcy plus two
   concurrent link failures mid-run, then a one-epoch wave in which
   every BP recalls its whole portfolio — and shows the supervised
   control loop degrade gracefully instead of aborting: the
   degradation ladder keeps some service priced and running, the
   incident log records epochs-to-recovery and the spend penalty, and
   the settlement ledger still nets to zero at the end.

   Run with:  dune exec examples/chaos_month.exe *)

module Planner = Poc_core.Planner
module Settlement = Poc_core.Settlement
module Epochs = Poc_market.Epochs
module Wan = Poc_topology.Wan
module Fault = Poc_resilience.Fault
module Supervisor = Poc_resilience.Supervisor

let () =
  let config =
    Planner.scaled_config ~sites:24 ~bps:6
      { Planner.default_config with Planner.seed = 11 }
  in
  match Planner.build config with
  | Error msg ->
    prerr_endline ("planning failed: " ^ msg);
    exit 1
  | Ok plan ->
    Printf.printf "offer pool: %s\n" (Wan.summary plan.Planner.wan);
    let biggest =
      match Wan.bps_by_size plan.Planner.wan with b :: _ -> b | [] -> 0
    in
    let n_bps = Array.length plan.Planner.wan.Wan.bps in
    let specs =
      [
        (* month 3: the largest BP goes bankrupt while two of its
           competitors' links are down at the same time. *)
        Fault.Bp_bankruptcy { at_epoch = 3; bp = biggest };
        Fault.Link_failure { at_epoch = 3; count = 2; duration = 2 };
        (* month 5: every surviving BP recalls its whole portfolio for
           one epoch — the auction is infeasible and the degradation
           ladder must keep the lights on. *)
      ]
      @ List.init n_bps (fun bp ->
            Fault.Capacity_recall
              { at_epoch = 5; bp; fraction = 1.0; duration = 1 })
    in
    let schedule =
      match Fault.compile plan.Planner.wan ~seed:2020 specs with
      | Ok s -> s
      | Error msg ->
        prerr_endline ("bad fault schedule: " ^ msg);
        exit 1
    in
    let report =
      Supervisor.run plan
        ~market:{ Epochs.default_config with Epochs.epochs = 8; seed = 7 }
        ~schedule
    in
    print_endline "\nservice under chaos:";
    print_string (Supervisor.render_epochs report);
    print_endline "\nincident log:";
    print_string (Supervisor.render_incidents report);
    Printf.printf "\nladder activations: %d\n" report.Supervisor.ladder_activations;
    (match report.Supervisor.violations with
    | [] -> print_endline "invariants: all hold (ledger, price, capacity)"
    | vs ->
      List.iter
        (fun (v : Supervisor.violation) ->
          Printf.printf "INVARIANT VIOLATED at epoch %d: %s (%s)\n"
            v.Supervisor.epoch v.Supervisor.invariant v.Supervisor.detail)
        vs);
    (match report.Supervisor.final_plan with
    | None -> print_endline "no epoch produced an outcome"
    | Some final ->
      let ledger = Settlement.of_plan final () in
      Printf.printf
        "\nclosing ledger: conservation $%.6f (must be 0), posted price \
         $%.2f/Gbps-month\n"
        (Settlement.conservation ledger)
        ledger.Settlement.usage_price)
