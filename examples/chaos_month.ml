(* A chaos month for the POC (fault injection + graceful degradation).

   The paper's operational claim is that a leased-line POC stays
   viable under churn: links fail, CSP-backed BPs recall capacity or
   exit the market, and an epoch's auction can come up infeasible.
   This walkthrough injects exactly that — a BP bankruptcy plus two
   concurrent link failures mid-run, then a one-epoch wave in which
   every BP recalls its whole portfolio — and shows the supervised
   control loop degrade gracefully instead of aborting: the
   degradation ladder keeps some service priced and running, the
   incident log records epochs-to-recovery and the spend penalty, and
   the settlement ledger still nets to zero at the end.

   Run with:  dune exec examples/chaos_month.exe

   Durability flags (the kill-and-resume walkthrough in README.md):

     --journal PATH        write a crash-safe journal of the run
     --segment-bytes N     journal as a segmented store (rotation past N
                           bytes per segment, GC behind the newest
                           checkpoint); default is one append-only file
     --crash EPOCH:PHASE   inject a process crash (phases: pre_auction,
                           pre_settle, post_settle); exits with code 10
     --disk-fault EPOCH:PHASE:KIND[:ARG]
                           power-cut with storage damage: short_write[:DROP],
                           torn_rename, lying_fsync[:DROP],
                           corrupt_byte[:SEED]; exits with code 10
     --resume PATH         recover from a journal and finish the run
                           (store kind is detected automatically; run
                           `poc-cli scrub` first if resume reports
                           unreadable segments)
     --jobs N              worker domains for the auction layer
                           (default 1 = serial; outputs are identical
                           at every value)

   Crash/resume chatter goes to stderr, so the stdout of a resumed run
   is byte-identical to an uninterrupted one — diff them to check.
   The same holds across --jobs values: stdout and the journal are
   byte-identical whether the auctions ran serial or parallel. *)

module Planner = Poc_core.Planner
module Settlement = Poc_core.Settlement
module Epochs = Poc_market.Epochs
module Wan = Poc_topology.Wan
module Fault = Poc_resilience.Fault
module Supervisor = Poc_resilience.Supervisor

let usage () =
  prerr_endline
    "usage: chaos_month [--journal PATH] [--segment-bytes N] [--resume PATH] \
     [--crash EPOCH:PHASE] [--disk-fault EPOCH:PHASE:KIND[:ARG]] [--jobs N]";
  exit 2

let parse_crash spec =
  let bad () =
    Printf.eprintf
      "bad --crash %S: expected EPOCH:PHASE with PHASE one of pre_auction, \
       pre_settle, post_settle\n"
      spec;
    exit 2
  in
  match String.index_opt spec ':' with
  | None -> bad ()
  | Some i -> (
    let epoch = String.sub spec 0 i in
    let phase = String.sub spec (i + 1) (String.length spec - i - 1) in
    match (int_of_string_opt epoch, Fault.phase_of_string phase) with
    | Some at_epoch, Some phase -> Fault.Crash { at_epoch; phase }
    | _ -> bad ())

(* EPOCH:PHASE:KIND[:ARG]; the kind keeps any colons of its own. *)
let parse_disk_fault spec =
  let bad msg =
    Printf.eprintf "bad --disk-fault %S: %s\n" spec msg;
    exit 2
  in
  match String.split_on_char ':' spec with
  | epoch :: phase :: (_ :: _ as rest) -> (
    let kind = String.concat ":" rest in
    match
      ( int_of_string_opt epoch,
        Fault.phase_of_string phase,
        Poc_resilience.Disk.fault_of_string kind )
    with
    | Some at_epoch, Some phase, Ok fault ->
      Fault.Storage { at_epoch; phase; fault }
    | None, _, _ -> bad "EPOCH must be an integer"
    | _, None, _ -> bad "PHASE must be pre_auction, pre_settle or post_settle"
    | _, _, Error msg -> bad msg)
  | _ -> bad "expected EPOCH:PHASE:KIND[:ARG]"

let () =
  let journal = ref None and resume = ref None and crashes = ref [] in
  let jobs = ref 1 and segment_bytes = ref None in
  let rec parse = function
    | [] -> ()
    | "--journal" :: path :: rest ->
      journal := Some path;
      parse rest
    | "--segment-bytes" :: n :: rest -> (
      match int_of_string_opt n with
      | Some n when n > 0 ->
        segment_bytes := Some n;
        parse rest
      | Some _ | None ->
        Printf.eprintf "bad --segment-bytes %S: expected a positive integer\n"
          n;
        exit 2)
    | "--resume" :: path :: rest ->
      resume := Some path;
      parse rest
    | "--crash" :: spec :: rest ->
      crashes := parse_crash spec :: !crashes;
      parse rest
    | "--disk-fault" :: spec :: rest ->
      crashes := parse_disk_fault spec :: !crashes;
      parse rest
    | "--jobs" :: n :: rest -> (
      match int_of_string_opt n with
      | Some n when n >= 1 ->
        jobs := n;
        parse rest
      | Some _ | None ->
        Printf.eprintf "bad --jobs %S: expected a positive integer\n" n;
        exit 2)
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let config =
    Planner.scaled_config ~sites:24 ~bps:6
      { Planner.default_config with Planner.seed = 11 }
  in
  match Planner.build config with
  | Error msg ->
    prerr_endline ("planning failed: " ^ msg);
    exit 1
  | Ok plan ->
    Printf.printf "offer pool: %s\n" (Wan.summary plan.Planner.wan);
    let biggest =
      match Wan.bps_by_size plan.Planner.wan with b :: _ -> b | [] -> 0
    in
    let n_bps = Array.length plan.Planner.wan.Wan.bps in
    let specs =
      [
        (* month 3: the largest BP goes bankrupt while two of its
           competitors' links are down at the same time. *)
        Fault.Bp_bankruptcy { at_epoch = 3; bp = biggest };
        Fault.Link_failure { at_epoch = 3; count = 2; duration = 2 };
        (* month 5: every surviving BP recalls its whole portfolio for
           one epoch — the auction is infeasible and the degradation
           ladder must keep the lights on. *)
      ]
      @ List.init n_bps (fun bp ->
            Fault.Capacity_recall
              { at_epoch = 5; bp; fraction = 1.0; duration = 1 })
      @ List.rev !crashes
    in
    let schedule =
      match Fault.compile plan.Planner.wan ~seed:2020 specs with
      | Ok s -> s
      | Error msg ->
        prerr_endline ("bad fault schedule: " ^ msg);
        exit 1
    in
    let market = { Epochs.default_config with Epochs.epochs = 8; seed = 7 } in
    let report =
      Poc_util.Pool.with_pool ~jobs:!jobs (fun pool ->
          match !resume with
          | Some path -> (
            match
              Supervisor.resume ~journal:path ?pool plan ~market ~schedule
            with
            | Ok r ->
              Printf.eprintf "resumed from %s\n" path;
              r
            | Error msg ->
              Printf.eprintf "resume failed: %s\n" msg;
              exit 1)
          | None -> (
            try
              Supervisor.run ?journal:!journal ?segment_bytes:!segment_bytes
                ?pool plan ~market ~schedule
            with Supervisor.Injected_crash { epoch; phase } ->
              Printf.eprintf
                "injected crash at epoch %d (%s); journal retained for \
                 --resume\n"
                epoch
                (Fault.phase_to_string phase);
              exit 10))
    in
    print_endline "\nservice under chaos:";
    print_string (Supervisor.render_epochs report);
    print_endline "\nincident log:";
    print_string (Supervisor.render_incidents report);
    Printf.printf "\nladder activations: %d\n" report.Supervisor.ladder_activations;
    (match report.Supervisor.violations with
    | [] -> print_endline "invariants: all hold (ledger, price, capacity)"
    | vs ->
      List.iter
        (fun (v : Supervisor.violation) ->
          Printf.printf "INVARIANT VIOLATED at epoch %d: %s (%s)\n"
            v.Supervisor.epoch v.Supervisor.invariant v.Supervisor.detail)
        vs);
    (match report.Supervisor.final_plan with
    | None -> print_endline "no epoch produced an outcome"
    | Some final ->
      let ledger = Settlement.of_plan final () in
      Printf.printf
        "\nclosing ledger: conservation $%.6f (must be 0), posted price \
         $%.2f/Gbps-month\n"
        (Settlement.conservation ledger)
        ledger.Settlement.usage_price)
