(* The open bandwidth market over a year (Section 3.3).

   Long-haul lease prices have been falling ~25% a year, and the large
   CSPs that overbuild their private backbones want to lease the excess
   out — but recall it on demand.  This example replays twelve monthly
   auctions over the same offer pool with drifting costs, one
   CSP-backed provider that recalls links at random, and one provider
   that always marks its bids up 40%.

   Run with:  dune exec examples/bandwidth_market.exe *)

module Planner = Poc_core.Planner
module Epochs = Poc_market.Epochs
module Wan = Poc_topology.Wan

let () =
  let config =
    Planner.scaled_config ~sites:22 ~bps:6
      { Planner.default_config with Planner.seed = 13 }
  in
  match Planner.build config with
  | Error msg ->
    prerr_endline ("planning failed: " ^ msg);
    exit 1
  | Ok plan ->
    Printf.printf "offer pool: %s\n\n" (Wan.summary plan.Planner.wan);
    let biggest =
      match Wan.bps_by_size plan.Planner.wan with b :: _ -> b | [] -> 0
    in
    let results =
      Epochs.run plan
        {
          Epochs.epochs = 8;
          cost_trend = -0.022; (* ~ -24%/year, the paper's trans-Atlantic figure *)
          cost_volatility = 0.06;
          demand_growth = 1.015;
          strategies =
            [ (biggest, Epochs.Recallable 0.25); ((biggest + 1) mod 6, Epochs.Markup 0.4) ];
          seed = 99;
        }
    in
    Printf.printf "%-6s %12s %12s %6s %9s %8s\n" "month" "POC spend $"
      "$/Gbps" "|SL|" "recalled" "HHI";
    List.iter
      (fun (r : Epochs.epoch_result) ->
        match r.Epochs.failure with
        | Some reason ->
          Printf.printf "%-6d auction failed: %s\n" r.Epochs.epoch
            (Epochs.failure_name reason)
        | None ->
          Printf.printf "%-6d %12.0f %12.2f %6d %9d %8.3f\n" r.Epochs.epoch
            r.Epochs.spend r.Epochs.price_per_gbps r.Epochs.selected_links
            r.Epochs.recalled_links r.Epochs.supplier_hhi)
      results;
    let first = List.hd results and last = List.hd (List.rev results) in
    Printf.printf
      "\nthe POC's posted price tracked the falling market: $%.2f -> $%.2f\n\
       per Gbps-month (%+.1f%%) despite demand growing %.0f%% and a large\n\
       supplier yanking a quarter of its links every month.\n"
      first.Epochs.price_per_gbps last.Epochs.price_per_gbps
      (100.0
      *. (last.Epochs.price_per_gbps -. first.Epochs.price_per_gbps)
      /. first.Epochs.price_per_gbps)
      (100.0 *. ((1.015 ** 8.0) -. 1.0))
