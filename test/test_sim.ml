(* Tests for Poc_sim: flow synthesis, fabric behavior, QoS, policy
   injection and neutrality-violation detection. *)

module Fabric = Poc_sim.Fabric
module Detector = Poc_sim.Detector
module Member = Poc_core.Member
module Terms = Poc_core.Terms
module Prng = Poc_util.Prng

let plan () = Lazy.force Fixtures.small_plan

let flows ?(seed = 21) ?(per_pair = 2) () =
  Fabric.synthesize_flows (Prng.create seed) (plan ()) ~flows_per_pair:per_pair

let test_flow_synthesis_conserves_volume () =
  let fs = flows () in
  let total = List.fold_left (fun acc f -> acc +. f.Fabric.gbps) 0.0 fs in
  (* Every demand entry with resolvable endpoints becomes flows; all
     endpoints resolve in the fixture, so totals match the matrix. *)
  Alcotest.(check (float 1e-3)) "volume preserved"
    (Poc_traffic.Matrix.total (plan ()).Poc_core.Planner.matrix)
    total

let test_flows_have_distinct_ids () =
  let fs = flows () in
  let ids = List.map (fun f -> f.Fabric.flow_id) fs in
  Alcotest.(check int) "unique ids" (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_flow_endpoints_are_members () =
  let plan = plan () in
  let member_ids =
    List.map (fun m -> m.Member.id) plan.Poc_core.Planner.members
  in
  List.iter
    (fun f ->
      Alcotest.(check bool) "src known" true (List.mem f.Fabric.src_member member_ids);
      Alcotest.(check bool) "dst known" true (List.mem f.Fabric.dst_member member_ids))
    (flows ())

let test_neutral_run_delivers () =
  let report = Fabric.run (plan ()) Fabric.neutral_config (flows ()) in
  Alcotest.(check bool) "delivers most traffic" true
    (Fabric.delivery_ratio report > 0.95);
  Alcotest.(check bool) "conservation" true
    (report.Fabric.delivered_gbps <= report.Fabric.offered_gbps +. 1e-6)

let test_neutral_run_no_policy_hits () =
  let report = Fabric.run (plan ()) Fabric.neutral_config (flows ()) in
  Array.iter
    (fun (r : Fabric.flow_result) ->
      Alcotest.(check bool) "no policy applied" false r.Fabric.policy_applied)
    report.Fabric.results

let find_busy_pair () =
  (* A (src, dst) member pair that actually exchanges traffic. *)
  let fs = flows () in
  match fs with
  | [] -> Alcotest.fail "no flows"
  | f :: _ -> (f.Fabric.src_member, f.Fabric.dst_member)

let test_throttle_policy_reduces_delivery () =
  let src, dst = find_busy_pair () in
  let config =
    {
      Fabric.policies =
        [ (dst, Fabric.Throttle { app = None; src = Some src; factor = 0.3 }) ];
      premium_boost = 1.0;
    }
  in
  let neutral = Fabric.run (plan ()) Fabric.neutral_config (flows ()) in
  let shaped = Fabric.run (plan ()) config (flows ()) in
  Alcotest.(check bool) "delivery strictly lower" true
    (shaped.Fabric.delivered_gbps < neutral.Fabric.delivered_gbps);
  let hit =
    Array.exists (fun r -> r.Fabric.policy_applied) shaped.Fabric.results
  in
  Alcotest.(check bool) "policy recorded" true hit

let test_block_policy_zeroes_flows () =
  let src, dst = find_busy_pair () in
  let config =
    { Fabric.policies = [ (dst, Fabric.Block_src src) ]; premium_boost = 1.0 }
  in
  let report = Fabric.run (plan ()) config (flows ()) in
  Array.iter
    (fun (r : Fabric.flow_result) ->
      if
        r.Fabric.flow.Fabric.src_member = src
        && r.Fabric.flow.Fabric.dst_member = dst
      then Alcotest.(check (float 1e-9)) "blocked" 0.0 r.Fabric.delivered)
    report.Fabric.results

let test_premium_boost_validation () =
  Alcotest.check_raises "boost < 1"
    (Invalid_argument "Fabric.run: premium boost < 1") (fun () ->
      ignore
        (Fabric.run (plan ())
           { Fabric.policies = []; premium_boost = 0.5 }
           (flows ())))

(* --- Detection ----------------------------------------------------------------- *)

let test_detector_quiet_on_neutral_fabric () =
  let report = Fabric.run (plan ()) Fabric.neutral_config (flows ()) in
  Alcotest.(check int) "no suspicions" 0 (List.length (Detector.detect report))

let test_detector_quiet_under_pure_congestion () =
  (* Scale every flow up until links saturate: delivery drops, but the
     loss is explained by congestion, so the false-positive discount
     path must yield zero suspicions — across several seeds. *)
  List.iter
    (fun seed ->
      let fs =
        flows ~seed ()
        |> List.map (fun f -> { f with Fabric.gbps = f.Fabric.gbps *. 40.0 })
      in
      let report = Fabric.run (plan ()) Fabric.neutral_config fs in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d actually congested" seed)
        true
        (Fabric.delivery_ratio report < 0.999);
      Alcotest.(check int)
        (Printf.sprintf "seed %d: congestion alone raises no suspicion" seed)
        0
        (List.length (Detector.detect report)))
    [ 1; 7; 21; 42; 99 ]

let test_detector_catches_throttling () =
  let src, dst = find_busy_pair () in
  let config =
    {
      Fabric.policies =
        [ (dst, Fabric.Throttle { app = None; src = Some src; factor = 0.2 }) ];
      premium_boost = 1.0;
    }
  in
  let report = Fabric.run (plan ()) config (flows ()) in
  let suspicions = Detector.detect report in
  let caught =
    List.exists
      (fun s ->
        s.Detector.lmp = dst
        &&
        match s.Detector.against with
        | Detector.Src m -> m = src
        | Detector.App _ -> false)
      suspicions
  in
  Alcotest.(check bool) "throttling detected" true caught

let test_detector_audit_produces_violations () =
  let src, dst = find_busy_pair () in
  let config =
    { Fabric.policies = [ (dst, Fabric.Block_src src) ]; premium_boost = 1.0 }
  in
  let report = Fabric.run (plan ()) config (flows ()) in
  let violations = Detector.audit report in
  Alcotest.(check bool) "at least one violation" true (violations <> []);
  List.iter
    (fun ((o : Terms.observation), _reason) ->
      Alcotest.(check int) "attributed to the blocking LMP" dst o.Terms.actor)
    violations

let test_observations_reference_condition_one () =
  let suspicion =
    { Detector.lmp = 3; against = Detector.Src 1; delivery = 0.1; baseline = 1.0 }
  in
  match Detector.to_observations [ suspicion ] with
  | [ o ] ->
    Alcotest.(check (option int)) "condition (i)" (Some 1)
      (Terms.condition_violated o)
  | _ -> Alcotest.fail "one observation expected"


(* --- CDN ------------------------------------------------------------------------- *)

module Cdn = Poc_sim.Cdn

let mk_flow id src dst gbps =
  { Fabric.flow_id = id; src_member = src; dst_member = dst; gbps;
    app = "video"; qos = Fabric.Standard }

let test_cdn_offload_arithmetic () =
  let flows = [ mk_flow 0 1 2 10.0; mk_flow 1 1 3 6.0; mk_flow 2 4 2 5.0 ] in
  let deployments = [ { Cdn.host_lmp = 2; csp = 1; hit_rate = 0.8 } ] in
  let o = Cdn.apply deployments flows in
  Alcotest.(check (float 1e-9)) "offloaded" 8.0 o.Cdn.offloaded_gbps;
  Alcotest.(check (float 1e-9)) "backbone" 13.0 o.Cdn.backbone_gbps;
  Alcotest.(check int) "flows kept" 3 (List.length o.Cdn.served_flows)

let test_cdn_full_hit_drops_flow () =
  let flows = [ mk_flow 0 1 2 10.0 ] in
  let deployments = [ { Cdn.host_lmp = 2; csp = 1; hit_rate = 1.0 } ] in
  let o = Cdn.apply deployments flows in
  Alcotest.(check int) "flow gone" 0 (List.length o.Cdn.served_flows);
  Alcotest.(check (float 1e-9)) "all at the edge" 10.0 o.Cdn.offloaded_gbps

let test_cdn_bad_hit_rate () =
  Alcotest.check_raises "hit rate"
    (Invalid_argument "Cdn.apply: hit rate out of [0,1]") (fun () ->
      ignore (Cdn.apply [ { Cdn.host_lmp = 1; csp = 2; hit_rate = 1.5 } ] []))

let test_cdn_open_hosting_compliant () =
  Alcotest.(check int) "no violations" 0
    (List.length
       (Cdn.judge_policy ~host_lmp:3 ~policy:(Cdn.Open_hosting 500.0)
          ~applicants:[ 1; 2; 4 ]))

let test_cdn_selective_hosting_violates () =
  let violations =
    Cdn.judge_policy ~host_lmp:3
      ~policy:(Cdn.Selective_hosting { allowed = [ 1 ]; fee = 500.0 })
      ~applicants:[ 1; 2; 4 ]
  in
  (* All three per-applicant decisions are selective (condition iii):
     both allowing favorites and denying the rest. *)
  Alcotest.(check int) "three violations" 3 (List.length violations);
  List.iter
    (fun ((o : Terms.observation), _) ->
      Alcotest.(check (option int)) "condition (iii)" (Some 3)
        (Terms.condition_violated o))
    violations


(* --- Multicast --------------------------------------------------------------------- *)

module Multicast = Poc_sim.Multicast

let lmp_members () =
  List.filter (fun m -> m.Member.kind = Member.Lmp) (plan ()).Poc_core.Planner.members

let test_multicast_tree_reaches_receivers () =
  let members = lmp_members () in
  match members with
  | src :: rest when List.length rest >= 3 ->
    let receivers =
      List.filteri (fun i _ -> i < 5) rest |> List.map (fun m -> m.Member.id)
    in
    let tree =
      Multicast.build_tree (plan ())
        { Multicast.source = src.Member.id; receivers; gbps = 2.0 }
    in
    Alcotest.(check int) "all reached"
      (List.length receivers)
      (List.length tree.Multicast.reached);
    Alcotest.(check (list int)) "nothing unreachable" [] tree.Multicast.unreachable;
    Alcotest.(check bool) "tree uses links" true (tree.Multicast.edge_ids <> [])
  | _ -> Alcotest.fail "fixture too small"

let test_multicast_saves_capacity () =
  let members = lmp_members () in
  match members with
  | src :: rest when List.length rest >= 4 ->
    let receivers =
      List.filteri (fun i _ -> i < 6) rest |> List.map (fun m -> m.Member.id)
    in
    let c =
      Multicast.compare_unicast (plan ())
        [ { Multicast.source = src.Member.id; receivers; gbps = 3.0 } ]
    in
    Alcotest.(check bool) "tree never exceeds unicast" true
      (c.Multicast.multicast_link_gbps <= c.Multicast.unicast_link_gbps +. 1e-9);
    Alcotest.(check bool) "savings in [0,1)" true
      (c.Multicast.savings_fraction >= 0.0 && c.Multicast.savings_fraction < 1.0)
  | _ -> Alcotest.fail "fixture too small"

let test_multicast_single_receiver_no_savings () =
  let members = lmp_members () in
  match members with
  | src :: dst :: _ ->
    let c =
      Multicast.compare_unicast (plan ())
        [ { Multicast.source = src.Member.id; receivers = [ dst.Member.id ];
            gbps = 1.0 } ]
    in
    Alcotest.(check (float 1e-9)) "tree = path" 0.0 c.Multicast.savings_fraction
  | _ -> Alcotest.fail "fixture too small"

(* --- Availability ------------------------------------------------------------------- *)

module Availability = Poc_sim.Availability

let test_availability_no_failures_is_one () =
  (* An MTBF far beyond the horizon yields no failure events. *)
  let r =
    Availability.simulate (plan ())
      { Availability.horizon_hours = 10.0; mtbf_hours = 1e9; mttr_hours = 1.0;
        seed = 4 }
  in
  Alcotest.(check (float 1e-9)) "full availability" 1.0 r.Availability.availability;
  Alcotest.(check int) "no events" 0 r.Availability.failure_events

let test_availability_with_failures () =
  let r =
    Availability.simulate (plan ())
      { Availability.horizon_hours = 720.0; mtbf_hours = 2000.0;
        mttr_hours = 12.0; seed = 4 }
  in
  Alcotest.(check bool) "some failures" true (r.Availability.failure_events > 0);
  Alcotest.(check bool) "availability in (0,1]" true
    (r.Availability.availability > 0.0 && r.Availability.availability <= 1.0);
  Alcotest.(check bool) "worst <= availability bound" true
    (r.Availability.worst_fraction <= 1.0);
  (* Samples are chronological. *)
  let rec sorted = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) ->
      a.Availability.time_h <= b.Availability.time_h && sorted rest
  in
  Alcotest.(check bool) "chronological" true (sorted r.Availability.samples)

let test_availability_validates () =
  Alcotest.check_raises "bad config"
    (Invalid_argument "Availability: horizon_hours must be positive") (fun () ->
      ignore
        (Availability.simulate (plan ())
           { Availability.horizon_hours = 0.0; mtbf_hours = 1.0;
             mttr_hours = 1.0; seed = 0 }))

let test_availability_validation_lists_every_problem () =
  match
    Availability.validate_config
      { Availability.horizon_hours = 0.0; mtbf_hours = nan; mttr_hours = -3.0;
        seed = 0 }
  with
  | Ok () -> Alcotest.fail "expected a validation error"
  | Error msg ->
    Alcotest.(check string) "every bad field named"
      "Availability: horizon_hours must be positive; mtbf_hours must be \
       positive; mttr_hours must be positive"
      msg


(* --- Anycast ----------------------------------------------------------------------- *)

module Anycast = Poc_sim.Anycast

let test_anycast_improves_latency () =
  let plan = plan () in
  let members = lmp_members () in
  match members with
  | home_m :: rest when List.length rest >= 6 ->
    let home = home_m.Member.attachment in
    let replicas =
      List.filteri (fun i _ -> i = 2 || i = 4) rest
      |> List.map (fun m -> m.Member.attachment)
    in
    let clients = List.map (fun m -> m.Member.id) rest in
    let r = Anycast.evaluate plan ~home ~replicas ~clients in
    Alcotest.(check (list int)) "everyone reachable" [] r.Anycast.unreachable;
    Alcotest.(check bool) "anycast never slower" true
      (r.Anycast.mean_latency_ms <= r.Anycast.mean_unicast_latency_ms +. 1e-9);
    Alcotest.(check bool) "improvement in [0,1)" true
      (r.Anycast.improvement >= 0.0 && r.Anycast.improvement < 1.0)
  | _ -> Alcotest.fail "fixture too small"

let test_anycast_home_only_equals_unicast () =
  let plan = plan () in
  let members = lmp_members () in
  match members with
  | home_m :: rest when rest <> [] ->
    let home = home_m.Member.attachment in
    let clients = List.map (fun m -> m.Member.id) rest in
    let r = Anycast.evaluate plan ~home ~replicas:[] ~clients in
    Alcotest.(check (float 1e-9)) "no replicas, no improvement" 0.0
      r.Anycast.improvement
  | _ -> Alcotest.fail "fixture too small"

let test_anycast_picks_local_replica () =
  let plan = plan () in
  let members = lmp_members () in
  match members with
  | home_m :: client_m :: _ ->
    (* A replica at the client's own attachment gives zero latency. *)
    let r =
      Anycast.evaluate plan ~home:home_m.Member.attachment
        ~replicas:[ client_m.Member.attachment ]
        ~clients:[ client_m.Member.id ]
    in
    (match r.Anycast.assignments with
    | [ a ] ->
      Alcotest.(check int) "local replica" client_m.Member.attachment
        a.Anycast.replica;
      Alcotest.(check (float 1e-9)) "zero latency" 0.0 a.Anycast.latency_ms
    | _ -> Alcotest.fail "one assignment expected")
  | _ -> Alcotest.fail "fixture too small"

let test_anycast_validation () =
  Alcotest.check_raises "unknown node" (Invalid_argument "Anycast: unknown node")
    (fun () ->
      ignore
        (Anycast.evaluate (plan ()) ~home:(-1) ~replicas:[] ~clients:[]))

let qcheck_delivery_never_exceeds_offer =
  QCheck.Test.make ~name:"delivered <= offered for any seed" ~count:10
    QCheck.(int_range 0 1000)
    (fun seed ->
      let fs =
        Fabric.synthesize_flows (Prng.create seed) (plan ()) ~flows_per_pair:1
      in
      let report = Fabric.run (plan ()) Fabric.neutral_config fs in
      report.Fabric.delivered_gbps <= report.Fabric.offered_gbps +. 1e-6)

let suite =
  [
    Alcotest.test_case "flow synthesis conserves volume" `Quick
      test_flow_synthesis_conserves_volume;
    Alcotest.test_case "flow ids distinct" `Quick test_flows_have_distinct_ids;
    Alcotest.test_case "flow endpoints are members" `Quick
      test_flow_endpoints_are_members;
    Alcotest.test_case "neutral run delivers" `Quick test_neutral_run_delivers;
    Alcotest.test_case "neutral run, no policy hits" `Quick
      test_neutral_run_no_policy_hits;
    Alcotest.test_case "throttle reduces delivery" `Quick
      test_throttle_policy_reduces_delivery;
    Alcotest.test_case "block zeroes flows" `Quick test_block_policy_zeroes_flows;
    Alcotest.test_case "premium boost validation" `Quick test_premium_boost_validation;
    Alcotest.test_case "detector quiet when neutral" `Quick
      test_detector_quiet_on_neutral_fabric;
    Alcotest.test_case "detector quiet under pure congestion" `Quick
      test_detector_quiet_under_pure_congestion;
    Alcotest.test_case "availability validation lists every problem" `Quick
      test_availability_validation_lists_every_problem;
    Alcotest.test_case "detector catches throttling" `Quick
      test_detector_catches_throttling;
    Alcotest.test_case "audit produces violations" `Quick
      test_detector_audit_produces_violations;
    Alcotest.test_case "observations map to condition (i)" `Quick
      test_observations_reference_condition_one;
    Alcotest.test_case "cdn offload arithmetic" `Quick test_cdn_offload_arithmetic;
    Alcotest.test_case "cdn full hit drops flow" `Quick test_cdn_full_hit_drops_flow;
    Alcotest.test_case "cdn bad hit rate" `Quick test_cdn_bad_hit_rate;
    Alcotest.test_case "cdn open hosting compliant" `Quick
      test_cdn_open_hosting_compliant;
    Alcotest.test_case "cdn selective hosting violates" `Quick
      test_cdn_selective_hosting_violates;
    Alcotest.test_case "multicast tree reaches receivers" `Quick
      test_multicast_tree_reaches_receivers;
    Alcotest.test_case "multicast saves capacity" `Quick test_multicast_saves_capacity;
    Alcotest.test_case "multicast single receiver" `Quick
      test_multicast_single_receiver_no_savings;
    Alcotest.test_case "availability without failures" `Quick
      test_availability_no_failures_is_one;
    Alcotest.test_case "availability with failures" `Quick
      test_availability_with_failures;
    Alcotest.test_case "availability validates" `Quick test_availability_validates;
    Alcotest.test_case "anycast improves latency" `Quick test_anycast_improves_latency;
    Alcotest.test_case "anycast home-only baseline" `Quick
      test_anycast_home_only_equals_unicast;
    Alcotest.test_case "anycast picks local replica" `Quick
      test_anycast_picks_local_replica;
    Alcotest.test_case "anycast validation" `Quick test_anycast_validation;
    QCheck_alcotest.to_alcotest qcheck_delivery_never_exceeds_offer;
  ]
