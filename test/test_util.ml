(* Unit and property tests for Poc_util: PRNG, statistics, numerics,
   table rendering. *)

module Prng = Poc_util.Prng
module Stats = Poc_util.Stats
module Numeric = Poc_util.Numeric
module Table = Poc_util.Table

let check_float = Alcotest.(check (float 1e-9))

let check_close msg tolerance expected actual =
  Alcotest.(check (float tolerance)) msg expected actual

(* --- PRNG --------------------------------------------------------------- *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.int64 a) (Prng.int64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Prng.int64 a <> Prng.int64 b then differs := true
  done;
  Alcotest.(check bool) "streams differ" true !differs

let test_prng_split_decorrelated () =
  let a = Prng.create 7 in
  let b = Prng.split a in
  let equal = ref 0 in
  for _ = 1 to 50 do
    if Prng.int64 a = Prng.int64 b then incr equal
  done;
  Alcotest.(check int) "no collisions" 0 !equal

let test_prng_float_range () =
  let rng = Prng.create 3 in
  for _ = 1 to 1000 do
    let x = Prng.float rng in
    Alcotest.(check bool) "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let test_prng_int_bounds () =
  let rng = Prng.create 4 in
  for _ = 1 to 1000 do
    let x = Prng.int rng 7 in
    Alcotest.(check bool) "in [0,7)" true (x >= 0 && x < 7)
  done;
  Alcotest.check_raises "zero bound rejected"
    (Invalid_argument "Prng.int: bound must be positive") (fun () ->
      ignore (Prng.int rng 0))

let test_prng_int_uniformity () =
  let rng = Prng.create 5 in
  let counts = Array.make 4 0 in
  let n = 40_000 in
  for _ = 1 to n do
    let x = Prng.int rng 4 in
    counts.(x) <- counts.(x) + 1
  done;
  Array.iter
    (fun c ->
      let frac = float_of_int c /. float_of_int n in
      check_close "roughly uniform" 0.02 0.25 frac)
    counts

let test_prng_mean_of_float () =
  let rng = Prng.create 6 in
  let n = 50_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Prng.float rng
  done;
  check_close "mean ~ 0.5" 0.01 0.5 (!acc /. float_of_int n)

let test_prng_exponential_mean () =
  let rng = Prng.create 8 in
  let n = 50_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Prng.exponential rng 2.0
  done;
  check_close "mean ~ 1/rate" 0.02 0.5 (!acc /. float_of_int n)

let test_prng_shuffle_is_permutation () =
  let rng = Prng.create 9 in
  let arr = Array.init 50 Fun.id in
  Prng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 Fun.id) sorted

let test_sample_without_replacement () =
  let rng = Prng.create 10 in
  let arr = Array.init 20 Fun.id in
  let sample = Prng.sample_without_replacement rng 8 arr in
  Alcotest.(check int) "size" 8 (Array.length sample);
  let distinct = List.sort_uniq compare (Array.to_list sample) in
  Alcotest.(check int) "distinct" 8 (List.length distinct)

let test_pick_empty_rejected () =
  let rng = Prng.create 11 in
  Alcotest.check_raises "empty pick"
    (Invalid_argument "Prng.pick: empty array") (fun () ->
      ignore (Prng.pick rng [||]))

(* --- Stats -------------------------------------------------------------- *)

let test_stats_mean_variance () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "mean" 2.5 (Stats.mean xs);
  check_float "variance" 1.25 (Stats.variance xs);
  check_float "empty mean" 0.0 (Stats.mean [||])

let test_stats_percentile () =
  let xs = [| 4.0; 1.0; 3.0; 2.0 |] in
  check_float "p0 = min" 1.0 (Stats.percentile xs 0.0);
  check_float "p100 = max" 4.0 (Stats.percentile xs 1.0);
  check_float "median interpolates" 2.5 (Stats.percentile xs 0.5)

let test_stats_summary () =
  let xs = Array.init 101 (fun i -> float_of_int i) in
  let s = Stats.summarize xs in
  Alcotest.(check int) "count" 101 s.Stats.count;
  check_float "mean" 50.0 s.Stats.mean;
  check_float "p50" 50.0 s.Stats.p50;
  check_float "p90" 90.0 s.Stats.p90;
  check_float "min" 0.0 s.Stats.min;
  check_float "max" 100.0 s.Stats.max

let test_stats_weighted_mean () =
  check_float "weighted" 3.0
    (Stats.weighted_mean [| (1.0, 1.0); (1.0, 5.0) |]);
  check_float "zero weight" 0.0 (Stats.weighted_mean [| (0.0, 10.0) |])

let test_stats_histogram () =
  let xs = [| 0.0; 0.1; 0.9; 1.0 |] in
  let h = Stats.histogram ~bins:2 xs in
  Alcotest.(check int) "bins" 2 (Array.length h);
  let total = Array.fold_left (fun acc (_, c) -> acc + c) 0 h in
  Alcotest.(check int) "counts sum" 4 total

(* --- Numeric ------------------------------------------------------------ *)

let test_maximize_parabola () =
  let f x = -.((x -. 3.0) ** 2.0) in
  let x = Numeric.maximize_unimodal ~lo:0.0 ~hi:10.0 f in
  check_close "argmax" 1e-6 3.0 x

let test_maximize_at_boundary () =
  let f x = x in
  let x = Numeric.maximize_unimodal ~lo:0.0 ~hi:1.0 f in
  check_close "argmax at hi" 1e-6 1.0 x

let test_bisect_root () =
  match Numeric.bisect ~lo:0.0 ~hi:4.0 (fun x -> (x *. x) -. 2.0) with
  | Some root -> check_close "sqrt 2" 1e-8 (sqrt 2.0) root
  | None -> Alcotest.fail "root not found"

let test_bisect_no_sign_change () =
  Alcotest.(check bool) "none" true
    (Numeric.bisect ~lo:0.0 ~hi:1.0 (fun _ -> 1.0) = None)

let test_fixed_point_converges () =
  match Numeric.fixed_point ~init:1.0 (fun x -> cos x) with
  | Some (x, _) -> check_close "dottie number" 1e-7 0.7390851332 x
  | None -> Alcotest.fail "did not converge"

let test_fixed_point_divergence_guard () =
  (* x -> 2x + 1 has fixed point -1 but iteration from 1 diverges with
     damping 1.0. *)
  Alcotest.(check bool) "reported failure or converged" true
    (match Numeric.fixed_point ~damping:1.0 ~max_iter:50 ~init:1.0
             (fun x -> (2.0 *. x) +. 1.0) with
    | None -> true
    | Some _ -> false)

let test_integrate_polynomial () =
  let v = Numeric.integrate ~lo:0.0 ~hi:1.0 (fun x -> x *. x) in
  check_close "x^2 integral" 1e-8 (1.0 /. 3.0) v

let test_derivative () =
  let d = Numeric.derivative (fun x -> x ** 3.0) 2.0 in
  check_close "3x^2 at 2" 1e-4 12.0 d

(* --- Table -------------------------------------------------------------- *)

let test_table_render () =
  let s = Table.render ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333"; "4" ] ] in
  Alcotest.(check bool) "has separator" true
    (String.length s > 0 && String.contains s '-');
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "4 lines + trailing" 5 (List.length lines)

let test_table_pads_short_rows () =
  let s = Table.render ~header:[ "a"; "b"; "c" ] [ [ "1" ] ] in
  Alcotest.(check bool) "renders" true (String.length s > 0)

let test_fmt_float () =
  Alcotest.(check string) "default decimals" "1.2346" (Table.fmt_float 1.23456789);
  Alcotest.(check string) "2 decimals" "1.23" (Table.fmt_float ~decimals:2 1.23456789)

(* --- QCheck properties --------------------------------------------------- *)

let qcheck_percentile_bounds =
  QCheck.Test.make ~name:"percentile stays within sample bounds" ~count:200
    QCheck.(pair (list_of_size Gen.(int_range 1 40) (float_range (-100.) 100.)) (float_range 0.0 1.0))
    (fun (xs, q) ->
      let arr = Array.of_list xs in
      let p = Stats.percentile arr q in
      let mn = Array.fold_left Float.min arr.(0) arr in
      let mx = Array.fold_left Float.max arr.(0) arr in
      p >= mn -. 1e-9 && p <= mx +. 1e-9)

let qcheck_variance_nonneg =
  QCheck.Test.make ~name:"variance is non-negative" ~count:200
    QCheck.(list (float_range (-1000.) 1000.))
    (fun xs -> Stats.variance (Array.of_list xs) >= 0.0)

let qcheck_int_range_inclusive =
  QCheck.Test.make ~name:"int_range hits inclusive bounds" ~count:100
    QCheck.(pair small_int small_int)
    (fun (a, b) ->
      let lo = min a b and hi = max a b in
      let rng = Prng.create (a + (b * 1000) + 17) in
      let x = Prng.int_range rng lo hi in
      x >= lo && x <= hi)

(* --- Codec ------------------------------------------------------------- *)

module Codec = Poc_util.Codec

let test_codec_roundtrip () =
  let w = Codec.writer () in
  Codec.put_u8 w 0xAB;
  Codec.put_u32 w 0xDEADBEEF;
  Codec.put_i64 w (-1L);
  Codec.put_int w min_int;
  Codec.put_int w max_int;
  Codec.put_f64 w 3.14159;
  Codec.put_f64 w Float.nan;
  Codec.put_f64 w Float.neg_infinity;
  Codec.put_f64 w (-0.0);
  Codec.put_bool w true;
  Codec.put_string w "hello \x00 world";
  Codec.put_list w Codec.put_int [ 1; 2; 3 ];
  Codec.put_option w Codec.put_f64 (Some 2.5);
  Codec.put_option w Codec.put_f64 None;
  Codec.put_f64_array w [| 0.1; 0.2; Float.nan |];
  let r = Codec.reader (Codec.contents w) in
  Alcotest.(check int) "u8" 0xAB (Codec.get_u8 r);
  Alcotest.(check int) "u32" 0xDEADBEEF (Codec.get_u32 r);
  Alcotest.(check int64) "i64" (-1L) (Codec.get_i64 r);
  Alcotest.(check int) "min_int" min_int (Codec.get_int r);
  Alcotest.(check int) "max_int" max_int (Codec.get_int r);
  check_float "f64" 3.14159 (Codec.get_f64 r);
  Alcotest.(check bool) "NaN survives bit-exactly" true
    (Int64.equal (Int64.bits_of_float Float.nan)
       (Int64.bits_of_float (Codec.get_f64 r)));
  Alcotest.(check bool) "-inf" true (Codec.get_f64 r = Float.neg_infinity);
  Alcotest.(check bool) "-0.0 keeps its sign" true
    (Int64.equal (Int64.bits_of_float (-0.0))
       (Int64.bits_of_float (Codec.get_f64 r)));
  Alcotest.(check bool) "bool" true (Codec.get_bool r);
  Alcotest.(check string) "string with NUL" "hello \x00 world"
    (Codec.get_string r);
  Alcotest.(check (list int)) "list" [ 1; 2; 3 ] (Codec.get_list r Codec.get_int);
  Alcotest.(check bool) "some" true (Codec.get_option r Codec.get_f64 = Some 2.5);
  Alcotest.(check bool) "none" true (Codec.get_option r Codec.get_f64 = None);
  let arr = Codec.get_f64_array r in
  Alcotest.(check int) "array length" 3 (Array.length arr);
  Alcotest.(check bool) "array NaN" true (Float.is_nan arr.(2));
  Alcotest.(check bool) "reader drained" true (Codec.at_end r)

let test_codec_short_read_raises () =
  let r = Codec.reader "\x01\x02" in
  match Codec.get_u32 r with
  | _ -> Alcotest.fail "short read must raise"
  | exception Codec.Corrupt _ -> ()

let test_codec_crc32_vector () =
  (* The standard IEEE 802.3 check value. *)
  Alcotest.(check int) "crc32(123456789)" 0xCBF43926 (Codec.crc32 "123456789");
  Alcotest.(check int) "crc32 of empty" 0 (Codec.crc32 "")

let test_codec_frames () =
  let a = Codec.frame "first" and b = Codec.frame "second" in
  let data = a ^ b in
  (match Codec.next_frame data ~pos:0 with
  | Codec.Frame { payload; next } ->
    Alcotest.(check string) "first frame" "first" payload;
    (match Codec.next_frame data ~pos:next with
    | Codec.Frame { payload; next } ->
      Alcotest.(check string) "second frame" "second" payload;
      Alcotest.(check bool) "clean end" true
        (Codec.next_frame data ~pos:next = Codec.End)
    | Codec.End | Codec.Torn -> Alcotest.fail "second frame unreadable")
  | Codec.End | Codec.Torn -> Alcotest.fail "first frame unreadable");
  (* cut mid-payload: torn, not an exception *)
  (match Codec.next_frame (String.sub a 0 (String.length a - 2)) ~pos:0 with
  | Codec.Torn -> ()
  | Codec.Frame _ | Codec.End -> Alcotest.fail "truncated frame must be torn");
  (* cut mid-header *)
  (match Codec.next_frame (String.sub a 0 3) ~pos:0 with
  | Codec.Torn -> ()
  | Codec.Frame _ | Codec.End -> Alcotest.fail "short header must be torn");
  (* flip a payload byte: checksum mismatch *)
  let corrupt = Bytes.of_string a in
  Bytes.set corrupt (Bytes.length corrupt - 1) 'X';
  match Codec.next_frame (Bytes.to_string corrupt) ~pos:0 with
  | Codec.Torn -> ()
  | Codec.Frame _ | Codec.End -> Alcotest.fail "bad checksum must be torn"

let qcheck_codec_frame_roundtrip =
  QCheck.Test.make ~name:"framing round-trips arbitrary payloads" ~count:100
    QCheck.(string_of_size (Gen.int_range 0 200))
    (fun payload ->
      match Codec.next_frame (Codec.frame payload) ~pos:0 with
      | Codec.Frame { payload = p; next } ->
        p = payload && next = 8 + String.length payload
      | Codec.End | Codec.Torn -> false)

(* Decode a byte string as the journal does: complete frames until End
   or Torn.  Returns the payloads and whether the tail was torn. *)
let decode_all data =
  let rec go pos acc =
    match Codec.next_frame data ~pos with
    | Codec.Frame { payload; next } -> go next (payload :: acc)
    | Codec.End -> (List.rev acc, false)
    | Codec.Torn -> (List.rev acc, true)
  in
  go 0 []

let qcheck_codec_truncation_safe =
  (* The property the whole durability story leans on: cutting a frame
     stream at ANY byte offset yields exactly the records whose frames
     are fully inside the prefix — never an exception, never a phantom
     record, never a reordering. *)
  QCheck.Test.make ~name:"truncation at every offset is safe" ~count:60
    QCheck.(list_of_size (Gen.int_range 0 8) (string_of_size (Gen.int_range 0 40)))
    (fun payloads ->
      let data = String.concat "" (List.map Codec.frame payloads) in
      let ok = ref true in
      for cut = 0 to String.length data do
        let prefix = String.sub data 0 cut in
        match decode_all prefix with
        | decoded, torn ->
          (* Every decoded record must be a prefix of the original
             sequence, in order... *)
          let n = List.length decoded in
          if n > List.length payloads then ok := false
          else if decoded <> List.filteri (fun i _ -> i < n) payloads then
            ok := false
          else begin
            (* ...and the split must be exact: a clean End only at a
               frame boundary, Torn everywhere else. *)
            let boundary =
              List.fold_left (fun acc p -> acc + 8 + String.length p) 0
                (List.filteri (fun i _ -> i < n) payloads)
            in
            if torn then begin
              if cut = boundary then ok := false
            end
            else if cut <> boundary then ok := false
          end
        | exception _ -> ok := false
      done;
      !ok)

let test_codec_resync () =
  (* A run of zero bytes parses as valid empty frames (crc32 "" = 0);
     resync must skip them and land on the first real record. *)
  let real = Codec.frame "payload" in
  let data = String.make 16 '\x00' ^ real in
  (match Codec.resync data ~pos:0 with
  | Some p -> (
    Alcotest.(check int) "lands on the real frame" 16 p;
    match Codec.next_frame data ~pos:p with
    | Codec.Frame { payload; _ } ->
      Alcotest.(check string) "payload intact" "payload" payload
    | Codec.End | Codec.Torn -> Alcotest.fail "resync target unreadable")
  | None -> Alcotest.fail "resync must find the embedded frame");
  (* Corrupt interior: garbage then a real frame. *)
  let data = "GARBAGE!" ^ real in
  (match Codec.resync data ~pos:0 with
  | Some 8 -> ()
  | Some p -> Alcotest.failf "expected offset 8, got %d" p
  | None -> Alcotest.fail "resync must skip garbage");
  (* Nothing to find. *)
  Alcotest.(check bool) "no frame gives None" true
    (Codec.resync "no frames here, just text" ~pos:0 = None)

let test_prng_state_roundtrip () =
  (* Persisting the cursor and restoring it must continue the same
     stream — the property journal snapshots rely on. *)
  let a = Prng.create 99 in
  for _ = 1 to 57 do
    ignore (Prng.int64 a)
  done;
  let saved = Prng.state a in
  let rest = List.init 50 (fun _ -> Prng.int64 a) in
  let b = Prng.of_state saved in
  let replayed = List.init 50 (fun _ -> Prng.int64 b) in
  Alcotest.(check bool) "stream continues identically" true (rest = replayed)

(* --- Pool: fixed-size domain pool -------------------------------------- *)

module Pool = Poc_util.Pool

let test_pool_map_ordered () =
  let xs = Array.init 100 Fun.id in
  Pool.with_pool ~jobs:3 (fun pool ->
      let pool = Option.get pool in
      let out = Pool.map pool (fun x -> x * x) xs in
      Alcotest.(check bool)
        "map equals Array.map" true
        (out = Array.map (fun x -> x * x) xs))

let test_pool_reuse () =
  (* One pool, many jobs: workers are reused, results stay ordered. *)
  Pool.with_pool ~jobs:2 (fun pool ->
      let pool = Option.get pool in
      for round = 1 to 20 do
        let xs = Array.init (round * 7) (fun i -> i + round) in
        let out = Pool.map pool (fun x -> x * 2) xs in
        if out <> Array.map (fun x -> x * 2) xs then
          Alcotest.failf "round %d diverged" round
      done)

let test_pool_inline_when_small () =
  (* jobs <= 1 yields None (serial semantics), and a size-0 pool runs
     inline with no domains. *)
  Pool.with_pool ~jobs:1 (fun pool ->
      Alcotest.(check bool) "jobs=1 gives no pool" true (pool = None));
  let p = Pool.create 0 in
  Alcotest.(check int) "size 0" 0 (Pool.size p);
  let out = Pool.map p string_of_int [| 1; 2; 3 |] in
  Alcotest.(check bool) "inline map works" true (out = [| "1"; "2"; "3" |]);
  Pool.shutdown p

let test_pool_empty_input () =
  Pool.with_pool ~jobs:2 (fun pool ->
      let pool = Option.get pool in
      Alcotest.(check bool)
        "empty array" true
        (Pool.map pool Fun.id [||] = [||]);
      Alcotest.(check bool) "empty list" true (Pool.map_list pool Fun.id [] = []))

let test_pool_lowest_index_exception () =
  (* Several elements raise; the submitter must see the lowest index's
     exception, whatever the scheduling. *)
  Pool.with_pool ~jobs:4 (fun pool ->
      let pool = Option.get pool in
      let xs = Array.init 64 Fun.id in
      match
        Pool.map pool
          (fun x -> if x mod 10 = 3 then failwith (string_of_int x) else x)
          xs
      with
      | _ -> Alcotest.fail "expected an exception"
      | exception Failure msg ->
        Alcotest.(check string) "lowest failing index wins" "3" msg)

let test_pool_nested_submission_inline () =
  (* A parallelized function that itself submits to the same pool must
     not deadlock: the inner submission runs inline on the worker. *)
  Pool.with_pool ~jobs:2 (fun pool ->
      let pool = Option.get pool in
      let out =
        Pool.map pool
          (fun x ->
            let inner = Pool.map pool (fun y -> y + x) [| 1; 2; 3 |] in
            Array.fold_left ( + ) 0 inner)
          (Array.init 8 Fun.id)
      in
      Alcotest.(check bool)
        "nested results correct" true
        (out = Array.init 8 (fun x -> 6 + (3 * x))))

let test_pool_use_after_shutdown () =
  let p = Pool.create 2 in
  Pool.shutdown p;
  Pool.shutdown p (* idempotent *);
  match Pool.map p Fun.id [| 1; 2 |] with
  | _ -> Alcotest.fail "map after shutdown must raise"
  | exception Invalid_argument _ -> ()

let test_pool_negative_size_rejected () =
  match Pool.create (-1) with
  | _ -> Alcotest.fail "negative size must raise"
  | exception Invalid_argument _ -> ()

let test_pool_deterministic_across_sizes () =
  (* The same pure map at several pool sizes returns the same array. *)
  let xs = Array.init 200 (fun i -> (i * 37) mod 101) in
  let f x = (x * x) + 1 in
  let expect = Array.map f xs in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let out =
            match pool with
            | None -> Array.map f xs
            | Some p -> Pool.map p f xs
          in
          if out <> expect then Alcotest.failf "jobs=%d diverged" jobs))
    [ 1; 2; 3; 4; 8 ]

let suite =
  [
    Alcotest.test_case "prng determinism" `Quick test_prng_deterministic;
    Alcotest.test_case "prng seed sensitivity" `Quick test_prng_seed_sensitivity;
    Alcotest.test_case "prng split decorrelated" `Quick test_prng_split_decorrelated;
    Alcotest.test_case "prng float range" `Quick test_prng_float_range;
    Alcotest.test_case "prng int bounds" `Quick test_prng_int_bounds;
    Alcotest.test_case "prng int uniformity" `Quick test_prng_int_uniformity;
    Alcotest.test_case "prng float mean" `Quick test_prng_mean_of_float;
    Alcotest.test_case "prng exponential mean" `Quick test_prng_exponential_mean;
    Alcotest.test_case "shuffle is a permutation" `Quick test_prng_shuffle_is_permutation;
    Alcotest.test_case "sample without replacement" `Quick test_sample_without_replacement;
    Alcotest.test_case "pick on empty array" `Quick test_pick_empty_rejected;
    Alcotest.test_case "stats mean/variance" `Quick test_stats_mean_variance;
    Alcotest.test_case "stats percentile" `Quick test_stats_percentile;
    Alcotest.test_case "stats summary" `Quick test_stats_summary;
    Alcotest.test_case "stats weighted mean" `Quick test_stats_weighted_mean;
    Alcotest.test_case "stats histogram" `Quick test_stats_histogram;
    Alcotest.test_case "maximize parabola" `Quick test_maximize_parabola;
    Alcotest.test_case "maximize at boundary" `Quick test_maximize_at_boundary;
    Alcotest.test_case "bisect finds root" `Quick test_bisect_root;
    Alcotest.test_case "bisect needs sign change" `Quick test_bisect_no_sign_change;
    Alcotest.test_case "fixed point converges" `Quick test_fixed_point_converges;
    Alcotest.test_case "fixed point divergence guard" `Quick test_fixed_point_divergence_guard;
    Alcotest.test_case "simpson integration" `Quick test_integrate_polynomial;
    Alcotest.test_case "central derivative" `Quick test_derivative;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table pads rows" `Quick test_table_pads_short_rows;
    Alcotest.test_case "fmt_float" `Quick test_fmt_float;
    QCheck_alcotest.to_alcotest qcheck_percentile_bounds;
    QCheck_alcotest.to_alcotest qcheck_variance_nonneg;
    QCheck_alcotest.to_alcotest qcheck_int_range_inclusive;
    Alcotest.test_case "codec round-trip" `Quick test_codec_roundtrip;
    Alcotest.test_case "codec short read raises" `Quick
      test_codec_short_read_raises;
    Alcotest.test_case "codec crc32 check vector" `Quick test_codec_crc32_vector;
    Alcotest.test_case "codec frames and torn tails" `Quick test_codec_frames;
    QCheck_alcotest.to_alcotest qcheck_codec_frame_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_codec_truncation_safe;
    Alcotest.test_case "codec resync skips zero runs and garbage" `Quick
      test_codec_resync;
    Alcotest.test_case "prng state round-trip" `Quick test_prng_state_roundtrip;
    Alcotest.test_case "pool map ordered" `Quick test_pool_map_ordered;
    Alcotest.test_case "pool worker reuse" `Quick test_pool_reuse;
    Alcotest.test_case "pool inline when small" `Quick
      test_pool_inline_when_small;
    Alcotest.test_case "pool empty input" `Quick test_pool_empty_input;
    Alcotest.test_case "pool lowest-index exception" `Quick
      test_pool_lowest_index_exception;
    Alcotest.test_case "pool nested submission runs inline" `Quick
      test_pool_nested_submission_inline;
    Alcotest.test_case "pool use after shutdown" `Quick
      test_pool_use_after_shutdown;
    Alcotest.test_case "pool negative size rejected" `Quick
      test_pool_negative_size_rejected;
    Alcotest.test_case "pool deterministic across sizes" `Quick
      test_pool_deterministic_across_sizes;
  ]
