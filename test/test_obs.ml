(* Observability layer: spans, sinks, Chrome export, histograms,
   Prometheus/JSON export, and the two guarantees instrumentation makes
   to the rest of the repo — the disabled path allocates nothing, and
   tracing never perturbs journaled output. *)

module Trace = Poc_obs.Trace
module Flight = Poc_obs.Flight
module Metrics = Poc_obs.Metrics
module Log = Poc_obs.Log
module Clock = Poc_obs.Clock
module Planner = Poc_core.Planner
module Epochs = Poc_market.Epochs
module Fault = Poc_resilience.Fault
module Supervisor = Poc_resilience.Supervisor

(* --- a minimal JSON reader, enough to validate exporter output ---------- *)

type json =
  | JNull
  | JBool of bool
  | JNum of float
  | JStr of string
  | JArr of json list
  | JObj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some '"' ->
          Buffer.add_char buf '"';
          advance ();
          go ()
        | Some '\\' ->
          Buffer.add_char buf '\\';
          advance ();
          go ()
        | Some '/' ->
          Buffer.add_char buf '/';
          advance ();
          go ()
        | Some 'n' ->
          Buffer.add_char buf '\n';
          advance ();
          go ()
        | Some 't' ->
          Buffer.add_char buf '\t';
          advance ();
          go ()
        | Some 'r' ->
          Buffer.add_char buf '\r';
          advance ();
          go ()
        | Some 'b' ->
          Buffer.add_char buf '\b';
          advance ();
          go ()
        | Some 'f' ->
          Buffer.add_char buf '\012';
          advance ();
          go ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then fail "truncated \\u escape";
          let hex = String.sub s !pos 4 in
          let code =
            try int_of_string ("0x" ^ hex)
            with Failure _ -> fail "bad \\u escape"
          in
          (* Test traces are ASCII; encode the BMP code point naively. *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else Buffer.add_string buf (Printf.sprintf "\\u%s" hex);
          pos := !pos + 4;
          go ()
        | _ -> fail "bad escape")
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> JStr (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        JObj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((key, v) :: acc)
          | _ -> fail "expected , or } in object"
        in
        JObj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        JArr []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected , or ] in array"
        in
        JArr (elements [])
      end
    | Some 't' -> literal "true" (JBool true)
    | Some 'f' -> literal "false" (JBool false)
    | Some 'n' -> literal "null" JNull
    | Some _ -> JNum (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let obj_field name = function
  | JObj fields -> List.assoc_opt name fields
  | _ -> None

let num_field name j =
  match obj_field name j with
  | Some (JNum f) -> f
  | _ -> Alcotest.failf "missing numeric field %S" name

let str_field name j =
  match obj_field name j with
  | Some (JStr s) -> s
  | _ -> Alcotest.failf "missing string field %S" name

(* --- clock and log ------------------------------------------------------- *)

let test_clock_monotonic () =
  let prev = ref (Clock.now_us ()) in
  for _ = 1 to 1000 do
    let t = Clock.now_us () in
    if t < !prev then Alcotest.fail "clock went backwards";
    prev := t
  done

let test_log_levels_and_laziness () =
  let calls = ref 0 in
  let msg () =
    incr calls;
    "boom"
  in
  Log.set_level None;
  Log.error msg;
  Log.debug msg;
  Alcotest.(check int) "silent by default" 0 !calls;
  Log.set_level (Some Log.Warn);
  Alcotest.(check bool) "warn on" true (Log.enabled Log.Warn);
  Alcotest.(check bool) "info off" false (Log.enabled Log.Info);
  Log.info msg;
  Alcotest.(check int) "below-level closure never runs" 0 !calls;
  Log.set_level None;
  Alcotest.(check (option string))
    "round-trips names" (Some "debug")
    (Option.map Log.level_to_string (Log.level_of_string "debug"))

(* --- spans and sinks ----------------------------------------------------- *)

let with_ring f =
  let ring = Trace.Ring.create () in
  Trace.set_sink (Some (Trace.Ring.sink ring));
  Fun.protect ~finally:(fun () -> Trace.set_sink None) (fun () -> f ring)

let test_span_nesting_and_determinism () =
  let shape () =
    with_ring (fun ring ->
        let root = Trace.span "root" in
        Trace.add_attr root "k" (Trace.Int 7);
        let child = Trace.span "child" in
        Trace.event ~attrs:[ ("x", Trace.Bool true) ] "ping";
        Trace.finish child;
        let child2 = Trace.span "child2" in
        Trace.finish child2;
        Trace.finish root;
        List.map
          (fun (r : Trace.record) ->
            Printf.sprintf "%d<-%d@%d:%s" r.Trace.id r.Trace.parent
              r.Trace.depth r.Trace.name)
          (Trace.Ring.records ring))
  in
  let first = shape () in
  (* Finish order: children before the root. *)
  Alcotest.(check (list string))
    "ids, parents and depths"
    [ "2<-1@1:child"; "3<-1@1:child2"; "1<-0@0:root" ]
    first;
  Alcotest.(check (list string))
    "span ids are deterministic across sink installs" first (shape ())

let test_unfinished_spans_flushed_on_uninstall () =
  let ring = Trace.Ring.create () in
  Trace.set_sink (Some (Trace.Ring.sink ring));
  let _root = Trace.span "interrupted" in
  let _child = Trace.span "inner" in
  Alcotest.(check int) "two open spans" 2 (Trace.open_spans ());
  Trace.set_sink None;
  Alcotest.(check int) "none open after uninstall" 0 (Trace.open_spans ());
  let names =
    List.map (fun (r : Trace.record) -> r.Trace.name) (Trace.Ring.records ring)
  in
  Alcotest.(check (list string))
    "partial spans still exported" [ "inner"; "interrupted" ] names

let test_ring_eviction () =
  let ring = Trace.Ring.create ~capacity:3 () in
  Trace.set_sink (Some (Trace.Ring.sink ring));
  for i = 1 to 5 do
    Trace.finish (Trace.span (Printf.sprintf "s%d" i))
  done;
  Trace.set_sink None;
  Alcotest.(check (list string))
    "keeps the most recent, oldest first" [ "s3"; "s4"; "s5" ]
    (List.map (fun (r : Trace.record) -> r.Trace.name) (Trace.Ring.records ring));
  Alcotest.(check int) "eviction count" 2 (Trace.Ring.dropped ring)

let test_disabled_path_allocates_nothing () =
  Trace.set_sink None;
  let attr = Trace.Int 1 in
  (* warm up so any one-time allocation is outside the window *)
  let s0 = Trace.span "warm" in
  Trace.add_attr s0 "k" attr;
  Trace.event "warm";
  Trace.finish s0;
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    let s = Trace.span "hot" in
    Trace.add_attr s "k" attr;
    Trace.event "tick";
    Trace.finish s
  done;
  let delta = Gc.minor_words () -. before in
  (* 10k iterations; even one word per iteration would show as 10_000. *)
  if delta > 256.0 then
    Alcotest.failf "disabled tracing allocated %.0f minor words" delta

(* --- Chrome exporter ----------------------------------------------------- *)

let chrome_trace_of f =
  let chrome = Trace.Chrome.create () in
  Trace.set_sink (Some (Trace.Chrome.sink chrome));
  Fun.protect ~finally:(fun () -> Trace.set_sink None) f;
  Trace.Chrome.to_json chrome

let test_chrome_export_is_valid_json () =
  let json_text =
    chrome_trace_of (fun () ->
        let root = Trace.span "epoch" in
        Trace.add_attr root "epoch" (Trace.Int 0);
        Trace.add_attr root "note" (Trace.Str "quote \" slash \\ tab \t");
        Trace.add_attr root "nan" (Trace.Float Float.nan);
        let child = Trace.span "auction" in
        Trace.event ~attrs:[ ("reason", Trace.Str "test") ] "fault";
        Trace.finish child;
        Trace.finish root)
  in
  let doc = parse_json json_text in
  Alcotest.(check (option string))
    "display unit" (Some "ms")
    (match obj_field "displayTimeUnit" doc with
    | Some (JStr s) -> Some s
    | _ -> None);
  let events =
    match obj_field "traceEvents" doc with
    | Some (JArr evs) -> evs
    | _ -> Alcotest.fail "traceEvents missing"
  in
  let complete =
    List.filter (fun e -> str_field "ph" e = "X") events
  in
  let instants = List.filter (fun e -> str_field "ph" e = "i") events in
  Alcotest.(check int) "two complete spans" 2 (List.length complete);
  Alcotest.(check int) "one instant event" 1 (List.length instants);
  List.iter
    (fun e ->
      ignore (num_field "ts" e);
      ignore (num_field "dur" e);
      Alcotest.(check (float 0.0)) "pid" 1.0 (num_field "pid" e);
      Alcotest.(check (float 0.0)) "tid" 1.0 (num_field "tid" e))
    complete;
  let instant = List.hd instants in
  Alcotest.(check string) "instant name" "fault" (str_field "name" instant);
  Alcotest.(check string) "instant scope" "t" (str_field "s" instant);
  (match obj_field "args" instant with
  | Some args ->
    Alcotest.(check string) "event attr" "test" (str_field "reason" args)
  | None -> Alcotest.fail "instant args missing")

let test_chrome_span_ordering () =
  let json_text =
    chrome_trace_of (fun () ->
        let a = Trace.span "a" in
        let b = Trace.span "b" in
        Trace.finish b;
        let c = Trace.span "c" in
        let d = Trace.span "d" in
        Trace.finish d;
        Trace.finish c;
        Trace.finish a)
  in
  let events =
    match obj_field "traceEvents" (parse_json json_text) with
    | Some (JArr evs) -> evs
    | _ -> Alcotest.fail "traceEvents missing"
  in
  let complete = List.filter (fun e -> str_field "ph" e = "X") events in
  (* Timestamps never decrease along the file ... *)
  let ts = List.map (num_field "ts") complete in
  Alcotest.(check bool) "timestamps ascend" true
    (List.for_all2 (fun a b -> a <= b) ts (List.tl ts @ [ infinity ]));
  (* ... and every child's parent appears earlier in the array, which
     is what keeps the viewer's nesting intact. *)
  let id_of e =
    match obj_field "args" e with
    | Some args -> int_of_float (num_field "span_id" args)
    | None -> Alcotest.fail "span args missing"
  in
  let parent_of e =
    match obj_field "args" e with
    | Some args -> int_of_float (num_field "parent_id" args)
    | None -> Alcotest.fail "span args missing"
  in
  List.iteri
    (fun i e ->
      let p = parent_of e in
      if p <> 0 then begin
        let seen = List.filteri (fun j _ -> j < i) complete in
        if not (List.exists (fun e' -> id_of e' = p) seen) then
          Alcotest.failf "span %d appears before its parent %d" (id_of e) p
      end)
    complete

(* --- histograms ---------------------------------------------------------- *)

let test_histogram_bucket_boundaries () =
  let reg = Metrics.create_registry () in
  let h = Metrics.histogram ~lo:1e-6 ~growth:2.0 ~buckets:30 reg "h" in
  let bounds = Metrics.Histogram.bounds h in
  Alcotest.(check int) "bucket count" 30 (Array.length bounds);
  Array.iteri
    (fun i b ->
      let expect = 1e-6 *. (2.0 ** float_of_int i) in
      if Float.abs (b -. expect) > 1e-15 *. expect then
        Alcotest.failf "bound %d: %.17g <> %.17g" i b expect)
    bounds;
  (* A value lands in the first bucket whose bound exceeds it. *)
  Metrics.Histogram.observe h 1.5e-6;
  (* between 2^0 and 2^1 *)
  Metrics.Histogram.observe h 0.5e-6;
  (* below the first bound *)
  Metrics.Histogram.observe h 1e9;
  (* beyond the last bound: overflow *)
  let counts = Metrics.Histogram.bucket_counts h in
  Alcotest.(check int) "counts include overflow slot" 31 (Array.length counts);
  Alcotest.(check int) "underflow in bucket 0" 1 counts.(0);
  Alcotest.(check int) "1.5us in bucket 1" 1 counts.(1);
  Alcotest.(check int) "giant value in overflow" 1 counts.(30)

let test_histogram_percentiles_known_inputs () =
  let reg = Metrics.create_registry () in
  let h = Metrics.histogram ~lo:1e-6 ~growth:2.0 ~buckets:40 reg "lat" in
  for _ = 1 to 50 do
    Metrics.Histogram.observe h 0.001
  done;
  for _ = 1 to 45 do
    Metrics.Histogram.observe h 0.01
  done;
  for _ = 1 to 5 do
    Metrics.Histogram.observe h 0.1
  done;
  Alcotest.(check int) "count" 100 (Metrics.Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 1.0 (Metrics.Histogram.sum h);
  (* 0.001 lands under bound 2^10us = 1024us; 0.01 under 2^14us =
     16384us; 0.1 under 2^17us but clamped to the observed max. *)
  Alcotest.(check (float 1e-12)) "p50" 1.024e-3 (Metrics.Histogram.p50 h);
  Alcotest.(check (float 1e-12)) "p95" 1.6384e-2 (Metrics.Histogram.p95 h);
  Alcotest.(check (float 1e-12)) "p99 clamps to max" 0.1
    (Metrics.Histogram.p99 h);
  Alcotest.(check (float 1e-12)) "max" 0.1 (Metrics.Histogram.max_observed h);
  Alcotest.(check bool) "empty percentile is nan" true
    (Float.is_nan
       (Metrics.Histogram.p50 (Metrics.histogram ~lo:1e-6 reg "empty")))

let test_registry_idempotent_and_typed () =
  let reg = Metrics.create_registry () in
  let c1 = Metrics.counter reg "requests_total" in
  let c2 = Metrics.counter reg "requests_total" in
  Metrics.Counter.inc c1;
  Alcotest.(check (float 0.0)) "same instrument" 1.0 (Metrics.Counter.value c2);
  Alcotest.check_raises "kind mismatch rejected"
    (Invalid_argument
       "Metrics: \"requests_total\" already registered as a different kind")
    (fun () -> ignore (Metrics.gauge reg "requests_total"));
  Alcotest.check_raises "bad name rejected"
    (Invalid_argument "Metrics: invalid metric name \"no spaces\"") (fun () ->
      ignore (Metrics.counter reg "no spaces"));
  Alcotest.check_raises "negative increment rejected"
    (Invalid_argument "Metrics.Counter.add: negative or NaN increment")
    (fun () -> Metrics.Counter.add c1 (-1.0))

let test_prometheus_exposition () =
  let reg = Metrics.create_registry () in
  let c = Metrics.counter ~help:"how many" reg "poc_widgets_total" in
  Metrics.Counter.add c 3.0;
  let g = Metrics.gauge reg "poc_temperature" in
  Metrics.Gauge.set g 21.5;
  let h = Metrics.histogram ~lo:1e-3 ~growth:10.0 ~buckets:4 reg "poc_lat" in
  Metrics.Histogram.observe h 0.002;
  Metrics.Histogram.observe h 0.002;
  Metrics.Histogram.observe h 0.5;
  let text = Metrics.to_prometheus reg in
  let expect_lines =
    [ "# HELP poc_widgets_total how many"; "# TYPE poc_widgets_total counter";
      "poc_widgets_total 3"; "# TYPE poc_temperature gauge";
      "poc_temperature 21.5"; "# TYPE poc_lat histogram";
      "poc_lat_bucket{le=\"0.01\"} 2"; "poc_lat_bucket{le=\"1\"} 3";
      "poc_lat_bucket{le=\"+Inf\"} 3"; "poc_lat_sum 0.504"; "poc_lat_count 3"
    ]
  in
  let lines = String.split_on_char '\n' text in
  List.iter
    (fun want ->
      if not (List.mem want lines) then
        Alcotest.failf "missing exposition line %S in:\n%s" want text)
    expect_lines

let test_metrics_json_snapshot () =
  let reg = Metrics.create_registry () in
  Metrics.Counter.add (Metrics.counter reg "jobs_total") 4.0;
  Metrics.Gauge.set (Metrics.gauge reg "depth") 2.0;
  let h = Metrics.histogram ~lo:1e-6 ~growth:2.0 reg "t" in
  Metrics.Histogram.observe h 0.001;
  let doc = parse_json (Metrics.to_json reg) in
  (match obj_field "counters" doc with
  | Some counters ->
    Alcotest.(check (float 0.0)) "counter value" 4.0 (num_field "jobs_total" counters)
  | None -> Alcotest.fail "counters section missing");
  match obj_field "histograms" doc with
  | Some (JObj [ ("t", hist) ]) ->
    Alcotest.(check (float 0.0)) "count" 1.0 (num_field "count" hist);
    (* one observation: the bucket bound clamps to the observed max *)
    Alcotest.(check (float 1e-12)) "p50" 1e-3 (num_field "p50" hist)
  | _ -> Alcotest.fail "histograms section malformed"

(* --- end-to-end: instrumented supervised run ----------------------------- *)

let plan () = Lazy.force Fixtures.small_plan

let chaos_schedule (plan : Planner.plan) =
  let wan = plan.Planner.wan in
  let biggest =
    match Poc_topology.Wan.bps_by_size wan with b :: _ -> b | [] -> 0
  in
  let n_bps = Array.length wan.Poc_topology.Wan.bps in
  let specs =
    [
      Fault.Bp_bankruptcy { at_epoch = 3; bp = biggest };
      Fault.Link_failure { at_epoch = 3; count = 2; duration = 2 };
    ]
    @ List.init n_bps (fun bp ->
          Fault.Capacity_recall { at_epoch = 5; bp; fraction = 1.0; duration = 1 })
  in
  match Fault.compile wan ~seed:2020 specs with
  | Ok s -> s
  | Error msg -> Alcotest.failf "chaos schedule failed to compile: %s" msg

let market = { Epochs.default_config with Epochs.epochs = 8; seed = 7 }

let test_supervised_run_trace_coverage () =
  let plan = plan () in
  let schedule = chaos_schedule plan in
  let report, records =
    with_ring (fun ring ->
        let report = Supervisor.run plan ~market ~schedule in
        (report, Trace.Ring.records ring))
  in
  let names =
    List.sort_uniq compare
      (List.map (fun (r : Trace.record) -> r.Trace.name) records)
  in
  List.iter
    (fun phase ->
      if not (List.mem phase names) then
        Alcotest.failf "no %S span in supervised trace (got: %s)" phase
          (String.concat ", " names))
    [ "epoch"; "drift"; "auction"; "routing"; "settlement" ];
  let epoch_spans =
    List.filter (fun (r : Trace.record) -> r.Trace.name = "epoch") records
  in
  Alcotest.(check int) "one span per epoch" market.Epochs.epochs
    (List.length epoch_spans);
  let all_events =
    List.concat_map (fun (r : Trace.record) -> r.Trace.events) records
  in
  let ev_names =
    List.sort_uniq compare
      (List.map (fun (e : Trace.event) -> e.Trace.ev_name) all_events)
  in
  Alcotest.(check bool) "injected faults appear as events" true
    (List.mem "fault" ev_names);
  Alcotest.(check bool) "this schedule engages the ladder" true
    (report.Supervisor.ladder_activations > 0);
  Alcotest.(check bool) "ladder engagements appear as events" true
    (List.mem "ladder_engaged" ev_names)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let test_journal_byte_identical_with_tracing () =
  let plan = plan () in
  let schedule = chaos_schedule plan in
  let journal_of f =
    let path = Filename.temp_file "poc_obs_journal" ".bin" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      (fun () ->
        f path;
        read_file path)
  in
  let untraced =
    journal_of (fun path ->
        ignore (Supervisor.run plan ~journal:path ~market ~schedule))
  in
  let traced =
    journal_of (fun path ->
        with_ring (fun _ring ->
            ignore (Supervisor.run plan ~journal:path ~market ~schedule)))
  in
  Alcotest.(check bool) "journal bytes unchanged by tracing" true
    (String.equal untraced traced);
  Alcotest.(check bool) "journal is non-trivial" true
    (String.length untraced > 100)

(* --- Atomic instruments under domain contention ------------------------ *)

(* [domains] raw Domain.spawn hammering one instrument concurrently;
   with the old plain-ref representation these tests lose increments
   almost every run. *)
let hammer ~domains ~iters f =
  let handles = List.init domains (fun d -> Domain.spawn (fun () -> f d iters)) in
  List.iter Domain.join handles

let test_counter_no_lost_increments () =
  let reg = Metrics.create_registry () in
  let c = Metrics.counter reg "hammer_counter_total" in
  let domains = 2 and iters = 50_000 in
  hammer ~domains ~iters (fun _ n ->
      for _ = 1 to n do
        Metrics.Counter.inc c
      done);
  Alcotest.(check (float 0.0))
    "every increment lands"
    (float_of_int (domains * iters))
    (Metrics.Counter.value c);
  (* Counter.add races too. *)
  hammer ~domains:4 ~iters:10_000 (fun _ n ->
      for _ = 1 to n do
        Metrics.Counter.add c 0.5
      done);
  Alcotest.(check (float 0.0))
    "fractional adds land"
    (float_of_int (domains * iters) +. (4.0 *. 10_000.0 *. 0.5))
    (Metrics.Counter.value c)

let test_histogram_no_lost_observations () =
  let reg = Metrics.create_registry () in
  let h = Metrics.histogram ~lo:1e-3 ~growth:2.0 ~buckets:20 reg "hammer_hist" in
  let domains = 2 and iters = 25_000 in
  (* Each domain observes a distinct constant, so per-bucket counts are
     predictable as well as the total. *)
  hammer ~domains ~iters (fun d n ->
      let v = 0.01 *. float_of_int (1 + d) in
      for _ = 1 to n do
        Metrics.Histogram.observe h v
      done);
  Alcotest.(check int) "count" (domains * iters) (Metrics.Histogram.count h);
  let expect_sum = float_of_int iters *. (0.01 +. 0.02) in
  Alcotest.(check (float 1e-6)) "sum" expect_sum (Metrics.Histogram.sum h);
  Alcotest.(check (float 0.0)) "max" 0.02 (Metrics.Histogram.max_observed h);
  let total_buckets =
    Array.fold_left ( + ) 0 (Metrics.Histogram.bucket_counts h)
  in
  Alcotest.(check int) "bucket counts conserve" (domains * iters) total_buckets

let test_gauge_add_no_lost_updates () =
  let reg = Metrics.create_registry () in
  let g = Metrics.gauge reg "hammer_gauge" in
  hammer ~domains:2 ~iters:30_000 (fun d n ->
      let delta = if d = 0 then 1.0 else -1.0 in
      for _ = 1 to n do
        Metrics.Gauge.add g delta
      done);
  Alcotest.(check (float 0.0)) "adds cancel exactly" 0.0 (Metrics.Gauge.value g)

(* --- Flight recorder ring ----------------------------------------------- *)

(* A deterministic kind per operation code, covering every constructor,
   so the qcheck property can recompute what the ring should hold. *)
let flight_kind_of_int i =
  match i mod 5 with
  | 0 -> Flight.Span_open { name = Printf.sprintf "phase%d" (i mod 7) }
  | 1 ->
    Flight.Span_close
      { name = Printf.sprintf "phase%d" (i mod 7); dur_us = 1.5 *. float_of_int i }
  | 2 -> Flight.Event { name = "ev"; detail = Printf.sprintf "detail %d" i }
  | 3 -> Flight.Incident { incident = "fault"; detail = Printf.sprintf "f%d" i }
  | _ -> Flight.Metric { name = "m"; delta = float_of_int i /. 3.0 }

let flight_shape (r : Flight.record) = (r.Flight.seq, r.Flight.epoch, r.Flight.kind)

let qcheck_flight_ring_replay =
  QCheck.Test.make ~name:"flight ring replays the newest records in order"
    ~count:300
    QCheck.(pair (int_range 1 12) (small_list small_int))
    (fun (capacity, ops) ->
      let t = Flight.create ~capacity () in
      List.iteri
        (fun i op ->
          Flight.emit t ~ts_us:(float_of_int i) ~epoch:(op mod 4) ~phase:"p"
            (flight_kind_of_int op))
        ops;
      let n = List.length ops in
      let kept = min n capacity in
      if Flight.seq t <> n then
        QCheck.Test.fail_reportf "seq %d after %d emissions" (Flight.seq t) n;
      if Flight.stored t <> kept || Flight.dropped t <> n - kept then
        QCheck.Test.fail_reportf "stored %d / dropped %d after %d emissions"
          (Flight.stored t) (Flight.dropped t) n;
      let expect =
        List.filteri (fun i _ -> i >= n - kept) ops
        |> List.mapi (fun j op -> (n - kept + j, op mod 4, flight_kind_of_int op))
      in
      if List.map flight_shape (Flight.records t) <> expect then
        QCheck.Test.fail_report "ring contents diverge from the newest suffix";
      (* and the full on-disk image round-trips exactly those records *)
      match Flight.decode_image (Flight.image t) with
      | Error e -> QCheck.Test.fail_reportf "image does not decode: %s" e
      | Ok img ->
        img.Flight.img_capacity = capacity
        && (not img.Flight.img_torn)
        && List.map flight_shape img.Flight.img_records = expect)

let test_flight_drain_appends_compose () =
  let t = Flight.create ~capacity:8 () in
  let file = Buffer.create 256 in
  Buffer.add_string file (Flight.image t);
  let emit i =
    Flight.emit t ~ts_us:(float_of_int i) ~epoch:i ~phase:"epoch"
      (Flight.Event { name = "e"; detail = string_of_int i })
  in
  let flush () =
    match Flight.drain t with
    | `Empty -> ()
    | `Append b -> Buffer.add_string file b
    | `Wrapped ->
      Buffer.clear file;
      Buffer.add_string file (Flight.image t)
  in
  emit 0;
  emit 1;
  flush ();
  emit 2;
  flush ();
  flush ();
  (* image + incremental appends is itself a valid image *)
  (match Flight.decode_image (Buffer.contents file) with
  | Ok img ->
    Alcotest.(check int) "three records on disk" 3
      (List.length img.Flight.img_records);
    Alcotest.(check bool) "composed image is clean" false img.Flight.img_torn
  | Error e -> Alcotest.failf "composed image must decode: %s" e);
  (* wrapping past an undrained backlog demands a rewrite *)
  for i = 3 to 20 do
    emit i
  done;
  (match Flight.drain t with
  | `Wrapped -> ()
  | `Empty | `Append _ -> Alcotest.fail "a wrapped backlog must demand a rewrite");
  Alcotest.(check int) "pending resets after a wrap" 0 (Flight.pending_bytes t);
  (* a torn tail loses exactly the damaged frame, never the history *)
  let img = Flight.image t in
  let cut = String.sub img 0 (String.length img - 3) in
  match Flight.decode_image cut with
  | Error e -> Alcotest.failf "a torn image must still decode: %s" e
  | Ok d ->
    Alcotest.(check bool) "tear detected" true d.Flight.img_torn;
    Alcotest.(check int) "only the last frame lost" 7
      (List.length d.Flight.img_records);
    let keep = Flight.valid_prefix cut in
    Alcotest.(check bool) "valid prefix strictly inside the cut" true
      (keep > 0 && keep < String.length cut);
    (match Flight.decode_image (String.sub cut 0 keep) with
    | Ok d' -> Alcotest.(check bool) "prefix decodes clean" false d'.Flight.img_torn
    | Error e -> Alcotest.failf "the valid prefix must decode: %s" e)

(* --- Prometheus exposition conformance ----------------------------------- *)

let starts_with prefix l = String.length l >= String.length prefix
  && String.sub l 0 (String.length prefix) = prefix

let test_prometheus_conformance () =
  let reg = Metrics.create_registry () in
  let c = Metrics.counter ~help:"total widgets" reg "poc_conf_total" in
  Metrics.Counter.add c 2.0;
  let nasty = "a\\b\"c\nd" in
  let cl =
    Metrics.counter ~help:"total widgets" ~labels:[ ("site", nasty) ] reg
      "poc_conf_total"
  in
  Metrics.Counter.inc cl;
  let g = Metrics.gauge ~help:"level" reg "poc_conf_level" in
  Metrics.Gauge.set g (-3.5);
  let h =
    Metrics.histogram ~help:"lat" ~lo:1e-3 ~growth:10.0 ~buckets:3 reg
      "poc_conf_seconds"
  in
  List.iter (Metrics.Histogram.observe h) [ 0.002; 0.05; 123.0 ];
  let hl =
    Metrics.histogram ~help:"lat" ~labels:[ ("cell", "crash|torn") ] ~lo:1e-3
      ~growth:10.0 ~buckets:3 reg "poc_conf_seconds"
  in
  Metrics.Histogram.observe hl 0.004;
  let text = Metrics.to_prometheus reg in
  let lines = String.split_on_char '\n' text |> List.filter (fun l -> l <> "") in
  let idx pred =
    let rec go i = function
      | [] -> -1
      | l :: _ when pred l -> i
      | _ :: tl -> go (i + 1) tl
    in
    go 0 lines
  in
  let count pred = List.length (List.filter pred lines) in
  (* one # HELP and one # TYPE per family, HELP first, then TYPE, then
     every sample of the family contiguously — never interleaved *)
  List.iter
    (fun fam ->
      let help = "# HELP " ^ fam ^ " " and ty = "# TYPE " ^ fam ^ " " in
      Alcotest.(check int) (fam ^ ": one HELP") 1 (count (starts_with help));
      Alcotest.(check int) (fam ^ ": one TYPE") 1 (count (starts_with ty));
      let is_sample l =
        (not (starts_with "#" l))
        && (starts_with (fam ^ " ") l || starts_with (fam ^ "{") l
           || starts_with (fam ^ "_bucket") l
           || starts_with (fam ^ "_sum") l
           || starts_with (fam ^ "_count") l)
      in
      let hi = idx (starts_with help) and ti = idx (starts_with ty) in
      Alcotest.(check bool) (fam ^ ": HELP precedes TYPE") true (hi < ti);
      let sample_idx =
        List.mapi (fun i l -> (i, l)) lines
        |> List.filter (fun (_, l) -> is_sample l)
        |> List.map fst
      in
      Alcotest.(check bool) (fam ^ ": has samples") true (sample_idx <> []);
      List.iter
        (fun i -> Alcotest.(check bool) (fam ^ ": TYPE precedes samples") true (ti < i))
        sample_idx;
      let lo = List.hd sample_idx and hi_s = List.nth sample_idx (List.length sample_idx - 1) in
      Alcotest.(check int)
        (fam ^ ": samples are contiguous")
        (List.length sample_idx)
        (hi_s - lo + 1))
    [ "poc_conf_level"; "poc_conf_seconds"; "poc_conf_total" ];
  (* families are emitted in sorted order *)
  let ti f = idx (starts_with ("# TYPE " ^ f ^ " ")) in
  Alcotest.(check bool) "families sorted" true
    (ti "poc_conf_level" < ti "poc_conf_seconds"
    && ti "poc_conf_seconds" < ti "poc_conf_total");
  (* label values escape backslash, quote, and newline *)
  Alcotest.(check bool) "label escaping" true
    (List.mem "poc_conf_total{site=\"a\\\\b\\\"c\\nd\"} 1" lines);
  (* unlabeled buckets: cumulative, non-decreasing, +Inf-terminated *)
  let bucket_counts prefix =
    List.filter (starts_with prefix) lines
    |> List.map (fun l ->
           match String.rindex_opt l ' ' with
           | Some i ->
             ( l,
               float_of_string
                 (String.sub l (i + 1) (String.length l - i - 1)) )
           | None -> Alcotest.failf "malformed sample %S" l)
  in
  let check_buckets prefix total =
    let buckets = bucket_counts prefix in
    Alcotest.(check bool) (prefix ^ ": at least +Inf") true (buckets <> []);
    let rec cumulative prev = function
      | [] -> ()
      | (l, v) :: tl ->
        Alcotest.(check bool) ("non-decreasing at " ^ l) true (v >= prev);
        cumulative v tl
    in
    cumulative 0.0 buckets;
    let last, last_v = List.nth buckets (List.length buckets - 1) in
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) (prefix ^ ": terminated by +Inf") true
      (contains last "le=\"+Inf\"");
    Alcotest.(check (float 0.0)) (prefix ^ ": +Inf equals count") total last_v
  in
  check_buckets "poc_conf_seconds_bucket{le=" 3.0;
  check_buckets "poc_conf_seconds_bucket{cell=\"crash|torn\"" 1.0;
  (* the labeled family still emits exactly one sum and count per series *)
  Alcotest.(check int) "two sum lines (one per series)" 2
    (count (starts_with "poc_conf_seconds_sum"));
  Alcotest.(check int) "two count lines (one per series)" 2
    (count (starts_with "poc_conf_seconds_count"))

let suite =
  [
    Alcotest.test_case "clock is monotonic" `Quick test_clock_monotonic;
    Alcotest.test_case "log levels gate lazily" `Quick
      test_log_levels_and_laziness;
    Alcotest.test_case "span nesting and deterministic ids" `Quick
      test_span_nesting_and_determinism;
    Alcotest.test_case "uninstall flushes open spans" `Quick
      test_unfinished_spans_flushed_on_uninstall;
    Alcotest.test_case "ring buffer evicts oldest" `Quick test_ring_eviction;
    Alcotest.test_case "disabled tracing allocates nothing" `Quick
      test_disabled_path_allocates_nothing;
    Alcotest.test_case "chrome export is valid JSON" `Quick
      test_chrome_export_is_valid_json;
    Alcotest.test_case "chrome spans are ordered parents-first" `Quick
      test_chrome_span_ordering;
    Alcotest.test_case "histogram bucket boundaries" `Quick
      test_histogram_bucket_boundaries;
    Alcotest.test_case "histogram percentiles on known inputs" `Quick
      test_histogram_percentiles_known_inputs;
    Alcotest.test_case "registry is idempotent and typed" `Quick
      test_registry_idempotent_and_typed;
    Alcotest.test_case "prometheus exposition format" `Quick
      test_prometheus_exposition;
    Alcotest.test_case "metrics JSON snapshot" `Quick test_metrics_json_snapshot;
    Alcotest.test_case "counter loses no increments under domains" `Quick
      test_counter_no_lost_increments;
    Alcotest.test_case "histogram loses no observations under domains" `Quick
      test_histogram_no_lost_observations;
    Alcotest.test_case "gauge add loses no updates under domains" `Quick
      test_gauge_add_no_lost_updates;
    Alcotest.test_case "supervised run trace covers every phase" `Slow
      test_supervised_run_trace_coverage;
    Alcotest.test_case "journal byte-identical with tracing on" `Slow
      test_journal_byte_identical_with_tracing;
    QCheck_alcotest.to_alcotest qcheck_flight_ring_replay;
    Alcotest.test_case "flight drains compose into valid images" `Quick
      test_flight_drain_appends_compose;
    Alcotest.test_case "prometheus exposition conformance" `Quick
      test_prometheus_conformance;
  ]
