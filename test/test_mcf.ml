(* Tests for Poc_mcf.Router: feasibility, splitting, conservation,
   incremental re-routing and failure checks. *)

module Graph = Poc_graph.Graph
module Router = Poc_mcf.Router
module Prng = Poc_util.Prng

let check_float = Alcotest.(check (float 1e-6))

(* 0 --10--> 1 --10--> 2 plus a parallel 0-2 link of capacity 4. *)
let chain_with_shortcut () =
  let g = Graph.create () in
  Graph.add_nodes g 3;
  let e01 = Graph.add_edge g 0 1 ~weight:1.0 ~capacity:10.0 in
  let e12 = Graph.add_edge g 1 2 ~weight:1.0 ~capacity:10.0 in
  let e02 = Graph.add_edge g 0 2 ~weight:5.0 ~capacity:4.0 in
  (g, e01, e12, e02)

let test_simple_route () =
  let g, e01, e12, _ = chain_with_shortcut () in
  let r = Router.route g ~demands:[ (0, 2, 6.0) ] in
  Alcotest.(check bool) "feasible" true r.Router.feasible;
  check_float "total routed" 6.0 (Router.total_routed r);
  check_float "uses cheap path" 6.0 r.Router.usage.(e01);
  check_float "uses cheap path (2nd hop)" 6.0 r.Router.usage.(e12)

let test_split_when_needed () =
  let g, _, _, e02 = chain_with_shortcut () in
  let r = Router.route g ~demands:[ (0, 2, 12.0) ] in
  Alcotest.(check bool) "feasible by splitting" true r.Router.feasible;
  check_float "total" 12.0 (Router.total_routed r);
  Alcotest.(check bool) "overflow takes the long link" true
    (r.Router.usage.(e02) > 0.0)

let test_infeasible_detected () =
  let g, _, _, _ = chain_with_shortcut () in
  let r = Router.route g ~demands:[ (0, 2, 15.0) ] in
  Alcotest.(check bool) "infeasible" false r.Router.feasible;
  Alcotest.(check bool) "leftover reported" true (r.Router.unrouted <> []);
  let _, _, leftover = List.hd r.Router.unrouted in
  check_float "exactly one Gbps missing" 1.0 leftover

let test_capacity_never_exceeded () =
  let g, _, _, _ = chain_with_shortcut () in
  let r = Router.route g ~demands:[ (0, 2, 14.0); (0, 1, 0.0) ] in
  Array.iter
    (fun (e : Graph.edge) ->
      Alcotest.(check bool) "usage <= capacity" true
        (r.Router.usage.(e.id) <= e.capacity +. 1e-6))
    (Graph.edges g);
  Alcotest.(check bool) "max utilization <= 1" true
    (Router.max_utilization g r <= 1.0 +. 1e-6)

let test_enabled_mask_respected () =
  let g, e01, _, e02 = chain_with_shortcut () in
  let r = Router.route ~enabled:(fun id -> id <> e01) g ~demands:[ (0, 2, 3.0) ] in
  Alcotest.(check bool) "feasible via shortcut" true r.Router.feasible;
  check_float "no use of disabled edge" 0.0 r.Router.usage.(e01);
  check_float "shortcut carries it" 3.0 r.Router.usage.(e02)

let test_multiple_demands_sorted_by_size () =
  let g, _, _, _ = chain_with_shortcut () in
  let r = Router.route g ~demands:[ (0, 1, 2.0); (1, 2, 3.0); (0, 2, 5.0) ] in
  Alcotest.(check bool) "feasible" true r.Router.feasible;
  check_float "everything routed" 10.0 (Router.total_routed r)

let test_bad_demands_rejected () =
  let g, _, _, _ = chain_with_shortcut () in
  Alcotest.check_raises "self demand" (Invalid_argument "Router: self demand")
    (fun () -> ignore (Router.route g ~demands:[ (1, 1, 1.0) ]));
  Alcotest.check_raises "unknown node" (Invalid_argument "Router: unknown node")
    (fun () -> ignore (Router.route g ~demands:[ (0, 9, 1.0) ]));
  Alcotest.check_raises "negative" (Invalid_argument "Router: bad demand")
    (fun () -> ignore (Router.route g ~demands:[ (0, 1, -2.0) ]))

let test_used_edges () =
  let g, e01, e12, e02 = chain_with_shortcut () in
  let r = Router.route g ~demands:[ (0, 2, 1.0) ] in
  Alcotest.(check (list int)) "only the cheap path" [ e01; e12 ]
    (Router.used_edges r);
  ignore e02

(* --- Incremental re-route / failures --------------------------------------- *)

let test_reroute_without_unused_edge () =
  let g, _, _, e02 = chain_with_shortcut () in
  let base = Router.route g ~demands:[ (0, 2, 5.0) ] in
  match Router.reroute_without_edge g ~base ~failed_edge:e02 with
  | None -> Alcotest.fail "unused edge removal must succeed"
  | Some r ->
    check_float "capacity shrinks" (base.Router.enabled_capacity -. 4.0)
      r.Router.enabled_capacity

let test_reroute_shifts_traffic () =
  let g, e01, _, e02 = chain_with_shortcut () in
  let base = Router.route g ~demands:[ (0, 2, 4.0) ] in
  match Router.reroute_without_edge g ~base ~failed_edge:e01 with
  | None -> Alcotest.fail "shortcut can absorb the demand"
  | Some r ->
    check_float "moved to shortcut" 4.0 r.Router.usage.(e02);
    check_float "failed edge idle" 0.0 r.Router.usage.(e01)

let test_reroute_infeasible () =
  let g, e01, _, _ = chain_with_shortcut () in
  let base = Router.route g ~demands:[ (0, 2, 6.0) ] in
  Alcotest.(check bool) "cannot absorb 6 on a 4-capacity detour" true
    (Router.reroute_without_edge g ~base ~failed_edge:e01 = None)

let test_survives_all_failures_triangle () =
  let g = Graph.create () in
  Graph.add_nodes g 3;
  ignore (Graph.add_edge g 0 1 ~weight:1.0 ~capacity:10.0);
  ignore (Graph.add_edge g 1 2 ~weight:1.0 ~capacity:10.0);
  ignore (Graph.add_edge g 2 0 ~weight:1.0 ~capacity:10.0);
  let demands = [ (0, 1, 4.0); (1, 2, 4.0) ] in
  let base = Router.route g ~demands in
  Alcotest.(check bool) "triangle survives any single failure" true
    (Router.survives_all_single_failures g ~demands base)

let test_does_not_survive_on_chain () =
  let g = Graph.create () in
  Graph.add_nodes g 3;
  ignore (Graph.add_edge g 0 1 ~weight:1.0 ~capacity:10.0);
  ignore (Graph.add_edge g 1 2 ~weight:1.0 ~capacity:10.0);
  let demands = [ (0, 2, 1.0) ] in
  let base = Router.route g ~demands in
  Alcotest.(check bool) "chain dies with either link" false
    (Router.survives_all_single_failures g ~demands base)

(* --- Properties -------------------------------------------------------------- *)

let random_instance seed =
  let rng = Prng.create seed in
  let g = Graph.create () in
  let n = 8 in
  Graph.add_nodes g n;
  for v = 1 to n - 1 do
    ignore
      (Graph.add_edge g (Prng.int rng v) v ~weight:(1.0 +. Prng.float rng)
         ~capacity:(5.0 +. (10.0 *. Prng.float rng)))
  done;
  for _ = 1 to 8 do
    let a = Prng.int rng n and b = Prng.int rng n in
    if a <> b then
      ignore
        (Graph.add_edge g a b ~weight:(1.0 +. Prng.float rng)
           ~capacity:(5.0 +. (10.0 *. Prng.float rng)))
  done;
  let demands = ref [] in
  for _ = 1 to 6 do
    let a = Prng.int rng n and b = Prng.int rng n in
    if a <> b then demands := (a, b, 3.0 *. Prng.float rng) :: !demands
  done;
  (g, !demands)

let test_survives_all_jobs_invariant () =
  (* The per-failure checks fan out over a domain pool; the verdict
     must not depend on the pool size (including no pool at all). *)
  let cases = List.init 12 (fun i -> random_instance (1000 + (i * 37))) in
  List.iter
    (fun (g, demands) ->
      let base = Router.route g ~demands in
      let serial = Router.survives_all_single_failures g ~demands base in
      Poc_util.Pool.with_pool ~jobs:4 (fun pool ->
          let pooled =
            Router.survives_all_single_failures ?pool g ~demands base
          in
          if pooled <> serial then
            Alcotest.failf "verdict changed under a 4-worker pool (%b vs %b)"
              pooled serial))
    cases;
  (* And on the hand-built instances with a known answer. *)
  Poc_util.Pool.with_pool ~jobs:3 (fun pool ->
      let g = Graph.create () in
      Graph.add_nodes g 3;
      ignore (Graph.add_edge g 0 1 ~weight:1.0 ~capacity:10.0);
      ignore (Graph.add_edge g 1 2 ~weight:1.0 ~capacity:10.0);
      ignore (Graph.add_edge g 2 0 ~weight:1.0 ~capacity:10.0);
      let demands = [ (0, 1, 4.0); (1, 2, 4.0) ] in
      let base = Router.route g ~demands in
      Alcotest.(check bool) "triangle survives (pooled)" true
        (Router.survives_all_single_failures ?pool g ~demands base))

let qcheck_conservation =
  QCheck.Test.make ~name:"routed + unrouted = offered" ~count:60
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g, demands = random_instance seed in
      let r = Router.route g ~demands in
      let offered = List.fold_left (fun acc (_, _, d) -> acc +. d) 0.0 demands in
      let unrouted =
        List.fold_left (fun acc (_, _, d) -> acc +. d) 0.0 r.Router.unrouted
      in
      Float.abs (Router.total_routed r +. unrouted -. offered) < 1e-6)

let qcheck_capacity_respected =
  QCheck.Test.make ~name:"usage never exceeds capacity" ~count:60
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g, demands = random_instance seed in
      let r = Router.route g ~demands in
      Graph.fold_edges
        (fun e acc -> acc && r.Router.usage.(e.Graph.id) <= e.capacity +. 1e-6)
        g true)

let qcheck_chunks_are_real_paths =
  QCheck.Test.make ~name:"chunks are contiguous src->dst paths" ~count:40
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g, demands = random_instance seed in
      let r = Router.route g ~demands in
      Array.for_all
        (fun (c : Router.chunk) ->
          let rec walk node = function
            | [] -> node = c.Router.dst
            | eid :: rest ->
              let e = Graph.edge g eid in
              if e.Graph.u = node then walk e.Graph.v rest
              else if e.Graph.v = node then walk e.Graph.u rest
              else false
          in
          walk c.Router.src c.Router.edge_ids)
        r.Router.chunks)

(* route_toggle: the incremental answer must be a superset verdict of
   the from-scratch one (never misses a feasible set), always valid for
   the toggled enabled set, and deterministic. *)
let qcheck_toggle_remove_superset_and_valid =
  QCheck.Test.make ~name:"route_toggle Remove: superset, valid, deterministic"
    ~count:80
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g, demands = random_instance seed in
      let m = Graph.edge_count g in
      let eid = seed * 13 mod m in
      let base = Router.route g ~demands in
      let toggled = Router.route_toggle g ~demands ~base (Router.Remove eid) in
      let again = Router.route_toggle g ~demands ~base (Router.Remove eid) in
      let scratch = Router.route ~enabled:(fun id -> id <> eid) g ~demands in
      let superset = (not scratch.Router.feasible) || toggled.Router.feasible in
      let removed_idle = Float.abs toggled.Router.usage.(eid) < 1e-9 in
      let capacity_ok =
        Graph.fold_edges
          (fun e acc ->
            acc && toggled.Router.usage.(e.Graph.id) <= e.capacity +. 1e-6)
          g true
      in
      let offered =
        List.fold_left (fun acc (_, _, d) -> acc +. d) 0.0 demands
      in
      let unrouted =
        List.fold_left
          (fun acc (_, _, d) -> acc +. d)
          0.0 toggled.Router.unrouted
      in
      let conserves =
        Float.abs (Router.total_routed toggled +. unrouted -. offered) < 1e-6
      in
      let deterministic =
        toggled.Router.feasible = again.Router.feasible
        && toggled.Router.usage = again.Router.usage
      in
      superset && removed_idle && capacity_ok && conserves && deterministic)

let qcheck_toggle_add_superset =
  QCheck.Test.make ~name:"route_toggle Add: superset of from-scratch" ~count:60
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g, demands = random_instance seed in
      let m = Graph.edge_count g in
      let eid = seed * 17 mod m in
      let enabled id = id <> eid in
      let base = Router.route ~enabled g ~demands in
      let toggled =
        Router.route_toggle ~enabled g ~demands ~base (Router.Add eid)
      in
      let scratch = Router.route g ~demands in
      let superset = (not scratch.Router.feasible) || toggled.Router.feasible in
      let capacity_ok =
        Graph.fold_edges
          (fun e acc ->
            acc && toggled.Router.usage.(e.Graph.id) <= e.capacity +. 1e-6)
          g true
      in
      superset && capacity_ok)

let test_toggle_preconditions () =
  let g, e01, _, _ = chain_with_shortcut () in
  let base = Router.route g ~demands:[ (0, 2, 1.0) ] in
  Alcotest.check_raises "Remove of a disabled edge rejected"
    (Invalid_argument "Router.route_toggle: Remove of a disabled edge")
    (fun () ->
      ignore
        (Router.route_toggle
           ~enabled:(fun id -> id <> e01)
           g ~demands:[ (0, 2, 1.0) ] ~base (Router.Remove e01)));
  Alcotest.check_raises "Add of an enabled edge rejected"
    (Invalid_argument "Router.route_toggle: Add of an enabled edge")
    (fun () ->
      ignore
        (Router.route_toggle g ~demands:[ (0, 2, 1.0) ] ~base
           (Router.Add e01)))

let suite =
  [
    Alcotest.test_case "simple route" `Quick test_simple_route;
    Alcotest.test_case "splits across paths" `Quick test_split_when_needed;
    Alcotest.test_case "infeasibility detected" `Quick test_infeasible_detected;
    Alcotest.test_case "capacity never exceeded" `Quick test_capacity_never_exceeded;
    Alcotest.test_case "enabled mask respected" `Quick test_enabled_mask_respected;
    Alcotest.test_case "multiple demands" `Quick test_multiple_demands_sorted_by_size;
    Alcotest.test_case "bad demands rejected" `Quick test_bad_demands_rejected;
    Alcotest.test_case "used edges" `Quick test_used_edges;
    Alcotest.test_case "reroute without unused edge" `Quick
      test_reroute_without_unused_edge;
    Alcotest.test_case "reroute shifts traffic" `Quick test_reroute_shifts_traffic;
    Alcotest.test_case "reroute infeasible" `Quick test_reroute_infeasible;
    Alcotest.test_case "triangle survives failures" `Quick
      test_survives_all_failures_triangle;
    Alcotest.test_case "chain does not survive" `Quick test_does_not_survive_on_chain;
    Alcotest.test_case "failure sweep verdict is jobs-invariant" `Quick
      test_survives_all_jobs_invariant;
    Alcotest.test_case "route_toggle preconditions" `Quick
      test_toggle_preconditions;
    QCheck_alcotest.to_alcotest qcheck_conservation;
    QCheck_alcotest.to_alcotest qcheck_capacity_respected;
    QCheck_alcotest.to_alcotest qcheck_chunks_are_real_paths;
    QCheck_alcotest.to_alcotest qcheck_toggle_remove_superset_and_valid;
    QCheck_alcotest.to_alcotest qcheck_toggle_add_superset;
  ]
