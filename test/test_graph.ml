(* Tests for Poc_graph: structure, heap, shortest paths, k-shortest
   paths, connectivity, bridges and max-flow. *)

module Graph = Poc_graph.Graph
module Heap = Poc_graph.Heap
module Paths = Poc_graph.Paths
module Flow = Poc_graph.Flow
module Sparse = Poc_graph.Sparse
module Prng = Poc_util.Prng

let check_float = Alcotest.(check (float 1e-9))

(* A small diamond: 0-1-3 and 0-2-3 with a direct 0-3 chord. *)
let diamond () =
  let g = Graph.create () in
  Graph.add_nodes g 4;
  let e01 = Graph.add_edge g 0 1 ~weight:1.0 ~capacity:10.0 in
  let e13 = Graph.add_edge g 1 3 ~weight:1.0 ~capacity:10.0 in
  let e02 = Graph.add_edge g 0 2 ~weight:2.0 ~capacity:5.0 in
  let e23 = Graph.add_edge g 2 3 ~weight:2.0 ~capacity:5.0 in
  let e03 = Graph.add_edge g 0 3 ~weight:5.0 ~capacity:1.0 in
  (g, e01, e13, e02, e23, e03)

let random_graph seed ~nodes ~edges =
  let rng = Prng.create seed in
  let g = Graph.create () in
  Graph.add_nodes g nodes;
  (* Spanning chain for connectivity, then random extras. *)
  for v = 1 to nodes - 1 do
    ignore
      (Graph.add_edge g (v - 1) v
         ~weight:(1.0 +. Prng.float rng)
         ~capacity:(1.0 +. (10.0 *. Prng.float rng)))
  done;
  let added = ref 0 in
  while !added < edges do
    let a = Prng.int rng nodes and b = Prng.int rng nodes in
    if a <> b then begin
      ignore
        (Graph.add_edge g a b
           ~weight:(1.0 +. Prng.float rng)
           ~capacity:(1.0 +. (10.0 *. Prng.float rng)));
      incr added
    end
  done;
  g

(* --- Graph structure ---------------------------------------------------- *)

let test_graph_basics () =
  let g, e01, _, _, _, _ = diamond () in
  Alcotest.(check int) "nodes" 4 (Graph.node_count g);
  Alcotest.(check int) "edges" 5 (Graph.edge_count g);
  Alcotest.(check int) "degree 0" 3 (Graph.degree g 0);
  let e = Graph.edge g e01 in
  Alcotest.(check int) "other endpoint" 1 (Graph.other_endpoint e 0);
  Alcotest.(check int) "other endpoint rev" 0 (Graph.other_endpoint e 1)

let test_graph_rejects_bad_edges () =
  let g = Graph.create () in
  Graph.add_nodes g 2;
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.add_edge: self loop")
    (fun () -> ignore (Graph.add_edge g 0 0 ~weight:1.0 ~capacity:1.0));
  Alcotest.check_raises "unknown endpoint"
    (Invalid_argument "Graph.add_edge: unknown endpoint") (fun () ->
      ignore (Graph.add_edge g 0 5 ~weight:1.0 ~capacity:1.0));
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Graph.add_edge: negative weight or capacity") (fun () ->
      ignore (Graph.add_edge g 0 1 ~weight:(-1.0) ~capacity:1.0))

let test_graph_parallel_edges () =
  let g = Graph.create () in
  Graph.add_nodes g 2;
  let a = Graph.add_edge g 0 1 ~weight:1.0 ~capacity:1.0 in
  let b = Graph.add_edge g 0 1 ~weight:2.0 ~capacity:2.0 in
  Alcotest.(check bool) "distinct ids" true (a <> b);
  Alcotest.(check int) "degree counts both" 2 (Graph.degree g 0)

let test_fold_edges () =
  let g, _, _, _, _, _ = diamond () in
  let total = Graph.fold_edges (fun e acc -> acc +. e.Graph.capacity) g 0.0 in
  check_float "total capacity" 31.0 total

(* --- Heap --------------------------------------------------------------- *)

let test_heap_sorted_pops () =
  let h = Heap.create () in
  List.iter (fun k -> Heap.push h k (int_of_float k)) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  let rec drain acc =
    match Heap.pop h with None -> List.rev acc | Some (k, _) -> drain (k :: acc)
  in
  Alcotest.(check (list (float 0.0))) "sorted" [ 1.0; 2.0; 3.0; 4.0; 5.0 ] (drain [])

let qcheck_heap_property =
  QCheck.Test.make ~name:"heap pops in nondecreasing key order" ~count:200
    QCheck.(list (float_range 0.0 1000.0))
    (fun keys ->
      let h = Heap.create () in
      List.iter (fun k -> Heap.push h k ()) keys;
      let rec drain prev =
        match Heap.pop h with
        | None -> true
        | Some (k, ()) -> k >= prev && drain k
      in
      drain neg_infinity)

(* --- Shortest paths ------------------------------------------------------ *)

let test_dijkstra_diamond () =
  let g, _, _, _, _, _ = diamond () in
  let dist, _ = Paths.dijkstra g 0 in
  check_float "dist 3 via 1" 2.0 dist.(3);
  check_float "dist 2" 2.0 dist.(2)

let test_shortest_path_structure () =
  let g, e01, e13, _, _, _ = diamond () in
  match Paths.shortest_path g 0 3 with
  | None -> Alcotest.fail "should be connected"
  | Some p ->
    Alcotest.(check (list int)) "takes the cheap branch" [ e01; e13 ]
      (List.map (fun (e : Graph.edge) -> e.id) p);
    check_float "weight" 2.0 (Paths.path_weight p);
    Alcotest.(check (list int)) "node walk" [ 0; 1; 3 ] (Paths.path_nodes ~src:0 p)

let test_shortest_path_respects_enabled () =
  let g, e01, _, e02, e23, _ = diamond () in
  let enabled id = id <> e01 in
  match Paths.shortest_path ~enabled g 0 3 with
  | None -> Alcotest.fail "still connected"
  | Some p ->
    Alcotest.(check (list int)) "detours" [ e02; e23 ]
      (List.map (fun (e : Graph.edge) -> e.id) p)

let test_disconnected () =
  let g = Graph.create () in
  Graph.add_nodes g 3;
  ignore (Graph.add_edge g 0 1 ~weight:1.0 ~capacity:1.0);
  Alcotest.(check bool) "no path" true (Paths.shortest_path g 0 2 = None);
  Alcotest.(check bool) "not connected" false (Paths.is_connected g);
  Alcotest.(check int) "two components" 2 (Paths.component_count g)

let test_hop_distance () =
  let g, _, _, _, _, _ = diamond () in
  Alcotest.(check (option int)) "one hop via chord" (Some 1)
    (Paths.hop_distance g 0 3);
  Alcotest.(check (option int)) "self" (Some 0) (Paths.hop_distance g 1 1)

let qcheck_dijkstra_matches_bfs_on_unit_weights =
  QCheck.Test.make ~name:"dijkstra = bfs on unit weights" ~count:50
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Prng.create seed in
      let g = Graph.create () in
      let n = 12 in
      Graph.add_nodes g n;
      for v = 1 to n - 1 do
        ignore (Graph.add_edge g (Prng.int rng v) v ~weight:1.0 ~capacity:1.0)
      done;
      for _ = 1 to 6 do
        let a = Prng.int rng n and b = Prng.int rng n in
        if a <> b then ignore (Graph.add_edge g a b ~weight:1.0 ~capacity:1.0)
      done;
      let dist, _ = Paths.dijkstra g 0 in
      List.for_all
        (fun v ->
          match Paths.hop_distance g 0 v with
          | None -> dist.(v) = infinity
          | Some h -> Float.abs (dist.(v) -. float_of_int h) < 1e-9)
        (List.init n Fun.id))

(* --- k shortest paths ----------------------------------------------------- *)

let test_yen_diamond () =
  let g, _, _, _, _, _ = diamond () in
  let paths = Paths.k_shortest_paths g 0 3 3 in
  Alcotest.(check int) "three distinct paths" 3 (List.length paths);
  let weights = List.map Paths.path_weight paths in
  Alcotest.(check (list (float 1e-9))) "sorted weights" [ 2.0; 4.0; 5.0 ] weights

let test_yen_k_larger_than_paths () =
  let g = Graph.create () in
  Graph.add_nodes g 2;
  ignore (Graph.add_edge g 0 1 ~weight:1.0 ~capacity:1.0);
  Alcotest.(check int) "only one path exists" 1
    (List.length (Paths.k_shortest_paths g 0 1 5))

let qcheck_yen_sorted_and_distinct =
  QCheck.Test.make ~name:"yen paths sorted and loopless" ~count:30
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g = random_graph seed ~nodes:9 ~edges:8 in
      let paths = Paths.k_shortest_paths g 0 8 4 in
      let weights = List.map Paths.path_weight paths in
      let sorted = List.sort compare weights in
      let ids = List.map (List.map (fun (e : Graph.edge) -> e.id)) paths in
      let distinct = List.sort_uniq compare ids in
      let loopless p =
        let nodes = Paths.path_nodes ~src:0 p in
        List.length (List.sort_uniq compare nodes) = List.length nodes
      in
      weights = sorted
      && List.length distinct = List.length ids
      && List.for_all loopless paths)

(* --- Bridges -------------------------------------------------------------- *)

let test_bridges_chain () =
  let g = Graph.create () in
  Graph.add_nodes g 3;
  let a = Graph.add_edge g 0 1 ~weight:1.0 ~capacity:1.0 in
  let b = Graph.add_edge g 1 2 ~weight:1.0 ~capacity:1.0 in
  Alcotest.(check (list int)) "both are bridges" [ a; b ] (Paths.bridges g)

let test_bridges_cycle () =
  let g = Graph.create () in
  Graph.add_nodes g 3;
  ignore (Graph.add_edge g 0 1 ~weight:1.0 ~capacity:1.0);
  ignore (Graph.add_edge g 1 2 ~weight:1.0 ~capacity:1.0);
  ignore (Graph.add_edge g 2 0 ~weight:1.0 ~capacity:1.0);
  Alcotest.(check (list int)) "no bridges in a cycle" [] (Paths.bridges g)

let test_bridges_parallel_edges () =
  let g = Graph.create () in
  Graph.add_nodes g 2;
  ignore (Graph.add_edge g 0 1 ~weight:1.0 ~capacity:1.0);
  ignore (Graph.add_edge g 0 1 ~weight:1.0 ~capacity:1.0);
  Alcotest.(check (list int)) "parallel edges are not bridges" []
    (Paths.bridges g)

(* --- Max flow -------------------------------------------------------------- *)

let test_max_flow_diamond () =
  let g, _, _, _, _, _ = diamond () in
  let r = Flow.max_flow g 0 3 in
  (* 10 via top, 5 via bottom, 1 via chord *)
  check_float "flow value" 16.0 r.Flow.value

let test_max_flow_bottleneck () =
  let g = Graph.create () in
  Graph.add_nodes g 3;
  ignore (Graph.add_edge g 0 1 ~weight:1.0 ~capacity:100.0);
  let bottleneck = Graph.add_edge g 1 2 ~weight:1.0 ~capacity:3.0 in
  let r = Flow.max_flow g 0 2 in
  check_float "bottleneck limits" 3.0 r.Flow.value;
  Alcotest.(check (list int)) "cut is the bottleneck" [ bottleneck ]
    r.Flow.cut_edges

let test_max_flow_disconnected () =
  let g = Graph.create () in
  Graph.add_nodes g 2;
  let r = Flow.max_flow g 0 1 in
  check_float "zero flow" 0.0 r.Flow.value

let qcheck_maxflow_equals_mincut =
  QCheck.Test.make ~name:"max-flow = min-cut capacity" ~count:40
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g = random_graph seed ~nodes:8 ~edges:10 in
      let r = Flow.max_flow g 0 7 in
      Float.abs (r.Flow.value -. Flow.cut_capacity g r.Flow.cut_edges) < 1e-6)

let qcheck_maxflow_bounded_by_degree_capacity =
  QCheck.Test.make ~name:"max-flow bounded by incident capacity" ~count:40
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g = random_graph seed ~nodes:8 ~edges:10 in
      let r = Flow.max_flow g 0 7 in
      let cap_at v =
        List.fold_left
          (fun acc (e : Graph.edge) -> acc +. e.capacity)
          0.0 (Graph.incident g v)
      in
      r.Flow.value <= cap_at 0 +. 1e-9 && r.Flow.value <= cap_at 7 +. 1e-9)

(* --- Sparse (CSR) ---------------------------------------------------------- *)

let test_sparse_matches_neighbors () =
  let g = random_graph 77 ~nodes:8 ~edges:12 in
  let csr = Sparse.of_graph g in
  Alcotest.(check int) "node count" (Graph.node_count g) csr.Sparse.nodes;
  Alcotest.(check int) "edge count" (Graph.edge_count g) csr.Sparse.edges;
  for u = 0 to Graph.node_count g - 1 do
    let row =
      List.init
        (csr.Sparse.row_start.{u + 1} - csr.Sparse.row_start.{u})
        (fun i ->
          let k = csr.Sparse.row_start.{u} + i in
          (csr.Sparse.col.{k}, csr.Sparse.eid.{k}, csr.Sparse.weight.{k}))
    in
    let adj =
      List.map
        (fun (v, (e : Graph.edge)) -> (v, e.Graph.id, e.Graph.weight))
        (Graph.neighbors g u)
    in
    Alcotest.(check (list (triple int int (float 0.0))))
      (Printf.sprintf "row %d equals Graph.neighbors order" u)
      adj row
  done

let test_sparse_memoized_and_invalidated () =
  let g = random_graph 78 ~nodes:6 ~edges:8 in
  let a = Sparse.of_graph g in
  let b = Sparse.of_graph g in
  Alcotest.(check bool) "same compiled view reused" true (a == b);
  ignore (Graph.add_edge g 0 1 ~weight:1.0 ~capacity:1.0);
  let c = Sparse.of_graph g in
  Alcotest.(check bool) "version bump rebuilds" true (not (a == c));
  Alcotest.(check int) "rebuilt view sees the new edge"
    (Graph.edge_count g) c.Sparse.edges

(* max_flow_without_edge must agree exactly with a from-scratch solve,
   on both its fast path (removed edge idle) and its fallback. *)
let qcheck_incremental_flow_matches_scratch =
  QCheck.Test.make ~name:"max_flow_without_edge = from-scratch max_flow"
    ~count:80
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g = random_graph seed ~nodes:8 ~edges:10 in
      let m = Graph.edge_count g in
      if m = 0 then true
      else begin
        let edge = seed * 19 mod m in
        let prev = Flow.max_flow g 0 7 in
        let inc = Flow.max_flow_without_edge g 0 7 ~prev ~edge in
        let scratch = Flow.max_flow ~enabled:(fun id -> id <> edge) g 0 7 in
        Float.abs (inc.Flow.value -. scratch.Flow.value) < 1e-6
        && Float.abs inc.Flow.edge_flow.(edge) < 1e-9
        && Float.abs
             (inc.Flow.value -. Flow.cut_capacity g inc.Flow.cut_edges)
           < 1e-6
        && not (List.mem edge inc.Flow.cut_edges)
      end)

let qcheck_edge_flow_conserves =
  QCheck.Test.make ~name:"edge_flow: net outflow at source = value" ~count:40
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g = random_graph seed ~nodes:8 ~edges:10 in
      let r = Flow.max_flow g 0 7 in
      let net_out v =
        List.fold_left
          (fun acc (e : Graph.edge) ->
            if e.Graph.u = v then acc +. r.Flow.edge_flow.(e.Graph.id)
            else acc -. r.Flow.edge_flow.(e.Graph.id))
          0.0 (Graph.incident g v)
      in
      Float.abs (net_out 0 -. r.Flow.value) < 1e-6
      && Float.abs (net_out 7 +. r.Flow.value) < 1e-6)

let suite =
  [
    Alcotest.test_case "graph basics" `Quick test_graph_basics;
    Alcotest.test_case "graph rejects bad edges" `Quick test_graph_rejects_bad_edges;
    Alcotest.test_case "parallel edges" `Quick test_graph_parallel_edges;
    Alcotest.test_case "fold over edges" `Quick test_fold_edges;
    Alcotest.test_case "heap sorted pops" `Quick test_heap_sorted_pops;
    QCheck_alcotest.to_alcotest qcheck_heap_property;
    Alcotest.test_case "dijkstra diamond" `Quick test_dijkstra_diamond;
    Alcotest.test_case "shortest path structure" `Quick test_shortest_path_structure;
    Alcotest.test_case "shortest path enabled mask" `Quick test_shortest_path_respects_enabled;
    Alcotest.test_case "disconnected graphs" `Quick test_disconnected;
    Alcotest.test_case "hop distance" `Quick test_hop_distance;
    QCheck_alcotest.to_alcotest qcheck_dijkstra_matches_bfs_on_unit_weights;
    Alcotest.test_case "yen on diamond" `Quick test_yen_diamond;
    Alcotest.test_case "yen exhausts paths" `Quick test_yen_k_larger_than_paths;
    QCheck_alcotest.to_alcotest qcheck_yen_sorted_and_distinct;
    Alcotest.test_case "bridges on a chain" `Quick test_bridges_chain;
    Alcotest.test_case "no bridges on a cycle" `Quick test_bridges_cycle;
    Alcotest.test_case "parallel edges never bridge" `Quick test_bridges_parallel_edges;
    Alcotest.test_case "max flow diamond" `Quick test_max_flow_diamond;
    Alcotest.test_case "max flow bottleneck & cut" `Quick test_max_flow_bottleneck;
    Alcotest.test_case "max flow disconnected" `Quick test_max_flow_disconnected;
    QCheck_alcotest.to_alcotest qcheck_maxflow_equals_mincut;
    QCheck_alcotest.to_alcotest qcheck_maxflow_bounded_by_degree_capacity;
    Alcotest.test_case "sparse CSR matches neighbors" `Quick
      test_sparse_matches_neighbors;
    Alcotest.test_case "sparse memo keyed on version" `Quick
      test_sparse_memoized_and_invalidated;
    QCheck_alcotest.to_alcotest qcheck_incremental_flow_matches_scratch;
    QCheck_alcotest.to_alcotest qcheck_edge_flow_conserves;
  ]
