(* Tests for Poc_market.Epochs: repeated auctions, cost drift, recalls
   and supplier concentration. *)

module Epochs = Poc_market.Epochs
module Vcg = Poc_auction.Vcg

let plan () = Lazy.force Fixtures.small_plan

let run_market ?(epochs = 6) ?(trend = -0.03) ?(strategies = []) () =
  Epochs.run (plan ())
    {
      Epochs.epochs;
      cost_trend = trend;
      cost_volatility = 0.02;
      demand_growth = 1.0;
      strategies;
      seed = 3;
    }

let test_epoch_count () =
  Alcotest.(check int) "one result per epoch" 6 (List.length (run_market ()))

let test_epochs_numbered () =
  List.iteri
    (fun i r -> Alcotest.(check int) "sequential" (i + 1) r.Epochs.epoch)
    (run_market ())

let test_no_failures_on_healthy_market () =
  List.iter
    (fun r ->
      Alcotest.(check bool) "selection found" true (r.Epochs.failure = None))
    (run_market ())

let test_spend_tracks_declining_costs () =
  let results = run_market ~epochs:8 ~trend:(-0.05) () in
  match (results, List.rev results) with
  | first :: _, last :: _ ->
    Alcotest.(check bool) "POC spend falls with market prices" true
      (last.Epochs.spend < first.Epochs.spend)
  | _, _ -> Alcotest.fail "results expected"

let test_rising_costs_raise_spend () =
  let results = run_market ~epochs:8 ~trend:0.05 () in
  match (results, List.rev results) with
  | first :: _, last :: _ ->
    Alcotest.(check bool) "spend rises" true
      (last.Epochs.spend > first.Epochs.spend)
  | _, _ -> Alcotest.fail "results expected"

let test_hhi_range () =
  List.iter
    (fun r ->
      Alcotest.(check bool) "HHI in (0,1]" true
        (r.Epochs.supplier_hhi > 0.0 && r.Epochs.supplier_hhi <= 1.0))
    (run_market ())

let test_recall_strategy_counts () =
  let results =
    run_market ~strategies:[ (0, Epochs.Recallable 0.5) ] ()
  in
  let any_recalls =
    List.exists (fun r -> r.Epochs.recalled_links > 0) results
  in
  Alcotest.(check bool) "recalls happen" true any_recalls;
  List.iter
    (fun r ->
      Alcotest.(check bool) "still clears" true (r.Epochs.failure = None))
    results

let test_markup_strategy_raises_spend () =
  let honest = run_market () in
  let marked =
    run_market
      ~strategies:
        (List.init (Array.length (plan ()).Poc_core.Planner.problem.Vcg.bids)
           (fun bp -> (bp, Epochs.Markup 0.5)))
      ()
  in
  let avg results =
    let xs = List.map (fun r -> r.Epochs.spend) results in
    List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)
  in
  Alcotest.(check bool) "universal markup costs the POC more" true
    (avg marked > avg honest)

let test_config_validation () =
  Alcotest.check_raises "epochs must be positive"
    (Invalid_argument "Epochs: epochs must be positive") (fun () ->
      ignore
        (Epochs.run (plan ()) { Epochs.default_config with Epochs.epochs = 0 }))

let test_config_validation_lists_every_problem () =
  (* One message naming all three bad fields, not just the first. *)
  let bad =
    {
      Epochs.default_config with
      Epochs.epochs = 0;
      demand_growth = -1.0;
      strategies = [ (2, Epochs.Recallable 1.5) ];
    }
  in
  match Epochs.validate_config bad with
  | Ok () -> Alcotest.fail "expected a validation error"
  | Error msg ->
    let contains needle =
      let nl = String.length needle and hl = String.length msg in
      let rec go i = i + nl <= hl && (String.sub msg i nl = needle || go (i + 1)) in
      Alcotest.(check bool)
        (Printf.sprintf "mentions %S" needle)
        true (go 0)
    in
    contains "epochs must be positive";
    contains "demand_growth must be positive";
    contains "recall fraction for BP 2"

let test_empty_offer_pool_reported () =
  (* Recall every BP link each epoch and strip the contracted virtual
     links: the pool is empty and the failure reason says so. *)
  let plan = plan () in
  let plan =
    {
      plan with
      Poc_core.Planner.problem =
        { plan.Poc_core.Planner.problem with Vcg.virtual_prices = [] };
    }
  in
  let n_bps = Array.length plan.Poc_core.Planner.problem.Vcg.bids in
  let results =
    Epochs.run plan
      {
        Epochs.default_config with
        Epochs.epochs = 3;
        strategies = List.init n_bps (fun bp -> (bp, Epochs.Recallable 1.0));
        seed = 3;
      }
  in
  List.iter
    (fun r ->
      Alcotest.(check bool) "empty pool" true
        (r.Epochs.failure = Some Epochs.Empty_offer_pool))
    results

let test_supplier_hhi_of_outcome () =
  let outcome = (plan ()).Poc_core.Planner.outcome in
  let h = Epochs.supplier_hhi outcome in
  Alcotest.(check bool) "in (0,1]" true (h > 0.0 && h <= 1.0)

let test_result_codec_roundtrip () =
  let results =
    Epochs.run (plan ()) { Epochs.default_config with Epochs.epochs = 3; seed = 5 }
  in
  Alcotest.(check bool) "fixture produced results" true (results <> []);
  List.iter
    (fun r ->
      match Epochs.decode_result (Epochs.encode_result r) with
      | Ok r' ->
        Alcotest.(check bool)
          (Printf.sprintf "epoch %d round-trips" r.Epochs.epoch)
          true
          (compare r r' = 0)
      | Error msg -> Alcotest.failf "decode failed: %s" msg)
    results

let test_result_codec_preserves_nan_sentinels () =
  let failed =
    {
      Epochs.epoch = 4;
      spend = Float.nan;
      price_per_gbps = Float.nan;
      selected_links = 0;
      recalled_links = 3;
      supplier_hhi = Float.nan;
      failure = Some Epochs.Empty_offer_pool;
    }
  in
  match Epochs.decode_result (Epochs.encode_result failed) with
  | Ok r ->
    (* structural compare treats NaN = NaN, which is what we want here *)
    Alcotest.(check bool) "failed epoch round-trips, NaNs intact" true
      (compare r failed = 0)
  | Error msg -> Alcotest.failf "decode failed: %s" msg

let test_result_codec_rejects_corruption () =
  let enc =
    Epochs.encode_result
      {
        Epochs.epoch = 1;
        spend = 10.0;
        price_per_gbps = 1.0;
        selected_links = 2;
        recalled_links = 0;
        supplier_hhi = 0.5;
        failure = None;
      }
  in
  let bad = Bytes.of_string enc in
  Bytes.set bad
    (Bytes.length bad - 1)
    (Char.chr (Char.code (Bytes.get bad (Bytes.length bad - 1)) lxor 0xFF));
  (match Epochs.decode_result (Bytes.to_string bad) with
  | Ok _ -> Alcotest.fail "a flipped byte must not decode"
  | Error _ -> ());
  (match Epochs.decode_result "" with
  | Ok _ -> Alcotest.fail "an empty record must not decode"
  | Error _ -> ());
  match Epochs.decode_result (String.sub enc 0 (String.length enc - 3)) with
  | Ok _ -> Alcotest.fail "a truncated record must not decode"
  | Error _ -> ()

let suite =
  [
    Alcotest.test_case "epoch count" `Quick test_epoch_count;
    Alcotest.test_case "epochs numbered" `Quick test_epochs_numbered;
    Alcotest.test_case "no failures when healthy" `Quick
      test_no_failures_on_healthy_market;
    Alcotest.test_case "spend tracks declining costs" `Quick
      test_spend_tracks_declining_costs;
    Alcotest.test_case "rising costs raise spend" `Quick test_rising_costs_raise_spend;
    Alcotest.test_case "HHI range" `Quick test_hhi_range;
    Alcotest.test_case "recall strategy" `Quick test_recall_strategy_counts;
    Alcotest.test_case "markup raises spend" `Quick test_markup_strategy_raises_spend;
    Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "config validation lists every problem" `Quick
      test_config_validation_lists_every_problem;
    Alcotest.test_case "empty offer pool reported" `Quick
      test_empty_offer_pool_reported;
    Alcotest.test_case "supplier HHI of outcome" `Quick test_supplier_hhi_of_outcome;
    Alcotest.test_case "epoch result codec round-trip" `Quick
      test_result_codec_roundtrip;
    Alcotest.test_case "epoch result codec preserves NaN sentinels" `Quick
      test_result_codec_preserves_nan_sentinels;
    Alcotest.test_case "epoch result codec rejects corruption" `Quick
      test_result_codec_rejects_corruption;
  ]
