let () =
  Alcotest.run "poc"
    [
      ("util", Test_util.suite);
      ("graph", Test_graph.suite);
      ("topology", Test_topology.suite);
      ("traffic", Test_traffic.suite);
      ("mcf", Test_mcf.suite);
      ("auction", Test_auction.suite);
      ("econ", Test_econ.suite);
      ("baseline", Test_baseline.suite);
      ("core", Test_core.suite);
      ("sim", Test_sim.suite);
      ("market", Test_market.suite);
      ("federation", Test_federation.suite);
      ("resilience", Test_resilience.suite);
      ("fleet", Test_fleet.suite);
      ("daemon", Test_daemon.suite);
      ("registry", Test_registry.suite);
      ("obs", Test_obs.suite);
    ]
