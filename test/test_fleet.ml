(* Fleet layer: chaos-matrix generator and the scenario-fleet driver. *)

module Chaos_matrix = Poc_fleet.Chaos_matrix
module Driver = Poc_fleet.Driver
module Fault = Poc_resilience.Fault
module Pool = Poc_util.Pool

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let with_tmp_root f =
  let path = Filename.temp_file "poc_fleet" "" in
  Sys.remove path;
  let rm_rf dir =
    if Sys.file_exists dir && Sys.is_directory dir then begin
      let rec go d =
        Array.iter
          (fun name ->
            let p = Filename.concat d name in
            if Sys.is_directory p then go p else Sys.remove p)
          (Sys.readdir d);
        Unix.rmdir d
      in
      go dir
    end
  in
  Fun.protect ~finally:(fun () -> rm_rf path) (fun () -> f path)

let full_axes =
  { Chaos_matrix.with_crash = true; with_storage = true; with_degrade = true }

let none_axes =
  { Chaos_matrix.with_crash = false; with_storage = false; with_degrade = false }

(* Small but real: every cell still runs a whole supervised month. *)
let small_config store =
  { (Driver.default_config ~store) with
    Driver.months = 6;
    seed = 11;
    topologies = 2;
    sites = 16;
    bps = 5;
    epochs = 4;
    segment_bytes = 1024;
    snapshot_every = 2;
  }

(* --- chaos matrix --- *)

let test_matrix_spec_parsing () =
  List.iter
    (fun (spec, expected) ->
      match Chaos_matrix.axes_of_spec spec with
      | Error msg -> Alcotest.failf "%S rejected: %s" spec msg
      | Ok axes ->
        Alcotest.(check bool) (Printf.sprintf "%S parses" spec) true
          (axes = expected))
    [
      ("none", none_axes);
      ("full", full_axes);
      ("crash", { none_axes with Chaos_matrix.with_crash = true });
      ("storage+degrade",
       { full_axes with Chaos_matrix.with_crash = false });
      ("degrade+crash+storage", full_axes);
      (" Crash + Storage ",
       { full_axes with Chaos_matrix.with_degrade = false });
    ];
  (match Chaos_matrix.axes_of_spec "crash+disk" with
  | Ok _ -> Alcotest.fail "bad token accepted"
  | Error msg ->
    Alcotest.(check bool) "error names the token" true (contains msg "disk"));
  List.iter
    (fun axes ->
      match Chaos_matrix.axes_of_spec (Chaos_matrix.spec_of_axes axes) with
      | Ok roundtrip ->
        Alcotest.(check bool) "spec_of_axes round-trips" true (roundtrip = axes)
      | Error msg -> Alcotest.failf "canonical spec rejected: %s" msg)
    [ none_axes; full_axes; { none_axes with Chaos_matrix.with_storage = true } ]

let test_matrix_cells_cross () =
  let cells = Chaos_matrix.cells full_axes in
  Alcotest.(check int) "full matrix is 4 x 5 x 4" 80 (List.length cells);
  let names = List.map Chaos_matrix.cell_name cells in
  Alcotest.(check int) "cell names unique" 80
    (List.length (List.sort_uniq compare names));
  Alcotest.(check bool) "baseline cell present" true
    (List.mem "plain" names);
  Alcotest.(check int) "disabled axes leave the baseline" 1
    (List.length (Chaos_matrix.cells none_axes));
  List.iter2
    (fun cell name ->
      Alcotest.(check bool)
        (Printf.sprintf "has_kills consistent for %s" name)
        (Chaos_matrix.has_kills cell)
        (contains name "crash" || contains name "short_write"
        || contains name "torn_rename" || contains name "lying_fsync"
        || contains name "corrupt_byte"))
    cells names

let test_matrix_specs () =
  let plan = Lazy.force Fixtures.small_plan in
  let wan = plan.Poc_core.Planner.wan in
  let cells = Chaos_matrix.cells full_axes in
  (* Every cell compiles against a real WAN, and kill epochs stay
     distinct so a crash+storage cell fires both in order. *)
  List.iter
    (fun cell ->
      let specs = Chaos_matrix.specs cell ~wan ~epochs:6 ~salt:3 in
      (match Fault.validate wan specs with
      | Ok () -> ()
      | Error msg ->
        Alcotest.failf "cell %s invalid: %s" (Chaos_matrix.cell_name cell) msg);
      let kill_epochs =
        List.filter_map
          (function
            | Fault.Crash { at_epoch; _ } | Fault.Storage { at_epoch; _ } ->
              Some at_epoch
            | _ -> None)
          specs
      in
      Alcotest.(check bool)
        (Printf.sprintf "kill epochs distinct in %s"
           (Chaos_matrix.cell_name cell))
        true
        (List.length kill_epochs
        = List.length (List.sort_uniq compare kill_epochs)))
    cells;
  match Chaos_matrix.specs (List.hd cells) ~wan ~epochs:3 ~salt:0 with
  | _ -> Alcotest.fail "epochs < 4 must be rejected"
  | exception Invalid_argument _ -> ()

(* --- RESULT frames --- *)

let sample_outcome =
  {
    Driver.completed = true;
    kills = 2;
    recovered =
      { Driver.r_crash = 1; r_short_write = 0; r_torn_rename = 1;
        r_lying_fsync = 0; r_corrupt_byte = 0 };
    scrub_truncated = 3;
    scrub_quarantined = 1;
    restarts = 0;
    healthy = 5;
    degraded = 1;
    carried = 0;
    blackout = 0;
    incidents = 1;
    violations = 0;
    ladder_activations = 1;
    total_spend = 123456.789;
    mean_price = 1.5;
    mean_delivered = 0.998;
    pob = 0.25;
  }

let test_result_roundtrip () =
  let cfg = small_config "unused" in
  let scen = Driver.scenario cfg 3 in
  let data = Driver.encode_outcome scen sample_outcome in
  (match Driver.decode_outcome scen data with
  | Some o ->
    Alcotest.(check bool) "round-trips" true (o = sample_outcome)
  | None -> Alcotest.fail "own frame must decode");
  (match Driver.decode_outcome (Driver.scenario cfg 4) data with
  | Some _ -> Alcotest.fail "a mislaid RESULT must not decode"
  | None -> ());
  (match
     Driver.decode_outcome scen (String.sub data 0 (String.length data - 1))
   with
  | Some _ -> Alcotest.fail "a torn RESULT must not decode"
  | None -> ());
  match Driver.decode_outcome scen (data ^ "x") with
  | Some _ -> Alcotest.fail "trailing bytes must not decode"
  | None -> ()

(* --- the driver --- *)

let test_fleet_end_to_end () =
  with_tmp_root (fun root ->
      let cfg = small_config root in
      match Driver.run cfg with
      | Error msg -> Alcotest.failf "fleet failed: %s" msg
      | Ok (Driver.Interrupted _) -> Alcotest.fail "no kill-after requested"
      | Ok (Driver.Finished report) ->
        Alcotest.(check int) "six outcomes in scenario order" 6
          (List.length report.Driver.outcomes);
        List.iteri
          (fun i ((scen : Driver.scenario), (o : Driver.outcome)) ->
            Alcotest.(check int) "scenario order" i scen.Driver.index;
            Alcotest.(check bool)
              (Printf.sprintf "%s completed" scen.Driver.id)
              true o.Driver.completed;
            Alcotest.(check bool)
              (Printf.sprintf "%s kills match its cell" scen.Driver.id)
              true
              (Chaos_matrix.has_kills scen.Driver.cell = (o.Driver.kills > 0));
            Alcotest.(check bool)
              (Printf.sprintf "%s store on disk" scen.Driver.id)
              true
              (Sys.is_directory (Filename.concat root scen.Driver.id)))
          report.Driver.outcomes;
        (* Scenario 5 is the crash+storage cell: both kills must fire
           inside one fleet run — the kill chain at work. *)
        let (scen5, o5) = List.nth report.Driver.outcomes 5 in
        Alcotest.(check string) "cell 5 is the crash+short_write cell"
          "crash_pre_auction+short_write"
          (Chaos_matrix.cell_name scen5.Driver.cell);
        Alcotest.(check int) "both kill points fired" 2 o5.Driver.kills;
        Alcotest.(check int) "crash survived" 1
          o5.Driver.recovered.Driver.r_crash;
        Alcotest.(check int) "short write survived" 1
          o5.Driver.recovered.Driver.r_short_write;
        let json = Driver.report_to_json report in
        List.iter
          (fun needle ->
            Alcotest.(check bool)
              (Printf.sprintf "json has %s" needle)
              true (contains json needle))
          [ "\"survival\""; "\"recovered\""; "\"welfare\""; "\"cells\"";
            "\"completed\":6"; "\"unrecovered\":0" ];
        Alcotest.(check bool) "json carries no store path" false
          (contains json root))

let test_fleet_rejects_dirty_root_and_mismatch () =
  with_tmp_root (fun root ->
      let cfg = { (small_config root) with Driver.months = 1 } in
      (match Driver.run cfg with
      | Ok (Driver.Finished _) -> ()
      | Ok (Driver.Interrupted _) | Error _ ->
        Alcotest.fail "first run should finish");
      (match Driver.run cfg with
      | Error msg ->
        Alcotest.(check bool) "fresh run refuses a claimed root" true
          (contains msg "already holds a fleet")
      | Ok _ -> Alcotest.fail "fresh run must refuse a claimed root");
      match Driver.run ~resume:true { cfg with Driver.seed = 12 } with
      | Error msg ->
        Alcotest.(check bool) "resume names the mismatched field" true
          (contains msg "seed")
      | Ok _ -> Alcotest.fail "resume must check the manifest")

(* The acceptance property: the aggregate report's bytes do not depend
   on the pool size, nor on where a kill-and-resume split the fleet. *)
let qcheck_fleet_determinism =
  QCheck.Test.make ~name:"fleet report byte-identical: jobs x kill+resume"
    ~count:3
    QCheck.(pair (int_range 0 1000) (int_range 1 5))
    (fun (seed_offset, kill_after) ->
      with_tmp_root (fun ref_root ->
          let cfg root =
            { (small_config root) with Driver.seed = 11 + seed_offset }
          in
          let reference =
            match Driver.run (cfg ref_root) with
            | Ok (Driver.Finished report) -> Driver.report_to_json report
            | Ok (Driver.Interrupted _) | Error _ ->
              QCheck.Test.fail_report "reference fleet failed"
          in
          List.iter
            (fun jobs ->
              with_tmp_root (fun root ->
                  Pool.with_pool ~jobs (fun pool ->
                      match Driver.run ?pool (cfg root) with
                      | Ok (Driver.Finished report) ->
                        if Driver.report_to_json report <> reference then
                          QCheck.Test.fail_reportf "jobs=%d diverged" jobs
                      | Ok (Driver.Interrupted _) | Error _ ->
                        QCheck.Test.fail_reportf "jobs=%d fleet failed" jobs)))
            [ 2; 8 ];
          with_tmp_root (fun root ->
              (match Driver.run ~kill_after (cfg root) with
              | Ok (Driver.Interrupted { completed_months }) ->
                if completed_months < kill_after then
                  QCheck.Test.fail_reportf "stopped too early: %d"
                    completed_months
              | Ok (Driver.Finished _) ->
                QCheck.Test.fail_report "kill-after did not stop the fleet"
              | Error msg ->
                QCheck.Test.fail_reportf "killed fleet failed: %s" msg);
              match Driver.run ~resume:true (cfg root) with
              | Ok (Driver.Finished report) ->
                if Driver.report_to_json report <> reference then
                  QCheck.Test.fail_report "kill+resume diverged"
                else true
              | Ok (Driver.Interrupted _) | Error _ ->
                QCheck.Test.fail_report "resume failed")))

let suite =
  [
    Alcotest.test_case "matrix: spec parsing round-trips" `Quick
      test_matrix_spec_parsing;
    Alcotest.test_case "matrix: full cross, unique names" `Quick
      test_matrix_cells_cross;
    Alcotest.test_case "matrix: specs compile, kill epochs distinct" `Quick
      test_matrix_specs;
    Alcotest.test_case "RESULT frame round-trips, rejects damage" `Quick
      test_result_roundtrip;
    Alcotest.test_case "small fleet end-to-end with kill chains" `Slow
      test_fleet_end_to_end;
    Alcotest.test_case "store root claims and manifest mismatch" `Slow
      test_fleet_rejects_dirty_root_and_mismatch;
    QCheck_alcotest.to_alcotest qcheck_fleet_determinism;
  ]
