(* Tests for Poc_auction: bid families, acceptability rules, exact and
   greedy selection, VCG payments (individual rationality and
   strategyproofness), and the collusion experiment. *)

module Graph = Poc_graph.Graph
module Bid = Poc_auction.Bid
module Acc = Poc_auction.Acceptability
module Vcg = Poc_auction.Vcg
module Collusion = Poc_auction.Collusion
module Setup = Poc_auction.Setup
module Wan = Poc_topology.Wan
module Prng = Poc_util.Prng

let check_float = Alcotest.(check (float 1e-6))

(* --- Bids ------------------------------------------------------------------ *)

let test_additive_bid () =
  let b = Bid.additive [ (0, 10.0); (1, 20.0) ] in
  check_float "pair" 30.0 (Bid.cost b [ 0; 1 ]);
  check_float "single" 10.0 (Bid.cost b [ 0 ]);
  check_float "empty" 0.0 (Bid.cost b []);
  Alcotest.(check bool) "unknown link is infinite" true
    (Bid.cost b [ 0; 7 ] = infinity);
  Alcotest.(check (list int)) "links" [ 0; 1 ] (Bid.links b)

let test_volume_discount_bid () =
  let b = Bid.volume_discount [ (0, 10.0); (1, 10.0); (2, 10.0) ] ~tiers:[ (2, 0.9); (3, 0.8) ] in
  check_float "no discount on singles" 10.0 (Bid.cost b [ 0 ]);
  check_float "two links at 0.9" 18.0 (Bid.cost b [ 0; 1 ]);
  check_float "three links at 0.8" 24.0 (Bid.cost b [ 0; 1; 2 ])

let test_bundled_bid () =
  let b = Bid.bundled [ (0, 10.0); (1, 10.0); (2, 5.0) ] ~bundles:[ ([ 0; 1 ], 4.0) ] in
  check_float "bundle rebate" 16.0 (Bid.cost b [ 0; 1 ]);
  check_float "partial bundle" 15.0 (Bid.cost b [ 0; 2 ]);
  check_float "all three" 21.0 (Bid.cost b [ 0; 1; 2 ])

let test_bid_validation () =
  Alcotest.check_raises "negative price" (Invalid_argument "Bid: bad price")
    (fun () -> ignore (Bid.additive [ (0, -1.0) ]));
  Alcotest.check_raises "duplicate id" (Invalid_argument "Bid: duplicate link id")
    (fun () -> ignore (Bid.additive [ (0, 1.0); (0, 2.0) ]));
  Alcotest.check_raises "rebate too large"
    (Invalid_argument "Bid.bundled: rebate exceeds bundle price") (fun () ->
      ignore (Bid.bundled [ (0, 1.0) ] ~bundles:[ ([ 0 ], 5.0) ]))

let test_bid_scale () =
  let b = Bid.scale (Bid.additive [ (0, 10.0) ]) 1.5 in
  check_float "scaled" 15.0 (Bid.cost b [ 0 ])

(* --- Reference instance ------------------------------------------------------

   Nodes 0,1,2.  BP0: A(0-1,$100), B(1-2,$100).  BP1: C(0-1,$120),
   D(1-2,$90), E(0-2,$250).  Virtual V(0-2,$1000).
   Demands: (0,1,5) and (1,2,5).  All capacities 10.

   Cheapest acceptable under rule #1: {A,D} at $190.
   VCG: P_BP0 = 100 + (C(SL_-0) - 190) = 100 + (210 - 190) = 120.
        P_BP1 =  90 + (200 - 190) = 100.                                     *)

let reference_problem () =
  let g = Graph.create () in
  Graph.add_nodes g 3;
  let a = Graph.add_edge g 0 1 ~weight:1.0 ~capacity:10.0 in
  let b = Graph.add_edge g 1 2 ~weight:1.0 ~capacity:10.0 in
  let c = Graph.add_edge g 0 1 ~weight:1.0 ~capacity:10.0 in
  let d = Graph.add_edge g 1 2 ~weight:1.0 ~capacity:10.0 in
  let e = Graph.add_edge g 0 2 ~weight:1.0 ~capacity:10.0 in
  let v = Graph.add_edge g 0 2 ~weight:1.0 ~capacity:20.0 in
  let problem =
    {
      Vcg.graph = g;
      demands = [ (0, 1, 5.0); (1, 2, 5.0) ];
      bids =
        [|
          Bid.additive [ (a, 100.0); (b, 100.0) ];
          Bid.additive [ (c, 120.0); (d, 90.0); (e, 250.0) ];
        |];
      virtual_prices = [ (v, 1000.0) ];
      rule = Acc.Handle_load;
    }
  in
  (problem, a, b, c, d, e, v)

let test_validate_ok () =
  let problem, _, _, _, _, _, _ = reference_problem () in
  Alcotest.(check bool) "valid" true (Vcg.validate problem = Ok ())

let test_validate_rejects_double_offer () =
  let problem, a, _, _, _, _, _ = reference_problem () in
  let bad =
    { problem with Vcg.virtual_prices = (a, 1.0) :: problem.Vcg.virtual_prices }
  in
  Alcotest.(check bool) "double offer rejected" true (Vcg.validate bad <> Ok ())

let test_link_price_and_owner () =
  let problem, a, _, _, d, _, v = reference_problem () in
  check_float "bp0 price" 100.0 (Vcg.link_price problem a);
  check_float "bp1 price" 90.0 (Vcg.link_price problem d);
  check_float "virtual price" 1000.0 (Vcg.link_price problem v);
  Alcotest.(check (option int)) "owner a" (Some 0) (Vcg.owner_of_link problem a);
  Alcotest.(check (option int)) "virtual unowned" None (Vcg.owner_of_link problem v)

let test_selection_cost () =
  let problem, a, _, _, d, _, v = reference_problem () in
  check_float "bid + virtual" (100.0 +. 90.0 +. 1000.0)
    (Vcg.selection_cost problem [ a; d; v ])

let test_exact_selection () =
  let problem, a, _, _, d, _, _ = reference_problem () in
  match Vcg.select_exact problem with
  | None -> Alcotest.fail "feasible instance"
  | Some sel ->
    Alcotest.(check (list int)) "cheapest pair" [ a; d ] sel.Vcg.selected;
    check_float "cost" 190.0 sel.Vcg.cost

let test_greedy_feasible_and_close () =
  let problem, _, _, _, _, _, _ = reference_problem () in
  match (Vcg.select_greedy problem, Vcg.select_exact problem) with
  | Some greedy, Some exact ->
    Alcotest.(check bool) "greedy acceptable" true
      (Acc.satisfied problem.Vcg.graph ~demands:problem.Vcg.demands
         ~enabled:(fun id -> List.mem id greedy.Vcg.selected)
         problem.Vcg.rule);
    Alcotest.(check bool) "greedy >= exact" true
      (greedy.Vcg.cost >= exact.Vcg.cost -. 1e-6)
  | _, _ -> Alcotest.fail "both selections must exist"

let test_vcg_payments_reference () =
  let problem, _, _, _, _, _, _ = reference_problem () in
  match Vcg.run ~select:(fun ?banned ?cache p -> Vcg.select_exact ?banned ?cache p) problem with
  | None -> Alcotest.fail "feasible instance"
  | Some outcome ->
    check_float "C(SL)" 190.0 outcome.Vcg.selection.cost;
    check_float "P bp0" 120.0 outcome.Vcg.bp_results.(0).Vcg.payment;
    check_float "P bp1" 100.0 outcome.Vcg.bp_results.(1).Vcg.payment;
    check_float "PoB bp0" 0.2 outcome.Vcg.bp_results.(0).Vcg.pob;
    check_float "PoB bp1" (10.0 /. 90.0) outcome.Vcg.bp_results.(1).Vcg.pob;
    check_float "total spend" 220.0 outcome.Vcg.total_payment;
    check_float "no virtual selected" 0.0 outcome.Vcg.virtual_cost

let test_vcg_unselected_bp_gets_nothing () =
  let problem, a, b, _, _, _, _ = reference_problem () in
  (* Make BP1 hopeless: quadruple its prices. *)
  let bids = Array.copy problem.Vcg.bids in
  bids.(1) <- Bid.scale bids.(1) 10.0;
  let problem = { problem with Vcg.bids } in
  match Vcg.run ~select:(fun ?banned ?cache p -> Vcg.select_exact ?banned ?cache p) problem with
  | None -> Alcotest.fail "feasible"
  | Some outcome ->
    Alcotest.(check (list int)) "bp0 sweeps" [ a; b ]
      outcome.Vcg.selection.selected;
    check_float "loser payment" 0.0 outcome.Vcg.bp_results.(1).Vcg.payment;
    check_float "loser pob" 0.0 outcome.Vcg.bp_results.(1).Vcg.pob

let test_individual_rationality_reference () =
  let problem, _, _, _, _, _, _ = reference_problem () in
  match Vcg.run ~select:(fun ?banned ?cache p -> Vcg.select_exact ?banned ?cache p) problem with
  | None -> Alcotest.fail "feasible"
  | Some outcome ->
    Array.iter
      (fun (r : Vcg.bp_result) ->
        Alcotest.(check bool) "P >= bid cost" true
          (r.Vcg.payment >= r.Vcg.bid_cost -. 1e-9))
      outcome.Vcg.bp_results

(* Strategyproofness on the reference instance: scaling BP0's bid can
   never raise its utility (payment - true cost of what it serves). *)
let test_strategyproofness_reference () =
  let problem, _, _, _, _, _, _ = reference_problem () in
  let true_bid = problem.Vcg.bids.(0) in
  let utility outcome =
    let r = outcome.Vcg.bp_results.(0) in
    r.Vcg.payment -. Bid.cost true_bid r.Vcg.selected_links
  in
  let truthful =
    match Vcg.run ~select:(fun ?banned ?cache p -> Vcg.select_exact ?banned ?cache p) problem with
    | Some o -> utility o
    | None -> Alcotest.fail "feasible"
  in
  List.iter
    (fun factor ->
      let bids = Array.copy problem.Vcg.bids in
      bids.(0) <- Bid.scale true_bid factor;
      let misreport = { problem with Vcg.bids } in
      match Vcg.run ~select:(fun ?banned ?cache p -> Vcg.select_exact ?banned ?cache p) misreport with
      | None -> Alcotest.fail "still feasible"
      | Some o ->
        Alcotest.(check bool)
          (Printf.sprintf "truthful dominates x%.2f" factor)
          true
          (truthful >= utility o -. 1e-9))
    [ 0.1; 0.5; 0.8; 0.95; 1.05; 1.3; 2.0; 10.0 ]

(* --- Failure rules ------------------------------------------------------------ *)

(* Two parallel 0-1 links; under rule #2 both are needed. *)
let redundancy_problem () =
  let g = Graph.create () in
  Graph.add_nodes g 2;
  let cheap = Graph.add_edge g 0 1 ~weight:1.0 ~capacity:10.0 in
  let backup = Graph.add_edge g 0 1 ~weight:1.0 ~capacity:10.0 in
  ( {
      Vcg.graph = g;
      demands = [ (0, 1, 5.0) ];
      bids = [| Bid.additive [ (cheap, 50.0) ]; Bid.additive [ (backup, 80.0) ] |];
      virtual_prices = [];
      rule = Acc.Handle_load;
    },
    cheap,
    backup )

let test_rule1_skips_redundancy () =
  let problem, cheap, _ = redundancy_problem () in
  match Vcg.select_exact problem with
  | Some sel -> Alcotest.(check (list int)) "one link" [ cheap ] sel.Vcg.selected
  | None -> Alcotest.fail "feasible"

let test_rule2_buys_redundancy () =
  let problem, cheap, backup = redundancy_problem () in
  let problem = { problem with Vcg.rule = Acc.Single_link_failure } in
  match Vcg.select_exact problem with
  | Some sel ->
    Alcotest.(check (list int)) "both links" [ cheap; backup ] sel.Vcg.selected
  | None -> Alcotest.fail "feasible with both"

let test_rule3_per_pair_scenario () =
  let problem, cheap, backup = redundancy_problem () in
  let enabled _ = true in
  let scenario = Acc.per_pair_failure_scenario problem.Vcg.graph ~enabled in
  (* Equal capacities: the lower id is the designated victim. *)
  Alcotest.(check (list int)) "victim" [ min cheap backup ] scenario

let test_rule3_selection () =
  let problem, cheap, backup = redundancy_problem () in
  let problem = { problem with Vcg.rule = Acc.Per_pair_failure } in
  match Vcg.select_exact problem with
  | Some sel ->
    Alcotest.(check (list int)) "needs both" [ cheap; backup ] sel.Vcg.selected
  | None -> Alcotest.fail "feasible with both"

let test_acceptability_names () =
  Alcotest.(check int) "three rules" 3 (List.length Acc.all);
  List.iter
    (fun r -> Alcotest.(check bool) "named" true (String.length (Acc.name r) > 0))
    Acc.all

(* --- Collusion ------------------------------------------------------------------ *)

let test_withholding_unselected_links () =
  let problem, _, b, _, _, _, _ = reference_problem () in
  let select ?banned ?cache p = Vcg.select_exact ?banned ?cache p in
  match Vcg.run ~select problem with
  | None -> Alcotest.fail "feasible"
  | Some outcome -> (
    (* BP0's unselected link is B. *)
    match Collusion.withhold_unselected problem outcome ~bp:0 with
    | None -> Alcotest.fail "still feasible"
    | Some report ->
      Alcotest.(check (list int)) "withholds B" [ b ] report.Collusion.withheld_links;
      Alcotest.(check bool) "selection unchanged" false
        report.Collusion.selection_changed;
      check_float "own payment unchanged"
        report.Collusion.payment_before.(0)
        report.Collusion.payment_after.(0);
      Alcotest.(check bool) "rival's payment can only rise" true
        (report.Collusion.payment_after.(1)
        >= report.Collusion.payment_before.(1) -. 1e-9))

(* The collusion module uses select_greedy internally; run it on the
   reference instance end-to-end as a smoke check. *)
let test_collusion_greedy_path () =
  let problem, _, _, _, _, _, _ = reference_problem () in
  match Vcg.run problem with
  | None -> Alcotest.fail "feasible"
  | Some outcome -> (
    match Collusion.all_withhold_unselected problem outcome with
    | None -> Alcotest.fail "coordinated withholding keeps feasibility here"
    | Some report ->
      Alcotest.(check int) "marker id" (-1) report.Collusion.withholder)


(* --- Pay-as-bid and warm start ------------------------------------------------ *)

let test_pay_as_bid_reference () =
  let problem, _, _, _, _, _, _ = reference_problem () in
  match Vcg.run_pay_as_bid ~select:(fun ?banned ?cache p -> Vcg.select_exact ?banned ?cache p) problem with
  | None -> Alcotest.fail "feasible"
  | Some o ->
    check_float "paid exactly the bids" 190.0 o.Vcg.total_payment;
    Array.iter
      (fun (r : Vcg.bp_result) ->
        check_float "payment = bid" r.Vcg.bid_cost r.Vcg.payment;
        check_float "pob zero" 0.0 r.Vcg.pob)
      o.Vcg.bp_results

let test_select_warm_repairs () =
  let problem, a, b, _, d, _, _ = reference_problem () in
  (* Start from the optimal {a, d} but ban BP1 (c, d, e): the warm
     start must repair with BP0's b. *)
  let base = { Vcg.selected = [ a; d ]; cost = 190.0 } in
  let bp1_links = Bid.links problem.Vcg.bids.(1) in
  let banned id = List.mem id bp1_links in
  match Vcg.select_warm ~banned ~base problem with
  | None -> Alcotest.fail "repairable"
  | Some s ->
    Alcotest.(check bool) "keeps a" true (List.mem a s.Vcg.selected);
    Alcotest.(check bool) "no banned links" true
      (List.for_all (fun id -> not (banned id)) s.Vcg.selected);
    Alcotest.(check bool) "acceptable" true
      (Acc.satisfied problem.Vcg.graph ~demands:problem.Vcg.demands
         ~enabled:(fun id -> List.mem id s.Vcg.selected)
         problem.Vcg.rule);
    Alcotest.(check bool) "adds b" true (List.mem b s.Vcg.selected)

let test_select_warm_noop_when_acceptable () =
  let problem, a, _, _, d, _, _ = reference_problem () in
  let base = { Vcg.selected = [ a; d ]; cost = 190.0 } in
  match Vcg.select_warm ~base problem with
  | None -> Alcotest.fail "base is acceptable"
  | Some s ->
    check_float "cost unchanged" 190.0 s.Vcg.cost

let test_single_rankings_feasible () =
  let problem, _, _, _, _, _, _ = reference_problem () in
  List.iter
    (fun ranking ->
      match Vcg.select_greedy_single ~ranking problem with
      | None -> Alcotest.fail "feasible"
      | Some s ->
        Alcotest.(check bool) "acceptable" true
          (Acc.satisfied problem.Vcg.graph ~demands:problem.Vcg.demands
             ~enabled:(fun id -> List.mem id s.Vcg.selected)
             problem.Vcg.rule))
    [ `Unit_price; `Absolute_price ]


let test_volume_discount_in_mechanism () =
  (* BP0 offers both links with a 2-link discount that beats BP1's mix:
     the exact optimizer must price subsets with Cα, not per-link sums. *)
  let g = Graph.create () in
  Graph.add_nodes g 3;
  let a = Graph.add_edge g 0 1 ~weight:1.0 ~capacity:10.0 in
  let b = Graph.add_edge g 1 2 ~weight:1.0 ~capacity:10.0 in
  let c = Graph.add_edge g 0 1 ~weight:1.0 ~capacity:10.0 in
  let d = Graph.add_edge g 1 2 ~weight:1.0 ~capacity:10.0 in
  let problem =
    {
      Vcg.graph = g;
      demands = [ (0, 1, 5.0); (1, 2, 5.0) ];
      bids =
        [|
          (* 110 + 110 alone, but 176 for the pair (20% off). *)
          Bid.volume_discount [ (a, 110.0); (b, 110.0) ] ~tiers:[ (2, 0.8) ];
          Bid.additive [ (c, 100.0); (d, 100.0) ];
        |];
      virtual_prices = [];
      rule = Acc.Handle_load;
    }
  in
  match Vcg.select_exact problem with
  | None -> Alcotest.fail "feasible"
  | Some sel ->
    Alcotest.(check (list int)) "bundle wins" [ a; b ] sel.Vcg.selected;
    check_float "discounted cost" 176.0 sel.Vcg.cost;
    (match Vcg.run ~select:(fun ?banned ?cache p -> Vcg.select_exact ?banned ?cache p) problem with
    | None -> Alcotest.fail "mechanism"
    | Some o ->
      (* Pivot: without BP0 the best is {c,d} at 200 -> P0 = 176 + 24. *)
      check_float "bundle payment" 200.0 o.Vcg.bp_results.(0).Vcg.payment;
      check_float "loser unpaid" 0.0 o.Vcg.bp_results.(1).Vcg.payment)

(* --- Setup glue ------------------------------------------------------------------- *)

let small_wan =
  lazy
    (Wan.generate
       ~params:
         {
           Wan.default_params with
           Wan.n_sites = 24;
           n_operators = 10;
           n_bps = 6;
           operator_min_sites = 5;
           operator_max_sites = 12;
           colocation_threshold = 2;
           external_attachments = 4;
         }
       ~seed:11 ())

let test_setup_problem_valid () =
  let wan = Lazy.force small_wan in
  let matrix =
    Poc_traffic.Matrix.gravity (Prng.create 3) wan ~total_gbps:200.0 ()
  in
  let problem = Setup.problem wan matrix ~rule:Acc.Handle_load in
  Alcotest.(check bool) "valid" true (Vcg.validate problem = Ok ());
  Alcotest.(check int) "bid per bp" (Array.length wan.Wan.bps)
    (Array.length problem.Vcg.bids);
  (* Truthful bids equal the links' private costs. *)
  let bp0 = wan.Wan.bps.(0) in
  let link = bp0.Wan.link_ids.(0) in
  check_float "truthful price" wan.Wan.links.(link).Wan.true_cost
    (Bid.single_price problem.Vcg.bids.(0) link)

let test_setup_margin () =
  let wan = Lazy.force small_wan in
  let matrix =
    Poc_traffic.Matrix.gravity (Prng.create 3) wan ~total_gbps:200.0 ()
  in
  let problem = Setup.problem ~margin:0.2 wan matrix ~rule:Acc.Handle_load in
  let bp0 = wan.Wan.bps.(0) in
  let link = bp0.Wan.link_ids.(0) in
  check_float "20% margin" (wan.Wan.links.(link).Wan.true_cost *. 1.2)
    (Bid.single_price problem.Vcg.bids.(0) link)

(* --- Properties on random small instances ------------------------------------------ *)

let random_problem seed =
  let rng = Prng.create seed in
  let g = Graph.create () in
  let nodes = 3 + Prng.int rng 2 in
  Graph.add_nodes g nodes;
  let n_links = 5 + Prng.int rng 4 in
  let links =
    List.init n_links (fun _ ->
        let a = Prng.int rng nodes in
        let b = (a + 1 + Prng.int rng (nodes - 1)) mod nodes in
        Graph.add_edge g (min a b) (max a b) ~weight:1.0
          ~capacity:(8.0 +. (8.0 *. Prng.float rng)))
  in
  (* Ring of virtual links guarantees A(OL - La) is never empty. *)
  let virtual_prices =
    List.init nodes (fun i ->
        let v =
          Graph.add_edge g i ((i + 1) mod nodes) ~weight:1.0 ~capacity:50.0
        in
        (v, 500.0 +. (100.0 *. Prng.float rng)))
  in
  let bid_links = Array.make 2 [] in
  List.iteri (fun i id -> bid_links.(i mod 2) <- id :: bid_links.(i mod 2)) links;
  let bids =
    Array.map
      (fun ids ->
        Bid.additive
          (List.map (fun id -> (id, 20.0 +. (80.0 *. Prng.float rng))) ids))
      bid_links
  in
  let demands = ref [] in
  for _ = 1 to 3 do
    let a = Prng.int rng nodes in
    let b = (a + 1 + Prng.int rng (nodes - 1)) mod nodes in
    demands := (min a b, max a b, 1.0 +. (4.0 *. Prng.float rng)) :: !demands
  done;
  { Vcg.graph = g; demands = !demands; bids; virtual_prices; rule = Acc.Handle_load }

let qcheck_exact_beats_greedy =
  QCheck.Test.make ~name:"exact cost <= greedy cost" ~count:25
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let problem = random_problem seed in
      match (Vcg.select_exact problem, Vcg.select_greedy problem) with
      | Some exact, Some greedy -> exact.Vcg.cost <= greedy.Vcg.cost +. 1e-6
      | None, None -> true
      | Some _, None -> false (* greedy must find something if exact does *)
      | None, Some _ -> true (* greedy found it, exact...impossible *))

let qcheck_individual_rationality =
  QCheck.Test.make ~name:"VCG payment covers bid cost" ~count:25
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let problem = random_problem seed in
      match Vcg.run ~select:(fun ?banned ?cache p -> Vcg.select_exact ?banned ?cache p) problem with
      | None -> true
      | Some outcome ->
        Array.for_all
          (fun (r : Vcg.bp_result) -> r.Vcg.payment >= r.Vcg.bid_cost -. 1e-9)
          outcome.Vcg.bp_results)

let qcheck_strategyproof_random =
  QCheck.Test.make ~name:"misreporting never helps (exact VCG)" ~count:15
    QCheck.(pair (int_range 0 10_000) (float_range 0.3 3.0))
    (fun (seed, factor) ->
      let problem = random_problem seed in
      let true_bid = problem.Vcg.bids.(0) in
      let utility o =
        let r = o.Vcg.bp_results.(0) in
        r.Vcg.payment -. Bid.cost true_bid r.Vcg.selected_links
      in
      match Vcg.run ~select:(fun ?banned ?cache p -> Vcg.select_exact ?banned ?cache p) problem with
      | None -> true
      | Some truthful_outcome -> (
        let bids = Array.copy problem.Vcg.bids in
        bids.(0) <- Bid.scale true_bid factor;
        match Vcg.run ~select:(fun ?banned ?cache p -> Vcg.select_exact ?banned ?cache p) { problem with Vcg.bids } with
        | None -> true
        | Some misreport_outcome ->
          utility truthful_outcome >= utility misreport_outcome -. 1e-6))

(* Shared pools for the parallel-determinism property: spawned once and
   reused across every qcheck iteration (pools are cheap to reuse,
   expensive to spawn 50×). *)
let shared_pools =
  lazy
    (List.map
       (fun jobs -> (jobs, Poc_util.Pool.create jobs))
       [ 1; 2; 4; 8 ])

let outcomes_equal a b =
  match (a, b) with
  | None, None -> true
  | Some _, None | None, Some _ -> false
  | Some (a : Vcg.outcome), Some (b : Vcg.outcome) ->
    a.Vcg.selection.Vcg.selected = b.Vcg.selection.Vcg.selected
    && a.Vcg.selection.Vcg.cost = b.Vcg.selection.Vcg.cost
    && a.Vcg.total_payment = b.Vcg.total_payment
    && Array.for_all2
         (fun (x : Vcg.bp_result) (y : Vcg.bp_result) ->
           x.Vcg.payment = y.Vcg.payment
           && x.Vcg.pob = y.Vcg.pob
           && x.Vcg.selected_links = y.Vcg.selected_links)
         a.Vcg.bp_results b.Vcg.bp_results

let qcheck_parallel_matches_serial =
  QCheck.Test.make ~name:"Vcg.run ~pool identical to serial at any jobs"
    ~count:50
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let problem = random_problem seed in
      let serial = Vcg.run problem in
      List.for_all
        (fun (_jobs, pool) -> outcomes_equal serial (Vcg.run ~pool problem))
        (Lazy.force shared_pools))

(* The feasibility cache is pure memoization: disabling it (or changing
   the pool size under it) must change no outcome. *)
let qcheck_cache_off_matches_on =
  QCheck.Test.make ~name:"Vcg.run identical with feascache on and off"
    ~count:30
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let problem = random_problem seed in
      let with_cache on f =
        let was = Poc_auction.Feascache.enabled () in
        Poc_auction.Feascache.set_enabled on;
        Fun.protect ~finally:(fun () ->
            Poc_auction.Feascache.set_enabled was)
          f
      in
      let cached = with_cache true (fun () -> Vcg.run problem) in
      let uncached = with_cache false (fun () -> Vcg.run problem) in
      let pools = Lazy.force shared_pools in
      let pool4 = List.assoc 4 pools in
      let cached4 = with_cache true (fun () -> Vcg.run ~pool:pool4 problem) in
      let uncached4 =
        with_cache false (fun () -> Vcg.run ~pool:pool4 problem)
      in
      outcomes_equal cached uncached
      && outcomes_equal cached cached4
      && outcomes_equal cached uncached4)

(* An explicitly shared cache must also be outcome-invisible when
   threaded through the exact selector across pool sizes. *)
let qcheck_select_exact_pooled_matches_serial =
  QCheck.Test.make ~name:"select_exact ~pool identical to serial" ~count:30
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let problem = random_problem seed in
      let cache =
        Poc_auction.Feascache.create ~digest:(Vcg.problem_digest problem)
      in
      let serial = Vcg.select_exact problem in
      let selections_equal a b =
        match (a, b) with
        | None, None -> true
        | Some _, None | None, Some _ -> false
        | Some (x : Vcg.selection), Some y ->
          x.Vcg.selected = y.Vcg.selected && x.Vcg.cost = y.Vcg.cost
      in
      List.for_all
        (fun (_jobs, pool) ->
          let pooled = Vcg.select_exact ~cache ~pool problem in
          Poc_auction.Feascache.join cache;
          let warm = Vcg.select_exact ~cache ~pool problem in
          selections_equal serial pooled && selections_equal serial warm)
        (Lazy.force shared_pools))

let suite =
  [
    Alcotest.test_case "additive bid" `Quick test_additive_bid;
    Alcotest.test_case "volume discount bid" `Quick test_volume_discount_bid;
    Alcotest.test_case "bundled bid" `Quick test_bundled_bid;
    Alcotest.test_case "bid validation" `Quick test_bid_validation;
    Alcotest.test_case "bid scale" `Quick test_bid_scale;
    Alcotest.test_case "problem validates" `Quick test_validate_ok;
    Alcotest.test_case "double offer rejected" `Quick test_validate_rejects_double_offer;
    Alcotest.test_case "link price and owner" `Quick test_link_price_and_owner;
    Alcotest.test_case "selection cost" `Quick test_selection_cost;
    Alcotest.test_case "exact selection" `Quick test_exact_selection;
    Alcotest.test_case "greedy feasible and close" `Quick test_greedy_feasible_and_close;
    Alcotest.test_case "VCG payments (reference)" `Quick test_vcg_payments_reference;
    Alcotest.test_case "unselected BP gets nothing" `Quick
      test_vcg_unselected_bp_gets_nothing;
    Alcotest.test_case "individual rationality" `Quick
      test_individual_rationality_reference;
    Alcotest.test_case "strategyproofness (reference)" `Quick
      test_strategyproofness_reference;
    Alcotest.test_case "rule #1 skips redundancy" `Quick test_rule1_skips_redundancy;
    Alcotest.test_case "rule #2 buys redundancy" `Quick test_rule2_buys_redundancy;
    Alcotest.test_case "rule #3 scenario" `Quick test_rule3_per_pair_scenario;
    Alcotest.test_case "rule #3 selection" `Quick test_rule3_selection;
    Alcotest.test_case "acceptability names" `Quick test_acceptability_names;
    Alcotest.test_case "withholding unselected links" `Quick
      test_withholding_unselected_links;
    Alcotest.test_case "collusion greedy path" `Quick test_collusion_greedy_path;
    Alcotest.test_case "pay-as-bid reference" `Quick test_pay_as_bid_reference;
    Alcotest.test_case "warm start repairs" `Quick test_select_warm_repairs;
    Alcotest.test_case "warm start no-op" `Quick test_select_warm_noop_when_acceptable;
    Alcotest.test_case "single rankings feasible" `Quick test_single_rankings_feasible;
    Alcotest.test_case "volume discount in mechanism" `Quick
      test_volume_discount_in_mechanism;
    Alcotest.test_case "setup problem valid" `Quick test_setup_problem_valid;
    Alcotest.test_case "setup margin" `Quick test_setup_margin;
    QCheck_alcotest.to_alcotest qcheck_exact_beats_greedy;
    QCheck_alcotest.to_alcotest qcheck_individual_rationality;
    QCheck_alcotest.to_alcotest qcheck_strategyproof_random;
    QCheck_alcotest.to_alcotest qcheck_parallel_matches_serial;
    QCheck_alcotest.to_alcotest qcheck_cache_off_matches_on;
    QCheck_alcotest.to_alcotest qcheck_select_exact_pooled_matches_serial;
  ]
