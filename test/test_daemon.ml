(* Daemon layer: protocol parsing, admission control, the durable
   intake log, and the engine's kill-under-load recovery story. *)

module Protocol = Poc_daemon.Protocol
module Admission = Poc_daemon.Admission
module Intake = Poc_daemon.Intake
module Engine = Poc_daemon.Engine
module Supervisor = Poc_resilience.Supervisor
module Fault = Poc_resilience.Fault
module Disk = Poc_resilience.Disk
module Planner = Poc_core.Planner
module Epochs = Poc_market.Epochs
module Prng = Poc_util.Prng

let plan () = Lazy.force Fixtures.small_plan
let market = { Epochs.default_config with Epochs.epochs = 6; seed = 7 }

let empty_schedule plan =
  match Fault.compile plan.Planner.wan ~seed:2020 [] with
  | Ok s -> s
  | Error msg -> Alcotest.failf "empty schedule rejected: %s" msg

let crash_schedule plan ~at_epoch ~phase =
  match
    Fault.compile plan.Planner.wan ~seed:2020
      [ Fault.Crash { at_epoch; phase } ]
  with
  | Ok s -> s
  | Error msg -> Alcotest.failf "crash schedule rejected: %s" msg

let rm_rf dir =
  if Sys.file_exists dir && Sys.is_directory dir then begin
    let rec go d =
      Array.iter
        (fun name ->
          let p = Filename.concat d name in
          if Sys.is_directory p then go p else Sys.remove p)
        (Sys.readdir d);
      Unix.rmdir d
    in
    go dir
  end
  else if Sys.file_exists dir then Sys.remove dir

(* A fresh daemon root: store directory path + intake path, cleaned up
   afterwards. *)
let with_tmp_root f =
  let root = Filename.temp_file "poc_daemon" "" in
  Sys.remove root;
  Sys.mkdir root 0o755;
  Fun.protect
    ~finally:(fun () -> try rm_rf root with Sys_error _ -> ())
    (fun () -> f (Filename.concat root "store") (Filename.concat root "intake.log"))

let read_file path = In_channel.with_open_bin path In_channel.input_all

let store_bytes store =
  (* One comparable string covering the whole store: a single journal
     file as-is, a segmented store as every file, sorted. *)
  if Sys.is_directory store then
    Sys.readdir store |> Array.to_list |> List.sort compare
    |> List.map (fun name ->
           name ^ ":" ^ read_file (Filename.concat store name))
    |> String.concat "\n"
  else read_file store

(* --- Protocol --- *)

let test_protocol_roundtrip () =
  let cases =
    [
      Protocol.Bid { seq = 3; bp = 1; factor = 1.05; priority = 2 };
      Protocol.Matrix { seq = 9; factor = 0.97; priority = 0 };
      Protocol.Epoch 4;
      Protocol.Status;
      Protocol.Metrics_dump;
      Protocol.Scrub;
      Protocol.Quiesce;
      Protocol.Shutdown;
    ]
  in
  List.iter
    (fun req ->
      match Protocol.parse (Protocol.render req) with
      | Ok req' ->
        Alcotest.(check bool)
          (Printf.sprintf "round-trips %S" (Protocol.render req))
          true (req = req')
      | Error msg -> Alcotest.failf "parse failed: %s" msg)
    cases;
  (match Protocol.parse "  BID 1 0 1.1\r" with
  | Ok (Protocol.Bid { priority = 0; _ }) -> ()
  | _ -> Alcotest.fail "blanks/CR tolerated, priority defaults to 0");
  match Protocol.parse "EPOCH" with
  | Ok (Protocol.Epoch 1) -> ()
  | _ -> Alcotest.fail "bare EPOCH defaults to one epoch"

let test_protocol_rejects_garbage () =
  List.iter
    (fun line ->
      match Protocol.parse line with
      | Ok _ -> Alcotest.failf "accepted %S" line
      | Error _ -> ())
    [
      ""; "NOPE"; "BID"; "BID x 0 1.1"; "BID 1 0 nan"; "EPOCH 0"; "EPOCH -2";
      "STATUS now"; "MATRIX 1"; "BID 1 0 inf";
    ]

let test_protocol_framing () =
  Alcotest.(check bool) "terminal" true (Protocol.is_terminal "OK 1");
  Alcotest.(check bool) "continuation" false (Protocol.is_terminal "| x 1");
  Alcotest.(check string) "payload strips" "x 1" (Protocol.payload "| x 1");
  Alcotest.(check string) "wraps" "| x" (Protocol.continuation "x");
  match Protocol.continuation "a\nb" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "newline payloads must be refused"

(* --- Admission --- *)

let entry ?(apply_epoch = 1) ?(priority = 0) seq =
  { Admission.seq; apply_epoch; priority; payload = seq }

let test_admission_bounds_and_backpressure () =
  let q = Admission.create ~high_water:3 ~retry_base:0.05 ~retry_cap:0.2 () in
  for s = 1 to 3 do
    match Admission.offer q (entry s) with
    | Admission.Admitted { shed = None } -> ()
    | _ -> Alcotest.failf "seq %d should admit cleanly" s
  done;
  Alcotest.(check int) "full" 3 (Admission.depth q);
  let retry i =
    match Admission.offer q (entry (10 + i)) with
    | Admission.Rejected { retry_after } -> retry_after
    | _ -> Alcotest.fail "queue past high water must reject equals"
  in
  let r1 = retry 1 and r2 = retry 2 and r3 = retry 3 and r4 = retry 4 in
  Alcotest.(check (float 1e-9)) "base retry" 0.05 r1;
  Alcotest.(check (float 1e-9)) "doubles" 0.1 r2;
  Alcotest.(check (float 1e-9)) "doubles again" 0.2 r3;
  Alcotest.(check (float 1e-9)) "capped" 0.2 r4;
  Alcotest.(check int) "depth never exceeded" 3 (Admission.depth q)

let test_admission_sheds_lowest_priority_oldest () =
  let q = Admission.create ~high_water:3 () in
  ignore (Admission.offer q (entry ~priority:1 1));
  ignore (Admission.offer q (entry ~priority:0 2));
  ignore (Admission.offer q (entry ~priority:0 3));
  (* Priority 0 ties between 2 and 3: the oldest (2) is the victim. *)
  (match Admission.offer q (entry ~priority:2 4) with
  | Admission.Admitted { shed = Some v } ->
    Alcotest.(check int) "sheds oldest lowest-priority" 2 v.Admission.seq
  | _ -> Alcotest.fail "higher priority must displace");
  Alcotest.(check int) "still at high water" 3 (Admission.depth q);
  (* The queue now holds priorities {1; 0; 2}.  An equal-priority offer
     never displaces: strictly-greater only. *)
  match Admission.offer q (entry ~priority:0 5) with
  | Admission.Rejected _ -> ()
  | _ -> Alcotest.fail "equal priority must not shed"

let test_admission_dedup_and_drain () =
  let q = Admission.create ~high_water:8 () in
  ignore (Admission.offer q (entry ~apply_epoch:1 1));
  ignore (Admission.offer q (entry ~apply_epoch:2 2));
  (match Admission.offer q (entry 1) with
  | Admission.Duplicate -> ()
  | _ -> Alcotest.fail "replayed seq must answer Duplicate");
  (match Admission.offer q (entry 2) with
  | Admission.Duplicate -> ()
  | _ -> Alcotest.fail "last_seq floor applies to every older seq");
  let ready = Admission.drain q ~epoch:1 in
  Alcotest.(check (list int)) "drains only due epochs" [ 1 ]
    (List.map (fun (e : _ Admission.entry) -> e.Admission.seq) ready);
  Alcotest.(check int) "rest stays queued" 1 (Admission.depth q);
  Admission.drop q ~seq:2;
  Alcotest.(check int) "drop removes" 0 (Admission.depth q);
  Admission.force q (entry ~apply_epoch:9 7);
  Alcotest.(check int) "force requeues" 1 (Admission.depth q);
  match Admission.offer q (entry 7) with
  | Admission.Duplicate -> ()
  | _ -> Alcotest.fail "force raises the dedup floor"

(* --- Intake --- *)

let bid_entry seq ~apply_epoch ~bp ~factor =
  {
    Admission.seq;
    apply_epoch;
    priority = 0;
    payload = Supervisor.Scale_bid { bp; factor };
  }

let test_intake_roundtrip_and_torn_tail () =
  with_tmp_root (fun _store intake_path ->
      let log = Intake.create intake_path in
      let r1 = { Intake.entry = bid_entry 1 ~apply_epoch:1 ~bp:0 ~factor:1.5;
                 displaces = None } in
      let r2 =
        {
          Intake.entry =
            {
              Admission.seq = 2; apply_epoch = 2; priority = 3;
              payload = Supervisor.Scale_demand { factor = 0.9 };
            };
          displaces = Some 1;
        }
      in
      Intake.append log r1;
      Intake.append log r2;
      Intake.close log;
      (match Intake.reopen intake_path with
      | Error msg -> Alcotest.failf "reopen failed: %s" msg
      | Ok (log, records) ->
        Intake.close log;
        Alcotest.(check bool) "records survive verbatim" true
          (records = [ r1; r2 ]));
      (* A torn tail — the bytes of an OK that never reached the client
         — truncates silently; durable records survive. *)
      let data = read_file intake_path in
      Out_channel.with_open_bin intake_path (fun oc ->
          Out_channel.output_string oc (data ^ "\x07garbage"));
      match Intake.reopen intake_path with
      | Error msg -> Alcotest.failf "torn reopen failed: %s" msg
      | Ok (log, records) ->
        Intake.close log;
        Alcotest.(check int) "torn tail dropped, prefix kept" 2
          (List.length records);
        Alcotest.(check int) "file truncated to the durable prefix"
          (String.length data)
          (String.length (read_file intake_path)))

let test_intake_missing_file_is_empty () =
  with_tmp_root (fun _store intake_path ->
      match Intake.reopen intake_path with
      | Ok (log, []) -> Intake.close log
      | Ok (_, _ :: _) -> Alcotest.fail "phantom records"
      | Error msg -> Alcotest.failf "missing file must reopen empty: %s" msg)

(* --- Engine --- *)

let must_create = function
  | Ok engine -> engine
  | Error msg -> Alcotest.failf "engine create failed: %s" msg

let req line =
  match Protocol.parse line with
  | Ok r -> r
  | Error msg -> Alcotest.failf "bad test request %S: %s" line msg

let drive engine lines =
  List.concat_map
    (fun line -> fst (Engine.handle engine (req line))) lines

let client_script =
  [
    "BID 1 0 1.07 2"; "MATRIX 2 1.04"; "EPOCH 3"; "BID 3 1 0.95"; "EPOCH 3";
    "SHUTDOWN";
  ]

let test_engine_completes_and_is_deterministic () =
  let plan = plan () in
  let run () =
    with_tmp_root (fun store intake ->
        let engine =
          must_create
            (Engine.create ~store ~intake plan ~market
               ~schedule:(empty_schedule plan))
        in
        let lines = drive engine client_script in
        (lines, store_bytes store))
  in
  let lines_a, bytes_a = run () in
  let lines_b, bytes_b = run () in
  Alcotest.(check (list string)) "responses are deterministic" lines_a lines_b;
  Alcotest.(check bool) "store bytes are deterministic" true
    (bytes_a = bytes_b);
  Alcotest.(check bool) "horizon completed" true
    (List.mem "BYE complete" lines_a);
  match
    List.find_opt
      (fun l ->
        String.length l >= 9 && String.sub l 0 9 = "| epoch 1")
      lines_a
  with
  | Some l ->
    Alcotest.(check bool) "epoch 1 folded both live updates" true
      (String.length l > 9
      && String.sub l (String.length l - 9) 9 = "applied=2")
  | None -> Alcotest.fail "no epoch 1 report line"

let test_engine_kill_under_load_resumes_byte_identical () =
  let plan = plan () in
  (* Reference: uninterrupted run, fault-free schedule. *)
  let reference =
    with_tmp_root (fun store intake ->
        let engine =
          must_create
            (Engine.create ~store ~intake plan ~market
               ~schedule:(empty_schedule plan))
        in
        ignore (drive engine client_script);
        store_bytes store)
  in
  (* Crash leg: same requests, injected crash at epoch 5 pre_settle
     kills the daemon mid-EPOCH; a fresh engine resumes the same store
     and the surviving client re-drives the rest. *)
  with_tmp_root (fun store intake ->
      let schedule = crash_schedule plan ~at_epoch:5 ~phase:Fault.Pre_settle in
      let engine =
        must_create (Engine.create ~store ~intake plan ~market ~schedule)
      in
      (match
         List.iter
           (fun line -> ignore (Engine.handle engine (req line)))
           client_script
       with
      | () -> Alcotest.fail "crash fault never fired"
      | exception Supervisor.Injected_crash _ -> ());
      (* The restart leg runs without the crash spec, exactly like
         [serve --resume] after a kill. *)
      let resumed =
        must_create
          (Engine.create ~resume:true ~store ~intake plan ~market
             ~schedule:(empty_schedule plan))
      in
      let lines = drive resumed [ "STATUS"; "EPOCH 10"; "SHUTDOWN" ] in
      Alcotest.(check bool) "resumed run completes" true
        (List.mem "BYE complete" lines);
      Alcotest.(check bool)
        "store is byte-identical to the uninterrupted run" true
        (store_bytes store = reference))

let test_engine_refuses_after_horizon () =
  let plan = plan () in
  with_tmp_root (fun store intake ->
      let engine =
        must_create
          (Engine.create ~store ~intake plan ~market
             ~schedule:(empty_schedule plan))
      in
      ignore (drive engine [ "EPOCH 10" ]);
      (match Engine.handle engine (req "BID 9 0 1.01") with
      | [ line ], Engine.Continue ->
        Alcotest.(check bool) "bids after the horizon answer ERR" true
          (String.length line >= 3 && String.sub line 0 3 = "ERR")
      | _ -> Alcotest.fail "unexpected response shape");
      match Engine.handle engine (req "SHUTDOWN") with
      | [ "BYE complete" ], Engine.Stop 0 -> ()
      | _ -> Alcotest.fail "shutdown after horizon completes the journal")

(* --- Intake: fsync-before-OK retry under deterministic faults --- *)

(* A disk whose channels can be made to fail on flush: an out_channel
   over a read-only fd buffers writes silently and raises [Sys_error]
   at the first flush — exactly how a lying fsync or a dying device
   surfaces on the fsync-before-OK path. *)
let broken_channel () =
  Unix.out_channel_of_descr (Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0)

let flaky_disk ~fail_first_opens =
  let opens = ref 0 in
  let pick real path =
    incr opens;
    if !opens <= fail_first_opens then broken_channel () else real path
  in
  Poc_resilience.Disk.with_ops
    {
      Poc_resilience.Disk.real_ops with
      open_append = pick Poc_resilience.Disk.real_ops.open_append;
      open_trunc = pick Poc_resilience.Disk.real_ops.open_trunc;
    }

let test_intake_append_retries_transient_fault () =
  with_tmp_root (fun _store intake_path ->
      let retries = ref [] in
      let slept = ref [] in
      let policy =
        { Disk.default_retry_policy with Disk.retry_attempts = 3; retry_seed = 5 }
      in
      (* The very first channel (create's open_trunc) is broken: the
         first append buffers fine, then the flush raises.  [heal]
         reopens — a real channel this time — and the retry lands. *)
      let log =
        Intake.create ~disk:(flaky_disk ~fail_first_opens:1) ~retry:policy
          ~sleep:(fun d -> slept := d :: !slept)
          ~on_retry:(fun ~attempt ~delay msg ->
            retries := (attempt, delay, msg) :: !retries)
          intake_path
      in
      let r = { Intake.entry = bid_entry 1 ~apply_epoch:1 ~bp:0 ~factor:1.5;
                displaces = None } in
      Intake.append log r;
      Intake.close log;
      Alcotest.(check int) "exactly one retry healed the fault" 1
        (List.length !retries);
      (* The retry rode the policy's deterministic jittered schedule —
         the same delays [Disk.retrying] would sleep. *)
      let expected = Disk.retry_delays policy in
      (match (!retries, !slept) with
      | [ (1, d, _) ], [ s ] ->
        Alcotest.(check (float 1e-9)) "first schedule delay" (List.hd expected) d;
        Alcotest.(check (float 1e-9)) "slept that delay" d s
      | _ -> Alcotest.fail "unexpected retry/sleep shape");
      (* The record is durable: a clean reopen replays it. *)
      match Intake.reopen intake_path with
      | Ok (log, [ r' ]) ->
        Intake.close log;
        Alcotest.(check bool) "record survived the fault" true (r = r')
      | Ok (_, rs) ->
        Alcotest.failf "expected 1 record, got %d" (List.length rs)
      | Error msg -> Alcotest.failf "reopen failed: %s" msg)

let test_intake_append_exhausts_on_persistent_fault () =
  with_tmp_root (fun _store intake_path ->
      let retries = ref 0 in
      let policy =
        { Disk.default_retry_policy with Disk.retry_attempts = 2 }
      in
      (* Every channel this disk hands out is broken: the schedule
         exhausts and the append re-raises — but only after [heal]
         restored the log to its last durable length (here: empty). *)
      let log =
        Intake.create ~disk:(flaky_disk ~fail_first_opens:max_int)
          ~retry:policy
          ~sleep:(fun _ -> ())
          ~on_retry:(fun ~attempt:_ ~delay:_ _ -> incr retries)
          intake_path
      in
      let r = { Intake.entry = bid_entry 1 ~apply_epoch:1 ~bp:0 ~factor:1.5;
                displaces = None } in
      (match Intake.append log r with
      | () -> Alcotest.fail "append must raise once the schedule exhausts"
      | exception Sys_error _ -> ());
      Alcotest.(check int) "every scheduled retry was attempted" 2 !retries;
      Intake.close log;
      (* No torn frame mid-log: whatever exists replays cleanly empty. *)
      match Intake.reopen intake_path with
      | Ok (log, []) -> Intake.close log
      | Ok (_, _ :: _) -> Alcotest.fail "phantom records after exhaustion"
      | Error msg -> Alcotest.failf "reopen after exhaustion failed: %s" msg)

(* --- Protocol: run-addressed commands --- *)

let cmd line =
  match Protocol.parse_command line with
  | Ok c -> c
  | Error msg -> Alcotest.failf "bad test command %S: %s" line msg

let test_command_parse_and_roundtrip () =
  (* A bare request is run 0; RUN <id> prefixes any request; the
     registry verbs parse to their own constructors. *)
  (match cmd "STATUS" with
  | Protocol.Scoped { run = 0; req = Protocol.Status } -> ()
  | _ -> Alcotest.fail "bare request must scope to run 0");
  (match cmd "RUN 3 BID 1 0 1.07 2" with
  | Protocol.Scoped { run = 3; req = Protocol.Bid { seq = 1; _ } } -> ()
  | _ -> Alcotest.fail "RUN prefix must scope the request");
  (match cmd "OPEN" with
  | Protocol.Open_run { run = None; epochs = None; seed = None } -> ()
  | _ -> Alcotest.fail "bare OPEN");
  (match cmd "OPEN 12 99" with
  | Protocol.Open_run { run = None; epochs = Some 12; seed = Some 99 } -> ()
  | _ -> Alcotest.fail "OPEN epochs seed");
  (match cmd "RUN 5 OPEN 8" with
  | Protocol.Open_run { run = Some 5; epochs = Some 8; seed = None } -> ()
  | _ -> Alcotest.fail "RUN id OPEN epochs");
  (match cmd "CLOSE 2" with
  | Protocol.Close_run { run = 2 } -> ()
  | _ -> Alcotest.fail "CLOSE id");
  (match cmd "RUNS" with
  | Protocol.List_runs -> ()
  | _ -> Alcotest.fail "RUNS");
  (* Round-trip law: parse . render = id on every command shape. *)
  List.iter
    (fun c ->
      match Protocol.parse_command (Protocol.render_command c) with
      | Ok c' ->
        Alcotest.(check bool)
          (Printf.sprintf "round-trips %S" (Protocol.render_command c))
          true (c = c')
      | Error msg -> Alcotest.failf "re-parse failed: %s" msg)
    [
      Protocol.Scoped { run = 0; req = Protocol.Status };
      Protocol.Scoped { run = 7; req = Protocol.Epoch 2 };
      Protocol.Scoped
        { run = 1;
          req = Protocol.Bid { seq = 4; bp = 2; factor = 1.05; priority = 1 } };
      Protocol.Open_run { run = None; epochs = None; seed = None };
      Protocol.Open_run { run = Some 3; epochs = Some 9; seed = Some 41 };
      Protocol.Close_run { run = 6 };
      Protocol.List_runs;
    ];
  (* Rejections: malformed ids, OPEN arity, RUNS arguments. *)
  List.iter
    (fun line ->
      match Protocol.parse_command line with
      | Ok _ -> Alcotest.failf "accepted %S" line
      | Error _ -> ())
    [
      "RUN"; "RUN 2"; "RUN x STATUS"; "RUN -1 STATUS"; "OPEN 1 2 3"; "CLOSE";
      "CLOSE 1 2"; "RUNS please";
    ]

(* --- Framing: the binary protocol --- *)

module Framing = Poc_daemon.Framing

let all_msgs =
  [
    Framing.Open { run = None; epochs = None; seed = None };
    Framing.Open { run = Some 2; epochs = Some 9; seed = Some 41 };
    Framing.Bid { run = 1; seq = 7; bp = 3; factor = 1.0625; priority = 2 };
    Framing.Matrix { run = 0; seq = 9; factor = 0.97; priority = 1 };
    Framing.Epoch { run = 3; count = 4 };
    Framing.Status { run = 2 };
    Framing.Scrub { run = 0 };
    Framing.Close { run = 5 };
    Framing.Runs;
    Framing.Metrics;
    Framing.Quiesce;
    Framing.Shutdown;
  ]

let decode_all data =
  let { Framing.items; consumed; dropped } =
    Framing.decode_stream data ~pos:0
  in
  (items, consumed, dropped)

let test_framing_every_type_roundtrips () =
  List.iter
    (fun m ->
      let wire = Framing.encode_msg m in
      (match decode_all wire with
      | [ Framing.Msg m' ], consumed, 0 ->
        Alcotest.(check bool) "message round-trips" true (m = m');
        Alcotest.(check int) "fully consumed" (String.length wire) consumed
      | _ -> Alcotest.fail "unexpected decode shape");
      (* The command mapping is a bijection on messages. *)
      Alcotest.(check bool) "command mapping round-trips" true
        (Framing.of_command (Framing.to_command m) = m))
    all_msgs;
  (* Replies, including daemon-scope (-1) and continuation frames. *)
  List.iter
    (fun r ->
      let wire = Framing.encode_reply r in
      match decode_all wire with
      | [ Framing.Reply r' ], _, 0 ->
        Alcotest.(check bool) "reply round-trips" true (r = r')
      | _ -> Alcotest.fail "unexpected reply decode shape")
    [
      { Framing.run = 0; final = true; line = "OK 1" };
      { Framing.run = 4; final = false; line = "| epoch 3 settled" };
      { Framing.run = -1; final = true; line = "ERR parse: nope" };
      { Framing.run = 2; final = true; line = "" };
    ]

let qcheck_framing_roundtrip =
  let gen =
    QCheck.Gen.(
      let run = int_range 0 999 in
      oneof
        [
          map3
            (fun run (seq, bp) (factor, priority) ->
              Framing.Bid { run; seq; bp; factor; priority })
            run
            (pair (int_range 0 100_000) (int_range 0 64))
            (pair (float_range 0.5 2.0) (int_range 0 7));
          map3
            (fun run seq (factor, priority) ->
              Framing.Matrix { run; seq; factor; priority })
            run (int_range 0 100_000)
            (pair (float_range 0.5 2.0) (int_range 0 7));
          map2 (fun run count -> Framing.Epoch { run; count }) run
            (int_range 1 50);
          map3
            (fun run epochs seed ->
              Framing.Open
                {
                  run = (if run mod 2 = 0 then Some run else None);
                  epochs;
                  seed;
                })
            run
            (opt (int_range 1 100))
            (opt (int_range 0 1000));
          map (fun run -> Framing.Status { run }) run;
          map (fun run -> Framing.Scrub { run }) run;
          map (fun run -> Framing.Close { run }) run;
          oneofl [ Framing.Runs; Framing.Metrics; Framing.Quiesce;
                   Framing.Shutdown ];
        ])
  in
  QCheck.Test.make ~name:"framing: random messages round-trip bit-exactly"
    ~count:200
    (QCheck.make gen)
    (fun m ->
      (* [Open] renders seed without epochs unrepresentably in the line
         protocol, but the frame codec must still carry it. *)
      match decode_all (Framing.encode_msg m) with
      | [ Framing.Msg m' ], _, 0 -> m = m'
      | _ -> false)

let test_framing_rejects_every_truncation () =
  let wire =
    Framing.encode_msg
      (Framing.Bid { run = 2; seq = 11; bp = 1; factor = 1.125; priority = 3 })
  in
  for len = 0 to String.length wire - 1 do
    let items, consumed, dropped = decode_all (String.sub wire 0 len) in
    if items <> [] then
      Alcotest.failf "truncation at %d decoded a phantom message" len;
    if consumed <> 0 then
      Alcotest.failf "truncation at %d consumed %d bytes" len consumed;
    if dropped <> 0 then
      Alcotest.failf "truncation at %d dropped a frame still in flight" len
  done;
  (* The same bytes, completed, decode: a torn frame waits, never
     poisons. *)
  match decode_all wire with
  | [ Framing.Msg _ ], _, 0 -> ()
  | _ -> Alcotest.fail "completed frame must decode"

let test_framing_resyncs_after_corruption () =
  let a =
    Framing.encode_msg
      (Framing.Bid { run = 0; seq = 1; bp = 0; factor = 1.07; priority = 2 })
  in
  let b = Framing.encode_msg (Framing.Status { run = 1 }) in
  (* Flip a payload byte of [a]: its checksum fails, the decoder drops
     the frame and resyncs at [b]'s magic — one garbled frame costs
     that frame, not the connection. *)
  let corrupt = Bytes.of_string (a ^ b) in
  Bytes.set corrupt 9 (Char.chr (Char.code (Bytes.get corrupt 9) lxor 0x5A));
  (match decode_all (Bytes.to_string corrupt) with
  | [ Framing.Msg (Framing.Status { run = 1 }) ], consumed, dropped ->
    Alcotest.(check int) "resync consumed everything"
      (String.length a + String.length b)
      consumed;
    Alcotest.(check bool) "the corrupt frame was counted" true (dropped >= 1)
  | _ -> Alcotest.fail "corruption must cost one frame, not the stream");
  (* An absurd declared length (4 GiB) reads as corruption — not an
     allocation — and the decoder still finds the next frame. *)
  let huge = Bytes.of_string (a ^ b) in
  for i = 1 to 4 do Bytes.set huge i '\xFF' done;
  (match decode_all (Bytes.to_string huge) with
  | [ Framing.Msg (Framing.Status { run = 1 }) ], _, dropped ->
    Alcotest.(check bool) "oversized frame dropped" true (dropped >= 1)
  | _ -> Alcotest.fail "oversized length must not stall the stream");
  (* Inter-frame garbage (a line-protocol client gone astray) is
     skipped to the next magic byte. *)
  match decode_all ("STATUS\n" ^ b) with
  | [ Framing.Msg (Framing.Status { run = 1 }) ], _, dropped ->
    Alcotest.(check bool) "garbage counted" true (dropped >= 1)
  | _ -> Alcotest.fail "garbage prefix must not stall the stream"

(* --- QCheck: random burst schedules --- *)

(* One seeded client session: a burst of BID/MATRIX/EPOCH requests
   against a small queue, horizon 4.  Used three ways: (a) depth never
   exceeds the high-water mark and responses are deterministic given
   the seed; (b) a crash mid-burst plus resume reproduces the
   uninterrupted store byte for byte — accepted updates applied exactly
   once, shed decisions replayed, not re-made. *)
let burst_market = { Epochs.default_config with Epochs.epochs = 4; seed = 11 }

let burst_script seed =
  let rng = Prng.create seed in
  let n_reqs = 14 + Prng.int rng 10 in
  let seq = ref 0 in
  let reqs =
    List.init n_reqs (fun _ ->
        let d = Prng.int rng 10 in
        if d < 6 then begin
          incr seq;
          Printf.sprintf "BID %d %d %.4f %d" !seq (Prng.int rng 6)
            (0.9 +. (0.2 *. Prng.float rng))
            (Prng.int rng 4)
        end
        else if d < 7 then begin
          incr seq;
          Printf.sprintf "MATRIX %d %.4f %d" !seq
            (0.95 +. (0.1 *. Prng.float rng))
            (Prng.int rng 4)
        end
        else "EPOCH 1")
  in
  reqs @ [ "EPOCH 4"; "SHUTDOWN" ]

let run_burst plan ~schedule ~crash_and_resume seed =
  with_tmp_root (fun store intake ->
      (* Checkpoint every epoch so a crash resumes at the epoch it
         interrupted: later requests then land at the same apply-epochs
         as in the uninterrupted run, making full-stream byte-identity
         a meaningful property. *)
      let mk ~resume ~schedule =
        must_create
          (Engine.create ~high_water:3 ~snapshot_every:1 ~resume ~store
             ~intake plan ~market:burst_market ~schedule)
      in
      let engine = ref (mk ~resume:false ~schedule) in
      let depth_ok = ref true in
      let responses = ref [] in
      let crashed = ref false in
      List.iter
        (fun line ->
          let send () =
            match Engine.handle !engine (req line) with
            | lines, _ -> responses := List.rev_append lines !responses
            | exception Supervisor.Injected_crash _ ->
              crashed := true;
              (* The client survives the daemon: restart crash-free,
                 resume, and re-send the interrupted request. *)
              engine := mk ~resume:true ~schedule:(empty_schedule plan);
              let lines, _ = Engine.handle !engine (req line) in
              responses := List.rev_append lines !responses
          in
          send ();
          if Engine.queue_depth !engine > 3 then depth_ok := false)
        (burst_script seed);
      if crash_and_resume && not !crashed then
        QCheck.Test.fail_report "crash fault never fired";
      (List.rev !responses, store_bytes store, !depth_ok))

let qcheck_burst_bounded_deterministic_exactly_once =
  QCheck.Test.make ~name:"bursts: bounded queue, deterministic shed, \
                          exactly-once across crash+resume"
    ~count:4
    QCheck.(int_range 0 1000)
    (fun seed ->
      let plan = plan () in
      let resp_a, bytes_a, depth_a =
        run_burst plan ~schedule:(empty_schedule plan)
          ~crash_and_resume:false seed
      in
      let resp_b, bytes_b, depth_b =
        run_burst plan ~schedule:(empty_schedule plan)
          ~crash_and_resume:false seed
      in
      if not (depth_a && depth_b) then
        QCheck.Test.fail_report "queue exceeded its high-water mark";
      if resp_a <> resp_b then
        QCheck.Test.fail_report
          "same seed produced different responses (shed not deterministic)";
      if bytes_a <> bytes_b then
        QCheck.Test.fail_report "same seed produced different stores";
      let _, bytes_c, depth_c =
        run_burst plan
          ~schedule:
            (crash_schedule plan ~at_epoch:3 ~phase:Fault.Pre_settle)
          ~crash_and_resume:true seed
      in
      if not depth_c then
        QCheck.Test.fail_report "queue exceeded its bound across resume";
      if bytes_c <> bytes_a then
        QCheck.Test.fail_report
          "crash+resume store differs from uninterrupted run";
      true)

let suite =
  [
    Alcotest.test_case "protocol round-trips" `Quick test_protocol_roundtrip;
    Alcotest.test_case "protocol rejects garbage" `Quick
      test_protocol_rejects_garbage;
    Alcotest.test_case "protocol response framing" `Quick
      test_protocol_framing;
    Alcotest.test_case "admission bounds the queue, escalates retry-after"
      `Quick test_admission_bounds_and_backpressure;
    Alcotest.test_case "admission sheds lowest-priority oldest" `Quick
      test_admission_sheds_lowest_priority_oldest;
    Alcotest.test_case "admission dedups and drains in order" `Quick
      test_admission_dedup_and_drain;
    Alcotest.test_case "intake round-trips and truncates torn tails" `Quick
      test_intake_roundtrip_and_torn_tail;
    Alcotest.test_case "intake reopens a missing file as empty" `Quick
      test_intake_missing_file_is_empty;
    Alcotest.test_case "intake append retries a transient fault" `Quick
      test_intake_append_retries_transient_fault;
    Alcotest.test_case "intake append exhausts on a persistent fault" `Quick
      test_intake_append_exhausts_on_persistent_fault;
    Alcotest.test_case "commands parse, scope and round-trip" `Quick
      test_command_parse_and_roundtrip;
    Alcotest.test_case "framing round-trips every frame type" `Quick
      test_framing_every_type_roundtrips;
    QCheck_alcotest.to_alcotest qcheck_framing_roundtrip;
    Alcotest.test_case "framing rejects every truncation" `Quick
      test_framing_rejects_every_truncation;
    Alcotest.test_case "framing resyncs after corruption" `Quick
      test_framing_resyncs_after_corruption;
    Alcotest.test_case "engine completes deterministically" `Slow
      test_engine_completes_and_is_deterministic;
    Alcotest.test_case "kill under load resumes byte-identical" `Slow
      test_engine_kill_under_load_resumes_byte_identical;
    Alcotest.test_case "engine refuses bids after the horizon" `Slow
      test_engine_refuses_after_horizon;
    QCheck_alcotest.to_alcotest qcheck_burst_bounded_deterministic_exactly_once;
  ]
