(* The multi-run registry: per-run fault isolation, restart-with-backoff,
   quarantine at the attempt cap, and manifest-driven resume.

   The pinned invariant: four concurrent runs, a crash + storage fault
   injected into run 2 only — runs 0, 1 and 3 finish byte-identical to
   a single-run reference at every --jobs, run 2 ends quarantined with
   its store intact, and a SIGKILL-style restart mid-incident brings
   every non-quarantined run back byte-identically while run 2 stays
   quarantined. *)

module Registry = Poc_daemon.Registry
module Protocol = Poc_daemon.Protocol
module Engine = Poc_daemon.Engine
module Fault = Poc_resilience.Fault
module Disk = Poc_resilience.Disk
module Planner = Poc_core.Planner
module Epochs = Poc_market.Epochs
module Metrics = Poc_obs.Metrics
module Clock = Poc_obs.Clock
module Pool = Poc_util.Pool

let plan () = Lazy.force Fixtures.small_plan
let market = { Epochs.default_config with Epochs.epochs = 6; seed = 7 }

let rm_rf dir =
  if Sys.file_exists dir && Sys.is_directory dir then begin
    let rec go d =
      Array.iter
        (fun name ->
          let p = Filename.concat d name in
          if Sys.is_directory p then go p else Sys.remove p)
        (Sys.readdir d);
      Unix.rmdir d
    in
    go dir
  end
  else if Sys.file_exists dir then Sys.remove dir

let with_tmp_root f =
  let root = Filename.temp_file "poc_registry" "" in
  Sys.remove root;
  Sys.mkdir root 0o755;
  Fun.protect
    ~finally:(fun () -> try rm_rf root with Sys_error _ -> ())
    (fun () -> f root)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let store_bytes store =
  if Sys.is_directory store then
    Sys.readdir store |> Array.to_list |> List.sort compare
    |> List.map (fun name ->
           name ^ ":" ^ read_file (Filename.concat store name))
    |> String.concat "\n"
  else read_file store

let must_create = function
  | Ok reg -> reg
  | Error msg -> Alcotest.failf "registry create failed: %s" msg

let cmd line =
  match Protocol.parse_command line with
  | Ok c -> c
  | Error msg -> Alcotest.failf "bad test command %S: %s" line msg

let dispatch reg line = fst (Registry.dispatch reg (cmd line))

(* An injected now far past any armed backoff: every Failing run's
   retry is due. *)
let far_future () = Clock.now_us () +. 3.6e9

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

(* The client script every run receives, in two halves: the incident
   (run 2's crash fires during the first EPOCH 3) happens inside the
   first; the second finishes the 6-epoch horizon. *)
let first_half = [ "BID 1 0 1.07 2"; "MATRIX 2 1.04"; "EPOCH 3" ]
let second_half = [ "BID 3 1 0.95"; "EPOCH 3" ]

let run_2_specs =
  [
    Fault.Crash { at_epoch = 3; phase = Fault.Pre_settle };
    Fault.Storage
      { at_epoch = 4; phase = Fault.Pre_settle;
        fault = Disk.Lying_fsync { drop = 64 } };
  ]

(* The single-run reference: same script, no faults, no concurrency. *)
let reference_bytes () =
  with_tmp_root (fun root ->
      let reg =
        must_create
          (Registry.create ~root (plan ()) ~market ())
      in
      List.iter
        (fun l -> ignore (dispatch reg l))
        (first_half @ second_half);
      ignore (dispatch reg "SHUTDOWN");
      store_bytes (Filename.concat root "store"))

let drive_all reg runs line =
  List.iter
    (fun r -> ignore (dispatch reg (Printf.sprintf "RUN %d %s" r line)))
    runs

(* Drive the four-run incident on an open registry: returns after run 2
   is quarantined and runs 0/1/3 completed their horizons. *)
let drive_incident reg =
  List.iter (drive_all reg [ 0; 1; 2; 3 ]) first_half;
  (match Registry.state_of reg 2 with
  | Some (Registry.Failing _) -> ()
  | _ -> Alcotest.fail "run 2 must be Failing after the injected crash");
  (* While failing, scoped requests answer BUSY with a retry-after. *)
  (match dispatch reg "RUN 2 STATUS" with
  | [ line ] ->
    Alcotest.(check bool) "failing answers BUSY" true (has_prefix "BUSY" line)
  | _ -> Alcotest.fail "unexpected BUSY shape");
  (* The backoff expires; the registry scrubs + resumes run 2 with the
     storage fault re-armed. *)
  Registry.tick reg ~now_us:(far_future ());
  (match Registry.state_of reg 2 with
  | Some Registry.Serving -> ()
  | _ -> Alcotest.fail "run 2 must be Serving after the due retry");
  List.iter (drive_all reg [ 0; 1; 2; 3 ]) second_half;
  (* Run 2 lost its pre-crash progress and restarted from epoch 1, so
     its client keeps driving it toward the horizon — and epoch 4 trips
     the armed storage fault: failure #2 breaches the attempt cap of 1
     and quarantines the run. *)
  ignore (dispatch reg "RUN 2 EPOCH 3");
  match Registry.state_of reg 2 with
  | Some (Registry.Quarantined _) -> ()
  | _ -> Alcotest.fail "run 2 must be Quarantined past the attempt cap"

let test_fault_isolation_quarantine jobs () =
  let reference = reference_bytes () in
  with_tmp_root (fun root ->
      Pool.with_pool ~jobs (fun pool ->
          let reg =
            must_create
              (Registry.create ?pool ~attempt_cap:1 ~runs:4 ~fault_run:2
                 ~fault_specs:run_2_specs ~root (plan ()) ~market ())
          in
          drive_incident reg;
          (* Quarantine is terminal: scoped requests answer GONE. *)
          (match dispatch reg "RUN 2 STATUS" with
          | [ line ] ->
            Alcotest.(check bool) "quarantined answers GONE" true
              (has_prefix "GONE" line)
          | _ -> Alcotest.fail "unexpected GONE shape");
          (* The state is exported on the labeled gauge. *)
          let prom = Metrics.to_prometheus Metrics.default in
          let has needle =
            let nl = String.length needle and pl = String.length prom in
            let rec at i =
              i + nl <= pl && (String.sub prom i nl = needle || at (i + 1))
            in
            at 0
          in
          Alcotest.(check bool) "run-state gauge exported" true
            (has "poc_daemon_run_state{run=\"2\",state=\"quarantined\"} 1");
          (* Other runs kept settling: BUSY/GONE never leaked to them. *)
          (match dispatch reg "RUN 1 STATUS" with
          | [ line ] ->
            Alcotest.(check bool) "run 1 still serving" true
              (has_prefix "STATUS ok" line)
          | _ -> Alcotest.fail "unexpected STATUS shape");
          ignore (dispatch reg "SHUTDOWN");
          (* The fault-isolation invariant: the healthy runs are
             byte-identical to the single-run reference. *)
          List.iter
            (fun r ->
              match Registry.store_path reg r with
              | Some store ->
                Alcotest.(check bool)
                  (Printf.sprintf "run %d byte-identical at jobs=%d" r jobs)
                  true
                  (store_bytes store = reference)
              | None -> Alcotest.failf "run %d has no store" r)
            [ 0; 1; 3 ];
          (* Run 2's store survives quarantine, forensics-readable. *)
          match Registry.store_path reg 2 with
          | Some store ->
            Alcotest.(check bool) "quarantined store intact" true
              (Sys.file_exists store && store_bytes store <> "")
          | None -> Alcotest.fail "run 2 lost its store"))

let test_kill_and_restart_mid_incident () =
  let reference = reference_bytes () in
  with_tmp_root (fun root ->
      let reg1 =
        must_create
          (Registry.create ~attempt_cap:1 ~runs:4 ~fault_run:2
             ~fault_specs:run_2_specs ~root (plan ()) ~market ())
      in
      (* First half everywhere; run 2 crashes, retries, then trips the
         storage fault and quarantines — while runs 0/1/3 sit mid-
         horizon with an admitted-but-unapplied bid in their intakes. *)
      List.iter (drive_all reg1 [ 0; 1; 2; 3 ]) first_half;
      Registry.tick reg1 ~now_us:(far_future ());
      drive_all reg1 [ 0; 1; 2; 3 ] "BID 3 1 0.95";
      (* Run 2 restarted from epoch 1: two EPOCH batches reach epoch 4,
         where the armed storage fault quarantines it. *)
      ignore (dispatch reg1 "RUN 2 EPOCH 3");
      ignore (dispatch reg1 "RUN 2 EPOCH 3");
      (match Registry.state_of reg1 2 with
      | Some (Registry.Quarantined _) -> ()
      | _ -> Alcotest.fail "run 2 must be Quarantined before the kill");
      (* SIGKILL: no suspend, no flush — the registry is simply
         abandoned mid-incident.  ([reg1] stays referenced below so no
         finalizer can touch the files while the successor owns them.) *)
      let reg2 =
        must_create
          (Registry.create ~resume:true ~attempt_cap:1 ~root (plan ())
             ~market ())
      in
      (* Quarantine is durable: the manifest brings run 2 back
         quarantined, not serving. *)
      (match Registry.state_of reg2 2 with
      | Some (Registry.Quarantined _) -> ()
      | _ -> Alcotest.fail "quarantine must survive the restart");
      (match dispatch reg2 "RUN 2 STATUS" with
      | [ line ] ->
        Alcotest.(check bool) "still GONE after restart" true
          (has_prefix "GONE" line)
      | _ -> Alcotest.fail "unexpected GONE shape");
      (* The survivors resume — from their last durable checkpoint, so
         possibly re-running earlier epochs — and finish their
         horizons. *)
      drive_all reg2 [ 0; 1; 3 ] "EPOCH 6";
      ignore (dispatch reg2 "SHUTDOWN");
      List.iter
        (fun r ->
          match Registry.store_path reg2 r with
          | Some store ->
            Alcotest.(check bool)
              (Printf.sprintf "run %d byte-identical across the kill" r)
              true
              (store_bytes store = reference)
          | None -> Alcotest.failf "run %d has no store" r)
        [ 0; 1; 3 ];
      ignore (Sys.opaque_identity reg1))

let test_open_close_runs_lifecycle () =
  with_tmp_root (fun root ->
      let reg =
        must_create
          (Registry.create ~runs:1 ~max_runs:2 ~root (plan ()) ~market ())
      in
      (* OPEN a second run with its own horizon and seed. *)
      (match dispatch reg "OPEN 4 99" with
      | [ line ] ->
        Alcotest.(check bool) "open answers OK" true
          (has_prefix "OK run=1 opened" line)
      | _ -> Alcotest.fail "unexpected OPEN shape");
      (* At max-runs, OPEN answers BUSY, not an error. *)
      (match dispatch reg "OPEN" with
      | [ line ] ->
        Alcotest.(check bool) "open at cap answers BUSY" true
          (has_prefix "BUSY open" line)
      | _ -> Alcotest.fail "unexpected BUSY shape");
      (* RUNS lists both with states. *)
      (match dispatch reg "RUNS" with
      | lines ->
        Alcotest.(check int) "one line per run + terminal" 3
          (List.length lines));
      (* Requests route by RUN id; the second run answers. *)
      (match dispatch reg "RUN 1 STATUS" with
      | [ line ] ->
        Alcotest.(check bool) "run 1 serves" true
          (has_prefix "STATUS ok" line)
      | _ -> Alcotest.fail "unexpected STATUS shape");
      (* CLOSE is terminal: later requests answer GONE, and the slot
         frees capacity for a new OPEN. *)
      (match dispatch reg "CLOSE 1" with
      | [ line ] ->
        Alcotest.(check bool) "close answers OK" true
          (has_prefix "OK run=1 closed" line)
      | _ -> Alcotest.fail "unexpected CLOSE shape");
      (match dispatch reg "RUN 1 STATUS" with
      | [ line ] ->
        Alcotest.(check bool) "closed answers GONE" true
          (has_prefix "GONE" line)
      | _ -> Alcotest.fail "unexpected GONE shape");
      match dispatch reg "OPEN" with
      | [ line ] ->
        Alcotest.(check bool) "capacity freed" true
          (has_prefix "OK run=2 opened" line)
      | _ -> Alcotest.fail "unexpected reopen shape")

let test_unknown_run_answers_err () =
  with_tmp_root (fun root ->
      let reg =
        must_create (Registry.create ~root (plan ()) ~market ())
      in
      match dispatch reg "RUN 9 STATUS" with
      | [ line ] ->
        Alcotest.(check bool) "unknown run answers ERR" true
          (has_prefix "ERR" line)
      | _ -> Alcotest.fail "unexpected ERR shape")

let suite =
  [
    Alcotest.test_case "open/close/runs lifecycle" `Slow
      test_open_close_runs_lifecycle;
    Alcotest.test_case "unknown run answers ERR" `Slow
      test_unknown_run_answers_err;
    Alcotest.test_case "fault isolation + quarantine (jobs=1)" `Slow
      (test_fault_isolation_quarantine 1);
    Alcotest.test_case "fault isolation + quarantine (jobs=2)" `Slow
      (test_fault_isolation_quarantine 2);
    Alcotest.test_case "kill + restart mid-incident" `Slow
      test_kill_and_restart_mid_incident;
  ]
