(* Resilience layer: fault DSL, degradation ladder, supervised loop. *)

module Acceptability = Poc_auction.Acceptability
module Vcg = Poc_auction.Vcg
module Epochs = Poc_market.Epochs
module Settlement = Poc_core.Settlement
module Planner = Poc_core.Planner
module Fault = Poc_resilience.Fault
module Ladder = Poc_resilience.Ladder
module Supervisor = Poc_resilience.Supervisor

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let plan () = Lazy.force Fixtures.small_plan

let chaos_specs (plan : Planner.plan) =
  let wan = plan.Planner.wan in
  let biggest =
    match Poc_topology.Wan.bps_by_size wan with b :: _ -> b | [] -> 0
  in
  let n_bps = Array.length wan.Poc_topology.Wan.bps in
  [
    Fault.Bp_bankruptcy { at_epoch = 3; bp = biggest };
    Fault.Link_failure { at_epoch = 3; count = 2; duration = 2 };
  ]
  @ List.init n_bps (fun bp ->
        Fault.Capacity_recall { at_epoch = 5; bp; fraction = 1.0; duration = 1 })

let compile_chaos plan =
  match Fault.compile plan.Planner.wan ~seed:2020 (chaos_specs plan) with
  | Ok s -> s
  | Error msg -> Alcotest.failf "chaos schedule failed to compile: %s" msg

let market = { Epochs.default_config with Epochs.epochs = 8; seed = 7 }

(* --- Fault DSL --- *)

let test_fault_validation_lists_every_problem () =
  let plan = plan () in
  let specs =
    [
      Fault.Link_failure { at_epoch = 0; count = 0; duration = 1 };
      Fault.Bp_bankruptcy { at_epoch = 1; bp = 99 };
      Fault.Capacity_recall { at_epoch = 1; bp = 0; fraction = 1.5; duration = 1 };
    ]
  in
  match Fault.validate plan.Planner.wan specs with
  | Ok () -> Alcotest.fail "expected validation failure"
  | Error msg ->
    List.iter
      (fun needle ->
        Alcotest.(check bool)
          (Printf.sprintf "message mentions %S" needle)
          true (contains msg needle))
      [
        "spec 0: at_epoch must be >= 1";
        "spec 0: count must be >= 1";
        "spec 1: unknown BP 99";
        "spec 2: fraction must be in [0,1]";
      ]

let test_fault_compile_is_deterministic () =
  let plan = plan () in
  let specs = chaos_specs plan in
  let run () =
    match Fault.compile plan.Planner.wan ~seed:2020 specs with
    | Ok s -> Fault.events s
    | Error msg -> Alcotest.failf "compile failed: %s" msg
  in
  Alcotest.(check bool) "identical timelines" true (run () = run ())

let test_fault_failure_emits_repair () =
  let plan = plan () in
  let specs = [ Fault.Link_failure { at_epoch = 2; count = 3; duration = 2 } ] in
  match Fault.compile plan.Planner.wan ~seed:5 specs with
  | Error msg -> Alcotest.failf "compile failed: %s" msg
  | Ok s ->
    let downs =
      Fault.at s 2
      |> List.filter_map (function Fault.Link_down id -> Some id | _ -> None)
    in
    let ups =
      Fault.at s 4
      |> List.filter_map (function Fault.Link_up id -> Some id | _ -> None)
    in
    Alcotest.(check int) "three links fail" 3 (List.length downs);
    Alcotest.(check (list int)) "same links repair after the duration" downs ups

(* --- Ladder --- *)

let test_ladder_rung_order () =
  let rungs =
    Ladder.rungs ~rule:Acceptability.Single_link_failure Ladder.default_config
  in
  let expected =
    [
      Ladder.Relax_demand 0.9;
      Ladder.Relax_demand 0.75;
      Ladder.Relax_demand 0.5;
      Ladder.Step_down Acceptability.Handle_load;
      Ladder.Connectivity_only;
      Ladder.External_transit;
    ]
  in
  Alcotest.(check bool) "relax, then step down, then fallbacks" true
    (rungs = expected)

let test_ladder_respects_attempt_budget () =
  let config = { Ladder.default_config with Ladder.max_attempts = 2 } in
  let rungs = Ladder.rungs ~rule:Acceptability.Handle_load config in
  Alcotest.(check int) "budget truncates the ladder" 2 (List.length rungs)

let test_ladder_validation_lists_every_problem () =
  let bad =
    { Ladder.relax_factors = [ 1.5; -0.1 ]; step_rules = true; max_attempts = 0 }
  in
  match Ladder.validate_config bad with
  | Ok () -> Alcotest.fail "expected validation failure"
  | Error msg ->
    List.iter
      (fun needle ->
        Alcotest.(check bool)
          (Printf.sprintf "message mentions %S" needle)
          true (contains msg needle))
      [ "relax factor 1.5"; "relax factor -0.1"; "max_attempts must be >= 1" ]

(* --- Supervisor --- *)

let chaos_report plan = Supervisor.run plan ~market ~schedule:(compile_chaos plan)

let test_chaos_run_degrades_and_recovers () =
  let plan = plan () in
  let report = chaos_report plan in
  Alcotest.(check int) "all epochs reported" market.Epochs.epochs
    (List.length report.Supervisor.epochs);
  Alcotest.(check bool) "ladder engaged at least once" true
    (report.Supervisor.ladder_activations >= 1);
  let degraded =
    List.filter
      (fun (er : Supervisor.epoch_report) ->
        er.Supervisor.status <> Supervisor.Healthy)
      report.Supervisor.epochs
  in
  Alcotest.(check bool) "at least one degraded epoch" true (degraded <> []);
  List.iter
    (fun (er : Supervisor.epoch_report) ->
      Alcotest.(check bool)
        (Printf.sprintf "epoch %d delivered some traffic" er.Supervisor.epoch)
        true
        (er.Supervisor.delivered_fraction > 0.0))
    report.Supervisor.epochs;
  let recovered =
    List.exists
      (fun (i : Supervisor.incident) ->
        match Supervisor.epochs_to_recovery i with
        | Some n -> n >= 1
        | None -> false)
      report.Supervisor.incidents
  in
  Alcotest.(check bool) "some incident reports epochs-to-recovery >= 1" true
    recovered

let test_chaos_invariants_hold () =
  let plan = plan () in
  let report = chaos_report plan in
  Alcotest.(check int) "no invariant violations" 0
    (List.length report.Supervisor.violations);
  match report.Supervisor.final_plan with
  | None -> Alcotest.fail "expected a final plan"
  | Some final ->
    let ledger = Settlement.of_plan final () in
    Alcotest.(check bool) "closing ledger nets to zero" true
      (Float.abs (Settlement.conservation ledger) < 1e-6)

let test_incident_log_is_byte_identical () =
  let plan = plan () in
  let render () =
    let report = chaos_report plan in
    Supervisor.render_incidents report ^ Supervisor.render_epochs report
  in
  Alcotest.(check string) "same seed + schedule, same bytes" (render ())
    (render ())

let test_faultfree_supervised_run_matches_epochs () =
  let plan = plan () in
  let schedule =
    match Fault.compile plan.Planner.wan ~seed:1 [] with
    | Ok s -> s
    | Error msg -> Alcotest.failf "empty schedule failed: %s" msg
  in
  let report = Supervisor.run plan ~market ~schedule in
  let plain = Epochs.run plan market in
  List.iter2
    (fun (er : Supervisor.epoch_report) (pr : Epochs.epoch_result) ->
      Alcotest.(check bool)
        (Printf.sprintf "epoch %d healthy" er.Supervisor.epoch)
        true
        (er.Supervisor.status = Supervisor.Healthy);
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "epoch %d spend matches Epochs.run" er.Supervisor.epoch)
        pr.Epochs.spend er.Supervisor.spend)
    report.Supervisor.epochs plain;
  Alcotest.(check int) "no incidents without faults" 0
    (List.length report.Supervisor.incidents)

let test_total_blackout_reports_never () =
  let plan = plan () in
  (* External transit is the designed backstop, so a true blackout
     needs it gone too: bankrupt every BP and strip the virtual links
     from the problem (and from the seed selection the supervisor
     would otherwise carry forward). *)
  let n_bps = Array.length plan.Planner.wan.Poc_topology.Wan.bps in
  let specs =
    List.init n_bps (fun bp -> Fault.Bp_bankruptcy { at_epoch = 1; bp })
  in
  let schedule =
    match Fault.compile plan.Planner.wan ~seed:3 specs with
    | Ok s -> s
    | Error msg -> Alcotest.failf "compile failed: %s" msg
  in
  let is_virtual id =
    List.mem_assoc id plan.Planner.problem.Vcg.virtual_prices
  in
  let problem = { plan.Planner.problem with Vcg.virtual_prices = [] } in
  let selected =
    List.filter
      (fun id -> not (is_virtual id))
      plan.Planner.outcome.Vcg.selection.Vcg.selected
  in
  let selection =
    { Vcg.selected; cost = Vcg.selection_cost problem selected }
  in
  let outcome = { plan.Planner.outcome with Vcg.selection = selection } in
  let plan = { plan with Planner.problem = problem; outcome } in
  let report = Supervisor.run plan ~market ~schedule in
  List.iter
    (fun (er : Supervisor.epoch_report) ->
      Alcotest.(check bool)
        (Printf.sprintf "epoch %d blacked out" er.Supervisor.epoch)
        true
        (er.Supervisor.status = Supervisor.Blackout))
    report.Supervisor.epochs;
  match report.Supervisor.incidents with
  | [ inc ] ->
    Alcotest.(check bool) "no recovery" true
      (Supervisor.epochs_to_recovery inc = None)
  | incs -> Alcotest.failf "expected one open incident, got %d" (List.length incs)

let suite =
  [
    Alcotest.test_case "fault validation lists every problem" `Quick
      test_fault_validation_lists_every_problem;
    Alcotest.test_case "fault compile is deterministic" `Quick
      test_fault_compile_is_deterministic;
    Alcotest.test_case "link failure emits matching repair" `Quick
      test_fault_failure_emits_repair;
    Alcotest.test_case "ladder rungs in order" `Quick test_ladder_rung_order;
    Alcotest.test_case "ladder respects attempt budget" `Quick
      test_ladder_respects_attempt_budget;
    Alcotest.test_case "ladder validation lists every problem" `Quick
      test_ladder_validation_lists_every_problem;
    Alcotest.test_case "chaos run degrades and recovers" `Slow
      test_chaos_run_degrades_and_recovers;
    Alcotest.test_case "chaos invariants hold" `Slow test_chaos_invariants_hold;
    Alcotest.test_case "incident log is byte-identical" `Slow
      test_incident_log_is_byte_identical;
    Alcotest.test_case "fault-free supervised run matches Epochs.run" `Slow
      test_faultfree_supervised_run_matches_epochs;
    Alcotest.test_case "total blackout reports no recovery" `Slow
      test_total_blackout_reports_never;
  ]
