(* Resilience layer: fault DSL, degradation ladder, supervised loop. *)

module Acceptability = Poc_auction.Acceptability
module Vcg = Poc_auction.Vcg
module Epochs = Poc_market.Epochs
module Settlement = Poc_core.Settlement
module Planner = Poc_core.Planner
module Fault = Poc_resilience.Fault
module Ladder = Poc_resilience.Ladder
module Supervisor = Poc_resilience.Supervisor
module Journal = Poc_resilience.Journal
module Codec = Poc_util.Codec

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let plan () = Lazy.force Fixtures.small_plan

let chaos_specs (plan : Planner.plan) =
  let wan = plan.Planner.wan in
  let biggest =
    match Poc_topology.Wan.bps_by_size wan with b :: _ -> b | [] -> 0
  in
  let n_bps = Array.length wan.Poc_topology.Wan.bps in
  [
    Fault.Bp_bankruptcy { at_epoch = 3; bp = biggest };
    Fault.Link_failure { at_epoch = 3; count = 2; duration = 2 };
  ]
  @ List.init n_bps (fun bp ->
        Fault.Capacity_recall { at_epoch = 5; bp; fraction = 1.0; duration = 1 })

let compile_chaos plan =
  match Fault.compile plan.Planner.wan ~seed:2020 (chaos_specs plan) with
  | Ok s -> s
  | Error msg -> Alcotest.failf "chaos schedule failed to compile: %s" msg

let market = { Epochs.default_config with Epochs.epochs = 8; seed = 7 }

(* --- Fault DSL --- *)

let test_fault_validation_lists_every_problem () =
  let plan = plan () in
  let specs =
    [
      Fault.Link_failure { at_epoch = 0; count = 0; duration = 1 };
      Fault.Bp_bankruptcy { at_epoch = 1; bp = 99 };
      Fault.Capacity_recall { at_epoch = 1; bp = 0; fraction = 1.5; duration = 1 };
    ]
  in
  match Fault.validate plan.Planner.wan specs with
  | Ok () -> Alcotest.fail "expected validation failure"
  | Error msg ->
    List.iter
      (fun needle ->
        Alcotest.(check bool)
          (Printf.sprintf "message mentions %S" needle)
          true (contains msg needle))
      [
        "spec 0: at_epoch must be >= 1";
        "spec 0: count must be >= 1";
        "spec 1: unknown BP 99";
        "spec 2: fraction must be in [0,1]";
      ]

let test_fault_compile_is_deterministic () =
  let plan = plan () in
  let specs = chaos_specs plan in
  let run () =
    match Fault.compile plan.Planner.wan ~seed:2020 specs with
    | Ok s -> Fault.events s
    | Error msg -> Alcotest.failf "compile failed: %s" msg
  in
  Alcotest.(check bool) "identical timelines" true (run () = run ())

let test_fault_failure_emits_repair () =
  let plan = plan () in
  let specs = [ Fault.Link_failure { at_epoch = 2; count = 3; duration = 2 } ] in
  match Fault.compile plan.Planner.wan ~seed:5 specs with
  | Error msg -> Alcotest.failf "compile failed: %s" msg
  | Ok s ->
    let downs =
      Fault.at s 2
      |> List.filter_map (function Fault.Link_down id -> Some id | _ -> None)
    in
    let ups =
      Fault.at s 4
      |> List.filter_map (function Fault.Link_up id -> Some id | _ -> None)
    in
    Alcotest.(check int) "three links fail" 3 (List.length downs);
    Alcotest.(check (list int)) "same links repair after the duration" downs ups

(* --- Ladder --- *)

let test_ladder_rung_order () =
  let rungs =
    Ladder.rungs ~rule:Acceptability.Single_link_failure Ladder.default_config
  in
  let expected =
    [
      Ladder.Relax_demand 0.9;
      Ladder.Relax_demand 0.75;
      Ladder.Relax_demand 0.5;
      Ladder.Step_down Acceptability.Handle_load;
      Ladder.Connectivity_only;
      Ladder.External_transit;
    ]
  in
  Alcotest.(check bool) "relax, then step down, then fallbacks" true
    (rungs = expected)

let test_ladder_respects_attempt_budget () =
  let config = { Ladder.default_config with Ladder.max_attempts = 2 } in
  let rungs = Ladder.rungs ~rule:Acceptability.Handle_load config in
  Alcotest.(check int) "budget truncates the ladder" 2 (List.length rungs)

let test_ladder_validation_lists_every_problem () =
  let bad =
    { Ladder.relax_factors = [ 1.5; -0.1 ]; step_rules = true; max_attempts = 0 }
  in
  match Ladder.validate_config bad with
  | Ok () -> Alcotest.fail "expected validation failure"
  | Error msg ->
    List.iter
      (fun needle ->
        Alcotest.(check bool)
          (Printf.sprintf "message mentions %S" needle)
          true (contains msg needle))
      [ "relax factor 1.5"; "relax factor -0.1"; "max_attempts must be >= 1" ]

(* --- Supervisor --- *)

let chaos_report plan = Supervisor.run plan ~market ~schedule:(compile_chaos plan)

let test_chaos_run_degrades_and_recovers () =
  let plan = plan () in
  let report = chaos_report plan in
  Alcotest.(check int) "all epochs reported" market.Epochs.epochs
    (List.length report.Supervisor.epochs);
  Alcotest.(check bool) "ladder engaged at least once" true
    (report.Supervisor.ladder_activations >= 1);
  let degraded =
    List.filter
      (fun (er : Supervisor.epoch_report) ->
        er.Supervisor.status <> Supervisor.Healthy)
      report.Supervisor.epochs
  in
  Alcotest.(check bool) "at least one degraded epoch" true (degraded <> []);
  List.iter
    (fun (er : Supervisor.epoch_report) ->
      Alcotest.(check bool)
        (Printf.sprintf "epoch %d delivered some traffic" er.Supervisor.epoch)
        true
        (er.Supervisor.delivered_fraction > 0.0))
    report.Supervisor.epochs;
  let recovered =
    List.exists
      (fun (i : Supervisor.incident) ->
        match Supervisor.epochs_to_recovery i with
        | Some n -> n >= 1
        | None -> false)
      report.Supervisor.incidents
  in
  Alcotest.(check bool) "some incident reports epochs-to-recovery >= 1" true
    recovered

let test_chaos_invariants_hold () =
  let plan = plan () in
  let report = chaos_report plan in
  Alcotest.(check int) "no invariant violations" 0
    (List.length report.Supervisor.violations);
  match report.Supervisor.final_plan with
  | None -> Alcotest.fail "expected a final plan"
  | Some final ->
    let ledger = Settlement.of_plan final () in
    Alcotest.(check bool) "closing ledger nets to zero" true
      (Float.abs (Settlement.conservation ledger) < 1e-6)

let test_incident_log_is_byte_identical () =
  let plan = plan () in
  let render () =
    let report = chaos_report plan in
    Supervisor.render_incidents report ^ Supervisor.render_epochs report
  in
  Alcotest.(check string) "same seed + schedule, same bytes" (render ())
    (render ())

let test_faultfree_supervised_run_matches_epochs () =
  let plan = plan () in
  let schedule =
    match Fault.compile plan.Planner.wan ~seed:1 [] with
    | Ok s -> s
    | Error msg -> Alcotest.failf "empty schedule failed: %s" msg
  in
  let report = Supervisor.run plan ~market ~schedule in
  let plain = Epochs.run plan market in
  List.iter2
    (fun (er : Supervisor.epoch_report) (pr : Epochs.epoch_result) ->
      Alcotest.(check bool)
        (Printf.sprintf "epoch %d healthy" er.Supervisor.epoch)
        true
        (er.Supervisor.status = Supervisor.Healthy);
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "epoch %d spend matches Epochs.run" er.Supervisor.epoch)
        pr.Epochs.spend er.Supervisor.spend)
    report.Supervisor.epochs plain;
  Alcotest.(check int) "no incidents without faults" 0
    (List.length report.Supervisor.incidents)

let test_total_blackout_reports_never () =
  let plan = plan () in
  (* External transit is the designed backstop, so a true blackout
     needs it gone too: bankrupt every BP and strip the virtual links
     from the problem (and from the seed selection the supervisor
     would otherwise carry forward). *)
  let n_bps = Array.length plan.Planner.wan.Poc_topology.Wan.bps in
  let specs =
    List.init n_bps (fun bp -> Fault.Bp_bankruptcy { at_epoch = 1; bp })
  in
  let schedule =
    match Fault.compile plan.Planner.wan ~seed:3 specs with
    | Ok s -> s
    | Error msg -> Alcotest.failf "compile failed: %s" msg
  in
  let is_virtual id =
    List.mem_assoc id plan.Planner.problem.Vcg.virtual_prices
  in
  let problem = { plan.Planner.problem with Vcg.virtual_prices = [] } in
  let selected =
    List.filter
      (fun id -> not (is_virtual id))
      plan.Planner.outcome.Vcg.selection.Vcg.selected
  in
  let selection =
    { Vcg.selected; cost = Vcg.selection_cost problem selected }
  in
  let outcome = { plan.Planner.outcome with Vcg.selection = selection } in
  let plan = { plan with Planner.problem = problem; outcome } in
  let report = Supervisor.run plan ~market ~schedule in
  List.iter
    (fun (er : Supervisor.epoch_report) ->
      Alcotest.(check bool)
        (Printf.sprintf "epoch %d blacked out" er.Supervisor.epoch)
        true
        (er.Supervisor.status = Supervisor.Blackout))
    report.Supervisor.epochs;
  match report.Supervisor.incidents with
  | [ inc ] ->
    Alcotest.(check bool) "no recovery" true
      (Supervisor.epochs_to_recovery inc = None)
  | incs -> Alcotest.failf "expected one open incident, got %d" (List.length incs)

(* --- Fault properties (QCheck) --- *)

let qcheck_fault_compile_seed_determinism =
  QCheck.Test.make ~name:"same seed compiles byte-identical fault timelines"
    ~count:20
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let plan = plan () in
      let specs = chaos_specs plan in
      let events s =
        match Fault.compile plan.Planner.wan ~seed:s specs with
        | Ok sched -> Fault.events sched
        | Error msg -> QCheck.Test.fail_reportf "compile failed: %s" msg
      in
      events seed = events seed)

let qcheck_fault_compile_seed_sensitivity =
  QCheck.Test.make ~name:"distinct seeds pick different fault victims"
    ~count:20
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let plan = plan () in
      (* A spec with real randomness: which links fail is drawn from
         the seed.  Over 16 link picks, two seeds agreeing everywhere
         would be a broken PRNG. *)
      let specs =
        [ Fault.Link_failure { at_epoch = 2; count = 16; duration = 1 } ]
      in
      let events s =
        match Fault.compile plan.Planner.wan ~seed:s specs with
        | Ok sched -> Fault.events sched
        | Error msg -> QCheck.Test.fail_reportf "compile failed: %s" msg
      in
      events seed <> events (seed + 1))

let test_fault_validation_rejects_crash_epoch () =
  let plan = plan () in
  let specs =
    [
      Fault.Crash { at_epoch = 0; phase = Fault.Pre_settle };
      Fault.Traffic_surge { at_epoch = 1; factor = -2.0; duration = 0 };
      Fault.Offer_shrinkage { at_epoch = 1; fraction = 2.0 };
    ]
  in
  match Fault.validate plan.Planner.wan specs with
  | Ok () -> Alcotest.fail "expected validation failure"
  | Error msg ->
    List.iter
      (fun needle ->
        Alcotest.(check bool)
          (Printf.sprintf "message mentions %S" needle)
          true (contains msg needle))
      [ "spec 0: at_epoch must be >= 1"; "spec 1"; "spec 2" ]

(* --- pay-as-bid carry-forward edge cases --- *)

let test_pay_as_bid_empty_selection () =
  let plan = plan () in
  Alcotest.(check bool) "nothing to carry forward" true
    (Ladder.pay_as_bid plan.Planner.problem [] = None)

let test_pay_as_bid_external_transit_selection () =
  (* The selection a prior External_transit epoch leaves behind:
     virtual links only.  Carrying it forward must price it at the
     contracted virtual prices with no BP payments. *)
  let plan = plan () in
  let problem = plan.Planner.problem in
  let links = List.map fst problem.Vcg.virtual_prices |> List.sort compare in
  if links = [] then Alcotest.fail "fixture has no virtual links"
  else
    match Ladder.pay_as_bid problem links with
    | None -> Alcotest.fail "virtual-only carry-forward must price"
    | Some o ->
      let expected =
        List.fold_left (fun acc (_, p) -> acc +. p) 0.0 problem.Vcg.virtual_prices
      in
      Alcotest.(check (float 1e-6)) "pays the contracted virtual prices"
        expected o.Vcg.total_payment;
      Alcotest.(check bool) "no BP is paid" true
        (Array.for_all
           (fun (r : Vcg.bp_result) -> r.Vcg.payment = 0.0)
           o.Vcg.bp_results)

let test_pay_as_bid_surviving_subset () =
  (* The Connectivity_only-style carry: a prior selection survives with
     one BP's links banned; the rest reprices pay-as-bid. *)
  let plan = plan () in
  let problem = plan.Planner.problem in
  let full = plan.Planner.outcome.Vcg.selection.Vcg.selected in
  let banned_bp_links =
    Poc_topology.Wan.bp_link_ids plan.Planner.wan 0
  in
  let surviving =
    List.filter (fun id -> not (List.mem id banned_bp_links)) full
  in
  if surviving = [] || surviving = full then
    Alcotest.fail "fixture selection does not exercise a strict subset"
  else
    match Ladder.pay_as_bid problem surviving with
    | None -> Alcotest.fail "surviving subset must still price"
    | Some o ->
      Alcotest.(check (list int)) "prices exactly the surviving links"
        (List.sort compare surviving)
        (List.sort compare o.Vcg.selection.Vcg.selected);
      Alcotest.(check bool) "banned BP earns nothing" true
        (o.Vcg.bp_results.(0).Vcg.payment = 0.0)

(* --- Journal: crash injection, resume, torn-tail recovery --- *)

let with_tmp_journal f =
  let path = Filename.temp_file "poc_journal" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path data =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc data)

let render (r : Supervisor.report) =
  Supervisor.render_epochs r ^ Supervisor.render_incidents r

let check_crash_resume ~at_epoch phase () =
  let plan = plan () in
  let uninterrupted =
    Supervisor.run plan ~market ~schedule:(compile_chaos plan)
  in
  let crashing =
    match
      Fault.compile plan.Planner.wan ~seed:2020
        (chaos_specs plan @ [ Fault.Crash { at_epoch; phase } ])
    with
    | Ok s -> s
    | Error msg -> Alcotest.failf "crash schedule failed to compile: %s" msg
  in
  with_tmp_journal (fun path ->
      (match Supervisor.run plan ~journal:path ~market ~schedule:crashing with
      | _ -> Alcotest.fail "expected an injected crash"
      | exception Supervisor.Injected_crash { epoch; phase = p } ->
        Alcotest.(check int) "crashed at the right epoch" at_epoch epoch;
        Alcotest.(check bool) "crashed in the right phase" true (p = phase));
      (* Resume under the schedule *without* the crash spec: the digest
         ignores crash points, so both forms are accepted. *)
      match
        Supervisor.resume ~journal:path plan ~market
          ~schedule:(compile_chaos plan)
      with
      | Error msg -> Alcotest.failf "resume failed: %s" msg
      | Ok resumed ->
        Alcotest.(check string) "rendered output byte-identical"
          (render uninterrupted) (render resumed);
        Alcotest.(check bool) "epoch reports structurally identical" true
          (compare resumed.Supervisor.epochs uninterrupted.Supervisor.epochs = 0);
        Alcotest.(check bool) "violations identical" true
          (compare resumed.Supervisor.violations
             uninterrupted.Supervisor.violations
          = 0);
        Alcotest.(check int) "ladder activations identical"
          uninterrupted.Supervisor.ladder_activations
          resumed.Supervisor.ladder_activations)

let test_crash_resume_pre_auction = check_crash_resume ~at_epoch:5 Fault.Pre_auction
let test_crash_resume_pre_settle = check_crash_resume ~at_epoch:5 Fault.Pre_settle
let test_crash_resume_post_settle = check_crash_resume ~at_epoch:5 Fault.Post_settle

let test_crash_resume_before_first_snapshot =
  (* Epoch 2 is before the first snapshot (cadence 4): resume must
     rebuild from the initial state, not from a snapshot. *)
  check_crash_resume ~at_epoch:2 Fault.Post_settle

let test_journal_replay_roundtrip () =
  let plan = plan () in
  with_tmp_journal (fun path ->
      let run = Supervisor.run plan ~journal:path ~market ~schedule:(compile_chaos plan) in
      match Journal.replay path with
      | Error msg -> Alcotest.failf "replay of a clean journal failed: %s" msg
      | Ok r ->
        Alcotest.(check bool) "no torn tail" false r.Journal.torn_tail;
        Alcotest.(check bool) "completion recorded" true (r.Journal.complete <> None);
        Alcotest.(check int) "every epoch recorded" market.Epochs.epochs
          (List.length r.Journal.records);
        Alcotest.(check bool) "journaled reports match the run" true
          (compare
             (List.map (fun (rec_ : Journal.epoch_record) -> rec_.Journal.report)
                r.Journal.records)
             run.Supervisor.epochs
          = 0);
        Alcotest.(check bool) "completion carries the incident log" true
          (r.Journal.complete = Some (Supervisor.render_incidents run)))

let test_journal_torn_and_corrupt_tails_truncate () =
  let plan = plan () in
  with_tmp_journal (fun path ->
      let _ = Supervisor.run plan ~journal:path ~market ~schedule:(compile_chaos plan) in
      let data = read_file path in
      (* a tail cut mid-write: the last record reads as torn *)
      write_file path (String.sub data 0 (String.length data - 5));
      (match Journal.replay path with
      | Error msg -> Alcotest.failf "a torn tail must not be fatal: %s" msg
      | Ok r ->
        Alcotest.(check bool) "torn tail detected" true r.Journal.torn_tail;
        Alcotest.(check bool) "truncated completion discarded" true
          (r.Journal.complete = None);
        Alcotest.(check int) "records before the tear survive"
          market.Epochs.epochs
          (List.length r.Journal.records));
      (* a flipped payload byte: the checksum rejects the record *)
      let corrupted = Bytes.of_string data in
      let last = Bytes.length corrupted - 1 in
      Bytes.set corrupted last
        (Char.chr (Char.code (Bytes.get corrupted last) lxor 0xFF));
      write_file path (Bytes.to_string corrupted);
      match Journal.replay path with
      | Error msg -> Alcotest.failf "a bad checksum must not be fatal: %s" msg
      | Ok r ->
        Alcotest.(check bool) "corrupt record discarded as torn" true
          r.Journal.torn_tail;
        Alcotest.(check int) "records before it survive" market.Epochs.epochs
          (List.length r.Journal.records))

let test_resume_after_external_truncation () =
  (* Simulate kill -9 mid-write: chop the file mid-record and resume. *)
  let plan = plan () in
  let schedule = compile_chaos plan in
  let uninterrupted = Supervisor.run plan ~market ~schedule in
  with_tmp_journal (fun path ->
      let _ = Supervisor.run plan ~journal:path ~market ~schedule in
      let data = read_file path in
      write_file path (String.sub data 0 (String.length data - 7));
      match Supervisor.resume ~journal:path plan ~market ~schedule with
      | Error msg -> Alcotest.failf "resume after truncation failed: %s" msg
      | Ok resumed ->
        Alcotest.(check string) "resumed run byte-identical"
          (render uninterrupted) (render resumed))

let test_journal_byte_identical_under_pool () =
  (* The tentpole determinism claim, pinned end-to-end: a journaled
     chaos run through the domain pool produces the same journal bytes
     and rendered report as the serial run. *)
  let plan = plan () in
  let schedule = compile_chaos plan in
  let journal_of ?pool () =
    with_tmp_journal (fun path ->
        let report =
          Supervisor.run ?pool plan ~journal:path ~market ~schedule
        in
        (render report, read_file path))
  in
  let serial_render, serial_bytes = journal_of () in
  Poc_util.Pool.with_pool ~jobs:4 (fun pool ->
      let par_render, par_bytes = journal_of ?pool () in
      Alcotest.(check string) "rendered report identical under jobs 4"
        serial_render par_render;
      Alcotest.(check string) "journal bytes identical under jobs 4"
        serial_bytes par_bytes)

let test_journal_byte_identical_with_feascache () =
  (* The feasibility cache must be journal-invisible: a journaled chaos
     run with the cache enabled (the default) writes the same bytes and
     renders the same report as one with it disabled — serially and
     through a pool. *)
  let plan = plan () in
  let schedule = compile_chaos plan in
  let journal_of ?pool ~cache () =
    let was = Poc_auction.Feascache.enabled () in
    Poc_auction.Feascache.set_enabled cache;
    Fun.protect ~finally:(fun () -> Poc_auction.Feascache.set_enabled was)
      (fun () ->
        with_tmp_journal (fun path ->
            let report =
              Supervisor.run ?pool plan ~journal:path ~market ~schedule
            in
            (render report, read_file path)))
  in
  let on_render, on_bytes = journal_of ~cache:true () in
  let off_render, off_bytes = journal_of ~cache:false () in
  Alcotest.(check string) "rendered report identical cache on/off" on_render
    off_render;
  Alcotest.(check string) "journal bytes identical cache on/off" on_bytes
    off_bytes;
  Poc_util.Pool.with_pool ~jobs:4 (fun pool ->
      let pooled_render, pooled_bytes = journal_of ?pool ~cache:true () in
      Alcotest.(check string) "report identical, cache on + jobs 4" on_render
        pooled_render;
      Alcotest.(check string) "journal bytes identical, cache on + jobs 4"
        on_bytes pooled_bytes)

let test_resume_rejects_mismatch_and_complete () =
  let plan = plan () in
  let schedule = compile_chaos plan in
  with_tmp_journal (fun path ->
      let _ = Supervisor.run plan ~journal:path ~market ~schedule in
      (match Supervisor.resume ~journal:path plan ~market ~schedule with
      | Ok _ -> Alcotest.fail "a complete journal must be refused"
      | Error msg ->
        Alcotest.(check bool) "says nothing to resume" true
          (contains msg "nothing to resume"));
      (match
         Supervisor.resume ~journal:path plan
           ~market:{ market with Epochs.seed = market.Epochs.seed + 1 }
           ~schedule
       with
      | Ok _ -> Alcotest.fail "a seed mismatch must be refused"
      | Error msg ->
        Alcotest.(check bool) "names the market seed" true
          (contains msg "market seed"));
      let other_faults =
        match Fault.compile plan.Planner.wan ~seed:2021 (chaos_specs plan) with
        | Ok s -> s
        | Error msg -> Alcotest.failf "compile failed: %s" msg
      in
      match Supervisor.resume ~journal:path plan ~market ~schedule:other_faults with
      | Ok _ -> Alcotest.fail "a different fault schedule must be refused"
      | Error msg ->
        Alcotest.(check bool) "names the digest" true (contains msg "digest"))

let test_replay_rejects_garbage_and_versions () =
  with_tmp_journal (fun path ->
      write_file path "these are not the records you are looking for";
      (match Journal.replay path with
      | Ok _ -> Alcotest.fail "garbage must not replay"
      | Error msg ->
        Alcotest.(check bool) "says not a POC journal" true
          (contains msg "not a POC journal"));
      (* a well-formed header frame from a future format version *)
      let w = Codec.writer () in
      Codec.put_u8 w 0;
      Codec.put_u32 w 0x504F434A;
      Codec.put_int w (Journal.version + 1);
      Codec.put_int w 7;
      Codec.put_int w 8;
      Codec.put_int w 6;
      Codec.put_int w 4;
      Codec.put_i64 w 0L;
      write_file path (Codec.frame (Codec.contents w));
      (match Journal.replay path with
      | Ok _ -> Alcotest.fail "a future version must not replay"
      | Error msg ->
        Alcotest.(check bool) "names the version" true (contains msg "version"));
      match Journal.replay (path ^ ".does-not-exist") with
      | Ok _ -> Alcotest.fail "a missing file must not replay"
      | Error msg ->
        Alcotest.(check bool) "says it cannot read" true
          (contains msg "cannot read"))

(* --- Segmented store: rotation, GC, disk faults, scrub --- *)

module Disk = Poc_resilience.Disk

let with_tmp_store f =
  (* A fresh directory path for a segmented store.  Journal.create
     mkdirs it; clean up everything including the quarantine subdir. *)
  let path = Filename.temp_file "poc_segstore" "" in
  Sys.remove path;
  let rm_rf dir =
    if Sys.file_exists dir && Sys.is_directory dir then begin
      let rec go d =
        Array.iter
          (fun name ->
            let p = Filename.concat d name in
            if Sys.is_directory p then go p else Sys.remove p)
          (Sys.readdir d);
        Unix.rmdir d
      in
      go dir
    end
  in
  Fun.protect ~finally:(fun () -> rm_rf path) (fun () -> f path)

(* Every file in the store (including quarantine/), name -> bytes, for
   byte-identity checks between stores. *)
let store_fingerprint dir =
  let rec files prefix d =
    Array.to_list (Sys.readdir d)
    |> List.concat_map (fun name ->
           let p = Filename.concat d name in
           let rel = if prefix = "" then name else prefix ^ "/" ^ name in
           if Sys.is_directory p then files rel p else [ (rel, read_file p) ])
  in
  List.sort compare (files "" dir)

let segment_budget = 700

let test_segmented_rotation_and_gc () =
  let plan = plan () in
  let schedule = compile_chaos plan in
  with_tmp_store (fun dir ->
      let _ =
        Supervisor.run plan ~journal:dir ~segment_bytes:segment_budget ~market
          ~schedule
      in
      match Journal.replay dir with
      | Error msg -> Alcotest.failf "segmented replay failed: %s" msg
      | Ok r ->
        Alcotest.(check bool) "store detected as segmented" true
          r.Journal.segmented;
        Alcotest.(check int) "budget recorded in the segment header"
          segment_budget r.Journal.segment_bytes;
        Alcotest.(check bool) "rotation happened" true
          (r.Journal.active_segment > 1);
        Alcotest.(check bool) "GC keeps at most active + predecessor" true
          (List.length r.Journal.live_segments <= 2);
        (* The manifest and the directory agree: no orphan segments. *)
        let on_disk =
          Sys.readdir dir |> Array.to_list
          |> List.filter (fun n -> Filename.check_suffix n ".seg")
          |> List.length
        in
        Alcotest.(check int) "no orphan segment files"
          (List.length r.Journal.live_segments)
          on_disk;
        Alcotest.(check bool) "completion survives rotation" true
          (r.Journal.complete <> None))

let test_segmented_crash_resume_byte_identical () =
  (* The tentpole determinism claim on the segmented store: crash mid
     run, resume, and both the rendered report and every byte of every
     store file match an uninterrupted segmented run — including the
     rotation points. *)
  let plan = plan () in
  let schedule = compile_chaos plan in
  with_tmp_store (fun ref_dir ->
      let uninterrupted =
        Supervisor.run plan ~journal:ref_dir ~segment_bytes:segment_budget
          ~market ~schedule
      in
      let reference = store_fingerprint ref_dir in
      List.iter
        (fun (at_epoch, phase) ->
          let crashing =
            match
              Fault.compile plan.Planner.wan ~seed:2020
                (chaos_specs plan @ [ Fault.Crash { at_epoch; phase } ])
            with
            | Ok s -> s
            | Error msg -> Alcotest.failf "crash schedule: %s" msg
          in
          with_tmp_store (fun dir ->
              (match
                 Supervisor.run plan ~journal:dir
                   ~segment_bytes:segment_budget ~market ~schedule:crashing
               with
              | _ -> Alcotest.fail "expected an injected crash"
              | exception Supervisor.Injected_crash _ -> ());
              match Supervisor.resume ~journal:dir plan ~market ~schedule with
              | Error msg ->
                Alcotest.failf "resume at %d failed: %s" at_epoch msg
              | Ok resumed ->
                Alcotest.(check string)
                  (Printf.sprintf "rendered identical (crash at %d)" at_epoch)
                  (render uninterrupted) (render resumed);
                Alcotest.(check bool)
                  (Printf.sprintf "store byte-identical (crash at %d)" at_epoch)
                  true
                  (store_fingerprint dir = reference)))
        (* Epoch 4 post_settle is immediately after a rotation (snapshot
           cadence 4); epoch 5 pre_auction crosses the boundary; epoch 2
           is before any snapshot or rotation. *)
        [
          (2, Fault.Post_settle);
          (4, Fault.Post_settle);
          (5, Fault.Pre_auction);
          (6, Fault.Pre_settle);
        ])

let test_segmented_torn_rename_mid_rotation () =
  (* A power cut whose rename never hit the directory entry: the
     manifest still lists the old segments and the new segment is an
     orphan.  Resume must delete the orphan, redo the rotation, and
     land byte-identical. *)
  let plan = plan () in
  let schedule = compile_chaos plan in
  with_tmp_store (fun ref_dir ->
      let uninterrupted =
        Supervisor.run plan ~journal:ref_dir ~segment_bytes:segment_budget
          ~market ~schedule
      in
      let reference = store_fingerprint ref_dir in
      let faulty =
        match
          Fault.compile plan.Planner.wan ~seed:2020
            (chaos_specs plan
            @ [
                (* Post_settle at epoch 4: the snapshot-triggered
                   rotation has just renamed the manifest. *)
                Fault.Storage
                  {
                    at_epoch = 4;
                    phase = Fault.Post_settle;
                    fault = Disk.Torn_rename;
                  };
              ])
        with
        | Ok s -> s
        | Error msg -> Alcotest.failf "storage schedule: %s" msg
      in
      with_tmp_store (fun dir ->
          (match
             Supervisor.run plan ~journal:dir ~segment_bytes:segment_budget
               ~market ~schedule:faulty
           with
          | _ -> Alcotest.fail "expected an injected crash"
          | exception Supervisor.Injected_crash _ -> ());
          match Supervisor.resume ~journal:dir plan ~market ~schedule with
          | Error msg -> Alcotest.failf "resume after torn rename: %s" msg
          | Ok resumed ->
            Alcotest.(check string) "rendered identical after torn rename"
              (render uninterrupted) (render resumed);
            Alcotest.(check bool) "store byte-identical after torn rename" true
              (store_fingerprint dir = reference)))

let test_single_file_interior_corruption_anchor () =
  (* Regression anchor for the single-file format: a byte flipped in
     the middle of a committed region truncates the replay at the flip
     — records before it survive, nothing after it is invented — and a
     resume reproduces the uninterrupted run byte-for-byte. *)
  let plan = plan () in
  let schedule = compile_chaos plan in
  let uninterrupted = Supervisor.run plan ~market ~schedule in
  with_tmp_journal (fun path ->
      let _ = Supervisor.run plan ~journal:path ~market ~schedule in
      let clean = read_file path in
      let full_records =
        match Journal.replay path with
        | Ok r -> List.length r.Journal.records
        | Error msg -> Alcotest.failf "clean replay failed: %s" msg
      in
      let flip = String.length clean / 2 in
      let corrupted = Bytes.of_string clean in
      Bytes.set corrupted flip
        (Char.chr (Char.code (Bytes.get corrupted flip) lxor 0x5A));
      write_file path (Bytes.to_string corrupted);
      (match Journal.replay path with
      | Error msg -> Alcotest.failf "interior corruption must not be fatal: %s" msg
      | Ok r ->
        Alcotest.(check bool) "reads as torn at the flip" true
          r.Journal.torn_tail;
        Alcotest.(check bool) "records before the flip survive" true
          (List.length r.Journal.records > 0);
        Alcotest.(check bool) "records after the flip are dropped" true
          (List.length r.Journal.records < full_records);
        Alcotest.(check bool) "truncation lands before the flip" true
          (r.Journal.resume_offset <= flip));
      (* scrub agrees, and repairs in place *)
      (match Journal.scrub path with
      | Error msg -> Alcotest.failf "single-file scrub failed: %s" msg
      | Ok report ->
        Alcotest.(check bool) "single-file store" false
          report.Journal.store_segmented;
        Alcotest.(check bool) "scrub recovers" true report.Journal.recovered);
      match Supervisor.resume ~journal:path plan ~market ~schedule with
      | Error msg -> Alcotest.failf "resume after corruption failed: %s" msg
      | Ok resumed ->
        Alcotest.(check string) "resumed run byte-identical"
          (render uninterrupted) (render resumed))

let test_scrub_quarantine_falls_back () =
  (* An unreadable active-segment header is the one damage replay
     cannot truncate through.  scrub quarantines the segment and falls
     back to the predecessor's checkpoint; the resumed run then redoes
     the lost epochs and reports identically (byte-identity of the
     store is NOT promised on this path — rotation timing shifts). *)
  let plan = plan () in
  let schedule = compile_chaos plan in
  let uninterrupted = Supervisor.run plan ~market ~schedule in
  with_tmp_store (fun dir ->
      let crashing =
        match
          Fault.compile plan.Planner.wan ~seed:2020
            (chaos_specs plan
            @ [ Fault.Crash { at_epoch = 6; phase = Fault.Post_settle } ])
        with
        | Ok s -> s
        | Error msg -> Alcotest.failf "crash schedule: %s" msg
      in
      (match
         Supervisor.run plan ~journal:dir ~segment_bytes:segment_budget ~market
           ~schedule:crashing
       with
      | _ -> Alcotest.fail "expected an injected crash"
      | exception Supervisor.Injected_crash _ -> ());
      let live =
        match Journal.replay dir with
        | Ok r -> r.Journal.live_segments
        | Error msg -> Alcotest.failf "replay before damage failed: %s" msg
      in
      Alcotest.(check bool) "two live segments before damage" true
        (List.length live = 2);
      let active =
        Filename.concat dir
          (Printf.sprintf "%05d.seg" (List.fold_left max 0 live))
      in
      let data = read_file active in
      write_file active ("XXXXXXXXXXXX" ^ String.sub data 12 (String.length data - 12));
      (match Supervisor.resume ~journal:dir plan ~market ~schedule with
      | Ok _ -> Alcotest.fail "an unreadable header must refuse resume"
      | Error msg ->
        Alcotest.(check bool) "error points at scrub" true
          (contains msg "scrub"));
      (* dry run changes nothing *)
      (match Journal.scrub ~dry_run:true dir with
      | Error msg -> Alcotest.failf "dry-run scrub failed: %s" msg
      | Ok report ->
        Alcotest.(check bool) "dry run not applied" false report.Journal.applied;
        Alcotest.(check bool) "file untouched by dry run" true
          (Sys.file_exists active));
      (match Journal.scrub dir with
      | Error msg -> Alcotest.failf "scrub failed: %s" msg
      | Ok report ->
        Alcotest.(check bool) "applied" true report.Journal.applied;
        Alcotest.(check bool) "recovered via predecessor" true
          report.Journal.recovered;
        let quarantined =
          List.filter
            (fun (s : Journal.segment_scrub) ->
              s.Journal.action = Journal.Scrub_quarantined)
            report.Journal.segments
        in
        Alcotest.(check int) "one segment quarantined" 1
          (List.length quarantined);
        let json = Journal.scrub_to_json report in
        Alcotest.(check bool) "json report mentions the quarantine" true
          (contains json "\"quarantined\":[");
        Alcotest.(check bool) "json report carries the store root" true
          (contains json (Printf.sprintf "\"store\":\"%s\"" dir));
        Alcotest.(check bool) "json report counts the quarantine" true
          (contains json "\"quarantined_count\":1")
      );
      Alcotest.(check bool) "segment moved into quarantine/" true
        (Sys.file_exists
           (Filename.concat (Filename.concat dir "quarantine")
              (Filename.basename active)));
      match Supervisor.resume ~journal:dir plan ~market ~schedule with
      | Error msg -> Alcotest.failf "resume after scrub failed: %s" msg
      | Ok resumed ->
        Alcotest.(check string) "reports identical after fall-back"
          (render uninterrupted) (render resumed))

(* The acceptance matrix: every storage-fault kind at a random epoch,
   phase and worker count either resumes to an identical report
   directly, or scrub recovers and the second resume does — and a
   scrub that reports unrecoverable is the only permitted dead end. *)
let qcheck_storage_fault_matrix =
  let plan_l = lazy (plan ()) in
  let baseline =
    lazy
      (let plan = Lazy.force plan_l in
       render (Supervisor.run plan ~market ~schedule:(compile_chaos plan)))
  in
  QCheck.Test.make ~name:"storage faults: resume or scrub, never divergence"
    ~count:8
    QCheck.(
      quad (int_range 0 3) (int_range 1 1000) (int_range 2 7) (int_range 0 5))
    (fun (kind, arg, at_epoch, phase_jobs) ->
      let plan = Lazy.force plan_l in
      let fault =
        match kind with
        | 0 -> Disk.Short_write { drop = 1 + (arg mod 32) }
        | 1 -> Disk.Torn_rename
        | 2 -> Disk.Lying_fsync { drop = 1 + (arg mod 32) }
        | _ -> Disk.Corrupt_byte { seed = arg }
      in
      let phase =
        match phase_jobs mod 3 with
        | 0 -> Fault.Pre_auction
        | 1 -> Fault.Pre_settle
        | _ -> Fault.Post_settle
      in
      let jobs = if phase_jobs >= 3 then 4 else 1 in
      let schedule = compile_chaos plan in
      let faulty =
        match
          Fault.compile plan.Planner.wan ~seed:2020
            (chaos_specs plan @ [ Fault.Storage { at_epoch; phase; fault } ])
        with
        | Ok s -> s
        | Error msg -> QCheck.Test.fail_reportf "compile failed: %s" msg
      in
      with_tmp_store (fun dir ->
          Poc_util.Pool.with_pool ~jobs (fun pool ->
              (match
                 Supervisor.run ?pool plan ~journal:dir
                   ~segment_bytes:segment_budget ~market ~schedule:faulty
               with
              | _ -> QCheck.Test.fail_report "expected an injected crash"
              | exception Supervisor.Injected_crash _ -> ());
              let check_render (r : Supervisor.report) =
                if render r <> Lazy.force baseline then
                  QCheck.Test.fail_reportf
                    "diverged (kind %d, epoch %d, jobs %d)" kind at_epoch jobs
                else true
              in
              match Supervisor.resume ?pool ~journal:dir plan ~market ~schedule with
              | Ok resumed -> check_render resumed
              | Error _ -> (
                match Journal.scrub dir with
                | Error msg -> QCheck.Test.fail_reportf "scrub failed: %s" msg
                | Ok report when not report.Journal.recovered ->
                  true (* the permitted dead end: nothing durable left *)
                | Ok _ -> (
                  match
                    Supervisor.resume ?pool ~journal:dir plan ~market ~schedule
                  with
                  | Ok resumed -> check_render resumed
                  | Error msg ->
                    QCheck.Test.fail_reportf
                      "resume after recovering scrub failed: %s" msg)))))

(* Scrub is a repair, not a process: once the first pass has truncated
   and quarantined, any later pass must find nothing to do — same
   report every time, not a byte of the store touched.  The fleet
   driver leans on this when it scrubs unconditionally after every
   injected kill. *)
let qcheck_scrub_idempotent =
  let plan_l = lazy (plan ()) in
  QCheck.Test.make ~name:"scrub twice: the second pass is a no-op" ~count:8
    QCheck.(
      quad (int_range 0 3) (int_range 1 1000) (int_range 2 7) (int_range 0 2))
    (fun (kind, arg, at_epoch, phase_i) ->
      let plan = Lazy.force plan_l in
      let fault =
        match kind with
        | 0 -> Disk.Short_write { drop = 1 + (arg mod 32) }
        | 1 -> Disk.Torn_rename
        | 2 -> Disk.Lying_fsync { drop = 1 + (arg mod 32) }
        | _ -> Disk.Corrupt_byte { seed = arg }
      in
      let phase =
        match phase_i with
        | 0 -> Fault.Pre_auction
        | 1 -> Fault.Pre_settle
        | _ -> Fault.Post_settle
      in
      let faulty =
        match
          Fault.compile plan.Planner.wan ~seed:2020
            (chaos_specs plan @ [ Fault.Storage { at_epoch; phase; fault } ])
        with
        | Ok s -> s
        | Error msg -> QCheck.Test.fail_reportf "compile failed: %s" msg
      in
      with_tmp_store (fun dir ->
          (match
             Supervisor.run plan ~journal:dir ~segment_bytes:segment_budget
               ~market ~schedule:faulty
           with
          | _ -> QCheck.Test.fail_report "expected an injected crash"
          | exception Supervisor.Injected_crash _ -> ());
          match Journal.scrub dir with
          | Error msg -> QCheck.Test.fail_reportf "first scrub failed: %s" msg
          | Ok _ -> (
            let settled = store_fingerprint dir in
            match Journal.scrub dir with
            | Error msg ->
              QCheck.Test.fail_reportf "second scrub failed: %s" msg
            | Ok second -> (
              if
                List.exists
                  (fun (e : Journal.segment_scrub) ->
                    e.Journal.action <> Journal.Scrub_none)
                  second.Journal.segments
              then
                QCheck.Test.fail_reportf
                  "second scrub still acted (kind %d, epoch %d)" kind at_epoch;
              if store_fingerprint dir <> settled then
                QCheck.Test.fail_reportf
                  "second scrub changed the store (kind %d, epoch %d)" kind
                  at_epoch;
              match Journal.scrub dir with
              | Error msg ->
                QCheck.Test.fail_reportf "third scrub failed: %s" msg
              | Ok third ->
                if
                  Journal.scrub_to_json third
                  <> Journal.scrub_to_json second
                then
                  QCheck.Test.fail_reportf
                    "repeat scrub reports differ (kind %d, epoch %d)" kind
                    at_epoch;
                if store_fingerprint dir <> settled then
                  QCheck.Test.fail_reportf
                    "third scrub changed the store (kind %d, epoch %d)" kind
                    at_epoch;
                true))))

(* --- Ladder under the domain pool --- *)

let engaged_key = function
  | None -> "none"
  | Some e ->
    Printf.sprintf "%s attempts=%d scale=%g pay=%.9f"
      (Ladder.step_to_string e.Ladder.step)
      e.Ladder.attempts e.Ladder.demand_scale
      e.Ladder.outcome.Vcg.total_payment

let test_ladder_engage_pool_invariant () =
  (* Speculative parallel rung evaluation must pick the same rung, with
     the same reported attempt count and the same priced outcome, as
     the serial walk — at every pool size. *)
  let plan = plan () in
  let problem = plan.Planner.problem in
  let virtuals = List.map fst problem.Vcg.virtual_prices in
  let bans =
    [
      ("nothing banned", fun _ -> false);
      (* Every real link gone: the early rungs all fail and the ladder
         walks deep before (at most) external transit answers. *)
      ("real links banned", fun id -> not (List.mem id virtuals));
    ]
  in
  List.iter
    (fun (label, banned) ->
      let serial = Ladder.engage ~banned Ladder.default_config problem in
      if label = "nothing banned" && serial = None then
        Alcotest.fail "fixture should engage when nothing is banned";
      List.iter
        (fun jobs ->
          Poc_util.Pool.with_pool ~jobs (fun pool ->
              let par =
                Ladder.engage ~banned ?pool Ladder.default_config problem
              in
              Alcotest.(check string)
                (Printf.sprintf "%s: jobs=%d matches serial" label jobs)
                (engaged_key serial) (engaged_key par);
              Alcotest.(check bool)
                (Printf.sprintf "%s: jobs=%d outcome identical" label jobs)
                true
                (compare serial par = 0)))
        [ 2; 4 ])
    bans

(* --- Disk.retrying: jittered backoff over transient I/O errors --- *)

let retry_policy =
  {
    Disk.retry_attempts = 3;
    retry_base_delay = 0.01;
    retry_multiplier = 2.0;
    retry_max_delay = 0.03;
    retry_jitter = 0.25;
    retry_seed = 42;
  }

(* Wrap [ops] with recording hooks and a fake sleep; returns the
   wrapped ops plus the (op, attempt, delay) log and the slept delays,
   both in call order once reversed. *)
let record_retries ops =
  let log = ref [] and sleeps = ref [] in
  let wrapped =
    Disk.retrying ~policy:retry_policy
      ~sleep:(fun d -> sleeps := d :: !sleeps)
      ~on_retry:(fun ~op ~attempt ~delay _msg ->
        log := (op, attempt, delay) :: !log)
      ops
  in
  (wrapped, log, sleeps)

let flaky_read ~failures =
  let left = ref failures in
  {
    Disk.real_ops with
    Disk.read_file =
      (fun path ->
        if !left > 0 then begin
          decr left;
          raise (Sys_error ("flaky: " ^ path))
        end
        else "payload:" ^ path);
  }

let test_disk_retry_recovers_transient_faults () =
  let run () =
    let wrapped, log, sleeps = record_retries (flaky_read ~failures:2) in
    let v = wrapped.Disk.read_file "x" in
    (v, List.rev !log, List.rev !sleeps)
  in
  let v, log, sleeps = run () in
  Alcotest.(check string) "succeeds once the fault clears" "payload:x" v;
  Alcotest.(check int) "one retry per transient failure" 2 (List.length log);
  List.iteri
    (fun i (op, attempt, delay) ->
      Alcotest.(check string) "retried op" "read_file" op;
      Alcotest.(check int) "attempts count up" (i + 1) attempt;
      let backoff = Float.min 0.03 (0.01 *. (2.0 ** float_of_int i)) in
      Alcotest.(check bool)
        (Printf.sprintf "delay %d within the jitter band" (i + 1))
        true
        (delay >= backoff && delay <= backoff *. 1.25))
    log;
  Alcotest.(check bool) "slept exactly the reported delays" true
    (sleeps = List.map (fun (_, _, d) -> d) log);
  (* Same seed, fresh wrapper: the jitter schedule is deterministic. *)
  let v', log', sleeps' = run () in
  Alcotest.(check bool) "schedule is deterministic" true
    (v' = v && log' = log && sleeps' = sleeps)

let test_disk_retry_exhausts_then_raises () =
  let wrapped, log, _ = record_retries (flaky_read ~failures:max_int) in
  (match wrapped.Disk.read_file "y" with
  | _ -> Alcotest.fail "a persistently failing disk must re-raise"
  | exception Sys_error _ -> ());
  Alcotest.(check int) "whole budget spent first" retry_policy.Disk.retry_attempts
    (List.length !log)

(* --- Black-box flight recorder persistence --- *)

module Black_box = Poc_resilience.Black_box
module Flight = Poc_obs.Flight

let test_journal_byte_identical_with_flight () =
  (* The tentpole invariant: attaching the flight recorder must not
     move a single journal byte.  Same plan, same schedule, segmented
     store; compare every store file except the FLIGHT box itself. *)
  let plan = plan () in
  let schedule = compile_chaos plan in
  let journal_files dir =
    store_fingerprint dir |> List.filter (fun (name, _) -> name <> "FLIGHT")
  in
  with_tmp_store (fun off_dir ->
      let r_off =
        Supervisor.run plan ~journal:off_dir ~segment_bytes:segment_budget
          ~market ~schedule
      in
      with_tmp_store (fun on_dir ->
          let box = Black_box.create (Filename.concat on_dir "FLIGHT") in
          let r_on =
            Supervisor.run plan ~journal:on_dir ~segment_bytes:segment_budget
              ~market ~schedule ~flight:box
          in
          Black_box.close box;
          Alcotest.(check string) "reports identical" (render r_off) (render r_on);
          Alcotest.(check bool) "journal bytes identical with the recorder on"
            true
            (journal_files off_dir = journal_files on_dir);
          match Black_box.load (Filename.concat on_dir "FLIGHT") with
          | Error e -> Alcotest.failf "flight box unreadable: %s" e
          | Ok img ->
            Alcotest.(check bool) "box recorded the run" true
              (img.Flight.img_records <> []);
            Alcotest.(check bool) "box image is clean" false img.Flight.img_torn))

let test_flight_box_disk_fault_scrub () =
  (* A power cut tears the box's most recent append mid-frame; load
     tolerates the tear, scrub truncates to the valid prefix, and after
     the scrub the image re-reads byte-identically (a second scrub
     keeps every byte). *)
  with_tmp_store (fun dir ->
      let disk = Disk.real () in
      let path = Filename.concat dir "FLIGHT" in
      let box = Black_box.create ~capacity:64 ~disk path in
      let ring = Black_box.ring box in
      for e = 0 to 5 do
        for i = 0 to 3 do
          Flight.emit ring
            ~ts_us:(float_of_int ((4 * e) + i))
            ~epoch:e ~phase:"epoch"
            (Flight.Event { name = "tick"; detail = Printf.sprintf "%d.%d" e i })
        done;
        Black_box.flush box
      done;
      let intact = read_file path in
      Disk.power_cut disk (Disk.Short_write { drop = 5 });
      let torn = read_file path in
      Alcotest.(check bool) "the fault removed bytes" true
        (String.length torn < String.length intact);
      (match Black_box.load ~disk path with
      | Error e -> Alcotest.failf "a torn box must load: %s" e
      | Ok img ->
        Alcotest.(check bool) "tear detected" true img.Flight.img_torn;
        Alcotest.(check int) "only the torn frame is lost" 23
          (List.length img.Flight.img_records));
      (match Black_box.scrub ~disk path with
      | Error e -> Alcotest.failf "scrub: %s" e
      | Ok r ->
        Alcotest.(check bool) "scrub dropped the torn frame" true
          (r.Black_box.fb_bytes_dropped > 0);
        Alcotest.(check int) "kept prefix is exactly the file"
          r.Black_box.fb_bytes_kept
          (String.length (read_file path));
        Alcotest.(check int) "records in the kept prefix" 23
          r.Black_box.fb_records);
      let scrubbed = read_file path in
      (match Black_box.load ~disk path with
      | Error e -> Alcotest.failf "a scrubbed box must load: %s" e
      | Ok img ->
        Alcotest.(check bool) "clean after scrub" false img.Flight.img_torn;
        Alcotest.(check int) "history before the tear survives" 23
          (List.length img.Flight.img_records));
      match Black_box.scrub ~disk path with
      | Error e -> Alcotest.failf "second scrub: %s" e
      | Ok r ->
        Alcotest.(check int) "idempotent: nothing more to drop" 0
          r.Black_box.fb_bytes_dropped;
        Alcotest.(check string) "byte-identical after re-scrub" scrubbed
          (read_file path))

let test_disk_retry_schedule_resets_on_success () =
  (* Fail, succeed, fail: the second failure restarts the backoff at
     the base delay (same jitter draw) instead of continuing to climb. *)
  let calls = ref 0 in
  let ops =
    {
      Disk.real_ops with
      Disk.read_file =
        (fun _ ->
          incr calls;
          if !calls mod 2 = 1 then raise (Sys_error "flaky") else "ok");
    }
  in
  let wrapped, log, _ = record_retries ops in
  ignore (wrapped.Disk.read_file "a");
  ignore (wrapped.Disk.read_file "b");
  match List.rev !log with
  | [ (_, 1, d1); (_, 1, d2) ] ->
    Alcotest.(check (float 1e-12)) "backoff restarts at the base delay" d1 d2
  | l -> Alcotest.failf "expected two first-attempt retries, got %d" (List.length l)

let suite =
  [
    Alcotest.test_case "fault validation lists every problem" `Quick
      test_fault_validation_lists_every_problem;
    Alcotest.test_case "fault compile is deterministic" `Quick
      test_fault_compile_is_deterministic;
    Alcotest.test_case "link failure emits matching repair" `Quick
      test_fault_failure_emits_repair;
    Alcotest.test_case "ladder rungs in order" `Quick test_ladder_rung_order;
    Alcotest.test_case "ladder respects attempt budget" `Quick
      test_ladder_respects_attempt_budget;
    Alcotest.test_case "ladder validation lists every problem" `Quick
      test_ladder_validation_lists_every_problem;
    Alcotest.test_case "chaos run degrades and recovers" `Slow
      test_chaos_run_degrades_and_recovers;
    Alcotest.test_case "chaos invariants hold" `Slow test_chaos_invariants_hold;
    Alcotest.test_case "incident log is byte-identical" `Slow
      test_incident_log_is_byte_identical;
    Alcotest.test_case "fault-free supervised run matches Epochs.run" `Slow
      test_faultfree_supervised_run_matches_epochs;
    Alcotest.test_case "total blackout reports no recovery" `Slow
      test_total_blackout_reports_never;
    QCheck_alcotest.to_alcotest qcheck_fault_compile_seed_determinism;
    QCheck_alcotest.to_alcotest qcheck_fault_compile_seed_sensitivity;
    Alcotest.test_case "fault validation rejects bad crash spec" `Quick
      test_fault_validation_rejects_crash_epoch;
    Alcotest.test_case "pay-as-bid refuses an empty selection" `Quick
      test_pay_as_bid_empty_selection;
    Alcotest.test_case "pay-as-bid prices a virtual-only carry" `Quick
      test_pay_as_bid_external_transit_selection;
    Alcotest.test_case "pay-as-bid prices a surviving subset" `Quick
      test_pay_as_bid_surviving_subset;
    Alcotest.test_case "crash at pre_auction resumes byte-identical" `Slow
      test_crash_resume_pre_auction;
    Alcotest.test_case "crash at pre_settle resumes byte-identical" `Slow
      test_crash_resume_pre_settle;
    Alcotest.test_case "crash at post_settle resumes byte-identical" `Slow
      test_crash_resume_post_settle;
    Alcotest.test_case "crash before first snapshot resumes byte-identical"
      `Slow test_crash_resume_before_first_snapshot;
    Alcotest.test_case "journal replay round-trips a clean run" `Slow
      test_journal_replay_roundtrip;
    Alcotest.test_case "torn and corrupt tails truncate, never crash" `Slow
      test_journal_torn_and_corrupt_tails_truncate;
    Alcotest.test_case "resume after external truncation" `Slow
      test_resume_after_external_truncation;
    Alcotest.test_case "journal bytes identical under domain pool" `Slow
      test_journal_byte_identical_under_pool;
    Alcotest.test_case "journal bytes identical with feascache" `Slow
      test_journal_byte_identical_with_feascache;
    Alcotest.test_case "resume refuses mismatched or complete journals" `Slow
      test_resume_rejects_mismatch_and_complete;
    Alcotest.test_case "replay refuses garbage and future versions" `Quick
      test_replay_rejects_garbage_and_versions;
    Alcotest.test_case "segmented store rotates and GCs" `Slow
      test_segmented_rotation_and_gc;
    Alcotest.test_case "segmented crash/resume is byte-identical" `Slow
      test_segmented_crash_resume_byte_identical;
    Alcotest.test_case "torn rename mid-rotation resumes byte-identical" `Slow
      test_segmented_torn_rename_mid_rotation;
    Alcotest.test_case "single-file interior corruption anchors" `Slow
      test_single_file_interior_corruption_anchor;
    Alcotest.test_case "scrub quarantines and falls back a checkpoint" `Slow
      test_scrub_quarantine_falls_back;
    QCheck_alcotest.to_alcotest qcheck_storage_fault_matrix;
    QCheck_alcotest.to_alcotest qcheck_scrub_idempotent;
    Alcotest.test_case "ladder engage is pool-invariant" `Slow
      test_ladder_engage_pool_invariant;
    Alcotest.test_case "disk retries recover transient faults" `Quick
      test_disk_retry_recovers_transient_faults;
    Alcotest.test_case "disk retries exhaust then raise" `Quick
      test_disk_retry_exhausts_then_raises;
    Alcotest.test_case "disk retry backoff resets on success" `Quick
      test_disk_retry_schedule_resets_on_success;
    Alcotest.test_case "journal byte-identical with flight recorder" `Slow
      test_journal_byte_identical_with_flight;
    Alcotest.test_case "flight box survives disk fault + scrub" `Quick
      test_flight_box_disk_fault_scrub;
  ]
