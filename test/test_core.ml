(* Tests for Poc_core: membership, terms-of-service rule engine, the
   planning pipeline and the settlement ledger. *)

module Member = Poc_core.Member
module Terms = Poc_core.Terms
module Planner = Poc_core.Planner
module Settlement = Poc_core.Settlement
module Vcg = Poc_auction.Vcg
module Matrix = Poc_traffic.Matrix

let plan () = Lazy.force Fixtures.small_plan

(* --- Members ------------------------------------------------------------- *)

let test_members_validate () =
  let plan = plan () in
  let nodes = Poc_graph.Graph.node_count plan.Planner.wan.Poc_topology.Wan.graph in
  List.iter
    (fun m ->
      match Member.validate m ~node_count:nodes with
      | Ok () -> ()
      | Error msg -> Alcotest.fail (m.Member.name ^ ": " ^ msg))
    plan.Planner.members

let test_member_usage_conservation () =
  let plan = plan () in
  (* Every Gbps is sent by one member and received by another, so the
     sum of member usage is twice the matrix volume. *)
  let usage =
    List.fold_left (fun acc m -> acc +. m.Member.monthly_gbps) 0.0
      plan.Planner.members
  in
  Alcotest.(check (float 1e-3))
    "usage = 2 x volume"
    (2.0 *. Matrix.total plan.Planner.matrix)
    usage

let test_member_kinds_present () =
  let plan = plan () in
  let count k =
    List.length (List.filter (fun m -> m.Member.kind = k) plan.Planner.members)
  in
  Alcotest.(check bool) "has LMPs" true (count Member.Lmp > 0);
  Alcotest.(check bool) "has CSPs" true (count Member.Direct_csp > 0);
  Alcotest.(check int) "external ISPs" 2 (count Member.External_isp)

let test_member_validate_errors () =
  let bad =
    { Member.id = 0; name = ""; kind = Member.Lmp; attachment = 0;
      monthly_gbps = 1.0 }
  in
  Alcotest.(check bool) "empty name" true (Member.validate bad ~node_count:5 <> Ok ());
  let out =
    { Member.id = 0; name = "x"; kind = Member.Lmp; attachment = 9;
      monthly_gbps = 1.0 }
  in
  Alcotest.(check bool) "attachment range" true
    (Member.validate out ~node_count:5 <> Ok ())

(* --- Terms of service ------------------------------------------------------- *)

let obs ?(actor = 1) selector action basis =
  { Terms.actor; selector; action; basis }

let test_terms_neutral_forwarding_ok () =
  Alcotest.(check bool) "uniform priority fine" true
    (Terms.judge (obs Terms.All_traffic (Terms.Prioritize 2) (Terms.Posted_price 5.0))
    = Terms.Compliant)

let test_terms_source_discrimination_violates () =
  match
    Terms.judge (obs (Terms.By_source 7) Terms.Deprioritize Terms.Commercial_preference)
  with
  | Terms.Violation _ -> ()
  | Terms.Compliant -> Alcotest.fail "source-based deprioritization must violate"

let test_terms_condition_numbers () =
  Alcotest.(check (option int)) "condition 1" (Some 1)
    (Terms.condition_violated
       (obs (Terms.By_application "video") Terms.Block Terms.No_basis));
  Alcotest.(check (option int)) "condition 2" (Some 2)
    (Terms.condition_violated
       (obs (Terms.By_source 3) Terms.Deny_cdn Terms.Commercial_preference));
  Alcotest.(check (option int)) "condition 3" (Some 3)
    (Terms.condition_violated
       (obs (Terms.By_source 3) (Terms.Deny_third_party_service "cdn")
          Terms.No_basis))

let test_terms_security_exception () =
  Alcotest.(check bool) "security blocking allowed" true
    (Terms.judge (obs (Terms.By_source 9) Terms.Block Terms.Security)
    = Terms.Compliant);
  Alcotest.(check bool) "maintenance priority allowed" true
    (Terms.judge
       (obs (Terms.By_application "ops") (Terms.Prioritize 7) Terms.Maintenance)
    = Terms.Compliant)

let test_terms_posted_price_must_be_open () =
  (* A "posted price" offered only to one source is still discrimination. *)
  match
    Terms.judge (obs (Terms.By_source 2) (Terms.Prioritize 1) (Terms.Posted_price 9.0))
  with
  | Terms.Violation _ -> ()
  | Terms.Compliant -> Alcotest.fail "selective posted price must violate"

let test_terms_blanket_block_violates () =
  match Terms.judge (obs Terms.All_traffic Terms.Block Terms.No_basis) with
  | Terms.Violation _ -> ()
  | Terms.Compliant -> Alcotest.fail "blanket unexcused blocking must violate"

let test_terms_violations_filter () =
  let observations =
    [
      obs Terms.All_traffic (Terms.Prioritize 1) (Terms.Posted_price 2.0);
      obs (Terms.By_source 4) Terms.Block Terms.Commercial_preference;
      obs (Terms.By_destination 5) Terms.Provide_cdn Terms.No_basis;
    ]
  in
  Alcotest.(check int) "two violations" 2
    (List.length (Terms.violations observations));
  Alcotest.(check int) "all judged" 3 (List.length (Terms.judge_all observations))

(* --- Planner ------------------------------------------------------------------ *)

let test_plan_builds () =
  let plan = plan () in
  Alcotest.(check bool) "selection non-empty" true
    (plan.Planner.outcome.Vcg.selection.Vcg.selected <> []);
  Alcotest.(check bool) "routing feasible" true
    plan.Planner.routing.Poc_mcf.Router.feasible

let test_plan_backbone_enabled () =
  let plan = plan () in
  let enabled = Planner.backbone_enabled plan in
  List.iter
    (fun id -> Alcotest.(check bool) "selected enabled" true (enabled id))
    plan.Planner.outcome.Vcg.selection.Vcg.selected;
  let all = Poc_graph.Graph.edge_count plan.Planner.wan.Poc_topology.Wan.graph in
  let enabled_count =
    List.length (List.filter enabled (List.init all Fun.id))
  in
  Alcotest.(check int) "exactly the selection"
    (List.length plan.Planner.outcome.Vcg.selection.Vcg.selected)
    enabled_count

let test_plan_utilization () =
  let plan = plan () in
  let s = Planner.utilization_summary plan in
  Alcotest.(check bool) "max utilization <= 1" true
    (s.Poc_util.Stats.max <= 1.0 +. 1e-6);
  Alcotest.(check bool) "some load" true (s.Poc_util.Stats.count > 0)

let test_plan_cost_positive () =
  let plan = plan () in
  Alcotest.(check bool) "POC pays something" true (Planner.monthly_cost plan > 0.0)

let test_plan_rejects_bad_config () =
  match
    Planner.build { Fixtures.small_config with Planner.demand_fraction = -1.0 }
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative demand fraction must fail"

let test_plan_infeasible_demand () =
  (* A demand far beyond total capacity has no acceptable selection. *)
  match
    Planner.build { Fixtures.small_config with Planner.demand_fraction = 50.0 }
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "infeasible demand must fail"

(* --- Settlement ------------------------------------------------------------------ *)

let ledger () = Settlement.of_plan (plan ()) ()

let test_settlement_conservation () =
  Alcotest.(check (float 1e-3)) "double entry" 0.0
    (Settlement.conservation (ledger ()))

let test_settlement_poc_breaks_even () =
  Alcotest.(check (float 1e-3)) "nonprofit" 0.0 (Settlement.poc_net (ledger ()))

let test_settlement_margin () =
  let l = Settlement.of_plan (plan ()) ~margin:0.1 () in
  let spend =
    List.fold_left
      (fun acc (e : Settlement.entry) ->
        match e.Settlement.src with
        | Settlement.Poc -> acc +. e.Settlement.amount
        | _ -> acc)
      0.0 l.Settlement.entries
  in
  Alcotest.(check (float 1e-3)) "margin retained" (0.1 *. spend)
    (Settlement.poc_net l)

let test_settlement_bps_paid_their_vcg_payment () =
  let plan = plan () in
  let l = Settlement.of_plan plan () in
  Array.iter
    (fun (r : Vcg.bp_result) ->
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "BP %d net" r.Vcg.bp)
        r.Vcg.payment
        (Settlement.net l (Settlement.Bp_party r.Vcg.bp)))
    plan.Planner.outcome.Vcg.bp_results

let test_settlement_no_termination_entries () =
  (* Structural neutrality: no member-to-member transfers exist. *)
  let l = ledger () in
  List.iter
    (fun (e : Settlement.entry) ->
      match (e.Settlement.src, e.Settlement.dst) with
      | Settlement.Member_party _, Settlement.Member_party _ ->
        Alcotest.fail "termination-fee-like entry found"
      | _, _ -> ())
    l.Settlement.entries

let test_settlement_usage_price_positive () =
  Alcotest.(check bool) "posted price positive" true
    ((ledger ()).Settlement.usage_price > 0.0)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i =
    if i + nl > hl then false
    else if String.sub haystack i nl = needle then true
    else scan (i + 1)
  in
  scan 0

let test_settlement_render () =
  let plan = plan () in
  let s = Settlement.render plan (ledger ()) in
  Alcotest.(check bool) "has a BP row" true (contains s "BP-");
  Alcotest.(check bool) "has a header" true (contains s "party")


let qcheck_terms_posted_price_open_always_ok =
  QCheck.Test.make ~name:"open posted-price actions are compliant" ~count:100
    QCheck.(pair (int_range 0 3) (float_range 0.0 100.0))
    (fun (action_ix, price) ->
      let action =
        match action_ix with
        | 0 -> Terms.Prioritize 1
        | 1 -> Terms.Provide_cdn
        | 2 -> Terms.Allow_third_party_service "cdn"
        | _ -> Terms.Prioritize 3
      in
      Terms.judge
        { Terms.actor = 1; selector = Terms.All_traffic; action;
          basis = Terms.Posted_price price }
      = Terms.Compliant)

let qcheck_terms_selective_preference_always_violates =
  QCheck.Test.make ~name:"selective commercial preference always violates"
    ~count:100
    QCheck.(pair (int_range 0 2) (int_range 0 20))
    (fun (sel_ix, member) ->
      let selector =
        match sel_ix with
        | 0 -> Terms.By_source member
        | 1 -> Terms.By_destination member
        | _ -> Terms.By_application "video"
      in
      match
        Terms.judge
          { Terms.actor = 0; selector; action = Terms.Deprioritize;
            basis = Terms.Commercial_preference }
      with
      | Terms.Violation _ -> true
      | Terms.Compliant -> false)

let test_settlement_check_accepts_healthy_ledger () =
  match Settlement.check (Settlement.of_plan (plan ()) ()) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "healthy ledger must pass: %s" msg

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_settlement_check_rejects_nonfinite_price () =
  let l = Settlement.of_plan (plan ()) () in
  match Settlement.check { l with Settlement.usage_price = Float.nan } with
  | Ok () -> Alcotest.fail "a NaN posted price must fail"
  | Error msg ->
    Alcotest.(check bool) "names the posted price" true
      (contains msg "posted usage price");
    Alcotest.(check bool) "does not blame conservation" false
      (contains msg "nets to")

let test_settlement_check_rejects_broken_conservation () =
  (* A NaN amount poisons every net: the zero-sum check must fail
     (which is why it is written [not (<=)], not [>]). *)
  let l = Settlement.of_plan (plan ()) () in
  let broken =
    {
      l with
      Settlement.entries =
        [
          {
            Settlement.src = Settlement.Poc;
            dst = Settlement.Bp_party 0;
            amount = Float.nan;
            what = "corrupt";
          };
        ];
    }
  in
  match Settlement.check broken with
  | Ok () -> Alcotest.fail "a NaN ledger must fail the zero-sum check"
  | Error msg ->
    Alcotest.(check bool) "names conservation" true (contains msg "nets to")

let qcheck_settlement_conserves_for_any_margin =
  QCheck.Test.make ~name:"settlement conserves for any margin" ~count:20
    QCheck.(pair (float_range 0.0 0.5) (float_range 1.0 4.0))
    (fun (margin, retail_multiplier) ->
      let l = Settlement.of_plan (plan ()) ~margin ~retail_multiplier () in
      let spend =
        List.fold_left
          (fun acc (e : Settlement.entry) ->
            match e.Settlement.src with
            | Settlement.Poc -> acc +. e.Settlement.amount
            | _ -> acc)
          0.0 l.Settlement.entries
      in
      Float.abs (Settlement.conservation l) < 1e-3
      && Float.abs (Settlement.poc_net l -. (margin *. spend)) < 1e-3)

let suite =
  [
    Alcotest.test_case "members validate" `Quick test_members_validate;
    Alcotest.test_case "member usage conservation" `Quick test_member_usage_conservation;
    Alcotest.test_case "member kinds present" `Quick test_member_kinds_present;
    Alcotest.test_case "member validation errors" `Quick test_member_validate_errors;
    Alcotest.test_case "terms: neutral forwarding ok" `Quick
      test_terms_neutral_forwarding_ok;
    Alcotest.test_case "terms: source discrimination" `Quick
      test_terms_source_discrimination_violates;
    Alcotest.test_case "terms: condition numbers" `Quick test_terms_condition_numbers;
    Alcotest.test_case "terms: security exception" `Quick test_terms_security_exception;
    Alcotest.test_case "terms: posted price openness" `Quick
      test_terms_posted_price_must_be_open;
    Alcotest.test_case "terms: blanket block" `Quick test_terms_blanket_block_violates;
    Alcotest.test_case "terms: violations filter" `Quick test_terms_violations_filter;
    Alcotest.test_case "plan builds" `Quick test_plan_builds;
    Alcotest.test_case "plan backbone mask" `Quick test_plan_backbone_enabled;
    Alcotest.test_case "plan utilization" `Quick test_plan_utilization;
    Alcotest.test_case "plan cost positive" `Quick test_plan_cost_positive;
    Alcotest.test_case "plan rejects bad config" `Quick test_plan_rejects_bad_config;
    Alcotest.test_case "plan infeasible demand" `Quick test_plan_infeasible_demand;
    Alcotest.test_case "settlement conservation" `Quick test_settlement_conservation;
    Alcotest.test_case "settlement POC break-even" `Quick
      test_settlement_poc_breaks_even;
    Alcotest.test_case "settlement margin" `Quick test_settlement_margin;
    Alcotest.test_case "settlement pays VCG amounts" `Quick
      test_settlement_bps_paid_their_vcg_payment;
    Alcotest.test_case "settlement has no termination entries" `Quick
      test_settlement_no_termination_entries;
    Alcotest.test_case "settlement posted price" `Quick
      test_settlement_usage_price_positive;
    Alcotest.test_case "settlement render" `Quick test_settlement_render;
    Alcotest.test_case "settlement check accepts healthy ledger" `Quick
      test_settlement_check_accepts_healthy_ledger;
    Alcotest.test_case "settlement check rejects non-finite price" `Quick
      test_settlement_check_rejects_nonfinite_price;
    Alcotest.test_case "settlement check rejects broken conservation" `Quick
      test_settlement_check_rejects_broken_conservation;
    QCheck_alcotest.to_alcotest qcheck_terms_posted_price_open_always_ok;
    QCheck_alcotest.to_alcotest qcheck_terms_selective_preference_always_violates;
    QCheck_alcotest.to_alcotest qcheck_settlement_conserves_for_any_margin;
  ]
