#!/bin/sh
# Daemon kill-under-load smoke check: run `poc-cli serve`, accept live
# bids, SIGKILL the daemon in the middle of an epoch batch while a
# client hammers it with STATUS requests, restart with `serve
# --resume`, and require (a) STATUS ok with a recovery counted, (b)
# the recovery visible on the live Prometheus endpoint, and (c) the
# finished store byte-identical to an uninterrupted reference run.
set -eu

cd "$(dirname "$0")/.."
dune build bin/poc_cli.exe

workdir=$(mktemp -d)
pids=""
cleanup() {
  for p in $pids; do kill "$p" 2>/dev/null || true; done
  rm -rf "$workdir"
}
trap cleanup EXIT

cli=_build/default/bin/poc_cli.exe
common="--seed 7 --sites 16 --bps 5 --epochs 8"
metrics_port=9857

# The accepted updates: all take effect at epoch 1, before any epoch
# runs, so the kill point cannot shift their apply-epochs.
send_bids() {
  "$cli" ctl --socket "$1" \
    "BID 1 0 1.07 2" "MATRIX 2 1.04" "BID 3 1 0.95"
}

wait_for_socket() {
  i=0
  while [ ! -S "$1" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
      echo "FAIL: daemon socket $1 never appeared" >&2
      exit 1
    fi
    sleep 0.1
  done
}

# --- Reference: an uninterrupted serve session -------------------------------

ref_root="$workdir/ref"
ref_sock="$workdir/ref.sock"
# shellcheck disable=SC2086  # $common is a flag list
"$cli" serve --root "$ref_root" --socket "$ref_sock" $common \
  > "$workdir/ref-serve.log" 2>&1 &
ref_pid=$!
pids="$pids $ref_pid"
wait_for_socket "$ref_sock"

send_bids "$ref_sock" > /dev/null
"$cli" ctl --socket "$ref_sock" "EPOCH 6" "EPOCH 10" "SHUTDOWN" \
  > "$workdir/ref-ctl.txt"
wait "$ref_pid" || { echo "FAIL: reference daemon exited non-zero" >&2; exit 1; }
pids=$(echo "$pids" | sed "s/ $ref_pid//")
grep -q "BYE complete" "$workdir/ref-ctl.txt" || {
  echo "FAIL: reference run did not complete" >&2; exit 1; }
echo "ok: reference serve session completed"

# --- Kill under load ---------------------------------------------------------

root="$workdir/killed"
sock="$workdir/killed.sock"
# shellcheck disable=SC2086
"$cli" serve --root "$root" --socket "$sock" --metrics-port "$metrics_port" \
  $common > "$workdir/killed-serve.log" 2>&1 &
daemon_pid=$!
pids="$pids $daemon_pid"
wait_for_socket "$sock"

send_bids "$sock" > /dev/null

# Load: one client drives a six-epoch batch, another floods read-only
# STATUS requests.  SIGKILL lands mid-batch.
"$cli" ctl --socket "$sock" "EPOCH 6" > /dev/null 2>&1 &
epoch_pid=$!
( while "$cli" ctl --socket "$sock" STATUS > /dev/null 2>&1; do :; done ) &
status_pid=$!
pids="$pids $status_pid"

sleep 0.5
kill -9 "$daemon_pid"
wait "$daemon_pid" 2>/dev/null && {
  echo "FAIL: daemon survived SIGKILL" >&2; exit 1; }
pids=$(echo "$pids" | sed "s/ $daemon_pid//")
wait "$epoch_pid" 2>/dev/null || true
wait "$status_pid" 2>/dev/null || true
pids=$(echo "$pids" | sed "s/ $status_pid//")
echo "ok: daemon SIGKILLed under load"

# --- Restart, verify liveness, finish the horizon ----------------------------

# SIGKILL leaves the old socket file behind; clear it so the wait below
# sees the resumed daemon's socket, not the corpse's.
rm -f "$sock"

# shellcheck disable=SC2086
"$cli" serve --root "$root" --socket "$sock" --resume \
  --metrics-port "$metrics_port" $common \
  > "$workdir/resumed-serve.log" 2>&1 &
daemon_pid=$!
pids="$pids $daemon_pid"
wait_for_socket "$sock"

i=0
until "$cli" ctl --socket "$sock" STATUS > "$workdir/resumed-status.txt" \
  2>/dev/null; do
  i=$((i + 1))
  if [ "$i" -gt 50 ]; then
    echo "FAIL: resumed daemon never answered STATUS" >&2
    exit 1
  fi
  sleep 0.1
done
grep -q "^STATUS ok" "$workdir/resumed-status.txt" || {
  echo "FAIL: resumed daemon STATUS not ok" >&2
  cat "$workdir/resumed-status.txt" >&2
  exit 1
}
grep -q "recoveries=1" "$workdir/resumed-status.txt" || {
  echo "FAIL: resumed STATUS does not count the recovery" >&2
  cat "$workdir/resumed-status.txt" >&2
  exit 1
}

# The same counters on the live Prometheus endpoint.
curl -sf "http://127.0.0.1:$metrics_port/metrics" > "$workdir/metrics.txt" || {
  echo "FAIL: metrics endpoint unreachable" >&2; exit 1; }
grep -q "^poc_daemon_recoveries_total 1" "$workdir/metrics.txt" || {
  echo "FAIL: poc_daemon_recoveries_total not 1 on the live endpoint" >&2
  exit 1
}
grep -q "^poc_daemon_accepted_total 3" "$workdir/metrics.txt" || {
  echo "FAIL: poc_daemon_accepted_total lost bids across the kill" >&2
  exit 1
}
echo "ok: recovery visible over STATUS and the Prometheus endpoint"

"$cli" ctl --socket "$sock" "EPOCH 10" "SHUTDOWN" > "$workdir/resumed-ctl.txt"
wait "$daemon_pid" || { echo "FAIL: resumed daemon exited non-zero" >&2; exit 1; }
pids=$(echo "$pids" | sed "s/ $daemon_pid//")
grep -q "BYE complete" "$workdir/resumed-ctl.txt" || {
  echo "FAIL: resumed run did not complete" >&2; exit 1; }

# --- Byte-compare the stores -------------------------------------------------

if [ "$(ls "$ref_root/store")" != "$(ls "$root/store")" ]; then
  echo "FAIL: stores hold different file sets" >&2
  exit 1
fi
for f in "$ref_root/store"/*; do
  [ -f "$f" ] || continue
  if ! cmp -s "$f" "$root/store/$(basename "$f")"; then
    echo "FAIL: store file $(basename "$f") differs from the reference" >&2
    exit 1
  fi
done
cmp -s "$ref_root/intake.log" "$root/intake.log" || {
  echo "FAIL: intake log differs from the reference" >&2; exit 1; }
echo "ok: recovered store and intake log byte-identical to the reference"

echo "daemon kill smoke: all checks passed"
