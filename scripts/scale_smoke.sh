#!/bin/sh
# Continent-scale smoke check (docs/SCALING.md): the --scale topology
# preset must actually reach the 10^5-link regime, the feasibility
# cache must be invisible in outcomes (market results identical with
# --no-feas-cache, at --jobs 1 and 4) while actually working (nonzero
# hit rate in the Prometheus exposition), and a quick E19 run must
# clear the >= 5x combined speedup bar with byte-identical cache
# {on,off} x jobs {1,4} market outcomes.
set -eu

cd "$(dirname "$0")/.."
dune build bin/poc_cli.exe bench/main.exe

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

cli=_build/default/bin/poc_cli.exe

# 1. The --scale preset generates an instance in the 10^5-link regime.
"$cli" topology --scale > "$workdir/topo.txt"
links=$(sed -n 's/.* BPs offering \([0-9]*\) logical links.*/\1/p' \
  "$workdir/topo.txt")
if [ -z "$links" ] || [ "$links" -lt 100000 ]; then
  echo "FAIL: --scale preset offered only '${links:-?}' links (< 10^5)" >&2
  exit 1
fi
echo "ok: --scale preset offers $links logical links"

# 2. The cache changes no outcome at any --jobs value: everything above
# the per-phase wall-clock table must be byte-identical across cache
# {on,off} x jobs {1,4}.
for jobs in 1 4; do
  for mode in on off; do
    flag=""
    [ "$mode" = off ] && flag="--no-feas-cache"
    # shellcheck disable=SC2086
    "$cli" market --epochs 3 --sites 10 --bps 4 --jobs "$jobs" $flag \
      --metrics "$workdir/market-$mode-$jobs.prom" \
      > "$workdir/market-$mode-$jobs.txt"
    awk '/per-phase wall clock:/{exit} {print}' \
      "$workdir/market-$mode-$jobs.txt" > "$workdir/market-$mode-$jobs.head"
  done
done
for f in "$workdir"/market-*.head; do
  diff -u "$workdir/market-on-1.head" "$f"
done
echo "ok: market outcomes identical, cache {on,off} x jobs {1,4}"

# 3. The cache is actually exercised: nonzero hits with it enabled,
# zero with --no-feas-cache.
hits_on=$(sed -n 's/^poc_feascache_hits_total \([0-9]*\)$/\1/p' \
  "$workdir/market-on-1.prom")
hits_off=$(sed -n 's/^poc_feascache_hits_total \([0-9]*\)$/\1/p' \
  "$workdir/market-off-1.prom")
if [ -z "$hits_on" ] || [ "$hits_on" -eq 0 ]; then
  echo "FAIL: cache enabled but poc_feascache_hits_total = '${hits_on:-?}'" >&2
  exit 1
fi
if [ "$hits_off" != "0" ]; then
  echo "FAIL: --no-feas-cache but poc_feascache_hits_total = $hits_off" >&2
  exit 1
fi
echo "ok: feasibility cache hit rate nonzero ($hits_on hits; 0 when disabled)"

# 4. Quick E19: combined speedup >= 5x and the four-way byte identity.
bench=$(pwd)/_build/default/bench/main.exe
(cd "$workdir" && "$bench" e19) \
  > "$workdir/e19.txt" 2>&1 || { cat "$workdir/e19.txt" >&2; exit 1; }
grep -q "all four runs byte-identical: true" "$workdir/e19.txt"
python3 - "$workdir/BENCH_e19_metrics.json" <<'EOF'
import json, sys

doc = json.load(open(sys.argv[1]))
scale = doc["scale"]
assert scale["speedup_combined"] >= 5.0, \
    f"combined speedup {scale['speedup_combined']} < 5x"
assert doc["identity"]["identical"] is True
print(f"ok: E19 combined speedup {scale['speedup_combined']}x (>= 5x)")
EOF

echo "scale smoke: all checks passed"
