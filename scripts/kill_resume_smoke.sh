#!/bin/sh
# Kill-and-resume smoke check: crash the journaled chaos month at every
# injection phase, resume each journal, and require the resumed stdout
# (epoch table, incident log, closing ledger) to be byte-identical to
# an uninterrupted run.
set -eu

cd "$(dirname "$0")/.."
dune build examples/chaos_month.exe

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

run=_build/default/examples/chaos_month.exe

"$run" > "$workdir/uninterrupted.txt"

for phase in pre_auction pre_settle post_settle; do
  journal="$workdir/journal-$phase.bin"

  status=0
  "$run" --journal "$journal" --crash "5:$phase" \
    > "$workdir/crashed-$phase.txt" 2>/dev/null || status=$?
  if [ "$status" -ne 10 ]; then
    echo "FAIL($phase): expected crash exit code 10, got $status" >&2
    exit 1
  fi

  "$run" --resume "$journal" > "$workdir/resumed-$phase.txt" 2>/dev/null

  if ! diff -u "$workdir/uninterrupted.txt" "$workdir/resumed-$phase.txt"; then
    echo "FAIL($phase): resumed output differs from the uninterrupted run" >&2
    exit 1
  fi
  echo "ok: crash at 5:$phase resumed byte-identical"
done

# A resumed (now complete) journal must be refused, not silently re-run.
if "$run" --resume "$workdir/journal-post_settle.bin" >/dev/null 2>&1; then
  echo "FAIL: resuming a completed journal should fail" >&2
  exit 1
fi
echo "ok: completed journal refused"

# The same crash/resume cycle through the domain pool: outputs and the
# resumed journal must be byte-identical to the serial (--jobs 1) path.
"$run" --jobs 2 > "$workdir/uninterrupted-jobs2.txt"
if ! diff -u "$workdir/uninterrupted.txt" "$workdir/uninterrupted-jobs2.txt"; then
  echo "FAIL: --jobs 2 run differs from serial run" >&2
  exit 1
fi

journal="$workdir/journal-jobs2.bin"
status=0
"$run" --jobs 2 --journal "$journal" --crash "5:pre_settle" \
  > "$workdir/crashed-jobs2.txt" 2>/dev/null || status=$?
if [ "$status" -ne 10 ]; then
  echo "FAIL(jobs2): expected crash exit code 10, got $status" >&2
  exit 1
fi
"$run" --jobs 2 --resume "$journal" > "$workdir/resumed-jobs2.txt" 2>/dev/null
if ! diff -u "$workdir/uninterrupted.txt" "$workdir/resumed-jobs2.txt"; then
  echo "FAIL(jobs2): resumed output differs from the uninterrupted run" >&2
  exit 1
fi
echo "ok: --jobs 2 crash/resume byte-identical to serial"

echo "kill-and-resume smoke: all checks passed"
