#!/bin/sh
# Kill-and-resume smoke check: crash the journaled chaos month at every
# injection phase, resume each journal, and require the resumed stdout
# (epoch table, incident log, closing ledger) to be byte-identical to
# an uninterrupted run.  The second half repeats the exercise against
# the segmented store: rotation under a byte budget, a torn manifest
# rename mid-rotation, a corrupt-byte power cut followed by scrub, and
# byte-diffs of the store files themselves.
set -eu

cd "$(dirname "$0")/.."
dune build examples/chaos_month.exe bin/poc_cli.exe

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

run=_build/default/examples/chaos_month.exe
cli=_build/default/bin/poc_cli.exe

# Byte-compare two segmented stores: same file names, same contents.
diff_stores() {
  a=$1; b=$2; label=$3
  if [ "$(ls "$a")" != "$(ls "$b")" ]; then
    echo "FAIL($label): stores hold different file sets" >&2
    exit 1
  fi
  for f in "$a"/*; do
    [ -f "$f" ] || continue
    if ! cmp -s "$f" "$b/$(basename "$f")"; then
      echo "FAIL($label): store file $(basename "$f") differs" >&2
      exit 1
    fi
  done
}

"$run" > "$workdir/uninterrupted.txt"

for phase in pre_auction pre_settle post_settle; do
  journal="$workdir/journal-$phase.bin"

  status=0
  "$run" --journal "$journal" --crash "5:$phase" \
    > "$workdir/crashed-$phase.txt" 2>/dev/null || status=$?
  if [ "$status" -ne 10 ]; then
    echo "FAIL($phase): expected crash exit code 10, got $status" >&2
    exit 1
  fi

  "$run" --resume "$journal" > "$workdir/resumed-$phase.txt" 2>/dev/null

  if ! diff -u "$workdir/uninterrupted.txt" "$workdir/resumed-$phase.txt"; then
    echo "FAIL($phase): resumed output differs from the uninterrupted run" >&2
    exit 1
  fi
  echo "ok: crash at 5:$phase resumed byte-identical"
done

# A resumed (now complete) journal must be refused, not silently re-run.
if "$run" --resume "$workdir/journal-post_settle.bin" >/dev/null 2>&1; then
  echo "FAIL: resuming a completed journal should fail" >&2
  exit 1
fi
echo "ok: completed journal refused"

# The same crash/resume cycle through the domain pool: outputs and the
# resumed journal must be byte-identical to the serial (--jobs 1) path.
"$run" --jobs 2 > "$workdir/uninterrupted-jobs2.txt"
if ! diff -u "$workdir/uninterrupted.txt" "$workdir/uninterrupted-jobs2.txt"; then
  echo "FAIL: --jobs 2 run differs from serial run" >&2
  exit 1
fi

journal="$workdir/journal-jobs2.bin"
status=0
"$run" --jobs 2 --journal "$journal" --crash "5:pre_settle" \
  > "$workdir/crashed-jobs2.txt" 2>/dev/null || status=$?
if [ "$status" -ne 10 ]; then
  echo "FAIL(jobs2): expected crash exit code 10, got $status" >&2
  exit 1
fi
"$run" --jobs 2 --resume "$journal" > "$workdir/resumed-jobs2.txt" 2>/dev/null
if ! diff -u "$workdir/uninterrupted.txt" "$workdir/resumed-jobs2.txt"; then
  echo "FAIL(jobs2): resumed output differs from the uninterrupted run" >&2
  exit 1
fi
echo "ok: --jobs 2 crash/resume byte-identical to serial"

# --- Segmented store ---------------------------------------------------------

budget=2048

# Reference: an uninterrupted segmented run.  Its store is the byte
# target every recovery below must reproduce.
"$run" --journal "$workdir/seg-ref" --segment-bytes "$budget" \
  > "$workdir/seg-uninterrupted.txt" 2>/dev/null
if ! diff -u "$workdir/uninterrupted.txt" "$workdir/seg-uninterrupted.txt"; then
  echo "FAIL(seg): segmented run output differs from single-file run" >&2
  exit 1
fi
segs=$(ls "$workdir/seg-ref" | grep -c '\.seg$')
if [ "$segs" -lt 2 ]; then
  echo "FAIL(seg): expected rotation to leave >= 2 segments, got $segs" >&2
  exit 1
fi
echo "ok: segmented run matches single-file output ($segs live segments)"

# Crash mid-run (epoch 5 straddles the rotation at the epoch-4
# snapshot), resume, and require the store byte-identical.
for phase in pre_auction post_settle; do
  store="$workdir/seg-crash-$phase"
  status=0
  "$run" --journal "$store" --segment-bytes "$budget" --crash "5:$phase" \
    > /dev/null 2>&1 || status=$?
  if [ "$status" -ne 10 ]; then
    echo "FAIL(seg-$phase): expected crash exit code 10, got $status" >&2
    exit 1
  fi
  "$run" --resume "$store" > "$workdir/seg-resumed-$phase.txt" 2>/dev/null
  if ! diff -u "$workdir/uninterrupted.txt" "$workdir/seg-resumed-$phase.txt"; then
    echo "FAIL(seg-$phase): resumed output differs" >&2
    exit 1
  fi
  diff_stores "$workdir/seg-ref" "$store" "seg-$phase"
  echo "ok: segmented crash at 5:$phase resumed byte-identical (store too)"
done

# A power cut that tears the manifest rename mid-rotation: the orphan
# segment is discarded on resume and the rotation is redone, landing on
# the same bytes.  Epoch 4 post_settle is right after the
# snapshot-triggered rotation.
store="$workdir/seg-torn-rename"
status=0
"$run" --journal "$store" --segment-bytes "$budget" \
  --disk-fault "4:post_settle:torn_rename" > /dev/null 2>&1 || status=$?
if [ "$status" -ne 10 ]; then
  echo "FAIL(torn-rename): expected crash exit code 10, got $status" >&2
  exit 1
fi
"$run" --resume "$store" > "$workdir/seg-resumed-torn.txt" 2>/dev/null
if ! diff -u "$workdir/uninterrupted.txt" "$workdir/seg-resumed-torn.txt"; then
  echo "FAIL(torn-rename): resumed output differs" >&2
  exit 1
fi
diff_stores "$workdir/seg-ref" "$store" "torn-rename"
echo "ok: torn manifest rename mid-rotation resumed byte-identical"

# A corrupt-byte power cut, then scrub, then resume.  The scrub report
# is machine-readable JSON on stdout; exit 0 means the store resumes.
store="$workdir/seg-corrupt"
status=0
"$run" --journal "$store" --segment-bytes "$budget" \
  --disk-fault "6:pre_settle:corrupt_byte:99" > /dev/null 2>&1 || status=$?
if [ "$status" -ne 10 ]; then
  echo "FAIL(corrupt): expected crash exit code 10, got $status" >&2
  exit 1
fi
"$cli" scrub --dry-run "$store" > "$workdir/scrub-dry.json"
grep -q '"mode":"segmented"' "$workdir/scrub-dry.json" || {
  echo "FAIL(corrupt): scrub report not segmented JSON" >&2; exit 1; }
"$cli" scrub "$store" > "$workdir/scrub.json"
"$run" --resume "$store" > "$workdir/seg-resumed-corrupt.txt" 2>/dev/null
if ! diff -u "$workdir/uninterrupted.txt" "$workdir/seg-resumed-corrupt.txt"; then
  echo "FAIL(corrupt): resumed output differs after scrub" >&2
  exit 1
fi
echo "ok: corrupt-byte power cut scrubbed and resumed identical"

echo "kill-and-resume smoke: all checks passed"
