#!/bin/sh
# Observability smoke check: a traced market run and a traced chaos run
# must produce loadable Chrome trace-event JSON (spans for every epoch
# phase, fault events in the chaos trace) and a parseable Prometheus
# text exposition, and tracing must not change what the run computes.
set -eu

cd "$(dirname "$0")/.."
dune build bin/poc_cli.exe

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

cli=_build/default/bin/poc_cli.exe

"$cli" market --epochs 3 --sites 8 --bps 3 \
  --trace "$workdir/market.json" --metrics "$workdir/market.prom" \
  > "$workdir/market.txt"
"$cli" chaos --epochs 8 --sites 8 --bps 3 \
  --trace "$workdir/chaos.json" --metrics "$workdir/chaos.prom" \
  > "$workdir/chaos.txt"

# The traces are valid JSON in the trace-event envelope, the chaos one
# covering every supervised phase and carrying the injected faults.
python3 - "$workdir/market.json" "$workdir/chaos.json" <<'EOF'
import json, sys

for path in sys.argv[1:]:
    with open(path) as f:
        doc = json.load(f)
    events = doc["traceEvents"]
    assert doc["displayTimeUnit"] == "ms", path
    assert events, f"{path}: empty trace"
    names = {e["name"] for e in events}
    for e in events:
        assert e["ph"] in ("X", "i"), f"{path}: unexpected phase {e['ph']}"
        assert e["ts"] >= 0, f"{path}: negative timestamp"
    assert "epoch" in names and "auction" in names, f"{path}: {names}"

with open(sys.argv[2]) as f:
    chaos = json.load(f)["traceEvents"]
chaos_names = {e["name"] for e in chaos}
for phase in ("drift", "routing", "settlement"):
    assert phase in chaos_names, f"chaos trace missing {phase} span"
assert "fault" in chaos_names, "chaos trace missing injected-fault events"
print("ok: traces are valid Chrome trace-event JSON")
EOF

# The Prometheus files expose the per-phase histograms and counters.
for prom in "$workdir/market.prom" "$workdir/chaos.prom"; do
  for needle in \
    "# TYPE poc_epoch_seconds histogram" \
    "poc_epoch_seconds_count" \
    "poc_phase_auction_seconds_sum" \
    "# TYPE poc_vcg_auctions_total counter"; do
    if ! grep -q "^$needle" "$prom"; then
      echo "FAIL: $prom lacks '$needle'" >&2
      exit 1
    fi
  done
done
echo "ok: Prometheus expositions well-formed"

# Tracing must be observation-only: the same runs without --trace
# print byte-identical results (everything above the per-phase table,
# whose wall-clock numbers legitimately vary run to run).
"$cli" market --epochs 3 --sites 8 --bps 3 > "$workdir/market-plain.txt"
"$cli" chaos --epochs 8 --sites 8 --bps 3 > "$workdir/chaos-plain.txt"
for pair in market chaos; do
  for f in "$workdir/$pair.txt" "$workdir/$pair-plain.txt"; do
    awk '/per-phase wall clock:/{exit} {print}' "$f" > "$f.head"
  done
  diff -u "$workdir/$pair-plain.txt.head" "$workdir/$pair.txt.head"
done
echo "ok: traced runs compute identical results to untraced runs"

# The domain pool must be observation-invisible too: --jobs 2 runs
# print the same results (and the same trace span names) as --jobs 1.
"$cli" market --epochs 3 --sites 8 --bps 3 --jobs 2 \
  --trace "$workdir/market-jobs2.json" > "$workdir/market-jobs2.txt"
"$cli" chaos --epochs 8 --sites 8 --bps 3 --jobs 2 \
  --trace "$workdir/chaos-jobs2.json" > "$workdir/chaos-jobs2.txt"
for pair in market chaos; do
  awk '/per-phase wall clock:/{exit} {print}' "$workdir/$pair-jobs2.txt" \
    > "$workdir/$pair-jobs2.txt.head"
  diff -u "$workdir/$pair-plain.txt.head" "$workdir/$pair-jobs2.txt.head"
done
python3 - "$workdir/market.json" "$workdir/market-jobs2.json" <<'EOF'
import json, sys

def span_names(path):
    with open(path) as f:
        return sorted({e["name"] for e in json.load(f)["traceEvents"]})

serial, jobs2 = (span_names(p) for p in sys.argv[1:])
assert serial == jobs2, f"span names diverge: {serial} vs {jobs2}"
print("ok: --jobs 2 trace covers the same span names")
EOF
echo "ok: --jobs 2 runs compute identical results to serial runs"

echo "trace smoke: all checks passed"
