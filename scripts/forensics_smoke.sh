#!/bin/sh
# Forensics smoke check: SIGKILL a flight-recording daemon mid-epoch
# under load, then require `poc-cli forensics` to reconstruct the
# incident from the dead process's artifacts alone — the FLIGHT box
# must be readable, the timeline must merge intake + flight + journal,
# and the verdict must name the in-flight epoch and phase.  The reader
# must also be strictly read-only: a second pass over the same store
# produces byte-identical output and modifies no file.
set -eu

cd "$(dirname "$0")/.."
dune build bin/poc_cli.exe

cli=_build/default/bin/poc_cli.exe
workdir=$(mktemp -d)
pids=""
cleanup() {
  for p in $pids; do kill "$p" 2>/dev/null || true; done
  rm -rf "$workdir"
}
trap cleanup EXIT

wait_for_socket() {
  i=0
  while [ ! -S "$1" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
      echo "FAIL: daemon socket $1 never appeared" >&2
      exit 1
    fi
    sleep 0.1
  done
}

# Fingerprint every file in a directory tree: path, size, checksum.
fingerprint() {
  find "$1" -type f | LC_ALL=C sort | while read -r f; do
    cksum "$f"
  done
}

# The kill races against epoch boundaries: a SIGKILL that lands in the
# sliver between a durable journal record and the next phase open
# leaves nothing in flight.  Mid-batch that window is tiny; three
# attempts make the check deterministic in practice.
attempt=0
in_flight=""
while [ -z "$in_flight" ] && [ "$attempt" -lt 5 ]; do
  attempt=$((attempt + 1))
  # Earlier kills on later attempts: each supervised epoch takes
  # ~100ms at this scale, so these all land inside the batch.
  case "$attempt" in
    1) kill_after=0.4 ;;
    2) kill_after=0.3 ;;
    3) kill_after=0.5 ;;
    4) kill_after=0.25 ;;
    *) kill_after=0.35 ;;
  esac
  root="$workdir/run$attempt"
  sock="$workdir/run$attempt.sock"

  "$cli" serve --root "$root" --socket "$sock" --flight \
    --seed 7 --sites 16 --bps 5 --epochs 8 \
    > "$workdir/serve$attempt.log" 2>&1 &
  daemon_pid=$!
  pids="$pids $daemon_pid"
  wait_for_socket "$sock"

  # Live load: three updates, then a full-horizon epoch batch; the
  # kill lands in the middle of it.
  "$cli" ctl --socket "$sock" \
    "BID 1 0 1.07 2" "MATRIX 2 1.04" "BID 3 1 0.95" > /dev/null
  "$cli" ctl --socket "$sock" "EPOCH 8" > /dev/null 2>&1 &
  epoch_pid=$!

  sleep "$kill_after"
  kill -9 "$daemon_pid" 2>/dev/null || true
  wait "$daemon_pid" 2>/dev/null || true
  pids=$(echo "$pids" | sed "s/ $daemon_pid//")
  wait "$epoch_pid" 2>/dev/null || true

  [ -f "$root/store/FLIGHT" ] || {
    echo "FAIL: killed daemon left no FLIGHT box" >&2; exit 1; }

  "$cli" forensics "$root/store" > "$workdir/forensics$attempt.txt"
  in_flight=$(grep "^in-flight: epoch" "$workdir/forensics$attempt.txt" || true)
  [ -n "$in_flight" ] || \
    echo "note: attempt $attempt killed between epochs; retrying" >&2
done

[ -n "$in_flight" ] || {
  echo "FAIL: forensics never named an in-flight epoch/phase" >&2
  cat "$workdir/forensics$attempt.txt" >&2
  exit 1
}
echo "ok: $in_flight"
report="$workdir/forensics$attempt.txt"

# The report merges all three sources into the timeline.
grep -q "^flight:    $root/store/FLIGHT" "$report" || {
  echo "FAIL: flight box missing from the source inventory" >&2; exit 1; }
grep -q "^journal:   segmented — durable through epoch" "$report" || {
  echo "FAIL: journal verdict missing" >&2; exit 1; }
grep -q "^intake:    $root/intake.log — 3 admissions" "$report" || {
  echo "FAIL: the three admitted updates are not in the intake inventory" >&2
  cat "$report" >&2
  exit 1
}
grep -q "admit" "$report" || {
  echo "FAIL: no admission entries in the timeline" >&2; exit 1; }
echo "ok: timeline merges intake, flight, and journal"

# The JSON document agrees on the verdict.
"$cli" forensics "$root/store" --json > "$workdir/forensics.json"
grep -q '"in_flight":{"epoch":' "$workdir/forensics.json" || {
  echo "FAIL: JSON report lost the in-flight verdict" >&2; exit 1; }
echo "ok: JSON report carries the in-flight verdict"

# Read-only: a second pass is byte-identical and touches nothing.
before=$(fingerprint "$root")
"$cli" forensics "$root/store" > "$workdir/forensics-again.txt"
after=$(fingerprint "$root")
cmp -s "$report" "$workdir/forensics-again.txt" || {
  echo "FAIL: forensics output not reproducible" >&2; exit 1; }
[ "$before" = "$after" ] || {
  echo "FAIL: forensics modified the store" >&2; exit 1; }
echo "ok: forensics is read-only and reproducible"

echo "forensics smoke: all checks passed"
