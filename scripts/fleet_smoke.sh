#!/bin/sh
# Fleet kill-and-resume smoke check: run a small chaos fleet to
# completion for a reference report, then (a) stop a second fleet
# mid-run with --kill-after and finish it with --resume, and (b)
# SIGKILL a third fleet mid-run — partial scenario stores and all —
# and resume that too.  Both recovered aggregate reports must be
# byte-identical to the uninterrupted reference.
set -eu

cd "$(dirname "$0")/.."
dune build bin/poc_cli.exe

workdir=$(mktemp -d)
cleanup() { rm -rf "$workdir"; }
trap cleanup EXIT

cli=_build/default/bin/poc_cli.exe
common="--months 18 --matrix full --seed 7 --topologies 2 --sites 16 \
  --bps 5 --epochs 4 --segment-bytes 1024 --jobs 2 --json"

# --- Reference: an uninterrupted fleet ---------------------------------------

# shellcheck disable=SC2086  # $common is a flag list
"$cli" fleet --store "$workdir/ref" $common > "$workdir/ref.json"
grep -q '"survival":{"completed":18,"unrecovered":0,' "$workdir/ref.json" || {
  echo "FAIL: reference fleet did not survive all 18 scenario-months" >&2
  exit 1
}
grep -q '"recovered":{"crash":' "$workdir/ref.json" || {
  echo "FAIL: reference report carries no recovery counters" >&2; exit 1; }
echo "ok: reference fleet survived 18/18 scenario-months"

# --- Drill: --kill-after stops the fleet between scenarios -------------------

rc=0
# shellcheck disable=SC2086
"$cli" fleet --store "$workdir/drill" --kill-after 7 $common \
  > "$workdir/drill.json" 2> "$workdir/drill.err" || rc=$?
[ "$rc" -eq 10 ] || {
  echo "FAIL: --kill-after exited $rc, want 10" >&2
  cat "$workdir/drill.err" >&2
  exit 1
}
grep -q "finish with --resume" "$workdir/drill.err" || {
  echo "FAIL: interrupted fleet did not point at --resume" >&2; exit 1; }

# shellcheck disable=SC2086
"$cli" fleet --store "$workdir/drill" --resume $common \
  > "$workdir/drill-resumed.json"
cmp -s "$workdir/ref.json" "$workdir/drill-resumed.json" || {
  echo "FAIL: resumed --kill-after report differs from the reference" >&2
  exit 1
}
echo "ok: --kill-after fleet resumed to a byte-identical report"

# --- SIGKILL mid-fleet, partial scenario store and all -----------------------

# shellcheck disable=SC2086
"$cli" fleet --store "$workdir/killed" $common \
  > "$workdir/killed.json" 2>&1 &
fleet_pid=$!
sleep 2
kill -9 "$fleet_pid" 2>/dev/null || true
if wait "$fleet_pid" 2>/dev/null; then
  # The box was fast enough to finish before the kill landed; the
  # resume below still has to reproduce the reference from RESULTs.
  echo "note: fleet finished before SIGKILL landed"
fi
echo "ok: fleet SIGKILLed mid-run"

# shellcheck disable=SC2086
"$cli" fleet --store "$workdir/killed" --resume $common \
  > "$workdir/killed-resumed.json"
cmp -s "$workdir/ref.json" "$workdir/killed-resumed.json" || {
  echo "FAIL: SIGKILL-resumed report differs from the reference" >&2
  exit 1
}
echo "ok: SIGKILLed fleet resumed to a byte-identical report"

echo "fleet smoke: all checks passed"
