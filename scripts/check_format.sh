#!/bin/sh
# Formatting gate for CI: no ocamlformat config is checked in, so the
# enforceable baseline is whitespace hygiene — no tab characters and no
# trailing whitespace in any OCaml source or dune file.
set -eu

cd "$(dirname "$0")/.."

status=0
files=$(find lib bin bench test examples -type f \
  \( -name '*.ml' -o -name '*.mli' -o -name 'dune' \) | sort)

for f in $files; do
  if grep -n -P '\t' "$f" /dev/null; then
    echo "error: tab character in $f" >&2
    status=1
  fi
  if grep -n -E ' +$' "$f" /dev/null; then
    echo "error: trailing whitespace in $f" >&2
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "format check passed ($(echo "$files" | wc -l) files)"
fi
exit "$status"
