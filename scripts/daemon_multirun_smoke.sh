#!/bin/sh
# Multi-run daemon smoke check: `poc-cli serve --runs 4` with a storage
# fault injected into run 2 only, SIGKILL mid-epoch-batch under load,
# restart with `serve --resume`, and require (a) run 2 quarantined —
# before AND after the restart — with its store intact and readable by
# `poc-cli forensics`, (b) the quarantine visible on RUNS and the live
# Prometheus run-state gauge, and (c) every healthy run's finished
# store byte-identical to an uninterrupted single-run reference.
set -eu

cd "$(dirname "$0")/.."
dune build bin/poc_cli.exe

workdir=$(mktemp -d)
pids=""
cleanup() {
  for p in $pids; do kill "$p" 2>/dev/null || true; done
  rm -rf "$workdir"
}
trap cleanup EXIT

cli=_build/default/bin/poc_cli.exe
common="--seed 7 --sites 16 --bps 5 --epochs 8"
metrics_port=9858

# The accepted updates: all take effect at epoch 1, before any epoch
# runs, so neither the kill point nor run 2's crash can shift their
# apply-epochs.
send_bids() {
  "$cli" ctl --socket "$1" --run "$2" \
    "BID 1 0 1.07 2" "MATRIX 2 1.04" "BID 3 1 0.95"
}

wait_for_socket() {
  i=0
  while [ ! -S "$1" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
      echo "FAIL: daemon socket $1 never appeared" >&2
      exit 1
    fi
    sleep 0.1
  done
}

# --- Reference: an uninterrupted single-run serve session --------------------

ref_root="$workdir/ref"
ref_sock="$workdir/ref.sock"
# shellcheck disable=SC2086  # $common is a flag list
"$cli" serve --root "$ref_root" --socket "$ref_sock" $common \
  > "$workdir/ref-serve.log" 2>&1 &
ref_pid=$!
pids="$pids $ref_pid"
wait_for_socket "$ref_sock"

send_bids "$ref_sock" 0 > /dev/null
"$cli" ctl --socket "$ref_sock" "EPOCH 6" "EPOCH 10" "SHUTDOWN" \
  > "$workdir/ref-ctl.txt"
wait "$ref_pid" || { echo "FAIL: reference daemon exited non-zero" >&2; exit 1; }
pids=$(echo "$pids" | sed "s/ $ref_pid//")
grep -q "BYE complete" "$workdir/ref-ctl.txt" || {
  echo "FAIL: reference run did not complete" >&2; exit 1; }
echo "ok: reference serve session completed"

# --- Four runs, a storage fault armed on run 2 only --------------------------

root="$workdir/multi"
sock="$workdir/multi.sock"
# shellcheck disable=SC2086
"$cli" serve --root "$root" --socket "$sock" --metrics-port "$metrics_port" \
  --runs 4 --fault-run 2 --attempt-cap 0 \
  --disk-fault 4:pre_settle:lying_fsync \
  $common > "$workdir/multi-serve.log" 2>&1 &
daemon_pid=$!
pids="$pids $daemon_pid"
wait_for_socket "$sock"

for r in 0 1 2 3; do
  send_bids "$sock" "$r" > /dev/null
done

# Run 2 settles toward its horizon and trips the lying-fsync power cut
# at epoch 4; with --attempt-cap 0 the first failure quarantines.  The
# other three runs must never notice.  ctl exits 5 on a terminal GONE.
rc=0
"$cli" ctl --socket "$sock" --run 2 "EPOCH 6" \
  > "$workdir/run2-epoch.txt" 2>&1 || rc=$?
[ "$rc" -eq 5 ] || {
  echo "FAIL: run 2's storage fault did not surface as GONE (rc=$rc)" >&2
  cat "$workdir/run2-epoch.txt" >&2
  exit 1
}
grep -q "GONE run=2 quarantined" "$workdir/run2-epoch.txt" || {
  echo "FAIL: run 2 not reported quarantined" >&2
  cat "$workdir/run2-epoch.txt" >&2
  exit 1
}
echo "ok: run 2 quarantined by its storage fault"

# --- SIGKILL mid-epoch while the healthy runs settle under load --------------

for r in 0 1 3; do
  "$cli" ctl --socket "$sock" --run "$r" "EPOCH 6" > /dev/null 2>&1 &
done
( while "$cli" ctl --socket "$sock" STATUS > /dev/null 2>&1; do :; done ) &
status_pid=$!
pids="$pids $status_pid"

sleep 0.5
kill -9 "$daemon_pid"
wait "$daemon_pid" 2>/dev/null && {
  echo "FAIL: daemon survived SIGKILL" >&2; exit 1; }
pids=$(echo "$pids" | sed "s/ $daemon_pid//")
wait "$status_pid" 2>/dev/null || true
pids=$(echo "$pids" | sed "s/ $status_pid//")
echo "ok: daemon SIGKILLed mid-epoch under multi-run load"

# --- Restart: quarantine survives, healthy runs resume -----------------------

rm -f "$sock"
# shellcheck disable=SC2086
"$cli" serve --root "$root" --socket "$sock" --resume \
  --metrics-port "$metrics_port" --attempt-cap 0 $common \
  > "$workdir/resumed-serve.log" 2>&1 &
daemon_pid=$!
pids="$pids $daemon_pid"
wait_for_socket "$sock"

i=0
until "$cli" ctl --socket "$sock" RUNS > "$workdir/resumed-runs.txt" \
  2>/dev/null; do
  i=$((i + 1))
  if [ "$i" -gt 50 ]; then
    echo "FAIL: resumed daemon never answered RUNS" >&2
    exit 1
  fi
  sleep 0.1
done
grep -q "run=2 state=quarantined" "$workdir/resumed-runs.txt" || {
  echo "FAIL: quarantine did not survive the restart" >&2
  cat "$workdir/resumed-runs.txt" >&2
  exit 1
}

# Scoped requests to the quarantined run answer the terminal GONE.
rc=0
"$cli" ctl --socket "$sock" --run 2 STATUS \
  > "$workdir/run2-status.txt" 2>&1 || rc=$?
[ "$rc" -eq 5 ] && grep -q "^GONE" "$workdir/run2-status.txt" || {
  echo "FAIL: quarantined run did not answer GONE after restart (rc=$rc)" >&2
  cat "$workdir/run2-status.txt" >&2
  exit 1
}

# Every healthy run serves — one checked over the binary framed
# protocol for good measure.
for r in 0 3; do
  "$cli" ctl --socket "$sock" --run "$r" STATUS \
    > "$workdir/run$r-status.txt"
  grep -q "^STATUS ok" "$workdir/run$r-status.txt" || {
    echo "FAIL: resumed run $r STATUS not ok" >&2
    cat "$workdir/run$r-status.txt" >&2
    exit 1
  }
done
"$cli" ctl --socket "$sock" --binary --run 1 STATUS \
  > "$workdir/run1-status.txt"
grep -q "^STATUS ok" "$workdir/run1-status.txt" || {
  echo "FAIL: binary-framed STATUS to run 1 not ok" >&2
  cat "$workdir/run1-status.txt" >&2
  exit 1
}

# The run-state gauge on the live Prometheus endpoint.
curl -sf "http://127.0.0.1:$metrics_port/metrics" > "$workdir/metrics.txt" || {
  echo "FAIL: metrics endpoint unreachable" >&2; exit 1; }
grep -q 'poc_daemon_run_state{run="2",state="quarantined"} 1' \
  "$workdir/metrics.txt" || {
  echo "FAIL: quarantine not exported on poc_daemon_run_state" >&2
  exit 1
}
echo "ok: quarantine survived restart, visible over RUNS, GONE and Prometheus"

# --- Finish the healthy horizons, byte-compare against the reference ---------

for r in 0 1 3; do
  "$cli" ctl --socket "$sock" --run "$r" "EPOCH 10" > /dev/null
done
"$cli" ctl --socket "$sock" SHUTDOWN > "$workdir/resumed-ctl.txt"
wait "$daemon_pid" || { echo "FAIL: resumed daemon exited non-zero" >&2; exit 1; }
pids=$(echo "$pids" | sed "s/ $daemon_pid//")
grep -q "BYE" "$workdir/resumed-ctl.txt" || {
  echo "FAIL: shutdown did not answer BYE" >&2; exit 1; }

store_of() {
  case "$1" in
    0) echo "$root/store" ;;
    *) echo "$root/runs/0000$1/store" ;;
  esac
}
for r in 0 1 3; do
  store=$(store_of "$r")
  if [ "$(ls "$ref_root/store")" != "$(ls "$store")" ]; then
    echo "FAIL: run $r store holds a different file set" >&2
    exit 1
  fi
  for f in "$ref_root/store"/*; do
    [ -f "$f" ] || continue
    if ! cmp -s "$f" "$store/$(basename "$f")"; then
      echo "FAIL: run $r store file $(basename "$f") differs" >&2
      exit 1
    fi
  done
done
echo "ok: every healthy run byte-identical to the single-run reference"

# --- The quarantined store is intact and forensics-readable ------------------

q_store="$root/runs/00002/store"
[ -d "$q_store" ] || { echo "FAIL: quarantined store missing" >&2; exit 1; }
"$cli" forensics "$q_store" > "$workdir/forensics.txt" || {
  echo "FAIL: forensics cannot read the quarantined store" >&2; exit 1; }
[ -s "$workdir/forensics.txt" ] || {
  echo "FAIL: forensics produced no report" >&2; exit 1; }
echo "ok: quarantined store intact and forensics-readable"

echo "daemon multirun smoke: all checks passed"
