(* Tests for Poc_econ: demand families, pricing, Lemma 1, welfare,
   Nash bargaining, the renegotiation equilibrium and regime
   comparison — the Section 4 results, mechanized. *)

module Demand = Poc_econ.Demand
module Pricing = Poc_econ.Pricing
module Welfare = Poc_econ.Welfare
module Bargaining = Poc_econ.Bargaining
module Equilibrium = Poc_econ.Equilibrium
module Regime = Poc_econ.Regime

let check_float = Alcotest.(check (float 1e-6))

let check_close msg tol expected actual =
  Alcotest.(check (float tol)) msg expected actual

(* --- Demand families ---------------------------------------------------------- *)

let test_demand_at_zero () =
  List.iter
    (fun d -> check_float (Demand.name d ^ " at 0") 1.0 (Demand.demand d 0.0))
    Demand.all_families

let test_demand_decreasing () =
  List.iter
    (fun d ->
      let prev = ref 1.0 in
      for i = 1 to 60 do
        let p = float_of_int i in
        let q = Demand.demand d p in
        Alcotest.(check bool)
          (Demand.name d ^ " non-increasing")
          true (q <= !prev +. 1e-12);
        prev := q
      done)
    Demand.all_families

let test_demand_validation () =
  Alcotest.(check bool) "bad uniform" true (Demand.validate (Demand.Uniform 0.0) <> Ok ());
  Alcotest.(check bool) "bad lomax alpha" true
    (Demand.validate (Demand.Lomax (0.9, 1.0)) <> Ok ());
  Alcotest.(check bool) "bad kink" true
    (Demand.validate (Demand.Kinked (10.0, 20.0)) <> Ok ())

let test_mean_values_normalized () =
  (* all_families is normalized to mean willingness-to-pay 10. *)
  List.iter
    (fun d -> check_close (Demand.name d) 1e-6 10.0 (Demand.mean_value d))
    Demand.all_families

let test_quantile_inverts_demand () =
  List.iter
    (fun d ->
      List.iter
        (fun q ->
          let p = Demand.quantile d q in
          check_close (Demand.name d) 1e-6 q (Demand.demand d p))
        [ 0.9; 0.5; 0.25; 0.1 ])
    Demand.all_families

let test_survival_integral_matches_numeric () =
  List.iter
    (fun d ->
      let p = 5.0 in
      let numeric =
        Poc_util.Numeric.integrate ~n:20_000 ~lo:p ~hi:(Demand.quantile d 1e-9)
          (fun v -> Demand.demand d v)
      in
      check_close (Demand.name d) 1e-2 numeric (Demand.survival_integral d p))
    Demand.all_families

(* --- Pricing -------------------------------------------------------------------- *)

let test_monopoly_prices_closed_form () =
  check_close "uniform vmax/2" 1e-6 10.0 (Pricing.monopoly_price (Demand.Uniform 20.0));
  check_close "exponential mean" 1e-6 10.0
    (Pricing.monopoly_price (Demand.Exponential 10.0));
  (* Lomax: p* = s/(a-1) *)
  check_close "lomax s/(a-1)" 1e-6 10.0
    (Pricing.monopoly_price (Demand.Lomax (2.5, 15.0)))

let test_price_given_fee_closed_form () =
  check_close "uniform (vmax+t)/2" 1e-6 13.0
    (Pricing.price_given_fee (Demand.Uniform 20.0) ~fee:6.0);
  check_close "exponential mean+t" 1e-6 16.0
    (Pricing.price_given_fee (Demand.Exponential 10.0) ~fee:6.0);
  check_close "lomax (at+s)/(a-1)" 1e-6 20.0
    (Pricing.price_given_fee (Demand.Lomax (2.5, 15.0)) ~fee:6.0)

let test_price_maximizes_revenue () =
  (* The returned price must actually beat a grid of alternatives. *)
  List.iter
    (fun d ->
      let fee = 3.0 in
      let p_star = Pricing.price_given_fee d ~fee in
      let r_star = Pricing.csp_revenue d ~price:p_star ~fee in
      let hi = Demand.quantile d 1e-6 in
      for i = 0 to 100 do
        let p = fee +. (float_of_int i /. 100.0 *. (hi -. fee)) in
        let r = Pricing.csp_revenue d ~price:p ~fee in
        Alcotest.(check bool) (Demand.name d ^ " optimal") true (r <= r_star +. 1e-6)
      done)
    Demand.all_families

(* Lemma 1: p*(t) is monotone increasing in t. *)
let test_lemma1_monotonicity () =
  List.iter
    (fun d ->
      let prev = ref (Pricing.price_given_fee d ~fee:0.0) in
      for i = 1 to 40 do
        let fee = 0.25 *. float_of_int i in
        let p = Pricing.price_given_fee d ~fee in
        Alcotest.(check bool)
          (Demand.name d ^ " p*(t) increasing")
          true (p >= !prev -. 1e-9);
        prev := p
      done)
    Demand.all_families

let qcheck_lemma1 =
  QCheck.Test.make ~name:"Lemma 1: p*(t2) >= p*(t1) for t2 > t1" ~count:200
    QCheck.(triple (int_range 0 3) (float_range 0.0 20.0) (float_range 0.0 20.0))
    (fun (family, t1, t2) ->
      let d = List.nth Demand.all_families family in
      let lo = Float.min t1 t2 and hi = Float.max t1 t2 in
      Pricing.price_given_fee d ~fee:hi >= Pricing.price_given_fee d ~fee:lo -. 1e-7)

let test_unilateral_fee_positive () =
  List.iter
    (fun d ->
      let t = Pricing.unilateral_fee d in
      Alcotest.(check bool) (Demand.name d ^ " fee > 0") true (t > 0.0);
      (* And it is the best on a grid. *)
      let r_star = Pricing.lmp_revenue d ~fee:t in
      for i = 0 to 60 do
        let fee = float_of_int i /. 2.0 in
        Alcotest.(check bool) "fee optimal" true
          (Pricing.lmp_revenue d ~fee <= r_star +. 1e-6)
      done)
    Demand.all_families

(* --- Welfare --------------------------------------------------------------------- *)

let test_welfare_uniform_closed_form () =
  (* Uniform(20) at price 10: SW = p*D + survival = 10*0.5 + 2.5 = 7.5. *)
  check_close "social welfare" 1e-9 7.5 (Welfare.social (Demand.Uniform 20.0) ~price:10.0);
  check_close "consumer welfare" 1e-9 2.5
    (Welfare.consumer (Demand.Uniform 20.0) ~price:10.0)

let test_welfare_decreasing_in_price () =
  List.iter
    (fun d ->
      let prev = ref (Welfare.social d ~price:0.0) in
      for i = 1 to 50 do
        let p = float_of_int i /. 2.0 in
        let w = Welfare.social d ~price:p in
        Alcotest.(check bool) (Demand.name d ^ " SW decreasing") true
          (w <= !prev +. 1e-9);
        prev := w
      done)
    Demand.all_families

let test_producer_split () =
  let csp, lmp = Welfare.producer (Demand.Uniform 20.0) ~price:10.0 ~fee:4.0 in
  check_float "csp gets (p-t)D" 3.0 csp;
  check_float "lmp gets tD" 2.0 lmp

let test_deadweight_loss_nonnegative () =
  List.iter
    (fun d ->
      let p_nn = Pricing.monopoly_price d in
      let t = Pricing.unilateral_fee d in
      let p_ur = Pricing.price_given_fee d ~fee:t in
      Alcotest.(check bool) (Demand.name d ^ " DWL >= 0") true
        (Welfare.deadweight_loss d ~price_nn:p_nn ~price_ur:p_ur >= -1e-9))
    Demand.all_families

(* The paper's headline: termination fees strictly decrease social
   welfare. *)
let test_nn_dominates_ur () =
  List.iter
    (fun d ->
      let p_nn = Pricing.monopoly_price d in
      let t = Pricing.unilateral_fee d in
      let p_ur = Pricing.price_given_fee d ~fee:t in
      Alcotest.(check bool) (Demand.name d ^ " NN strictly better") true
        (Welfare.social d ~price:p_nn > Welfare.social d ~price:p_ur))
    Demand.all_families

(* --- Bargaining -------------------------------------------------------------------- *)

let test_nbs_formula () =
  check_float "t = (p - rc)/2" 4.0
    (Bargaining.bilateral_fee ~price:10.0 ~churn:0.2 ~access_price:10.0);
  check_float "negative fee possible" (-5.0)
    (Bargaining.bilateral_fee ~price:10.0 ~churn:0.5 ~access_price:40.0)

let test_nbs_maximizes_nash_product () =
  let demand = Demand.Exponential 10.0 in
  let price = 12.0 and churn = 0.3 and access_price = 20.0 in
  let t_star = Bargaining.bilateral_fee ~price ~churn ~access_price in
  let np fee = Bargaining.nash_product ~demand ~price ~churn ~access_price ~fee in
  let best = np t_star in
  for i = -20 to 20 do
    let fee = t_star +. (float_of_int i /. 5.0) in
    Alcotest.(check bool) "argmax" true (np fee <= best +. 1e-9)
  done

let test_fee_decreasing_in_churn () =
  let fee r = Bargaining.bilateral_fee ~price:10.0 ~churn:r ~access_price:15.0 in
  let prev = ref (fee 0.0) in
  for i = 1 to 10 do
    let r = float_of_int i /. 10.0 in
    Alcotest.(check bool) "monotone down in churn" true (fee r <= !prev);
    prev := fee r
  done

let test_average_fee () =
  let lmps =
    [
      { Bargaining.subscribers = 1.0; access_price = 10.0; churn = 0.2 };
      { Bargaining.subscribers = 3.0; access_price = 20.0; churn = 0.1 };
    ]
  in
  (* <rc> = (1*0.2*10 + 3*0.1*20)/4 = (2 + 6)/4 = 2 *)
  check_float "population weighting" 4.0 (Bargaining.average_fee ~price:10.0 lmps);
  check_float "no lmps" 5.0 (Bargaining.average_fee ~price:10.0 [])

let test_bargaining_validation () =
  Alcotest.check_raises "churn out of range"
    (Invalid_argument "Bargaining: churn out of [0,1]") (fun () ->
      ignore (Bargaining.bilateral_fee ~price:1.0 ~churn:1.5 ~access_price:1.0))

(* --- Equilibrium ---------------------------------------------------------------------- *)

let test_equilibrium_residual_zero () =
  List.iter
    (fun d ->
      match Equilibrium.solve_rc ~demand:d ~rc:2.0 () with
      | None -> Alcotest.fail (Demand.name d ^ ": no convergence")
      | Some eq ->
        Alcotest.(check bool) (Demand.name d ^ " residual ~ 0") true
          (eq.Equilibrium.residual < 1e-6);
        Alcotest.(check bool) "consistent price" true
          (Float.abs
             (eq.Equilibrium.price
             -. Pricing.price_given_fee d ~fee:eq.Equilibrium.fee)
          < 1e-6))
    Demand.all_families

let test_equilibrium_uniform_closed_form () =
  (* Uniform(vmax): p(t) = (vmax+t)/2, fixed point of
     t = (p - rc)/2 = ((vmax+t)/2 - rc)/2 => t = (vmax - 2 rc)/3. *)
  match Equilibrium.solve_rc ~demand:(Demand.Uniform 20.0) ~rc:2.0 () with
  | None -> Alcotest.fail "no convergence"
  | Some eq ->
    check_close "closed form" 1e-6 (16.0 /. 3.0) eq.Equilibrium.fee

let test_equilibrium_fee_below_unilateral () =
  (* The paper says the bargained price increase is "likely" below the
     unilateral one.  It holds for light-tailed demand... *)
  List.iter
    (fun d ->
      match Equilibrium.solve_rc ~demand:d ~rc:1.0 () with
      | None -> Alcotest.fail "no convergence"
      | Some eq ->
        Alcotest.(check bool) (Demand.name d) true
          (eq.Equilibrium.fee <= Pricing.unilateral_fee d +. 1e-6))
    [ Demand.Uniform 20.0; Demand.Exponential 10.0; Demand.Kinked (25.0, 12.5) ]

let test_equilibrium_lomax_counterexample () =
  (* ...but NOT for heavy tails: under Lomax demand the renegotiation
     equilibrium fee exceeds the unilateral monopoly fee, because the
     repeated fee/price escalation feeds on the slowly-decaying tail.
     Recorded as a finding in EXPERIMENTS.md. *)
  let d = Demand.Lomax (2.5, 15.0) in
  match Equilibrium.solve_rc ~demand:d ~rc:1.0 () with
  | None -> Alcotest.fail "no convergence"
  | Some eq ->
    Alcotest.(check bool) "heavy tail reverses the comparison" true
      (eq.Equilibrium.fee > Pricing.unilateral_fee d)

let test_equilibrium_decreasing_in_rc () =
  let d = Demand.Exponential 10.0 in
  let fee rc =
    match Equilibrium.solve_rc ~demand:d ~rc () with
    | Some eq -> eq.Equilibrium.fee
    | None -> Alcotest.fail "no convergence"
  in
  Alcotest.(check bool) "higher churn cost, lower fee" true (fee 4.0 < fee 0.5)

(* --- Regime comparison ------------------------------------------------------------------ *)

let economy = Regime.default_economy

let test_regime_validate () =
  Alcotest.(check bool) "default economy valid" true (Regime.validate economy = Ok ());
  let bad = { economy with Regime.lmps = [||] } in
  Alcotest.(check bool) "no lmps invalid" true (Regime.validate bad <> Ok ())

let test_nn_zero_fees () =
  let o = Regime.evaluate economy Regime.Nn in
  Array.iter
    (fun (c : Regime.csp_outcome) ->
      check_float "no fees under NN" 0.0 c.Regime.avg_fee)
    o.Regime.per_csp

let test_welfare_ordering_across_regimes () =
  let nn = Regime.evaluate economy Regime.Nn in
  let bar = Regime.evaluate economy Regime.Ur_bargained in
  let uni = Regime.evaluate economy Regime.Ur_unilateral in
  Alcotest.(check bool) "NN >= bargained" true
    (nn.Regime.total_social >= bar.Regime.total_social -. 1e-9);
  Alcotest.(check bool) "bargained >= unilateral" true
    (bar.Regime.total_social >= uni.Regime.total_social -. 1e-9);
  Alcotest.(check bool) "NN strictly beats unilateral" true
    (nn.Regime.total_social > uni.Regime.total_social)

let test_incumbent_lmp_extracts_more () =
  let o = Regime.evaluate economy Regime.Ur_bargained in
  (* economy.lmps.(0) is the loyal incumbent, .(2) the entrant. *)
  Array.iter
    (fun (c : Regime.csp_outcome) ->
      if c.Regime.avg_fee > 0.0 then
        Alcotest.(check bool)
          (c.Regime.csp.Regime.csp_name ^ ": incumbent fee >= entrant fee")
          true
          (c.Regime.fees.(0) >= c.Regime.fees.(2) -. 1e-9))
    o.Regime.per_csp

let test_popular_csp_pays_less () =
  let o = Regime.evaluate economy Regime.Ur_bargained in
  (* CSP 0 (popularity .8) vs CSP 3 (popularity .05), same LMPs.
     Compare the churn-driven discount: fee relative to the
     no-churn fee p/2. *)
  let discount (c : Regime.csp_outcome) =
    let p = c.Regime.price in
    if p <= 0.0 then 0.0 else (p /. 2.0 -. c.Regime.avg_fee) /. p
  in
  let popular = o.Regime.per_csp.(0) and niche = o.Regime.per_csp.(3) in
  Alcotest.(check bool) "popularity earns a bigger fee discount" true
    (discount popular >= discount niche -. 1e-9)

let test_consumer_welfare_highest_under_nn () =
  let nn = Regime.evaluate economy Regime.Nn in
  let uni = Regime.evaluate economy Regime.Ur_unilateral in
  Alcotest.(check bool) "consumers prefer NN" true
    (nn.Regime.total_consumer > uni.Regime.total_consumer)

let test_churn_model () =
  let c = economy.Regime.csps.(0) and l = economy.Regime.lmps.(0) in
  let r = Regime.churn c l in
  Alcotest.(check bool) "in range" true (r >= 0.0 && r <= 1.0);
  let entrant = economy.Regime.lmps.(2) in
  Alcotest.(check bool) "entrant churns more" true (Regime.churn c entrant > r)

let qcheck_nn_dominance_random_economies =
  QCheck.Test.make ~name:"NN social welfare dominates UR (random economies)"
    ~count:40
    QCheck.(
      triple (int_range 0 3) (float_range 0.05 0.95) (float_range 5.0 80.0))
    (fun (family, popularity, access_price) ->
      let d = List.nth Demand.all_families family in
      let economy =
        {
          Regime.csps = [| { Regime.csp_name = "s"; demand = d; popularity } |];
          lmps =
            [|
              { Regime.lmp_name = "l"; subscribers = 1.0; access_price;
                loyalty = 0.5 };
            |];
        }
      in
      let nn = Regime.evaluate economy Regime.Nn in
      let uni = Regime.evaluate economy Regime.Ur_unilateral in
      let bar = Regime.evaluate economy Regime.Ur_bargained in
      nn.Regime.total_social >= uni.Regime.total_social -. 1e-9
      && nn.Regime.total_social >= bar.Regime.total_social -. 1e-9)


(* --- Entry / unbundling complementarity --------------------------------------------- *)

module Entry = Poc_econ.Entry

let entry_matrix () =
  (* Calibrated so each barrier is fatal on its own: heavy build capex,
     and an incumbent transit squeeze plus termination handicap that
     eat the whole margin. *)
  Entry.complementarity
    ~params:{ Entry.default_params with Entry.termination_handicap = 0.2 }
    ~build:(Entry.Build_last_mile { capex_per_sub = 3000.0; amortization_months = 84.0 })
    ~unbundled:(Entry.Unbundled_loop { lease_per_sub = 9.0 })
    ~incumbent:(Entry.Incumbent_transit { price_per_gbps = 3500.0; margin_squeeze = 0.6 })
    ~poc:(Entry.Poc_transit { price_per_gbps = 1400.0 })
    ()

let test_entry_margins_ordered () =
  let m = entry_matrix () in
  (* Both reforms dominate either alone, which dominates the status quo. *)
  Alcotest.(check bool) "both > poc-only" true
    (m.Entry.unbundled_poc.Entry.margin_per_sub
    > m.Entry.build_poc.Entry.margin_per_sub);
  Alcotest.(check bool) "both > unbundling-only" true
    (m.Entry.unbundled_poc.Entry.margin_per_sub
    > m.Entry.unbundled_incumbent.Entry.margin_per_sub);
  Alcotest.(check bool) "either reform beats status quo" true
    (m.Entry.build_poc.Entry.margin_per_sub
     > m.Entry.build_incumbent.Entry.margin_per_sub
    && m.Entry.unbundled_incumbent.Entry.margin_per_sub
       > m.Entry.build_incumbent.Entry.margin_per_sub)

let test_entry_weakest_link () =
  (* The Section 2.5 claim: only both reforms together make entry
     viable. *)
  Alcotest.(check bool) "weakest-link complements" true
    (Entry.weakest_link_complements (entry_matrix ()));
  (* And the margins are honestly SUBadditive here — the reforms
     overlap in the transit penalty they remove. *)
  Alcotest.(check bool) "margins subadditive" false
    (Entry.superadditive (entry_matrix ()))

let test_entry_verdict_consistency () =
  let m = entry_matrix () in
  List.iter
    (fun (v : Entry.verdict) ->
      Alcotest.(check bool) "viable iff positive margin" true
        (v.Entry.viable = (v.Entry.margin_per_sub > 0.0));
      Alcotest.(check (float 1e-9)) "margin = revenue - cost"
        (v.Entry.monthly_revenue_per_sub -. v.Entry.monthly_cost_per_sub)
        v.Entry.margin_per_sub)
    [ m.Entry.build_incumbent; m.Entry.build_poc; m.Entry.unbundled_incumbent;
      m.Entry.unbundled_poc ]

let test_entry_validation () =
  Alcotest.check_raises "bad amortization"
    (Invalid_argument "Entry: bad amortization") (fun () ->
      ignore
        (Entry.evaluate Entry.default_params
           (Entry.Build_last_mile { capex_per_sub = 1.0; amortization_months = 0.0 })
           (Entry.Poc_transit { price_per_gbps = 1.0 })))


(* --- Retail pricing / last-mile congestion ------------------------------------------- *)

module Retail = Poc_econ.Retail

let retail_users =
  [
    { Retail.satiation = 100.0; sensitivity = 0.02; mass = 60.0 };
    { Retail.satiation = 300.0; sensitivity = 0.01; mass = 30.0 };
    { Retail.satiation = 800.0; sensitivity = 0.005; mass = 10.0 };
  ]

let satiation_demand =
  List.fold_left (fun acc u -> acc +. (u.Retail.mass *. u.Retail.satiation))
    0.0 retail_users

let test_retail_slack_capacity () =
  (* Plenty of capacity: no congestion, flat = usage(0). *)
  let e = Retail.equilibrium ~users:retail_users ~capacity:(2.0 *. satiation_demand) Retail.Flat in
  Alcotest.(check (float 1e-9)) "full quality" 1.0 e.Retail.quality;
  Alcotest.(check bool) "not congested" false e.Retail.congested;
  Alcotest.(check (float 1e-6)) "clearing price zero" 0.0
    (Retail.market_clearing_price ~users:retail_users
       ~capacity:(2.0 *. satiation_demand));
  Alcotest.(check (float 1e-3)) "no gain from usage pricing" 0.0
    (Retail.welfare_gain_of_usage_pricing ~users:retail_users
       ~capacity:(2.0 *. satiation_demand))

let test_retail_flat_congests () =
  let capacity = 0.4 *. satiation_demand in
  let e = Retail.equilibrium ~users:retail_users ~capacity Retail.Flat in
  Alcotest.(check bool) "congested" true e.Retail.congested;
  (* Flat demand ignores congestion entirely. *)
  Alcotest.(check (float 1e-6)) "demand at satiation" satiation_demand
    e.Retail.total_demand

let test_retail_clearing_price_clears () =
  let capacity = 0.4 *. satiation_demand in
  let p = Retail.market_clearing_price ~users:retail_users ~capacity in
  Alcotest.(check bool) "positive price" true (p > 0.0);
  let e = Retail.equilibrium ~users:retail_users ~capacity (Retail.Usage p) in
  Alcotest.(check bool) "uncongested at clearing" false e.Retail.congested;
  Alcotest.(check (float 1.0)) "demand ~ capacity" capacity e.Retail.total_demand

let test_retail_usage_beats_flat_under_scarcity () =
  List.iter
    (fun frac ->
      let capacity = frac *. satiation_demand in
      Alcotest.(check bool)
        (Printf.sprintf "gain at %.0f%% capacity" (100.0 *. frac))
        true
        (Retail.welfare_gain_of_usage_pricing ~users:retail_users ~capacity
         > 0.0))
    [ 0.2; 0.4; 0.6; 0.8 ]

let test_retail_tiered_between () =
  let capacity = 0.4 *. satiation_demand in
  let p = Retail.market_clearing_price ~users:retail_users ~capacity in
  let flat = Retail.equilibrium ~users:retail_users ~capacity Retail.Flat in
  let usage = Retail.equilibrium ~users:retail_users ~capacity (Retail.Usage p) in
  let tiered =
    Retail.equilibrium ~users:retail_users ~capacity
      (Retail.Tiered { allowance = 50.0; overage = p })
  in
  Alcotest.(check bool) "tiered demand between" true
    (tiered.Retail.total_demand >= usage.Retail.total_demand -. 1e-6
    && tiered.Retail.total_demand <= flat.Retail.total_demand +. 1e-6)

let test_retail_validation () =
  Alcotest.check_raises "bad capacity"
    (Invalid_argument "Retail: capacity must be positive") (fun () ->
      ignore (Retail.equilibrium ~users:retail_users ~capacity:0.0 Retail.Flat));
  Alcotest.(check bool) "class validation" true
    (Retail.validate_class
       { Retail.satiation = -1.0; sensitivity = 1.0; mass = 1.0 }
    <> Ok ())

let suite =
  [
    Alcotest.test_case "demand at zero" `Quick test_demand_at_zero;
    Alcotest.test_case "demand decreasing" `Quick test_demand_decreasing;
    Alcotest.test_case "demand validation" `Quick test_demand_validation;
    Alcotest.test_case "mean values normalized" `Quick test_mean_values_normalized;
    Alcotest.test_case "quantile inverts demand" `Quick test_quantile_inverts_demand;
    Alcotest.test_case "survival integral" `Quick test_survival_integral_matches_numeric;
    Alcotest.test_case "monopoly prices (closed forms)" `Quick
      test_monopoly_prices_closed_form;
    Alcotest.test_case "price given fee (closed forms)" `Quick
      test_price_given_fee_closed_form;
    Alcotest.test_case "price maximizes revenue" `Quick test_price_maximizes_revenue;
    Alcotest.test_case "Lemma 1 monotonicity" `Quick test_lemma1_monotonicity;
    QCheck_alcotest.to_alcotest qcheck_lemma1;
    Alcotest.test_case "unilateral fee positive & optimal" `Quick
      test_unilateral_fee_positive;
    Alcotest.test_case "welfare closed form" `Quick test_welfare_uniform_closed_form;
    Alcotest.test_case "welfare decreasing in price" `Quick
      test_welfare_decreasing_in_price;
    Alcotest.test_case "producer split" `Quick test_producer_split;
    Alcotest.test_case "deadweight loss nonnegative" `Quick
      test_deadweight_loss_nonnegative;
    Alcotest.test_case "NN dominates UR per family" `Quick test_nn_dominates_ur;
    Alcotest.test_case "NBS formula" `Quick test_nbs_formula;
    Alcotest.test_case "NBS maximizes Nash product" `Quick
      test_nbs_maximizes_nash_product;
    Alcotest.test_case "fee decreasing in churn" `Quick test_fee_decreasing_in_churn;
    Alcotest.test_case "average fee weighting" `Quick test_average_fee;
    Alcotest.test_case "bargaining validation" `Quick test_bargaining_validation;
    Alcotest.test_case "equilibrium residual zero" `Quick test_equilibrium_residual_zero;
    Alcotest.test_case "equilibrium closed form (uniform)" `Quick
      test_equilibrium_uniform_closed_form;
    Alcotest.test_case "equilibrium fee below unilateral" `Quick
      test_equilibrium_fee_below_unilateral;
    Alcotest.test_case "equilibrium Lomax counterexample" `Quick
      test_equilibrium_lomax_counterexample;
    Alcotest.test_case "equilibrium decreasing in <rc>" `Quick
      test_equilibrium_decreasing_in_rc;
    Alcotest.test_case "regime validation" `Quick test_regime_validate;
    Alcotest.test_case "NN means zero fees" `Quick test_nn_zero_fees;
    Alcotest.test_case "welfare ordering across regimes" `Quick
      test_welfare_ordering_across_regimes;
    Alcotest.test_case "incumbent LMP extracts more" `Quick
      test_incumbent_lmp_extracts_more;
    Alcotest.test_case "popular CSP pays less" `Quick test_popular_csp_pays_less;
    Alcotest.test_case "consumer welfare highest under NN" `Quick
      test_consumer_welfare_highest_under_nn;
    Alcotest.test_case "churn model" `Quick test_churn_model;
    QCheck_alcotest.to_alcotest qcheck_nn_dominance_random_economies;
    Alcotest.test_case "entry margins ordered" `Quick test_entry_margins_ordered;
    Alcotest.test_case "entry weakest-link complements" `Quick
      test_entry_weakest_link;
    Alcotest.test_case "entry verdict consistency" `Quick test_entry_verdict_consistency;
    Alcotest.test_case "entry validation" `Quick test_entry_validation;
    Alcotest.test_case "retail slack capacity" `Quick test_retail_slack_capacity;
    Alcotest.test_case "retail flat congests" `Quick test_retail_flat_congests;
    Alcotest.test_case "retail clearing price" `Quick test_retail_clearing_price_clears;
    Alcotest.test_case "retail usage beats flat" `Quick
      test_retail_usage_beats_flat_under_scarcity;
    Alcotest.test_case "retail tiered between" `Quick test_retail_tiered_between;
    Alcotest.test_case "retail validation" `Quick test_retail_validation;
  ]
