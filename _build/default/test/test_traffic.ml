(* Tests for Poc_traffic.Matrix: gravity model, transforms, validation. *)

module Matrix = Poc_traffic.Matrix
module Wan = Poc_topology.Wan
module Prng = Poc_util.Prng

let wan =
  lazy
    (Wan.generate
       ~params:
         {
           Wan.default_params with
           Wan.n_sites = 24;
           n_operators = 10;
           n_bps = 6;
           operator_min_sites = 5;
           operator_max_sites = 12;
           colocation_threshold = 2;
           external_attachments = 4;
         }
       ~seed:11 ())

let gravity ?(seed = 3) ?(total = 1000.0) () =
  Matrix.gravity (Prng.create seed) (Lazy.force wan) ~total_gbps:total ()

let test_gravity_total () =
  let m = gravity () in
  Alcotest.(check (float 1e-6)) "total" 1000.0 (Matrix.total m)

let test_gravity_valid () =
  match Matrix.validate (gravity ()) with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_gravity_dimension () =
  let m = gravity () in
  let n = Array.length (Lazy.force wan).Wan.poc_sites in
  Alcotest.(check int) "square over POC routers" n (Matrix.dim m)

let test_gravity_zero_diagonal () =
  let m = gravity () in
  for i = 0 to Matrix.dim m - 1 do
    Alcotest.(check (float 0.0)) "diagonal" 0.0 (Matrix.get m i i)
  done

let test_uniform () =
  let m = Matrix.uniform (Lazy.force wan) ~total_gbps:500.0 in
  Alcotest.(check (float 1e-6)) "total" 500.0 (Matrix.total m);
  let n = Matrix.dim m in
  let expected = 500.0 /. float_of_int (n * (n - 1)) in
  Alcotest.(check (float 1e-9)) "uniform entries" expected (Matrix.get m 0 1)

let test_scale () =
  let m = gravity () in
  let doubled = Matrix.scale m 2.0 in
  Alcotest.(check (float 1e-6)) "doubled" 2000.0 (Matrix.total doubled);
  Alcotest.(check (float 1e-6)) "original untouched" 1000.0 (Matrix.total m)

let test_hotspots_preserve_total () =
  let m = gravity () in
  let hot = Matrix.with_hotspots (Prng.create 5) m ~count:10 ~multiplier:8.0 in
  Alcotest.(check (float 1e-6)) "total preserved" (Matrix.total m) (Matrix.total hot);
  Alcotest.(check bool) "still valid" true (Matrix.validate hot = Ok ());
  let changed = ref false in
  for i = 0 to Matrix.dim m - 1 do
    for j = 0 to Matrix.dim m - 1 do
      if Float.abs (Matrix.get hot i j -. Matrix.get m i j) > 1e-9 then
        changed := true
    done
  done;
  Alcotest.(check bool) "distribution changed" true !changed

let test_pair_demands_cover_everything () =
  let m = gravity () in
  let directed = Matrix.pair_demands m in
  let sum = List.fold_left (fun acc (_, _, d) -> acc +. d) 0.0 directed in
  Alcotest.(check (float 1e-6)) "directed sum" (Matrix.total m) sum;
  let undirected = Matrix.undirected_pair_demands m in
  let usum = List.fold_left (fun acc (_, _, d) -> acc +. d) 0.0 undirected in
  Alcotest.(check (float 1e-6)) "undirected sum" (Matrix.total m) usum;
  List.iter
    (fun (i, j, _) ->
      Alcotest.(check bool) "canonical order" true (i < j))
    undirected

let test_validate_catches_bad_matrices () =
  let bad = { Matrix.demand = [| [| 0.0; -1.0 |]; [| 1.0; 0.0 |] |] } in
  (match Matrix.validate bad with
  | Error "negative demand" -> ()
  | Ok () | Error _ -> Alcotest.fail "negative demand undetected");
  let diag = { Matrix.demand = [| [| 1.0; 0.0 |]; [| 0.0; 0.0 |] |] } in
  match Matrix.validate diag with
  | Error "nonzero diagonal" -> ()
  | Ok () | Error _ -> Alcotest.fail "nonzero diagonal undetected"

let test_content_skew_changes_matrix () =
  let base = Matrix.gravity (Prng.create 7) (Lazy.force wan) ~total_gbps:100.0 () in
  let skewed =
    Matrix.gravity (Prng.create 7) (Lazy.force wan) ~total_gbps:100.0
      ~content_skew:0.9 ()
  in
  Alcotest.(check bool) "different distribution" true
    (Matrix.max_entry skewed <> Matrix.max_entry base)

let qcheck_gravity_valid_across_seeds =
  QCheck.Test.make ~name:"gravity matrices always validate" ~count:20
    QCheck.(int_range 0 5000)
    (fun seed ->
      let m = gravity ~seed ~total:250.0 () in
      Matrix.validate m = Ok ()
      && Float.abs (Matrix.total m -. 250.0) < 1e-6)

let suite =
  [
    Alcotest.test_case "gravity total" `Quick test_gravity_total;
    Alcotest.test_case "gravity validates" `Quick test_gravity_valid;
    Alcotest.test_case "gravity dimension" `Quick test_gravity_dimension;
    Alcotest.test_case "gravity zero diagonal" `Quick test_gravity_zero_diagonal;
    Alcotest.test_case "uniform matrix" `Quick test_uniform;
    Alcotest.test_case "scale" `Quick test_scale;
    Alcotest.test_case "hotspots preserve total" `Quick test_hotspots_preserve_total;
    Alcotest.test_case "pair demand views" `Quick test_pair_demands_cover_everything;
    Alcotest.test_case "validation catches bad input" `Quick
      test_validate_catches_bad_matrices;
    Alcotest.test_case "content skew has effect" `Quick test_content_skew_changes_matrix;
    QCheck_alcotest.to_alcotest qcheck_gravity_valid_across_seeds;
  ]
