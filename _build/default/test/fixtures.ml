(* Shared expensive fixtures, built lazily once per test run. *)

module Planner = Poc_core.Planner

let small_config =
  Planner.scaled_config ~sites:24 ~bps:6
    { Planner.default_config with Planner.seed = 11 }

let small_plan =
  lazy
    (match Planner.build small_config with
    | Ok plan -> plan
    | Error msg -> failwith ("fixture plan failed: " ^ msg))
